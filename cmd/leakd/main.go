// Command leakd serves the leakage-control simulation as a service: an
// HTTP/JSON API over the harness with a content-addressed result store, so
// repeated and overlapping sweeps are answered from disk and only new cells
// are simulated. SIGTERM/SIGINT drain gracefully — queued sweeps are
// canceled, in-flight cells finish or checkpoint, and a restarted daemon
// resumes from the store plus per-sweep checkpoints.
//
// Usage:
//
//	leakd -store /var/lib/leakd [-addr :8080] [-workers N] [-telemetry FILE]
//
// Sweeps carry two cell kinds: energy cells (a benchmark under a leakage
// technique, the default) and attack cells (`"kind":"attack"` with a
// `scenario` name — an adversarial prime+probe run scored with channel
// metrics; see DESIGN.md §14). Both kinds ride the same store, checkpoint
// and federation machinery, and `leakbench -attack -remote` renders the
// leakage-vs-savings frontier from a daemon.
//
// Cluster mode: `leakd -coordinator -cluster w1:8081,w2:8082,w3:8083` runs
// the coordinator — same HTTP surface, sweeps sharded across the listed
// workers on a consistent-hash ring, with work stealing and re-sharding on
// worker death. Workers started with `-peer http://coordinator:8080` consult
// the coordinator's federated store view before simulating a missed cell.
// See DESIGN.md §13.
//
// The store is garbage-collected in the background when a policy is set:
// -store-ttl expires records by age, -store-max-bytes bounds the store by
// evicting oldest-first, and -gc-interval paces the passes. GC is crash-safe
// (write-new, fsync, atomic rename) and at-least-once: a crash mid-pass
// never loses a live record, at worst it resurrects expired ones until the
// next pass.
//
// See EXPERIMENTS.md for the API reference and a curl walkthrough, and
// DESIGN.md §11 for the failure model behind -faultplane and -sweep-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"hotleakage/internal/cluster"
	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/obs"
	"hotleakage/internal/server"
	"hotleakage/internal/server/api"
	"hotleakage/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leakd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		storeDir     = flag.String("store", "", "result store directory (required)")
		workers      = flag.Int("workers", 0, "harness workers per sweep (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 16, "queued sweeps per priority class before 429")
		sweeps       = flag.Int("sweeps", 1, "sweeps executing concurrently")
		maxCells     = flag.Int("max-cells", 4096, "cells per sweep before 400")
		instructions = flag.Uint64("n", 1_000_000, "default measured instructions per cell")
		warmup       = flag.Uint64("warmup", 300_000, "default warmup instructions per cell")
		runTimeout   = flag.Duration("run-timeout", 0, "per-cell deadline (0 = none)")
		maxRetries   = flag.Int("max-retries", 2, "per-cell retry budget")
		sweepTimeout = flag.Duration("sweep-timeout", 0, "watchdog: whole-sweep deadline, canceled and failed past it (0 = none)")
		storeTTL     = flag.Duration("store-ttl", 0, "GC: expire store records older than this (0 = keep forever)")
		storeMaxB    = flag.Int64("store-max-bytes", 0, "GC: evict oldest records beyond this store size (0 = unbounded)")
		gcInterval   = flag.Duration("gc-interval", 10*time.Minute, "pace of background GC passes (needs -store-ttl or -store-max-bytes)")
		faultSpec    = flag.String("faultplane", "", "inject faults for chaos testing, e.g. store.sync:err:1/50,server.handler:5xx:1/100 (see DESIGN.md §11)")
		drainWait    = flag.Duration("drain", 30*time.Second, "max graceful drain on SIGTERM")
		telemetry    = flag.String("telemetry", "", "append JSONL trace events to this file")
		retention    = flag.Duration("retention", 0, "evict terminal sweeps from memory this long after they finish (0 = keep forever)")
		coordinator  = flag.Bool("coordinator", false, "run as cluster coordinator instead of a worker (requires -cluster)")
		clusterList  = flag.String("cluster", "", "comma-separated worker addresses for -coordinator mode")
		peerURL      = flag.String("peer", "", "worker mode: coordinator URL for the federated store view (cells missed locally are fetched before simulating)")
		shardRetries = flag.Int("shard-retries", 2, "coordinator mode: re-dispatch attempts per shard after worker deaths")
	)
	flag.Parse()
	if *storeDir == "" {
		return fmt.Errorf("-store is required")
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)

	var plane *faultinject.Plane
	if *faultSpec != "" {
		var err error
		plane, err = faultinject.ParsePlane(*faultSpec)
		if err != nil {
			return err
		}
		logger.Printf("leakd: CHAOS MODE, fault plane %q armed", plane)
	}

	sopts := store.Options{Logf: logger.Printf}
	if plane != nil {
		sopts.FS = &store.FaultFS{Plane: plane, Base: store.OSFS{}}
	}
	st, err := store.OpenOptions(*storeDir, sopts)
	if err != nil {
		return err
	}
	defer st.Close()
	if n := st.Skipped(); n > 0 {
		logger.Printf("store: skipped %d corrupt record(s) while indexing %s", n, *storeDir)
	}

	// handler/shutdown abstract over the two modes: a worker daemon or the
	// cluster coordinator, which shares the listener, GC and drain plumbing.
	var handler http.Handler
	var shutdown func(context.Context) error

	if *coordinator {
		if *clusterList == "" {
			return fmt.Errorf("-coordinator requires -cluster with at least one worker address")
		}
		var workerAddrs []string
		for _, a := range strings.Split(*clusterList, ",") {
			if a = strings.TrimSpace(a); a != "" {
				workerAddrs = append(workerAddrs, a)
			}
		}
		coord, err := cluster.New(cluster.Config{
			Workers:             workerAddrs,
			Store:               st,
			ShardRetries:        *shardRetries,
			QueueDepth:          *queueDepth,
			MaxCells:            *maxCells,
			SweepConcurrency:    *sweeps,
			DefaultInstructions: *instructions,
			DefaultWarmup:       *warmup,
			Retention:           *retention,
			Log:                 logger,
		})
		if err != nil {
			return err
		}
		handler = coord.Handler()
		shutdown = coord.Shutdown
		logger.Printf("leakd: coordinator over %d workers: %s", len(workerAddrs), strings.Join(workerAddrs, ", "))
	} else {
		cfg := server.Config{
			Store:               st,
			Workers:             *workers,
			QueueDepth:          *queueDepth,
			SweepConcurrency:    *sweeps,
			MaxCells:            *maxCells,
			DefaultInstructions: *instructions,
			DefaultWarmup:       *warmup,
			RunTimeout:          *runTimeout,
			MaxRetries:          *maxRetries,
			SweepTimeout:        *sweepTimeout,
			Plane:               plane,
			Retention:           *retention,
			Log:                 logger,
		}
		if *peerURL != "" {
			cfg.Peer = api.NewClient(*peerURL)
			logger.Printf("leakd: federating store misses through %s", *peerURL)
		}
		if *telemetry != "" {
			f, err := os.OpenFile(*telemetry, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			cfg.Events = obs.NewTraceWriter(f)
		}
		srv, err := server.New(cfg)
		if err != nil {
			return err
		}
		handler = srv.Handler()
		shutdown = srv.Shutdown
	}

	// Background GC: pace-limited passes under the configured policy. The
	// loop stops with the daemon; a pass racing the drain is safe (GC and
	// reads/writes share the store lock).
	gcPolicy := store.GCPolicy{TTL: *storeTTL, MaxBytes: *storeMaxB}
	gcStop := make(chan struct{})
	if gcPolicy.Enabled() {
		if *gcInterval <= 0 {
			return fmt.Errorf("-gc-interval must be positive when GC is enabled")
		}
		go func() {
			tick := time.NewTicker(*gcInterval)
			defer tick.Stop()
			for {
				select {
				case <-gcStop:
					return
				case <-tick.C:
					stats, err := st.GC(gcPolicy)
					if err != nil {
						logger.Printf("leakd: store GC: %v", err)
					} else if stats.Dropped > 0 {
						logger.Printf("leakd: store GC dropped %d record(s), reclaimed %d bytes (%d live)",
							stats.Dropped, stats.ReclaimedBytes, stats.Live)
					}
				}
			}
		}()
		logger.Printf("leakd: store GC every %s (ttl=%s, max-bytes=%d)", *gcInterval, *storeTTL, *storeMaxB)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := obs.HardenedServer(handler)
	go func() { _ = hs.Serve(ln) }()
	logger.Printf("leakd: listening on http://%s, store %s (%d cells)",
		ln.Addr(), *storeDir, st.Len())

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	<-ctx.Done()
	stopSignals()

	logger.Printf("leakd: draining (max %s)", *drainWait)
	close(gcStop)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := shutdown(dctx); err != nil {
		logger.Printf("leakd: %v", err)
	}
	obs.Shutdown(hs)
	logger.Printf("leakd: drained, store has %d cells", st.Len())
	return nil
}
