// Command tracegen inspects the synthetic SPECint-2000 workload generators:
// it generates a stream for one benchmark (or all) and reports instruction
// mix, dependence structure, branch composition, reuse-gap statistics and —
// when -machine is set — the stream's behaviour on the Table 2 machine
// (IPC, cache miss rates, branch misprediction). Use it to check a profile
// against its calibration targets or to characterize a custom profile.
//
// With -json, the same summaries are emitted as JSON lines (one object per
// benchmark) for scripted consumption; see StreamSummary for the schema.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hotleakage/internal/sim"
	"hotleakage/internal/trace"
	"hotleakage/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark name (default: all)")
		n       = flag.Uint64("n", 500_000, "instructions to generate / simulate")
		machine = flag.Bool("machine", false, "also run the Table 2 machine over the stream")
		record  = flag.String("record", "", "record the stream to a binary trace file (requires -bench)")
		replay  = flag.String("replay", "", "replay and summarize a recorded trace file")
		asJSON  = flag.Bool("json", false, "emit one JSON object per benchmark instead of text")
	)
	flag.Parse()

	if *replay != "" {
		replayTrace(*replay)
		return
	}
	if *record != "" {
		if *bench == "" {
			fmt.Fprintln(os.Stderr, "-record requires -bench")
			os.Exit(2)
		}
		recordTrace(*bench, *record, *n)
		return
	}

	profs := workload.Profiles()
	if *bench != "" {
		p, ok := workload.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q; have %v\n", *bench, workload.Names())
			os.Exit(2)
		}
		profs = []workload.Profile{p}
	}

	enc := json.NewEncoder(os.Stdout)
	for _, p := range profs {
		s := summarize(p, *n)
		if *machine {
			m, err := machineSummary(p, *n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			s.Machine = &m
		}
		if *asJSON {
			if err := enc.Encode(s); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		s.printText(os.Stdout)
	}
}

// StreamSummary is one benchmark's generated-stream characterization, and
// the schema of a -json output line.
type StreamSummary struct {
	Bench        string `json:"bench"`
	Instructions uint64 `json:"instructions"`
	// Fractions of the instruction stream.
	MemFrac   float64 `json:"mem_frac"`
	StoreFrac float64 `json:"store_frac"`
	CTIFrac   float64 `json:"cti_frac"`
	// TakenFrac is the taken fraction of control transfers.
	TakenFrac float64 `json:"taken_frac"`
	// MeanDep is the mean producer distance of register sources.
	MeanDep float64 `json:"mean_dep"`
	// Lines is the number of distinct 64B lines touched.
	Lines int `json:"lines"`
	// ReuseGap is the reuse-gap histogram over memory accesses, as
	// fractions in the buckets <256, <1k, <4k, <16k, <64k, >=64k.
	ReuseGap [6]float64 `json:"reuse_gap"`

	Machine *MachineSummary `json:"machine,omitempty"`
}

// MachineSummary is the stream's behaviour on the Table 2 machine.
type MachineSummary struct {
	IPC         float64 `json:"ipc"`
	DL1MissRate float64 `json:"dl1_miss_rate"`
	IL1MissRate float64 `json:"il1_miss_rate"`
	L2MissRate  float64 `json:"l2_miss_rate"`
	BpredMiss   float64 `json:"bpred_miss_rate"`
}

// summarize runs the generator for n instructions and characterizes the
// stream.
func summarize(p workload.Profile, n uint64) StreamSummary {
	g := workload.NewGenerator(p)
	var ins workload.Instr
	var mem, store, cti, taken uint64
	var depSum, depCnt uint64
	lastTouch := map[uint64]uint64{}
	gapHist := [6]uint64{} // <256, <1k, <4k, <16k, <64k, >=64k accesses
	var accesses uint64

	for i := uint64(0); i < n; i++ {
		g.Next(&ins)
		if ins.Op.IsMem() {
			mem++
			if ins.Op == workload.OpStore {
				store++
			}
			line := ins.Addr / 64
			if prev, ok := lastTouch[line]; ok {
				gap := accesses - prev
				switch {
				case gap < 256:
					gapHist[0]++
				case gap < 1024:
					gapHist[1]++
				case gap < 4096:
					gapHist[2]++
				case gap < 16384:
					gapHist[3]++
				case gap < 65536:
					gapHist[4]++
				default:
					gapHist[5]++
				}
			}
			lastTouch[line] = accesses
			accesses++
		}
		if ins.Op.IsCTI() {
			cti++
			if ins.Taken {
				taken++
			}
		}
		if ins.Src1 > 0 {
			depSum += uint64(ins.Src1)
			depCnt++
		}
	}
	s := StreamSummary{
		Bench:        p.Name,
		Instructions: n,
		MemFrac:      f(mem, n),
		StoreFrac:    f(store, n),
		CTIFrac:      f(cti, n),
		TakenFrac:    f(taken, cti),
		MeanDep:      float64(depSum) / float64(max(depCnt, 1)),
		Lines:        len(lastTouch),
	}
	for i, g := range gapHist {
		s.ReuseGap[i] = f(g, accesses)
	}
	return s
}

// machineSummary runs the Table 2 machine over the stream.
func machineSummary(p workload.Profile, n uint64) (MachineSummary, error) {
	mc := sim.DefaultMachine(11)
	mc.Warmup = n / 3
	mc.Instructions = n
	r, err := sim.NewSuite(mc).Baseline(context.Background(), p)
	if err != nil {
		return MachineSummary{}, err
	}
	return MachineSummary{
		IPC:         r.CPU.IPC(),
		DL1MissRate: f(r.DStats.Misses, max(r.DStats.Accesses, 1)),
		IL1MissRate: r.ICStats.MissRate(),
		L2MissRate:  r.L2Stats.MissRate(),
		BpredMiss:   r.Bpred.MispredictRate(),
	}, nil
}

func (s StreamSummary) printText(w io.Writer) {
	fmt.Fprintf(w, "%-8s mem=%.3f store=%.3f cti=%.3f taken=%.2f meandep=%.1f lines=%d\n",
		s.Bench, s.MemFrac, s.StoreFrac, s.CTIFrac, s.TakenFrac, s.MeanDep, s.Lines)
	fmt.Fprintf(w, "         reuse-gap histogram (accesses): <256:%.3f <1k:%.3f <4k:%.3f <16k:%.3f <64k:%.3f >=64k:%.3f\n",
		s.ReuseGap[0], s.ReuseGap[1], s.ReuseGap[2], s.ReuseGap[3], s.ReuseGap[4], s.ReuseGap[5])
	if m := s.Machine; m != nil {
		fmt.Fprintf(w, "         IPC=%.2f dl1miss=%.2f%% il1miss=%.2f%% l2miss=%.2f%% bpred=%.2f%%\n",
			m.IPC, 100*m.DL1MissRate, 100*m.IL1MissRate, 100*m.L2MissRate, 100*m.BpredMiss)
	}
}

// recordTrace captures n instructions of a benchmark into path.
func recordTrace(bench, path string, n uint64) {
	prof, ok := workload.ByName(bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", bench)
		os.Exit(2)
	}
	fh, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer fh.Close()
	w, err := trace.NewWriter(fh, bench, n)
	if err == nil {
		err = trace.Record(workload.NewGenerator(prof), w, n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, _ := fh.Stat()
	fmt.Printf("recorded %d instructions of %s to %s (%.1f bytes/instr)\n",
		n, bench, path, float64(st.Size())/float64(n))
}

// replayTrace loads a trace and prints its composition.
func replayTrace(path string) {
	fh, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer fh.Close()
	r, err := trace.NewReader(fh)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var ins workload.Instr
	var mem, cti uint64
	for i := 0; i < r.Len(); i++ {
		r.Next(&ins)
		if ins.Op.IsMem() {
			mem++
		}
		if ins.Op.IsCTI() {
			cti++
		}
	}
	fmt.Printf("trace %q: %d instructions, mem=%.3f cti=%.3f\n",
		r.Name(), r.Len(), f(mem, uint64(r.Len())), f(cti, uint64(r.Len())))
}

func f(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
