package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"hotleakage/internal/workload"
)

// TestJSONSummaryRoundTrip: the -json output must be machine-parseable
// JSONL whose fields agree with the text path's inputs.
func TestJSONSummaryRoundTrip(t *testing.T) {
	p, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	s := summarize(p, 50_000)
	m, err := machineSummary(p, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	s.Machine = &m

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	var back StreamSummary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if back.Bench != "gzip" || back.Instructions != 50_000 {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	if back.MemFrac <= 0 || back.MemFrac >= 1 {
		t.Errorf("mem_frac = %v, want (0,1)", back.MemFrac)
	}
	if back.CTIFrac <= 0 || back.CTIFrac >= 1 {
		t.Errorf("cti_frac = %v, want (0,1)", back.CTIFrac)
	}
	var gapSum float64
	for _, g := range back.ReuseGap {
		gapSum += g
	}
	if gapSum < 0.5 || gapSum > 1.0001 {
		t.Errorf("reuse_gap fractions sum to %v", gapSum)
	}
	if back.Machine == nil || back.Machine.IPC <= 0 {
		t.Fatalf("machine block missing or empty: %+v", back.Machine)
	}
	if back.Machine.DL1MissRate < 0 || back.Machine.DL1MissRate > 1 {
		t.Errorf("dl1_miss_rate = %v", back.Machine.DL1MissRate)
	}

	// Determinism: the generators are seeded, so the JSON bytes are stable.
	s2 := summarize(p, 50_000)
	s2.Machine = s.Machine
	var buf2 bytes.Buffer
	if err := json.NewEncoder(&buf2).Encode(s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("summaries of the same profile are not byte-stable")
	}
}
