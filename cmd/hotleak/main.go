// Command hotleak queries the HotLeakage model from the command line, in
// the spirit of the released HotLeakage tool: pick a technology node and an
// operating point and it reports unit leakage, per-cell leakage for the
// built-in cells in every standby mode, and the leakage power of an SRAM
// structure of a given size. It can also derive k_design factors for the
// built-in gate library (Section 3.1.2).
//
// Usage:
//
//	hotleak -node 70 -temp 110 -vdd 0.9
//	hotleak -node 70 -cells 524288          # e.g. a 64KB data array
//	hotleak -derive                         # k_design for the gate library
//	hotleak -variation                      # inter-die Monte Carlo multipliers
//	hotleak -compare gcc -timeout 2m        # full technique comparison
//
// The -compare mode runs real timing simulations; it honours SIGINT (the
// run stops cleanly) and an optional per-invocation -timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hotleakage/internal/core"
	"hotleakage/internal/harness/profiling"
	"hotleakage/internal/leakage"
	"hotleakage/internal/obs"
	"hotleakage/internal/tech"
)

func main() {
	var (
		node     = flag.Int("node", 70, "technology node in nm (180, 130, 100, 70)")
		tempC    = flag.Float64("temp", 85, "operating temperature in Celsius")
		vdd      = flag.Float64("vdd", 0, "supply voltage (0 = node nominal)")
		cells    = flag.Int("cells", 64*1024*8, "SRAM cell count for the structure report")
		derive   = flag.Bool("derive", false, "derive k_design for the built-in gate library")
		vary     = flag.Bool("variation", false, "report inter-die variation multipliers")
		compare  = flag.String("compare", "", "run the drowsy vs gated-Vss comparison on a benchmark")
		timeout  = flag.Duration("timeout", 0, "deadline for -compare simulations (0 = none)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics and /debug/vars on this address during -compare")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut = flag.String("trace", "", "write an execution trace to this file")
	)
	flag.Parse()

	p, err := tech.ByNode(tech.Node(*node))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *vdd == 0 {
		*vdd = p.VddNominal
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	if *compare != "" {
		if *metrics != "" {
			addr, shutdown, err := obs.Serve(*metrics, obs.Default)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer shutdown()
			fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
		}
		code := runCompare(*compare, *tempC, *timeout, *vary)
		stopProf() // os.Exit skips the deferred stop
		os.Exit(code)
	}

	if *derive {
		fmt.Printf("k_design derivation (stack factor %.2f):\n", leakage.DefaultStackFactor)
		for _, g := range []leakage.Gate{leakage.Inverter(), leakage.NAND2(), leakage.NAND3(), leakage.NOR2()} {
			kd := leakage.DeriveKDesign(g, leakage.DefaultStackFactor)
			fmt.Printf("  %-6s k_n=%.3f k_p=%.3f\n", g.Name, kd.Kn, kd.Kp)
		}
		return
	}

	opts := []leakage.Option{}
	if *vary {
		opts = append(opts, leakage.WithVariation(leakage.DefaultVariation70nm()))
	}
	m := leakage.New(p, opts...)
	m.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(*tempC), Vdd: *vdd})

	fmt.Printf("HotLeakage @ %s, %.0f C, Vdd=%.2f V\n", p.Node, *tempC, *vdd)
	tK := leakage.CelsiusToKelvin(*tempC)
	fmt.Printf("unit subthreshold N: %.4e A   P: %.4e A\n",
		leakage.UnitSubthresholdNominal(p, p.N, 1, *vdd, tK),
		leakage.UnitSubthresholdNominal(p, p.P, 1, *vdd, tK))
	fmt.Printf("unit gate leakage:   %.4e A\n", leakage.UnitGate(p, 1, *vdd, tK))
	if *vary {
		v := m.Variation()
		fmt.Printf("variation multipliers: subN=%.3f subP=%.3f gate=%.3f\n", v.SubN, v.SubP, v.Gate)
	}
	fmt.Println()
	fmt.Printf("%-16s %12s %12s %12s %12s\n", "cell", "active", "drowsy", "gated-vss", "rbb")
	for _, c := range []leakage.Cell{leakage.SRAM6T, leakage.DecoderNAND, leakage.SenseAmp, leakage.InverterDriver} {
		fmt.Printf("%-16s %11.3enW %11.3enW %11.3enW %11.3enW\n", c.Name,
			1e9*m.CellPower(c, leakage.ModeActive),
			1e9*m.CellPower(c, leakage.ModeDrowsy),
			1e9*m.CellPower(c, leakage.ModeGated),
			1e9*m.CellPower(c, leakage.ModeRBB))
	}
	fmt.Println()
	fmt.Printf("structure of %d SRAM cells:\n", *cells)
	for _, mode := range []leakage.Mode{leakage.ModeActive, leakage.ModeDrowsy, leakage.ModeGated, leakage.ModeRBB} {
		fmt.Printf("  %-10s %8.2f mW (%.2f%% of active)\n", mode,
			1e3*m.StructurePower(leakage.SRAM6T, *cells, mode),
			100*m.StandbyFraction(leakage.SRAM6T, mode))
	}
}

// runCompare runs the one-call technique comparison under SIGINT handling
// and an optional deadline.
func runCompare(bench string, tempC float64, timeout time.Duration, vary bool) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := core.CompareTechniquesContext(ctx, core.Options{
		Benchmark: bench,
		TempC:     tempC,
		Variation: vary,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%s @ %.0f C, L2=11: baseline IPC %.2f\n", res.Benchmark, tempC, res.BaselineIPC)
	fmt.Printf("%-10s %12s %12s %10s\n", "technique", "net savings", "perf loss", "turnoff")
	for _, tr := range res.Techniques {
		fmt.Printf("%-10s %11.1f%% %11.2f%% %9.1f%%\n",
			tr.Technique, tr.NetSavingsPct, tr.PerfLossPct, 100*tr.TurnoffRatio)
	}
	return 0
}
