// Command leakbench regenerates the paper's tables and figures.
//
// Usage:
//
//	leakbench -all                 # every figure and table
//	leakbench -fig 8               # one figure (1,3..13)
//	leakbench -table 3             # one table (1,2,3)
//	leakbench -n 2000000 -fig 12   # longer runs
//	leakbench -attack              # leakage vs. savings frontier (prime+probe)
//	leakbench -attack -scenario occupancy -attack-intervals 1024,8192
//
// Output is text tables: one row per benchmark, one column per technique —
// the harness's equivalent of the paper's bar charts.
//
// Long regenerations run supervised: each simulation has an optional
// deadline (-timeout), transient failures retry (-max-retries), completed
// runs are checkpointed (-checkpoint) and an interrupted suite resumes
// (-resume) re-executing only the missing runs. SIGINT drains cleanly:
// in-flight runs stop, completed results are kept (and checkpointed), and
// the failure summary reports what was cut short. A run that fails for any
// reason degrades to an ERR cell in its figures; the command then exits
// non-zero after rendering everything that succeeded.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/harness/profiling"
	"hotleakage/internal/leakage"
	"hotleakage/internal/obs"
	"hotleakage/internal/server/api"
	"hotleakage/internal/sim"
	"hotleakage/internal/tech"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		all        = flag.Bool("all", false, "regenerate every figure and table")
		fig        = flag.Int("fig", 0, "figure number to regenerate (1, 3-13)")
		table      = flag.Int("table", 0, "table number to regenerate (1-3)")
		n          = flag.Uint64("n", 1_000_000, "measured instructions per run")
		warmup     = flag.Uint64("warmup", 300_000, "warmup instructions per run")
		vary       = flag.Bool("variation", false, "enable inter-die parameter variation (Section 3.3)")
		serial     = flag.Bool("serial", false, "disable parallel simulation (same as -workers 1)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = all CPUs; overrides -serial)")
		noTrace    = flag.Bool("no-trace-cache", false, "disable the shared instruction-trace cache (slower; results identical)")
		noBatch    = flag.Bool("no-batch", false, "disable lockstep batch execution of variant groups (slower; results identical)")
		frontFill  = flag.String("front-fill", "auto", "batch front fill policy: auto (skip record+decode for single-consumer traces), trace (always record+replay), live (always generate)")
		traceSpill = flag.String("trace-spill", "", "spill recorded traces to files in this directory instead of memory")
		attackMode = flag.Bool("attack", false, "run the adversarial prime+probe suite: per-technique leakage vs. energy-savings frontier")
		scenario   = flag.String("scenario", "ws-select", "attack scenario for -attack (see internal/attack's registry)")
		attackIvs  = flag.String("attack-intervals", "1024,4096,32768", "comma-separated decay intervals for -attack")
		asCSV      = flag.Bool("csv", false, "emit figures as CSV instead of text tables")
		timeout    = flag.Duration("timeout", 0, "per-run deadline (e.g. 30s; 0 = none)")
		checkpoint = flag.String("checkpoint", "", "JSON-lines file recording completed runs")
		resume     = flag.Bool("resume", false, "resume from -checkpoint (its header must match -n/-warmup)")
		maxRetries = flag.Int("max-retries", 2, "re-executions of a transiently failed run")
		faultSpec  = flag.String("faultinject", "", "inject faults for testing, e.g. panic:1/8[:seed=N][:sticky]")
		remote     = flag.String("remote", "", "delegate simulation to a leakd daemon at this address (host:port or URL); evaluation and rendering stay local")
		remoteFB   = flag.Bool("remote-fallback", true, "degrade to local simulation when the -remote daemon is unreachable (circuit breaker + retries exhausted)")
		telemetry  = flag.String("telemetry", "", "append JSONL telemetry (periodic snapshots + run trace events) to this file")
		telemIv    = flag.Duration("telemetry-interval", 2*time.Second, "snapshot period for -telemetry / -progress")
		metrics    = flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /debug/vars on this address, e.g. :9090")
		progress   = flag.Bool("progress", false, "single-line live progress display on stderr")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace", "", "write an execution trace to this file")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProf()

	// SIGINT/SIGTERM cancel the suite: workers drain, completed runs are
	// kept and checkpointed, and the failure summary reports the rest.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	e := sim.NewExperiments()
	e.Instructions = *n
	e.Warmup = *warmup
	e.Parallel = !*serial
	e.Workers = *workers
	e.DisableTraceCache = *noTrace
	e.DisableBatch = *noBatch
	if e.FrontFill, err = sim.ParseFrontFillMode(*frontFill); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	e.TraceSpillDir = *traceSpill
	e.Ctx = ctx
	e.RunTimeout = *timeout
	e.MaxRetries = *maxRetries
	e.CheckpointPath = *checkpoint
	e.Resume = *resume
	if *vary {
		e.Variation = leakage.DefaultVariation70nm()
	}
	if *faultSpec != "" {
		inj, err := faultinject.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		e.Injector = inj
	}
	if *remote != "" {
		// Thin-client mode: cells are simulated by the daemon (which has
		// its own store, checkpoints and retry policy); the local flags
		// governing execution no longer apply.
		e.Remote = api.NewClient(*remote)
		e.RemoteFallback = *remoteFB
		fmt.Fprintf(os.Stderr, "remote: delegating simulation to %s\n", *remote)
	}

	// Observability: JSONL telemetry file (snapshots + harness trace
	// events joinable to checkpoint records by run key), a scrape
	// endpoint, and a live single-line progress display.
	var tw *obs.TraceWriter
	if *telemetry != "" {
		f, err := os.OpenFile(*telemetry, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		tw = obs.NewTraceWriter(f)
		e.Events = tw
	}
	if *metrics != "" {
		addr, shutdown, err := obs.Serve(*metrics, obs.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}
	if tw != nil || *progress {
		cfg := obs.SamplerConfig{Interval: *telemIv, Trace: tw}
		if *progress {
			cfg.Progress = os.Stderr
		}
		sampler := obs.StartSampler(cfg)
		defer sampler.Stop()
	}

	if !*all && *fig == 0 && *table == 0 && !*attackMode {
		flag.Usage()
		return 2
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
		return 2
	}
	if *n < 300_000 {
		fmt.Fprintf(os.Stderr, "warning: -n %d is small; cold-start effects dominate below ~300000 instructions and gated-Vss is unfairly penalized\n", *n)
	}
	if err := e.Init(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer e.Close()

	csv = *asCSV
	start := time.Now()
	if *attackMode {
		intervals, perr := parseIntervals(*attackIvs)
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			return 2
		}
		f, ferr := e.FrontierFigure(*scenario, 11, 110, intervals)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			return 2
		}
		if csv {
			fmt.Printf("# %s — %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f)
		}
	}
	if *all {
		runFigure(e, 1)
		runTable(e, 1)
		runTable(e, 2)
		for _, f := range []int{3, 5, 7, 8, 10, 12} {
			runFigure(e, f)
		}
		runTable(e, 3)
	} else if *fig != 0 {
		runFigure(e, *fig)
	} else if *table != 0 {
		runTable(e, *table)
	}
	if e.Resumed() > 0 {
		fmt.Fprintf(os.Stderr, "%d run(s) restored from %s, %d executed\n",
			e.Resumed(), *checkpoint, e.Executed())
	}
	fmt.Fprintf(os.Stderr, "total %.1fs\n", time.Since(start).Seconds())

	code := 0
	if s := e.FailureSummary(); s != "" {
		fmt.Fprint(os.Stderr, s)
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "re-run with -checkpoint %s -resume to re-execute only the failed runs\n", *checkpoint)
		}
		code = 1
	}
	if err := e.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	if err := tw.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	if err := e.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	return code
}

func runFigure(e *sim.Experiments, fig int) {
	switch fig {
	case 1:
		for _, c := range sim.Figure1(tech.MustByNode(tech.Node70)) {
			fmt.Println(c)
		}
	case 3, 4:
		printPair(e.Figure3_4())
	case 5, 6:
		printPair(e.Figure5_6())
	case 7:
		printFigure(e.Figure7())
	case 8, 9:
		printPair(e.Figure8_9())
	case 10, 11:
		printPair(e.Figure10_11())
	case 12, 13:
		printPair(e.Figure12_13())
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d (have 1, 3-13)\n", fig)
		os.Exit(2)
	}
}

func runTable(e *sim.Experiments, table int) {
	switch table {
	case 1:
		fmt.Println(sim.Table1())
	case 2:
		fmt.Println(sim.Table2(sim.DefaultMachine(11)))
	case 3:
		fmt.Println(e.Table3())
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d (have 1-3)\n", table)
		os.Exit(2)
	}
}

// csv selects CSV output for figures.
var csv bool

// parseIntervals parses -attack-intervals ("1024,4096,...").
func parseIntervals(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("bad -attack-intervals entry %q (want positive integers)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-attack-intervals is empty")
	}
	return out, nil
}

func printFigure(f sim.Figure) {
	if csv {
		fmt.Printf("# %s — %s [%s]\n%s\n", f.ID, f.Title, f.Metric, f.CSV())
		return
	}
	fmt.Println(f)
}

func printPair(savings, perf sim.Figure) {
	printFigure(savings)
	printFigure(perf)
}
