// Command leakbench regenerates the paper's tables and figures.
//
// Usage:
//
//	leakbench -all                 # every figure and table
//	leakbench -fig 8               # one figure (1,3..13)
//	leakbench -table 3             # one table (1,2,3)
//	leakbench -n 2000000 -fig 12   # longer runs
//
// Output is text tables: one row per benchmark, one column per technique —
// the harness's equivalent of the paper's bar charts.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hotleakage/internal/leakage"
	"hotleakage/internal/sim"
	"hotleakage/internal/tech"
)

func main() {
	var (
		all    = flag.Bool("all", false, "regenerate every figure and table")
		fig    = flag.Int("fig", 0, "figure number to regenerate (1, 3-13)")
		table  = flag.Int("table", 0, "table number to regenerate (1-3)")
		n      = flag.Uint64("n", 1_000_000, "measured instructions per run")
		warmup = flag.Uint64("warmup", 300_000, "warmup instructions per run")
		vary   = flag.Bool("variation", false, "enable inter-die parameter variation (Section 3.3)")
		serial = flag.Bool("serial", false, "disable parallel simulation")
		asCSV  = flag.Bool("csv", false, "emit figures as CSV instead of text tables")
	)
	flag.Parse()

	e := sim.NewExperiments()
	e.Instructions = *n
	e.Warmup = *warmup
	e.Parallel = !*serial
	if *vary {
		e.Variation = leakage.DefaultVariation70nm()
	}

	if !*all && *fig == 0 && *table == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *n < 300_000 {
		fmt.Fprintf(os.Stderr, "warning: -n %d is small; cold-start effects dominate below ~300000 instructions and gated-Vss is unfairly penalized\n", *n)
	}

	csv = *asCSV
	start := time.Now()
	if *all {
		runFigure(e, 1)
		runTable(e, 1)
		runTable(e, 2)
		for _, f := range []int{3, 5, 7, 8, 10, 12} {
			runFigure(e, f)
		}
		runTable(e, 3)
	} else if *fig != 0 {
		runFigure(e, *fig)
	} else {
		runTable(e, *table)
	}
	fmt.Fprintf(os.Stderr, "total %.1fs\n", time.Since(start).Seconds())
}

func runFigure(e *sim.Experiments, fig int) {
	switch fig {
	case 1:
		for _, c := range sim.Figure1(tech.MustByNode(tech.Node70)) {
			fmt.Println(c)
		}
	case 3, 4:
		printPair(e.Figure3_4())
	case 5, 6:
		printPair(e.Figure5_6())
	case 7:
		printFigure(e.Figure7())
	case 8, 9:
		printPair(e.Figure8_9())
	case 10, 11:
		printPair(e.Figure10_11())
	case 12, 13:
		printPair(e.Figure12_13())
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d (have 1, 3-13)\n", fig)
		os.Exit(2)
	}
}

func runTable(e *sim.Experiments, table int) {
	switch table {
	case 1:
		fmt.Println(sim.Table1())
	case 2:
		fmt.Println(sim.Table2(sim.DefaultMachine(11)))
	case 3:
		fmt.Println(e.Table3())
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d (have 1-3)\n", table)
		os.Exit(2)
	}
}

// csv selects CSV output for figures.
var csv bool

func printFigure(f sim.Figure) {
	if csv {
		fmt.Printf("# %s — %s [%s]\n%s\n", f.ID, f.Title, f.Metric, f.CSV())
		return
	}
	fmt.Println(f)
}

func printPair(savings, perf sim.Figure) {
	printFigure(savings)
	printFigure(perf)
}
