// Quickstart: compare drowsy cache against gated-Vss on one benchmark at
// the paper's operating point (70 nm, 110 C, 11-cycle L2) and print the
// net-leakage-savings / performance-loss scorecard.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
	"hotleakage/internal/workload"
)

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	ctx := context.Background()
	// The Table 2 machine with an on-chip 11-cycle L2.
	mc := sim.DefaultMachine(11)
	mc.Warmup = 200_000
	mc.Instructions = 500_000

	suite := sim.NewSuite(mc)
	model := leakage.New(mc.Tech)

	prof, _ := workload.ByName("gcc")
	fmt.Printf("benchmark %s, %v, L2 hit latency %d cycles, decay interval %d\n\n",
		prof.Name, mc.Tech.Node, mc.L2.HitLatency, sim.DefaultInterval)

	base := must(suite.Baseline(ctx, prof))
	fmt.Printf("baseline: IPC %.2f, D-L1 miss %.2f%%\n\n", base.CPU.IPC(),
		100*float64(base.DStats.Misses)/float64(base.DStats.Accesses))

	for _, tq := range []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated, leakctl.TechRBB} {
		params := leakctl.DefaultParams(tq, sim.DefaultInterval)
		p := must(suite.Evaluate(ctx, prof, params, 110, model, nil))
		r := p.Run
		fmt.Printf("%-10s net savings %5.1f%%  perf loss %4.2f%%  turnoff %4.1f%%\n",
			tq, p.Cmp.NetSavingsPct, p.Cmp.PerfLossPct, 100*p.Cmp.TurnoffRatio)
		fmt.Printf("           slow hits %d, induced misses %d, decay writebacks %d\n",
			r.DStats.SlowHits, r.DStats.InducedMisses, r.DStats.DecayWritebacks)
	}

	fmt.Println("\nThe state-destroying technique is competitive because its standby")
	fmt.Println("mode leaks ~40x less than drowsy's, and the out-of-order window hides")
	fmt.Println("most of the induced-miss latency at on-chip L2 speeds.")
}
