// DVS scaling: the HotLeakage feature the Butts-Sohi model cannot provide
// (paper Section 3): leakage recalculated on the fly as supply voltage
// changes. This example sweeps the operating point a DVS governor would
// visit and shows (a) how the D-cache's leakage power and each technique's
// standby residual respond, and (b) the register-file model — the second
// structure HotLeakage ships — at the same points.
//
//	go run ./examples/dvs_scaling
package main

import (
	"fmt"

	"hotleakage/internal/leakage"
	"hotleakage/internal/tech"
)

func main() {
	p := tech.MustByNode(tech.Node70)
	m := leakage.New(p)

	const cells = 64 * 1024 * 8 // 64 KB data array
	fmt.Println("64KB D-cache data array across a DVS schedule, 85C")
	fmt.Printf("%6s %12s %12s %12s %12s\n", "Vdd", "active mW", "drowsy %", "gated %", "rbb %")
	for _, vdd := range []float64{0.9, 0.8, 0.7, 0.6, 0.5} {
		m.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(85), Vdd: vdd})
		fmt.Printf("%6.2f %12.2f %12.2f %12.3f %12.2f\n",
			vdd,
			1e3*m.StructurePower(leakage.SRAM6T, cells, leakage.ModeActive),
			100*m.StandbyFraction(leakage.SRAM6T, leakage.ModeDrowsy),
			100*m.StandbyFraction(leakage.SRAM6T, leakage.ModeGated),
			100*m.StandbyFraction(leakage.SRAM6T, leakage.ModeRBB))
	}

	fmt.Println("\n80x64 integer register file (21264-class, 4R/2W ports), 85C")
	fmt.Printf("%6s %14s %14s\n", "Vdd", "active mW", "drowsy mW")
	for _, vdd := range []float64{0.9, 0.7, 0.5} {
		m.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(85), Vdd: vdd})
		fmt.Printf("%6.2f %14.3f %14.3f\n", vdd,
			1e3*leakage.RegFilePower(m, 80, 64, leakage.ModeActive),
			1e3*leakage.RegFilePower(m, 80, 64, leakage.ModeDrowsy))
	}

	fmt.Println("\nNote how the drowsy residual GROWS as Vdd falls: the gap between the")
	fmt.Println("nominal and drowsy supplies shrinks, eroding drowsy's benefit exactly")
	fmt.Println("when DVS has already cut leakage — while gated-Vss's footer keeps its")
	fmt.Println("~two-orders-of-magnitude reduction at every point.")
}
