// Adaptive decay: the paper's Section 5.4. Gated-Vss benefits dramatically
// from per-benchmark decay intervals because the best interval varies so
// widely (Table 3). This example compares, for each benchmark:
//
//   - a fixed default interval,
//   - the oracle best interval from an offline sweep (Figures 12-13), and
//   - the runtime feedback controller (tags stay awake, induced misses are
//     counted, a small state machine doubles/halves the interval register).
//
// go run ./examples/adaptive_decay
package main

import (
	"context"
	"fmt"
	"log"

	"hotleakage/internal/adaptive"
	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
	"hotleakage/internal/workload"
)

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	ctx := context.Background()
	mc := sim.DefaultMachine(11)
	mc.Warmup = 150_000
	mc.Instructions = 400_000
	suite := sim.NewSuite(mc)
	model := leakage.New(mc.Tech)
	const tempC = 85.0 // the paper's Figure 12 operating point

	e := sim.NewExperiments()
	e.Instructions = mc.Instructions
	e.Warmup = mc.Warmup

	fmt.Printf("gated-Vss net savings %% at %.0fC, L2=11 (fixed %d vs oracle vs feedback)\n",
		tempC, sim.DefaultInterval)
	fmt.Printf("%-8s %8s %14s %16s %9s\n", "bench", "fixed", "oracle(best iv)", "feedback(iv end)", "changes")

	var fxSum, orSum, fbSum float64
	profiles := workload.Profiles()
	for _, prof := range profiles {
		fixed := must(suite.EvaluateRun(ctx, prof,
			must(sim.RunOne(ctx, mc, prof, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), nil)),
			tempC, model))

		// Oracle: best interval from the sweep.
		best := fixed
		bestIv := uint64(sim.DefaultInterval)
		for _, p := range e.IntervalCurve(prof.Name, leakctl.TechGated, 11, tempC) {
			if p.Cmp.NetSavingsPct > best.Cmp.NetSavingsPct {
				best = p
				bestIv = p.Interval
			}
		}

		// Feedback controller, started from the default interval.
		ctl := adaptive.NewFeedback(sim.DefaultInterval, 8)
		fb := must(suite.EvaluateRun(ctx, prof,
			must(sim.RunOne(ctx, mc, prof, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), ctl)),
			tempC, model))

		fmt.Printf("%-8s %8.1f %8.1f (%3dk) %8.1f (%3dk) %9d\n",
			prof.Name, fixed.Cmp.NetSavingsPct,
			best.Cmp.NetSavingsPct, bestIv/1024,
			fb.Cmp.NetSavingsPct, ctl.Interval()/1024, ctl.Changes)
		fxSum += fixed.Cmp.NetSavingsPct
		orSum += best.Cmp.NetSavingsPct
		fbSum += fb.Cmp.NetSavingsPct
	}
	n := float64(len(profiles))
	fmt.Printf("%-8s %8.1f %8.1f %15.1f\n", "AVG", fxSum/n, orSum/n, fbSum/n)
	fmt.Println("\nThe controller recovers roughly half the oracle's headroom with no")
	fmt.Println("offline profiling, and rescues the worst fixed-interval cases (crafty)")
	fmt.Println("outright — the paper's argument for adaptive gated-Vss. The per-line")
	fmt.Println("scheme (BenchmarkAblationPerLineAdaptive) closes most of the rest.")
}
