// Temperature sweep: the paper's Section 5.2 story. Leakage depends
// exponentially on temperature, so the same timing run yields very
// different net savings at different operating temperatures — and the
// HotLeakage model recalculates leakage at each point without re-running
// timing. This example sweeps 25-120 C for both techniques over three
// benchmarks with one timing simulation each.
//
//	go run ./examples/temperature_sweep
package main

import (
	"context"
	"fmt"
	"log"

	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
	"hotleakage/internal/workload"
)

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	ctx := context.Background()
	mc := sim.DefaultMachine(11)
	mc.Warmup = 150_000
	mc.Instructions = 400_000
	suite := sim.NewSuite(mc)
	model := leakage.New(mc.Tech)

	temps := []float64{25, 55, 85, 110, 120}
	benches := []string{"gcc", "gzip", "mcf"}

	// One timing run per (bench, technique); re-scored per temperature.
	for _, bench := range benches {
		prof, _ := workload.ByName(bench)
		runs := map[leakctl.Technique]sim.RunResult{}
		for _, tq := range []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated} {
			runs[tq] = must(sim.RunOne(ctx, mc, prof, leakctl.DefaultParams(tq, sim.DefaultInterval), nil))
		}
		fmt.Printf("%s — net leakage savings %% by temperature (L2=11, interval %d)\n",
			bench, sim.DefaultInterval)
		fmt.Printf("%8s %10s %10s   %s\n", "temp C", "drowsy", "gated-vss", "D-cache leak mW")
		for _, tc := range temps {
			d := must(suite.EvaluateRun(ctx, prof, runs[leakctl.TechDrowsy], tc, model))
			g := must(suite.EvaluateRun(ctx, prof, runs[leakctl.TechGated], tc, model))
			// Baseline cache leakage power at this temperature.
			leakW := d.Cmp.BaseLeakJ / (float64(must(suite.Baseline(ctx, prof)).CPU.Cycles) / mc.Tech.ClockHz)
			fmt.Printf("%8.0f %10.1f %10.1f   %.1f\n",
				tc, d.Cmp.NetSavingsPct, g.Cmp.NetSavingsPct, 1e3*leakW)
		}
		fmt.Println()
	}
	fmt.Println("Savings grow with temperature for both techniques: the leakage being")
	fmt.Println("reclaimed is exponential in T while the dynamic overheads are fixed.")
}
