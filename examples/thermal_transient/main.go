// Thermal transient: the capability that distinguishes HotLeakage from the
// static Butts-Sohi model (paper Section 3): leakage recalculated
// dynamically as temperature changes at runtime. Because timing and dynamic
// energy are temperature-independent in this harness, one timing run can be
// integrated against any temperature trajectory: here a workload heats the
// die from 60 C toward a 105 C steady state with a first-order thermal RC,
// and the leakage energy (baseline and under each technique) is integrated
// phase by phase.
//
//	go run ./examples/thermal_transient
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"hotleakage/internal/energy"
	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
	"hotleakage/internal/workload"
)

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	ctx := context.Background()
	mc := sim.DefaultMachine(11)
	mc.Warmup = 150_000
	mc.Instructions = 400_000
	suite := sim.NewSuite(mc)
	model := leakage.New(mc.Tech)

	prof, _ := workload.ByName("gcc")
	base := must(suite.Baseline(ctx, prof))
	runs := map[leakctl.Technique]sim.RunResult{
		leakctl.TechDrowsy: must(sim.RunOne(ctx, mc, prof, leakctl.DefaultParams(leakctl.TechDrowsy, sim.DefaultInterval), nil)),
		leakctl.TechGated:  must(sim.RunOne(ctx, mc, prof, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), nil)),
	}

	// First-order heating: T(t) = Tss - (Tss-T0) * exp(-t/tau). The run
	// is notionally looped for the whole transient; each phase re-uses
	// the same timing statistics at its own temperature.
	const (
		t0C    = 60.0
		tssC   = 105.0
		tauMS  = 2.0
		spanMS = 10.0
		phases = 20
	)

	fmt.Println("gcc, L2=11: leakage-control profit while the die heats up")
	fmt.Printf("%8s %8s | %22s\n", "t (ms)", "T (C)", "net savings %")
	fmt.Printf("%8s %8s | %10s %10s\n", "", "", "drowsy", "gated-vss")

	var avgD, avgG float64
	for i := 0; i < phases; i++ {
		t := spanMS * float64(i) / float64(phases-1)
		tempC := tssC - (tssC-t0C)*math.Exp(-t/tauMS)
		model.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(tempC), Vdd: mc.Tech.VddNominal})
		d, err := energy.Compare(model, mc.L1D, leakage.ModeDrowsy,
			base.Measurement, runs[leakctl.TechDrowsy].Measurement, mc.Tech.ClockHz)
		if err != nil {
			log.Fatal(err)
		}
		g, err := energy.Compare(model, mc.L1D, leakage.ModeGated,
			base.Measurement, runs[leakctl.TechGated].Measurement, mc.Tech.ClockHz)
		if err != nil {
			log.Fatal(err)
		}
		avgD += d.NetSavingsPct
		avgG += g.NetSavingsPct
		if i%2 == 0 {
			fmt.Printf("%8.1f %8.1f | %10.1f %10.1f\n", t, tempC, d.NetSavingsPct, g.NetSavingsPct)
		}
	}
	fmt.Printf("%17s | %10.1f %10.1f  (transient average)\n", "", avgD/phases, avgG/phases)

	fmt.Println("\nA static (Butts-Sohi style) model evaluated at the steady state would")
	fmt.Println("overstate the savings of the whole transient; HotLeakage's per-phase")
	fmt.Println("recalculation integrates the exponential T dependence correctly.")
}
