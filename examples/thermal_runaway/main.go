// Thermal runaway: the end-game of the leakage problem the paper opens
// with. Leakage grows exponentially with temperature and temperature grows
// with power — on a hot die with weak cooling this loop has no fixed point.
// This example couples the HotLeakage model to a first-order thermal node
// and sweeps the on-die SRAM budget, showing where the uncontrolled die
// stops converging and how much headroom each leakage-control technique
// buys at an 80% turnoff ratio.
//
//	go run ./examples/thermal_runaway
package main

import (
	"errors"
	"fmt"

	"hotleakage/internal/leakage"
	"hotleakage/internal/tech"
	"hotleakage/internal/thermal"
)

func main() {
	p := tech.MustByNode(tech.Node70)
	m := leakage.New(p)
	rc := thermal.Default70nm()
	rc.RThermal = 1.5 // a cheap package
	const coreDynW = 15.0
	const turnoff = 0.80
	const limitK = 400.0

	power := func(mode leakage.Mode, cells int) func(float64) float64 {
		return func(tempK float64) float64 {
			m.SetEnv(leakage.Env{TempK: tempK, Vdd: p.VddNominal})
			active := m.StructurePower(leakage.SRAM6T, cells, leakage.ModeActive)
			if mode == leakage.ModeActive {
				return coreDynW + active
			}
			standby := m.StructurePower(leakage.SRAM6T, cells, mode)
			return coreDynW + (1-turnoff)*active + turnoff*standby
		}
	}

	show := func(tempK float64, err error) string {
		if errors.Is(err, thermal.ErrRunaway) {
			return "RUNAWAY"
		}
		return fmt.Sprintf("%.1f C", tempK-273.15)
	}

	fmt.Printf("equilibrium die temperature vs on-die SRAM budget (R=%.1f K/W, %.0f W core)\n",
		rc.RThermal, coreDynW)
	fmt.Printf("%8s %14s %14s %14s %14s\n", "SRAM MB", "uncontrolled", "drowsy@80%", "gated@80%", "rbb@80%")
	for _, mb := range []int{4, 8, 16, 24, 32, 48} {
		cells := mb << 20 * 8
		un, errU := rc.Equilibrium(power(leakage.ModeActive, cells), limitK)
		dr, errD := rc.Equilibrium(power(leakage.ModeDrowsy, cells), limitK)
		gt, errG := rc.Equilibrium(power(leakage.ModeGated, cells), limitK)
		rb, errR := rc.Equilibrium(power(leakage.ModeRBB, cells), limitK)
		fmt.Printf("%8d %14s %14s %14s %14s\n", mb,
			show(un, errU), show(dr, errD), show(gt, errG), show(rb, errR))
	}

	fmt.Println("\nThe uncontrolled die crosses into runaway first; drowsy's 16% residual")
	fmt.Println("buys a few sizes of headroom; gated-Vss's near-total shutoff moves the")
	fmt.Println("wall furthest out — leakage control as a thermal-integrity feature, not")
	fmt.Println("just an energy optimization.")
}
