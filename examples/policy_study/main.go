// Policy study: the drowsy paper's two deactivation policies, compared on
// this harness (paper Section 2.3). The "noaccess" policy deactivates only
// lines idle for the full decay interval; the "simple" policy blankets the
// whole cache every interval with no per-line history — more leakage saved,
// more wake-ups paid. The paper uses noaccess for both techniques to keep
// the comparison fair; this example shows what the choice costs.
//
//	go run ./examples/policy_study
package main

import (
	"context"
	"fmt"
	"log"

	"hotleakage/internal/decay"
	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
	"hotleakage/internal/workload"
)

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	ctx := context.Background()
	mc := sim.DefaultMachine(11)
	mc.Warmup = 150_000
	mc.Instructions = 400_000
	suite := sim.NewSuite(mc)
	model := leakage.New(mc.Tech)

	fmt.Printf("drowsy cache at 110C, L2=11, interval %d: noaccess vs simple policy\n\n", sim.DefaultInterval)
	fmt.Printf("%-8s | %21s | %21s\n", "", "noaccess", "simple")
	fmt.Printf("%-8s | %7s %6s %6s | %7s %6s %6s\n",
		"bench", "net%", "perf%", "off%", "net%", "perf%", "off%")

	for _, name := range []string{"gcc", "gzip", "twolf", "crafty"} {
		prof, _ := workload.ByName(name)
		row := make(map[decay.Policy]sim.Point)
		for _, pol := range []decay.Policy{decay.PolicyNoAccess, decay.PolicySimple} {
			params := leakctl.DefaultParams(leakctl.TechDrowsy, sim.DefaultInterval)
			params.Policy = pol
			run := must(sim.RunOne(ctx, mc, prof, params, nil))
			row[pol] = must(suite.EvaluateRun(ctx, prof, run, 110, model))
		}
		na, si := row[decay.PolicyNoAccess], row[decay.PolicySimple]
		fmt.Printf("%-8s | %7.1f %6.2f %6.1f | %7.1f %6.2f %6.1f\n",
			name,
			na.Cmp.NetSavingsPct, na.Cmp.PerfLossPct, 100*na.Cmp.TurnoffRatio,
			si.Cmp.NetSavingsPct, si.Cmp.PerfLossPct, 100*si.Cmp.TurnoffRatio)
	}

	fmt.Println("\nThe simple policy turns off more of the cache (higher turnoff ratio)")
	fmt.Println("at the cost of more wake-ups and performance loss — the drowsy paper's")
	fmt.Println("observation that the difference is modest because slow hits are cheap.")
}
