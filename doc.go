// Package hotleakage is a from-scratch Go reproduction of "Comparison of
// State-Preserving vs. Non-State-Preserving Leakage Control in Caches"
// (Parikh, Zhang, Sankaranarayanan, Skadron, Stan): the HotLeakage
// architectural leakage model, a Wattch-style dynamic power model, a
// set-associative cache hierarchy with drowsy-cache and gated-Vss leakage
// control, a simplified out-of-order core, synthetic SPECint-2000 workload
// generators, and a benchmark harness that regenerates every table and
// figure in the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benches in bench_test.go regenerate the figures:
//
//	go test -bench=Figure8 -benchtime=1x -v .
//
// The implementation lives under internal/; the runnable entry points are
// cmd/leakbench (all experiments), cmd/hotleak (leakage-model queries),
// cmd/tracegen (workload inspection), and the examples/ directory.
package hotleakage
