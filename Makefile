GO ?= go

# Seed-commit (b1ceed6) SimulatorThroughput rate in instr/s, measured on
# the same host interleaved with the current code (see EXPERIMENTS.md,
# "Simulator throughput tracking"). Override when re-baselining:
#   make bench BASELINE_INSTR_S=...
BASELINE_INSTR_S ?= 1990000

.PHONY: build test verify smoke-daemon smoke-cluster chaos bench bench-throughput bench-sweep bench-batch bench-all clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The verify tier: static analysis plus the full suite under the race
# detector. Slower than `make test`; run before merging.
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...

# End-to-end daemon smoke: start leakd on a temp store, run a sweep over
# HTTP, require the warm resubmit to be 100% store hits, SIGTERM-drain.
smoke-daemon:
	./scripts/daemon_smoke.sh

# End-to-end cluster smoke: three workers plus a coordinator, kill -9 one
# worker mid-sweep and require completion with zero lost cells, then
# restart the dead worker with -peer and require a federated store hit.
# See DESIGN.md §13.
smoke-cluster:
	./scripts/cluster_smoke.sh

# Chaos tier: fault-injected store/server suites under the race detector,
# then the black-box chaos smoke (real leakd under an armed fault plane,
# kill -9 mid-sweep, restart-recovery, GC reclamation, bit-identical
# results vs a fault-free reference). See DESIGN.md §11.
chaos:
	$(GO) test -race -run 'TestChaos|TestFault|TestGC|TestQuarantine|TestHub|TestSSE|TestPanic|TestSweepWatchdog|TestDegraded|TestHealthz|TestBreaker|TestRetry' ./internal/store/ ./internal/server/... ./internal/harness/faultinject/
	./scripts/chaos_smoke.sh

bench: bench-throughput bench-sweep

# Simulator throughput: five samples of the committed-instruction rate,
# recorded with date and commit in BENCH_throughput.json for longitudinal
# comparison against the seed baseline.
# Note: the bench output is captured with a redirect, not `| tee` — a
# pipe would report the pipe's exit status and let a failing benchmark
# masquerade as a pass.
bench-throughput:
	$(GO) test -run '^$$' -bench=SimulatorThroughput -count=5 . > bench_throughput.tmp || { cat bench_throughput.tmp; rm -f bench_throughput.tmp; exit 1; }
	cat bench_throughput.tmp
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	    -v commit="$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	    -v base="$(BASELINE_INSTR_S)" ' \
	  /instr\/s/ { v[n++] = $$(NF-1) } \
	  END { \
	    printf "{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n", date, commit; \
	    printf "  \"benchmark\": \"BenchmarkSimulatorThroughput\",\n"; \
	    printf "  \"sample_rule\": \"compare medians; individual samples >15%% below the run median are shared-host load artifacts, not code regressions (see EXPERIMENTS.md, Simulator throughput tracking)\",\n"; \
	    printf "  \"instr_per_s\": ["; \
	    for (i = 0; i < n; i++) printf "%s%s", (i ? ", " : ""), v[i]; \
	    printf "],\n  \"baseline_commit\": \"b1ceed6\",\n"; \
	    printf "  \"baseline_instr_per_s\": %s\n}\n", base; \
	  }' bench_throughput.tmp > BENCH_throughput.json
	rm -f bench_throughput.tmp
	cat BENCH_throughput.json

# Sweep-level throughput: three samples of each SuiteSweep variant (full
# batched path / scalar supervisor path / no trace cache / one worker),
# recorded in BENCH_sweep.json. The variants come from one interleaved
# invocation on one host, so the full-vs-disabled ratios are a
# like-for-like measurement of the batch executor, the trace cache and
# the scheduler.
bench-sweep:
	$(GO) test -run '^$$' -bench=SuiteSweep -benchtime=1x -count=3 . > bench_sweep.tmp || { cat bench_sweep.tmp; rm -f bench_sweep.tmp; exit 1; }
	cat bench_sweep.tmp
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	    -v commit="$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" ' \
	  /^BenchmarkSuiteSweep\// { \
	    name = $$1; sub(/^BenchmarkSuiteSweep\//, "", name); sub(/-[0-9]+$$/, "", name); \
	    if (!(name in v)) ord[no++] = name; \
	    for (i = 2; i <= NF; i++) if ($$i == "instr/s") \
	      v[name] = v[name] (v[name] ? ", " : "") $$(i-1); \
	  } \
	  END { \
	    printf "{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n", date, commit; \
	    printf "  \"benchmark\": \"BenchmarkSuiteSweep\",\n"; \
	    printf "  \"methodology\": \"one full Figure 8/9 regeneration (33 cells) per iteration; full = batched lockstep execution (default), scalar = per-cell supervisor path; variants interleaved in one invocation on one host, 3 samples each; see EXPERIMENTS.md, Sweep throughput tracking\",\n"; \
	    printf "  \"instr_per_s\": {"; \
	    for (i = 0; i < no; i++) printf "%s\n    \"%s\": [%s]", (i ? "," : ""), ord[i], v[ord[i]]; \
	    printf "\n  }\n}\n"; \
	  }' bench_sweep.tmp > BENCH_sweep.json
	rm -f bench_sweep.tmp
	cat BENCH_sweep.json

# Batched-vs-scalar regression guard: run the two SuiteSweep variants
# interleaved and fail if the batched path is slower than the scalar
# path it replaced (median of 3 samples each). CI runs this as its bench
# smoke; it is deliberately cheap (~1 min) rather than statistically
# deep — BENCH_sweep.json is the longitudinal record.
bench-batch:
	$(GO) test -run '^$$' -bench='SuiteSweep/(full|scalar)' -benchtime=1x -count=3 . > bench_batch.tmp || { cat bench_batch.tmp; rm -f bench_batch.tmp; exit 1; }
	cat bench_batch.tmp
	awk ' \
	  /^BenchmarkSuiteSweep\// { \
	    name = $$1; sub(/^BenchmarkSuiteSweep\//, "", name); sub(/-[0-9]+$$/, "", name); \
	    for (i = 2; i <= NF; i++) if ($$i == "instr/s") { c[name]++; v[name, c[name]] = $$(i-1) } \
	  } \
	  function med(name,   n, a, b, t, i, j) { \
	    n = c[name]; \
	    for (i = 1; i <= n; i++) a[i] = v[name, i] + 0; \
	    for (i = 1; i <= n; i++) for (j = i + 1; j <= n; j++) \
	      if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t } \
	    return a[int((n + 1) / 2)]; \
	  } \
	  END { \
	    f = med("full"); s = med("scalar"); \
	    printf "batched (full) median: %.0f instr/s\nscalar median:         %.0f instr/s\nratio: %.2fx\n", f, s, f / s; \
	    if (f < s) { print "FAIL: batched sweep is slower than the scalar path"; exit 1 } \
	  }' bench_batch.tmp || { rm -f bench_batch.tmp; exit 1; }
	rm -f bench_batch.tmp

# Every benchmark (figures, tables, ablations) at minimal iteration count.
bench-all:
	$(GO) test -bench=. -benchtime=1x -v .

clean:
	$(GO) clean ./...
	rm -f results/*.json
