GO ?= go

# Seed-commit (b1ceed6) SimulatorThroughput rate in instr/s, measured on
# the same host interleaved with the current code (see EXPERIMENTS.md,
# "Simulator throughput tracking"). Override when re-baselining:
#   make bench BASELINE_INSTR_S=...
BASELINE_INSTR_S ?= 1990000

# Profile-guided optimization input for the bench targets: a checked-in
# CPU profile of the two tracked benchmarks (refresh via `make profile`
# and copy cpu.pprof over it when the hot paths move). The recorded
# BENCH_*.json numbers are PGO builds; `make test` and plain `go build`
# are not, so apples-to-apples comparisons must go through these targets.
# Set PGO=off to bench without it.
PGO ?= results/profiles/default.pgo

# bench-guard tolerance: fail when the fresh median is more than this many
# percent below the recorded BENCH_throughput.json median.
GUARD_TOL ?= 15

.PHONY: build test verify smoke-daemon smoke-cluster smoke-security chaos bench bench-throughput bench-sweep bench-batch bench-guard bench-all profile clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The verify tier: static analysis plus the full suite under the race
# detector. Slower than `make test`; run before merging.
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...

# End-to-end daemon smoke: start leakd on a temp store, run a sweep over
# HTTP, require the warm resubmit to be 100% store hits, SIGTERM-drain.
smoke-daemon:
	./scripts/daemon_smoke.sh

# End-to-end cluster smoke: three workers plus a coordinator, kill -9 one
# worker mid-sweep and require completion with zero lost cells, then
# restart the dead worker with -peer and require a federated store hit.
# See DESIGN.md §13.
smoke-cluster:
	./scripts/cluster_smoke.sh

# End-to-end security smoke: run a tiny attack sweep (prime+probe channel
# cells) through a real leakd, require drowsy to leak strictly more than
# gated-Vss, the warm resubmit to be 100% store hits, and leakbench
# -attack -remote to report the same metric values. See DESIGN.md §14.
smoke-security:
	./scripts/security_smoke.sh

# Chaos tier: fault-injected store/server suites under the race detector,
# then the black-box chaos smoke (real leakd under an armed fault plane,
# kill -9 mid-sweep, restart-recovery, GC reclamation, bit-identical
# results vs a fault-free reference). See DESIGN.md §11.
chaos:
	$(GO) test -race -run 'TestChaos|TestFault|TestGC|TestQuarantine|TestHub|TestSSE|TestPanic|TestSweepWatchdog|TestDegraded|TestHealthz|TestBreaker|TestRetry' ./internal/store/ ./internal/server/... ./internal/harness/faultinject/
	./scripts/chaos_smoke.sh

bench: bench-throughput bench-sweep

# Simulator throughput: five samples of the committed-instruction rate,
# recorded with date and commit in BENCH_throughput.json for longitudinal
# comparison against the seed baseline.
# Note: the bench output is captured with a redirect, not `| tee` — a
# pipe would report the pipe's exit status and let a failing benchmark
# masquerade as a pass.
bench-throughput:
	$(GO) test -pgo=$(PGO) -run '^$$' -bench=SimulatorThroughput -count=5 . > bench_throughput.tmp || { cat bench_throughput.tmp; rm -f bench_throughput.tmp; exit 1; }
	cat bench_throughput.tmp
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	    -v commit="$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	    -v base="$(BASELINE_INSTR_S)" ' \
	  /instr\/s/ { v[n++] = $$(NF-1) } \
	  END { \
	    printf "{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n", date, commit; \
	    printf "  \"benchmark\": \"BenchmarkSimulatorThroughput\",\n"; \
	    printf "  \"sample_rule\": \"compare medians; individual samples >15%% below the run median are shared-host load artifacts, not code regressions (see EXPERIMENTS.md, Simulator throughput tracking)\",\n"; \
	    printf "  \"instr_per_s\": ["; \
	    for (i = 0; i < n; i++) printf "%s%s", (i ? ", " : ""), v[i]; \
	    printf "],\n  \"baseline_commit\": \"b1ceed6\",\n"; \
	    printf "  \"baseline_instr_per_s\": %s\n}\n", base; \
	  }' bench_throughput.tmp > BENCH_throughput.json
	rm -f bench_throughput.tmp
	cat BENCH_throughput.json

# Sweep-level throughput: three samples of each SuiteSweep variant (full
# batched path / scalar supervisor path / no trace cache / one worker),
# recorded in BENCH_sweep.json. The benchmark round-robins all four
# variants inside every iteration (see BenchmarkSuiteSweep's methodology
# comment), so each count=3 sample yields one paired measurement of every
# variant under the same host conditions and the full-vs-disabled ratios
# are a like-for-like measurement of the batch executor, the trace cache
# and the scheduler.
bench-sweep:
	$(GO) test -pgo=$(PGO) -run '^$$' -bench=SuiteSweep -benchtime=1x -count=3 . > bench_sweep.tmp || { cat bench_sweep.tmp; rm -f bench_sweep.tmp; exit 1; }
	cat bench_sweep.tmp
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	    -v commit="$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" ' \
	  /^BenchmarkSuiteSweep/ { \
	    for (i = 2; i <= NF; i++) if ($$i ~ /:instr\/s$$/) { \
	      name = $$i; sub(/:instr\/s$$/, "", name); \
	      if (!(name in v)) ord[no++] = name; \
	      v[name] = v[name] (v[name] ? ", " : "") $$(i-1); \
	    } \
	  } \
	  END { \
	    printf "{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n", date, commit; \
	    printf "  \"benchmark\": \"BenchmarkSuiteSweep\",\n"; \
	    printf "  \"methodology\": \"one full Figure 8/9 regeneration (33 cells) per variant per iteration; full = batched lockstep execution (default), scalar = per-cell supervisor path; all four variants run inside each iteration in mirrored order with per-variant stopwatches after one untimed warmup sweep, 3 samples each, PGO build; see EXPERIMENTS.md, Sweep throughput tracking\",\n"; \
	    printf "  \"instr_per_s\": {"; \
	    for (i = 0; i < no; i++) printf "%s\n    \"%s\": [%s]", (i ? "," : ""), ord[i], v[ord[i]]; \
	    printf "\n  }\n}\n"; \
	  }' bench_sweep.tmp > BENCH_sweep.json
	rm -f bench_sweep.tmp
	cat BENCH_sweep.json

# Batched-vs-scalar regression guard: fail if the batched path is slower
# than the scalar path it replaced (median of 3 samples each). The
# variants are paired — SuiteSweep runs them inside the same iteration —
# so host drift cancels out of the ratio. CI runs this as its bench
# smoke; it is deliberately cheap (~1 min) rather than statistically
# deep — BENCH_sweep.json is the longitudinal record.
bench-batch:
	$(GO) test -pgo=$(PGO) -run '^$$' -bench=SuiteSweep -benchtime=1x -count=3 . > bench_batch.tmp || { cat bench_batch.tmp; rm -f bench_batch.tmp; exit 1; }
	cat bench_batch.tmp
	awk ' \
	  /^BenchmarkSuiteSweep/ { \
	    for (i = 2; i <= NF; i++) if ($$i ~ /:instr\/s$$/) { \
	      name = $$i; sub(/:instr\/s$$/, "", name); \
	      c[name]++; v[name, c[name]] = $$(i-1); \
	    } \
	  } \
	  function med(name,   n, a, b, t, i, j) { \
	    n = c[name]; \
	    for (i = 1; i <= n; i++) a[i] = v[name, i] + 0; \
	    for (i = 1; i <= n; i++) for (j = i + 1; j <= n; j++) \
	      if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t } \
	    return a[int((n + 1) / 2)]; \
	  } \
	  END { \
	    f = med("full"); s = med("scalar"); \
	    printf "batched (full) median: %.0f instr/s\nscalar median:         %.0f instr/s\nratio: %.2fx\n", f, s, f / s; \
	    if (f < s) { print "FAIL: batched sweep is slower than the scalar path"; exit 1 } \
	  }' bench_batch.tmp || { rm -f bench_batch.tmp; exit 1; }
	rm -f bench_batch.tmp

# Throughput regression guard against the recorded baseline: five fresh
# SimulatorThroughput samples compared median-to-median against the
# samples recorded in BENCH_throughput.json. Fresh samples more than 15%
# below the fresh run's median are shared-host load artifacts (the
# recorded sample_rule) and are discarded before the comparison; the
# guard fails when the surviving median is more than $(GUARD_TOL)% below
# the recorded median. CI runs this job advisory (continue-on-error):
# shared runners drift more than the tolerance without any code change,
# so a red guard is a prompt to re-measure, not an automatic veto.
bench-guard:
	$(GO) test -pgo=$(PGO) -run '^$$' -bench=SimulatorThroughput -count=5 . > bench_guard.tmp || { cat bench_guard.tmp; rm -f bench_guard.tmp; exit 1; }
	cat bench_guard.tmp
	awk -v tol=$(GUARD_TOL) ' \
	  function med(a, n,   t, i, j) { \
	    for (i = 1; i <= n; i++) for (j = i + 1; j <= n; j++) \
	      if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t } \
	    return a[int((n + 1) / 2)]; \
	  } \
	  FNR == NR { if (/instr\/s/) fresh[++nf] = $$(NF-1) + 0; next } \
	  /^  "instr_per_s"/ { line = $$0; gsub(/[^0-9. ]/, " ", line); nb = split(line, base, " ") } \
	  END { \
	    if (nf == 0) { print "bench-guard: no fresh samples parsed"; exit 1 } \
	    if (nb == 0) { print "bench-guard: no baseline samples in BENCH_throughput.json"; exit 1 } \
	    fm = med(fresh, nf); \
	    k = 0; for (i = 1; i <= nf; i++) if (fresh[i] >= 0.85 * fm) keep[++k] = fresh[i]; \
	    fm = med(keep, k); \
	    for (i = 1; i <= nb; i++) bb[i] = base[i] + 0; \
	    bm = med(bb, nb); \
	    printf "fresh median:    %.0f instr/s (%d/%d samples kept)\n", fm, k, nf; \
	    printf "recorded median: %.0f instr/s (BENCH_throughput.json)\n", bm; \
	    printf "ratio: %.3fx (tolerance: -%d%%)\n", fm / bm, tol; \
	    if (fm < (1 - tol / 100) * bm) { \
	      print "FAIL: fresh median regressed past the tolerance"; exit 1 \
	    } \
	    print "OK"; \
	  }' bench_guard.tmp BENCH_throughput.json || { rm -f bench_guard.tmp; exit 1; }
	rm -f bench_guard.tmp

# CPU and heap profiles of the tracked throughput benchmark, written under
# results/profiles/ for pprof analysis (recipe in EXPERIMENTS.md,
# "Profiling the backend"). results/profiles/default.pgo is the checked-in
# profile-guided-optimization input the bench targets build with; copy a
# fresh cpu.pprof over it when the hot paths move.
profile:
	mkdir -p results/profiles
	$(GO) test -run '^$$' -bench=SimulatorThroughput -count=5 \
	  -o results/profiles/bench.test \
	  -cpuprofile=results/profiles/cpu.pprof -memprofile=results/profiles/mem.pprof .
	$(GO) tool pprof -top -nodecount=15 results/profiles/cpu.pprof

# Every benchmark (figures, tables, ablations) at minimal iteration count.
bench-all:
	$(GO) test -bench=. -benchtime=1x -v .

clean:
	$(GO) clean ./...
	rm -f results/*.json
