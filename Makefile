GO ?= go

.PHONY: build test verify bench clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The verify tier: static analysis plus the full suite under the race
# detector. Slower than `make test`; run before merging.
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -v .

clean:
	$(GO) clean ./...
	rm -f results/*.json
