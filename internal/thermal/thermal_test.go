package thermal

import (
	"errors"
	"math"
	"testing"

	"hotleakage/internal/leakage"
	"hotleakage/internal/tech"
)

func TestStepTowardEquilibrium(t *testing.T) {
	rc := Default70nm()
	const watts = 20.0
	want := rc.AmbientK + rc.RThermal*watts
	temp := rc.AmbientK
	for i := 0; i < 100000; i++ {
		temp = rc.Step(temp, watts, 1e-5)
	}
	if math.Abs(temp-want) > 0.1 {
		t.Fatalf("steady state %v, want %v", temp, want)
	}
}

func TestStepCoolsWithoutPower(t *testing.T) {
	rc := Default70nm()
	temp := rc.AmbientK + 50
	next := rc.Step(temp, 0, 1e-5)
	if next >= temp {
		t.Fatal("unpowered node did not cool")
	}
}

func TestEquilibriumConstantPower(t *testing.T) {
	rc := Default70nm()
	got, err := rc.Equilibrium(func(float64) float64 { return 25 }, 500)
	if err != nil {
		t.Fatal(err)
	}
	want := rc.AmbientK + rc.RThermal*25
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("equilibrium %v, want %v", got, want)
	}
}

func TestEquilibriumWithLeakageFeedback(t *testing.T) {
	// Close the real loop: fixed dynamic power plus the HotLeakage
	// model's temperature-dependent leakage of a large SRAM budget.
	p := tech.MustByNode(tech.Node70)
	m := leakage.New(p)
	rc := Default70nm()
	const cells = 16 * 1024 * 1024 * 8 // 16 MB of on-die SRAM
	power := func(tempK float64) float64 {
		m.SetEnv(leakage.Env{TempK: tempK, Vdd: p.VddNominal})
		return 12 + m.StructurePower(leakage.SRAM6T, cells, leakage.ModeActive)
	}
	eq, err := rc.Equilibrium(power, 420)
	if err != nil {
		t.Fatalf("loop did not converge: %v (T=%v)", err, eq)
	}
	// Feedback must push equilibrium above the no-leakage point.
	noLeak := rc.AmbientK + rc.RThermal*12
	if eq <= noLeak+1 {
		t.Fatalf("leakage feedback had no effect: %v vs %v", eq, noLeak)
	}
}

func TestRunawayDetected(t *testing.T) {
	rc := Default70nm()
	// Super-linear power growth with temperature guarantees runaway.
	power := func(tempK float64) float64 { return 5 * math.Exp((tempK-318)/10) }
	_, err := rc.Equilibrium(power, 400)
	if !errors.Is(err, ErrRunaway) {
		t.Fatalf("runaway not detected: %v", err)
	}
}

func TestGatedControlAvertsRunaway(t *testing.T) {
	// The headline thermal story: with a big hot SRAM budget and a tight
	// thermal budget, leaving the array fully active runs away, while
	// gated-Vss control of 80% of it converges. (Drowsy at 16% residual
	// also helps; gated's 0.4% is decisive.)
	p := tech.MustByNode(tech.Node70)
	m := leakage.New(p)
	rc := Default70nm()
	rc.RThermal = 1.6 // weak cooling
	const cells = 24 * 1024 * 1024 * 8
	const turnoff = 0.8

	uncontrolled := func(tempK float64) float64 {
		m.SetEnv(leakage.Env{TempK: tempK, Vdd: p.VddNominal})
		return 15 + m.StructurePower(leakage.SRAM6T, cells, leakage.ModeActive)
	}
	gated := func(tempK float64) float64 {
		m.SetEnv(leakage.Env{TempK: tempK, Vdd: p.VddNominal})
		active := m.StructurePower(leakage.SRAM6T, cells, leakage.ModeActive)
		standby := m.StructurePower(leakage.SRAM6T, cells, leakage.ModeGated)
		return 15 + (1-turnoff)*active + turnoff*standby
	}

	if _, err := rc.Equilibrium(uncontrolled, 400); !errors.Is(err, ErrRunaway) {
		t.Skip("uncontrolled configuration did not run away at this sizing; skipping contrast")
	}
	eq, err := rc.Equilibrium(gated, 400)
	if err != nil {
		t.Fatalf("gated-controlled die still ran away: T=%v", eq)
	}
}

func TestTransientMonotoneHeatUp(t *testing.T) {
	rc := Default70nm()
	traj := rc.Transient(rc.AmbientK, func(float64) float64 { return 30 }, 1e-5, 0.02, 100)
	if len(traj) < 10 {
		t.Fatalf("trajectory too short: %d", len(traj))
	}
	for i := 1; i < len(traj); i++ {
		if traj[i] < traj[i-1]-1e-9 {
			t.Fatalf("heat-up trajectory not monotone at %d", i)
		}
	}
	// Must approach equilibrium from below.
	want := rc.AmbientK + rc.RThermal*30
	if traj[len(traj)-1] > want {
		t.Fatal("trajectory overshot equilibrium")
	}
}

func TestTimeConstant(t *testing.T) {
	rc := RC{RThermal: 2, CThermal: 0.01}
	if rc.TimeConstant() != 0.02 {
		t.Fatalf("tau = %v", rc.TimeConstant())
	}
}
