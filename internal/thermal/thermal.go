// Package thermal is a first-order compact thermal model (a HotSpot-style
// RC node) that closes the loop the paper leaves open: leakage depends
// exponentially on temperature, and temperature depends on total power —
// a positive feedback that can run away on hot dies. HotLeakage's dynamic
// recalculation (leakage.Model.SetEnv) is exactly what such a loop needs;
// this package supplies the other half.
//
// The model is one thermal RC node per die region:
//
//	C * dT/dt = P(T) - (T - Tamb)/R
//
// integrated with forward Euler. P(T) is supplied by a callback so the
// caller can fold in the HotLeakage model at each step plus any fixed
// dynamic power. Equilibrium solving and runaway detection are provided.
package thermal

import "errors"

// RC is a single-node compact thermal model.
type RC struct {
	// RThermal is the junction-to-ambient thermal resistance in K/W.
	RThermal float64
	// CThermal is the thermal capacitance in J/K.
	CThermal float64
	// AmbientK is the ambient (heat-sink) temperature in kelvin.
	AmbientK float64
}

// Default70nm returns a thermal node sized for a hot 70 nm core region:
// ~0.8 K/W to ambient through the package and a time constant of a few
// milliseconds (the scale of the paper's companion HotSpot work).
func Default70nm() RC {
	return RC{RThermal: 0.8, CThermal: 0.005, AmbientK: 318.15} // 45 C ambient
}

// TimeConstant returns R*C in seconds.
func (rc RC) TimeConstant() float64 { return rc.RThermal * rc.CThermal }

// Step advances the node temperature by dt seconds under power watts and
// returns the new temperature.
func (rc RC) Step(tempK, watts, dt float64) float64 {
	dT := (watts - (tempK-rc.AmbientK)/rc.RThermal) / rc.CThermal
	return tempK + dT*dt
}

// ErrRunaway reports that the power-temperature loop failed to converge
// below the limit temperature: thermal runaway.
var ErrRunaway = errors.New("thermal: power-temperature loop did not converge (runaway)")

// Equilibrium iterates the coupled loop T -> P(T) -> T to a fixed point.
// power is called with the current temperature and must return total power
// in watts (dynamic + leakage at that temperature). limitK aborts the
// search (runaway); typical silicon limits are 380-400 K.
func (rc RC) Equilibrium(power func(tempK float64) float64, limitK float64) (float64, error) {
	t := rc.AmbientK
	for i := 0; i < 400; i++ {
		tNext := rc.AmbientK + rc.RThermal*power(t)
		if tNext > limitK {
			return tNext, ErrRunaway
		}
		// Damped fixed-point iteration for stability near the knee.
		tNext = t + 0.5*(tNext-t)
		if diff := tNext - t; diff < 1e-4 && diff > -1e-4 {
			return tNext, nil
		}
		t = tNext
	}
	return t, ErrRunaway
}

// Transient integrates the node for total seconds with the given step,
// calling power(T) each step, and returns the temperature trajectory
// sampled every sampleEvery steps (including the initial point).
func (rc RC) Transient(t0K float64, power func(tempK float64) float64, dt, total float64, sampleEvery int) []float64 {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	out := []float64{t0K}
	t := t0K
	steps := int(total / dt)
	for i := 1; i <= steps; i++ {
		t = rc.Step(t, power(t), dt)
		if i%sampleEvery == 0 {
			out = append(out, t)
		}
	}
	return out
}
