// Package tech holds the per-technology-node device and circuit constants
// consumed by the HotLeakage model (package leakage) and the Wattch-style
// dynamic power model (package power).
//
// The paper derives these from BSIM3 v3.2 transistor-level simulation and
// curve fitting for 180, 130, 100 and 70 nm. We reproduce the same
// parameterization: statically defined quantities (mobility, oxide
// capacitance, aspect ratios, default supply), curve-fit quantities (DIBL
// factor b, subthreshold swing coefficient n, V_off), and dynamically
// evaluated quantities (V_dd, V_th(T), thermal voltage kT/q) that are
// recomputed at simulation time.
package tech

import "fmt"

// Node identifies a technology generation by its drawn gate length in nm.
type Node int

// Supported technology nodes.
const (
	Node180 Node = 180
	Node130 Node = 130
	Node100 Node = 100
	Node70  Node = 70
)

// String implements fmt.Stringer.
func (n Node) String() string { return fmt.Sprintf("%dnm", int(n)) }

// Physical constants.
const (
	// BoltzmannOverQ is k/q in volts per kelvin; thermal voltage is
	// v_t = (k/q) * T.
	BoltzmannOverQ = 8.617333262e-5
	// EpsOx is the permittivity of SiO2 in F/m (3.9 * eps0).
	EpsOx = 3.9 * 8.8541878128e-12
	// RoomTempK is the reference temperature at which the static
	// parameters were extracted.
	RoomTempK = 300.0
)

// DeviceParams describes one transistor polarity (N or P) at a node.
type DeviceParams struct {
	// Mu0 is the zero-bias mobility at 300 K in m^2/(V*s).
	Mu0 float64
	// Vth0 is the threshold voltage magnitude at 300 K in volts.
	Vth0 float64
	// DIBLb is the curve-fit DIBL factor b in 1/V: the drain-induced
	// barrier-lowering term enters as exp(b*(Vdd-Vdd0)).
	DIBLb float64
	// Swing is the subthreshold swing coefficient n (dimensionless,
	// typically 1.2-1.7).
	Swing float64
	// Voff is the empirically determined BSIM3 offset voltage in volts
	// (negative for real devices).
	Voff float64
	// WL is the default aspect ratio W/L used for a minimum-size device
	// of this polarity in an SRAM-class cell.
	WL float64
}

// KDesignFit captures the linear temperature / supply dependence of a
// k_design factor observed in the paper's transistor-level sweeps:
//
//	k(T, Vdd) = K0 + KT*(T - 300K) + KV*(Vdd - Vdd0)
//
// The paper reports that k_n and k_p are independent of threshold voltage
// and linear in temperature and supply voltage; we encode exactly that.
type KDesignFit struct {
	K0 float64 // value at 300 K and the node's default supply
	KT float64 // per kelvin
	KV float64 // per volt
}

// Eval returns the k_design value at temperature tK (kelvin) and supply vdd,
// given the node's default supply vdd0.
func (k KDesignFit) Eval(tK, vdd, vdd0 float64) float64 {
	v := k.K0 + k.KT*(tK-RoomTempK) + k.KV*(vdd-vdd0)
	if v < 0 {
		v = 0
	}
	return v
}

// GateLeakFit is the curve-fit direct-tunneling gate-leakage model. The
// paper fits gate current to transistor-level (BSIM4 / AIM-SPICE) data,
// targeting 40 nA/um at 70 nm, t_ox = 1.2 nm, 0.9 V, 300 K, with strong
// t_ox and V_dd dependence and weak temperature dependence:
//
//	I_gate = IRef * (W/L) * (Vdd/VRef)^VddExp * exp(-ToxSens*(tox-ToxRef)/ToxRef) * (1 + TCoef*(T-300))
type GateLeakFit struct {
	IRef    float64 // amps for a W/L = 1 device at the reference point
	VRef    float64 // reference supply voltage, volts
	VddExp  float64 // supply-voltage power-law exponent
	ToxRef  float64 // reference oxide thickness, meters
	ToxSens float64 // dimensionless sensitivity to fractional t_ox change
	TCoef   float64 // weak linear temperature coefficient, 1/K
}

// Params is the complete parameter set for one technology node.
type Params struct {
	Node Node

	// Vdd0 is the default (reference) supply voltage for the node; the
	// DIBL factor is normalized to it.
	Vdd0 float64
	// VddNominal is the supply the paper simulates at for this node
	// (0.9 V at 70 nm).
	VddNominal float64
	// ClockHz is the nominal clock frequency (5600 MHz at 70 nm).
	ClockHz float64
	// ToxM is the gate-oxide thickness in meters.
	ToxM float64
	// VthTempCoef is |dVth/dT| in V/K; threshold magnitude decreases
	// with temperature.
	VthTempCoef float64
	// MobTempExp is the mobility temperature exponent:
	// mu(T) = Mu0 * (T/300)^-MobTempExp.
	MobTempExp float64

	N DeviceParams
	P DeviceParams

	// KnSRAM / KpSRAM are the double-k_design factors for the 6T SRAM
	// cell (Section 3.1.2 of the paper).
	KnSRAM KDesignFit
	KpSRAM KDesignFit
	// KnLogic / KpLogic are k_design factors for random edge logic
	// (decoders, muxes), dominated by NAND/NOR stacks.
	KnLogic KDesignFit
	KpLogic KDesignFit

	Gate GateLeakFit

	// SleepVth is the threshold voltage of the high-Vt gated-Vss footer
	// transistor.
	SleepVth float64
	// SleepStackFactor is the additional stack-effect reduction applied
	// to the footer's subthreshold current when the row it gates is also
	// off (series-connected off transistors).
	SleepStackFactor float64
	// DrowsyVddFactor: drowsy standby supply is DrowsyVddFactor * VthN0
	// (the paper: "about 1.5 times the threshold voltage").
	DrowsyVddFactor float64
	// RBBVthShift is the threshold increase applied by reverse body bias
	// in standby for the RBB technique.
	RBBVthShift float64
	// ChipBackgroundW is the whole-chip background dynamic power (clock
	// tree plus conditionally-clocked idle units, Wattch cc3-style)
	// charged for every cycle of execution. It is what makes extra
	// runtime cost energy (the paper's cost item #4): a technique whose
	// performance loss is higher pays this power for longer.
	ChipBackgroundW float64
}

// CoxFperM2 returns the gate-oxide capacitance per unit area in F/m^2.
func (p *Params) CoxFperM2() float64 { return EpsOx / p.ToxM }

// VthAt returns the threshold-voltage magnitude of the given polarity at
// temperature tK, applying the linear temperature derating.
func (p *Params) VthAt(d DeviceParams, tK float64) float64 {
	v := d.Vth0 - p.VthTempCoef*(tK-RoomTempK)
	if v < 0.02 {
		v = 0.02 // clamp: the device never becomes fully depletion-mode
	}
	return v
}

// DrowsyVdd returns the standby supply used by the drowsy technique.
func (p *Params) DrowsyVdd() float64 { return p.DrowsyVddFactor * p.N.Vth0 }

// Validate rejects physically impossible parameter sets (non-positive
// supplies, clock, oxide thickness or thresholds) with descriptive errors,
// so a bad hand-built configuration fails before any simulation starts
// instead of producing NaN energies deep in a run.
func (p *Params) Validate() error {
	if p == nil {
		return fmt.Errorf("tech: nil parameter set")
	}
	if p.Vdd0 <= 0 || p.VddNominal <= 0 {
		return fmt.Errorf("tech %s: supply voltages must be positive (Vdd0=%g, VddNominal=%g)", p.Node, p.Vdd0, p.VddNominal)
	}
	if p.ClockHz <= 0 {
		return fmt.Errorf("tech %s: clock frequency must be positive (got %g Hz)", p.Node, p.ClockHz)
	}
	if p.ToxM <= 0 {
		return fmt.Errorf("tech %s: oxide thickness must be positive (got %g m)", p.Node, p.ToxM)
	}
	if p.N.Vth0 <= 0 || p.P.Vth0 <= 0 {
		return fmt.Errorf("tech %s: threshold voltages must be positive (N=%g, P=%g)", p.Node, p.N.Vth0, p.P.Vth0)
	}
	if p.N.WL <= 0 || p.P.WL <= 0 || p.N.Mu0 <= 0 || p.P.Mu0 <= 0 {
		return fmt.Errorf("tech %s: device geometry and mobility must be positive", p.Node)
	}
	if p.N.Swing <= 0 || p.P.Swing <= 0 {
		return fmt.Errorf("tech %s: subthreshold swing must be positive", p.Node)
	}
	return nil
}

// ByNode returns the parameter set for a node. It returns an error for an
// unsupported node so callers can surface bad configuration cleanly.
func ByNode(n Node) (*Params, error) {
	switch n {
	case Node180:
		return &node180, nil
	case Node130:
		return &node130, nil
	case Node100:
		return &node100, nil
	case Node70:
		return &node70, nil
	}
	return nil, fmt.Errorf("tech: unsupported node %d", int(n))
}

// MustByNode is ByNode for static configuration; it panics on an
// unsupported node.
func MustByNode(n Node) *Params {
	p, err := ByNode(n)
	if err != nil {
		panic(err)
	}
	return p
}

// The tables below are this reproduction's equivalents of the paper's
// Cadence/AIM-SPICE curve fits. Magnitudes follow the BSIM3 defaults and
// the ITRS-2001 projections the paper cites (e.g. ~40 nA/um gate leakage at
// 70 nm / 300 K / 0.9 V, subthreshold unit leakage in the tens of nA at
// room temperature rising ~10x by 110 C).
var (
	node180 = Params{
		Node:        Node180,
		Vdd0:        2.0,
		VddNominal:  1.8,
		ClockHz:     1.0e9,
		ToxM:        4.0e-9,
		VthTempCoef: 0.0006,
		MobTempExp:  1.5,
		N:           DeviceParams{Mu0: 0.046, Vth0: 0.420, DIBLb: 1.3, Swing: 1.45, Voff: -0.080, WL: 1.8},
		P:           DeviceParams{Mu0: 0.015, Vth0: 0.450, DIBLb: 1.1, Swing: 1.50, Voff: -0.080, WL: 2.6},
		KnSRAM:      KDesignFit{K0: 0.42, KT: 2.0e-4, KV: 0.05},
		KpSRAM:      KDesignFit{K0: 0.35, KT: 1.6e-4, KV: 0.04},
		KnLogic:     KDesignFit{K0: 0.30, KT: 1.5e-4, KV: 0.04},
		KpLogic:     KDesignFit{K0: 0.45, KT: 1.8e-4, KV: 0.05},
		Gate: GateLeakFit{
			IRef: 5.0e-12, VRef: 1.8, VddExp: 3.0,
			ToxRef: 4.0e-9, ToxSens: 14, TCoef: 6e-4,
		},
		SleepVth:         0.55,
		SleepStackFactor: 0.20,
		DrowsyVddFactor:  1.5,
		RBBVthShift:      0.25,
		ChipBackgroundW:  6.0,
	}

	node130 = Params{
		Node:        Node130,
		Vdd0:        1.5,
		VddNominal:  1.4,
		ClockHz:     2.0e9,
		ToxM:        3.0e-9,
		VthTempCoef: 0.00065,
		MobTempExp:  1.5,
		N:           DeviceParams{Mu0: 0.043, Vth0: 0.340, DIBLb: 1.7, Swing: 1.45, Voff: -0.080, WL: 1.8},
		P:           DeviceParams{Mu0: 0.014, Vth0: 0.365, DIBLb: 1.4, Swing: 1.52, Voff: -0.080, WL: 2.6},
		KnSRAM:      KDesignFit{K0: 0.41, KT: 2.1e-4, KV: 0.05},
		KpSRAM:      KDesignFit{K0: 0.35, KT: 1.7e-4, KV: 0.04},
		KnLogic:     KDesignFit{K0: 0.30, KT: 1.6e-4, KV: 0.04},
		KpLogic:     KDesignFit{K0: 0.44, KT: 1.9e-4, KV: 0.05},
		Gate: GateLeakFit{
			IRef: 1.2e-10, VRef: 1.4, VddExp: 3.0,
			ToxRef: 3.0e-9, ToxSens: 14, TCoef: 6e-4,
		},
		SleepVth:         0.50,
		SleepStackFactor: 0.20,
		DrowsyVddFactor:  1.5,
		RBBVthShift:      0.22,
		ChipBackgroundW:  4.0,
	}

	node100 = Params{
		Node:        Node100,
		Vdd0:        1.2,
		VddNominal:  1.1,
		ClockHz:     3.5e9,
		ToxM:        2.0e-9,
		VthTempCoef: 0.0007,
		MobTempExp:  1.5,
		N:           DeviceParams{Mu0: 0.040, Vth0: 0.260, DIBLb: 2.1, Swing: 1.48, Voff: -0.080, WL: 1.9},
		P:           DeviceParams{Mu0: 0.013, Vth0: 0.285, DIBLb: 1.8, Swing: 1.55, Voff: -0.080, WL: 2.7},
		KnSRAM:      KDesignFit{K0: 0.40, KT: 2.2e-4, KV: 0.06},
		KpSRAM:      KDesignFit{K0: 0.34, KT: 1.8e-4, KV: 0.05},
		KnLogic:     KDesignFit{K0: 0.29, KT: 1.7e-4, KV: 0.05},
		KpLogic:     KDesignFit{K0: 0.43, KT: 2.0e-4, KV: 0.05},
		Gate: GateLeakFit{
			IRef: 3.0e-9, VRef: 1.1, VddExp: 3.2,
			ToxRef: 2.0e-9, ToxSens: 15, TCoef: 6e-4,
		},
		SleepVth:         0.45,
		SleepStackFactor: 0.20,
		DrowsyVddFactor:  1.5,
		RBBVthShift:      0.20,
		ChipBackgroundW:  2.5,
	}

	// node70 is the node the paper evaluates at: Vdd = 0.9 V, 5600 MHz,
	// Vth = 0.190 V (N) / 0.213 V (P), t_ox = 1.2 nm, gate leakage
	// targeted at 40 nA/um.
	node70 = Params{
		Node:        Node70,
		Vdd0:        1.0,
		VddNominal:  0.9,
		ClockHz:     5.6e9,
		ToxM:        1.2e-9,
		VthTempCoef: 0.0007,
		MobTempExp:  1.5,
		N:           DeviceParams{Mu0: 0.035, Vth0: 0.190, DIBLb: 1.05, Swing: 1.50, Voff: -0.080, WL: 2.0},
		P:           DeviceParams{Mu0: 0.012, Vth0: 0.213, DIBLb: 0.95, Swing: 1.58, Voff: -0.080, WL: 2.8},
		KnSRAM:      KDesignFit{K0: 0.39, KT: 2.3e-4, KV: 0.06},
		KpSRAM:      KDesignFit{K0: 0.33, KT: 1.9e-4, KV: 0.05},
		KnLogic:     KDesignFit{K0: 0.28, KT: 1.8e-4, KV: 0.05},
		KpLogic:     KDesignFit{K0: 0.42, KT: 2.1e-4, KV: 0.06},
		Gate: GateLeakFit{
			// 40 nA/um at W/L = 1 with L = 70 nm means W = 70 nm:
			// 40e-9 A/um * 0.07 um = 2.8e-9 A per unit device.
			IRef: 2.8e-9, VRef: 0.9, VddExp: 3.5,
			ToxRef: 1.2e-9, ToxSens: 16, TCoef: 6e-4,
		},
		SleepVth:         0.400,
		SleepStackFactor: 0.20,
		DrowsyVddFactor:  1.5,
		RBBVthShift:      0.18,
		ChipBackgroundW:  1.2,
	}
)
