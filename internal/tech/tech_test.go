package tech

import (
	"math"
	"testing"
)

func TestByNode(t *testing.T) {
	for _, n := range []Node{Node180, Node130, Node100, Node70} {
		p, err := ByNode(n)
		if err != nil {
			t.Fatalf("ByNode(%v): %v", n, err)
		}
		if p.Node != n {
			t.Errorf("ByNode(%v).Node = %v", n, p.Node)
		}
	}
	if _, err := ByNode(Node(90)); err == nil {
		t.Error("ByNode(90) did not error")
	}
}

func TestMustByNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByNode(1) did not panic")
		}
	}()
	MustByNode(Node(1))
}

func TestPaper70nmParameters(t *testing.T) {
	p := MustByNode(Node70)
	// The exact values the paper quotes for 70 nm.
	if p.N.Vth0 != 0.190 {
		t.Errorf("N Vth = %v, want 0.190", p.N.Vth0)
	}
	if p.P.Vth0 != 0.213 {
		t.Errorf("P Vth = %v, want 0.213", p.P.Vth0)
	}
	if p.VddNominal != 0.9 {
		t.Errorf("Vdd = %v, want 0.9", p.VddNominal)
	}
	if p.Vdd0 != 1.0 {
		t.Errorf("Vdd0 = %v, want 1.0 (paper: Vdd0=1.0 for 70nm)", p.Vdd0)
	}
	if p.ClockHz != 5.6e9 {
		t.Errorf("clock = %v, want 5.6 GHz", p.ClockHz)
	}
}

func TestVdd0PerNode(t *testing.T) {
	// Paper Section 3.1.1: Vdd0 = 2.0/1.5/1.2/1.0 for 180/130/100/70 nm.
	want := map[Node]float64{Node180: 2.0, Node130: 1.5, Node100: 1.2, Node70: 1.0}
	for n, v := range want {
		if p := MustByNode(n); p.Vdd0 != v {
			t.Errorf("%v Vdd0 = %v, want %v", n, p.Vdd0, v)
		}
	}
}

func TestVthDecreasesWithTemperature(t *testing.T) {
	p := MustByNode(Node70)
	cold := p.VthAt(p.N, 300)
	hot := p.VthAt(p.N, 383)
	if hot >= cold {
		t.Fatalf("Vth(383K)=%v >= Vth(300K)=%v", hot, cold)
	}
	if v := p.VthAt(DeviceParams{Vth0: 0.01}, 500); v < 0.02 {
		t.Fatalf("Vth clamp failed: %v", v)
	}
}

func TestKDesignFitLinear(t *testing.T) {
	k := KDesignFit{K0: 0.4, KT: 1e-3, KV: 0.1}
	base := k.Eval(300, 1.0, 1.0)
	if base != 0.4 {
		t.Fatalf("Eval at reference = %v, want 0.4", base)
	}
	if got := k.Eval(310, 1.0, 1.0); math.Abs(got-0.41) > 1e-12 {
		t.Errorf("temperature slope: %v, want 0.41", got)
	}
	if got := k.Eval(300, 1.1, 1.0); got < 0.4099 || got > 0.4101 {
		t.Errorf("voltage slope: %v, want ~0.41", got)
	}
	if got := (KDesignFit{K0: 0.01, KT: -1}).Eval(400, 1, 1); got != 0 {
		t.Errorf("negative k not clamped: %v", got)
	}
}

func TestCoxScalesInverselyWithTox(t *testing.T) {
	thin := MustByNode(Node70).CoxFperM2()
	thick := MustByNode(Node180).CoxFperM2()
	if thin <= thick {
		t.Fatalf("Cox(70nm)=%v <= Cox(180nm)=%v", thin, thick)
	}
}

func TestDrowsyVddIsAboveRetention(t *testing.T) {
	for _, n := range []Node{Node180, Node130, Node100, Node70} {
		p := MustByNode(n)
		v := p.DrowsyVdd()
		if v <= p.N.Vth0 {
			t.Errorf("%v drowsy Vdd %v <= Vth %v: state would be lost", n, v, p.N.Vth0)
		}
		if v >= p.VddNominal {
			t.Errorf("%v drowsy Vdd %v >= nominal %v: no leakage benefit", n, v, p.VddNominal)
		}
	}
}

func TestNodeString(t *testing.T) {
	if Node70.String() != "70nm" {
		t.Errorf("Node70.String() = %q", Node70.String())
	}
}

func TestSleepVthAboveNominal(t *testing.T) {
	for _, n := range []Node{Node180, Node130, Node100, Node70} {
		p := MustByNode(n)
		if p.SleepVth <= p.N.Vth0 {
			t.Errorf("%v sleep Vth %v not above nominal %v", n, p.SleepVth, p.N.Vth0)
		}
		if p.ChipBackgroundW <= 0 {
			t.Errorf("%v ChipBackgroundW = %v", n, p.ChipBackgroundW)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	for _, n := range []Node{Node180, Node130, Node100, Node70} {
		if err := MustByNode(n).Validate(); err != nil {
			t.Fatalf("built-in node %s invalid: %v", n, err)
		}
	}
	var nilP *Params
	if err := nilP.Validate(); err == nil {
		t.Fatal("nil params validated")
	}
	bad := *MustByNode(Node70)
	bad.VddNominal = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Vdd <= 0 validated")
	}
	bad = *MustByNode(Node70)
	bad.ClockHz = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative clock validated")
	}
}
