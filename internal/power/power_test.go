package power

import (
	"testing"

	"hotleakage/internal/tech"
)

func geom(sizeKB, assoc, line, banks int) CacheGeometry {
	sets := sizeKB * 1024 / (line * assoc)
	return CacheGeometry{Sets: sets, Assoc: assoc, LineBytes: line, TagBits: 25, Banks: banks}
}

func TestBiggerCacheCostsMore(t *testing.T) {
	p := tech.MustByNode(tech.Node70)
	small := NewCacheEnergy(p, geom(64, 2, 64, 1))
	big := NewCacheEnergy(p, geom(2048, 2, 64, 1))
	if big.ReadHit <= small.ReadHit {
		t.Fatalf("2MB read %v <= 64KB read %v", big.ReadHit, small.ReadHit)
	}
}

func TestBankingReducesAccessEnergy(t *testing.T) {
	p := tech.MustByNode(tech.Node70)
	mono := NewCacheEnergy(p, geom(2048, 2, 64, 1))
	banked := NewCacheEnergy(p, geom(2048, 2, 64, 8))
	if banked.ReadHit >= mono.ReadHit {
		t.Fatalf("banked read %v >= monolithic %v", banked.ReadHit, mono.ReadHit)
	}
}

func TestTagProbeCheaperThanRead(t *testing.T) {
	p := tech.MustByNode(tech.Node70)
	e := NewCacheEnergy(p, geom(64, 2, 64, 1))
	if e.TagProbe >= e.ReadHit {
		t.Fatalf("tag probe %v >= full read %v", e.TagProbe, e.ReadHit)
	}
	if e.PerCycleClock >= e.ReadHit {
		t.Fatalf("per-cycle clock %v >= read %v", e.PerCycleClock, e.ReadHit)
	}
}

func TestEnergiesPositive(t *testing.T) {
	p := tech.MustByNode(tech.Node70)
	e := NewCacheEnergy(p, geom(64, 2, 64, 1))
	for name, v := range map[string]float64{
		"ReadHit": e.ReadHit, "WriteHit": e.WriteHit, "TagProbe": e.TagProbe,
		"LineFill": e.LineFill, "LineRead": e.LineRead, "PerCycleClock": e.PerCycleClock,
	} {
		if v <= 0 {
			t.Errorf("%s = %v", name, v)
		}
	}
}

func TestL1EnergyBand(t *testing.T) {
	// A 64KB L1 read at 70 nm should be in the 0.02-0.5 nJ band; the L2
	// should cost several times more.
	p := tech.MustByNode(tech.Node70)
	l1 := NewCacheEnergy(p, geom(64, 2, 64, 1))
	l2 := NewCacheEnergy(p, geom(2048, 2, 64, 8))
	if l1.ReadHit < 0.02e-9 || l1.ReadHit > 0.5e-9 {
		t.Errorf("L1 read = %v J, outside band", l1.ReadHit)
	}
	if l2.ReadHit < 2*l1.ReadHit {
		t.Errorf("L2 read %v not clearly above L1 read %v", l2.ReadHit, l1.ReadHit)
	}
	mem := MemoryAccessEnergy(p)
	if mem < 5*l2.ReadHit {
		t.Errorf("memory access %v not clearly above L2 %v", mem, l2.ReadHit)
	}
}

func TestGatedTransitionCostsMoreThanDrowsy(t *testing.T) {
	// Gated-Vss discharges the full internal rail; drowsy only moves it
	// between two supplies.
	p := tech.MustByNode(tech.Node70)
	dr := NewTechniqueEnergy(p, 64, false)
	gt := NewTechniqueEnergy(p, 64, true)
	if gt.SleepTransition <= dr.SleepTransition {
		t.Fatalf("gated transition %v <= drowsy %v", gt.SleepTransition, dr.SleepTransition)
	}
	if dr.GlobalTick != gt.GlobalTick || dr.LocalBump != gt.LocalBump {
		t.Fatal("counter hardware energies must be identical across techniques (fairness)")
	}
}

func TestCounterEnergiesTiny(t *testing.T) {
	// Decay counters must be orders of magnitude below an access.
	p := tech.MustByNode(tech.Node70)
	te := NewTechniqueEnergy(p, 64, false)
	ce := NewCacheEnergy(p, geom(64, 2, 64, 1))
	if te.LocalBump > ce.ReadHit/100 {
		t.Fatalf("counter bump %v not tiny vs read %v", te.LocalBump, ce.ReadHit)
	}
}

func TestNodeScaling(t *testing.T) {
	// The same geometry costs more energy at an older node.
	old := NewCacheEnergy(tech.MustByNode(tech.Node180), geom(64, 2, 64, 1))
	now := NewCacheEnergy(tech.MustByNode(tech.Node70), geom(64, 2, 64, 1))
	if old.ReadHit <= now.ReadHit {
		t.Fatalf("180nm read %v <= 70nm read %v", old.ReadHit, now.ReadHit)
	}
}

func TestGeometryHelpers(t *testing.T) {
	g := geom(64, 2, 64, 4)
	if g.Rows() != 128 {
		t.Errorf("Rows = %d, want 128", g.Rows())
	}
	if g.LineBits() != 512 {
		t.Errorf("LineBits = %d", g.LineBits())
	}
	if (CacheGeometry{Sets: 8}).Rows() != 8 {
		t.Error("Banks=0 should default to 1")
	}
}
