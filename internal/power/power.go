// Package power is the Wattch-style dynamic power substrate: analytic
// per-event access energies for SRAM arrays (decoder, wordline, bitline,
// sense-amp terms in the CACTI tradition), plus the event energies specific
// to the leakage-control techniques (decay-counter activity, mode
// transitions, line wake-ups, writebacks).
//
// Only relative energies matter for the paper's net-savings metric: the
// extra dynamic energy a technique induces is subtracted from its gross
// leakage savings. The constants below are scaled per technology node from
// the feature size.
package power

import (
	"math"

	"hotleakage/internal/tech"
)

// CacheGeometry describes an SRAM cache organization for the energy model.
type CacheGeometry struct {
	Sets      int
	Assoc     int
	LineBytes int
	TagBits   int
	Banks     int // physical banks; rows per bank = Sets/Banks
}

// Rows returns the number of wordlines per bank.
func (g CacheGeometry) Rows() int {
	b := g.Banks
	if b < 1 {
		b = 1
	}
	r := g.Sets / b
	if r < 1 {
		r = 1
	}
	return r
}

// LineBits returns the number of data bits in one line.
func (g CacheGeometry) LineBits() int { return g.LineBytes * 8 }

// CacheEnergy holds the per-event dynamic energies (joules) for one cache.
type CacheEnergy struct {
	// ReadHit is a full read access that hits: decode + tag probe of all
	// ways + data read of the selected way.
	ReadHit float64
	// WriteHit is a write access that hits (full-swing data write).
	WriteHit float64
	// TagProbe is a tag-array-only probe of all ways (used when a miss
	// is detected without reading data, and for the drowsy tag-wake
	// re-check).
	TagProbe float64
	// LineFill is writing a full line plus its tag into the array.
	LineFill float64
	// LineRead is reading a full line out of the array (victim
	// writeback read-out).
	LineRead float64
	// PerCycleClock is the background clock/precharge dynamic power of
	// the cache's periphery, charged per cycle of runtime; this is what
	// makes extra execution time cost energy (the paper's cost item #4).
	PerCycleClock float64
}

// Tunable per-node circuit constants, expressed at 70 nm and scaled by
// (feature/70)^2 for capacitance-like quantities.
const (
	cBitlinePerCell70  = 1.6e-15 // F per cell on a bitline
	cWordlinePerCell70 = 1.1e-15
	eSenseAmpPerBit70  = 2.0e-14 // J per sensed bit
	eDecodePerRowLog70 = 3.0e-14 // J per log2(rows) of decode
	bitlineReadSwing   = 0.18    // fraction of Vdd swung on a read
)

// featScale returns the capacitance/energy scale factor for the node
// relative to 70 nm.
func featScale(p *tech.Params) float64 {
	f := float64(p.Node) / 70.0
	return f * f
}

// NewCacheEnergy derives the per-event energies for a cache geometry at a
// node's nominal supply.
func NewCacheEnergy(p *tech.Params, g CacheGeometry) CacheEnergy {
	s := featScale(p)
	vdd := p.VddNominal
	rows := float64(g.Rows())
	lineBits := float64(g.LineBits())
	tagBits := float64(g.TagBits)
	assoc := float64(g.Assoc)

	cBL := cBitlinePerCell70 * s * rows // one bitline's capacitance
	eBLRead := cBL * vdd * (bitlineReadSwing * vdd)
	eBLWrite := cBL * vdd * vdd
	eWL := cWordlinePerCell70 * s * vdd * vdd // per cell on the wordline
	eSense := eSenseAmpPerBit70 * s
	eDecode := eDecodePerRowLog70 * s * math.Log2(rows+1)

	// Tag probe: decode + all ways' tag bitlines + sense.
	tagCols := tagBits * assoc
	eTag := eDecode + tagCols*(eBLRead+eSense) + tagCols*eWL

	// Data read of one way's line (reads are line-wide to keep the model
	// simple; L1 word selection happens after sensing).
	dataCols := lineBits
	eData := dataCols*(eBLRead+eSense) + dataCols*eWL

	read := eTag + eData
	write := eTag + dataCols*eBLWrite + dataCols*eWL
	fill := eTag + dataCols*eBLWrite + tagBits*eBLWrite
	lineRead := eDecode + dataCols*(eBLRead+eSense)

	// Periphery clock/precharge: a small fraction of a read per cycle.
	clock := 0.02 * read

	return CacheEnergy{
		ReadHit:       read,
		WriteHit:      write,
		TagProbe:      eTag,
		LineFill:      fill,
		LineRead:      lineRead,
		PerCycleClock: clock,
	}
}

// TechniqueEnergy holds the per-event energies of the leakage-control
// hardware itself (the paper's cost items #1 and #3).
type TechniqueEnergy struct {
	// GlobalTick is one increment of the shared global decay counter.
	GlobalTick float64
	// LocalBump is one increment of a single line's 2-bit counter (all
	// lines bump when the global counter rolls over).
	LocalBump float64
	// LocalReset is the reset of a line's 2-bit counter on access.
	LocalReset float64
	// SleepTransition is putting one line into standby (drowsy: switch
	// the Vdd mux; gated: drain the internal rail through the footer).
	SleepTransition float64
	// WakeTransition is returning one line to the active state.
	WakeTransition float64
}

// NewTechniqueEnergy derives technique-hardware event energies for a line of
// lineBytes at the node. Both techniques use the same counter hardware (the
// paper's fairness choice); the transition energies differ because gated-Vss
// fully discharges the cells' internal rail (set stateDestroying) while
// drowsy only moves it between two supplies.
func NewTechniqueEnergy(p *tech.Params, lineBytes int, stateDestroying bool) TechniqueEnergy {
	s := featScale(p)
	vdd := p.VddNominal
	cells := float64(lineBytes * 8)
	// Per-cell supply-rail capacitance switched on a mode transition.
	cRail := 1.2e-15 * s * cells

	swing := vdd - p.DrowsyVdd()
	if stateDestroying {
		swing = vdd
	}

	return TechniqueEnergy{
		GlobalTick:      8.0e-15 * s,
		LocalBump:       4.0e-15 * s,
		LocalReset:      2.0e-15 * s,
		SleepTransition: 0.5 * cRail * swing * swing,
		WakeTransition:  0.5 * cRail * swing * swing,
	}
}

// MemoryAccessEnergy is the per-access energy of an off-chip (or far
// on-chip) DRAM access including bus transfer, at 70 nm scale.
func MemoryAccessEnergy(p *tech.Params) float64 {
	return 1.5e-8 * featScale(p)
}
