package trace

import (
	"bytes"
	"errors"
	"testing"

	"hotleakage/internal/workload"
)

func record(t *testing.T, bench string, n uint64) (*bytes.Buffer, *workload.Generator) {
	t.Helper()
	prof, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no profile %q", bench)
	}
	g := workload.NewGenerator(prof)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, bench, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := Record(g, w, n); err != nil {
		t.Fatal(err)
	}
	return &buf, workload.NewGenerator(prof) // fresh generator for comparison
}

func TestRoundTripBitExact(t *testing.T) {
	const n = 50_000
	buf, fresh := record(t, "gcc", n)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "gcc" || r.Len() != n {
		t.Fatalf("header: %q / %d", r.Name(), r.Len())
	}
	var want, got workload.Instr
	for i := 0; i < n; i++ {
		fresh.Next(&want)
		r.Next(&got)
		if want != got {
			t.Fatalf("record %d mismatch:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

func TestReaderWrapsAround(t *testing.T) {
	buf, _ := record(t, "gzip", 1000)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ins workload.Instr
	for i := 0; i < 2500; i++ {
		r.Next(&ins)
	}
	if r.Laps != 2 {
		t.Fatalf("laps = %d, want 2", r.Laps)
	}
}

func TestCompactness(t *testing.T) {
	// The delta encoding should land well under the naive 34-byte
	// fixed-size record.
	const n = 50_000
	buf, _ := record(t, "mcf", n)
	perInstr := float64(buf.Len()) / n
	if perInstr > 10 {
		t.Fatalf("%.1f bytes/instruction; encoding too fat", perInstr)
	}
}

func TestBadStreams(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE....."),
		"no records":  append([]byte(magic), append([]byte{version, 1, 'x'}, make([]byte, 8)...)...),
		"truncated":   nil, // filled below
		"bad version": append([]byte(magic), 99),
	}
	good, _ := record(t, "gcc", 100)
	cases["truncated"] = good.Bytes()[:good.Len()-3]
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: error = %v, want ErrBadTrace", name, err)
		}
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x", 0)
	if err != nil {
		t.Fatal(err)
	}
	var ins workload.Instr
	ins.Op = workload.OpIntALU
	for i := 0; i < 7; i++ {
		if err := w.Write(&ins); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Fatalf("count = %d", w.Count())
	}
}

func TestNameTooLong(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, string(make([]byte, 300)), 0); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestBufferCursorBitExact(t *testing.T) {
	const n = 50_000
	prof, _ := workload.ByName("gcc")
	b, err := RecordBuffer("gcc", workload.NewGenerator(prof), n, "")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "gcc" || b.Len() != n || b.Spilled() {
		t.Fatalf("buffer: %q / %d / spilled=%v", b.Name(), b.Len(), b.Spilled())
	}
	if b.SizeBytes() <= 0 || float64(b.SizeBytes())/n > 10 {
		t.Fatalf("payload %d bytes for %d instrs; encoding too fat", b.SizeBytes(), n)
	}
	// Two independent cursors must each reproduce the live stream.
	for trial := 0; trial < 2; trial++ {
		c, err := b.Cursor()
		if err != nil {
			t.Fatal(err)
		}
		fresh := workload.NewGenerator(prof)
		var want, got workload.Instr
		for i := 0; i < n; i++ {
			fresh.Next(&want)
			c.Next(&got)
			if want != got {
				t.Fatalf("trial %d record %d mismatch:\nwant %+v\ngot  %+v", trial, i, want, got)
			}
		}
		if c.Laps() != 0 {
			t.Fatalf("laps = %d after exact-length replay", c.Laps())
		}
	}
}

func TestCursorWrapMatchesReader(t *testing.T) {
	const n, total = 1000, 2600
	prof, _ := workload.ByName("gzip")
	b, err := RecordBuffer("gzip", workload.NewGenerator(prof), n, "")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := record(t, "gzip", n)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	var a, z workload.Instr
	for i := 0; i < total; i++ {
		r.Next(&a)
		c.Next(&z)
		if a != z {
			t.Fatalf("record %d: reader %+v vs cursor %+v", i, a, z)
		}
	}
	if c.Laps() != r.Laps {
		t.Fatalf("cursor laps %d, reader laps %d", c.Laps(), r.Laps)
	}
	if c.Laps() != 2 {
		t.Fatalf("laps = %d, want 2", c.Laps())
	}
}

func TestBufferSpill(t *testing.T) {
	const n = 10_000
	prof, _ := workload.ByName("mcf")
	dir := t.TempDir()
	b, err := RecordBuffer("mcf", workload.NewGenerator(prof), n, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Spilled() {
		t.Fatal("buffer not spilled")
	}
	if b.SizeBytes() <= 0 {
		t.Fatalf("size = %d", b.SizeBytes())
	}
	c, err := b.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	fresh := workload.NewGenerator(prof)
	var want, got workload.Instr
	for i := 0; i < n; i++ {
		fresh.Next(&want)
		c.Next(&got)
		if want != got {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Cursor(); err == nil {
		t.Fatal("cursor after Close succeeded")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestRecordBufferRejectsZero(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	if _, err := RecordBuffer("gcc", workload.NewGenerator(prof), 0, ""); err == nil {
		t.Fatal("zero-length buffer accepted")
	}
}

func TestArbitraryBytesNeverPanic(t *testing.T) {
	// Robustness: random byte soup must produce an error, never a panic.
	seed := uint64(0xfeed)
	next := func() byte {
		seed = seed*6364136223846793005 + 1442695040888963407
		return byte(seed >> 56)
	}
	for trial := 0; trial < 200; trial++ {
		n := int(next()) * 4
		data := make([]byte, n)
		for i := range data {
			data[i] = next()
		}
		// Prefix some with a valid header so record parsing is reached.
		if trial%2 == 0 && n > 20 {
			copy(data, magic)
			data[4] = version
			data[5] = 2
			data[6], data[7] = 'a', 'b'
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			r, err := NewReader(bytes.NewReader(data))
			if err == nil && r.Len() > 0 {
				// Parsed by luck: replay must also be safe.
				var ins workload.Instr
				for i := 0; i < 10; i++ {
					r.Next(&ins)
				}
			}
		}()
	}
}
