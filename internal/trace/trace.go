// Package trace records and replays instruction streams in a compact
// binary format, decoupling workload generation from simulation: a stream
// synthesized once (or, in principle, converted from an external tracer)
// can be replayed bit-identically into the timing model, shared between
// tools, or archived alongside experiment results.
//
// Format (little-endian):
//
//	magic "HLTR", version byte, name length + name, uint64 count hint,
//	then per instruction: op byte, then uvarint-delta-encoded PC, two
//	uvarint source distances, and (for memory ops) a uvarint-delta
//	address, and (for CTIs) a taken flag folded into the op byte plus a
//	uvarint-delta target.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hotleakage/internal/workload"
)

const (
	magic   = "HLTR"
	version = 1
	// takenBit is folded into the op byte for CTIs.
	takenBit = 0x80
)

// Writer serializes instructions to an underlying writer.
type Writer struct {
	w       *bufio.Writer
	count   uint64
	lastPC  uint64
	lastMem uint64
	lastTgt uint64
	buf     [binary.MaxVarintLen64]byte
}

// NewWriter writes a header for a trace named name (the benchmark) with an
// optional count hint (0 = unknown) and returns the writer.
func NewWriter(w io.Writer, name string, countHint uint64) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	if len(name) > 255 {
		return nil, fmt.Errorf("trace: name %q too long", name)
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], countHint)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag decodes.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Write appends one instruction.
func (w *Writer) Write(ins *workload.Instr) error {
	op := byte(ins.Op)
	if ins.Op.IsCTI() && ins.Taken {
		op |= takenBit
	}
	if err := w.w.WriteByte(op); err != nil {
		return err
	}
	if err := w.uvarint(zigzag(int64(ins.PC) - int64(w.lastPC))); err != nil {
		return err
	}
	w.lastPC = ins.PC
	if err := w.uvarint(uint64(uint32(ins.Src1))); err != nil {
		return err
	}
	if err := w.uvarint(uint64(uint32(ins.Src2))); err != nil {
		return err
	}
	if ins.Op.IsMem() {
		if err := w.uvarint(zigzag(int64(ins.Addr) - int64(w.lastMem))); err != nil {
			return err
		}
		w.lastMem = ins.Addr
	}
	if ins.Op.IsCTI() {
		if err := w.uvarint(zigzag(int64(ins.Target) - int64(w.lastTgt))); err != nil {
			return err
		}
		w.lastTgt = ins.Target
	}
	w.count++
	return nil
}

// Count returns the number of instructions written.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered output; call it before closing the underlying
// file.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader replays a recorded trace. It implements cpu.InstrSource; when the
// trace is exhausted it wraps around (simulations run for a fixed
// instruction count, so a finite trace serves as a loop), counting laps.
type Reader struct {
	name    string
	hint    uint64
	records []workload.Instr
	pos     int
	// Laps counts wrap-arounds (0 while the first pass is in progress).
	Laps int
}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed stream")

// header is the parsed fixed-size prelude of an encoded stream.
type header struct {
	name string
	hint uint64
	// size is the header's encoded length in bytes; the record payload
	// starts here.
	size int
}

// parseHeader validates the prelude of an encoded stream held in memory.
func parseHeader(data []byte) (header, error) {
	if len(data) < len(magic)+2 || string(data[:len(magic)]) != magic {
		return header{}, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if data[len(magic)] != version {
		return header{}, fmt.Errorf("%w: unsupported version", ErrBadTrace)
	}
	nameLen := int(data[len(magic)+1])
	off := len(magic) + 2
	if len(data) < off+nameLen+8 {
		return header{}, fmt.Errorf("%w: truncated header", ErrBadTrace)
	}
	h := header{
		name: string(data[off : off+nameLen]),
		hint: binary.LittleEndian.Uint64(data[off+nameLen:]),
		size: off + nameLen + 8,
	}
	return h, nil
}

// decoder walks the encoded record payload held in memory, reconstructing
// absolute PCs/addresses/targets from the deltas. It is the single decode
// implementation behind both Reader (materializing) and Cursor (streaming),
// so the two can never disagree about the format.
type decoder struct {
	data    []byte
	pos     int
	lastPC  uint64
	lastMem uint64
	lastTgt uint64
}

// reset rewinds the decoder to the start of the payload. The first record's
// deltas are relative to zero, so a reset reproduces the first pass exactly.
func (d *decoder) reset() {
	d.pos = 0
	d.lastPC, d.lastMem, d.lastTgt = 0, 0, 0
}

// uvarint reads one varint, advancing the cursor.
func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated record", ErrBadTrace)
	}
	d.pos += n
	return v, nil
}

// next decodes one instruction, setting every Instr field (non-memory ops
// get Addr 0, non-CTIs Taken=false/Target=0, matching a live generator).
// io.EOF reports a clean end of the payload.
func (d *decoder) next(ins *workload.Instr) error {
	if d.pos >= len(d.data) {
		return io.EOF
	}
	op := d.data[d.pos]
	d.pos++
	ins.Op = workload.OpClass(op &^ takenBit)
	delta, err := d.uvarint()
	if err != nil {
		return err
	}
	d.lastPC = uint64(int64(d.lastPC) + unzigzag(delta))
	ins.PC = d.lastPC
	s1, err := d.uvarint()
	if err != nil {
		return err
	}
	s2, err := d.uvarint()
	if err != nil {
		return err
	}
	ins.Src1, ins.Src2 = int32(uint32(s1)), int32(uint32(s2))
	ins.Addr = 0
	ins.Taken = false
	ins.Target = 0
	if ins.Op.IsMem() {
		dm, err := d.uvarint()
		if err != nil {
			return err
		}
		d.lastMem = uint64(int64(d.lastMem) + unzigzag(dm))
		ins.Addr = d.lastMem
	}
	if ins.Op.IsCTI() {
		ins.Taken = op&takenBit != 0
		dt, err := d.uvarint()
		if err != nil {
			return err
		}
		d.lastTgt = uint64(int64(d.lastTgt) + unzigzag(dt))
		ins.Target = d.lastTgt
	}
	return nil
}

// NewReader parses an entire trace into memory.
func NewReader(r io.Reader) (*Reader, error) {
	data, err := io.ReadAll(bufio.NewReader(r))
	if err != nil {
		return nil, err
	}
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	rd := &Reader{name: h.name, hint: h.hint}
	// The count hint is untrusted input: use it for preallocation only
	// within a sane bound (the records themselves define the length).
	if rd.hint > 0 && rd.hint <= 1<<26 {
		rd.records = make([]workload.Instr, 0, rd.hint)
	}
	dec := decoder{data: data[h.size:]}
	for {
		var ins workload.Instr
		err := dec.next(&ins)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rd.records = append(rd.records, ins)
	}
	if len(rd.records) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadTrace)
	}
	return rd, nil
}

// Name returns the recorded benchmark name.
func (r *Reader) Name() string { return r.name }

// Len returns the number of recorded instructions.
func (r *Reader) Len() int { return len(r.records) }

// Next implements cpu.InstrSource, wrapping around at the end.
func (r *Reader) Next(ins *workload.Instr) {
	*ins = r.records[r.pos]
	r.pos++
	if r.pos == len(r.records) {
		r.pos = 0
		r.Laps++
	}
}

// Record captures n instructions from any source into w.
func Record(src interface{ Next(*workload.Instr) }, w *Writer, n uint64) error {
	var ins workload.Instr
	for i := uint64(0); i < n; i++ {
		src.Next(&ins)
		if err := w.Write(&ins); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Source is anything that yields an instruction stream (a live
// workload.Generator, a Reader, a Cursor). It is the same contract as
// cpu.InstrSource, restated here so this package needs no cpu import.
type Source interface{ Next(*workload.Instr) }

// Buffer is a recorded instruction stream held in its compact encoded form
// (a few bytes per instruction instead of the ~48 of a decoded
// workload.Instr), shared read-only between any number of replaying
// Cursors. It is the record-once/replay-many primitive behind the sweep
// trace cache: the synthetic generator runs once per benchmark and every
// simulation cell replays the bytes.
//
// A Buffer normally lives in memory; RecordBuffer with a non-empty
// spillDir writes the encoded stream to a file there instead, bounding
// resident memory to one transient copy per in-flight replay (each Cursor
// of a spilled buffer re-reads the file) at the cost of that read.
type Buffer struct {
	name    string
	count   uint64
	payload []byte // encoded records, header stripped (nil when spilled)
	path    string // spill file holding the full encoded stream
	hdrSize int    // header bytes to skip in the spill file
	size    int64  // payload size in bytes
}

// RecordBuffer captures n instructions from src into a new Buffer. With a
// non-empty spillDir the encoded stream is written to a file in that
// directory (which must exist) instead of being kept in memory.
func RecordBuffer(name string, src Source, n uint64, spillDir string) (*Buffer, error) {
	if n == 0 {
		return nil, fmt.Errorf("trace: cannot record an empty buffer for %q", name)
	}
	b := &Buffer{name: name, count: n}
	if spillDir == "" {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, name, n)
		if err != nil {
			return nil, err
		}
		if err := Record(src, w, n); err != nil {
			return nil, err
		}
		data := buf.Bytes()
		h, err := parseHeader(data)
		if err != nil {
			return nil, err
		}
		b.payload = data[h.size:]
		b.size = int64(len(b.payload))
		return b, nil
	}
	f, err := os.CreateTemp(spillDir, fmt.Sprintf("%s-*.hltrace", filepath.Base(name)))
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, name, n)
	if err == nil {
		err = Record(src, w, n)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return nil, err
	}
	b.path = f.Name()
	// Header size is deterministic from the name; re-derive it rather than
	// re-reading the file.
	b.hdrSize = len(magic) + 2 + len(name) + 8
	if fi, err := os.Stat(b.path); err == nil {
		b.size = fi.Size() - int64(b.hdrSize)
	}
	return b, nil
}

// Name returns the recorded benchmark name.
func (b *Buffer) Name() string { return b.name }

// Len returns the number of recorded instructions.
func (b *Buffer) Len() uint64 { return b.count }

// SizeBytes returns the encoded payload size (memory held, or file bytes
// past the header when spilled).
func (b *Buffer) SizeBytes() int64 { return b.size }

// Spilled reports whether the buffer lives on disk.
func (b *Buffer) Spilled() bool { return b.path != "" }

// Close releases the buffer's disk file, if any. In-memory buffers are
// garbage-collected; Close on them is a no-op.
func (b *Buffer) Close() error {
	if b.path == "" {
		return nil
	}
	err := os.Remove(b.path)
	b.path = ""
	return err
}

// Cursor returns a fresh independent replayer positioned at the start of
// the stream. Cursors of an in-memory buffer share its payload bytes; a
// spilled buffer's cursor reads the file once at creation.
func (b *Buffer) Cursor() (*Cursor, error) {
	data := b.payload
	if b.path != "" {
		raw, err := os.ReadFile(b.path)
		if err != nil {
			return nil, fmt.Errorf("trace: reload spilled buffer: %w", err)
		}
		if len(raw) < b.hdrSize {
			return nil, fmt.Errorf("%w: spilled buffer truncated", ErrBadTrace)
		}
		data = raw[b.hdrSize:]
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty buffer", ErrBadTrace)
	}
	return &Cursor{d: decoder{data: data}}, nil
}

// Cursor streams a Buffer's instructions, decoding on the fly (no
// per-replay materialization of the decoded stream). Like Reader it wraps
// around at the end, counting laps: a replayed simulation run must consume
// at most the recorded length for bit-identical results, and the caller
// checks Laps()==0 to prove it did.
type Cursor struct {
	d    decoder
	laps int
}

// Next implements the instruction-source contract. The buffer was encoded
// by this package, so a decode failure is a programming error reported by
// panic (the experiment supervisor converts panics into structured run
// failures).
func (c *Cursor) Next(ins *workload.Instr) {
	err := c.d.next(ins)
	if err == io.EOF {
		c.d.reset()
		c.laps++
		err = c.d.next(ins)
	}
	if err != nil {
		panic(fmt.Sprintf("trace: corrupt buffer payload: %v", err))
	}
}

// Laps reports how many times the cursor wrapped past the end.
func (c *Cursor) Laps() int { return c.laps }
