// Package trace records and replays instruction streams in a compact
// binary format, decoupling workload generation from simulation: a stream
// synthesized once (or, in principle, converted from an external tracer)
// can be replayed bit-identically into the timing model, shared between
// tools, or archived alongside experiment results.
//
// Format (little-endian):
//
//	magic "HLTR", version byte, name length + name, uint64 count hint,
//	then per instruction: op byte, then uvarint-delta-encoded PC, two
//	uvarint source distances, and (for memory ops) a uvarint-delta
//	address, and (for CTIs) a taken flag folded into the op byte plus a
//	uvarint-delta target.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hotleakage/internal/workload"
)

const (
	magic   = "HLTR"
	version = 1
	// takenBit is folded into the op byte for CTIs.
	takenBit = 0x80
)

// Writer serializes instructions to an underlying writer.
type Writer struct {
	w       *bufio.Writer
	count   uint64
	lastPC  uint64
	lastMem uint64
	lastTgt uint64
	buf     [binary.MaxVarintLen64]byte
}

// NewWriter writes a header for a trace named name (the benchmark) with an
// optional count hint (0 = unknown) and returns the writer.
func NewWriter(w io.Writer, name string, countHint uint64) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	if len(name) > 255 {
		return nil, fmt.Errorf("trace: name %q too long", name)
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], countHint)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag decodes.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Write appends one instruction.
func (w *Writer) Write(ins *workload.Instr) error {
	op := byte(ins.Op)
	if ins.Op.IsCTI() && ins.Taken {
		op |= takenBit
	}
	if err := w.w.WriteByte(op); err != nil {
		return err
	}
	if err := w.uvarint(zigzag(int64(ins.PC) - int64(w.lastPC))); err != nil {
		return err
	}
	w.lastPC = ins.PC
	if err := w.uvarint(uint64(uint32(ins.Src1))); err != nil {
		return err
	}
	if err := w.uvarint(uint64(uint32(ins.Src2))); err != nil {
		return err
	}
	if ins.Op.IsMem() {
		if err := w.uvarint(zigzag(int64(ins.Addr) - int64(w.lastMem))); err != nil {
			return err
		}
		w.lastMem = ins.Addr
	}
	if ins.Op.IsCTI() {
		if err := w.uvarint(zigzag(int64(ins.Target) - int64(w.lastTgt))); err != nil {
			return err
		}
		w.lastTgt = ins.Target
	}
	w.count++
	return nil
}

// Count returns the number of instructions written.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered output; call it before closing the underlying
// file.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader replays a recorded trace. It implements cpu.InstrSource; when the
// trace is exhausted it wraps around (simulations run for a fixed
// instruction count, so a finite trace serves as a loop), counting laps.
type Reader struct {
	name    string
	hint    uint64
	records []workload.Instr
	pos     int
	// Laps counts wrap-arounds (0 while the first pass is in progress).
	Laps int
}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed stream")

// NewReader parses an entire trace into memory.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil || string(head) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	ver, err := br.ReadByte()
	if err != nil || ver != version {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadTrace)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated name", ErrBadTrace)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("%w: truncated name", ErrBadTrace)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadTrace)
	}

	rd := &Reader{name: string(nameBuf), hint: binary.LittleEndian.Uint64(hdr[:])}
	// The count hint is untrusted input: use it for preallocation only
	// within a sane bound (the records themselves define the length).
	if rd.hint > 0 && rd.hint <= 1<<26 {
		rd.records = make([]workload.Instr, 0, rd.hint)
	}

	var lastPC, lastMem, lastTgt uint64
	for {
		op, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var ins workload.Instr
		ins.Op = workload.OpClass(op &^ takenBit)
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record", ErrBadTrace)
		}
		lastPC = uint64(int64(lastPC) + unzigzag(delta))
		ins.PC = lastPC
		s1, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record", ErrBadTrace)
		}
		s2, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record", ErrBadTrace)
		}
		ins.Src1, ins.Src2 = int32(uint32(s1)), int32(uint32(s2))
		if ins.Op.IsMem() {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: truncated record", ErrBadTrace)
			}
			lastMem = uint64(int64(lastMem) + unzigzag(d))
			ins.Addr = lastMem
		}
		if ins.Op.IsCTI() {
			ins.Taken = op&takenBit != 0
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: truncated record", ErrBadTrace)
			}
			lastTgt = uint64(int64(lastTgt) + unzigzag(d))
			ins.Target = lastTgt
		}
		rd.records = append(rd.records, ins)
	}
	if len(rd.records) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadTrace)
	}
	return rd, nil
}

// Name returns the recorded benchmark name.
func (r *Reader) Name() string { return r.name }

// Len returns the number of recorded instructions.
func (r *Reader) Len() int { return len(r.records) }

// Next implements cpu.InstrSource, wrapping around at the end.
func (r *Reader) Next(ins *workload.Instr) {
	*ins = r.records[r.pos]
	r.pos++
	if r.pos == len(r.records) {
		r.pos = 0
		r.Laps++
	}
}

// Record captures n instructions from any source into w.
func Record(src interface{ Next(*workload.Instr) }, w *Writer, n uint64) error {
	var ins workload.Instr
	for i := uint64(0); i < n; i++ {
		src.Next(&ins)
		if err := w.Write(&ins); err != nil {
			return err
		}
	}
	return w.Flush()
}
