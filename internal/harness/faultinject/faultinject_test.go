package faultinject

import "testing"

func TestDeterministicIsPureAndSeeded(t *testing.T) {
	d := &Deterministic{Fault: FaultPanic, N: 4, Seed: 1}
	// Purity: repeated decisions agree.
	for i := 0; i < 3; i++ {
		if d.Decide("gcc/11/2/4096", 0) != d.Decide("gcc/11/2/4096", 0) {
			t.Fatal("decision not pure")
		}
	}
	// Roughly 1/N of many keys are selected, and a different seed picks a
	// different subset.
	d2 := &Deterministic{Fault: FaultPanic, N: 4, Seed: 99}
	hitsA, hitsB, differ := 0, 0, false
	for i := 0; i < 400; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i%10)) + "/key"
		a := d.Decide(key, 0) == FaultPanic
		b := d2.Decide(key, 0) == FaultPanic
		if a {
			hitsA++
		}
		if b {
			hitsB++
		}
		if a != b {
			differ = true
		}
	}
	if hitsA == 0 || hitsA == 400 || hitsB == 0 {
		t.Fatalf("selection degenerate: %d/%d of 400", hitsA, hitsB)
	}
	if !differ {
		t.Fatal("seed has no effect")
	}
}

func TestNonStickyOnlyFirstAttempt(t *testing.T) {
	d := &Deterministic{Fault: FaultError, N: 1}
	if d.Decide("k", 0) != FaultError {
		t.Fatal("1/1 injector missed attempt 0")
	}
	if d.Decide("k", 1) != FaultNone {
		t.Fatal("non-sticky fault fired on retry")
	}
	d.Sticky = true
	if d.Decide("k", 1) != FaultError {
		t.Fatal("sticky fault skipped retry")
	}
}

func TestParse(t *testing.T) {
	d, err := Parse("nan:1/4:seed=3:sticky")
	if err != nil {
		t.Fatal(err)
	}
	if d.Fault != FaultNaN || d.N != 4 || d.Seed != 3 || !d.Sticky {
		t.Fatalf("parsed %+v", d)
	}
	for _, bad := range []string{"", "panic", "panic:2/3", "wat:1/3", "panic:1/0", "panic:1/3:wat"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
	if d, err := Parse("stall:1/8"); err != nil || d.Fault != FaultStall || d.Sticky {
		t.Fatalf("Parse(stall:1/8) = %+v, %v", d, err)
	}
}

func TestFaultString(t *testing.T) {
	for f, want := range map[Fault]string{FaultNone: "none", FaultPanic: "panic", FaultError: "error", FaultStall: "stall", FaultNaN: "nan"} {
		if f.String() != want {
			t.Fatalf("%d.String() = %q", int(f), f.String())
		}
	}
}
