package faultinject

// The fault plane generalizes the run-level Injector to arbitrary
// operation sites across the repo: the store's file I/O, the API client's
// HTTP transport, and the server's request handling all consult one Plane
// before every injectable operation. Like the run-level injector it is
// deterministic and seeded — a rule fires on a fixed subset of a site's
// operation sequence — so a chaos test that passes passes every time, and
// a failure replays under the same spec.
//
// A plane is configured by a comma-separated spec, one rule per site:
//
//	store.sync:err:1/5:seed=3,http.request:reset:1/4,server.handler:panic:1/8
//
// Each rule is site:kind:1/N[:seed=S][:delay=D]. Kinds: err (EIO-style
// operation failure), short (torn write: a prefix persists, then the write
// fails), reset (connection reset), 5xx (synthesized 502), slow (latency
// spike of delay D, default 50ms), panic.

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hotleakage/internal/obs"
)

// Canonical fault-plane sites. The store and server route their injectable
// operations through these names; tests may use arbitrary ones.
const (
	SiteStoreOpen     = "store.open"
	SiteStoreRead     = "store.read"
	SiteStoreWrite    = "store.write"
	SiteStoreSync     = "store.sync"
	SiteStoreRename   = "store.rename"
	SiteStoreRemove   = "store.remove"
	SiteStoreTruncate = "store.truncate"
	SiteHTTPRequest   = "http.request"
	SiteServerHandler = "server.handler"
	// SiteServerSweep fires inside the sweep executor (leakd's execute
	// path, past admission and dequeue accounting): OpPanic there
	// exercises the executor's panic isolation exactly where a
	// harness-escaping bug would, OpSlow stretches a sweep for
	// watchdog/straggler testing.
	SiteServerSweep = "server.sweep"
)

// OpFault is the kind of failure injected into one operation.
type OpFault int

// Operation fault kinds.
const (
	OpNone OpFault = iota
	// OpErr fails the operation with ErrInjected (EIO-style).
	OpErr
	// OpShort is a torn write: a prefix of the buffer persists, then the
	// write reports ErrInjected. Only write sites honour it; elsewhere it
	// behaves like OpErr.
	OpShort
	// OpReset fails an HTTP round trip like a connection reset.
	OpReset
	// Op5xx synthesizes an HTTP 502 response.
	Op5xx
	// OpSlow delays the operation (latency spike), then lets it proceed.
	OpSlow
	// OpPanic panics at the site (the server's per-request isolation is
	// what keeps this from killing the daemon).
	OpPanic
)

// String implements fmt.Stringer.
func (f OpFault) String() string {
	switch f {
	case OpNone:
		return "none"
	case OpErr:
		return "err"
	case OpShort:
		return "short"
	case OpReset:
		return "reset"
	case Op5xx:
		return "5xx"
	case OpSlow:
		return "slow"
	case OpPanic:
		return "panic"
	}
	return fmt.Sprintf("opfault(%d)", int(f))
}

// ErrInjected is the root of every plane-injected failure; callers that
// need to distinguish chaos from real faults can errors.Is against it.
var ErrInjected = errors.New("faultinject: injected fault")

// injectedError carries the site for log lines while unwrapping to
// ErrInjected.
type injectedError struct {
	site string
	kind OpFault
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s", e.kind, e.site)
}

func (e *injectedError) Unwrap() error { return ErrInjected }

// Decision is the plane's verdict for one operation.
type Decision struct {
	Fault OpFault
	// Delay is the latency to impose for OpSlow.
	Delay time.Duration
}

// Err renders the decision as an error for sites that fail operations
// (OpErr, OpShort, OpReset); nil for other faults.
func (d Decision) Err(site string) error {
	switch d.Fault {
	case OpErr, OpShort, OpReset:
		return &injectedError{site: site, kind: d.Fault}
	}
	return nil
}

// planeRule is one parsed site schedule.
type planeRule struct {
	site  string
	fault OpFault
	n     uint64
	seed  uint64
	delay time.Duration
}

// obsInjected counts operations the plane actually faulted, by any rule.
var obsInjected = obs.Default.Counter(obs.MetricFaultplaneInjected)

// Plane decides faults per operation site. Each site keeps an operation
// counter; a rule fires when hash(site, count, seed) falls in its 1/N
// bucket, so a fixed fraction of a site's operations fault, on a schedule
// that is reproducible for a given call order. Safe for concurrent use.
// A nil *Plane injects nothing.
type Plane struct {
	mu     sync.Mutex
	rules  map[string]planeRule
	counts map[string]uint64
}

// NewPlane builds an empty plane; add schedules with Rule.
func NewPlane() *Plane {
	return &Plane{rules: make(map[string]planeRule), counts: make(map[string]uint64)}
}

// Rule installs (replacing any previous rule for site) a schedule that
// faults roughly 1 of every n operations at site. delay is only meaningful
// for OpSlow (0 means the 50ms default).
func (p *Plane) Rule(site string, fault OpFault, n, seed uint64, delay time.Duration) *Plane {
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	p.mu.Lock()
	p.rules[site] = planeRule{site: site, fault: fault, n: n, seed: seed, delay: delay}
	p.mu.Unlock()
	return p
}

// Decide advances site's operation counter and returns the verdict for
// this operation.
func (p *Plane) Decide(site string) Decision {
	if p == nil {
		return Decision{}
	}
	p.mu.Lock()
	n := p.counts[site]
	p.counts[site] = n + 1
	r, ok := p.rules[site]
	p.mu.Unlock()
	if !ok || r.n == 0 || r.fault == OpNone {
		return Decision{}
	}
	if hash(fmt.Sprintf("%s#%d", site, n), r.seed)%r.n != 0 {
		return Decision{}
	}
	obsInjected.Add(1)
	return Decision{Fault: r.fault, Delay: r.delay}
}

// String renders the plane's canonical spec (the inverse of ParsePlane),
// rules sorted by site. An empty or nil plane renders as "".
func (p *Plane) String() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	rules := make([]planeRule, 0, len(p.rules))
	for _, r := range p.rules {
		rules = append(rules, r)
	}
	p.mu.Unlock()
	sort.Slice(rules, func(i, j int) bool { return rules[i].site < rules[j].site })
	parts := make([]string, 0, len(rules))
	for _, r := range rules {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:%s:1/%d", r.site, r.fault, r.n)
		if r.seed != 0 {
			fmt.Fprintf(&b, ":seed=%d", r.seed)
		}
		if r.fault == OpSlow && r.delay != 50*time.Millisecond {
			fmt.Fprintf(&b, ":delay=%s", r.delay)
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ",")
}

// ParsePlane builds a plane from a comma-separated rule list; see the
// package comment for the grammar. An empty spec yields an empty plane.
func ParsePlane(spec string) (*Plane, error) {
	p := NewPlane()
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, rs := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(rs), ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("faultinject: rule %q: want site:kind:1/N[:seed=S][:delay=D]", rs)
		}
		site := parts[0]
		if site == "" {
			return nil, fmt.Errorf("faultinject: rule %q has an empty site", rs)
		}
		var fault OpFault
		switch parts[1] {
		case "err":
			fault = OpErr
		case "short":
			fault = OpShort
		case "reset":
			fault = OpReset
		case "5xx":
			fault = Op5xx
		case "slow":
			fault = OpSlow
		case "panic":
			fault = OpPanic
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown kind %q (have err, short, reset, 5xx, slow, panic)", rs, parts[1])
		}
		num, den, ok := strings.Cut(parts[2], "/")
		if !ok || num != "1" {
			return nil, fmt.Errorf("faultinject: rule %q: rate %q: want 1/N", rs, parts[2])
		}
		n, err := strconv.ParseUint(den, 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("faultinject: rule %q: rate %q: want 1/N with N >= 1", rs, parts[2])
		}
		var seed uint64
		var delay time.Duration
		for _, opt := range parts[3:] {
			switch {
			case strings.HasPrefix(opt, "seed="):
				seed, err = strconv.ParseUint(strings.TrimPrefix(opt, "seed="), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad seed %q", rs, opt)
				}
			case strings.HasPrefix(opt, "delay="):
				delay, err = time.ParseDuration(strings.TrimPrefix(opt, "delay="))
				if err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad delay %q", rs, opt)
				}
			default:
				return nil, fmt.Errorf("faultinject: rule %q: unknown option %q", rs, opt)
			}
		}
		p.Rule(site, fault, n, seed, delay)
	}
	return p, nil
}

// Transport is an http.RoundTripper that injects transport-level faults
// from the plane's SiteHTTPRequest schedule: connection resets, synthetic
// 502s and latency spikes. It wraps Base (http.DefaultTransport when nil)
// and is how chaos tests make a healthy daemon look sick to its clients.
type Transport struct {
	Plane *Plane
	Base  http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	d := t.Plane.Decide(SiteHTTPRequest)
	switch d.Fault {
	case OpReset, OpErr, OpShort:
		return nil, &injectedError{site: SiteHTTPRequest, kind: OpReset}
	case Op5xx:
		return &http.Response{
			Status:     "502 Bad Gateway (injected)",
			StatusCode: http.StatusBadGateway,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       http.NoBody,
			Request:    req,
		}, nil
	case OpSlow:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.Delay):
		}
	case OpPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s %s", SiteHTTPRequest, req.URL.Path))
	}
	return base.RoundTrip(req)
}
