// Package faultinject provides deterministic fault injection for the
// supervised experiment runner (package harness). It exists so the
// supervisor's recovery, retry and checkpoint paths are themselves
// exercised by tests and by `leakbench -faultinject` instead of waiting for
// a real panic to prove them out.
//
// Faults are decided per (run key, attempt) by a pure hash, so a given spec
// always fails the same runs — a test that injects "panic into 1 of 8 runs"
// fails the same cells on every execution, and a retry of a non-sticky
// fault deterministically succeeds.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
)

// Fault is the kind of failure to inject into a run.
type Fault int

// Fault kinds. FaultNaN is applied by the simulation job itself (the
// supervisor cannot corrupt an arbitrary result type); the others are
// applied by the supervisor before the run starts.
const (
	FaultNone Fault = iota
	// FaultPanic panics inside the worker, exercising recovery.
	FaultPanic
	// FaultError returns an ordinary error, exercising retry.
	FaultError
	// FaultStall blocks until the per-run deadline fires, exercising
	// deadline enforcement.
	FaultStall
	// FaultNaN corrupts the run's energy measurement to NaN, exercising
	// result validation.
	FaultNaN
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultError:
		return "error"
	case FaultStall:
		return "stall"
	case FaultNaN:
		return "nan"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Injector decides whether a fault should be injected into the given run
// attempt. Implementations must be safe for concurrent use and pure: the
// same (key, attempt) must always yield the same decision.
type Injector interface {
	Decide(key string, attempt int) Fault
}

// Func adapts a plain function to the Injector interface (tests).
type Func func(key string, attempt int) Fault

// Decide implements Injector.
func (f Func) Decide(key string, attempt int) Fault { return f(key, attempt) }

// Deterministic injects Fault into roughly 1 of N runs, chosen by an
// FNV-1a hash of the run key mixed with Seed. Non-sticky faults fire only
// on the first attempt, so a retry recovers; sticky faults fire on every
// attempt, so the run fails permanently.
type Deterministic struct {
	Fault  Fault
	N      uint64 // fault when hash(key) % N == 0; 0 disables injection
	Seed   uint64
	Sticky bool
}

// String renders the canonical spec form (the inverse of Parse), used to
// record the injector in checkpoint headers. A nil or disabled injector
// renders as "" — the same as no injection at all.
func (d *Deterministic) String() string {
	if d == nil || d.N == 0 || d.Fault == FaultNone {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:1/%d", d.Fault, d.N)
	if d.Seed != 0 {
		fmt.Fprintf(&b, ":seed=%d", d.Seed)
	}
	if d.Sticky {
		b.WriteString(":sticky")
	}
	return b.String()
}

// Decide implements Injector.
func (d *Deterministic) Decide(key string, attempt int) Fault {
	if d == nil || d.N == 0 || d.Fault == FaultNone {
		return FaultNone
	}
	if !d.Sticky && attempt > 0 {
		return FaultNone
	}
	if hash(key, d.Seed)%d.N == 0 {
		return d.Fault
	}
	return FaultNone
}

// hash is FNV-1a over key, seeded, with a murmur-style finalizer: FNV's
// low-order bits disperse poorly and the bucket test is a modulo.
func hash(key string, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ (seed * prime)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Parse builds a Deterministic injector from a spec of the form
//
//	kind:1/N[:seed=S][:sticky]
//
// where kind is panic, error, stall or nan — e.g. "panic:1/8" panics in
// roughly one of every eight runs on their first attempt, and
// "nan:1/4:seed=3:sticky" corrupts the same quarter of runs on every
// attempt.
func Parse(spec string) (*Deterministic, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 {
		return nil, fmt.Errorf("faultinject: spec %q: want kind:1/N[:seed=S][:sticky]", spec)
	}
	d := &Deterministic{}
	switch parts[0] {
	case "panic":
		d.Fault = FaultPanic
	case "error":
		d.Fault = FaultError
	case "stall":
		d.Fault = FaultStall
	case "nan":
		d.Fault = FaultNaN
	default:
		return nil, fmt.Errorf("faultinject: unknown kind %q (have panic, error, stall, nan)", parts[0])
	}
	num, den, ok := strings.Cut(parts[1], "/")
	if !ok || num != "1" {
		return nil, fmt.Errorf("faultinject: rate %q: want 1/N", parts[1])
	}
	n, err := strconv.ParseUint(den, 10, 64)
	if err != nil || n == 0 {
		return nil, fmt.Errorf("faultinject: rate %q: want 1/N with N >= 1", parts[1])
	}
	d.N = n
	for _, p := range parts[2:] {
		switch {
		case p == "sticky":
			d.Sticky = true
		case strings.HasPrefix(p, "seed="):
			s, err := strconv.ParseUint(strings.TrimPrefix(p, "seed="), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed in %q", p)
			}
			d.Seed = s
		default:
			return nil, fmt.Errorf("faultinject: unknown option %q", p)
		}
	}
	return d, nil
}
