package faultinject

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestPlaneDeterminism: the same spec over the same operation sequence
// must fault the same operations, and roughly 1/N of them.
func TestPlaneDeterminism(t *testing.T) {
	decide := func() []int {
		p, err := ParsePlane("store.sync:err:1/4:seed=7")
		if err != nil {
			t.Fatal(err)
		}
		var faulted []int
		for i := 0; i < 400; i++ {
			if p.Decide("store.sync").Fault != OpNone {
				faulted = append(faulted, i)
			}
		}
		return faulted
	}
	a, b := decide(), decide()
	if len(a) == 0 {
		t.Fatal("1/4 schedule never fired in 400 ops")
	}
	if len(a) != len(b) {
		t.Fatalf("two identical planes faulted %d vs %d ops", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedules diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Density sanity: 1/4 of 400 ± generous slack.
	if len(a) < 50 || len(a) > 150 {
		t.Errorf("1/4 schedule faulted %d of 400 ops", len(a))
	}
}

// TestPlaneSiteIsolation: a rule for one site must not fire at another,
// and a nil plane injects nothing.
func TestPlaneSiteIsolation(t *testing.T) {
	p, err := ParsePlane("store.sync:err:1/1")
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Decide("store.write"); d.Fault != OpNone {
		t.Errorf("rule for store.sync fired at store.write: %v", d.Fault)
	}
	if d := p.Decide("store.sync"); d.Fault != OpErr {
		t.Errorf("1/1 rule did not fire: %v", d.Fault)
	}
	if err := (Decision{Fault: OpErr}).Err("store.sync"); !errors.Is(err, ErrInjected) {
		t.Errorf("injected error does not unwrap to ErrInjected: %v", err)
	}

	var nilPlane *Plane
	if d := nilPlane.Decide("anything"); d.Fault != OpNone {
		t.Errorf("nil plane injected %v", d.Fault)
	}
}

// TestParsePlaneRoundTrip: String is the inverse of ParsePlane, and bad
// specs are rejected with errors naming the offending rule.
func TestParsePlaneRoundTrip(t *testing.T) {
	spec := "http.request:reset:1/4,server.handler:panic:1/8:seed=2,store.sync:err:1/5:seed=3"
	p, err := ParsePlane(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != spec {
		t.Errorf("round trip: %q -> %q", spec, got)
	}
	if p2, err := ParsePlane(""); err != nil || p2.String() != "" {
		t.Errorf("empty spec: %v, %q", err, p2.String())
	}
	for _, bad := range []string{
		"store.sync",                  // no kind/rate
		"store.sync:err",              // no rate
		"store.sync:quantum:1/4",      // unknown kind
		"store.sync:err:2/4",          // numerator must be 1
		"store.sync:err:1/0",          // zero denominator
		"store.sync:err:1/4:wat",      // unknown option
		":err:1/4",                    // empty site
		"store.sync:slow:1/4:delay=x", // bad delay
	} {
		if _, err := ParsePlane(bad); err == nil {
			t.Errorf("ParsePlane(%q) accepted", bad)
		}
	}
}

// TestTransportFaults drives the fault-injecting RoundTripper: resets
// surface as transport errors, 5xx as synthesized responses, slow as a
// delay, and a rule-free plane passes through.
func TestTransportFaults(t *testing.T) {
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer hts.Close()

	get := func(tr *Transport) (*http.Response, error) {
		cl := &http.Client{Transport: tr}
		resp, err := cl.Get(hts.URL)
		if resp != nil {
			resp.Body.Close()
		}
		return resp, err
	}

	p := NewPlane().Rule(SiteHTTPRequest, OpReset, 1, 0, 0)
	if _, err := get(&Transport{Plane: p}); err == nil || !errors.Is(err, ErrInjected) {
		t.Errorf("reset rule produced %v, want ErrInjected", err)
	}

	p = NewPlane().Rule(SiteHTTPRequest, Op5xx, 1, 0, 0)
	resp, err := get(&Transport{Plane: p})
	if err != nil || resp.StatusCode != http.StatusBadGateway {
		t.Errorf("5xx rule produced %v, %v", resp, err)
	}

	p = NewPlane().Rule(SiteHTTPRequest, OpSlow, 1, 0, 20*time.Millisecond)
	start := time.Now()
	if resp, err := get(&Transport{Plane: p}); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("slow rule produced %v, %v", resp, err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("slow rule delayed only %v", d)
	}

	if resp, err := get(&Transport{Plane: nil}); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("nil plane transport produced %v, %v", resp, err)
	}
}
