package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotleakage/internal/harness/faultinject"
)

// job builds a trivial job returning its key length.
func job(key string, fn func(ctx context.Context) (int, error)) Job[int] {
	return Job[int]{Key: key, Benchmark: key, Technique: "t", Run: fn}
}

func TestPanicIsRecoveredAndSiblingsSurvive(t *testing.T) {
	s := New(Config[int]{Workers: 4})
	jobs := []Job[int]{
		job("a", func(context.Context) (int, error) { return 1, nil }),
		job("boom", func(context.Context) (int, error) { panic("kaput") }),
		job("c", func(context.Context) (int, error) { return 3, nil }),
	}
	res := s.Run(context.Background(), jobs)
	if res[0].Err != nil || res[0].Value != 1 || res[2].Err != nil || res[2].Value != 3 {
		t.Fatalf("sibling results lost: %+v", res)
	}
	re := res[1].Err
	if re == nil {
		t.Fatal("panic not converted to RunError")
	}
	if re.Panic != "kaput" || re.Stack == "" || re.Benchmark != "boom" {
		t.Fatalf("RunError missing panic detail: %+v", re)
	}
	if !strings.Contains(re.Error(), "panic") {
		t.Fatalf("Error() = %q", re.Error())
	}
}

func TestResultsInJobOrder(t *testing.T) {
	s := New(Config[int]{Workers: 8})
	var jobs []Job[int]
	for i := 0; i < 40; i++ {
		i := i
		jobs = append(jobs, job(fmt.Sprintf("j%02d", i), func(context.Context) (int, error) {
			time.Sleep(time.Duration(40-i) * 100 * time.Microsecond) // finish out of order
			return i, nil
		}))
	}
	res := s.Run(context.Background(), jobs)
	for i, r := range res {
		if r.Err != nil || r.Value != i {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	var calls atomic.Int32
	s := New(Config[int]{MaxRetries: 2, Backoff: time.Millisecond})
	res := s.Run(context.Background(), []Job[int]{
		job("flaky", func(ctx context.Context) (int, error) {
			if calls.Add(1) < 3 {
				return 0, errors.New("transient")
			}
			if Attempt(ctx) != 2 {
				return 0, fmt.Errorf("attempt counter = %d, want 2", Attempt(ctx))
			}
			return 42, nil
		}),
	})
	if res[0].Err != nil || res[0].Value != 42 || res[0].Attempts != 3 {
		t.Fatalf("retry did not recover: %+v", res[0])
	}
}

func TestPermanentFailureSkipsRetry(t *testing.T) {
	var calls atomic.Int32
	s := New(Config[int]{MaxRetries: 5, Backoff: time.Millisecond})
	res := s.Run(context.Background(), []Job[int]{
		job("bad-config", func(context.Context) (int, error) {
			calls.Add(1)
			return 0, Permanent(errors.New("zero sets"))
		}),
	})
	if res[0].Err == nil || calls.Load() != 1 {
		t.Fatalf("permanent failure retried %d times: %+v", calls.Load(), res[0])
	}
}

func TestPerRunDeadline(t *testing.T) {
	s := New(Config[int]{Timeout: 10 * time.Millisecond})
	res := s.Run(context.Background(), []Job[int]{
		job("slow", func(ctx context.Context) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		}),
	})
	if res[0].Err == nil || !res[0].Err.Timeout {
		t.Fatalf("deadline not enforced: %+v", res[0])
	}
}

func TestSuiteCancellationDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	s := New(Config[int]{Workers: 1})
	go func() {
		<-started
		cancel()
	}()
	var once atomic.Bool
	res := s.Run(ctx, []Job[int]{
		job("running", func(ctx context.Context) (int, error) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			<-ctx.Done()
			return 0, ctx.Err()
		}),
		job("queued", func(context.Context) (int, error) { return 2, nil }),
	})
	if res[0].Err == nil || !res[0].Err.Canceled {
		t.Fatalf("in-flight run not marked canceled: %+v", res[0])
	}
	if res[1].Err == nil {
		// The queued job may have slipped in before cancel on a fast
		// machine; only its completion or cancellation are acceptable.
		if res[1].Value != 2 {
			t.Fatalf("queued job lost: %+v", res[1])
		}
	}
}

func TestCheckRejectsBadValues(t *testing.T) {
	var calls atomic.Int32
	s := New(Config[int]{
		MaxRetries: 1,
		Backoff:    time.Millisecond,
		Check: func(v int) error {
			if v < 0 {
				return errors.New("negative")
			}
			return nil
		},
	})
	res := s.Run(context.Background(), []Job[int]{
		job("heals", func(ctx context.Context) (int, error) {
			calls.Add(1)
			if Attempt(ctx) == 0 {
				return -1, nil
			}
			return 7, nil
		}),
	})
	if res[0].Err != nil || res[0].Value != 7 || calls.Load() != 2 {
		t.Fatalf("check did not force retry: %+v (calls %d)", res[0], calls.Load())
	}
}

func TestInjectedFaultsAndStickiness(t *testing.T) {
	inj := faultinject.Func(func(key string, attempt int) faultinject.Fault {
		if key == "victim" && attempt == 0 {
			return faultinject.FaultPanic
		}
		return faultinject.FaultNone
	})
	s := New(Config[int]{MaxRetries: 1, Backoff: time.Millisecond, Injector: inj})
	res := s.Run(context.Background(), []Job[int]{
		job("victim", func(context.Context) (int, error) { return 9, nil }),
		job("spared", func(context.Context) (int, error) { return 1, nil }),
	})
	if res[0].Err != nil || res[0].Value != 9 || res[0].Attempts != 2 {
		t.Fatalf("non-sticky injected panic should be healed by retry: %+v", res[0])
	}
	if res[1].Err != nil {
		t.Fatalf("uninjected job failed: %+v", res[1])
	}
}

func TestStallHitsDeadline(t *testing.T) {
	inj := faultinject.Func(func(string, int) faultinject.Fault { return faultinject.FaultStall })
	s := New(Config[int]{Timeout: 10 * time.Millisecond, Injector: inj})
	res := s.Run(context.Background(), []Job[int]{
		job("stuck", func(context.Context) (int, error) { return 1, nil }),
	})
	if res[0].Err == nil || !res[0].Err.Timeout {
		t.Fatalf("stall did not trip the deadline: %+v", res[0])
	}
}

func TestBackoffIsCappedExponential(t *testing.T) {
	base, max := 100*time.Millisecond, 400*time.Millisecond
	want := []time.Duration{100, 200, 400, 400, 400}
	for n, w := range want {
		if got := backoff(base, max, n); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", n, got, w*time.Millisecond)
		}
	}
}

func TestCheckpointSkipsCompletedRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")
	type hdr struct{ N int }

	ck, err := OpenCheckpoint(path, hdr{N: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	mk := func() []Job[int] {
		return []Job[int]{
			job("one", func(context.Context) (int, error) { calls.Add(1); return 1, nil }),
			job("two", func(context.Context) (int, error) { calls.Add(1); return 2, nil }),
		}
	}
	s := New(Config[int]{Checkpoint: ck})
	if res := s.Run(context.Background(), mk()); res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("first pass failed: %+v", res)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("executed %d runs, want 2", calls.Load())
	}

	// Reopen with resume: nothing re-executes and values round-trip.
	ck2, err := OpenCheckpoint(path, hdr{N: 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Loaded() != 2 {
		t.Fatalf("loaded %d entries, want 2", ck2.Loaded())
	}
	s2 := New(Config[int]{Checkpoint: ck2})
	res := s2.Run(context.Background(), mk())
	if calls.Load() != 2 {
		t.Fatalf("resume re-executed runs (%d calls)", calls.Load())
	}
	if !res[0].FromCheckpoint || res[0].Value != 1 || !res[1].FromCheckpoint || res[1].Value != 2 {
		t.Fatalf("checkpointed values wrong: %+v", res)
	}
}

func TestCheckpointHeaderMismatchRefusesResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")
	type hdr struct{ N int }
	ck, err := OpenCheckpoint(path, hdr{N: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Append("k", 1); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	if _, err := OpenCheckpoint(path, hdr{N: 9}, true); err == nil {
		t.Fatal("header mismatch accepted")
	}
}

func TestCheckpointTornTailIsDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")
	type hdr struct{ N int }
	ck, err := OpenCheckpoint(path, hdr{N: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	ck.Append("good", 1)
	ck.Close()

	// Simulate a crash mid-write: append half a JSON line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn","val`)
	f.Close()

	ck2, err := OpenCheckpoint(path, hdr{N: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if _, ok := ck2.Lookup("good"); !ok {
		t.Fatal("intact entry lost")
	}
	if _, ok := ck2.Lookup("torn"); ok {
		t.Fatal("torn entry survived")
	}
}

func TestCheckpointFreshOpenTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")
	type hdr struct{ N int }
	ck, _ := OpenCheckpoint(path, hdr{N: 1}, false)
	ck.Append("old", 1)
	ck.Close()
	ck2, err := OpenCheckpoint(path, hdr{N: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if _, ok := ck2.Lookup("old"); ok {
		t.Fatal("non-resume open kept old entries")
	}
}

func TestCostOrderDispatch(t *testing.T) {
	// One worker makes dispatch order observable: costlier jobs must run
	// first, and equal costs keep job order.
	s := New(Config[int]{Workers: 1})
	var order []string
	var mu sync.Mutex
	mk := func(key string, cost float64) Job[int] {
		j := job(key, func(context.Context) (int, error) {
			mu.Lock()
			order = append(order, key)
			mu.Unlock()
			return 0, nil
		})
		j.Cost = cost
		return j
	}
	s.Run(context.Background(), []Job[int]{
		mk("cheap", 1), mk("big", 100), mk("mid-a", 10), mk("mid-b", 10),
	})
	want := []string{"big", "mid-a", "mid-b", "cheap"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

func TestWorkerStateIsPerWorkerAndReused(t *testing.T) {
	// Every job must see a state object, and the number of distinct
	// objects must not exceed the pool size: states belong to workers, not
	// to jobs.
	type state struct{ uses int }
	s := New(Config[int]{Workers: 3, WorkerState: func() any { return new(state) }})
	var mu sync.Mutex
	seen := make(map[*state]int)
	var jobs []Job[int]
	for i := 0; i < 24; i++ {
		jobs = append(jobs, job(fmt.Sprintf("j%02d", i), func(ctx context.Context) (int, error) {
			st, ok := WorkerValue(ctx).(*state)
			if !ok || st == nil {
				return 0, errors.New("no worker state in context")
			}
			mu.Lock()
			seen[st]++
			mu.Unlock()
			time.Sleep(200 * time.Microsecond) // let every worker participate
			return 0, nil
		}))
	}
	for _, r := range s.Run(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if len(seen) == 0 || len(seen) > 3 {
		t.Fatalf("saw %d distinct states for a 3-worker pool", len(seen))
	}
	total := 0
	for _, n := range seen {
		total += n
	}
	if total != 24 {
		t.Fatalf("state uses %d, want 24", total)
	}
}

func TestWorkerValueWithoutStateIsNil(t *testing.T) {
	s := New(Config[int]{})
	res := s.Run(context.Background(), []Job[int]{
		job("plain", func(ctx context.Context) (int, error) {
			if WorkerValue(ctx) != nil {
				return 0, errors.New("unexpected worker state")
			}
			return 1, nil
		}),
	})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
}

func TestResultDurationRecorded(t *testing.T) {
	s := New(Config[int]{})
	res := s.Run(context.Background(), []Job[int]{
		job("timed", func(context.Context) (int, error) {
			time.Sleep(5 * time.Millisecond)
			return 1, nil
		}),
	})
	if res[0].Duration < 5*time.Millisecond {
		t.Fatalf("Duration = %v, want >= 5ms", res[0].Duration)
	}
}
