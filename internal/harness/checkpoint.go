package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Checkpoint is an append-only JSON-lines store of completed run results.
// The first line is a header describing the configuration that produced
// the results; each subsequent line is {"key": ..., "value": ...}. One
// line is appended (and synced) per completed run, so an interrupted suite
// loses at most the runs that were still in flight. A torn final line —
// the process died mid-write — is discarded on load.
type Checkpoint struct {
	path   string
	header json.RawMessage

	mu      sync.Mutex
	f       *os.File
	entries map[string]json.RawMessage
	loaded  int
	lastErr error
}

// ckptLine is the on-disk framing of one checkpoint line.
type ckptLine struct {
	Header json.RawMessage `json:"header,omitempty"`
	Key    string          `json:"key,omitempty"`
	Value  json.RawMessage `json:"value,omitempty"`
}

// OpenCheckpoint opens path for checkpointing. header identifies the
// configuration (run lengths, profile set): it is written to a fresh file
// and, on resume, compared against the stored header so results simulated
// under different settings are never silently reused — a mismatch is an
// error.
//
// With resume false an existing file is truncated. With resume true its
// entries are loaded (Lookup serves them), the file is compacted to drop
// any torn tail, and subsequent appends extend it.
func OpenCheckpoint(path string, header any, resume bool) (*Checkpoint, error) {
	hdr, err := json.Marshal(header)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: marshal header: %w", err)
	}
	c := &Checkpoint{path: path, header: hdr, entries: make(map[string]json.RawMessage)}

	if resume {
		if err := c.load(); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}

	// Rewrite header + surviving entries, then leave the file open for
	// appends. This both initialises a fresh file and compacts a resumed
	// one (dropping torn tails and duplicate keys).
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := writeLine(w, ckptLine{Header: c.header}); err == nil {
		for key, val := range c.entries {
			if err = writeLine(w, ckptLine{Key: key, Value: val}); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	c.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	c.loaded = len(c.entries)
	return c, nil
}

// load reads an existing checkpoint file into c.entries, validating the
// header. Unparseable lines terminate the scan (torn tail) rather than
// failing the load; everything before them survives.
func (c *Checkpoint) load() error {
	f, err := os.Open(c.path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l ckptLine
		if err := json.Unmarshal(line, &l); err != nil {
			break // torn tail: keep what we have
		}
		if first {
			first = false
			if l.Header == nil {
				return fmt.Errorf("checkpoint %s: missing header line", c.path)
			}
			if !sameJSON(l.Header, c.header) {
				return fmt.Errorf("checkpoint %s: written with different settings (%s) than this run (%s); delete it or match the flags",
					c.path, l.Header, c.header)
			}
			continue
		}
		if l.Key != "" && l.Value != nil {
			c.entries[l.Key] = l.Value
		}
	}
	if first {
		// Empty file: treat as fresh.
		return nil
	}
	return nil
}

// sameJSON compares two JSON documents structurally (both are re-marshals
// of Go values, so byte comparison after a decode/encode round-trip is
// stable).
func sameJSON(a, b json.RawMessage) bool {
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return string(a) == string(b)
	}
	ab, errA := json.Marshal(av)
	bb, errB := json.Marshal(bv)
	return errA == nil && errB == nil && string(ab) == string(bb)
}

func writeLine(w *bufio.Writer, l ckptLine) error {
	b, err := json.Marshal(l)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// Lookup returns the stored raw value for key.
func (c *Checkpoint) Lookup(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	return v, ok
}

// Append records a completed result. The line is synced to disk before
// returning so a crash immediately afterwards cannot lose it. Errors are
// also retained for Err so callers polling at the end of a suite see a
// degraded checkpoint.
func (c *Checkpoint) Append(key string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		err = fmt.Errorf("checkpoint: marshal %s: %w", key, err)
		c.mu.Lock()
		c.lastErr = err
		c.mu.Unlock()
		return err
	}
	line, err := json.Marshal(ckptLine{Key: key, Value: b})
	if err == nil {
		line = append(line, '\n')
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		_, err = c.f.Write(line)
	}
	if err == nil {
		err = c.f.Sync()
	}
	if err != nil {
		c.lastErr = fmt.Errorf("checkpoint: append %s: %w", key, err)
		return c.lastErr
	}
	c.entries[key] = b
	return nil
}

// Len returns the number of stored entries.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Loaded returns how many entries were recovered from disk at open time
// (0 for a fresh checkpoint).
func (c *Checkpoint) Loaded() int { return c.loaded }

// Path returns the backing file path.
func (c *Checkpoint) Path() string { return c.path }

// Err returns the most recent append failure, if any.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// Close closes the backing file. Further appends fail.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
