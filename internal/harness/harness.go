// Package harness supervises fleets of simulation runs. The experiment
// fan-out used to be a bare WaitGroup: one panicking worker took down the
// whole `leakbench -all` regeneration and lost every completed run. The
// supervisor wraps each run in a worker that
//
//   - recovers panics into structured RunError values (the sibling runs
//     keep going and the figure renders with the failed cell marked),
//   - enforces a per-run deadline and honours suite-wide context
//     cancellation (SIGINT drains cleanly),
//   - retries transient failures with capped exponential backoff, and
//   - checkpoints each completed result as JSON so an interrupted suite
//     resumes from where it died instead of re-simulating hours of work.
//
// The package is generic over the result type so it stays free of
// simulation imports; package sim instantiates it with RunResult.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/obs"
)

// Job is one supervised unit of work. Key must be unique within a suite
// (it is the checkpoint identity); Benchmark and Technique are carried
// into RunError for reporting.
type Job[T any] struct {
	Key       string
	Benchmark string
	Technique string
	// Cost is the job's estimated execution cost in arbitrary but mutually
	// comparable units (e.g. instruction count scaled by an observed
	// ns-per-instruction). Run dispatches costlier jobs first so a long
	// cell cannot land on the tail of the schedule and stretch the whole
	// batch; equal costs (including the all-zero default) dispatch in job
	// order.
	Cost float64
	// Run executes the job. It is called with a context that carries the
	// per-run deadline and the attempt number (see Attempt); it must stop
	// promptly when the context is cancelled.
	Run func(ctx context.Context) (T, error)
}

// Result is the outcome of one job: either Value, or a non-nil Err.
type Result[T any] struct {
	Key   string
	Value T
	Err   *RunError
	// FromCheckpoint reports that Value was loaded from the checkpoint
	// file rather than executed.
	FromCheckpoint bool
	// Attempts is the number of executions performed (0 for a
	// checkpoint hit).
	Attempts int
	// Duration is the wall-clock time the job spent executing (all
	// attempts, including backoff sleeps); zero for checkpoint hits and
	// jobs cancelled before starting. Callers feed it back into future
	// Cost estimates.
	Duration time.Duration
}

// RunError is the structured failure record for one job: what failed, how
// it failed (panic with stack, error, or deadline), and after how many
// attempts. It implements error.
type RunError struct {
	Key       string `json:"key"`
	Benchmark string `json:"benchmark,omitempty"`
	Technique string `json:"technique,omitempty"`
	// Err is the final failure in text form.
	Err string `json:"err"`
	// Panic and Stack are set when the failure was a recovered panic.
	Panic string `json:"panic,omitempty"`
	Stack string `json:"stack,omitempty"`
	// Timeout marks a per-run deadline expiry; Canceled marks suite-wide
	// cancellation (the run never got a fair chance).
	Timeout  bool `json:"timeout,omitempty"`
	Canceled bool `json:"canceled,omitempty"`
	Attempts int  `json:"attempts"`
}

// Error implements error.
func (e *RunError) Error() string {
	kind := "error"
	switch {
	case e.Panic != "":
		kind = "panic"
	case e.Timeout:
		kind = "timeout"
	case e.Canceled:
		kind = "canceled"
	}
	return fmt.Sprintf("run %s failed (%s after %d attempt(s)): %s", e.Key, kind, e.Attempts, e.Err)
}

// PanicError is the error produced when a worker recovers a panic.
type PanicError struct {
	Value string
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string { return "panic: " + e.Value }

// permanentError marks a failure that retrying cannot fix (e.g. an invalid
// configuration rejected by validation).
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so the supervisor fails the job immediately instead
// of retrying. Use it for deterministic failures such as validation
// errors.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was wrapped with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// attemptCtxKey carries the attempt number in the run context.
type attemptCtxKey struct{}

// Attempt returns the zero-based attempt number carried by a run context,
// or 0 outside a supervised run. Jobs use it to coordinate with a
// deterministic fault injector.
func Attempt(ctx context.Context) int {
	n, _ := ctx.Value(attemptCtxKey{}).(int)
	return n
}

// workerCtxKey carries the per-worker state in the run context.
type workerCtxKey struct{}

// WorkerValue returns the value Config.WorkerState produced for the worker
// executing this run, or nil outside a supervised run (or when no
// WorkerState was configured). Jobs use it for reusable scratch state —
// simulator components reset between runs instead of reallocated.
func WorkerValue(ctx context.Context) any {
	return ctx.Value(workerCtxKey{})
}

// Config configures a Supervisor.
type Config[T any] struct {
	// Workers bounds concurrent job execution (default 1).
	Workers int
	// Timeout is the per-attempt deadline (0 = none).
	Timeout time.Duration
	// MaxRetries is the number of re-executions after a failed first
	// attempt (0 = fail immediately).
	MaxRetries int
	// Backoff is the delay before the first retry; it doubles per retry
	// and is capped at MaxBackoff. Defaults: 100ms capped at 2s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Injector, when non-nil, injects faults into attempts (testing).
	Injector faultinject.Injector
	// Checkpoint, when non-nil, is consulted before executing a job and
	// appended to after each success.
	Checkpoint *Checkpoint
	// Check validates a produced value before it is accepted; a non-nil
	// return is treated as a retryable run failure (e.g. NaN energy).
	Check func(T) error
	// Events, when non-nil, receives structured trace events (run_start,
	// run_retry, run_fault, run_done, run_error, checkpoint_hit) keyed by
	// the job Key, which is also the checkpoint identity. Outcome counters
	// in the obs registry are updated regardless.
	Events EventSink
	// WorkerState, when non-nil, is invoked once per worker goroutine when
	// the pool starts; the returned value rides in every run context on
	// that worker (see WorkerValue). The value is confined to its worker,
	// so jobs may mutate it without locking.
	WorkerState func() any
}

// Supervisor executes batches of jobs under the configured discipline.
type Supervisor[T any] struct {
	cfg Config[T]
}

// Workers returns the resolved pool size (always >= 1), so callers can
// report how wide a sweep will run.
func (s *Supervisor[T]) Workers() int { return s.cfg.Workers }

// New builds a supervisor. The zero Config runs jobs serially with no
// deadline, no retries and no checkpoint — but still recovers panics.
func New[T any](cfg Config[T]) *Supervisor[T] {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	return &Supervisor[T]{cfg: cfg}
}

// Run executes the jobs and returns one Result per job, in job order
// regardless of completion order. It never returns early: when ctx is
// cancelled, in-flight jobs are drained (their contexts are cancelled and
// they report Canceled errors) and queued jobs are failed without
// starting. Completed results are always retained.
//
// Execution uses a fixed pool of Config.Workers goroutines pulling from a
// queue ordered by descending Job.Cost (stable, so equal costs keep job
// order). Longest-first dispatch keeps an expensive cell from starting
// last and stretching the batch's tail; the pool (rather than the old
// goroutine-per-job semaphore) gives each worker a stable identity for
// WorkerState reuse and busy-time accounting.
func (s *Supervisor[T]) Run(ctx context.Context, jobs []Job[T]) []Result[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[T], len(jobs))
	runnable := make([]int, 0, len(jobs))
	for i, job := range jobs {
		// Checkpoint hits resolve inline: no worker, no re-execution.
		if v, ok := s.lookup(job.Key); ok {
			results[i] = Result[T]{Key: job.Key, Value: v, FromCheckpoint: true}
			obsCheckpointHits.Add(1)
			s.emit(obs.Record{Type: "checkpoint_hit", RunID: job.Key})
			continue
		}
		runnable = append(runnable, i)
	}
	if len(runnable) == 0 {
		return results
	}
	sort.SliceStable(runnable, func(a, b int) bool {
		return jobs[runnable[a]].Cost > jobs[runnable[b]].Cost
	})
	workers := s.cfg.Workers
	if workers > len(runnable) {
		workers = len(runnable)
	}
	obsWorkersGauge.Set(int64(workers))
	queue := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			wctx := ctx
			if s.cfg.WorkerState != nil {
				wctx = context.WithValue(ctx, workerCtxKey{}, s.cfg.WorkerState())
			}
			var busy time.Duration
			for i := range queue {
				job := jobs[i]
				if ctx.Err() != nil {
					// Still queued when the suite was cancelled: fail
					// without starting.
					results[i] = Result[T]{Key: job.Key, Err: s.runError(job, ctx.Err(), 0)}
					continue
				}
				start := time.Now()
				results[i] = s.runJob(wctx, job)
				results[i].Duration = time.Since(start)
				busy += results[i].Duration
			}
			obsWorkerBusy.Add(uint64(busy.Milliseconds()))
			workerBusyGauge(w).Add(busy.Milliseconds())
		}(w)
	}
	for _, i := range runnable {
		queue <- i
	}
	close(queue)
	wg.Wait()
	return results
}

// lookup fetches and decodes a checkpointed value.
func (s *Supervisor[T]) lookup(key string) (T, bool) {
	var v T
	if s.cfg.Checkpoint == nil {
		return v, false
	}
	raw, ok := s.cfg.Checkpoint.Lookup(key)
	if !ok {
		return v, false
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		// A corrupt entry is re-executed rather than trusted.
		return v, false
	}
	return v, true
}

// runJob is the retry loop for one job.
func (s *Supervisor[T]) runJob(ctx context.Context, job Job[T]) Result[T] {
	var lastErr error
	attempts := 0
	s.emit(obs.Record{Type: "run_start", RunID: job.Key})
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		attempts = attempt + 1
		v, err := s.attempt(ctx, job, attempt)
		if err == nil && s.cfg.Check != nil {
			err = s.cfg.Check(v)
		}
		if err == nil {
			if s.cfg.Checkpoint != nil {
				// Append errors are recorded on the checkpoint (the
				// result itself is still good); see Checkpoint.Err.
				_ = s.cfg.Checkpoint.Append(job.Key, v)
			}
			obsRunsCompleted.Add(1)
			s.emit(obs.Record{Type: "run_done", RunID: job.Key, Attempt: attempts})
			return Result[T]{Key: job.Key, Value: v, Attempts: attempts}
		}
		lastErr = err
		var pe *PanicError
		if errors.As(err, &pe) {
			obsPanics.Add(1)
		}
		if IsPermanent(err) || attempt >= s.cfg.MaxRetries || ctx.Err() != nil {
			break
		}
		obsRetries.Add(1)
		s.emit(obs.Record{Type: "run_retry", RunID: job.Key, Attempt: attempts, Error: err.Error()})
		if !sleep(ctx, backoff(s.cfg.Backoff, s.cfg.MaxBackoff, attempt)) {
			break
		}
	}
	re := s.runError(job, lastErr, attempts)
	obsRunsFailed.Add(1)
	s.emit(obs.Record{Type: "run_error", RunID: job.Key, Attempt: attempts, Error: re.Error()})
	return Result[T]{Key: job.Key, Err: re}
}

// attempt executes the job once, converting a panic into a PanicError and
// applying the per-attempt deadline and fault injection.
func (s *Supervisor[T]) attempt(ctx context.Context, job Job[T], n int) (v T, err error) {
	runCtx := context.WithValue(ctx, attemptCtxKey{}, n)
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, s.cfg.Timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	if s.cfg.Injector != nil {
		decision := s.cfg.Injector.Decide(job.Key, n)
		if decision != faultinject.FaultNone {
			obsFaults.Add(1)
			s.emit(obs.Record{Type: "run_fault", RunID: job.Key, Attempt: n + 1, Detail: decision.String()})
		}
		switch decision {
		case faultinject.FaultPanic:
			panic(fmt.Sprintf("faultinject: injected panic into %s (attempt %d)", job.Key, n))
		case faultinject.FaultError:
			return v, fmt.Errorf("faultinject: injected error into %s (attempt %d)", job.Key, n)
		case faultinject.FaultStall:
			select {
			case <-runCtx.Done():
				return v, runCtx.Err()
			case <-time.After(5 * time.Second):
				// Backstop so a stall without a configured deadline
				// cannot hang the suite forever.
				return v, errors.New("faultinject: stalled 5s with no deadline")
			}
		}
	}
	return job.Run(runCtx)
}

// runError builds the structured failure record for a job.
func (s *Supervisor[T]) runError(job Job[T], err error, attempts int) *RunError {
	re := &RunError{
		Key:       job.Key,
		Benchmark: job.Benchmark,
		Technique: job.Technique,
		Attempts:  attempts,
	}
	if err == nil {
		err = errors.New("unknown failure")
	}
	re.Err = err.Error()
	var pe *PanicError
	if errors.As(err, &pe) {
		re.Panic = pe.Value
		re.Stack = pe.Stack
	}
	if errors.Is(err, context.DeadlineExceeded) {
		re.Timeout = true
	}
	if errors.Is(err, context.Canceled) {
		re.Canceled = true
	}
	return re
}

// backoff returns the capped exponential delay before retry n (0-based:
// the delay after the first failed attempt).
func backoff(base, cap time.Duration, n int) time.Duration {
	d := base
	for i := 0; i < n && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// sleep waits for d, returning false if ctx was cancelled first.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
