// Package profiling wires the standard CPU/heap/execution-trace profile
// outputs into a command-line tool. The experiment binaries expose
// -cpuprofile, -memprofile and -trace flags through it so a slow
// regeneration can be fed straight to `go tool pprof` / `go tool trace`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins whichever profiles have a non-empty output path and returns
// a stop function that flushes and closes them. The stop function is
// idempotent and must run before the process exits: os.Exit skips
// deferred calls, so paths that exit early have to invoke it explicitly.
func Start(cpuFile, memFile, traceFile string) (stop func(), err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
	}
	if cpuFile != "" {
		cpuF, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if traceFile != "" {
		traceF, err = os.Create(traceFile)
		if err != nil {
			cleanup()
			traceF = nil
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		cleanup()
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
			}
		}
	}, nil
}
