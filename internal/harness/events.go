package harness

import (
	"fmt"

	"hotleakage/internal/obs"
)

// EventSink receives structured trace events from the supervisor. The
// records carry the job key as RunID — the same string used as the
// checkpoint identity — so a telemetry stream joins against checkpoint
// records directly. *obs.TraceWriter satisfies the interface.
type EventSink interface {
	Write(obs.Record)
}

// Supervisor-level counters: low-frequency outcome events, recorded
// through the registry's shared base shard.
var (
	obsRunsCompleted  = obs.Default.Counter(obs.MetricRunsCompleted)
	obsRunsFailed     = obs.Default.Counter(obs.MetricRunsFailed)
	obsCheckpointHits = obs.Default.Counter(obs.MetricCheckpointHits)
	obsRetries        = obs.Default.Counter("harness_retries_total")
	obsFaults         = obs.Default.Counter("harness_faults_injected_total")
	obsPanics         = obs.Default.Counter("harness_panics_total")
	obsWorkerBusy     = obs.Default.Counter(obs.MetricWorkerBusyMS)
	obsWorkersGauge   = obs.Default.Gauge(obs.GaugeWorkers)
)

// workerBusyGauge returns the cumulative busy-time gauge for worker w.
// Gauges live in an unbounded map (unlike the fixed counter table), so the
// per-worker series scales to any pool size; registration is idempotent,
// so repeated batches on the same pool geometry reuse the same gauges.
func workerBusyGauge(w int) *obs.Gauge {
	return obs.Default.Gauge(fmt.Sprintf("harness_worker_%02d_busy_ms", w))
}

// emit sends a trace event if a sink is configured; counter side effects
// happen at the call sites so they fire even without a sink.
func (s *Supervisor[T]) emit(rec obs.Record) {
	if s.cfg.Events != nil {
		s.cfg.Events.Write(rec)
	}
}
