package adaptive

import (
	"testing"

	"hotleakage/internal/leakctl"
)

func TestFeedbackRaisesIntervalUnderInducedMisses(t *testing.T) {
	f := NewFeedback(4096, 3)
	s := leakctl.Stats{Accesses: 10000, InducedMisses: 400} // 40 per 1k
	iv := f.Recommend(16384, s)
	if iv != 8192 {
		t.Fatalf("interval after high induced rate = %d, want 8192", iv)
	}
	if f.Changes != 1 {
		t.Fatalf("Changes = %d", f.Changes)
	}
}

func TestFeedbackLowersIntervalWhenQuiet(t *testing.T) {
	f := NewFeedback(16384, 3)
	s := leakctl.Stats{Accesses: 10000, InducedMisses: 1} // 0.1 per 1k
	if iv := f.Recommend(16384, s); iv != 8192 {
		t.Fatalf("interval after quiet window = %d, want 8192", iv)
	}
}

func TestFeedbackHoldsInBand(t *testing.T) {
	f := NewFeedback(8192, 3)
	s := leakctl.Stats{Accesses: 10000, InducedMisses: 30} // exactly target
	if iv := f.Recommend(16384, s); iv != 8192 {
		t.Fatalf("interval moved inside hysteresis band: %d", iv)
	}
}

func TestFeedbackClamps(t *testing.T) {
	f := NewFeedback(65536, 3)
	var cum leakctl.Stats
	for i := 0; i < 10; i++ {
		cum.Accesses += 10000
		cum.InducedMisses += 1000
		f.Recommend(uint64(i)*f.Window, cum)
	}
	if f.Interval() != f.Max {
		t.Fatalf("interval %d exceeded Max clamp %d", f.Interval(), f.Max)
	}
	f2 := NewFeedback(1024, 3)
	var quiet leakctl.Stats
	for i := 0; i < 10; i++ {
		quiet.Accesses += 10000
		f2.Recommend(uint64(i)*f2.Window, quiet)
	}
	if f2.Interval() != f2.Min {
		t.Fatalf("interval %d fell below Min clamp %d", f2.Interval(), f2.Min)
	}
}

func TestFeedbackIgnoresThinWindows(t *testing.T) {
	f := NewFeedback(4096, 3)
	s := leakctl.Stats{Accesses: 100, InducedMisses: 50} // too few accesses
	if iv := f.Recommend(16384, s); iv != 4096 {
		t.Fatalf("thin window moved the interval: %d", iv)
	}
}

func TestFeedbackUsesDeltas(t *testing.T) {
	f := NewFeedback(4096, 3)
	// First window: hot.
	s := leakctl.Stats{Accesses: 10000, InducedMisses: 400}
	f.Recommend(1, s)
	// Second window: no NEW induced misses; cumulative stats unchanged
	// rates must read as quiet, not still-hot.
	s.Accesses += 10000
	iv := f.Recommend(2, s)
	if iv != 4096 {
		t.Fatalf("delta accounting broken: interval %d, want back to 4096", iv)
	}
}

func TestFeedbackCountsSlowHits(t *testing.T) {
	// For drowsy the early-decay signal is slow hits.
	f := NewFeedback(4096, 3)
	s := leakctl.Stats{Accesses: 10000, SlowHits: 400}
	if iv := f.Recommend(1, s); iv != 8192 {
		t.Fatalf("slow hits not treated as early-decay signal: %d", iv)
	}
}

func TestEveryMatchesWindow(t *testing.T) {
	f := NewFeedback(4096, 3)
	if f.Every() != f.Window {
		t.Fatal("Every != Window")
	}
}
