// Package adaptive implements runtime-adaptive decay intervals (Section 5.4
// of the paper). The paper's own contribution in this space is a "quite
// simple" formal feedback-control technique: the tags stay awake so induced
// misses can be identified, and a small state machine periodically updates
// the register holding the decay interval. This package provides that
// controller as a leakctl.Adapter, plus helpers for the oracle
// best-interval study of Figures 12-13 / Table 3.
package adaptive

import "hotleakage/internal/leakctl"

// Feedback is a multiplicative-increase / multiplicative-decrease
// controller on the standby-access rate (induced misses for gated-Vss,
// slow hits for drowsy — both are "the decay interval fired too early"
// signals). Every Window cycles it compares the rate over the last window
// against Target and doubles or halves the decay interval.
//
// The zero value is not usable; construct with NewFeedback.
type Feedback struct {
	// Target is the acceptable number of standby accesses (induced
	// misses + slow hits) per 1000 cache accesses.
	Target float64
	// Slack is the hysteresis band: the interval grows above
	// Target*(1+Slack) and shrinks below Target*(1-Slack).
	Slack float64
	// Window is the consultation period in cycles.
	Window uint64
	// Min and Max clamp the interval.
	Min, Max uint64

	interval uint64
	last     leakctl.Stats
	// Changes counts interval updates (observability).
	Changes int
}

// NewFeedback builds a controller starting from the given interval. target
// is in standby accesses per 1000 cache accesses; the gated-Vss energy
// balance at 70 nm favours roughly 6-10 (an induced miss costs an L2 round
// trip, a kept line costs its leakage; hotter silicon tolerates more
// induced misses because the leakage at stake is larger).
func NewFeedback(start uint64, target float64) *Feedback {
	return &Feedback{
		Target:   target,
		Slack:    0.5,
		Window:   16384,
		Min:      1024,
		Max:      65536,
		interval: start,
	}
}

// Every implements leakctl.Adapter.
func (f *Feedback) Every() uint64 { return f.Window }

// Recommend implements leakctl.Adapter.
func (f *Feedback) Recommend(cycle uint64, s leakctl.Stats) uint64 {
	dAcc := s.Accesses - f.last.Accesses
	dBad := (s.InducedMisses + s.SlowHits) - (f.last.InducedMisses + f.last.SlowHits)
	f.last = s
	if f.interval == 0 {
		f.interval = f.Min
	}
	if dAcc < 256 {
		return f.interval // too little signal this window
	}
	rate := 1000 * float64(dBad) / float64(dAcc)
	switch {
	case rate > f.Target*(1+f.Slack) && f.interval < f.Max:
		f.interval *= 2
		f.Changes++
	case rate < f.Target*(1-f.Slack) && f.interval > f.Min:
		f.interval /= 2
		f.Changes++
	}
	return f.interval
}

// Interval returns the controller's current interval.
func (f *Feedback) Interval() uint64 { return f.interval }
