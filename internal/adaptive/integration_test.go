package adaptive

import (
	"context"
	"testing"

	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
	"hotleakage/internal/workload"
)

// These tests run the controller inside the full simulator (skipped under
// -short).

func TestFeedbackImprovesGatedOnLongReuseBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// crafty's transposition-table reuse makes the default 4K interval
	// poisonous for gated-Vss; the controller must walk the interval up
	// and cut induced misses substantially.
	mc := sim.DefaultMachine(11)
	mc.Warmup = 150_000
	mc.Instructions = 400_000
	prof, _ := workload.ByName("crafty")

	fixed, err := sim.RunOne(context.Background(), mc, prof, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), nil)
	if err != nil {
		t.Fatal(err)
	}

	ctl := NewFeedback(sim.DefaultInterval, 8)
	adaptive, err := sim.RunOne(context.Background(), mc, prof, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), ctl)
	if err != nil {
		t.Fatal(err)
	}

	if ctl.Interval() <= sim.DefaultInterval {
		t.Fatalf("controller did not raise the interval: %d", ctl.Interval())
	}
	if adaptive.DStats.InducedMisses >= fixed.DStats.InducedMisses {
		t.Fatalf("feedback did not reduce induced misses: %d vs %d",
			adaptive.DStats.InducedMisses, fixed.DStats.InducedMisses)
	}
	if adaptive.CPU.Cycles >= fixed.CPU.Cycles {
		t.Fatalf("feedback did not reduce runtime: %d vs %d cycles",
			adaptive.CPU.Cycles, fixed.CPU.Cycles)
	}
}

func TestFeedbackLeavesShortReuseBenchmarkAlone(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// gcc's lines die young: the controller should not balloon the
	// interval (that would only forfeit turnoff).
	mc := sim.DefaultMachine(11)
	mc.Warmup = 150_000
	mc.Instructions = 400_000
	prof, _ := workload.ByName("gcc")
	ctl := NewFeedback(sim.DefaultInterval, 8)
	if _, err := sim.RunOne(context.Background(), mc, prof, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), ctl); err != nil {
		t.Fatal(err)
	}
	if ctl.Interval() > 4*sim.DefaultInterval {
		t.Fatalf("controller overreacted on gcc: interval %d", ctl.Interval())
	}
}
