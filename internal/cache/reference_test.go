package cache

import (
	"testing"

	"hotleakage/internal/stats"
)

// refCache is a brute-force set-associative LRU reference model: per set, a
// slice of tags ordered most-recently-used first.
type refCache struct {
	sets      [][]uint64
	assoc     int
	lineShift uint
	setMask   uint64
}

func newRef(cfg Config) *refCache {
	r := &refCache{
		sets:  make([][]uint64, cfg.Sets()),
		assoc: cfg.Assoc,
	}
	ls := uint(0)
	for 1<<ls < cfg.LineBytes {
		ls++
	}
	r.lineShift = ls
	r.setMask = uint64(cfg.Sets() - 1)
	return r
}

// access touches addr and reports whether it hit.
func (r *refCache) access(addr uint64) bool {
	la := addr >> r.lineShift
	set := la & r.setMask
	tag := la >> 16 // generous split; only equality matters
	_ = tag
	s := r.sets[set]
	for i, t := range s {
		if t == la {
			// Move to front.
			copy(s[1:i+1], s[:i])
			s[0] = la
			return true
		}
	}
	// Miss: insert at front, trim to associativity.
	s = append([]uint64{la}, s...)
	if len(s) > r.assoc {
		s = s[:r.assoc]
	}
	r.sets[set] = s
	return false
}

func TestCacheMatchesReferenceModel(t *testing.T) {
	cfg := Config{Name: "ref", SizeBytes: 4096, LineBytes: 64, Assoc: 4, HitLatency: 1}
	c := MustNew(p70(), cfg, NewMemory(p70(), 10))
	ref := newRef(cfg)
	rng := stats.NewRNG(99)

	const n = 200_000
	var hits, refHits uint64
	for i := 0; i < n; i++ {
		// Skewed address stream over a modest footprint so hits and
		// misses both occur.
		addr := uint64(rng.Intn(4096)) * 64
		if rng.Bool(0.3) {
			addr = uint64(rng.Intn(64)) * 64 // hot subset
		}
		wasHit := c.Contains(addr)
		c.Access(addr, rng.Bool(0.3), uint64(i))
		refHit := ref.access(addr)
		if wasHit != refHit {
			t.Fatalf("access %d (addr %#x): cache hit=%v, reference hit=%v", i, addr, wasHit, refHit)
		}
		if wasHit {
			hits++
		}
		if refHit {
			refHits++
		}
	}
	if hits != refHits || c.Stats.Hits != hits {
		t.Fatalf("hit totals diverged: cache=%d stats=%d ref=%d", hits, c.Stats.Hits, refHits)
	}
	if hits == 0 || hits == n {
		t.Fatalf("degenerate stream: %d/%d hits", hits, n)
	}
}
