package cache

import (
	"testing"
	"testing/quick"

	"hotleakage/internal/tech"
)

func p70() *tech.Params { return tech.MustByNode(tech.Node70) }

func tinyCfg() Config {
	return Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 2}
}

func TestConfigValidate(t *testing.T) {
	good := tinyCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []Config{
		{Name: "zero"},
		{Name: "notpow2", SizeBytes: 3 * 1024, LineBytes: 64, Assoc: 2, HitLatency: 1},
		{Name: "oddline", SizeBytes: 1024, LineBytes: 48, Assoc: 2, HitLatency: 1},
		{Name: "nolat", SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 0},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
}

func TestConfigSets(t *testing.T) {
	c := Config{SizeBytes: 64 * 1024, LineBytes: 64, Assoc: 2}
	if c.Sets() != 512 {
		t.Fatalf("Sets = %d, want 512", c.Sets())
	}
}

func TestHitAfterMiss(t *testing.T) {
	mem := NewMemory(p70(), 100)
	c := MustNew(p70(), tinyCfg(), mem)
	addr := uint64(0x1000)
	lat := c.Access(addr, false, 1)
	if lat != 2+100 {
		t.Fatalf("cold miss latency = %d, want 102", lat)
	}
	if lat := c.Access(addr, false, 2); lat != 2 {
		t.Fatalf("hit latency = %d, want 2", lat)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestSameLineDifferentWordsHit(t *testing.T) {
	c := MustNew(p70(), tinyCfg(), NewMemory(p70(), 100))
	c.Access(0x1000, false, 1)
	if lat := c.Access(0x1038, false, 2); lat != 2 {
		t.Fatalf("same-line access missed: %d", lat)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(p70(), tinyCfg(), NewMemory(p70(), 100))
	// 8 sets, 2 ways. Three lines in the same set: the least recently
	// used must be evicted.
	set0 := func(i uint64) uint64 { return i * 8 * 64 } // same set index 0
	c.Access(set0(1), false, 1)
	c.Access(set0(2), false, 2)
	c.Access(set0(1), false, 3) // refresh line 1
	c.Access(set0(3), false, 4) // evicts line 2
	if !c.Contains(set0(1)) || !c.Contains(set0(3)) {
		t.Fatal("expected lines 1 and 3 resident")
	}
	if c.Contains(set0(2)) {
		t.Fatal("line 2 should have been evicted (LRU)")
	}
}

func TestWritebackDirtyVictim(t *testing.T) {
	mem := NewMemory(p70(), 100)
	c := MustNew(p70(), tinyCfg(), mem)
	set0 := func(i uint64) uint64 { return i * 8 * 64 }
	c.Access(set0(1), true, 1) // dirty
	c.Access(set0(2), false, 2)
	c.Access(set0(3), false, 3) // evicts dirty line 1
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// The writeback reaches memory as a write access.
	if mem.Stats.Accesses != 4 { // 3 fills + 1 writeback
		t.Fatalf("memory accesses = %d, want 4", mem.Stats.Accesses)
	}
}

func TestWriteAllocates(t *testing.T) {
	c := MustNew(p70(), tinyCfg(), NewMemory(p70(), 100))
	c.Access(0x2000, true, 1)
	if !c.Contains(0x2000) {
		t.Fatal("write did not allocate")
	}
}

func TestHierarchyLatency(t *testing.T) {
	mem := NewMemory(p70(), 100)
	l2 := MustNew(p70(), Config{Name: "l2", SizeBytes: 4096, LineBytes: 64, Assoc: 2, HitLatency: 11}, mem)
	l1 := MustNew(p70(), tinyCfg(), l2)
	// Cold: L1 miss + L2 miss + memory.
	if lat := l1.Access(0x4000, false, 1); lat != 2+11+100 {
		t.Fatalf("cold latency = %d, want 113", lat)
	}
	// L1 hit.
	if lat := l1.Access(0x4000, false, 2); lat != 2 {
		t.Fatalf("L1 hit = %d", lat)
	}
	// Evict from L1 (same set pressure), keep in L2: L1 miss + L2 hit.
	set := func(i uint64) uint64 { return 0x4000 + i*8*64 }
	l1.Access(set(1), false, 3)
	l1.Access(set(2), false, 4)
	if lat := l1.Access(0x4000, false, 5); lat != 2+11 {
		t.Fatalf("L2 hit path = %d, want 13", lat)
	}
}

func TestFlush(t *testing.T) {
	mem := NewMemory(p70(), 100)
	c := MustNew(p70(), tinyCfg(), mem)
	c.Access(0x1000, true, 1)
	c.Access(0x2000, false, 2)
	c.Flush(3)
	if c.Contains(0x1000) || c.Contains(0x2000) {
		t.Fatal("flush left lines resident")
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("flush writebacks = %d, want 1 (only the dirty line)", c.Stats.Writebacks)
	}
}

func TestEnergyAccumulates(t *testing.T) {
	c := MustNew(p70(), tinyCfg(), NewMemory(p70(), 100))
	c.Access(0x1000, false, 1)
	j1 := c.DynJ
	c.Access(0x1000, false, 2)
	if c.DynJ <= j1 || j1 <= 0 {
		t.Fatalf("energy not accumulating: %v -> %v", j1, c.DynJ)
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(p70(), tinyCfg(), NewMemory(p70(), 100))
	c.Access(0x1000, false, 1)
	c.ResetStats()
	if c.Stats.Accesses != 0 || c.DynJ != 0 {
		t.Fatal("ResetStats incomplete")
	}
	if !c.Contains(0x1000) {
		t.Fatal("ResetStats must keep contents")
	}
}

func TestMemoryWriteOffCriticalPath(t *testing.T) {
	mem := NewMemory(p70(), 100)
	if lat := mem.Access(0, true, 1); lat != 0 {
		t.Fatalf("memory write latency = %d, want 0 (buffered)", lat)
	}
	if lat := mem.Access(0, false, 1); lat != 100 {
		t.Fatalf("memory read latency = %d", lat)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate not 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	// Property: set/tag decomposition is injective per line address.
	c := MustNew(p70(), Config{Name: "p", SizeBytes: 64 * 1024, LineBytes: 64, Assoc: 2, HitLatency: 1}, nil)
	f := func(a, b uint64) bool {
		a &= (1 << 40) - 1
		b &= (1 << 40) - 1
		sa, ta := c.Index(a)
		sb, tb := c.Index(b)
		if a>>6 == b>>6 {
			return sa == sb && ta == tb
		}
		return sa != sb || ta != tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsConsistencyProperty(t *testing.T) {
	// Property: immediately after any access, the line is resident.
	c := MustNew(p70(), tinyCfg(), NewMemory(p70(), 100))
	cycle := uint64(0)
	f := func(addr uint64, write bool) bool {
		cycle++
		addr &= (1 << 30) - 1
		c.Access(addr, write, cycle)
		return c.Contains(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigIsAnError(t *testing.T) {
	if _, err := New(p70(), Config{Name: "bad"}, nil); err == nil {
		t.Fatal("New with invalid config returned no error")
	}
	if _, err := New(nil, tinyCfg(), nil); err == nil {
		t.Fatal("New with nil tech params returned no error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid config did not panic")
		}
	}()
	MustNew(p70(), Config{Name: "bad"}, nil)
}
