package cache

import (
	"fmt"

	"hotleakage/internal/obs"
)

// cacheObsIDs caches the per-instance counter IDs so the per-chunk flush
// never takes the registry lock. Counter names carry the level name
// (cache_ul2_misses_total, cache_il1_hits_total, ...): one registry serves
// every level without a label system.
type cacheObsIDs struct {
	accesses, hits, misses, writebacks, fills obs.CounterID
}

func newCacheObsIDs(name string) *cacheObsIDs {
	c := func(kind string) obs.CounterID {
		return obs.Default.Counter(fmt.Sprintf("cache_%s_%s_total", name, kind)).ID()
	}
	return &cacheObsIDs{
		accesses:   c("accesses"),
		hits:       c("hits"),
		misses:     c("misses"),
		writebacks: c("writebacks"),
		fills:      c("fills"),
	}
}

// ObsFlush adds the Stats delta since the previous flush to sh.
func (c *Cache) ObsFlush(sh *obs.Shard) {
	if c.obsIDs == nil {
		c.obsIDs = newCacheObsIDs(c.Cfg.Name)
	}
	cur, prev := c.Stats, c.obsPrev
	sh.Add(c.obsIDs.accesses, obs.Delta(cur.Accesses, prev.Accesses))
	sh.Add(c.obsIDs.hits, obs.Delta(cur.Hits, prev.Hits))
	sh.Add(c.obsIDs.misses, obs.Delta(cur.Misses, prev.Misses))
	sh.Add(c.obsIDs.writebacks, obs.Delta(cur.Writebacks, prev.Writebacks))
	sh.Add(c.obsIDs.fills, obs.Delta(cur.Fills, prev.Fills))
	c.obsPrev = cur
}
