// Package cache implements the simulated memory hierarchy: set-associative
// write-back, write-allocate caches with LRU replacement, plus a
// fixed-latency main memory. The baseline L1 instruction cache, the unified
// L2 and memory live here; the leakage-controlled L1 data cache (package
// leakctl) is built from the same primitives.
package cache

import (
	"fmt"
	"math/bits"

	"hotleakage/internal/power"
	"hotleakage/internal/tech"
)

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Assoc      int
	HitLatency int
	Banks      int // physical banks for the energy model (>=1)
	TagBits    int // defaults to a 40-bit physical address tag if 0
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Validate reports configuration errors (non-power-of-two geometry, zero
// sizes) before they become index-arithmetic bugs.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %q: size, line and assoc must be positive", c.Name)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, s)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.HitLatency < 1 {
		return fmt.Errorf("cache %q: hit latency must be >= 1", c.Name)
	}
	return nil
}

// Geometry returns the energy-model geometry for this configuration.
func (c Config) Geometry() power.CacheGeometry {
	tb := c.TagBits
	if tb == 0 {
		tb = 40 - bits.TrailingZeros(uint(c.LineBytes)) - bits.TrailingZeros(uint(c.Sets()))
		// valid + dirty + LRU state travel with the tag.
		tb += 3
	}
	banks := c.Banks
	if banks < 1 {
		banks = 1
	}
	return power.CacheGeometry{
		Sets: c.Sets(), Assoc: c.Assoc, LineBytes: c.LineBytes,
		TagBits: tb, Banks: banks,
	}
}

// Line is one cache line's bookkeeping state.
type Line struct {
	Tag     uint64
	Valid   bool
	Dirty   bool
	LastUse uint64 // access-order stamp for LRU
}

// Stats accumulates per-level event counts.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	Fills      uint64
}

// MissRate returns misses/accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Level is anything that can service a line-granular access and report its
// latency in cycles. Memory and Cache both implement it.
type Level interface {
	// Access services a demand access to addr. write distinguishes
	// stores. The returned latency is the full latency of this level and
	// anything below it.
	Access(addr uint64, write bool, cycle uint64) int
	// Name identifies the level in reports.
	Name() string
}

// Memory is the fixed-latency DRAM backstop.
type Memory struct {
	Latency int
	Energy  float64 // per access, joules
	Stats   Stats
	DynJ    float64
}

// NewMemory builds main memory with the given access latency in cycles.
func NewMemory(p *tech.Params, latency int) *Memory {
	return &Memory{Latency: latency, Energy: power.MemoryAccessEnergy(p)}
}

// Access implements Level.
func (m *Memory) Access(addr uint64, write bool, cycle uint64) int {
	m.Stats.Accesses++
	if write {
		// Writes (writebacks) are buffered off the critical path.
		m.DynJ += m.Energy
		return 0
	}
	m.Stats.Hits++
	m.DynJ += m.Energy
	return m.Latency
}

// Name implements Level.
func (m *Memory) Name() string { return "memory" }

// ResetStats zeroes the event counters and energy meter (warmup support).
func (m *Memory) ResetStats() {
	m.Stats = Stats{}
	m.DynJ = 0
}

// Reset returns the memory to its just-built state (run-to-run reuse).
func (m *Memory) Reset() { m.ResetStats() }

// Cache is a plain (uncontrolled) set-associative write-back cache.
type Cache struct {
	Cfg    Config
	Next   Level
	Stats  Stats
	Energy power.CacheEnergy
	DynJ   float64 // accumulated dynamic energy in joules

	lines     []Line // sets*assoc, row-major by set
	assoc     int
	setMask   uint64
	lineShift uint
	useStamp  uint64

	// Observability flush state (see obs.go): counter IDs resolved once,
	// and the Stats value at the last flush for delta computation.
	obsIDs  *cacheObsIDs
	obsPrev Stats
}

// New builds a cache level on top of next. An invalid configuration is
// reported as an error before any simulation state is built, so a bad
// machine description fails one run instead of panicking a whole suite.
func New(p *tech.Params, cfg Config, next Level) (*Cache, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	return &Cache{
		Cfg:       cfg,
		Next:      next,
		Energy:    power.NewCacheEnergy(p, cfg.Geometry()),
		lines:     make([]Line, sets*cfg.Assoc),
		assoc:     cfg.Assoc,
		setMask:   uint64(sets - 1),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
	}, nil
}

// Reset returns the cache to the state New leaves it in — cold contents,
// zero stats and energy — while keeping the line array and energy model.
// It lets a worker reuse one cache allocation across many runs (the L2's
// line array is the dominant per-run allocation). next replaces the
// downstream level, which may itself have been reset.
func (c *Cache) Reset(next Level) {
	c.Next = next
	c.Stats = Stats{}
	c.DynJ = 0
	clear(c.lines)
	c.useStamp = 0
	c.obsPrev = Stats{}
}

// MustNew is New for static configuration known to be valid (tests,
// examples); it panics on error.
func MustNew(p *tech.Params, cfg Config, next Level) *Cache {
	c, err := New(p, cfg, next)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Level.
func (c *Cache) Name() string { return c.Cfg.Name }

// HitLat returns the hit latency in cycles (cpu.FetchCache).
func (c *Cache) HitLat() int { return c.Cfg.HitLatency }

// Tick is a no-op for an uncontrolled cache (cpu.FetchCache).
func (c *Cache) Tick(uint64) {}

// ResetStats zeroes the event counters and energy meter, keeping contents
// (warmup support).
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	c.DynJ = 0
	c.obsPrev = Stats{}
}

// Index splits a byte address into set index and tag.
func (c *Cache) Index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr >> c.lineShift
	return lineAddr & c.setMask, lineAddr >> bits.TrailingZeros64(c.setMask+1)
}

// set returns the ways of set s as a slice.
func (c *Cache) set(s uint64) []Line {
	base := int(s) * c.assoc
	return c.lines[base : base+c.assoc]
}

// Access implements Level: LRU lookup, miss to Next, write-back
// write-allocate fill.
func (c *Cache) Access(addr uint64, write bool, cycle uint64) int {
	c.Stats.Accesses++
	c.useStamp++
	set, tag := c.Index(addr)
	ways := c.set(set)

	for i := range ways {
		l := &ways[i]
		if l.Valid && l.Tag == tag {
			c.Stats.Hits++
			l.LastUse = c.useStamp
			if write {
				l.Dirty = true
				c.DynJ += c.Energy.WriteHit
			} else {
				c.DynJ += c.Energy.ReadHit
			}
			return c.Cfg.HitLatency
		}
	}

	// Miss.
	c.Stats.Misses++
	c.DynJ += c.Energy.TagProbe
	lat := c.Cfg.HitLatency
	if c.Next != nil {
		lat += c.Next.Access(addr, false, cycle)
	}
	c.fill(set, tag, write, cycle)
	return lat
}

// fill installs addr's line into set, evicting the LRU way (writing back a
// dirty victim).
func (c *Cache) fill(set, tag uint64, write bool, cycle uint64) {
	ways := c.set(set)
	victim := 0
	for i := range ways {
		if !ways[i].Valid {
			victim = i
			break
		}
		if ways[i].LastUse < ways[victim].LastUse {
			victim = i
		}
	}
	v := &ways[victim]
	if v.Valid && v.Dirty {
		c.writeback(set, v, cycle)
	}
	*v = Line{Tag: tag, Valid: true, Dirty: write, LastUse: c.useStamp}
	c.Stats.Fills++
	c.DynJ += c.Energy.LineFill
}

// writeback pushes a dirty victim to the next level (off the critical path;
// energy and traffic only).
func (c *Cache) writeback(set uint64, v *Line, cycle uint64) {
	c.Stats.Writebacks++
	c.DynJ += c.Energy.LineRead
	if c.Next != nil {
		setsBits := bits.TrailingZeros64(c.setMask + 1)
		addr := ((v.Tag << setsBits) | set) << c.lineShift
		c.Next.Access(addr, true, cycle)
	}
	v.Dirty = false
}

// Contains reports whether addr's line is present (for tests and the
// harness; does not touch LRU or stats).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.Index(addr)
	for _, l := range c.set(set) {
		if l.Valid && l.Tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line, writing back dirty ones.
func (c *Cache) Flush(cycle uint64) {
	sets := int(c.setMask) + 1
	for s := 0; s < sets; s++ {
		ways := c.set(uint64(s))
		for i := range ways {
			if ways[i].Valid && ways[i].Dirty {
				c.writeback(uint64(s), &ways[i], cycle)
			}
			ways[i] = Line{}
		}
	}
}
