// Package cluster turns a fleet of leakd workers into one logical daemon.
// A coordinator exposes the same HTTP surface as a single worker (submit,
// status, SSE events, cell fetch, health, metrics), shards each sweep's
// cells across the workers on a consistent-hash ring keyed by the cells'
// existing content addresses, dispatches the shards over the retrying API
// client, merges the workers' event streams into one client-facing hub,
// and re-shards work off workers that die mid-sweep. The coordinator's
// content-addressed store doubles as the cluster's federated read view:
// workers that miss locally consult it before simulating.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring over worker names. Each node projects
// Replicas virtual points onto a uint64 circle; a cell hash is owned by
// the first point clockwise of its position. Adding or removing one node
// moves only the keys in the arcs that node's points cover (~1/N of the
// space), which is what keeps re-sharding after a worker death cheap:
// surviving workers keep almost all of their cells.
type Ring struct {
	replicas int

	mu     sync.RWMutex
	nodes  map[string]struct{}
	points []ringPoint // sorted by pos
}

type ringPoint struct {
	pos  uint64
	node string
}

// DefaultReplicas is the virtual-point count per node when NewRing gets
// a nonpositive value: enough that 3-5 node rings balance within a few
// tens of percent, cheap enough that membership changes stay trivial.
const DefaultReplicas = 128

// NewRing builds an empty ring with the given virtual-point count per
// node (<= 0 means DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// Add inserts node's virtual points. Adding a present node is a no-op, so
// assignment is a pure function of the membership set, not of call order.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{pos: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
}

// Remove deletes node's virtual points; absent nodes are a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the membership set, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the node owning cellHash, or ("", false) on an empty ring.
func (r *Ring) Owner(cellHash string) (string, bool) {
	return r.OwnerExcluding(cellHash, nil)
}

// OwnerExcluding returns the first clockwise owner of cellHash whose node
// is not in excluded — the re-shard primitive: the dead worker's cells
// flow to their ring successors while everything else stays put. Returns
// ("", false) when no eligible node remains.
func (r *Ring) OwnerExcluding(cellHash string, excluded map[string]bool) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	pos := keyPos(cellHash)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !excluded[p.node] {
			return p.node, true
		}
	}
	return "", false
}

// pointHash places one virtual point: the first 8 bytes of
// sha256(node "#" index), big-endian.
func pointHash(node string, i int) uint64 {
	sum := sha256.Sum256([]byte(node + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyPos places a cell hash on the circle. Cell hashes are already hex
// SHA-256 (the store's content addresses), so the leading 16 hex digits
// are a uniform uint64 — no re-hash needed. Anything that is not a hex
// hash is hashed fresh so arbitrary keys still land uniformly.
func keyPos(cellHash string) uint64 {
	if len(cellHash) >= 16 {
		if v, err := strconv.ParseUint(cellHash[:16], 16, 64); err == nil {
			return v
		}
	}
	sum := sha256.Sum256([]byte(cellHash))
	return binary.BigEndian.Uint64(sum[:8])
}

// String renders membership for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes, %d replicas)", r.Len(), r.replicas)
}
