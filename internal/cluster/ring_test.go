package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testHashes returns n deterministic hex SHA-256 strings — the same shape
// as the store's cell content addresses.
func testHashes(n int) []string {
	out := make([]string, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("cell-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

// TestRingBalance: with enough virtual points, no node owns more than
// twice the share of any other over a large key population.
func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	nodes := []string{"w1", "w2", "w3", "w4", "w5"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := make(map[string]int)
	for _, h := range testHashes(10_000) {
		owner, ok := r.Owner(h)
		if !ok {
			t.Fatal("no owner on a populated ring")
		}
		counts[owner]++
	}
	min, max := 1<<31, 0
	for _, n := range nodes {
		c := counts[n]
		if c == 0 {
			t.Fatalf("node %s owns nothing: %v", n, counts)
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(min) >= 2.0 {
		t.Errorf("imbalanced ring: max/min = %d/%d = %.2f, want < 2: %v",
			max, min, float64(max)/float64(min), counts)
	}
}

// TestRingMinimalReshuffleOnJoin: adding a node moves roughly 1/N of the
// keys — all of them to the new node — and every unmoved key keeps its
// owner.
func TestRingMinimalReshuffleOnJoin(t *testing.T) {
	r := NewRing(128)
	for _, n := range []string{"w1", "w2", "w3", "w4"} {
		r.Add(n)
	}
	hashes := testHashes(10_000)
	before := make(map[string]string, len(hashes))
	for _, h := range hashes {
		before[h], _ = r.Owner(h)
	}
	r.Add("w5")
	moved := 0
	for _, h := range hashes {
		after, _ := r.Owner(h)
		if after == before[h] {
			continue
		}
		moved++
		if after != "w5" {
			t.Fatalf("key %s moved %s -> %s, not to the joining node", h[:12], before[h], after)
		}
	}
	// Ideal is 1/5 = 20%; allow generous slack but far below a full
	// reshuffle (a mod-N scheme would move ~80%).
	if frac := float64(moved) / float64(len(hashes)); frac > 0.35 {
		t.Errorf("join moved %.0f%% of keys, want ~20%%", frac*100)
	} else if moved == 0 {
		t.Error("join moved nothing; new node owns no keys")
	}
}

// TestRingMinimalReshuffleOnLeave: removing a node strands only its own
// keys; every other key keeps its owner. This is the re-shard guarantee
// the coordinator leans on after a worker death.
func TestRingMinimalReshuffleOnLeave(t *testing.T) {
	r := NewRing(128)
	for _, n := range []string{"w1", "w2", "w3", "w4", "w5"} {
		r.Add(n)
	}
	hashes := testHashes(10_000)
	before := make(map[string]string, len(hashes))
	for _, h := range hashes {
		before[h], _ = r.Owner(h)
	}
	r.Remove("w3")
	for _, h := range hashes {
		after, ok := r.Owner(h)
		if !ok {
			t.Fatal("no owner after removal")
		}
		if after == "w3" {
			t.Fatal("removed node still owns keys")
		}
		if before[h] != "w3" && after != before[h] {
			t.Fatalf("key %s owned by surviving %s moved to %s on unrelated removal",
				h[:12], before[h], after)
		}
	}
}

// TestRingDeterministicAssignment: ownership is a pure function of the
// membership set — insertion order must not matter, and two independent
// rings must agree.
func TestRingDeterministicAssignment(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	for _, n := range []string{"w1", "w2", "w3"} {
		a.Add(n)
	}
	for _, n := range []string{"w3", "w1", "w2"} {
		b.Add(n)
	}
	for _, h := range testHashes(2_000) {
		oa, _ := a.Owner(h)
		ob, _ := b.Owner(h)
		if oa != ob {
			t.Fatalf("insertion order changed ownership of %s: %s vs %s", h[:12], oa, ob)
		}
	}
	// OwnerExcluding with the owner dead picks its successor, stably.
	h := testHashes(1)[0]
	owner, _ := a.Owner(h)
	ex1, ok1 := a.OwnerExcluding(h, map[string]bool{owner: true})
	ex2, ok2 := b.OwnerExcluding(h, map[string]bool{owner: true})
	if !ok1 || !ok2 || ex1 != ex2 || ex1 == owner {
		t.Fatalf("exclusion not deterministic: %q/%v vs %q/%v", ex1, ok1, ex2, ok2)
	}
}

// TestRingOwnerExcluding covers the edge cases: everything excluded, and
// empty rings.
func TestRingOwnerExcluding(t *testing.T) {
	r := NewRing(16)
	if _, ok := r.Owner("deadbeef"); ok {
		t.Error("empty ring returned an owner")
	}
	r.Add("w1")
	r.Add("w2")
	if _, ok := r.OwnerExcluding("deadbeef", map[string]bool{"w1": true, "w2": true}); ok {
		t.Error("fully-excluded ring returned an owner")
	}
	got, ok := r.OwnerExcluding("deadbeef", map[string]bool{"w1": true})
	if !ok || got != "w2" {
		t.Errorf("exclusion returned %q, want w2", got)
	}
	// Idempotent membership ops.
	r.Add("w1")
	r.Remove("nope")
	if n := r.Len(); n != 2 {
		t.Errorf("membership %d, want 2", n)
	}
}
