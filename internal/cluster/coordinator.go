package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hotleakage/internal/attack"
	"hotleakage/internal/obs"
	"hotleakage/internal/server/api"
	"hotleakage/internal/sim"
	"hotleakage/internal/store"
	"hotleakage/internal/stream"
)

var (
	obsShards       = obs.Default.Counter(obs.MetricClusterShards)
	obsSteals       = obs.Default.Counter(obs.MetricClusterSteals)
	obsReshards     = obs.Default.Counter(obs.MetricClusterReshards)
	obsWorkerDeaths = obs.Default.Counter(obs.MetricClusterWorkerDeaths)
	obsCellsAcked   = obs.Default.Counter(obs.MetricClusterCellsAcked)
	obsWorkersAlive = obs.Default.Gauge(obs.GaugeClusterWorkersAlive)
)

// Config parameterizes a coordinator. Workers and Store are required.
type Config struct {
	// Workers lists the worker daemons' addresses ("host:port" or URLs).
	Workers []string
	// Store is the coordinator's content-addressed store: every acked cell
	// lands here, and it is the first stop for both sweep resolution and
	// the federated /v1/cells read path the workers consult.
	Store *store.Store
	// Replicas is the ring's virtual-point count per worker (default 128).
	Replicas int
	// ShardRetries caps how many times one shard's cells are re-dispatched
	// after worker deaths before the cells are failed (default 2).
	ShardRetries int
	// QueueDepth caps admitted-but-unfinished sweeps (default 16); beyond
	// it submissions get 429 + Retry-After, exactly like a worker.
	QueueDepth int
	// MaxCells caps cells per sweep (default 4096).
	MaxCells int
	// SweepConcurrency is how many sweeps shard out at once (default 2:
	// the coordinator mostly waits on workers).
	SweepConcurrency int
	// DefaultInstructions/DefaultWarmup fill zero-valued requests; they
	// must match the workers' so content addresses agree (both default to
	// the same 1M/300K the server uses).
	DefaultInstructions uint64
	DefaultWarmup       uint64
	// RetryAfter is the backoff hint attached to 429s (default 5s).
	RetryAfter time.Duration
	// Retention bounds how long terminal sweeps stay queryable, as on the
	// worker (0 = keep forever).
	Retention time.Duration
	// Dial builds the per-worker client (default api.NewClient, which
	// carries the retry policy and circuit breaker).
	Dial func(addr string) *api.Client
	// Log receives operational lines; nil discards them.
	Log *log.Logger
}

// Coordinator is the cluster front end. Build with New, mount Handler,
// stop with Shutdown. Its HTTP surface is wire-compatible with a single
// worker's, so api.Client and leakbench -remote work against it unchanged.
type Coordinator struct {
	cfg  Config
	ring *Ring
	mux  *http.ServeMux

	workers map[string]*worker

	sem  chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup

	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	seq      int
	inflight int
	sweeps   map[string]*csweep
	byHash   map[string]*csweep
	degraded []string
	costs    map[string]float64 // EWMA ns/instr by bench+"/"+technique
}

// worker is one member daemon.
type worker struct {
	addr   string
	client *api.Client

	mu   sync.Mutex
	dead bool
}

func (w *worker) isDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead
}

// markDead flips the worker to dead; reports whether this call did it.
func (w *worker) markDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return false
	}
	w.dead = true
	return true
}

// csweep is one admitted cluster sweep. Cells of both kinds (energy and
// attack) live in wire form: api.Cell carries everything the shard
// scheduler needs, and shards ship to workers verbatim, so the
// coordinator never branches on kind outside hashing and key derivation.
type csweep struct {
	id           string
	reqHash      string
	priority     string
	wire         []api.Cell
	hashes       []string // content address per cell ("" when uncomputable)
	instructions uint64
	warmup       uint64
	ctx          context.Context
	cancel       context.CancelFunc
	hub          *stream.Hub

	mu       sync.Mutex
	state    string
	created  time.Time
	started  time.Time
	finished time.Time
	// per-cell terminal outcomes: done[i] true means acked (value in the
	// coordinator store or served from it); failed[i] carries the error.
	done   []bool
	failed []string
	// aggregated counters: coordinator store hits plus worker tallies.
	executed, storeHits, resumed int
	errMsg, degradedMsg          string
}

// New builds a coordinator over cfg and connects its worker clients.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, errors.New("cluster: Config.Store is required")
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: Config.Workers is empty")
	}
	cfg = withDefaults(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		ring:       NewRing(cfg.Replicas),
		workers:    make(map[string]*worker, len(cfg.Workers)),
		sem:        make(chan struct{}, cfg.SweepConcurrency),
		stop:       make(chan struct{}),
		rootCtx:    ctx,
		rootCancel: cancel,
		sweeps:     make(map[string]*csweep),
		byHash:     make(map[string]*csweep),
		costs:      make(map[string]float64),
	}
	for _, addr := range cfg.Workers {
		if _, dup := c.workers[addr]; dup {
			cancel()
			return nil, fmt.Errorf("cluster: duplicate worker %q", addr)
		}
		c.workers[addr] = &worker{addr: addr, client: cfg.Dial(addr)}
		c.ring.Add(addr)
	}
	obsWorkersAlive.Set(int64(len(c.workers)))
	// Warm the shard scheduler's cost model from the store's meta segment,
	// the same EWMA the workers persist.
	var persisted map[string]float64
	if ok, err := cfg.Store.GetMeta(sim.CostModelMetaKey, &persisted); err == nil && ok {
		for k, v := range persisted {
			if v > 0 {
				c.costs[k] = v
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", c.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", c.handleSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /v1/cells/{hash}", c.handleCell)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default.WriteProm(w)
	})
	c.mux = mux
	if cfg.Retention > 0 {
		c.wg.Add(1)
		go c.janitor()
	}
	return c, nil
}

func withDefaults(cfg Config) Config {
	if cfg.ShardRetries <= 0 {
		cfg.ShardRetries = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 4096
	}
	if cfg.SweepConcurrency <= 0 {
		cfg.SweepConcurrency = 2
	}
	if cfg.DefaultInstructions == 0 {
		cfg.DefaultInstructions = 1_000_000
	}
	if cfg.DefaultWarmup == 0 {
		cfg.DefaultWarmup = 300_000
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = api.NewClient
	}
	if cfg.Log == nil {
		cfg.Log = log.New(os.Stderr, "", 0)
		cfg.Log.SetOutput(discard{})
	}
	return cfg
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Handler returns the coordinator's routes.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// janitor mirrors the worker's: terminal sweeps older than Retention are
// evicted so the lookup maps stay bounded.
func (c *Coordinator) janitor() {
	defer c.wg.Done()
	period := c.cfg.Retention / 4
	if period < time.Second {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.evictExpired(time.Now())
		}
	}
}

func (c *Coordinator) evictExpired(now time.Time) int {
	cutoff := now.Add(-c.cfg.Retention)
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for id, sw := range c.sweeps {
		sw.mu.Lock()
		expired := api.Terminal(sw.state) && !sw.finished.IsZero() && sw.finished.Before(cutoff)
		sw.mu.Unlock()
		if !expired {
			continue
		}
		delete(c.sweeps, id)
		if c.byHash[sw.reqHash] == sw {
			delete(c.byHash, sw.reqHash)
		}
		n++
	}
	return n
}

// Shutdown drains: new submissions 503, running sweeps' contexts cancel
// (workers see client-side cancellation; their own durability guarantees
// hold), and the janitor exits.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	already := c.draining
	c.draining = true
	c.mu.Unlock()
	if !already {
		close(c.stop)
	}
	c.rootCancel()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: drain timed out: %w", ctx.Err())
	}
}

// noteDegraded records a deduplicated degradation reason for /healthz.
func (c *Coordinator) noteDegraded(reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.degraded {
		if r == reason {
			return
		}
	}
	if len(c.degraded) < 16 {
		c.degraded = append(c.degraded, reason)
	}
}

// ---- admission ----

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Instructions == 0 {
		req.Instructions = c.cfg.DefaultInstructions
	}
	if req.Warmup == 0 {
		req.Warmup = c.cfg.DefaultWarmup
	}
	specs, attacks, wire, err := api.ExpandCells(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(wire) == 0 {
		httpError(w, http.StatusBadRequest, "sweep has no cells")
		return
	}
	if len(wire) > c.cfg.MaxCells {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep has %d cells, limit is %d", len(wire), c.cfg.MaxCells))
		return
	}
	priority := req.Priority
	switch priority {
	case "interactive", "bulk":
	case "":
		if len(wire) <= 2 {
			priority = "interactive"
		} else {
			priority = "bulk"
		}
	default:
		httpError(w, http.StatusBadRequest, `priority must be "interactive" or "bulk"`)
		return
	}
	reqHash, err := api.RequestHash(req.Instructions, req.Warmup, wire)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "hash request: "+err.Error())
		return
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "coordinator is draining")
		return
	}
	// Identical non-terminal request: alias onto the in-flight sweep, the
	// same idempotency contract the workers give their clients.
	if prev := c.byHash[reqHash]; prev != nil {
		prev.mu.Lock()
		terminal := api.Terminal(prev.state)
		prev.mu.Unlock()
		if !terminal {
			c.mu.Unlock()
			respondJSON(w, http.StatusOK, c.status(prev, false))
			return
		}
	}
	if c.inflight >= c.cfg.QueueDepth {
		c.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(api.RetryAfterSeconds(c.cfg.RetryAfter)))
		httpError(w, http.StatusTooManyRequests, "coordinator queue is full")
		return
	}
	c.seq++
	var ctx context.Context
	var cancel context.CancelFunc
	if req.TimeoutS > 0 {
		ctx, cancel = context.WithTimeout(c.rootCtx, time.Duration(req.TimeoutS*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(c.rootCtx)
	}
	// Content addresses are computed up front (cheap: one SHA-256 of a
	// small identity document per cell) so hashes is immutable from here —
	// the ring, the store pass, the ack path and status reads all share it
	// without coordination. The wire list is energy cells then attack
	// cells (ExpandCells' contract), so hashes indexes wire directly.
	hashes := make([]string, len(wire))
	for i, cs := range specs {
		mc := sim.DefaultMachine(cs.L2)
		mc.Instructions = req.Instructions
		mc.Warmup = req.Warmup
		if h, herr := sim.CellHash(mc, cs.Bench, cs.Technique, cs.Interval); herr == nil {
			hashes[i] = h
		}
	}
	for j, as := range attacks {
		sc, ok := attack.ByName(as.Scenario)
		if !ok {
			continue // ExpandCells validated; an unknown name still just dispatches unhashed
		}
		// Attack hashes ignore the instruction budget (scenario length is
		// fixed), so the default machine is the whole identity.
		if h, herr := sim.AttackHash(sim.DefaultMachine(as.L2), sc, as.Technique, as.Interval); herr == nil {
			hashes[len(specs)+j] = h
		}
	}
	sw := &csweep{
		id:           fmt.Sprintf("c-%06d", c.seq),
		reqHash:      reqHash,
		priority:     priority,
		wire:         wire,
		hashes:       hashes,
		instructions: req.Instructions,
		warmup:       req.Warmup,
		ctx:          ctx,
		cancel:       cancel,
		hub:          stream.NewHub(),
		state:        api.StateQueued,
		created:      time.Now(),
		done:         make([]bool, len(wire)),
		failed:       make([]string, len(wire)),
	}
	c.inflight++
	c.sweeps[sw.id] = sw
	c.byHash[reqHash] = sw
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case c.sem <- struct{}{}:
			defer func() { <-c.sem }()
			c.runSweep(sw)
		case <-c.stop:
			c.finish(sw, api.StateCanceled, "coordinator draining")
		}
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
	}()
	respondJSON(w, http.StatusAccepted, c.status(sw, false))
}

// ---- sweep execution ----

// shardGroup is the dispatch atom: one (workload, L2) slice of the sweep —
// exactly the grouping the workers' lockstep batch phase wants, so a
// shard arrives at a worker as one batchable front. The workload is a
// benchmark for energy cells and an attack scenario for attack cells;
// the two never mix in one group (groupCells keys them apart), so a
// shard is always homogeneous in kind.
type shardGroup struct {
	bench    string
	l2       int
	idxs     []int  // indices into csweep.wire
	key      string // ring position: the group's smallest cell hash
	attempts int
}

func (c *Coordinator) runSweep(sw *csweep) {
	sw.mu.Lock()
	sw.state = api.StateRunning
	sw.started = time.Now()
	sw.mu.Unlock()
	sw.hub.Write(obs.Record{Type: "sweep_start", RunID: sw.id, Detail: sw.reqHash})
	c.cfg.Log.Printf("leakd-coord: sweep %s running (%d cells over %d workers)",
		sw.id, len(sw.wire), c.ring.Len())

	// Coordinator store pass: anything any worker ever acked (or a prior
	// sweep stored) is served without dispatch.
	pending := make([]int, 0, len(sw.wire))
	for i := range sw.wire {
		h := sw.hashes[i]
		if h != "" {
			if _, ok, err := c.cfg.Store.Get(h); err == nil && ok {
				sw.mu.Lock()
				sw.done[i] = true
				sw.storeHits++
				sw.mu.Unlock()
				sw.hub.Write(obs.Record{Type: "store_hit", RunID: wireKey(sw.wire[i])})
				continue
			}
		}
		pending = append(pending, i)
	}

	if len(pending) > 0 {
		c.dispatch(sw, pending)
	}

	// Verdict. Worker deaths that re-sharded cleanly leave no trace here;
	// cells failed by exhausted shard retries make the sweep
	// degraded-complete (results that could be produced were; the rest are
	// reported honestly), and per-cell simulation failures mirror the
	// single-worker contract (completed with failed cells).
	state := api.StateCompleted
	var msg, degradedMsg string
	if sw.ctx.Err() != nil {
		state, msg = api.StateCanceled, sw.ctx.Err().Error()
	} else {
		sw.mu.Lock()
		doneN, failedN, deaths := 0, 0, 0
		var firstFail string
		for i := range sw.failed {
			if sw.done[i] {
				doneN++
				continue
			}
			if sw.failed[i] != "" {
				failedN++
				if firstFail == "" {
					firstFail = sw.failed[i]
				}
				if isDeathFailure(sw.failed[i]) {
					deaths++
				}
			}
		}
		sw.mu.Unlock()
		switch {
		case doneN == 0 && failedN == len(sw.wire) && failedN > 0:
			// Nothing at all could be produced — that is a failed sweep,
			// not a degraded-complete one.
			state, msg = api.StateFailed, firstFail
		case deaths > 0:
			degradedMsg = fmt.Sprintf("%d cells lost to worker deaths after %d re-dispatch attempts",
				deaths, c.cfg.ShardRetries)
			c.noteDegraded("worker deaths exhausted shard retries")
		}
	}
	c.foldCostModel(sw)
	c.finishWith(sw, state, msg, degradedMsg)
}

// isDeathFailure distinguishes shard-retry exhaustion from per-cell
// simulation failures when choosing the degraded verdict.
func isDeathFailure(msg string) bool {
	return strings.Contains(msg, "worker died") || strings.Contains(msg, "no live workers")
}

// dispatch shards pending cells over the ring and runs one runner per
// live worker until every shard is resolved. Runners prefer their own
// queue and steal from the most-loaded peer when idle; a worker death
// re-shards its queued and unacked work onto the survivors.
func (c *Coordinator) dispatch(sw *csweep, pending []int) {
	groups := c.groupCells(sw, pending)

	sc := &dispatchState{
		queues: make(map[string][]*shardGroup),
		dead:   make(map[string]bool),
	}
	sc.cond = sync.NewCond(&sc.mu)
	for addr, w := range c.workers {
		if w.isDead() {
			sc.dead[addr] = true
		}
	}

	// Initial assignment: ring owner, skipping already-dead workers.
	for _, g := range groups {
		owner, ok := c.ring.OwnerExcluding(g.key, sc.dead)
		if !ok {
			c.failGroup(sw, g, "no live workers")
			continue
		}
		sc.queues[owner] = append(sc.queues[owner], g)
		sc.outstanding++
	}
	if sc.outstanding == 0 {
		return
	}
	// Longest-estimated-first within each queue so stragglers start early
	// (the same longest-first heuristic the workers' own scheduler uses).
	for addr := range sc.queues {
		c.sortByCost(sw, sc.queues[addr])
	}

	var wg sync.WaitGroup
	for addr, w := range c.workers {
		if sc.dead[addr] {
			continue
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.runner(sw, sc, w)
		}(w)
	}
	wg.Wait()

	// Shards nobody could run (every worker died) fail here rather than
	// hang.
	sc.mu.Lock()
	var orphans []*shardGroup
	for addr := range sc.queues {
		orphans = append(orphans, sc.queues[addr]...)
		sc.queues[addr] = nil
	}
	sc.mu.Unlock()
	for _, g := range orphans {
		c.failGroup(sw, g, "no live workers")
	}
}

// dispatchState is one sweep's shard scheduler.
type dispatchState struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queues      map[string][]*shardGroup
	dead        map[string]bool
	outstanding int // groups assigned or running, not yet resolved
}

// groupCells buckets pending cell indices into (workload, L2) shard
// groups, each keyed by its smallest cell hash for a deterministic ring
// position. Attack cells group by scenario with a kind prefix so an
// attack scenario can never share a shard with a like-named benchmark.
func (c *Coordinator) groupCells(sw *csweep, pending []int) []*shardGroup {
	byBL := make(map[string]*shardGroup)
	var order []string
	for _, i := range pending {
		cs := sw.wire[i]
		name := cs.Bench
		if cs.Kind == api.KindAttack {
			name = "attack:" + cs.Scenario
		}
		bk := fmt.Sprintf("%s/%d", name, cs.L2)
		g, ok := byBL[bk]
		if !ok {
			g = &shardGroup{bench: name, l2: cs.L2}
			byBL[bk] = g
			order = append(order, bk)
		}
		g.idxs = append(g.idxs, i)
		h := sw.hashes[i]
		if h != "" && (g.key == "" || h < g.key) {
			g.key = h
		}
	}
	groups := make([]*shardGroup, 0, len(order))
	for _, bk := range order {
		g := byBL[bk]
		if g.key == "" {
			g.key = bk // unhashable cells still need a deterministic owner
		}
		groups = append(groups, g)
	}
	return groups
}

// estimate prices a group for the scheduler from the EWMA cost model.
func (c *Coordinator) estimate(sw *csweep, g *shardGroup) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, i := range g.idxs {
		ns, ok := c.costs[costKey(sw.wire[i])]
		if !ok {
			ns = 500 // prior: ~500 ns simulated per instruction
		}
		total += ns * float64(sw.instructions)
	}
	return total
}

func (c *Coordinator) sortByCost(sw *csweep, gs []*shardGroup) {
	sort.SliceStable(gs, func(i, j int) bool {
		return c.estimate(sw, gs[i]) > c.estimate(sw, gs[j])
	})
}

// runner drains shards for one worker: its own queue first, then steals
// the most expensive queued shard from the most-loaded peer. It exits
// when its worker dies or no shard remains anywhere (queued or running —
// a running shard may still re-queue work on failure, so idle runners
// wait instead of exiting).
func (c *Coordinator) runner(sw *csweep, sc *dispatchState, w *worker) {
	for {
		sc.mu.Lock()
		for {
			if sc.dead[w.addr] || sc.outstanding == 0 || sw.ctx.Err() != nil {
				sc.mu.Unlock()
				return
			}
			if g := sc.takeLocked(w.addr); g != nil {
				sc.mu.Unlock()
				c.runGroup(sw, sc, w, g)
				break
			}
			sc.cond.Wait()
		}
	}
}

// takeLocked pops the next shard for addr: head of its own queue, else a
// steal from the longest peer queue.
func (sc *dispatchState) takeLocked(addr string) *shardGroup {
	if q := sc.queues[addr]; len(q) > 0 {
		sc.queues[addr] = q[1:]
		return q[0]
	}
	victim, best := "", 0
	for a, q := range sc.queues {
		if a != addr && !sc.dead[a] && len(q) > best {
			victim, best = a, len(q)
		}
	}
	if victim == "" {
		// Also steal from dead workers' queues (their runner is gone).
		for a, q := range sc.queues {
			if a != addr && len(q) > best {
				victim, best = a, len(q)
			}
		}
	}
	if victim == "" {
		return nil
	}
	q := sc.queues[victim]
	g := q[0]
	sc.queues[victim] = q[1:]
	obsSteals.Add(1)
	return g
}

// resolveLocked retires one shard from the scheduler's books.
func (sc *dispatchState) resolveLocked(n int) {
	sc.outstanding += n
	sc.cond.Broadcast()
}

// runGroup dispatches one shard to w as a sub-sweep, pipes its event
// stream into the sweep's hub, acks each completed cell into the
// coordinator store, and on worker death re-shards the unacked remainder.
func (c *Coordinator) runGroup(sw *csweep, sc *dispatchState, w *worker, g *shardGroup) {
	obsShards.Add(1)
	sw.hub.Write(obs.Record{Type: "shard_dispatch", RunID: sw.id,
		Detail: fmt.Sprintf("%s/L2=%d (%d cells) -> %s attempt %d", g.bench, g.l2, len(g.idxs), w.addr, g.attempts+1)})

	unacked, died, errMsg := c.runGroupOnce(sw, w, g)

	if !died {
		sc.mu.Lock()
		sc.resolveLocked(-1)
		sc.mu.Unlock()
		return
	}

	// Worker death. Take it out of the ring's eligible set, re-shard this
	// group's unacked remainder and everything still queued for it.
	if w.markDead() {
		obsWorkerDeaths.Add(1)
		obsWorkersAlive.Add(-1)
		c.noteDegraded("worker " + w.addr + " died")
		c.cfg.Log.Printf("leakd-coord: worker %s died (%s); re-sharding", w.addr, errMsg)
	}
	sw.hub.Write(obs.Record{Type: "worker_death", RunID: sw.id, Error: errMsg, Detail: w.addr})

	sc.mu.Lock()
	sc.dead[w.addr] = true
	stranded := sc.queues[w.addr]
	delete(sc.queues, w.addr)

	requeue := func(ng *shardGroup) {
		owner, ok := c.ring.OwnerExcluding(ng.key, sc.dead)
		if !ok {
			sc.outstanding--
			sc.mu.Unlock()
			c.failGroup(sw, ng, "no live workers")
			sc.mu.Lock()
			return
		}
		sc.queues[owner] = append(sc.queues[owner], ng)
		obsReshards.Add(1)
		sw.hub.Write(obs.Record{Type: "shard_requeued", RunID: sw.id,
			Detail: fmt.Sprintf("%s/L2=%d (%d cells) -> %s", ng.bench, ng.l2, len(ng.idxs), owner)})
	}

	// Queued (never-attempted) shards keep their attempt count.
	for _, qg := range stranded {
		requeue(qg)
	}
	// This shard's unacked cells burn an attempt; exhausted retries fail.
	if len(unacked) > 0 {
		ng := &shardGroup{bench: g.bench, l2: g.l2, idxs: unacked, key: g.key, attempts: g.attempts + 1}
		if ng.attempts > c.cfg.ShardRetries {
			sc.outstanding--
			sc.mu.Unlock()
			c.failGroup(sw, ng, fmt.Sprintf("worker died (%s); shard retries exhausted", errMsg))
			sc.mu.Lock()
		} else {
			requeue(ng)
		}
	} else {
		sc.outstanding--
	}
	sc.cond.Broadcast()
	sc.mu.Unlock()
}

// runGroupOnce runs one shard on one worker. It returns the cell indices
// that were not acked, whether the worker should be considered dead, and
// the transport error message when it is.
func (c *Coordinator) runGroupOnce(sw *csweep, w *worker, g *shardGroup) (unacked []int, died bool, errMsg string) {
	req := api.SweepRequest{
		Instructions: sw.instructions,
		Warmup:       sw.warmup,
		Priority:     sw.priority,
	}
	byKey := make(map[string]int, len(g.idxs)) // wire key -> sweep index
	for _, i := range g.idxs {
		wc := sw.wire[i]
		req.Cells = append(req.Cells, wc)
		byKey[wireKey(wc)] = i
	}

	st, err := w.client.SubmitSweep(sw.ctx, req)
	if err != nil {
		return g.idxs, deathError(sw, err), err.Error()
	}

	// Pipe the worker's event stream into the sweep's hub live. Worker
	// sweep_* lifecycle records are dropped (the coordinator owns the
	// sweep lifecycle); everything else — run_start, run_done, store_hit,
	// checkpoint_hit — flows through so the client sees per-cell progress
	// across the whole cluster in one stream.
	streamCtx, stopStream := context.WithCancel(sw.ctx)
	defer stopStream()
	go func() {
		_ = w.client.StreamEvents(streamCtx, st.ID, func(rec obs.Record) {
			if strings.HasPrefix(rec.Type, "sweep_") {
				return
			}
			sw.hub.Write(rec)
		})
	}()

	final, err := w.client.WaitSweep(sw.ctx, st.ID)
	if err != nil {
		return g.idxs, deathError(sw, err), err.Error()
	}
	if final.State == api.StateCanceled {
		if sw.ctx.Err() == nil {
			// The worker canceled the shard on its own (it is draining):
			// treat it like a death so the cells re-shard onto survivors.
			return g.idxs, true, "worker canceled shard (draining)"
		}
		return g.idxs, false, ""
	}
	if final.State == api.StateFailed {
		// The worker is alive and answered: the shard failed for real
		// (watchdog, harness error). Treat it like a death for retry
		// purposes only if the error smells transient? No — fail honestly.
		msg := final.Error
		if msg == "" {
			msg = "worker sweep failed"
		}
		for _, i := range g.idxs {
			c.failCell(sw, i, msg)
		}
		return nil, false, ""
	}

	// Completed (possibly with per-cell failures). Ack every done cell:
	// fetch its stored value from the worker and persist it into the
	// coordinator store (first-write-wins absorbs duplicates from steals
	// or re-shard races).
	acked := make(map[int]bool, len(g.idxs))
	var execd, hits, resumed int
	execd, hits, resumed = final.Executed, final.StoreHits, final.Resumed
	for _, cellSt := range final.Cells {
		i, ok := byKey[wireKey(cellSt.Cell)]
		if !ok {
			continue
		}
		switch {
		case cellSt.State == "done" && cellSt.Hash != "":
			if sw.hashes[i] != "" && cellSt.Hash != sw.hashes[i] {
				c.failCell(sw, i, fmt.Sprintf("worker returned hash %s, coordinator computed %s",
					cellSt.Hash, sw.hashes[i]))
				acked[i] = true // resolved (as a failure); not re-dispatchable
				continue
			}
			rec, err := w.client.Cell(sw.ctx, cellSt.Hash)
			if err != nil {
				// Transport trouble on the ack fetch: the remainder of the
				// group re-shards.
				return remainder(g.idxs, acked), deathError(sw, err), err.Error()
			}
			if perr := c.cfg.Store.Put(rec.Hash, rec.Key, rec.Value); perr != nil {
				c.noteDegraded("store trouble: " + perr.Error())
				sw.mu.Lock()
				if sw.degradedMsg == "" {
					sw.degradedMsg = perr.Error()
				}
				sw.mu.Unlock()
			}
			sw.mu.Lock()
			sw.done[i] = true
			sw.failed[i] = ""
			sw.mu.Unlock()
			acked[i] = true
			obsCellsAcked.Add(1)
		case cellSt.State == "failed":
			c.failCell(sw, i, cellSt.Error)
			acked[i] = true
		}
	}
	sw.mu.Lock()
	sw.executed += execd
	sw.storeHits += hits
	sw.resumed += resumed
	sw.mu.Unlock()
	if rem := remainder(g.idxs, acked); len(rem) > 0 {
		// The worker's status omitted cells we sent: account them failed
		// rather than hanging the shard.
		for _, i := range rem {
			c.failCell(sw, i, "worker status omitted this cell")
		}
	}
	return nil, false, ""
}

// deathError classifies a dispatch error: our own cancellation is not the
// worker's fault; anything else (transport errors, 5xx, breaker fast-fail
// after retries) counts as a death for re-shard purposes.
func deathError(sw *csweep, err error) bool {
	if sw.ctx.Err() != nil {
		return false
	}
	var se *api.StatusError
	if errors.As(err, &se) && se.Code < 500 {
		return false
	}
	return true
}

func remainder(idxs []int, acked map[int]bool) []int {
	var rem []int
	for _, i := range idxs {
		if !acked[i] {
			rem = append(rem, i)
		}
	}
	return rem
}

func (c *Coordinator) failCell(sw *csweep, i int, msg string) {
	if msg == "" {
		msg = "cell failed"
	}
	sw.mu.Lock()
	if !sw.done[i] {
		sw.failed[i] = msg
	}
	sw.mu.Unlock()
}

func (c *Coordinator) failGroup(sw *csweep, g *shardGroup, msg string) {
	for _, i := range g.idxs {
		c.failCell(sw, i, msg)
	}
}

// foldCostModel refreshes the persisted EWMA with this sweep's observed
// worker throughput so the next sweep's shard ordering is informed. The
// granularity is coarse (sweep wall-clock over executed cells) but
// self-correcting, like the workers' own model.
func (c *Coordinator) foldCostModel(sw *csweep) {
	sw.mu.Lock()
	executed := sw.executed
	elapsed := time.Since(sw.started)
	sw.mu.Unlock()
	if executed == 0 || sw.instructions == 0 || elapsed <= 0 {
		return
	}
	perCell := float64(elapsed.Nanoseconds()) / float64(executed) / float64(sw.instructions)
	const alpha = 0.3
	c.mu.Lock()
	for i := range sw.wire {
		sw.mu.Lock()
		ok := sw.done[i]
		sw.mu.Unlock()
		if !ok {
			continue
		}
		key := costKey(sw.wire[i])
		if prev, seen := c.costs[key]; seen {
			c.costs[key] = (1-alpha)*prev + alpha*perCell
		} else {
			c.costs[key] = perCell
		}
	}
	snapshot := make(map[string]float64, len(c.costs))
	for k, v := range c.costs {
		snapshot[k] = v
	}
	c.mu.Unlock()
	_ = c.cfg.Store.PutMeta(sim.CostModelMetaKey, snapshot)
}

func (c *Coordinator) finish(sw *csweep, state, msg string) {
	c.finishWith(sw, state, msg, "")
}

func (c *Coordinator) finishWith(sw *csweep, state, msg, degradedMsg string) {
	sw.cancel()
	sw.mu.Lock()
	sw.state = state
	sw.finished = time.Now()
	sw.errMsg = msg
	if degradedMsg != "" && sw.degradedMsg == "" {
		sw.degradedMsg = degradedMsg
	}
	failed := 0
	for i := range sw.failed {
		if !sw.done[i] && sw.failed[i] != "" {
			failed++
		}
	}
	executed, hits := sw.executed, sw.storeHits
	sw.mu.Unlock()
	sw.hub.Write(obs.Record{Type: "sweep_" + state, RunID: sw.id, Error: msg})
	sw.hub.Close()
	c.cfg.Log.Printf("leakd-coord: sweep %s %s (executed=%d store_hits=%d failed=%d)",
		sw.id, state, executed, hits, failed)
}

// wireKey identifies a wire cell for matching worker statuses to sweep
// indices (the api package keeps its own key unexported). Attack cells
// get their own namespace so a scenario named like a benchmark can never
// match the wrong status row.
func wireKey(wc api.Cell) string {
	if wc.Kind == api.KindAttack {
		return fmt.Sprintf("attack/%s/%d/%s/%d", wc.Scenario, wc.L2, strings.ToLower(wc.Technique), wc.Interval)
	}
	return fmt.Sprintf("%s/%d/%s/%d", wc.Bench, wc.L2, strings.ToLower(wc.Technique), wc.Interval)
}

// costKey names a wire cell's row in the EWMA cost model. Energy cells
// keep the historic bench/technique keys the workers persist; attack
// cells get their own rows (their cost is scenario-shaped, not
// budget-shaped).
func costKey(wc api.Cell) string {
	if wc.Kind == api.KindAttack {
		return "attack:" + wc.Scenario + "/" + strings.ToLower(wc.Technique)
	}
	return wc.Bench + "/" + strings.ToLower(wc.Technique)
}

// ---- status & reads ----

func (c *Coordinator) status(sw *csweep, withCells bool) api.SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := api.SweepStatus{
		ID:       sw.id,
		State:    sw.state,
		Priority: sw.priority,
		Created:  sw.created,
		Total:    len(sw.wire),
		Error:    sw.errMsg,
		Degraded: sw.degradedMsg,
		Executed: sw.executed, StoreHits: sw.storeHits, Resumed: sw.resumed,
	}
	if !sw.started.IsZero() {
		t := sw.started
		st.Started = &t
	}
	if !sw.finished.IsZero() {
		t := sw.finished
		st.Finished = &t
	}
	for i := range sw.wire {
		switch {
		case sw.done[i]:
			st.Completed++
		case sw.failed[i] != "" && api.Terminal(sw.state):
			st.Failed++
		}
	}
	if withCells {
		for i, wc := range sw.wire {
			cs := api.CellStatus{Cell: wc, Hash: sw.hashes2(i)}
			switch {
			case sw.done[i]:
				cs.State = "done"
			case sw.failed[i] != "" && api.Terminal(sw.state):
				cs.State = "failed"
				cs.Error = sw.failed[i]
			default:
				cs.State = "pending"
			}
			st.Cells = append(st.Cells, cs)
		}
	}
	return st
}

// hashes2 is a nil-safe hash lookup (status can race the hash pass).
func (sw *csweep) hashes2(i int) string {
	if i < len(sw.hashes) {
		return sw.hashes[i]
	}
	return ""
}

func (c *Coordinator) lookup(id string) *csweep {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweeps[id]
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw := c.lookup(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	respondJSON(w, http.StatusOK, c.status(sw, true))
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	sw := c.lookup(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	if err := stream.ServeSSE(w, r, sw.hub); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleCell is the federated read path: the coordinator's own store
// first, then every live worker. A worker hit is persisted locally before
// serving, so the federation converges toward the coordinator having
// everything. Workers answer /v1/cells from their local store only, so
// there is no recursion.
func (c *Coordinator) handleCell(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rec, ok, err := c.cfg.Store.Get(hash)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if ok {
		respondJSON(w, http.StatusOK, api.CellRecord{Hash: rec.Hash, Key: rec.Key, Value: rec.Value})
		return
	}
	for _, wk := range c.liveWorkers() {
		val, hit, ferr := wk.client.FetchCell(r.Context(), hash)
		if ferr != nil || !hit {
			continue
		}
		if perr := c.cfg.Store.Put(hash, nil, json.RawMessage(val)); perr != nil {
			c.noteDegraded("store trouble: " + perr.Error())
		}
		respondJSON(w, http.StatusOK, api.CellRecord{Hash: hash, Value: val})
		return
	}
	httpError(w, http.StatusNotFound, "no such cell")
}

func (c *Coordinator) liveWorkers() []*worker {
	out := make([]*worker, 0, len(c.workers))
	for _, addr := range c.ring.Nodes() {
		if w := c.workers[addr]; w != nil && !w.isDead() {
			out = append(out, w)
		}
	}
	return out
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	draining := c.draining
	inflight := c.inflight
	reasons := append([]string(nil), c.degraded...)
	c.mu.Unlock()
	h := api.Health{
		Status:         "ok",
		Draining:       draining,
		Reasons:        reasons,
		QueueDepth:     inflight,
		SweepsInFlight: inflight,
		StoreCells:     c.cfg.Store.Len(),
	}
	code := http.StatusOK
	if len(reasons) > 0 {
		h.Status = "degraded"
	}
	if draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	respondJSON(w, code, h)
}

func respondJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	respondJSON(w, code, api.ErrorBody{Error: msg})
}
