package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hotleakage/internal/server"
	"hotleakage/internal/server/api"
	"hotleakage/internal/store"
)

const (
	testInstr  = 60_000
	testWarmup = 20_000
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// startWorker spins up one real leakd worker over a fresh store.
func startWorker(t *testing.T, cfg server.Config) (*httptest.Server, *store.Store) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = openStore(t, t.TempDir())
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.DefaultInstructions == 0 {
		cfg.DefaultInstructions = testInstr
		cfg.DefaultWarmup = testWarmup
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return ts, cfg.Store
}

// fastDial builds worker clients tuned for tests: quick polls and a short
// retry budget so an injected worker death is detected in milliseconds.
func fastDial(addr string) *api.Client {
	c := api.NewClient(addr)
	c.PollInterval = 20 * time.Millisecond
	c.Retry = api.RetryPolicy{Attempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	return c
}

// startCoordinator builds a coordinator over the given worker URLs.
func startCoordinator(t *testing.T, workerURLs []string, mutate func(*Config)) (*Coordinator, *httptest.Server, *store.Store) {
	t.Helper()
	st := openStore(t, t.TempDir())
	cfg := Config{
		Workers:             workerURLs,
		Store:               st,
		DefaultInstructions: testInstr,
		DefaultWarmup:       testWarmup,
		Dial:                fastDial,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
	})
	return coord, ts, st
}

func testSweep() api.SweepRequest {
	return api.SweepRequest{
		Instructions: testInstr,
		Warmup:       testWarmup,
		Cells: []api.Cell{
			{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096},
			{Bench: "gzip", L2: 11, Technique: "gated-vss", Interval: 4096},
			{Bench: "gcc", L2: 11, Technique: "drowsy", Interval: 4096},
			{Bench: "gcc", L2: 11, Technique: "rbb", Interval: 4096},
		},
	}
}

// TestClusterParity: a 3-worker cluster must produce bit-identical stored
// values to a single-node daemon for the same sweep — the acceptance bar
// for sharding being invisible to clients.
func TestClusterParity(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		ts, _ := startWorker(t, server.Config{})
		urls = append(urls, ts.URL)
	}
	_, coordTS, coordStore := startCoordinator(t, urls, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cl := fastDial(coordTS.URL)
	st, err := cl.SubmitSweep(ctx, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitSweep(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateCompleted || final.Failed != 0 {
		t.Fatalf("cluster sweep: state=%s failed=%d error=%q", final.State, final.Failed, final.Error)
	}
	if final.Completed != 4 {
		t.Fatalf("completed %d cells, want 4", final.Completed)
	}

	// Same sweep on an isolated single-node daemon.
	soloTS, _ := startWorker(t, server.Config{})
	solo := fastDial(soloTS.URL)
	sst, err := solo.SubmitSweep(ctx, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	sfinal, err := solo.WaitSweep(ctx, sst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sfinal.State != api.StateCompleted {
		t.Fatalf("solo sweep: %s (%s)", sfinal.State, sfinal.Error)
	}

	// Every cell: same content address, byte-identical stored value.
	soloByKey := make(map[string]api.CellStatus)
	for _, cs := range sfinal.Cells {
		soloByKey[cs.Bench+cs.Technique] = cs
	}
	for _, cs := range final.Cells {
		scs, ok := soloByKey[cs.Bench+cs.Technique]
		if !ok {
			t.Fatalf("solo sweep missing cell %s/%s", cs.Bench, cs.Technique)
		}
		if cs.Hash == "" || cs.Hash != scs.Hash {
			t.Fatalf("cell %s/%s hash mismatch: cluster %q vs solo %q", cs.Bench, cs.Technique, cs.Hash, scs.Hash)
		}
		crec, err := cl.Cell(ctx, cs.Hash)
		if err != nil {
			t.Fatalf("coordinator cell fetch: %v", err)
		}
		srec, err := solo.Cell(ctx, scs.Hash)
		if err != nil {
			t.Fatalf("solo cell fetch: %v", err)
		}
		if !bytes.Equal(crec.Value, srec.Value) {
			t.Errorf("cell %s/%s: cluster and solo values differ", cs.Bench, cs.Technique)
		}
		// And the acked value is durably in the coordinator's own store.
		if _, ok, err := coordStore.Get(cs.Hash); err != nil || !ok {
			t.Errorf("cell %s not in coordinator store (ok=%v err=%v)", cs.Hash[:12], ok, err)
		}
	}

	// Resubmitting the identical sweep resolves entirely from the
	// coordinator store: no dispatch, no execution.
	st2, err := cl.SubmitSweep(ctx, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	final2, err := cl.WaitSweep(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.StoreHits != 4 || final2.Executed != 0 {
		t.Errorf("resubmit: store_hits=%d executed=%d, want 4/0", final2.StoreHits, final2.Executed)
	}
}

// killController elects the first worker that accepts a sweep submission
// as the victim: that worker serves the submission (its shard is in
// flight), then every subsequent connection to it aborts — the in-process
// stand-in for kill -9 mid-sweep. Electing by first-submission rather than
// by ring position keeps the test deterministic in the presence of work
// stealing (an idle runner may grab a shard before its ring owner does).
type killController struct {
	mu     sync.Mutex
	victim string
}

type killableHandler struct {
	h    http.Handler
	addr string
	ctl  *killController
}

func (k *killableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	k.ctl.mu.Lock()
	if k.ctl.victim == k.addr {
		k.ctl.mu.Unlock()
		panic(http.ErrAbortHandler)
	}
	if r.Method == http.MethodPost && k.ctl.victim == "" {
		k.ctl.victim = k.addr // serve this one, then go dark
	}
	k.ctl.mu.Unlock()
	k.h.ServeHTTP(w, r)
}

func (c *killController) chosen() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.victim
}

// TestClusterWorkerDeath: a worker that dies mid-sweep (accepts its shard,
// then drops every connection) must not cost the sweep anything — its
// cells re-shard onto the survivors and the sweep completes with zero
// failures.
func TestClusterWorkerDeath(t *testing.T) {
	ctl := &killController{}
	var urls []string
	for i := 0; i < 3; i++ {
		st := openStore(t, t.TempDir())
		srv, err := server.New(server.Config{
			Store: st, Workers: 2,
			DefaultInstructions: testInstr, DefaultWarmup: testWarmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		kh := &killableHandler{h: srv.Handler(), ctl: ctl}
		ts := httptest.NewServer(kh)
		kh.addr = ts.URL
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		urls = append(urls, ts.URL)
	}
	coord, coordTS, coordStore := startCoordinator(t, urls, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cl := fastDial(coordTS.URL)
	st, err := cl.SubmitSweep(ctx, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitSweep(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateCompleted {
		t.Fatalf("sweep after worker death: state=%s error=%q degraded=%q",
			final.State, final.Error, final.Degraded)
	}
	if final.Failed != 0 || final.Completed != 4 {
		t.Fatalf("acked-cell loss: completed=%d failed=%d degraded=%q",
			final.Completed, final.Failed, final.Degraded)
	}
	for _, cs := range final.Cells {
		if cs.State != "done" {
			t.Errorf("cell %s/%s ended %s: %s", cs.Bench, cs.Technique, cs.State, cs.Error)
		}
		if _, ok, _ := coordStore.Get(cs.Hash); !ok {
			t.Errorf("cell %s missing from coordinator store after re-shard", cs.Hash[:12])
		}
	}
	// The victim accepted its shard, went dark, and the coordinator must
	// have declared it dead and re-sharded.
	victim := ctl.chosen()
	if victim == "" {
		t.Fatal("no worker ever received a shard; death path not exercised")
	}
	if w := coord.workers[victim]; w == nil || !w.isDead() {
		t.Errorf("victim %s not marked dead after dropping connections", victim)
	}
}

// TestClusterFederation: a cell computed through the cluster becomes a
// store hit on a *different*, fresh worker whose Peer points at the
// coordinator — the federated read path end to end.
func TestClusterFederation(t *testing.T) {
	workerTS, _ := startWorker(t, server.Config{})
	_, coordTS, _ := startCoordinator(t, []string{workerTS.URL}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cl := fastDial(coordTS.URL)

	req := api.SweepRequest{
		Instructions: testInstr,
		Warmup:       testWarmup,
		Cells:        []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096}},
	}
	st, err := cl.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitSweep(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateCompleted || final.Failed != 0 {
		t.Fatalf("seed sweep: %s (%s)", final.State, final.Error)
	}
	hash := final.Cells[0].Hash

	// Fresh worker, empty store, federating through the coordinator.
	freshStore := openStore(t, t.TempDir())
	freshTS, _ := startWorker(t, server.Config{
		Store: freshStore,
		Peer:  fastDial(coordTS.URL),
	})
	fresh := fastDial(freshTS.URL)
	fst, err := fresh.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	ffinal, err := fresh.WaitSweep(ctx, fst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ffinal.State != api.StateCompleted {
		t.Fatalf("federated sweep: %s (%s)", ffinal.State, ffinal.Error)
	}
	if ffinal.Executed != 0 || ffinal.StoreHits != 1 {
		t.Errorf("federation miss: executed=%d store_hits=%d, want 0/1", ffinal.Executed, ffinal.StoreHits)
	}
	// The peer hit was persisted locally: next time it is a purely local hit.
	if _, ok, err := freshStore.Get(hash); err != nil || !ok {
		t.Errorf("federated hit not persisted to local store (ok=%v err=%v)", ok, err)
	}
}

// TestCoordinatorAliasing: identical in-flight requests alias to one
// sweep, the same idempotency contract the single-node daemon gives.
func TestCoordinatorAliasing(t *testing.T) {
	ts, _ := startWorker(t, server.Config{})
	_, coordTS, _ := startCoordinator(t, []string{ts.URL}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cl := fastDial(coordTS.URL)
	a, err := cl.SubmitSweep(ctx, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.SubmitSweep(ctx, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	if !api.Terminal(a.State) && a.ID != b.ID {
		t.Errorf("identical in-flight requests got distinct sweeps %s and %s", a.ID, b.ID)
	}
	if _, err := cl.WaitSweep(ctx, a.ID); err != nil {
		t.Fatal(err)
	}
}
