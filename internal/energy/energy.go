// Package energy implements the paper's evaluation metric (Section 2.3 and
// 5.1): the *net* cache-leakage savings of a leakage-control technique,
// computed as the gross leakage saved by keeping lines in standby minus the
// four itemized costs:
//
//  1. dynamic power of the extra hardware (decay counters),
//  2. leakage power of the extra hardware,
//  3. dynamic power of mode transitions,
//  4. dynamic power of extra execution time — including extra L2 accesses
//     (gated-Vss), extra tag accesses (drowsy) and the longer runtime.
//
// Leakage powers come from the HotLeakage model (package leakage) at the
// requested operating point; dynamic energies are accumulated during
// simulation in joules and are temperature-independent, so one timing run
// can be evaluated at several temperatures.
package energy

import (
	"errors"
	"fmt"

	"hotleakage/internal/cache"
	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
)

// ErrDegenerate reports a comparison whose inputs cannot be scored: a run
// that committed zero instructions or zero cycles (e.g. a cancelled-then-
// resumed cell), or a non-positive clock. Scoring such a run would put
// NaN/Inf percentages into figures and checkpoints; callers get a typed
// error to test with errors.Is instead.
var ErrDegenerate = errors.New("energy: degenerate comparison input")

// CacheLeakProfile is the leakage-power decomposition of one cache at one
// operating point, derived from the HotLeakage model and the cache
// geometry. All powers in watts.
type CacheLeakProfile struct {
	// LineActive is the leakage power of one line (data + tag cells) at
	// full rail.
	LineActive float64
	// LineStandby is the same line's power in the technique's standby
	// mode.
	LineStandby float64
	// Edge is the always-on periphery (decoders, drivers, sense amps).
	Edge float64
	// CtlHardware is the leakage of the decay hardware itself (per-line
	// 2-bit counters and comparators) — the paper's cost item #2.
	CtlHardware float64
	// Lines is the number of controlled lines.
	Lines int
}

// TotalActive returns the cache's leakage power with every line active and
// no control hardware (the baseline cache).
func (p CacheLeakProfile) TotalActive() float64 {
	return float64(p.Lines)*p.LineActive + p.Edge
}

// tagCellsPerLine approximates the tag-array bits per line (address tag
// plus valid/dirty/LRU state), chosen so tags land in the paper's "5-10% of
// the leakage energy in caches" band.
func tagCellsPerLine(cfg cache.Config) int {
	return cfg.Geometry().TagBits
}

// NewCacheLeakProfile derives the leakage profile for cfg under the given
// standby mode at the model's current environment. Pass
// leakage.ModeActive for a baseline profile (LineStandby == LineActive,
// CtlHardware == 0). Tags are assumed to decay with the line (the paper's
// default); use NewCacheLeakProfileTags for the tags-awake variant of
// Section 5.3.
func NewCacheLeakProfile(m *leakage.Model, cfg cache.Config, mode leakage.Mode) CacheLeakProfile {
	return NewCacheLeakProfileTags(m, cfg, mode, true)
}

// NewCacheLeakProfileTags is NewCacheLeakProfile with explicit control over
// whether the tag array decays with the data. With decayTags false the tag
// cells stay at active leakage in standby — "this leakage energy can no
// longer be reclaimed" (Section 5.3).
func NewCacheLeakProfileTags(m *leakage.Model, cfg cache.Config, mode leakage.Mode, decayTags bool) CacheLeakProfile {
	lines := cfg.Sets() * cfg.Assoc
	dataCells := cfg.LineBytes * 8
	tagCells := tagCellsPerLine(cfg)

	cellActive := m.CellPower(leakage.SRAM6T, leakage.ModeActive)
	cellStandby := m.CellPower(leakage.SRAM6T, mode)
	lineActive := cellActive * float64(dataCells+tagCells)
	lineStandby := cellStandby * float64(dataCells+tagCells)
	if !decayTags {
		lineStandby = cellStandby*float64(dataCells) + cellActive*float64(tagCells)
	}

	// Periphery: a row decoder gate and wide wordline driver per set,
	// and a sense amplifier plus precharge/write driver per column.
	sets := cfg.Sets()
	columns := (dataCells + tagCells) * cfg.Assoc
	edge := m.StructurePower(leakage.DecoderNAND, sets, leakage.ModeActive) +
		m.StructurePower(leakage.InverterDriver, sets, leakage.ModeActive) +
		m.StructurePower(leakage.SenseAmp, columns, leakage.ModeActive) +
		m.StructurePower(leakage.InverterDriver, columns/4, leakage.ModeActive)

	ctl := 0.0
	if mode != leakage.ModeActive {
		// Two-bit counter + compare/reset logic per line: ~5 small
		// logic cells.
		ctlCell := leakage.Cell{Name: "decay-ctr", NN: 10, NP: 10, WLn: 1.5, WLp: 2.1, GateN: 2, GateP: 2, Class: leakage.ClassLogic}
		ctl = m.StructurePower(ctlCell, lines, leakage.ModeActive)
	}

	return CacheLeakProfile{
		LineActive:  lineActive,
		LineStandby: lineStandby,
		Edge:        edge,
		CtlHardware: ctl,
		Lines:       lines,
	}
}

// RunMeasurement captures everything temperature-independent from one
// simulation run.
type RunMeasurement struct {
	Cycles            uint64
	Instructions      uint64
	StandbyLineCycles uint64

	// Dynamic energies in joules, accumulated during simulation.
	DCacheDynJ float64 // accesses, counters, transitions, writeback reads
	L2DynJ     float64
	MemDynJ    float64
	ICacheDynJ float64
	ClockJ     float64 // D-cache periphery clock: cycles * PerCycleClock

	DStats leakctl.Stats
}

// TotalDynJ sums the dynamic energy in the comparison scope.
func (r RunMeasurement) TotalDynJ() float64 {
	return r.DCacheDynJ + r.L2DynJ + r.MemDynJ + r.ICacheDynJ + r.ClockJ
}

// Comparison is the paper's headline result for one (benchmark, technique,
// operating point): net savings and performance loss, with the breakdown
// terms exposed for analysis and the ablation benches.
type Comparison struct {
	// NetSavingsPct is the paper's "net leakage savings": leakage saved
	// minus all dynamic overheads, as a percentage of the baseline
	// cache's leakage energy.
	NetSavingsPct float64
	// PerfLossPct is the percentage increase in execution cycles.
	PerfLossPct float64
	// TurnoffRatio is the average fraction of lines in standby.
	TurnoffRatio float64

	// Breakdown, as percentages of baseline leakage energy.
	GrossSavingsPct float64 // leakage avoided while lines were off
	ResidualPct     float64 // standby-mode residual leakage spent
	HardwarePct     float64 // control-hardware leakage (cost #2)
	DynOverheadPct  float64 // extra dynamic energy (costs #1, #3, #4)

	// Absolute energies, joules.
	BaseLeakJ float64
	TechLeakJ float64
	ExtraDynJ float64
}

// Compare evaluates a technique run against its baseline run at the
// operating point already set on the leakage model. clockHz converts
// cycles to seconds. Tags decay with lines; use CompareTags otherwise.
// A run with zero committed instructions or cycles, or a non-positive
// clock, returns ErrDegenerate instead of NaN/Inf percentages.
func Compare(m *leakage.Model, cfg cache.Config, mode leakage.Mode, base, tech RunMeasurement, clockHz float64) (Comparison, error) {
	return CompareTags(m, cfg, mode, true, base, tech, clockHz)
}

// checkMeasurement rejects a degenerate run with a descriptive ErrDegenerate.
func checkMeasurement(which string, r RunMeasurement) error {
	if r.Cycles == 0 {
		return fmt.Errorf("%w: %s run executed zero cycles", ErrDegenerate, which)
	}
	if r.Instructions == 0 {
		return fmt.Errorf("%w: %s run committed zero instructions", ErrDegenerate, which)
	}
	return nil
}

// CompareTags is Compare with explicit tag-decay control (Section 5.3).
func CompareTags(m *leakage.Model, cfg cache.Config, mode leakage.Mode, decayTags bool, base, tech RunMeasurement, clockHz float64) (Comparison, error) {
	if clockHz <= 0 {
		return Comparison{}, fmt.Errorf("%w: non-positive clock %v Hz", ErrDegenerate, clockHz)
	}
	if err := checkMeasurement("baseline", base); err != nil {
		return Comparison{}, err
	}
	if err := checkMeasurement("technique", tech); err != nil {
		return Comparison{}, err
	}
	lp := NewCacheLeakProfileTags(m, cfg, mode, decayTags)

	secPerCy := 1 / clockHz
	tBase := float64(base.Cycles) * secPerCy
	tTech := float64(tech.Cycles) * secPerCy

	baseLeak := lp.TotalActive() * tBase

	totalLineCycles := float64(lp.Lines) * float64(tech.Cycles)
	standby := float64(tech.StandbyLineCycles)
	active := totalLineCycles - standby
	techLeak := (lp.LineActive*active+lp.LineStandby*standby)*secPerCy +
		(lp.Edge+lp.CtlHardware)*tTech

	extraDyn := tech.TotalDynJ() - base.TotalDynJ()

	var c Comparison
	c.BaseLeakJ = baseLeak
	c.TechLeakJ = techLeak
	c.ExtraDynJ = extraDyn
	c.PerfLossPct = 100 * (float64(tech.Cycles) - float64(base.Cycles)) / float64(base.Cycles)
	if totalLineCycles > 0 {
		c.TurnoffRatio = standby / totalLineCycles
	}
	if baseLeak > 0 {
		c.NetSavingsPct = 100 * (baseLeak - techLeak - extraDyn) / baseLeak
		c.GrossSavingsPct = 100 * (lp.LineActive * standby * secPerCy) / baseLeak
		c.ResidualPct = 100 * (lp.LineStandby * standby * secPerCy) / baseLeak
		c.HardwarePct = 100 * (lp.CtlHardware * tTech) / baseLeak
		c.DynOverheadPct = 100 * extraDyn / baseLeak
	}
	return c, nil
}
