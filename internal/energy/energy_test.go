package energy

import (
	"errors"
	"math"
	"testing"

	"hotleakage/internal/cache"
	"hotleakage/internal/leakage"
	"hotleakage/internal/tech"
)

func p70() *tech.Params { return tech.MustByNode(tech.Node70) }

func dl1Cfg() cache.Config {
	return cache.Config{Name: "dl1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 2}
}

func hotModel() *leakage.Model {
	m := leakage.New(p70())
	m.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(110), Vdd: 0.9})
	return m
}

func TestTagShareOfLeakage(t *testing.T) {
	// Paper Section 5.3: "tags account for 5-10% of the leakage energy
	// in caches".
	cfg := dl1Cfg()
	g := cfg.Geometry()
	tagShare := float64(g.TagBits) / float64(g.TagBits+cfg.LineBytes*8)
	if tagShare < 0.03 || tagShare > 0.10 {
		t.Fatalf("tag share = %v, outside the paper's 5-10%% band (with margin)", tagShare)
	}
}

func TestProfileComposition(t *testing.T) {
	lp := NewCacheLeakProfile(hotModel(), dl1Cfg(), leakage.ModeGated)
	if lp.Lines != 1024 {
		t.Fatalf("lines = %d", lp.Lines)
	}
	if lp.LineStandby >= lp.LineActive {
		t.Fatal("standby line power not below active")
	}
	if lp.Edge <= 0 || lp.CtlHardware <= 0 {
		t.Fatalf("edge/control powers: %v / %v", lp.Edge, lp.CtlHardware)
	}
	// Edge logic is a modest fraction of the array.
	if frac := lp.Edge / lp.TotalActive(); frac > 0.3 {
		t.Fatalf("edge fraction %v too large", frac)
	}
	// Control hardware leakage must be a small tax.
	if lp.CtlHardware > 0.05*lp.TotalActive() {
		t.Fatalf("decay-counter leakage %v not small vs %v", lp.CtlHardware, lp.TotalActive())
	}
}

func TestBaselineProfileHasNoControlHardware(t *testing.T) {
	lp := NewCacheLeakProfile(hotModel(), dl1Cfg(), leakage.ModeActive)
	if lp.CtlHardware != 0 {
		t.Fatal("baseline charged for decay hardware")
	}
	if lp.LineStandby != lp.LineActive {
		t.Fatal("baseline standby != active")
	}
}

// mustCmp unwraps a comparison over inputs the test knows are scorable.
func mustCmp(c Comparison, err error) Comparison {
	if err != nil {
		panic(err)
	}
	return c
}

// mkMeas builds a measurement with the given cycles and standby line-cycles.
func mkMeas(cycles, standby uint64, dynJ float64) RunMeasurement {
	return RunMeasurement{
		Cycles:            cycles,
		Instructions:      cycles,
		StandbyLineCycles: standby,
		DCacheDynJ:        dynJ,
	}
}

func TestIdenticalRunsZeroSavingsAtZeroTurnoff(t *testing.T) {
	m := hotModel()
	base := mkMeas(1_000_000, 0, 1e-6)
	c := mustCmp(Compare(m, dl1Cfg(), leakage.ModeGated, base, base, 5.6e9))
	// Same cycles, no standby: only the control-hardware leakage makes
	// savings slightly negative.
	if c.PerfLossPct != 0 {
		t.Fatalf("perf loss = %v", c.PerfLossPct)
	}
	if c.NetSavingsPct > 0 || c.NetSavingsPct < -5 {
		t.Fatalf("net savings = %v, want slightly negative", c.NetSavingsPct)
	}
	if c.TurnoffRatio != 0 {
		t.Fatalf("turnoff = %v", c.TurnoffRatio)
	}
}

func TestFullTurnoffApproachesGross(t *testing.T) {
	m := hotModel()
	cfg := dl1Cfg()
	base := mkMeas(1_000_000, 0, 0)
	lines := uint64(cfg.Sets() * cfg.Assoc)
	tech := mkMeas(1_000_000, lines*1_000_000, 0)
	c := mustCmp(Compare(m, cfg, leakage.ModeGated, base, tech, 5.6e9))
	if c.TurnoffRatio < 0.999 {
		t.Fatalf("turnoff = %v", c.TurnoffRatio)
	}
	// All data+tag leakage saved minus gated residual; edge stays. Net
	// should be high but below 100%.
	if c.NetSavingsPct < 70 || c.NetSavingsPct > 100 {
		t.Fatalf("net savings at full turnoff = %v", c.NetSavingsPct)
	}
	if c.GrossSavingsPct <= c.NetSavingsPct {
		t.Fatal("gross must exceed net (residual + hardware are subtracted)")
	}
}

func TestDrowsyResidualExceedsGated(t *testing.T) {
	m := hotModel()
	cfg := dl1Cfg()
	base := mkMeas(1_000_000, 0, 0)
	lines := uint64(cfg.Sets() * cfg.Assoc)
	tech := mkMeas(1_000_000, lines*500_000, 0)
	dr := mustCmp(Compare(m, cfg, leakage.ModeDrowsy, base, tech, 5.6e9))
	gt := mustCmp(Compare(m, cfg, leakage.ModeGated, base, tech, 5.6e9))
	if dr.ResidualPct <= gt.ResidualPct {
		t.Fatalf("drowsy residual %v not above gated %v", dr.ResidualPct, gt.ResidualPct)
	}
	if dr.NetSavingsPct >= gt.NetSavingsPct {
		t.Fatal("at identical turnoff and zero dynamic cost, gated must save more")
	}
}

func TestLongerRuntimeCostsEnergy(t *testing.T) {
	m := hotModel()
	base := mkMeas(1_000_000, 0, 0)
	slow := mkMeas(1_100_000, 0, 0)
	c := mustCmp(Compare(m, dl1Cfg(), leakage.ModeGated, base, slow, 5.6e9))
	if math.Abs(c.PerfLossPct-10) > 1e-9 {
		t.Fatalf("perf loss = %v, want 10", c.PerfLossPct)
	}
	if c.NetSavingsPct >= 0 {
		t.Fatalf("longer run with no standby must lose energy: %v", c.NetSavingsPct)
	}
}

func TestExtraDynamicSubtracted(t *testing.T) {
	m := hotModel()
	cfg := dl1Cfg()
	lines := uint64(cfg.Sets() * cfg.Assoc)
	base := mkMeas(1_000_000, 0, 0)
	techA := mkMeas(1_000_000, lines*800_000, 0)
	techB := mkMeas(1_000_000, lines*800_000, 2e-6) // 2 uJ of extra dynamic
	a := mustCmp(Compare(m, cfg, leakage.ModeGated, base, techA, 5.6e9))
	b := mustCmp(Compare(m, cfg, leakage.ModeGated, base, techB, 5.6e9))
	if b.NetSavingsPct >= a.NetSavingsPct {
		t.Fatal("extra dynamic energy did not reduce net savings")
	}
	wantDrop := 100 * 2e-6 / a.BaseLeakJ
	if math.Abs((a.NetSavingsPct-b.NetSavingsPct)-wantDrop) > 0.01 {
		t.Fatalf("dynamic overhead accounting off: drop %v, want %v",
			a.NetSavingsPct-b.NetSavingsPct, wantDrop)
	}
}

func TestTemperatureRaisesSavings(t *testing.T) {
	// The same timing run yields higher net savings at 110C than 85C
	// because the leakage being saved is exponentially larger while the
	// dynamic overheads are fixed (paper Figures 7 vs 8).
	cfg := dl1Cfg()
	lines := uint64(cfg.Sets() * cfg.Assoc)
	base := mkMeas(1_000_000, 0, 0)
	tech := mkMeas(1_010_000, lines*800_000, 1e-6)

	m := leakage.New(p70())
	m.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(85), Vdd: 0.9})
	cool := mustCmp(Compare(m, cfg, leakage.ModeGated, base, tech, 5.6e9))
	m.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(110), Vdd: 0.9})
	hot := mustCmp(Compare(m, cfg, leakage.ModeGated, base, tech, 5.6e9))
	if hot.NetSavingsPct <= cool.NetSavingsPct {
		t.Fatalf("savings at 110C (%v) not above 85C (%v)", hot.NetSavingsPct, cool.NetSavingsPct)
	}
}

func TestBreakdownIdentity(t *testing.T) {
	// gross - residual - hardware - dynamic == net, up to the runtime
	// leakage extension term (which is folded into TechLeakJ).
	m := hotModel()
	cfg := dl1Cfg()
	lines := uint64(cfg.Sets() * cfg.Assoc)
	base := mkMeas(1_000_000, 0, 0)
	tech := mkMeas(1_000_000, lines*700_000, 5e-7)
	c := mustCmp(Compare(m, cfg, leakage.ModeGated, base, tech, 5.6e9))
	lhs := c.GrossSavingsPct - c.ResidualPct - c.HardwarePct - c.DynOverheadPct
	if math.Abs(lhs-c.NetSavingsPct) > 0.01 {
		t.Fatalf("breakdown identity violated: %v vs net %v", lhs, c.NetSavingsPct)
	}
}

func TestTotalDynSums(t *testing.T) {
	r := RunMeasurement{DCacheDynJ: 1, L2DynJ: 2, MemDynJ: 3, ICacheDynJ: 4, ClockJ: 5}
	if r.TotalDynJ() != 15 {
		t.Fatalf("TotalDynJ = %v", r.TotalDynJ())
	}
}

func TestTagsAwakeRaisesStandbyLinePower(t *testing.T) {
	// Section 5.3: keeping tags live forfeits their share of the
	// reclaimed leakage.
	m := hotModel()
	cfg := dl1Cfg()
	decayed := NewCacheLeakProfileTags(m, cfg, leakage.ModeDrowsy, true)
	awake := NewCacheLeakProfileTags(m, cfg, leakage.ModeDrowsy, false)
	if awake.LineStandby <= decayed.LineStandby {
		t.Fatalf("tags-awake standby %v not above tags-decayed %v",
			awake.LineStandby, decayed.LineStandby)
	}
	if awake.LineActive != decayed.LineActive {
		t.Fatal("active line power must not depend on the tag-decay choice")
	}
}

func TestDegenerateRunsAreTypedErrors(t *testing.T) {
	// A cancelled-then-resumed cell can surface a measurement with zero
	// committed instructions or cycles; scoring it used to leak NaN/Inf
	// percentages into figures and checkpoints.
	m := hotModel()
	cfg := dl1Cfg()
	good := mkMeas(1_000_000, 0, 0)
	cases := []struct {
		name       string
		base, tech RunMeasurement
		clockHz    float64
	}{
		{"zero-cycle baseline", RunMeasurement{Instructions: 5}, good, 5.6e9},
		{"zero-cycle technique", good, RunMeasurement{Instructions: 5}, 5.6e9},
		{"zero-instruction baseline", RunMeasurement{Cycles: 5}, good, 5.6e9},
		{"zero-instruction technique", good, RunMeasurement{Cycles: 5}, 5.6e9},
		{"empty runs", RunMeasurement{}, RunMeasurement{}, 5.6e9},
		{"zero clock", good, good, 0},
		{"negative clock", good, good, -1},
	}
	for _, tc := range cases {
		c, err := Compare(m, cfg, leakage.ModeGated, tc.base, tc.tech, tc.clockHz)
		if !errors.Is(err, ErrDegenerate) {
			t.Errorf("%s: err = %v, want ErrDegenerate", tc.name, err)
		}
		if c != (Comparison{}) {
			t.Errorf("%s: non-zero comparison returned alongside the error", tc.name)
		}
	}
}

func TestComparisonsNeverNaN(t *testing.T) {
	// Every accepted comparison must have finite percentage fields.
	m := hotModel()
	cfg := dl1Cfg()
	base := mkMeas(1_000_000, 0, 0)
	tech := mkMeas(1_200_000, 12345, 1e-7)
	c := mustCmp(Compare(m, cfg, leakage.ModeGated, base, tech, 5.6e9))
	for name, v := range map[string]float64{
		"net": c.NetSavingsPct, "perf": c.PerfLossPct, "turnoff": c.TurnoffRatio,
		"gross": c.GrossSavingsPct, "residual": c.ResidualPct,
		"hardware": c.HardwarePct, "dyn": c.DynOverheadPct,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v", name, v)
		}
	}
}

func TestCompareTagsReducesSavings(t *testing.T) {
	m := hotModel()
	cfg := dl1Cfg()
	lines := uint64(cfg.Sets() * cfg.Assoc)
	base := mkMeas(1_000_000, 0, 0)
	tech := mkMeas(1_000_000, lines*800_000, 0)
	dec := mustCmp(CompareTags(m, cfg, leakage.ModeDrowsy, true, base, tech, 5.6e9))
	awk := mustCmp(CompareTags(m, cfg, leakage.ModeDrowsy, false, base, tech, 5.6e9))
	if awk.NetSavingsPct >= dec.NetSavingsPct {
		t.Fatalf("tags-awake savings %v not below tags-decayed %v",
			awk.NetSavingsPct, dec.NetSavingsPct)
	}
}
