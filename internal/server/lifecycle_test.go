package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/obs"
	"hotleakage/internal/server/api"
)

// postSweep issues one raw submission (no client-side 429 retry loop) and
// returns the recorder, so admission-control headers are inspectable.
func postSweep(t *testing.T, h http.Handler, req api.SweepRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/v1/sweeps", bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rr, r)
	return rr
}

func decodeStatus(t *testing.T, rr *httptest.ResponseRecorder) api.SweepStatus {
	t.Helper()
	var st api.SweepStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("status body %q: %v", rr.Body.String(), err)
	}
	return st
}

// TestRetryAfterFloor: a sub-second RetryAfter window must still advertise
// at least one second on 429s — the old integer truncation advertised
// "Retry-After: 0", which turns a well-behaved client into a hot loop.
func TestRetryAfterFloor(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	cfg := testConfig(t, st)
	cfg.QueueDepth = 1
	cfg.RetryAfter = 200 * time.Millisecond // sub-second: truncation would yield 0
	s := newServer(cfg)                     // paused: nothing dequeues

	fill := api.SweepRequest{
		Instructions: testInstr, Warmup: testWarmup, Priority: "bulk",
		Cells: []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096}},
	}
	if rr := postSweep(t, s.Handler(), fill); rr.Code != http.StatusAccepted {
		t.Fatalf("fill submit: %d %s", rr.Code, rr.Body.String())
	}
	over := fill
	over.Cells = []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 8192}}
	rr := postSweep(t, s.Handler(), over)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", rr.Code)
	}
	secs, err := strconv.Atoi(rr.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", rr.Header().Get("Retry-After"), err)
	}
	if secs < 1 {
		t.Errorf("Retry-After = %d, want >= 1 (sub-second windows must round up)", secs)
	}
}

// TestSweepRetentionEviction: terminal sweeps older than the retention
// window drop out of the lookup maps (GET becomes 404, identical requests
// start fresh), in-flight sweeps keep aliasing right up to eviction, and
// a newer sweep that re-aliased the same request hash is never evicted
// alongside an older one.
func TestSweepRetentionEviction(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	cfg := testConfig(t, st)
	cfg.Retention = time.Minute
	s := newServer(cfg) // paused: sweeps stay queued until we flip them

	req := api.SweepRequest{
		Instructions: testInstr, Warmup: testWarmup, Priority: "bulk",
		Cells: []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096}},
	}

	// Alias-before-evict: identical in-flight requests share a sweep.
	a := decodeStatus(t, postSweep(t, s.Handler(), req))
	if a2 := decodeStatus(t, postSweep(t, s.Handler(), req)); a2.ID != a.ID {
		t.Fatalf("in-flight alias broken: %s vs %s", a.ID, a2.ID)
	}

	// A non-terminal sweep is never evicted, however old the clock says.
	if n := s.evictExpired(time.Now().Add(24 * time.Hour)); n != 0 {
		t.Fatalf("evicted %d non-terminal sweeps", n)
	}

	// Flip it terminal with an old finish stamp; now it is evictable.
	now := time.Now()
	s.mu.Lock()
	swA := s.sweeps[a.ID]
	s.mu.Unlock()
	swA.mu.Lock()
	swA.state = api.StateCompleted
	swA.finished = now.Add(-2 * cfg.Retention)
	swA.mu.Unlock()

	// Newer-alias protection: resubmitting (A is terminal) makes sweep B,
	// which takes over the byHash slot.
	b := decodeStatus(t, postSweep(t, s.Handler(), req))
	if b.ID == a.ID {
		t.Fatalf("terminal sweep %s still aliasing", a.ID)
	}

	if n := s.evictExpired(now); n != 1 {
		t.Fatalf("evicted %d sweeps, want 1 (only the old terminal one)", n)
	}

	// GET-after-evict: the old sweep is gone.
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/sweeps/"+a.ID, nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("GET evicted sweep: %d, want 404", rr.Code)
	}

	// The newer sweep survived the eviction *and* kept its alias slot.
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/sweeps/"+b.ID, nil))
	if rr.Code != http.StatusOK {
		t.Errorf("GET newer sweep after eviction: %d, want 200", rr.Code)
	}
	if b2 := decodeStatus(t, postSweep(t, s.Handler(), req)); b2.ID != b.ID {
		t.Errorf("newer alias evicted with the older sweep: got %s, want %s", b2.ID, b.ID)
	}
}

// TestJanitorEvicts: the background janitor (started with the executors
// when Retention is set) evicts on its own, end to end over HTTP.
func TestJanitorEvicts(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	cfg := testConfig(t, st)
	cfg.Retention = 5 * time.Millisecond // janitor ticks at the 1s floor
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl := api.NewClient(hts.URL)
	cl.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sw, err := cl.SubmitSweep(ctx, api.SweepRequest{
		Instructions: testInstr, Warmup: testWarmup,
		Cells: []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096}},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, cl, sw.ID)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := cl.Sweep(ctx, sw.ID); err != nil {
			var se *api.StatusError
			if errors.As(err, &se) && se.Code == http.StatusNotFound {
				return // evicted
			}
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("janitor never evicted the terminal sweep")
}

// TestQueueDepthGaugeBalanced audits the queue-depth gauge across every
// sweep exit path: completed, watchdog-failed, panic-isolated, rejected
// and drained. After each path the gauge must be back at its baseline —
// a leak here poisons the load signal the cluster coordinator reads.
func TestQueueDepthGaugeBalanced(t *testing.T) {
	gauge := obs.Default.Gauge(obs.GaugeQueueDepth)
	base := gauge.Value()
	req := api.SweepRequest{
		Instructions: testInstr, Warmup: testWarmup,
		Cells: []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	check := func(label string) {
		t.Helper()
		// The executor decrements before runIsolated; give in-flight
		// bookkeeping a beat to settle.
		deadline := time.Now().Add(5 * time.Second)
		for gauge.Value() != base && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := gauge.Value(); got != base {
			t.Fatalf("%s: queue depth gauge %d, want %d", label, got, base)
		}
	}

	// Path 1: completed.
	{
		st := openStore(t, t.TempDir())
		cfg := testConfig(t, st)
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hts := httptest.NewServer(srv.Handler())
		cl := api.NewClient(hts.URL)
		cl.PollInterval = 5 * time.Millisecond
		sw, err := cl.SubmitSweep(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if got := waitTerminal(t, cl, sw.ID); got.State != api.StateCompleted {
			t.Fatalf("completed path ended %s", got.State)
		}
		hts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = srv.Shutdown(sctx)
		scancel()
		st.Close()
		check("completed")
	}

	// Path 2: watchdog failure.
	{
		st := openStore(t, t.TempDir())
		cfg := testConfig(t, st)
		cfg.SweepTimeout = 1 * time.Millisecond
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hts := httptest.NewServer(srv.Handler())
		cl := api.NewClient(hts.URL)
		cl.PollInterval = 5 * time.Millisecond
		sw, err := cl.SubmitSweep(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, cl, sw.ID)
		hts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = srv.Shutdown(sctx)
		scancel()
		st.Close()
		check("watchdog")
	}

	// Path 3: panic-isolated executor (chaos plane fires in the sweep
	// executor itself).
	{
		st := openStore(t, t.TempDir())
		cfg := testConfig(t, st)
		plane, err := faultinject.ParsePlane("server.sweep:panic:1/1")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Plane = plane
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hts := httptest.NewServer(srv.Handler())
		cl := api.NewClient(hts.URL)
		cl.PollInterval = 5 * time.Millisecond
		sw, err := cl.SubmitSweep(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if got := waitTerminal(t, cl, sw.ID); got.State != api.StateFailed {
			t.Fatalf("panic path ended %s, want failed", got.State)
		}
		hts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = srv.Shutdown(sctx)
		scancel()
		st.Close()
		check("panic-isolated")
	}

	// Paths 4 and 5: rejected overflow (the increment must be taken back
	// immediately) and queued-then-drained (Shutdown's queue flush).
	{
		st := openStore(t, t.TempDir())
		cfg := testConfig(t, st)
		cfg.QueueDepth = 1
		s := newServer(cfg) // paused: the sweep stays queued
		if rr := postSweep(t, s.Handler(), req); rr.Code != http.StatusAccepted {
			t.Fatalf("queued submit: %d", rr.Code)
		}
		if got := gauge.Value(); got != base+1 {
			t.Fatalf("queued: gauge %d, want %d", got, base+1)
		}
		over := req
		over.Priority = "bulk"
		req2 := over
		req2.Cells = []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 8192}}
		// First fill the single bulk slot, then overflow it.
		if rr := postSweep(t, s.Handler(), req2); rr.Code != http.StatusAccepted {
			t.Fatalf("bulk fill: %d", rr.Code)
		}
		req3 := over
		req3.Cells = []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 16384}}
		if rr := postSweep(t, s.Handler(), req3); rr.Code != http.StatusTooManyRequests {
			t.Fatalf("overflow: %d, want 429", rr.Code)
		}
		if got := gauge.Value(); got != base+2 {
			t.Fatalf("after rejection: gauge %d, want %d (rejection must not leak)", got, base+2)
		}
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := s.Shutdown(sctx); err != nil {
			t.Fatal(err)
		}
		scancel()
		st.Close()
		check("drain")
	}
}
