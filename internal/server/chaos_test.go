package server

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/server/api"
	"hotleakage/internal/store"
)

// chaosClient builds a client hardened enough to survive the injected
// fault density: more attempts, fast backoff, quick breaker recovery.
func chaosClient(url string) *api.Client {
	cl := api.NewClient(url)
	cl.PollInterval = 5 * time.Millisecond
	cl.Retry = api.RetryPolicy{Attempts: 6, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	cl.Breaker = &api.Breaker{Threshold: 8, Cooldown: 30 * time.Millisecond}
	return cl
}

// waitTolerant polls a sweep to a terminal state, riding out transient
// client-visible failures (injected 5xx bursts that outlast the retry
// budget, breaker fast-fails during cooldown).
func waitTolerant(t *testing.T, cl *api.Client, id string) api.SweepStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Sweep(context.Background(), id)
		if err == nil && api.Terminal(st.State) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached a terminal state under chaos", id)
	return api.SweepStatus{}
}

// TestChaosSoak runs a daemon with faults injected at both seams at once —
// store syncs/writes failing intermittently, the HTTP handler throwing 5xx
// and panics — drives a series of sweeps through it, and then proves the
// acknowledgment contract: after a clean restart of the store, every cell
// acknowledged "done" by a non-degraded sweep is present and bit-identical
// to a fault-free reference run, and GC still reclaims space without
// touching live records.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	dir := t.TempDir()
	splane, err := faultinject.ParsePlane(
		"store.sync:err:1/20:seed=7,store.write:err:1/40:seed=11")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenOptions(dir, store.Options{
		FS:   &store.FaultFS{Plane: splane, Base: store.OSFS{}},
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}

	hplane, err := faultinject.ParsePlane(
		"server.handler:5xx:1/9:seed=3,server.handler:panic:1/31:seed=5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, st)
	cfg.Plane = hplane
	cfg.SweepTimeout = 60 * time.Second
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	cl := chaosClient(hts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Distinct sweeps across techniques and intervals, plus one resubmit
	// that must alias or resolve from the store.
	reqs := []api.SweepRequest{
		{Instructions: testInstr, Warmup: testWarmup, Cells: []api.Cell{
			{Bench: "gzip", L2: 11, Technique: "none"},
			{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096},
		}},
		{Instructions: testInstr, Warmup: testWarmup, Cells: []api.Cell{
			{Bench: "gzip", L2: 11, Technique: "gated-vss", Interval: 4096},
			{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 16384},
		}},
		{Instructions: testInstr, Warmup: testWarmup, Cells: []api.Cell{
			{Bench: "gzip", L2: 11, Technique: "gated-vss", Interval: 65536},
		}},
		{Instructions: testInstr, Warmup: testWarmup, Cells: []api.Cell{ // resubmit of sweep 1
			{Bench: "gzip", L2: 11, Technique: "none"},
			{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096},
		}},
	}

	type acked struct {
		hash     string
		degraded bool
	}
	var results []acked
	for i, req := range reqs {
		var sub api.SweepStatus
		submitDeadline := time.Now().Add(60 * time.Second)
		for {
			sub, err = cl.SubmitSweep(ctx, req)
			if err == nil {
				break
			}
			if time.Now().After(submitDeadline) {
				t.Fatalf("sweep %d: submit never succeeded under chaos: %v", i, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		final := waitTolerant(t, cl, sub.ID)
		if final.State != api.StateCompleted {
			t.Fatalf("sweep %d ended %q (%s), want completed — chaos must degrade, not fail",
				i, final.State, final.Error)
		}
		if final.Failed != 0 {
			t.Fatalf("sweep %d: %d cells failed under store faults", i, final.Failed)
		}
		for _, cs := range final.Cells {
			if cs.State == "done" {
				results = append(results, acked{cs.Hash, final.Degraded != ""})
			}
		}
	}
	if len(results) == 0 {
		t.Fatal("no cells acknowledged")
	}

	// The daemon survived the whole soak: still answering health checks.
	hOK := false
	for i := 0; i < 20 && !hOK; i++ {
		if _, err := cl.Health(ctx); err == nil {
			hOK = true
		}
	}
	if !hOK {
		t.Error("daemon unreachable after soak")
	}

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown after soak: %v", err)
	}
	hts.Close()
	if err := st.Close(); err != nil {
		t.Logf("faulted store close: %v", err) // sync faults may surface here; not a loss
	}

	// Clean restart: acknowledged non-degraded results must all be there.
	st2, err := store.OpenOptions(dir, store.Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if q := st2.Quarantined(); q != 0 {
		t.Errorf("clean reopen quarantined %d records — injected faults corrupted acknowledged data", q)
	}
	values := make(map[string][]byte)
	for _, a := range results {
		rec, ok, err := st2.Get(a.hash)
		if err != nil {
			t.Fatalf("get %s after restart: %v", a.hash, err)
		}
		if !ok && !a.degraded {
			t.Errorf("cell %s acknowledged by a non-degraded sweep is missing after restart", a.hash)
		}
		if ok {
			values[a.hash] = append([]byte(nil), rec.Value...)
		}
	}

	// Fault-free reference run over a fresh store: surviving chaos results
	// must be bit-identical.
	refDir := t.TempDir()
	refStore := openStore(t, refDir)
	defer refStore.Close()
	refSrv, err := New(testConfig(t, refStore))
	if err != nil {
		t.Fatal(err)
	}
	refHts := httptest.NewServer(refSrv.Handler())
	defer refHts.Close()
	defer func() {
		c, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer ccancel()
		_ = refSrv.Shutdown(c)
	}()
	refCl := api.NewClient(refHts.URL)
	refCl.PollInterval = 5 * time.Millisecond
	for i, req := range reqs[:3] {
		sub, err := refCl.SubmitSweep(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		final, err := refCl.WaitSweep(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != api.StateCompleted {
			t.Fatalf("reference sweep %d ended %q", i, final.State)
		}
		for _, cs := range final.Cells {
			ref, ok, err := refStore.Get(cs.Hash)
			if err != nil || !ok {
				t.Fatalf("reference cell %s: ok=%v err=%v", cs.Hash, ok, err)
			}
			if got, have := values[cs.Hash]; have {
				if !bytes.Equal(got, ref.Value) {
					t.Errorf("cell %s: chaos-run result differs from fault-free reference", cs.Hash)
				}
			}
		}
	}

	// GC on the recovered store: a halved byte budget reclaims space and
	// every surviving record stays readable.
	before := st2.Bytes()
	stats, err := st2.GC(store.GCPolicy{MaxBytes: before / 2})
	if err != nil {
		t.Fatalf("GC after chaos: %v", err)
	}
	if st2.Bytes() >= before {
		t.Errorf("GC reclaimed nothing: %d -> %d bytes", before, st2.Bytes())
	}
	if stats.Dropped == 0 {
		t.Error("GC over budget dropped no records")
	}
	if st2.Len() != stats.Live {
		t.Errorf("Len %d != GC live count %d", st2.Len(), stats.Live)
	}
}
