package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotleakage/internal/harness/faultinject"
)

// fastClient builds a client against url with near-instant backoff so
// retry tests don't sleep for real.
func fastClient(url string) *Client {
	c := NewClient(url)
	c.Retry = RetryPolicy{Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	return c
}

// TestRetryOn5xx: transient 5xx responses are retried until the daemon
// recovers, invisible to the caller.
func TestRetryOn5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"transient"}`, http.StatusBadGateway)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	var h Health
	if err := fastClient(ts.URL).do(context.Background(), http.MethodGet, "/healthz", nil, &h); err != nil {
		t.Fatalf("do after transient 5xx: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if h.Status != "ok" {
		t.Errorf("decoded %+v", h)
	}
}

// TestNoRetryOn4xx: a 4xx is the request's fault — exactly one attempt.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such sweep"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	err := fastClient(ts.URL).do(context.Background(), http.MethodGet, "/v1/sweeps/x", nil, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no 4xx retries)", got)
	}
}

// TestRetryTransportErrors: injected connection resets burn retries but
// not the request, via the fault plane's HTTP transport.
func TestRetryTransportErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	plane := faultinject.NewPlane().Rule(faultinject.SiteHTTPRequest, faultinject.OpReset, 2, 1, 0)
	c := fastClient(ts.URL)
	c.HTTP = &http.Client{Transport: &faultinject.Transport{Plane: plane}}
	ok := 0
	for i := 0; i < 20; i++ {
		var h Health
		if err := c.do(context.Background(), http.MethodGet, "/healthz", nil, &h); err == nil {
			ok++
		}
	}
	// A 1/2 reset schedule with 4 attempts should still succeed nearly
	// always; zero successes would mean retries aren't happening.
	if ok < 15 {
		t.Errorf("only %d/20 calls survived a 1/2 reset schedule with retries", ok)
	}
}

// TestBreakerOpensAndProbes drives the breaker's full state machine:
// consecutive failures open it, open fast-fails with ErrUnavailable
// without touching the daemon, the cooldown admits a single half-open
// probe, and a probe success closes the circuit.
func TestBreakerOpensAndProbes(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	now := time.Now()
	clock := func() time.Time { return now }
	c := fastClient(ts.URL)
	c.Breaker = &Breaker{Threshold: 3, Cooldown: time.Minute, now: clock}

	// Drive it open (4 attempts per do(), threshold 3 → first call opens).
	if err := c.do(context.Background(), http.MethodGet, "/healthz", nil, nil); err == nil {
		t.Fatal("sick daemon reported success")
	}
	seen := calls.Load()
	if seen < 3 {
		t.Fatalf("breaker opened after %d calls, before threshold", seen)
	}

	// Open: fast-fail, zero network traffic.
	err := c.do(context.Background(), http.MethodGet, "/healthz", nil, nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open breaker returned %v, want ErrUnavailable", err)
	}
	if calls.Load() != seen {
		t.Error("open breaker still reached the daemon")
	}

	// Cooldown elapses; the daemon recovers; the single probe closes it.
	healthy.Store(true)
	now = now.Add(2 * time.Minute)
	if err := c.do(context.Background(), http.MethodGet, "/healthz", nil, nil); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if err := c.do(context.Background(), http.MethodGet, "/healthz", nil, nil); err != nil {
		t.Fatalf("closed-again breaker failed: %v", err)
	}
}

// TestBreakerHalfOpenSingleProbe: while one probe is in flight, other
// callers keep fast-failing, and a failed probe re-opens the circuit.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	now := time.Now()
	b := &Breaker{Threshold: 1, Cooldown: time.Second, now: func() time.Time { return now }}
	b.Record(false)
	if b.Allow() {
		t.Fatal("breaker closed after threshold failures")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown did not admit a probe")
	}
	if b.Allow() {
		t.Error("second caller admitted during half-open probe")
	}
	b.Record(false) // probe failed: re-open, cooldown restarts
	if b.Allow() {
		t.Error("failed probe did not re-open the circuit")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Error("re-opened circuit never re-probed")
	}
	b.Record(true)
	if !b.Allow() || !b.Allow() {
		t.Error("successful probe did not close the circuit")
	}
}

// TestBreakerHalfOpenProbeLostReArms: a probe whose outcome is never
// recorded (e.g. its caller's ctx canceled mid-flight) must not wedge the
// circuit in half-open forever — after a further cooldown the next caller
// becomes the new probe.
func TestBreakerHalfOpenProbeLostReArms(t *testing.T) {
	now := time.Now()
	b := &Breaker{Threshold: 1, Cooldown: time.Second, now: func() time.Time { return now }}
	b.Record(false) // open
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown did not admit a probe")
	}
	// The probe's outcome is never recorded. Immediately after, callers
	// still fast-fail; after a further cooldown a new probe is admitted.
	if b.Allow() {
		t.Fatal("second caller admitted while the probe could still report back")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("lost probe wedged the breaker: no re-probe after a further cooldown")
	}
	b.Record(true)
	if !b.Allow() || !b.Allow() {
		t.Error("successful replacement probe did not close the circuit")
	}
}

// TestClientCanceledProbeDoesNotWedgeBreaker is the end-to-end version:
// the daemon goes down and the breaker opens; the half-open probe is
// canceled by its own ctx mid-flight (so do() returns without recording
// an outcome); once the daemon recovers, calls succeed again instead of
// fast-failing with ErrUnavailable forever.
func TestClientCanceledProbeDoesNotWedgeBreaker(t *testing.T) {
	var healthy, hang atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hang.Load() {
			<-r.Context().Done() // hold the probe until its caller gives up
			return
		}
		if !healthy.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	now := time.Now()
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	c := fastClient(ts.URL)
	c.Breaker = &Breaker{Threshold: 2, Cooldown: time.Minute, now: clock}

	// Open the breaker against a sick daemon.
	if err := c.do(context.Background(), http.MethodGet, "/healthz", nil, nil); err == nil {
		t.Fatal("sick daemon reported success")
	}
	if !errors.Is(c.do(context.Background(), http.MethodGet, "/healthz", nil, nil), ErrUnavailable) {
		t.Fatal("breaker did not open")
	}

	// Cooldown elapses; the probe hangs and its ctx is canceled mid-flight.
	hang.Store(true)
	advance(2 * time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err := c.do(ctx, http.MethodGet, "/healthz", nil, nil)
	cancel()
	if err == nil {
		t.Fatal("canceled probe reported success")
	}

	// The daemon recovers. Before the half-open timeout, calls fast-fail;
	// after another cooldown the replacement probe closes the circuit.
	hang.Store(false)
	healthy.Store(true)
	if !errors.Is(c.do(context.Background(), http.MethodGet, "/healthz", nil, nil), ErrUnavailable) {
		t.Fatal("half-open breaker admitted a second caller before the probe timeout")
	}
	advance(2 * time.Minute)
	if err := c.do(context.Background(), http.MethodGet, "/healthz", nil, nil); err != nil {
		t.Fatalf("breaker never recovered after a canceled probe: %v", err)
	}
}

// TestSubmitSweep429NoBreakerPenalty: admission-control 429s are not
// daemon sickness; they must not open the breaker, and SubmitSweep keeps
// honoring Retry-After until admitted.
func TestSubmitSweep429NoBreakerPenalty(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) < 4 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"id":"s1","state":"queued"}`))
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	c.Breaker = &Breaker{Threshold: 2}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.SubmitSweep(ctx, SweepRequest{})
	if err != nil || st.ID != "s1" {
		t.Fatalf("SubmitSweep = %+v, %v", st, err)
	}
	if !c.Breaker.Allow() {
		t.Error("429s opened the breaker")
	}
}

// TestSubmitSweepRetryAfterCappedByDeadline: a hostile Retry-After hint
// far past the ctx deadline must not stretch the call — it returns at
// (about) the deadline, not after the hint.
func TestSubmitSweepRetryAfterCappedByDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "3600") // one hour
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fastClient(ts.URL).SubmitSweep(ctx, SweepRequest{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("SubmitSweep succeeded against a permanently full daemon")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("SubmitSweep slept %v on a 200ms deadline (hint not capped)", elapsed)
	}
}

// TestRetryPolicyBackoff pins the backoff envelope: exponential growth,
// hard cap, jitter within [d/2, d].
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}.withDefaults()
	for attempt := 1; attempt <= 8; attempt++ {
		want := p.BaseDelay << (attempt - 1)
		if want > p.MaxDelay || want <= 0 {
			want = p.MaxDelay
		}
		for i := 0; i < 20; i++ {
			got := p.backoff(attempt)
			if got < want/2 || got > want {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
}
