package api

import (
	"fmt"
	"sort"
	"time"

	"hotleakage/internal/attack"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
	"hotleakage/internal/store"
	"hotleakage/internal/workload"
)

// ExpandCells turns a request into deduplicated cell lists: explicit
// cells first, then the cross products. Baseline ("none") cells are
// normalized to interval 0 so they alias the single uncontrolled run.
// It lives in the protocol package because a request's meaning must be
// identical on every node that interprets it — the single-node daemon and
// the cluster coordinator expand through this one function, so a sweep
// shards into exactly the cells it would have run on one box.
//
// The returned wire list puts every energy cell before every attack cell,
// each kind in discovery order: wire[i] corresponds to specs[i] for
// i < len(specs) and to attacks[i-len(specs)] after, which is the order the
// daemon reports cell statuses in.
func ExpandCells(req SweepRequest) ([]sim.CellSpec, []sim.AttackSpec, []Cell, error) {
	var specs []sim.CellSpec
	var attacks []sim.AttackSpec
	seen := make(map[string]bool)
	add := func(c Cell) error {
		if c.Kind == KindAttack {
			sp, err := c.AttackSpec()
			if err != nil {
				return err
			}
			if _, ok := attack.ByName(sp.Scenario); !ok {
				return fmt.Errorf("unknown attack scenario %q", sp.Scenario)
			}
			if sp.L2 <= 0 {
				return fmt.Errorf("cell %s: l2_latency must be positive", sp.Key())
			}
			if sp.Technique == leakctl.TechNone {
				sp.Interval = 0
			}
			if !seen[sp.Key()] {
				seen[sp.Key()] = true
				attacks = append(attacks, sp)
			}
			return nil
		}
		if c.Kind != "" {
			return fmt.Errorf("unknown cell kind %q", c.Kind)
		}
		sp, err := c.Spec()
		if err != nil {
			return err
		}
		if _, ok := workload.ByName(sp.Bench); !ok {
			return fmt.Errorf("unknown benchmark %q", sp.Bench)
		}
		if sp.L2 <= 0 {
			return fmt.Errorf("cell %s: l2_latency must be positive", sp.Key())
		}
		if sp.Technique == leakctl.TechNone { // one uncontrolled run per (bench, L2)
			sp.Interval = 0
		}
		if !seen[sp.Key()] {
			seen[sp.Key()] = true
			specs = append(specs, sp)
		}
		return nil
	}
	for _, c := range req.Cells {
		if err := add(c); err != nil {
			return nil, nil, nil, err
		}
	}
	if len(req.Benchmarks) > 0 || len(req.Scenarios) > 0 {
		l2s := req.L2Latencies
		if len(l2s) == 0 {
			l2s = []int{11}
		}
		intervals := req.Intervals
		if len(intervals) == 0 {
			intervals = []uint64{0}
		}
		for _, b := range req.Benchmarks {
			for _, l2 := range l2s {
				if req.IncludeBaselines {
					if err := add(Cell{Bench: b, L2: l2, Technique: "none"}); err != nil {
						return nil, nil, nil, err
					}
				}
				for _, tname := range req.Techniques {
					for _, iv := range intervals {
						if err := add(Cell{Bench: b, L2: l2, Technique: tname, Interval: iv}); err != nil {
							return nil, nil, nil, err
						}
					}
				}
			}
		}
		for _, sc := range req.Scenarios {
			for _, l2 := range l2s {
				if req.IncludeBaselines {
					if err := add(Cell{Kind: KindAttack, Scenario: sc, L2: l2, Technique: "none"}); err != nil {
						return nil, nil, nil, err
					}
				}
				for _, tname := range req.Techniques {
					for _, iv := range intervals {
						if err := add(Cell{Kind: KindAttack, Scenario: sc, L2: l2, Technique: tname, Interval: iv}); err != nil {
							return nil, nil, nil, err
						}
					}
				}
			}
		}
	}
	wire := make([]Cell, 0, len(specs)+len(attacks))
	for _, sp := range specs {
		wire = append(wire, FromSpec(sp))
	}
	for _, sp := range attacks {
		wire = append(wire, FromAttackSpec(sp))
	}
	return specs, attacks, wire, nil
}

// RequestHash is the sweep's identity: budget plus the sorted cell set.
// It names the checkpoint file and dedupes identical in-flight requests —
// on the coordinator as on a single node.
func RequestHash(instructions, warmup uint64, wire []Cell) (string, error) {
	sorted := append([]Cell(nil), wire...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		// Energy cells ("" kind) sort before attack cells; within a kind the
		// historic order applies, so an all-energy request hashes exactly as
		// it did before cell kinds existed (Kind/Scenario marshal away).
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.L2 != b.L2 {
			return a.L2 < b.L2
		}
		if a.Technique != b.Technique {
			return a.Technique < b.Technique
		}
		return a.Interval < b.Interval
	})
	return store.CanonicalHash(struct {
		Instructions uint64 `json:"instructions"`
		Warmup       uint64 `json:"warmup"`
		Cells        []Cell `json:"cells"`
	}{instructions, warmup, sorted})
}

// RetryAfterSeconds renders a backoff hint as whole seconds for the
// Retry-After header, rounding up with a floor of 1: a sub-second hint
// truncated to "0" would make well-behaved clients (including this
// package's admission loop) hot-loop on a full queue.
func RetryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
