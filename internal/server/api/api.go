// Package api defines the leakd daemon's wire types and the HTTP client
// used by leakbench's -remote mode. It is deliberately free of server
// internals so thin clients pull in only the protocol; the client also
// implements sim.RemoteRunner, which is how the whole leakbench figure
// pipeline runs against a daemon without knowing about HTTP.
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
)

// KindAttack marks a timing-leakage attack cell on the wire. The empty
// kind is an energy cell — the only kind that existed before the security
// subsystem, kept implicit (omitempty) so pre-existing clients, requests
// and request hashes are untouched.
const KindAttack = "attack"

// Cell is one simulation cell in wire form. Technique uses the String
// form of leakctl.Technique ("none", "drowsy", "gated-vss", "rbb").
// Energy cells (Kind empty) name a benchmark; attack cells (Kind "attack")
// name an adversarial scenario instead.
type Cell struct {
	Kind      string `json:"kind,omitempty"`
	Bench     string `json:"bench,omitempty"`
	Scenario  string `json:"scenario,omitempty"`
	L2        int    `json:"l2_latency"`
	Technique string `json:"technique"`
	Interval  uint64 `json:"interval"`
}

// FromSpec converts a sim.CellSpec to wire form.
func FromSpec(cs sim.CellSpec) Cell {
	return Cell{Bench: cs.Bench, L2: cs.L2, Technique: cs.Technique.String(), Interval: cs.Interval}
}

// FromAttackSpec converts a sim.AttackSpec to wire form.
func FromAttackSpec(as sim.AttackSpec) Cell {
	return Cell{Kind: KindAttack, Scenario: as.Scenario, L2: as.L2,
		Technique: as.Technique.String(), Interval: as.Interval}
}

// Spec converts an energy wire cell back to a sim.CellSpec.
func (c Cell) Spec() (sim.CellSpec, error) {
	t, err := leakctl.ParseTechnique(c.Technique)
	if err != nil {
		return sim.CellSpec{}, err
	}
	return sim.CellSpec{Bench: c.Bench, L2: c.L2, Technique: t, Interval: c.Interval}, nil
}

// AttackSpec converts an attack wire cell back to a sim.AttackSpec.
func (c Cell) AttackSpec() (sim.AttackSpec, error) {
	t, err := leakctl.ParseTechnique(c.Technique)
	if err != nil {
		return sim.AttackSpec{}, err
	}
	return sim.AttackSpec{Scenario: c.Scenario, L2: c.L2, Technique: t, Interval: c.Interval}, nil
}

// key identifies a cell for client-side matching. Attack keys carry the
// kind prefix and scenario so the two kinds can never collide; energy keys
// keep their historic form.
func (c Cell) key() string {
	if c.Kind == KindAttack {
		return fmt.Sprintf("attack/%s/%d/%s/%d", c.Scenario, c.L2, strings.ToLower(c.Technique), c.Interval)
	}
	return fmt.Sprintf("%s/%d/%s/%d", c.Bench, c.L2, strings.ToLower(c.Technique), c.Interval)
}

// SweepRequest is the POST /v1/sweeps body. Cells lists explicit cells;
// the Benchmarks×Techniques×Intervals×L2Latencies cross product (plus
// optional per-benchmark baselines) is expanded server-side and unioned
// in. Instructions/Warmup of zero take the daemon's defaults.
type SweepRequest struct {
	Instructions uint64 `json:"instructions,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"`

	Cells []Cell `json:"cells,omitempty"`

	Benchmarks []string `json:"benchmarks,omitempty"`
	// Scenarios crosses attack scenarios with Techniques, Intervals and
	// L2Latencies into attack cells (kind "attack"), exactly as Benchmarks
	// does for energy cells.
	Scenarios   []string `json:"scenarios,omitempty"`
	Techniques  []string `json:"techniques,omitempty"`
	Intervals   []uint64 `json:"intervals,omitempty"`
	L2Latencies []int    `json:"l2_latencies,omitempty"`
	// IncludeBaselines adds an uncontrolled (technique "none") cell per
	// (benchmark, L2) of the cross product.
	IncludeBaselines bool `json:"include_baselines,omitempty"`

	// Priority is "interactive" or "bulk". Empty classifies by size:
	// sweeps of at most two cells are interactive.
	Priority string `json:"priority,omitempty"`
	// TimeoutS bounds the sweep end to end (queue time included), in
	// seconds. 0 means no deadline beyond the daemon's default.
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// Sweep states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateCompleted = "completed"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
)

// Terminal reports whether a sweep state is final.
func Terminal(state string) bool {
	return state == StateCompleted || state == StateFailed || state == StateCanceled
}

// CellStatus is one cell's progress within a sweep.
type CellStatus struct {
	Cell
	// Hash is the cell's content address, filled once known.
	Hash string `json:"hash,omitempty"`
	// State is "pending", "done" or "failed".
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// SweepStatus is the GET /v1/sweeps/{id} body (also returned by submit).
type SweepStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Priority string `json:"priority"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	Total     int `json:"total"`
	Completed int `json:"completed"`
	// Executed counts cells actually simulated by this daemon process;
	// StoreHits counts cells served from the content-addressed store;
	// Resumed counts cells restored from the sweep's harness checkpoint.
	Executed  int `json:"executed"`
	StoreHits int `json:"store_hits"`
	Resumed   int `json:"resumed"`
	Failed    int `json:"failed"`

	Error string `json:"error,omitempty"`
	// Degraded is non-empty when the sweep completed but its
	// infrastructure limped (store writes failing): every result was
	// produced and returned, but not all were persisted for reuse.
	Degraded string       `json:"degraded,omitempty"`
	Cells    []CellStatus `json:"cells,omitempty"`
}

// CellRecord is the GET /v1/cells/{hash} body: the canonical identity
// document and the stored sim.RunResult, byte-for-byte as first persisted.
type CellRecord struct {
	Hash  string          `json:"hash"`
	Key   json.RawMessage `json:"key,omitempty"`
	Value json.RawMessage `json:"value"`
}

// Health is the GET /healthz body. Status is tri-state: "ok", "degraded"
// (serving with Reasons explaining the limp; still HTTP 200) or
// "draining" (shutting down; HTTP 503).
type Health struct {
	Status           string   `json:"status"`
	Draining         bool     `json:"draining"`
	Reasons          []string `json:"reasons,omitempty"`
	QueueDepth       int      `json:"queue_depth"`
	SweepsInFlight   int      `json:"sweeps_inflight"`
	StoreCells       int      `json:"store_cells"`
	StoreQuarantined int      `json:"store_quarantined,omitempty"`
}

// ErrorBody is the JSON error envelope on non-2xx responses.
type ErrorBody struct {
	Error string `json:"error"`
}

// Client talks to a leakd daemon. The zero PollInterval defaults to 250ms.
type Client struct {
	Base         string
	HTTP         *http.Client
	PollInterval time.Duration

	// Retry shapes transient-failure retries (zero value = defaults; see
	// RetryPolicy).
	Retry RetryPolicy
	// Breaker, when non-nil, fast-fails calls while the daemon looks
	// down. NewClient installs one; a zero-constructed Client has none.
	Breaker *Breaker
}

// NewClient builds a client for addr ("host:port" or a full http URL)
// with the default retry policy and a circuit breaker.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/"), HTTP: &http.Client{}, Breaker: NewBreaker()}
}

func (c *Client) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 250 * time.Millisecond
}

// do issues a request with the client's retry policy and circuit
// breaker: transient failures (transport errors, 5xx) back off and retry
// while ctx allows and count against the breaker; 429 and other 4xx
// return immediately (see retry.go for the classification). Safe to
// retry across the board because the daemon's sweep aliasing makes even
// POST /v1/sweeps idempotent.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	pol := c.Retry.withDefaults()
	var lastErr error
	for attempt := 1; attempt <= pol.Attempts; attempt++ {
		if attempt > 1 {
			obsRetries.Add(1)
			select {
			case <-time.After(pol.backoff(attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if !c.Breaker.Allow() {
			return fastFail(method, path)
		}
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil {
			c.Breaker.Record(true)
			return nil
		}
		if ctx.Err() != nil {
			// The caller gave up; not the daemon's fault, so no breaker
			// penalty. If this call happened to be the half-open probe, its
			// outcome is simply unknown — Allow's half-open timeout admits
			// a replacement probe after the next cooldown.
			return err
		}
		var se *StatusError
		if errors.As(err, &se) && se.Code < 500 {
			// The daemon answered: 429 is admission control (alive, just
			// full — SubmitSweep's loop owns the wait), other 4xx are the
			// request's fault. Neither penalizes the breaker.
			c.Breaker.Record(true)
			return err
		}
		// Transport error or 5xx: transient by classification — penalize
		// the breaker and go around for the backoff.
		c.Breaker.Record(false)
		lastErr = err
	}
	return lastErr
}

// doOnce issues one request and decodes the JSON response into out,
// translating non-2xx statuses into errors carrying the server's message.
func (c *Client) doOnce(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("api: marshal request: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		msg := eb.Error
		if msg == "" {
			msg = resp.Status
		}
		return &StatusError{Code: resp.StatusCode, Msg: msg, RetryAfter: retryAfter(resp)}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decode %s %s: %w", method, path, err)
	}
	return nil
}

// StatusError is a non-2xx response, carrying the Retry-After hint when
// the daemon sent one (admission control's 429).
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter time.Duration
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("daemon returned %d: %s", e.Code, e.Msg)
}

func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// SubmitSweep submits a sweep, retrying while the daemon's queue is full
// (429 + Retry-After) until ctx expires. The honored Retry-After hint is
// capped against ctx's deadline, so a hostile or buggy hint can't make
// the client sleep past its own cancellation.
func (c *Client) SubmitSweep(ctx context.Context, req SweepRequest) (SweepStatus, error) {
	for {
		var st SweepStatus
		err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &st)
		if err == nil {
			return st, nil
		}
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
			return SweepStatus{}, err
		}
		delay := se.RetryAfter
		if delay <= 0 {
			delay = 2 * time.Second
		}
		if dl, ok := ctx.Deadline(); ok {
			remain := time.Until(dl)
			if remain <= 0 {
				return SweepStatus{}, context.DeadlineExceeded
			}
			if delay > remain {
				delay = remain
			}
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return SweepStatus{}, ctx.Err()
		}
	}
}

// Sweep fetches a sweep's status.
func (c *Client) Sweep(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// WaitSweep polls until the sweep reaches a terminal state or ctx expires.
func (c *Client) WaitSweep(ctx context.Context, id string) (SweepStatus, error) {
	for {
		st, err := c.Sweep(ctx, id)
		if err != nil {
			return SweepStatus{}, err
		}
		if Terminal(st.State) {
			return st, nil
		}
		select {
		case <-time.After(c.poll()):
		case <-ctx.Done():
			return SweepStatus{}, ctx.Err()
		}
	}
}

// Cell fetches one stored cell by content address.
func (c *Client) Cell(ctx context.Context, hash string) (CellRecord, error) {
	var rec CellRecord
	err := c.do(ctx, http.MethodGet, "/v1/cells/"+hash, nil, &rec)
	return rec, err
}

// Health fetches the daemon's health document.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// RunCells implements sim.RemoteRunner: it submits the cells as one sweep
// (interactive when small), waits for completion and downloads each
// completed cell's stored result. Per-cell failures come back as
// RemoteCell.Err; a sweep that ends canceled or failed is a batch error.
func (c *Client) RunCells(ctx context.Context, instructions, warmup uint64, specs []sim.CellSpec) ([]sim.RemoteCell, error) {
	req := SweepRequest{Instructions: instructions, Warmup: warmup}
	for _, sp := range specs {
		req.Cells = append(req.Cells, FromSpec(sp))
	}
	st, err := c.SubmitSweep(ctx, req)
	if err != nil {
		return nil, err
	}
	st, err = c.WaitSweep(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if st.State != StateCompleted {
		msg := st.Error
		if msg == "" {
			msg = "sweep ended " + st.State
		}
		return nil, fmt.Errorf("sweep %s: %s", st.ID, msg)
	}
	byKey := make(map[string]CellStatus, len(st.Cells))
	for _, cs := range st.Cells {
		byKey[cs.key()] = cs
	}
	out := make([]sim.RemoteCell, 0, len(specs))
	for _, sp := range specs {
		rc := sim.RemoteCell{Spec: sp}
		cs, ok := byKey[FromSpec(sp).key()]
		switch {
		case !ok:
			rc.Err = "daemon status omitted this cell"
		case cs.State == "done" && cs.Hash != "":
			rec, err := c.Cell(ctx, cs.Hash)
			if err != nil {
				return nil, err
			}
			if err := json.Unmarshal(rec.Value, &rc.Result); err != nil {
				return nil, fmt.Errorf("api: decode cell %s: %w", cs.Hash, err)
			}
		default:
			rc.Err = cs.Error
			if rc.Err == "" {
				rc.Err = "cell ended in state " + cs.State
			}
		}
		out = append(out, rc)
	}
	return out, nil
}

// RunAttackCells implements sim.AttackRemoteRunner, the attack-cell twin of
// RunCells: the cells go up as one sweep of kind-"attack" wire cells and
// each completed cell's stored attack.Result comes back by content address.
// The sweep carries no instruction budget — attack runs are sized by their
// scenario, and their content addresses ignore the budget by construction.
func (c *Client) RunAttackCells(ctx context.Context, specs []sim.AttackSpec) ([]sim.RemoteAttackCell, error) {
	var req SweepRequest
	for _, sp := range specs {
		req.Cells = append(req.Cells, FromAttackSpec(sp))
	}
	st, err := c.SubmitSweep(ctx, req)
	if err != nil {
		return nil, err
	}
	st, err = c.WaitSweep(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if st.State != StateCompleted {
		msg := st.Error
		if msg == "" {
			msg = "sweep ended " + st.State
		}
		return nil, fmt.Errorf("sweep %s: %s", st.ID, msg)
	}
	byKey := make(map[string]CellStatus, len(st.Cells))
	for _, cs := range st.Cells {
		byKey[cs.key()] = cs
	}
	out := make([]sim.RemoteAttackCell, 0, len(specs))
	for _, sp := range specs {
		rc := sim.RemoteAttackCell{Spec: sp}
		cs, ok := byKey[FromAttackSpec(sp).key()]
		switch {
		case !ok:
			rc.Err = "daemon status omitted this cell"
		case cs.State == "done" && cs.Hash != "":
			rec, err := c.Cell(ctx, cs.Hash)
			if err != nil {
				return nil, err
			}
			if err := json.Unmarshal(rec.Value, &rc.Result); err != nil {
				return nil, fmt.Errorf("api: decode cell %s: %w", cs.Hash, err)
			}
		default:
			rc.Err = cs.Error
			if rc.Err == "" {
				rc.Err = "cell ended in state " + cs.State
			}
		}
		out = append(out, rc)
	}
	return out, nil
}
