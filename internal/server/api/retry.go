package api

// Client-side resilience: a retry policy for transient failures and a
// circuit breaker that stops hammering a daemon that is clearly down.
//
// Classification drives everything. Transport errors (connection reset,
// refused, timeout) and 5xx responses are transient: retried with capped
// exponential backoff + jitter, and counted against the breaker. 429 is
// the daemon saying "alive but full": no breaker penalty, surfaced to
// SubmitSweep whose admission loop honours Retry-After. Other 4xx are
// the caller's bug: returned immediately, no penalty. Retrying POST
// /v1/sweeps is safe because the daemon aliases sweeps by request hash —
// a resubmit of the same document joins the existing sweep.
//
// The breaker is the degradation ladder's hinge: once it opens, calls
// fail in microseconds instead of burning a full retry cycle, which is
// what lets sim's resolution ladder fall past a sick daemon to local
// simulation instead of stalling every batch.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hotleakage/internal/obs"
)

// ErrUnavailable marks a call refused locally because the circuit is
// open; errors.Is-able through everything the client returns.
var ErrUnavailable = errors.New("api: daemon unavailable (circuit open)")

// RetryPolicy shapes the client's transient-failure retries. The zero
// value means the defaults; Attempts 1 disables retrying.
type RetryPolicy struct {
	// Attempts is the total number of tries per call (default 4).
	Attempts int
	// BaseDelay seeds the exponential backoff (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the sleep before try attempt (1-based for the first
// retry): capped exponential with half-width jitter, so a fleet of
// clients spreads out instead of thundering back in lockstep.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var (
	obsRetries   = obs.Default.Counter(obs.MetricAPIRetries)
	obsBrkOpens  = obs.Default.Counter(obs.MetricAPIBreakerOpens)
	obsFastFails = obs.Default.Counter(obs.MetricAPIBreakerFastFails)
)

// Breaker is a consecutive-failure circuit breaker with half-open
// probing: Threshold straight failures open it, Allow fast-fails for
// Cooldown, then one probe is let through — its outcome closes or
// re-opens the circuit. A probe whose outcome is never recorded (its
// caller canceled mid-flight, say) does not wedge the half-open state:
// after a further Cooldown the next caller becomes the new probe. Safe
// for concurrent use.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the circuit
	// (default 5). Cooldown is how long it stays open before a half-open
	// probe (default 5s). Mutate only before concurrent use.
	Threshold int
	Cooldown  time.Duration

	// now is the clock, injectable for tests.
	now func() time.Time

	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	probedAt time.Time // when the in-flight half-open probe was admitted
}

// NewBreaker builds a breaker with default tuning.
func NewBreaker() *Breaker { return &Breaker{} }

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 5 * time.Second
	}
	return b.Cooldown
}

// Allow reports whether a call may proceed. In the open state it starts
// returning true once per cooldown expiry (the half-open probe); callers
// that get false should fail fast with ErrUnavailable.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.clock().Sub(b.openedAt) >= b.cooldown() {
			b.state = breakerHalfOpen
			b.probedAt = b.clock()
			return true // this caller is the probe
		}
		return false
	default: // half-open: one probe already in flight
		// If that probe's outcome never comes back — do() returns on ctx
		// cancellation without calling Record — the state would otherwise
		// have no exit and every future call would fast-fail forever.
		// After a further cooldown, assume the probe is lost and admit a
		// new one.
		if b.clock().Sub(b.probedAt) >= b.cooldown() {
			b.probedAt = b.clock()
			return true
		}
		return false
	}
}

// Record reports a call's outcome. Success closes the circuit; failure
// counts toward the threshold (or immediately re-opens a half-open
// circuit, restarting the cooldown).
func (b *Breaker) Record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold() {
		if b.state != breakerOpen {
			obsBrkOpens.Add(1)
		}
		b.state = breakerOpen
		b.openedAt = b.clock()
	}
}

// fastFail renders the breaker's refusal.
func fastFail(method, path string) error {
	obsFastFails.Add(1)
	return fmt.Errorf("api: %s %s: %w", method, path, ErrUnavailable)
}
