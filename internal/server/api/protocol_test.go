package api

import (
	"testing"
	"time"
)

// TestExpandCells covers request validation and normalization.
func TestExpandCells(t *testing.T) {
	specs, wire, err := ExpandCells(SweepRequest{
		Benchmarks:       []string{"gzip", "gcc"},
		Techniques:       []string{"drowsy"},
		Intervals:        []uint64{1024, 4096},
		IncludeBaselines: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 benches × (1 baseline + 2 drowsy intervals) = 6.
	if len(specs) != 6 || len(wire) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(specs))
	}

	// Baselines normalize interval to 0 and deduplicate.
	specs, _, err = ExpandCells(SweepRequest{Cells: []Cell{
		{Bench: "gzip", L2: 11, Technique: "none", Interval: 555},
		{Bench: "gzip", L2: 11, Technique: "baseline", Interval: 777},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Interval != 0 {
		t.Fatalf("baseline normalization: %+v", specs)
	}

	if _, _, err := ExpandCells(SweepRequest{Cells: []Cell{
		{Bench: "no-such-bench", L2: 11, Technique: "drowsy", Interval: 4096},
	}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, _, err := ExpandCells(SweepRequest{Cells: []Cell{
		{Bench: "gzip", L2: 11, Technique: "quantum", Interval: 4096},
	}}); err == nil {
		t.Error("unknown technique accepted")
	}
	if _, _, err := ExpandCells(SweepRequest{Cells: []Cell{
		{Bench: "gzip", L2: 0, Technique: "drowsy", Interval: 4096},
	}}); err == nil {
		t.Error("nonpositive L2 accepted")
	}
}

// TestRetryAfterSeconds pins the rounding contract: sub-second windows
// must advertise at least one second, never zero (a zero Retry-After
// makes well-behaved clients hammer the daemon in a tight loop).
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{50 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2*time.Second + time.Nanosecond, 3},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
