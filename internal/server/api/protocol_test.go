package api

import (
	"testing"
	"time"
)

// TestExpandCells covers request validation and normalization.
func TestExpandCells(t *testing.T) {
	specs, attacks, wire, err := ExpandCells(SweepRequest{
		Benchmarks:       []string{"gzip", "gcc"},
		Techniques:       []string{"drowsy"},
		Intervals:        []uint64{1024, 4096},
		IncludeBaselines: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 benches × (1 baseline + 2 drowsy intervals) = 6.
	if len(specs) != 6 || len(wire) != 6 || len(attacks) != 0 {
		t.Fatalf("expanded %d cells, want 6", len(specs))
	}

	// Baselines normalize interval to 0 and deduplicate.
	specs, _, _, err = ExpandCells(SweepRequest{Cells: []Cell{
		{Bench: "gzip", L2: 11, Technique: "none", Interval: 555},
		{Bench: "gzip", L2: 11, Technique: "baseline", Interval: 777},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Interval != 0 {
		t.Fatalf("baseline normalization: %+v", specs)
	}

	if _, _, _, err := ExpandCells(SweepRequest{Cells: []Cell{
		{Bench: "no-such-bench", L2: 11, Technique: "drowsy", Interval: 4096},
	}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, _, _, err := ExpandCells(SweepRequest{Cells: []Cell{
		{Bench: "gzip", L2: 11, Technique: "quantum", Interval: 4096},
	}}); err == nil {
		t.Error("unknown technique accepted")
	}
	if _, _, _, err := ExpandCells(SweepRequest{Cells: []Cell{
		{Bench: "gzip", L2: 0, Technique: "drowsy", Interval: 4096},
	}}); err == nil {
		t.Error("nonpositive L2 accepted")
	}
}

// TestExpandAttackCells covers the attack cell kind: explicit cells,
// the scenario cross product, dedup, normalization, and the wire-order
// contract (energy cells first, then attack cells).
func TestExpandAttackCells(t *testing.T) {
	specs, attacks, wire, err := ExpandCells(SweepRequest{
		Cells: []Cell{
			{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096},
			{Kind: KindAttack, Scenario: "smoke", L2: 11, Technique: "drowsy", Interval: 4096},
			{Kind: KindAttack, Scenario: "smoke", L2: 11, Technique: "drowsy", Interval: 4096}, // dup
			{Kind: KindAttack, Scenario: "smoke", L2: 11, Technique: "none", Interval: 999},    // normalizes to 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || len(attacks) != 2 || len(wire) != 3 {
		t.Fatalf("expanded specs=%d attacks=%d wire=%d, want 1/2/3", len(specs), len(attacks), len(wire))
	}
	if attacks[1].Interval != 0 {
		t.Errorf("attack baseline interval not normalized: %d", attacks[1].Interval)
	}
	// Wire order: energy first, then attacks, each in discovery order.
	if wire[0].Kind != "" || wire[0].Bench != "gzip" {
		t.Errorf("wire[0] not the energy cell: %+v", wire[0])
	}
	if wire[1].Kind != KindAttack || wire[1].Scenario != "smoke" {
		t.Errorf("wire[1] not the attack cell: %+v", wire[1])
	}

	// Scenario cross product rides the same techniques/intervals axes.
	specs, attacks, _, err = ExpandCells(SweepRequest{
		Scenarios:        []string{"smoke"},
		Techniques:       []string{"drowsy", "gated-vss"},
		Intervals:        []uint64{1024, 4096},
		L2Latencies:      []int{11},
		IncludeBaselines: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 baseline + 2 techniques × 2 intervals = 5, no energy cells.
	if len(specs) != 0 || len(attacks) != 5 {
		t.Fatalf("scenario cross product: specs=%d attacks=%d, want 0/5", len(specs), len(attacks))
	}

	if _, _, _, err := ExpandCells(SweepRequest{Cells: []Cell{
		{Kind: KindAttack, Scenario: "no-such-scenario", L2: 11, Technique: "drowsy", Interval: 4096},
	}}); err == nil {
		t.Error("unknown attack scenario accepted")
	}
	if _, _, _, err := ExpandCells(SweepRequest{Cells: []Cell{
		{Kind: "quantum", Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096},
	}}); err == nil {
		t.Error("unknown cell kind accepted")
	}
}

// TestRequestHashBackwardCompat pins that all-energy requests hash
// exactly as they did before cell kinds existed (Kind/Scenario marshal
// away when empty), and that adding an attack cell changes the hash.
func TestRequestHashBackwardCompat(t *testing.T) {
	energy := []Cell{
		{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096},
		{Bench: "gcc", L2: 11, Technique: "none"},
	}
	h1, err := RequestHash(1_000_000, 300_000, energy)
	if err != nil {
		t.Fatal(err)
	}
	// The pre-kinds hash of the same request, computed before Kind and
	// Scenario existed on the wire struct. If this moves, in-flight sweep
	// dedup and checkpoint file names silently fork across versions.
	const pinned = "225f62d89220850c2cf63ba9fb0b48265ddfba8721bb13c720222c9548d3e25f"
	if h1 != pinned {
		t.Fatalf("energy-only request hash moved: %s != pinned %s", h1, pinned)
	}
	withAttack := append(append([]Cell(nil), energy...),
		Cell{Kind: KindAttack, Scenario: "smoke", L2: 11, Technique: "drowsy", Interval: 4096})
	h2, err := RequestHash(1_000_000, 300_000, withAttack)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h1 {
		t.Fatal("attack cell did not change the request hash")
	}
}

// TestRetryAfterSeconds pins the rounding contract: sub-second windows
// must advertise at least one second, never zero (a zero Retry-After
// makes well-behaved clients hammer the daemon in a tight loop).
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{50 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2*time.Second + time.Nanosecond, 3},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
