package api

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"hotleakage/internal/obs"
)

// FetchCell implements sim.CellFetcher over the daemon API: a GET of the
// content address, with 404 reported as a clean miss. It is the read side
// of store federation — a worker whose local store misses a cell asks its
// peer (normally the cluster coordinator) before simulating. Transport
// trouble is an error, not a miss, so the caller can decide whether to
// degrade to simulation (sim does) or surface it.
func (c *Client) FetchCell(ctx context.Context, hash string) (json.RawMessage, bool, error) {
	rec, err := c.Cell(ctx, hash)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	return rec.Value, true, nil
}

// StreamEvents attaches to a sweep's SSE stream and hands every decoded
// record to sink until the stream ends (sweep finished and history
// drained) or ctx is canceled. The stream is best-effort by contract —
// the hub drops events for slow consumers and the replay ring is bounded
// — so callers must treat it as telemetry, not as the source of truth for
// sweep completion (poll the status for that). A canceled ctx returns
// nil: the caller chose to stop listening, nothing failed.
func (c *Client) StreamEvents(ctx context.Context, id string, sink func(obs.Record)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("api: events %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		msg := eb.Error
		if msg == "" {
			msg = resp.Status
		}
		return &StatusError{Code: resp.StatusCode, Msg: msg}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // event-type and blank separator lines
		}
		var rec obs.Record
		if err := json.Unmarshal([]byte(line[len("data: "):]), &rec); err != nil {
			continue // a malformed frame is dropped, not fatal
		}
		sink(rec)
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("api: events %s: %w", id, err)
	}
	return nil
}
