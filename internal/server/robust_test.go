package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/server/api"
	"hotleakage/internal/store"
)

// waitTerminal polls a sweep until it leaves the running states.
func waitTerminal(t *testing.T, cl *api.Client, id string) api.SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Sweep(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if api.Terminal(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached a terminal state", id)
	return api.SweepStatus{}
}

func getHealth(t *testing.T, h http.Handler) (api.Health, int) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	var hl api.Health
	if err := json.Unmarshal(rr.Body.Bytes(), &hl); err != nil {
		t.Fatalf("healthz body %q: %v", rr.Body.String(), err)
	}
	return hl, rr.Code
}

// TestPanicIsolation: a handler panic injected by the chaos plane 500s that
// one request; the daemon keeps serving and reports itself degraded.
func TestPanicIsolation(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	plane := faultinject.NewPlane().Rule(faultinject.SiteServerHandler, faultinject.OpPanic, 1, 0, 0)
	cfg := testConfig(t, st)
	cfg.Plane = plane
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	h := srv.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: got %d, want 500", rr.Code)
	}

	// Disarm the plane: the daemon must still be serving, now degraded.
	plane.Rule(faultinject.SiteServerHandler, faultinject.OpNone, 0, 0, 0)
	hl, code := getHealth(t, h)
	if code != http.StatusOK {
		t.Fatalf("healthz after isolated panic: got %d, want 200", code)
	}
	if hl.Status != "degraded" {
		t.Errorf("health status %q, want degraded", hl.Status)
	}
	found := false
	for _, r := range hl.Reasons {
		if strings.Contains(r, "panic") {
			found = true
		}
	}
	if !found {
		t.Errorf("health reasons %v mention no panic", hl.Reasons)
	}
}

// TestInjectedHandlerFault: non-panic faults at the server.handler site
// surface as 502s without touching the mux.
func TestInjectedHandlerFault(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	plane, err := faultinject.ParsePlane("server.handler:5xx:1/1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, st)
	cfg.Plane = plane
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusBadGateway {
		t.Fatalf("injected 5xx: got %d, want 502", rr.Code)
	}
}

// TestSweepWatchdog: a sweep that outlives Config.SweepTimeout is killed by
// the watchdog and marked failed with a timeout verdict; the daemon itself
// stays healthy and accepts further work.
func TestSweepWatchdog(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	cfg := testConfig(t, st)
	cfg.SweepTimeout = 1 * time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl := api.NewClient(hts.URL)

	acc, err := cl.SubmitSweep(context.Background(), twoCellRequest())
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, cl, acc.ID)
	if final.State != api.StateFailed {
		t.Fatalf("watchdogged sweep state %q (err %q), want failed", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "watchdog") {
		t.Errorf("failure message %q does not name the watchdog", final.Error)
	}

	// The daemon survived its own watchdog: still answering, not draining.
	hl, code := getHealth(t, srv.Handler())
	if code != http.StatusOK || hl.Status == "draining" {
		t.Errorf("daemon unhealthy after watchdog fired: %d %q", code, hl.Status)
	}
}

// TestDegradedComplete: when every store write fails but simulation
// succeeds, the sweep completes with its results — flagged degraded rather
// than failed — and /healthz turns degraded while still returning 200.
func TestDegradedComplete(t *testing.T) {
	dir := t.TempDir()
	plane := faultinject.NewPlane().Rule(faultinject.SiteStoreSync, faultinject.OpErr, 1, 0, 0)
	st, err := store.OpenOptions(dir, store.Options{
		FS:   &store.FaultFS{Plane: plane, Base: store.OSFS{}},
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cfg := testConfig(t, st)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl := api.NewClient(hts.URL)

	acc, err := cl.SubmitSweep(context.Background(), twoCellRequest())
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, cl, acc.ID)
	if final.State != api.StateCompleted {
		t.Fatalf("sweep state %q (err %q), want completed despite store trouble", final.State, final.Error)
	}
	if final.Failed != 0 || final.Completed != 2 {
		t.Errorf("completed=%d failed=%d, want 2/0", final.Completed, final.Failed)
	}
	if final.Degraded == "" {
		t.Error("completed sweep with failing store writes is not flagged degraded")
	}

	hl, code := getHealth(t, srv.Handler())
	if code != http.StatusOK {
		t.Fatalf("degraded healthz: got %d, want 200 (still serving)", code)
	}
	if hl.Status != "degraded" {
		t.Errorf("health status %q, want degraded", hl.Status)
	}
	found := false
	for _, r := range hl.Reasons {
		if strings.Contains(r, "store trouble") {
			found = true
		}
	}
	if !found {
		t.Errorf("health reasons %v do not mention store trouble", hl.Reasons)
	}
}

// TestHealthzQuarantineReason: a store that quarantined corrupt records at
// open makes the daemon report degraded with the count on the wire.
func TestHealthzQuarantineReason(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	for i := 0; i < 8; i++ {
		key := map[string]int{"cell": i}
		h, err := store.CanonicalHash(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(h, key, map[string]any{"leakage": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Smash a byte in the middle of the segment: one record quarantines.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("glob: %v (%d segments)", err, len(segs))
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] = 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.OpenOptions(dir, store.Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Quarantined() == 0 {
		t.Fatal("corrupted segment produced no quarantined records")
	}
	srv, err := New(testConfig(t, st2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	hl, code := getHealth(t, srv.Handler())
	if code != http.StatusOK || hl.Status != "degraded" {
		t.Fatalf("quarantine healthz: %d %q, want 200 degraded", code, hl.Status)
	}
	if hl.StoreQuarantined == 0 {
		t.Error("health does not carry the quarantine count")
	}
}

// TestHealthzDraining: once shutdown begins, /healthz flips to draining
// with 503 so load balancers stop routing here.
func TestHealthzDraining(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	srv, err := New(testConfig(t, st))
	if err != nil {
		t.Fatal(err)
	}
	hl, code := getHealth(t, srv.Handler())
	if code != http.StatusOK || hl.Status != "ok" {
		t.Fatalf("fresh daemon healthz: %d %q, want 200 ok", code, hl.Status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	hl, code = getHealth(t, srv.Handler())
	if code != http.StatusServiceUnavailable || hl.Status != "draining" {
		t.Errorf("draining healthz: %d %q, want 503 draining", code, hl.Status)
	}
	if !hl.Draining {
		t.Error("draining flag not set")
	}
}
