package server

import (
	"sync"
	"time"

	"hotleakage/internal/obs"
)

// hubBufCap bounds each sweep's replay buffer: late SSE subscribers see at
// most the last hubBufCap events. Oldest events are dropped first.
const hubBufCap = 4096

// subBufCap is the per-subscriber channel depth; a subscriber that cannot
// drain (stalled TCP peer) loses events rather than stalling the sweep.
const subBufCap = 256

// hub fans a sweep's trace events out to SSE subscribers while keeping a
// bounded replay buffer so a subscriber attaching mid-sweep (or after it
// finished) still sees the history. It implements harness.EventSink, so the
// supervisor's run_start/run_done/checkpoint/store_hit records flow through
// unchanged — the SSE stream is the harness trace, joined by run key.
type hub struct {
	mu     sync.Mutex
	buf    []obs.Record
	start  int // ring read index into buf once full
	subs   map[chan obs.Record]struct{}
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[chan obs.Record]struct{})}
}

// Write implements harness.EventSink. Safe for concurrent use; never
// blocks — slow subscribers drop events.
func (h *hub) Write(rec obs.Record) {
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if len(h.buf) < hubBufCap {
		h.buf = append(h.buf, rec)
	} else {
		h.buf[h.start] = rec
		h.start = (h.start + 1) % hubBufCap
	}
	for ch := range h.subs {
		select {
		case ch <- rec:
		default:
		}
	}
}

// subscribe returns the replay history in order plus a live channel. The
// channel is closed when the hub closes (sweep finished); cancel detaches
// the subscriber. On an already-closed hub the channel comes back closed,
// so callers uniformly replay then drain.
func (h *hub) subscribe() (replay []obs.Record, ch chan obs.Record, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = make([]obs.Record, 0, len(h.buf))
	replay = append(replay, h.buf[h.start:]...)
	replay = append(replay, h.buf[:h.start]...)
	ch = make(chan obs.Record, subBufCap)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	h.subs[ch] = struct{}{}
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
		}
	}
}

// close ends the stream: subscriber channels are closed (their SSE handlers
// return after draining) and further writes are dropped. The replay buffer
// stays readable for late subscribers. Idempotent.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}
