// Package server is leakd's core: an HTTP/JSON facade over the simulation
// harness with a content-addressed result store behind it. Sweeps are
// submitted as cell sets, admitted into a bounded dual-priority queue
// (interactive requests overtake bulk sweeps), executed on the existing
// harness worker pool with per-sweep checkpoints, and resolved through the
// store first so repeated or overlapping sweeps simulate only the delta.
// Progress streams out over SSE as the harness's own trace events.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"hotleakage/internal/harness"
	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/obs"
	"hotleakage/internal/server/api"
	"hotleakage/internal/sim"
	"hotleakage/internal/store"
	"hotleakage/internal/stream"

	"context"
)

var (
	obsQueueDepth      = obs.Default.Gauge(obs.GaugeQueueDepth)
	obsSweepsInFlight  = obs.Default.Gauge(obs.GaugeSweepsInFlight)
	obsSweepsAccepted  = obs.Default.Counter(obs.MetricSweepsAccepted)
	obsSweepsRejected  = obs.Default.Counter(obs.MetricSweepsRejected)
	obsSweepsCompleted = obs.Default.Counter(obs.MetricSweepsCompleted)
	obsSweepsDegraded  = obs.Default.Counter(obs.MetricSweepsDegraded)
	obsServerPanics    = obs.Default.Counter(obs.MetricServerPanics)
	obsWatchdogFired   = obs.Default.Counter(obs.MetricWatchdogTimeouts)
	obsSweepsEvicted   = obs.Default.Counter(obs.MetricSweepsEvicted)
)

// Config parameterizes a daemon. Store is required; everything else has a
// serviceable default.
type Config struct {
	// Store is the content-addressed result store backing the daemon.
	Store *store.Store
	// Workers sizes each sweep's harness pool (0 = GOMAXPROCS).
	Workers int
	// QueueDepth caps each priority class's wait queue (default 16);
	// submissions beyond it are rejected with 429 + Retry-After.
	QueueDepth int
	// SweepConcurrency is how many sweeps execute at once (default 1; the
	// harness pool already parallelizes within a sweep).
	SweepConcurrency int
	// MaxCells caps cells per sweep (default 4096); larger requests are 400s.
	MaxCells int
	// DefaultInstructions/DefaultWarmup fill zero-valued requests
	// (defaults 1M/300K, the reduced-scale paper budget).
	DefaultInstructions uint64
	DefaultWarmup       uint64
	// RunTimeout and MaxRetries pass through to the harness per run.
	RunTimeout time.Duration
	MaxRetries int
	// SweepTimeout is the watchdog: a sweep running longer than this is
	// canceled and marked failed (0 = no watchdog). The cancellation
	// propagates through the harness, so in-flight cells drain and
	// completed cells stay checkpointed and stored.
	SweepTimeout time.Duration
	// Plane, when non-nil, injects faults into request handling (the
	// server.handler site) and sweep execution (server.sweep) — chaos
	// testing only.
	Plane *faultinject.Plane
	// RetryAfter is the backoff hint attached to 429s (default 5s).
	RetryAfter time.Duration
	// Retention bounds how long terminal sweeps stay queryable: a sweep
	// is evicted from the in-memory maps this long after it finished
	// (0 = keep forever, the pre-retention behaviour). Without it the
	// sweeps/byHash maps grow without bound under sustained distinct
	// traffic. The content-addressed store is unaffected — evicted
	// results remain servable by /v1/cells/{hash}.
	Retention time.Duration
	// Peer, when non-nil, is the federated-store read path: a cell that
	// misses the local store is fetched from the peer (normally the
	// cluster coordinator) before being simulated, and a peer hit is
	// persisted locally. See sim.Experiments.Peer.
	Peer sim.CellFetcher
	// Events, when non-nil, additionally receives every sweep's trace
	// events (e.g. an obs.TraceWriter for on-disk telemetry).
	Events harness.EventSink
	// Log receives operational lines; nil discards them.
	Log *log.Logger
}

// Server is the daemon. Build with New, mount Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	traces *sim.TraceCache
	mux    *http.ServeMux

	interactive chan *sweep
	bulk        chan *sweep

	rootCtx    context.Context
	rootCancel context.CancelFunc
	stop       chan struct{}
	wg         sync.WaitGroup

	mu       sync.Mutex
	draining bool
	seq      int
	sweeps   map[string]*sweep
	byHash   map[string]*sweep // request hash -> most recent sweep
	// degraded holds deduplicated reasons the daemon is limping (store
	// trouble on otherwise-successful sweeps, isolated panics); /healthz
	// reports them under status "degraded".
	degraded []string
}

// sweep is one admitted request moving through queued -> running ->
// {completed, failed, canceled}.
type sweep struct {
	id           string
	reqHash      string
	priority     string
	cells        []sim.CellSpec
	attacks      []sim.AttackSpec
	wire         []api.Cell
	instructions uint64
	warmup       uint64
	ctx          context.Context
	cancel       context.CancelFunc
	hub          *stream.Hub

	mu             sync.Mutex
	state          string
	created        time.Time
	started        time.Time
	finished       time.Time
	exp            *sim.Experiments // live counters while running
	outcomes       []sim.CellOutcome
	attackOutcomes []sim.AttackOutcome
	errMsg         string
	// degradedMsg marks a sweep that completed with results intact but
	// with infrastructure trouble (store writes failing): the work is
	// done, just not all of it persisted for reuse.
	degradedMsg string
	// final tallies, captured before the Experiments is closed
	executed, storeHits, resumed int
}

// New builds a daemon over cfg and starts its executors. The caller mounts
// Handler() on an http.Server (obs.HardenedServer) and must eventually call
// Shutdown.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Store.Dir(), "checkpoints"), 0o755); err != nil {
		return nil, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	s := newServer(cfg)
	s.startExecutors()
	return s, nil
}

// withDefaults fills zero-valued knobs.
func withDefaults(cfg Config) Config {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.SweepConcurrency <= 0 {
		cfg.SweepConcurrency = 1
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 4096
	}
	if cfg.DefaultInstructions == 0 {
		cfg.DefaultInstructions = 1_000_000
	}
	if cfg.DefaultWarmup == 0 {
		cfg.DefaultWarmup = 300_000
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = log.New(os.Stderr, "", 0)
		cfg.Log.SetOutput(discard{})
	}
	return cfg
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// newServer builds the daemon without starting executors; in-package tests
// use the paused form to exercise admission control deterministically.
func newServer(cfg Config) *Server {
	cfg = withDefaults(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		traces:      sim.NewTraceCache(""),
		interactive: make(chan *sweep, cfg.QueueDepth),
		bulk:        make(chan *sweep, cfg.QueueDepth),
		rootCtx:     ctx,
		rootCancel:  cancel,
		stop:        make(chan struct{}),
		sweeps:      make(map[string]*sweep),
		byHash:      make(map[string]*sweep),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/cells/{hash}", s.handleCell)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default.WriteProm(w)
	})
	s.mux = mux
	return s
}

func (s *Server) startExecutors() {
	s.wg.Add(s.cfg.SweepConcurrency)
	for i := 0; i < s.cfg.SweepConcurrency; i++ {
		go s.executor()
	}
	if s.cfg.Retention > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
}

// janitor periodically evicts terminal sweeps older than the retention
// window so sustained distinct traffic cannot grow the sweep maps without
// bound. It stops with the executors on drain.
func (s *Server) janitor() {
	defer s.wg.Done()
	period := s.cfg.Retention / 4
	if period < time.Second {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.evictExpired(time.Now())
		}
	}
}

// evictExpired drops terminal sweeps that finished more than Retention
// ago from the lookup maps. The byHash alias entry goes with the sweep —
// but only if it still points at this sweep, so a newer identical request
// that re-aliased the hash is never evicted early. Non-terminal sweeps
// are never touched, which keeps in-flight aliasing correct right up to
// eviction. Returns how many sweeps were evicted.
func (s *Server) evictExpired(now time.Time) int {
	cutoff := now.Add(-s.cfg.Retention)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, sw := range s.sweeps {
		sw.mu.Lock()
		expired := api.Terminal(sw.state) && !sw.finished.IsZero() && sw.finished.Before(cutoff)
		sw.mu.Unlock()
		if !expired {
			continue
		}
		delete(s.sweeps, id)
		if s.byHash[sw.reqHash] == sw {
			delete(s.byHash, sw.reqHash)
		}
		n++
	}
	if n > 0 {
		obsSweepsEvicted.Add(uint64(n))
	}
	return n
}

// Handler returns the daemon's routes wrapped in per-request panic
// isolation (a handler panic 500s that request — counted and logged —
// instead of killing the daemon) and, when Config.Plane is set, the
// server.handler fault-injection site.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				obsServerPanics.Add(1)
				s.noteDegraded(fmt.Sprintf("handler panic (%s %s)", r.Method, r.URL.Path))
				s.cfg.Log.Printf("leakd: panic in %s %s (isolated): %v\n%s",
					r.Method, r.URL.Path, p, debug.Stack())
				// Best effort: if the handler already wrote headers this is
				// a no-op on the status line, but the connection still ends.
				httpError(w, http.StatusInternalServerError, "internal error (request isolated)")
			}
		}()
		if s.cfg.Plane != nil {
			d := s.cfg.Plane.Decide(faultinject.SiteServerHandler)
			switch d.Fault {
			case faultinject.OpSlow:
				time.Sleep(d.Delay)
			case faultinject.OpPanic:
				panic("faultinject: injected panic at " + faultinject.SiteServerHandler)
			case faultinject.Op5xx, faultinject.OpErr, faultinject.OpReset, faultinject.OpShort:
				httpError(w, http.StatusBadGateway, "injected fault")
				return
			}
		}
		s.mux.ServeHTTP(w, r)
	})
}

// executor pulls sweeps off the queues, interactive first: a ready
// interactive sweep always overtakes a waiting bulk one.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		var sw *sweep
		select {
		case sw = <-s.interactive:
		default:
			select {
			case <-s.stop:
				return
			case sw = <-s.interactive:
			case sw = <-s.bulk:
			}
		}
		obsQueueDepth.Add(-1)
		s.runIsolated(sw)
	}
}

// runIsolated executes one sweep with panic isolation: a panic escaping
// the harness (or injected by the chaos plane) fails that sweep, not the
// executor goroutine — the daemon keeps serving.
func (s *Server) runIsolated(sw *sweep) {
	defer func() {
		if p := recover(); p != nil {
			obsServerPanics.Add(1)
			s.noteDegraded("sweep executor panic")
			s.cfg.Log.Printf("leakd: panic in sweep %s (isolated): %v\n%s", sw.id, p, debug.Stack())
			s.finishUnrun(sw, api.StateFailed, fmt.Sprintf("sweep panicked: %v", p))
		}
	}()
	s.execute(sw)
}

// noteDegraded records a deduplicated degradation reason for /healthz.
func (s *Server) noteDegraded(reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.degraded {
		if r == reason {
			return
		}
	}
	if len(s.degraded) < 16 {
		s.degraded = append(s.degraded, reason)
	}
}

// multiSink tees harness events to the sweep's hub and the global sink.
type multiSink []harness.EventSink

func (m multiSink) Write(rec obs.Record) {
	for _, s := range m {
		if s != nil {
			s.Write(rec)
		}
	}
}

// execute runs one sweep to a terminal state. Every completed cell is in
// the store (and the sweep's checkpoint) before the state goes terminal, so
// a drain mid-sweep loses no finished work.
func (s *Server) execute(sw *sweep) {
	obsSweepsInFlight.Add(1)
	defer obsSweepsInFlight.Add(-1)
	defer sw.cancel()

	// Chaos: the server.sweep site fires inside the executor, past the
	// dequeue accounting, so an injected panic exercises the same
	// isolation path a harness-escaping bug would.
	if s.cfg.Plane != nil {
		d := s.cfg.Plane.Decide(faultinject.SiteServerSweep)
		switch d.Fault {
		case faultinject.OpSlow:
			time.Sleep(d.Delay)
		case faultinject.OpPanic:
			panic("faultinject: injected panic at " + faultinject.SiteServerSweep)
		}
	}

	// The watchdog bounds the whole sweep; its cancellation propagates
	// through the harness exactly like a drain (in-flight cells stop,
	// completed cells are already durable).
	runCtx := sw.ctx
	if s.cfg.SweepTimeout > 0 {
		var wcancel context.CancelFunc
		runCtx, wcancel = context.WithTimeout(sw.ctx, s.cfg.SweepTimeout)
		defer wcancel()
	}

	e := sim.NewExperiments()
	e.Instructions = sw.instructions
	e.Warmup = sw.warmup
	e.Parallel = true
	e.Workers = s.cfg.Workers
	e.Store = s.cfg.Store
	e.SharedTraces = s.traces
	e.Ctx = runCtx
	e.RunTimeout = s.cfg.RunTimeout
	e.MaxRetries = s.cfg.MaxRetries
	e.Peer = s.cfg.Peer
	e.Events = multiSink{sw.hub, s.cfg.Events}
	// The checkpoint is keyed by the request hash: a daemon killed
	// mid-sweep resumes exactly this request's remaining cells on restart.
	ckptDir := filepath.Join(s.cfg.Store.Dir(), "checkpoints")
	_ = os.MkdirAll(ckptDir, 0o755)
	e.CheckpointPath = filepath.Join(ckptDir, sw.reqHash+".jsonl")
	e.Resume = true

	sw.mu.Lock()
	sw.state = api.StateRunning
	sw.started = time.Now()
	sw.exp = e
	sw.mu.Unlock()
	sw.hub.Write(obs.Record{Type: "sweep_start", RunID: sw.id, Detail: sw.reqHash})
	s.cfg.Log.Printf("leakd: sweep %s running (%d cells, %s)", sw.id,
		len(sw.cells)+len(sw.attacks), sw.priority)

	// Both cell kinds run under one Experiments, so they share the store,
	// the checkpoint file (disjoint key namespaces) and the live counters.
	outs, runErr := e.RunCells(sw.cells)
	var attackOuts []sim.AttackOutcome
	if runErr == nil {
		attackOuts, runErr = e.RunAttackCells(sw.attacks)
	}
	// Run trouble and infrastructure trouble are different verdicts: a
	// batch that produced its results but could not persist them all is
	// degraded-complete (the daemon recomputes next time instead of lying
	// about durability), not failed.
	infraErr := e.Err()
	executed, hits, resumed := e.Executed(), e.StoreHits(), e.Resumed()
	_ = e.Close()

	// The watchdog fired iff the run context died while the sweep's own
	// context (drain, client deadline) is still alive.
	watchdogFired := runCtx.Err() != nil && sw.ctx.Err() == nil

	state := api.StateCompleted
	var msg, degradedMsg string
	failed := 0
	for _, o := range outs {
		if o.Err != nil {
			failed++
		}
	}
	for _, o := range attackOuts {
		if o.Err != nil {
			failed++
		}
	}
	switch {
	case (runErr != nil || failed > 0) && watchdogFired:
		state = api.StateFailed
		msg = fmt.Sprintf("sweep watchdog timeout after %s", s.cfg.SweepTimeout)
		obsWatchdogFired.Add(1)
	case runErr != nil && sw.ctx.Err() != nil:
		state, msg = api.StateCanceled, sw.ctx.Err().Error()
	case runErr != nil:
		state, msg = api.StateFailed, runErr.Error()
	case failed > 0 && sw.ctx.Err() != nil:
		// No infrastructure error, but cells were cut short by the drain
		// or deadline: the sweep is canceled, not completed.
		state, msg = api.StateCanceled, sw.ctx.Err().Error()
	}
	if state == api.StateCompleted && infraErr != nil {
		degradedMsg = infraErr.Error()
		obsSweepsDegraded.Add(1)
		s.noteDegraded("store trouble: " + infraErr.Error())
		s.cfg.Log.Printf("leakd: sweep %s degraded-complete: %v", sw.id, infraErr)
	}

	sw.mu.Lock()
	sw.state = state
	sw.finished = time.Now()
	sw.exp = nil
	sw.outcomes = outs
	sw.attackOutcomes = attackOuts
	sw.errMsg = msg
	sw.degradedMsg = degradedMsg
	sw.executed, sw.storeHits, sw.resumed = executed, hits, resumed
	sw.mu.Unlock()

	sw.hub.Write(obs.Record{Type: "sweep_" + state, RunID: sw.id, Error: msg})
	sw.hub.Close()
	obsSweepsCompleted.Add(1)
	s.cfg.Log.Printf("leakd: sweep %s %s (executed=%d store_hits=%d resumed=%d failed=%d)",
		sw.id, state, executed, hits, resumed, failed)
}

// finishUnrun terminates a sweep that never reached an executor.
func (s *Server) finishUnrun(sw *sweep, state, msg string) {
	sw.cancel()
	sw.mu.Lock()
	sw.state = state
	sw.finished = time.Now()
	sw.errMsg = msg
	sw.mu.Unlock()
	sw.hub.Write(obs.Record{Type: "sweep_" + state, RunID: sw.id, Error: msg})
	sw.hub.Close()
}

// Shutdown drains the daemon: new submissions get 503, queued sweeps are
// canceled, running sweeps get their contexts canceled (in-flight cells
// drain; completed cells are already checkpointed and stored), and the
// executors exit. It blocks until the drain finishes or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}

	// Empty the queues; executors racing us just run the sweep with an
	// already-canceled context, which lands in the same canceled state.
	for drained := false; !drained; {
		select {
		case sw := <-s.interactive:
			obsQueueDepth.Add(-1)
			s.finishUnrun(sw, api.StateCanceled, "daemon draining")
		case sw := <-s.bulk:
			obsQueueDepth.Add(-1)
			s.finishUnrun(sw, api.StateCanceled, "daemon draining")
		default:
			drained = true
		}
	}
	s.rootCancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain timed out: %w", ctx.Err())
	}
}

// ---- request admission ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Instructions == 0 {
		req.Instructions = s.cfg.DefaultInstructions
	}
	if req.Warmup == 0 {
		req.Warmup = s.cfg.DefaultWarmup
	}
	specs, attacks, wire, err := api.ExpandCells(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	total := len(specs) + len(attacks)
	if total == 0 {
		httpError(w, http.StatusBadRequest, "sweep has no cells")
		return
	}
	if total > s.cfg.MaxCells {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep has %d cells, limit is %d", total, s.cfg.MaxCells))
		return
	}
	priority := req.Priority
	switch priority {
	case "interactive", "bulk":
	case "":
		if total <= 2 {
			priority = "interactive"
		} else {
			priority = "bulk"
		}
	default:
		httpError(w, http.StatusBadRequest, `priority must be "interactive" or "bulk"`)
		return
	}
	reqHash, err := api.RequestHash(req.Instructions, req.Warmup, wire)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "hash request: "+err.Error())
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		obsSweepsRejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	// Identical non-terminal request: alias onto the in-flight sweep
	// instead of queueing duplicate work.
	if prev := s.byHash[reqHash]; prev != nil {
		prev.mu.Lock()
		terminal := api.Terminal(prev.state)
		prev.mu.Unlock()
		if !terminal {
			s.mu.Unlock()
			respondJSON(w, http.StatusOK, s.status(prev, false))
			return
		}
	}
	s.seq++
	var ctx context.Context
	var cancel context.CancelFunc
	if req.TimeoutS > 0 {
		ctx, cancel = context.WithTimeout(s.rootCtx, time.Duration(req.TimeoutS*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(s.rootCtx)
	}
	sw := &sweep{
		id:           fmt.Sprintf("s-%06d", s.seq),
		reqHash:      reqHash,
		priority:     priority,
		cells:        specs,
		attacks:      attacks,
		wire:         wire,
		instructions: req.Instructions,
		warmup:       req.Warmup,
		ctx:          ctx,
		cancel:       cancel,
		hub:          stream.NewHub(),
		state:        api.StateQueued,
		created:      time.Now(),
	}
	q := s.bulk
	if priority == "interactive" {
		q = s.interactive
	}
	// The gauge goes up before the enqueue: an executor that dequeues the
	// sweep immediately decrements a count that already includes it, so
	// the load signal (which the cluster coordinator's placement reads)
	// never dips below zero. A rejected submit takes the increment back.
	obsQueueDepth.Add(1)
	select {
	case q <- sw:
	default:
		s.mu.Unlock()
		obsQueueDepth.Add(-1)
		cancel()
		obsSweepsRejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(api.RetryAfterSeconds(s.cfg.RetryAfter)))
		httpError(w, http.StatusTooManyRequests, priority+" queue is full")
		return
	}
	s.sweeps[sw.id] = sw
	s.byHash[reqHash] = sw
	s.mu.Unlock()
	obsSweepsAccepted.Add(1)
	respondJSON(w, http.StatusAccepted, s.status(sw, false))
}

// ---- status ----

// status snapshots a sweep for the wire. Cell-level detail is included
// only when withCells (the per-sweep GET), not on submit responses.
func (s *Server) status(sw *sweep, withCells bool) api.SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := api.SweepStatus{
		ID:       sw.id,
		State:    sw.state,
		Priority: sw.priority,
		Created:  sw.created,
		Total:    len(sw.cells) + len(sw.attacks),
		Error:    sw.errMsg,
		Degraded: sw.degradedMsg,
	}
	if !sw.started.IsZero() {
		t := sw.started
		st.Started = &t
	}
	if !sw.finished.IsZero() {
		t := sw.finished
		st.Finished = &t
	}
	if sw.exp != nil { // running: live counters
		st.Executed = sw.exp.Executed()
		st.StoreHits = sw.exp.StoreHits()
		st.Resumed = sw.exp.Resumed()
		st.Completed = st.Executed + st.StoreHits + st.Resumed
	} else {
		st.Executed, st.StoreHits, st.Resumed = sw.executed, sw.storeHits, sw.resumed
	}
	if sw.outcomes != nil || sw.attackOutcomes != nil {
		// Energy outcomes first, then attack outcomes — the wire order
		// ExpandCells documents.
		st.Completed = 0
		for _, o := range sw.outcomes {
			cs := api.CellStatus{Cell: api.FromSpec(o.Spec), Hash: o.Hash}
			if o.Err != nil {
				cs.State = "failed"
				cs.Error = o.Err.Err
				st.Failed++
			} else {
				cs.State = "done"
				st.Completed++
			}
			if withCells {
				st.Cells = append(st.Cells, cs)
			}
		}
		for _, o := range sw.attackOutcomes {
			cs := api.CellStatus{Cell: api.FromAttackSpec(o.Spec), Hash: o.Hash}
			if o.Err != nil {
				cs.State = "failed"
				cs.Error = o.Err.Err
				st.Failed++
			} else {
				cs.State = "done"
				st.Completed++
			}
			if withCells {
				st.Cells = append(st.Cells, cs)
			}
		}
	} else if withCells {
		for _, c := range sw.wire {
			st.Cells = append(st.Cells, api.CellStatus{Cell: c, State: "pending"})
		}
	}
	return st
}

func (s *Server) lookup(id string) *sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	respondJSON(w, http.StatusOK, s.status(sw, true))
}

// handleEvents streams the sweep's trace events as SSE: the buffered
// history first, then live events until the sweep finishes or the client
// goes away. Event types are the harness's record types (run_start,
// run_done, checkpoint_hit, store_hit, sweep_*).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	if err := stream.ServeSSE(w, r, sw.hub); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rec, ok, err := s.cfg.Store.Get(hash)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no such cell")
		return
	}
	respondJSON(w, http.StatusOK, api.CellRecord{Hash: rec.Hash, Key: rec.Key, Value: rec.Value})
}

// handleHealthz reports the daemon's tri-state health: "ok", "degraded"
// (serving, but limping — store corruption quarantined at open, store
// writes failing, isolated panics; Reasons says why) with 200 so load
// balancers keep routing, or "draining" with 503 so they stop.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	reasons := append([]string(nil), s.degraded...)
	s.mu.Unlock()
	quarantined := s.cfg.Store.Quarantined()
	if quarantined > 0 {
		reasons = append(reasons, fmt.Sprintf("store quarantined %d corrupt records at open", quarantined))
	}
	h := api.Health{
		Status:           "ok",
		Draining:         draining,
		Reasons:          reasons,
		QueueDepth:       len(s.interactive) + len(s.bulk),
		SweepsInFlight:   int(obsSweepsInFlight.Value()),
		StoreCells:       s.cfg.Store.Len(),
		StoreQuarantined: quarantined,
	}
	code := http.StatusOK
	if len(reasons) > 0 {
		h.Status = "degraded"
	}
	if draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	respondJSON(w, code, h)
}

func respondJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	respondJSON(w, code, api.ErrorBody{Error: msg})
}
