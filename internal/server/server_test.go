package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"hotleakage/internal/server/api"
	"hotleakage/internal/sim"
	"hotleakage/internal/store"
	"hotleakage/internal/workload"
)

// testBudget keeps daemon tests fast: ~80K instructions per cell.
const (
	testInstr  = 60_000
	testWarmup = 20_000
)

func testConfig(t *testing.T, st *store.Store) Config {
	t.Helper()
	return Config{
		Store:               st,
		Workers:             2,
		QueueDepth:          4,
		SweepConcurrency:    1,
		DefaultInstructions: testInstr,
		DefaultWarmup:       testWarmup,
		RetryAfter:          1 * time.Second,
	}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func twoCellRequest() api.SweepRequest {
	return api.SweepRequest{
		Instructions: testInstr,
		Warmup:       testWarmup,
		Cells: []api.Cell{
			{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096},
			{Bench: "gzip", L2: 11, Technique: "gated-vss", Interval: 4096},
		},
	}
}

// TestDaemonLifecycle drives the full API surface: submit, poll, SSE
// events, cell fetch — then resubmits the identical sweep and requires it
// to be answered entirely from the store, bit-identically.
func TestDaemonLifecycle(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	srv, err := New(testConfig(t, st))
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	cl := api.NewClient(hts.URL)
	cl.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Cold: both cells simulate.
	sub, err := cl.SubmitSweep(ctx, twoCellRequest())
	if err != nil {
		t.Fatal(err)
	}
	if sub.State != api.StateQueued && sub.State != api.StateRunning {
		t.Fatalf("submit state = %q", sub.State)
	}
	cold, err := cl.WaitSweep(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cold.State != api.StateCompleted {
		t.Fatalf("cold sweep ended %q (%s)", cold.State, cold.Error)
	}
	if cold.Executed != 2 || cold.StoreHits != 0 || cold.Failed != 0 {
		t.Fatalf("cold: executed=%d storeHits=%d failed=%d, want 2/0/0",
			cold.Executed, cold.StoreHits, cold.Failed)
	}
	coldVals := make(map[string][]byte)
	for _, cs := range cold.Cells {
		if cs.State != "done" || cs.Hash == "" {
			t.Fatalf("cold cell %+v not done", cs)
		}
		rec, err := cl.Cell(ctx, cs.Hash)
		if err != nil {
			t.Fatal(err)
		}
		coldVals[cs.Hash] = rec.Value
	}

	// The SSE stream replays the harness trace for a finished sweep.
	resp, err := http.Get(hts.URL + "/v1/sweeps/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content-type = %q", ct)
	}
	for _, want := range []string{"event: sweep_start", "event: run_done", "event: sweep_completed"} {
		if !strings.Contains(string(events), want) {
			t.Errorf("SSE stream missing %q:\n%s", want, events)
		}
	}

	// Warm resubmit: zero simulation, 100% store hits, identical bytes.
	resub, err := cl.SubmitSweep(ctx, twoCellRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resub.ID == sub.ID {
		t.Fatalf("terminal sweep was aliased instead of re-run")
	}
	warm, err := cl.WaitSweep(ctx, resub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != api.StateCompleted || warm.Executed != 0 || warm.StoreHits != 2 {
		t.Fatalf("warm: state=%s executed=%d storeHits=%d, want completed/0/2",
			warm.State, warm.Executed, warm.StoreHits)
	}
	for _, cs := range warm.Cells {
		rec, err := cl.Cell(ctx, cs.Hash)
		if err != nil {
			t.Fatal(err)
		}
		if string(rec.Value) != string(coldVals[cs.Hash]) {
			t.Errorf("cell %s not byte-identical across warm resubmit", cs.Hash)
		}
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.StoreCells != 2 || h.Draining {
		t.Errorf("health = %+v, want 2 store cells, not draining", h)
	}

	// Unknown routes and cells.
	if _, err := cl.Cell(ctx, "not-a-hash"); err == nil {
		t.Error("fetching a bogus cell succeeded")
	}
	if _, err := cl.Sweep(ctx, "s-999999"); err == nil {
		t.Error("fetching a bogus sweep succeeded")
	}
}

// TestAdmissionAndPriority uses a paused daemon (no executors) so the
// queues fill deterministically: overflow is a 429 with Retry-After, an
// identical queued request aliases onto the existing sweep, and once the
// executors start, the interactive sweep overtakes the earlier bulk one.
func TestAdmissionAndPriority(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	cfg := testConfig(t, st)
	cfg.QueueDepth = 1
	s := newServer(cfg)
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()
	cl := api.NewClient(hts.URL)
	cl.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	bulkReq := api.SweepRequest{
		Instructions: testInstr, Warmup: testWarmup, Priority: "bulk",
		Cells: []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096}},
	}
	bulk, err := cl.SubmitSweep(ctx, bulkReq)
	if err != nil {
		t.Fatal(err)
	}

	// Queue depth 1: a second, different bulk sweep must be rejected.
	other := bulkReq
	other.Cells = []api.Cell{{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 8192}}
	rejCtx, rejCancel := context.WithTimeout(ctx, 50*time.Millisecond)
	_, err = cl.SubmitSweep(rejCtx, other)
	rejCancel()
	if err == nil || rejCtx.Err() == nil {
		// SubmitSweep retries 429s until its context expires, so the only
		// acceptable outcome here is a deadline hit after >=1 rejection.
		t.Fatalf("overflow submit: err=%v", err)
	}
	// Confirm the rejection itself (single shot, no retry).
	resp, err := http.Post(hts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"priority":"bulk","cells":[{"bench":"gzip","l2_latency":11,"technique":"rbb","interval":1024}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After")
	}

	// Identical request while queued: aliased, not re-queued.
	alias, err := cl.SubmitSweep(ctx, bulkReq)
	if err != nil {
		t.Fatal(err)
	}
	if alias.ID != bulk.ID {
		t.Errorf("identical queued request got a new sweep %s (want %s)", alias.ID, bulk.ID)
	}

	// Interactive queue is separate and has room.
	inter, err := cl.SubmitSweep(ctx, api.SweepRequest{
		Instructions: testInstr, Warmup: testWarmup, Priority: "interactive",
		Cells: []api.Cell{{Bench: "gzip", L2: 11, Technique: "gated-vss", Interval: 4096}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Start the single executor: interactive must run first even though
	// the bulk sweep was queued earlier.
	s.startExecutors()
	interDone, err := cl.WaitSweep(ctx, inter.ID)
	if err != nil {
		t.Fatal(err)
	}
	bulkDone, err := cl.WaitSweep(ctx, bulk.ID)
	if err != nil {
		t.Fatal(err)
	}
	if interDone.State != api.StateCompleted || bulkDone.State != api.StateCompleted {
		t.Fatalf("states: interactive=%s bulk=%s", interDone.State, bulkDone.State)
	}
	if interDone.Started == nil || bulkDone.Started == nil {
		t.Fatal("missing start times")
	}
	if interDone.Started.After(*bulkDone.Started) {
		t.Errorf("interactive started %v, after bulk %v", interDone.Started, bulkDone.Started)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestRemoteRunCells exercises the sim.RemoteRunner implementation: the
// client ships cells to the daemon and reassembles results locally.
func TestRemoteRunCells(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	srv, err := New(testConfig(t, st))
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl := api.NewClient(hts.URL)
	cl.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	req := twoCellRequest()
	simSpecs := make([]sim.CellSpec, 0, len(req.Cells))
	for _, c := range req.Cells {
		sp, err := c.Spec()
		if err != nil {
			t.Fatal(err)
		}
		simSpecs = append(simSpecs, sp)
	}
	out, err := cl.RunCells(ctx, testInstr, testWarmup, simSpecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d results", len(out))
	}
	for i, rc := range out {
		if rc.Err != "" {
			t.Fatalf("cell %d failed remotely: %s", i, rc.Err)
		}
		if rc.Result.CPU.Instructions == 0 {
			t.Errorf("cell %d came back empty", i)
		}
	}
}

// TestDrainAndResume submits a sweep wide enough to still be in flight
// when SIGTERM-equivalent Shutdown lands, verifies the drain is clean (no
// leaked goroutines), then "restarts" the daemon on a fresh store handle
// and requires the resubmitted sweep to simulate only what the first
// process didn't finish.
func TestDrainAndResume(t *testing.T) {
	dir := t.TempDir()
	baseline := runtime.NumGoroutine()

	st := openStore(t, dir)
	cfg := testConfig(t, st)
	cfg.Workers = 2
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	cl := api.NewClient(hts.URL)
	cl.PollInterval = 2 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	benches := make([]string, 0, 4)
	for _, p := range workload.Profiles()[:4] {
		benches = append(benches, p.Name)
	}
	wide := api.SweepRequest{
		Instructions: 200_000,
		Warmup:       50_000,
		Benchmarks:   benches,
		Techniques:   []string{"drowsy", "gated-vss"},
		Intervals:    []uint64{2048, 8192},
		L2Latencies:  []int{11},
		Priority:     "bulk",
	}
	sub, err := cl.SubmitSweep(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	total := sub.Total
	if total != 16 {
		t.Fatalf("expanded to %d cells, want 16", total)
	}

	// Wait for partial progress, then drain.
	for {
		stt, err := cl.Sweep(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if stt.Completed >= 2 {
			break
		}
		if api.Terminal(stt.State) {
			t.Fatalf("sweep finished (%s) before the drain could land; lower the budget", stt.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 20*time.Second)
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	scancel()

	final, err := cl.Sweep(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateCanceled && final.State != api.StateCompleted {
		t.Fatalf("post-drain state = %s", final.State)
	}
	doneFirst := 0
	for _, cs := range final.Cells {
		if cs.State == "done" {
			doneFirst++
		}
	}
	if final.State == api.StateCanceled && doneFirst == 0 {
		t.Fatal("drain kept no completed cells")
	}
	// Submissions during/after drain are refused.
	resp, err := http.Post(hts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"cells":[{"bench":"gzip","l2_latency":11,"technique":"drowsy","interval":4096}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	hts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The drain must not leak goroutines: allow the runtime a moment to
	// reap the HTTP and executor goroutines, then compare to baseline.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked across drain: %d -> %d\n%s",
			baseline, n, buf[:runtime.Stack(buf, true)])
	}

	// "Restart": fresh store handle over the same directory. The second
	// run of the identical request must not re-simulate finished cells.
	st2 := openStore(t, dir)
	defer st2.Close()
	srv2, err := New(testConfig(t, st2))
	if err != nil {
		t.Fatal(err)
	}
	hts2 := httptest.NewServer(srv2.Handler())
	defer hts2.Close()
	defer func() {
		c, cc := context.WithTimeout(context.Background(), 10*time.Second)
		defer cc()
		_ = srv2.Shutdown(c)
	}()
	cl2 := api.NewClient(hts2.URL)
	cl2.PollInterval = 5 * time.Millisecond
	sub2, err := cl2.SubmitSweep(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl2.WaitSweep(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != api.StateCompleted || res.Failed != 0 {
		t.Fatalf("resumed sweep: state=%s failed=%d (%s)", res.State, res.Failed, res.Error)
	}
	if res.Executed+res.StoreHits+res.Resumed != total {
		t.Fatalf("resumed accounting: executed=%d hits=%d resumed=%d, want sum %d",
			res.Executed, res.StoreHits, res.Resumed, total)
	}
	if res.StoreHits+res.Resumed < doneFirst {
		t.Errorf("restart re-simulated finished work: %d finished before drain, only %d reused",
			doneFirst, res.StoreHits+res.Resumed)
	}
	if res.Executed >= total {
		t.Errorf("restart simulated all %d cells from scratch", total)
	}
}

// Request expansion/validation tests live with the code in
// internal/server/api (TestExpandCells in protocol_test.go).
