package server

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hotleakage/internal/server/api"
)

// TestSSEReconnectReplay: an SSE client that drops mid-sweep and reconnects
// after completion still sees the sweep's full event history (replay from
// the ring), ending in the terminal sweep_completed event. The hub itself
// is pinned by internal/stream's tests; this covers the server's SSE
// endpoint over it.
func TestSSEReconnectReplay(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	srv, err := New(testConfig(t, st))
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl := api.NewClient(hts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := cl.SubmitSweep(ctx, twoCellRequest())
	if err != nil {
		t.Fatal(err)
	}

	// First client connects, reads a line or two, then drops the stream
	// mid-sweep — the server side must detach it without wedging the sweep.
	dropCtx, drop := context.WithCancel(ctx)
	req, _ := http.NewRequestWithContext(dropCtx, "GET", hts.URL+"/v1/sweeps/"+sub.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	_, _ = br.ReadString('\n')
	drop()
	resp.Body.Close()

	if _, err := cl.WaitSweep(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}

	// Reconnect after the sweep finished: the whole history replays, the
	// stream terminates (hub closed), and the terminal event is present.
	req2, _ := http.NewRequestWithContext(ctx, "GET", hts.URL+"/v1/sweeps/"+sub.ID+"/events", nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	stream := sb.String()
	for _, want := range []string{"event: sweep_start", "event: run_done", "event: sweep_completed"} {
		if !strings.Contains(stream, want) {
			t.Errorf("reconnect replay missing %q", want)
		}
	}
}
