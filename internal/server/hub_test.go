package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hotleakage/internal/obs"
	"hotleakage/internal/server/api"
)

// TestHubRingOverflow: more events than hubBufCap wrap the ring; a late
// subscriber replays exactly the newest hubBufCap events, in order.
func TestHubRingOverflow(t *testing.T) {
	h := newHub()
	const n = hubBufCap + 300
	for i := 0; i < n; i++ {
		h.Write(obs.Record{Type: "run_done", Detail: fmt.Sprintf("ev-%d", i)})
	}
	replay, ch, cancel := h.subscribe()
	defer cancel()
	if len(replay) != hubBufCap {
		t.Fatalf("replay length %d, want %d", len(replay), hubBufCap)
	}
	for i, rec := range replay {
		want := fmt.Sprintf("ev-%d", n-hubBufCap+i)
		if rec.Detail != want {
			t.Fatalf("replay[%d] = %s, want %s (oldest-first ring order)", i, rec.Detail, want)
		}
	}
	select {
	case <-ch:
		t.Fatal("live channel has events before any post-subscribe write")
	default:
	}
}

// TestHubSlowConsumerDrops: a subscriber that never drains loses events —
// Write must not block even when the subscriber channel is full.
func TestHubSlowConsumerDrops(t *testing.T) {
	h := newHub()
	_, ch, cancel := h.subscribe()
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// subBufCap fills the channel; the rest must be dropped, not block.
		for i := 0; i < subBufCap+1000; i++ {
			h.Write(obs.Record{Type: "run_done", Detail: fmt.Sprintf("ev-%d", i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Write blocked on an undrained subscriber")
	}
	if got := len(ch); got != subBufCap {
		t.Errorf("stalled subscriber holds %d events, want %d (rest dropped)", got, subBufCap)
	}
	// The hub itself kept everything the ring can hold.
	replay, _, cancel2 := h.subscribe()
	defer cancel2()
	if len(replay) != subBufCap+1000 {
		t.Errorf("replay length %d, want %d", len(replay), subBufCap+1000)
	}
}

// TestHubCloseSemantics: close is idempotent, live channels close, writes
// after close are dropped, and post-close subscribers still get the replay
// with an already-closed channel.
func TestHubCloseSemantics(t *testing.T) {
	h := newHub()
	h.Write(obs.Record{Type: "sweep_start"})
	_, live, cancel := h.subscribe()
	defer cancel()
	h.close()
	h.close() // idempotent
	if _, open := <-live; open {
		t.Fatal("live channel still open after hub close")
	}
	h.Write(obs.Record{Type: "dropped"})
	replay, ch, _ := h.subscribe()
	if len(replay) != 1 || replay[0].Type != "sweep_start" {
		t.Fatalf("post-close replay %v, want the single pre-close event", replay)
	}
	if _, open := <-ch; open {
		t.Fatal("post-close subscriber channel not closed")
	}
}

// TestHubConcurrentChurn hammers subscribe/cancel/Write/close from many
// goroutines; run under -race this pins the locking discipline.
func TestHubConcurrentChurn(t *testing.T) {
	h := newHub()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Write(obs.Record{Type: "run_done", Attempt: i})
				}
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, ch, cancel := h.subscribe()
				for j := 0; j < 10; j++ {
					select {
					case <-ch:
					default:
					}
				}
				cancel()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	h.close()
}

// TestSSEReconnectReplay: an SSE client that drops mid-sweep and reconnects
// after completion still sees the sweep's full event history (replay from
// the ring), ending in the terminal sweep_completed event.
func TestSSEReconnectReplay(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	srv, err := New(testConfig(t, st))
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl := api.NewClient(hts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := cl.SubmitSweep(ctx, twoCellRequest())
	if err != nil {
		t.Fatal(err)
	}

	// First client connects, reads a line or two, then drops the stream
	// mid-sweep — the server side must detach it without wedging the sweep.
	dropCtx, drop := context.WithCancel(ctx)
	req, _ := http.NewRequestWithContext(dropCtx, "GET", hts.URL+"/v1/sweeps/"+sub.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	_, _ = br.ReadString('\n')
	drop()
	resp.Body.Close()

	if _, err := cl.WaitSweep(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}

	// Reconnect after the sweep finished: the whole history replays, the
	// stream terminates (hub closed), and the terminal event is present.
	req2, _ := http.NewRequestWithContext(ctx, "GET", hts.URL+"/v1/sweeps/"+sub.ID+"/events", nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	stream := sb.String()
	for _, want := range []string{"event: sweep_start", "event: run_done", "event: sweep_completed"} {
		if !strings.Contains(stream, want) {
			t.Errorf("reconnect replay missing %q", want)
		}
	}
}
