package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"hotleakage/internal/attack"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/server/api"
	"hotleakage/internal/sim"
)

// TestAttackSweep drives a mixed-kind sweep through the daemon: energy
// and attack cells in one request, both resolved and content-addressed,
// with a warm resubmit answered entirely from the store. It then checks
// the acceptance property the frontier depends on: an attack cell run
// through leakd is bit-identical to the same cell run locally.
func TestAttackSweep(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	srv, err := New(testConfig(t, st))
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl := api.NewClient(hts.URL)
	cl.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	req := api.SweepRequest{
		Instructions: testInstr,
		Warmup:       testWarmup,
		Cells: []api.Cell{
			{Bench: "gzip", L2: 11, Technique: "drowsy", Interval: 4096},
			{Kind: api.KindAttack, Scenario: "smoke", L2: 11, Technique: "drowsy", Interval: 2048},
			{Kind: api.KindAttack, Scenario: "smoke", L2: 11, Technique: "gated-vss", Interval: 2048},
		},
	}
	sub, err := cl.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Total != 3 {
		t.Fatalf("submit total = %d, want 3", sub.Total)
	}
	cold, err := cl.WaitSweep(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cold.State != api.StateCompleted || cold.Failed != 0 || cold.Completed != 3 {
		t.Fatalf("cold sweep: state=%s completed=%d failed=%d (%s)",
			cold.State, cold.Completed, cold.Failed, cold.Error)
	}
	// Status rows carry both kinds, attack rows tagged and hashed.
	var attackRows int
	for _, cs := range cold.Cells {
		if cs.State != "done" || cs.Hash == "" {
			t.Fatalf("cell not done: %+v", cs)
		}
		if cs.Cell.Kind == api.KindAttack {
			attackRows++
			if cs.Cell.Scenario != "smoke" {
				t.Fatalf("attack row lost its scenario: %+v", cs.Cell)
			}
		}
	}
	if attackRows != 2 {
		t.Fatalf("status carried %d attack rows, want 2", attackRows)
	}

	// The stored attack result must be bit-identical to a local run of the
	// same cell (the acceptance property: leakbench -attack local vs
	// -remote report the same metric values).
	specs := []sim.AttackSpec{
		{Scenario: "smoke", L2: 11, Technique: leakctl.TechDrowsy, Interval: 2048},
		{Scenario: "smoke", L2: 11, Technique: leakctl.TechGated, Interval: 2048},
	}
	e := sim.NewExperiments()
	e.Instructions = testInstr
	e.Warmup = testWarmup
	e.Parallel = false
	defer e.Close()
	local, err := e.RunAttackCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		if local[i].Err != nil {
			t.Fatalf("local attack cell failed: %v", local[i].Err)
		}
		rec, err := cl.Cell(ctx, local[i].Hash)
		if err != nil {
			t.Fatalf("daemon does not serve attack cell %s: %v", local[i].Hash, err)
		}
		var remote attack.Result
		if err := json.Unmarshal(rec.Value, &remote); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(remote, local[i].Result) {
			t.Fatalf("cell %s: daemon result diverges from local run:\n %+v\n %+v",
				sp.Key(), remote, local[i].Result)
		}
	}

	// Warm resubmit: every cell (both kinds) served from the store.
	resub, err := cl.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cl.WaitSweep(ctx, resub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != api.StateCompleted || warm.Executed != 0 || warm.StoreHits != 3 {
		t.Fatalf("warm: state=%s executed=%d storeHits=%d, want completed/0/3",
			warm.State, warm.Executed, warm.StoreHits)
	}
}

// TestRemoteRunAttackCells exercises the sim.AttackRemoteRunner
// implementation: the client ships attack cells to the daemon and the
// reassembled results match a local run bit-for-bit, with unknown
// scenarios degrading to per-cell errors on the daemon side.
func TestRemoteRunAttackCells(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	srv, err := New(testConfig(t, st))
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl := api.NewClient(hts.URL)
	cl.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	specs := []sim.AttackSpec{
		{Scenario: "smoke", L2: 11, Technique: leakctl.TechNone, Interval: 0},
		{Scenario: "smoke", L2: 11, Technique: leakctl.TechDrowsy, Interval: 2048},
	}
	out, err := cl.RunAttackCells(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d results", len(out))
	}

	e := sim.NewExperiments()
	e.Parallel = false
	defer e.Close()
	local, err := e.RunAttackCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if out[i].Err != "" {
			t.Fatalf("cell %d failed remotely: %s", i, out[i].Err)
		}
		if local[i].Err != nil {
			t.Fatalf("cell %d failed locally: %v", i, local[i].Err)
		}
		if !reflect.DeepEqual(out[i].Result, local[i].Result) {
			t.Fatalf("cell %d: remote diverges from local:\n %+v\n %+v",
				i, out[i].Result, local[i].Result)
		}
	}
}
