package core

import (
	"testing"

	"hotleakage/internal/leakctl"
)

func TestCompareTechniquesDefaults(t *testing.T) {
	res, err := CompareTechniques(Options{
		Benchmark:    "gcc",
		Instructions: 120_000,
		Warmup:       60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "gcc" || res.BaselineIPC <= 0 {
		t.Fatalf("result header: %+v", res)
	}
	if len(res.Techniques) != 2 {
		t.Fatalf("techniques = %d, want 2 (drowsy + gated)", len(res.Techniques))
	}
	for _, tr := range res.Techniques {
		if tr.NetSavingsPct < -100 || tr.NetSavingsPct > 100 {
			t.Errorf("%v savings %v out of range", tr.Technique, tr.NetSavingsPct)
		}
		if tr.TurnoffRatio <= 0 || tr.TurnoffRatio >= 1 {
			t.Errorf("%v turnoff %v", tr.Technique, tr.TurnoffRatio)
		}
	}
	// State-preserving vs not, visible in the event mix.
	if res.Techniques[0].SlowHits == 0 || res.Techniques[0].InducedMisses != 0 {
		t.Errorf("drowsy events: %+v", res.Techniques[0])
	}
	if res.Techniques[1].InducedMisses == 0 || res.Techniques[1].SlowHits != 0 {
		t.Errorf("gated events: %+v", res.Techniques[1])
	}
}

func TestCompareTechniquesUnknownBenchmark(t *testing.T) {
	if _, err := CompareTechniques(Options{Benchmark: "nonesuch"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestCompareTechniquesCustomSet(t *testing.T) {
	res, err := CompareTechniques(Options{
		Benchmark:    "mcf",
		Techniques:   []leakctl.Technique{leakctl.TechRBB},
		Instructions: 100_000,
		Warmup:       50_000,
		L2Latency:    5,
		TempC:        85,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Techniques) != 1 || res.Techniques[0].Technique != leakctl.TechRBB {
		t.Fatalf("custom technique set: %+v", res.Techniques)
	}
}
