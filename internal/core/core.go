// Package core is the one-call entry point to the paper's primary
// contribution: the state-preserving vs. non-state-preserving comparison.
// It wires the HotLeakage model (internal/leakage), the controlled cache
// (internal/leakctl), the Table 2 machine (internal/sim) and the net-savings
// metric (internal/energy) behind a single function, for callers who want
// the headline numbers without assembling the pieces.
//
//	res, err := core.CompareTechniques(core.Options{Benchmark: "gcc"})
//
// Everything in the result can also be obtained — with full control — from
// the underlying packages; see the examples/ directory.
package core

import (
	"context"
	"fmt"

	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
	"hotleakage/internal/workload"
)

// Options configures a comparison. Zero values select the paper's operating
// point: 70 nm, 110 C, 11-cycle L2, 4K-cycle decay interval, 1M measured
// instructions after a 300K warmup.
type Options struct {
	// Benchmark is one of workload.Names() (required).
	Benchmark string
	// L2Latency in cycles (default 11; the paper sweeps 5, 8, 11, 17).
	L2Latency int
	// TempC is the operating temperature in Celsius (default 110).
	TempC float64
	// DecayInterval in cycles (default 4096).
	DecayInterval uint64
	// Instructions / Warmup override the run length when non-zero.
	Instructions, Warmup uint64
	// Techniques to evaluate (default: drowsy and gated-Vss).
	Techniques []leakctl.Technique
	// Variation enables the inter-die Monte Carlo of Section 3.3.
	Variation bool
	// NewAdapter, when non-nil, supplies a fresh runtime decay-interval
	// adapter for each technique run (Section 5.4 adaptive policies). A
	// fresh adapter per run keeps learned state from leaking across
	// techniques.
	NewAdapter func(t leakctl.Technique) leakctl.Adapter
}

// TechniqueResult is the headline outcome for one technique.
type TechniqueResult struct {
	Technique     leakctl.Technique
	NetSavingsPct float64
	PerfLossPct   float64
	TurnoffRatio  float64
	SlowHits      uint64
	InducedMisses uint64
}

// Result bundles the comparison.
type Result struct {
	Benchmark   string
	BaselineIPC float64
	Techniques  []TechniqueResult
}

// CompareTechniques runs the comparison described by opts.
func CompareTechniques(opts Options) (*Result, error) {
	return CompareTechniquesContext(context.Background(), opts)
}

// CompareTechniquesContext is CompareTechniques under a caller-supplied
// context: cancellation and deadlines stop the underlying simulations.
func CompareTechniquesContext(ctx context.Context, opts Options) (*Result, error) {
	prof, ok := workload.ByName(opts.Benchmark)
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q (have %v)", opts.Benchmark, workload.Names())
	}
	if opts.L2Latency == 0 {
		opts.L2Latency = 11
	}
	if opts.TempC == 0 {
		opts.TempC = 110
	}
	if opts.DecayInterval == 0 {
		opts.DecayInterval = sim.DefaultInterval
	}
	if len(opts.Techniques) == 0 {
		opts.Techniques = []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated}
	}

	mc := sim.DefaultMachine(opts.L2Latency)
	if opts.Instructions != 0 {
		mc.Instructions = opts.Instructions
	}
	if opts.Warmup != 0 {
		mc.Warmup = opts.Warmup
	}
	suite := sim.NewSuite(mc)
	var mopts []leakage.Option
	if opts.Variation {
		mopts = append(mopts, leakage.WithVariation(leakage.DefaultVariation70nm()))
	}
	model := leakage.New(mc.Tech, mopts...)

	res := &Result{Benchmark: prof.Name}
	base, err := suite.Baseline(ctx, prof)
	if err != nil {
		return nil, err
	}
	res.BaselineIPC = base.CPU.IPC()
	for _, tq := range opts.Techniques {
		if tq == leakctl.TechNone {
			continue
		}
		var adapter leakctl.Adapter
		if opts.NewAdapter != nil {
			adapter = opts.NewAdapter(tq)
		}
		p, err := suite.Evaluate(ctx, prof, leakctl.DefaultParams(tq, opts.DecayInterval), opts.TempC, model, adapter)
		if err != nil {
			return nil, err
		}
		res.Techniques = append(res.Techniques, TechniqueResult{
			Technique:     tq,
			NetSavingsPct: p.Cmp.NetSavingsPct,
			PerfLossPct:   p.Cmp.PerfLossPct,
			TurnoffRatio:  p.Cmp.TurnoffRatio,
			SlowHits:      p.Run.DStats.SlowHits,
			InducedMisses: p.Run.DStats.InducedMisses,
		})
	}
	return res, nil
}
