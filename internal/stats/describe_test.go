package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Errorf("Mean = %v, want 4", m)
	}
}

func TestStdDev(t *testing.T) {
	if s := StdDev([]float64{5}); s != 0 {
		t.Errorf("StdDev single = %v", s)
	}
	if s := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max not infinities")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	// Property: Min <= Mean <= Max for any non-empty slice.
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9*math.Abs(Min(xs))-1e-9 &&
			m <= Max(xs)+1e-9*math.Abs(Max(xs))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		return StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
