package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of xs. All elements must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
