// Package stats provides the small deterministic random-number and
// descriptive-statistics helpers shared by the workload generators, the
// parameter-variation Monte Carlo, and the experiment harness.
//
// The generator is a SplitMix64/xorshift-star hybrid rather than math/rand so
// that every experiment in this repository is bit-reproducible for a given
// seed across Go releases.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator.
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	state uint64
	// spare holds a banked Box-Muller variate for Gaussian sampling.
	spare    float64
	hasSpare bool
	// geomP/geomLogQ memoize Log1p(1-p) for Geometric: the workload
	// generators draw millions of samples at a handful of fixed p values,
	// and the log of the constant denominator dominated the sampling
	// cost. Caching a pure function's value cannot change any drawn bit.
	geomP    float64
	geomLogQ float64
}

// NewRNG returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Scramble trivial seeds (0, 1, ...) so nearby seeds diverge immediately.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	// SplitMix64 step.
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// Multiplying by the reciprocal is bit-identical to dividing by
	// 1<<53: both the constant and every result are exact (scaling by a
	// power of two never rounds), and the multiply is several times
	// cheaper than the divide.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Gaussian returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success
// (support {0, 1, 2, ...}, mean (1-p)/p).
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		if p >= 1 {
			return 0
		}
		panic("stats: Geometric requires 0 < p <= 1")
	}
	if p != r.geomP {
		r.geomP = p
		r.geomLogQ = math.Log1p(-p)
	}
	u := r.Float64()
	return int(math.Floor(math.Log1p(-u) / r.geomLogQ))
}

// Geom samples a geometric distribution with a fixed success probability,
// bit-identical to RNG.Geometric(p) but far cheaper per draw: instead of
// evaluating a logarithm per sample it compares the uniform draw against a
// precomputed table of outcome boundaries, falling back to the exact
// logarithm evaluation only inside a guard band around each boundary where
// floating-point rounding could make the two disagree.
//
// Soundness of the fast path: Geometric returns floor(fl(log1p(-u))/logq).
// The combined relative rounding error of the log1p call and the division
// is a few ulps, i.e. the computed quotient differs from the real-valued
// quotient x/logq by less than ~2^-48 |x/logq| <= ~2^-42 (the quotient is
// at most ~2^6 for float64 inputs). The boundary between outcomes k and
// k+1 lies at u* = -expm1((k+1)*logq), and near u* a shift du in u moves
// the quotient by du/((1-u*)*|logq|), so the quotient can only be
// rounding-ambiguous when |u - u*| < (1-u*)*|logq|*(k+1)*2^-48 <
// (1-u*)*2^-42. The guard band uses (1-u*)*2^-36 — a factor 2^6 wider —
// plus the same margin again for the rounding of the precomputed u*
// itself. Outside the band the table compare and the floor provably agree;
// inside it (probability ~2^-36 per draw) Next re-evaluates the exact
// formula on the same u, so the drawn stream is unchanged either way.
type Geom struct {
	rng  *RNG
	p    float64
	logq float64
	// lo[k]/hi[k] bracket boundary k+1 (between outcomes k and k+1):
	// u <= lo[k] is safely outcome <= k, u >= hi[k] safely outcome > k.
	lo, hi []float64
	// idx[b] is a u-space bucket index: for u in [b, b+1)/geomBuckets the
	// answering k is at least idx[b], so the walk starts there instead of
	// at zero. Sound because hi is increasing: u >= b/geomBuckets >=
	// hi[k'] for every k' < idx[b], which is exactly the walk's loop
	// invariant at entry.
	idx []int32
}

// geomBuckets is the u-space index granularity for Geom.
const geomBuckets = 256

// geomTableMax caps the boundary table; outcomes past the table (already
// reached with probability (1-p)^geomTableMax) use the exact evaluation.
const geomTableMax = 64

// NewGeom builds a fast sampler equivalent to rng.Geometric(p) for a fixed
// p in (0, 1).
func NewGeom(rng *RNG, p float64) *Geom {
	if p <= 0 || p >= 1 {
		panic("stats: NewGeom requires 0 < p < 1")
	}
	g := &Geom{rng: rng, p: p, logq: math.Log1p(-p)}
	for k := 1; k <= geomTableMax; k++ {
		t := -math.Expm1(float64(k) * g.logq) // boundary between k-1 and k
		if t >= 1 {
			break
		}
		band := (1 - t) * 0x1p-36
		g.lo = append(g.lo, t-band)
		g.hi = append(g.hi, t+band)
	}
	// idx[b] = the first k not safely excluded for u at bucket b's lower
	// edge, i.e. the first k with hi[k] > b/geomBuckets.
	g.idx = make([]int32, geomBuckets)
	j := 0
	for b := 0; b < geomBuckets; b++ {
		t := float64(b) / geomBuckets
		for j < len(g.hi) && g.hi[j] <= t {
			j++
		}
		g.idx[b] = int32(j)
	}
	return g
}

// exact is RNG.Geometric's computation on an already-drawn u.
func (g *Geom) exact(u float64) int {
	return int(math.Floor(math.Log1p(-u) / g.logq))
}

// Next returns the next sample; the RNG consumes exactly one Float64, as
// Geometric does.
func (g *Geom) Next() int {
	u := g.rng.Float64()
	hi := g.hi
	// Invariant: entering iteration k, u is safely at or past boundary k
	// (trivially true for k = 0, and guaranteed by idx for the bucket
	// start — see the idx comment). Walking hi alone keeps the loop to
	// one compare; lo is consulted only once a candidate k is found.
	for k := int(g.idx[int(u*geomBuckets)]); k < len(hi); k++ {
		if u < hi[k] {
			if u < g.lo[k] {
				return k // safely below boundary k+1
			}
			return g.exact(u) // inside the guard band: arbitrate exactly
		}
	}
	return g.exact(u) // past the table's reach
}

// Exponential returns a sample from an exponential distribution with the
// given mean.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	return -mean * math.Log1p(-u)
}

// Zipf draws from a bounded Zipf distribution over {0, ..., n-1} with
// exponent s, using the precomputed table in z.
type Zipf struct {
	cdf []float64
	rng *RNG
	// idx is a coarse bucket index over u-space: for u in bucket b, the
	// answering rank lies in [idx[b], idx[b+1]], so the binary search
	// starts a few ranks wide instead of spanning the whole table. The
	// search still returns the first cdf entry >= u — the narrowed
	// bounds provably bracket it — so the drawn ranks are identical.
	idx []int32
}

// zipfBuckets is the u-space index granularity.
const zipfBuckets = 256

// NewZipf builds a Zipf sampler over n ranks with exponent s >= 0 (s == 0 is
// uniform), drawing randomness from rng.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	// idx[b] is the first rank whose cdf reaches bucket b's lower edge
	// (clamped to the last rank). For any u in [b, b+1)/zipfBuckets the
	// first rank with cdf >= u is then >= idx[b] and <= idx[b+1].
	idx := make([]int32, zipfBuckets+1)
	j := 0
	for b := 0; b <= zipfBuckets; b++ {
		t := float64(b) / zipfBuckets
		for j < n-1 && cdf[j] < t {
			j++
		}
		idx[b] = int32(j)
	}
	return &Zipf{cdf: cdf, rng: rng, idx: idx}
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u, bracketed by the
	// bucket index (u < 1 always, so the bucket is in range).
	b := int(u * zipfBuckets)
	lo, hi := int(z.idx[b]), int(z.idx[b+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
