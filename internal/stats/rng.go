// Package stats provides the small deterministic random-number and
// descriptive-statistics helpers shared by the workload generators, the
// parameter-variation Monte Carlo, and the experiment harness.
//
// The generator is a SplitMix64/xorshift-star hybrid rather than math/rand so
// that every experiment in this repository is bit-reproducible for a given
// seed across Go releases.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator.
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	state uint64
	// spare holds a banked Box-Muller variate for Gaussian sampling.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Scramble trivial seeds (0, 1, ...) so nearby seeds diverge immediately.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	// SplitMix64 step.
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Gaussian returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success
// (support {0, 1, 2, ...}, mean (1-p)/p).
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		if p >= 1 {
			return 0
		}
		panic("stats: Geometric requires 0 < p <= 1")
	}
	u := r.Float64()
	return int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
}

// Exponential returns a sample from an exponential distribution with the
// given mean.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	return -mean * math.Log1p(-u)
}

// Zipf draws from a bounded Zipf distribution over {0, ..., n-1} with
// exponent s, using the precomputed table in z.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s >= 0 (s == 0 is
// uniform), drawing randomness from rng.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
