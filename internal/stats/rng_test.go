package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", m)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(10) never produced %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestGaussianMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Gaussian(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("gaussian mean = %v, want ~3", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("gaussian stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(9)
	for _, p := range []float64{0.1, 0.3, 0.7} {
		const n = 100000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Geometric(p)
		}
		want := (1 - p) / p
		got := float64(sum) / n
		if math.Abs(got-want) > 0.08*want+0.02 {
			t.Errorf("Geometric(%v) mean = %v, want ~%v", p, got, want)
		}
	}
}

func TestGeometricEdge(t *testing.T) {
	r := NewRNG(1)
	if v := r.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(5)
	}
	if m := sum / n; math.Abs(m-5) > 0.15 {
		t.Fatalf("Exponential(5) mean = %v", m)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) rate = %v", got)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(19)
	z := NewZipf(r, 4, 0)
	counts := make([]int, 4)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/n-0.25) > 0.02 {
			t.Errorf("rank %d frequency %v, want ~0.25", i, float64(c)/n)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// p(0)/p(9) should be ~10 for s=1.
	ratio := float64(counts[0]) / float64(counts[9])
	if ratio < 6 || ratio > 15 {
		t.Fatalf("zipf(1.0) rank0/rank9 ratio = %v, want ~10", ratio)
	}
	// Monotone non-increasing in expectation: check aggregate halves.
	firstHalf, secondHalf := 0, 0
	for i, c := range counts {
		if i < 50 {
			firstHalf += c
		} else {
			secondHalf += c
		}
	}
	if firstHalf <= secondHalf {
		t.Fatalf("zipf mass not front-loaded: %d vs %d", firstHalf, secondHalf)
	}
}

func TestZipfRangeProperty(t *testing.T) {
	// Property: every sample is within [0, n) for arbitrary n, s.
	f := func(seed uint64, nRaw uint16, sRaw uint8) bool {
		n := int(nRaw%500) + 1
		s := float64(sRaw%30) / 10
		r := NewRNG(seed)
		z := NewZipf(r, n, s)
		for i := 0; i < 50; i++ {
			if v := z.Next(); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianDeterministicPerSeed(t *testing.T) {
	a, b := NewRNG(31), NewRNG(31)
	for i := 0; i < 100; i++ {
		if a.Gaussian(0, 1) != b.Gaussian(0, 1) {
			t.Fatal("gaussian streams diverged")
		}
	}
}

// TestGeomMatchesGeometric drives the table-based sampler and the exact
// logarithm evaluation from identical RNG states over a range of success
// probabilities and checks every draw agrees bit for bit.
func TestGeomMatchesGeometric(t *testing.T) {
	for _, p := range []float64{0.999, 0.9, 0.7, 0.5, 0.3, 0.25, 0.1, 0.05, 0.01, 1e-3, 1e-6} {
		fast := NewGeom(NewRNG(42), p)
		ref := NewRNG(42)
		for i := 0; i < 200_000; i++ {
			got, want := fast.Next(), ref.Geometric(p)
			if got != want {
				t.Fatalf("p=%g draw %d: Geom.Next=%d Geometric=%d", p, i, got, want)
			}
		}
	}
}

// TestZipfIndexMatchesFullSearch checks the bucket-indexed search returns
// the same rank as an unconstrained binary search over the full table.
func TestZipfIndexMatchesFullSearch(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{1, 0}, {3, 1.1}, {10, 0}, {257, 0.8}, {4096, 1.0}, {10000, 0.5}} {
		z := NewZipf(NewRNG(7), tc.n, tc.s)
		ref := NewRNG(7)
		for i := 0; i < 100_000; i++ {
			got := z.Next()
			u := ref.Float64()
			lo, hi := 0, len(z.cdf)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if z.cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if got != lo {
				t.Fatalf("n=%d s=%g draw %d: indexed=%d full=%d (u=%g)", tc.n, tc.s, i, got, lo, u)
			}
		}
	}
}
