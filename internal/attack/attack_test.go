package attack

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hotleakage/internal/bpred"
	"hotleakage/internal/cache"
	"hotleakage/internal/cpu"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/tech"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the attack golden fixtures")

// testMachine is the Table 2 L1D/L2/memory hierarchy (sim.DefaultMachine's
// cache slice), built directly so the package tests do not import sim.
func testMachine() Machine {
	return Machine{
		Tech: tech.MustByNode(tech.Node70),
		L1D: cache.Config{
			Name: "dl1", SizeBytes: 64 * 1024, LineBytes: 64,
			Assoc: 2, HitLatency: 2,
		},
		L2: cache.Config{
			Name: "ul2", SizeBytes: 2 * 1024 * 1024, LineBytes: 64,
			Assoc: 2, HitLatency: 11, Banks: 8,
		},
		MemLatency: 100,
	}
}

func mustScenario(t *testing.T, name string) Scenario {
	t.Helper()
	sc, ok := ByName(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	return sc
}

func mustRun(t *testing.T, sc Scenario, tq leakctl.Technique, interval uint64) Result {
	t.Helper()
	res, err := Run(testMachine(), sc, leakctl.DefaultParams(tq, interval))
	if err != nil {
		t.Fatalf("Run(%s, %v/%d): %v", sc.Name, tq, interval, err)
	}
	return res
}

// The seeded generator and the cycle-accurate hardware make a Result
// bit-reproducible: two runs of the same (machine, scenario, params) triple
// agree on every field, floats included. Run under -race in CI, this also
// proves the runner shares no hidden mutable state.
func TestRunDeterministic(t *testing.T) {
	sc := mustScenario(t, "ws-select")
	a := mustRun(t, sc, leakctl.TechDrowsy, 4096)
	b := mustRun(t, sc, leakctl.TechDrowsy, 4096)
	if a != b {
		t.Errorf("repeated runs differ:\n a=%+v\n b=%+v", a, b)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("JSON encodings differ:\n %s\n %s", ja, jb)
	}
}

// The paper's state-preserving / non-state-preserving distinction as an
// information-flow result: with the decay interval inside the idle gap,
// drowsy decay keeps evictions distinguishable (slow hit vs miss) while
// gated-Vss decay turns every probe into a miss, masking the victim.
func TestDrowsyLeaksWhereGatedMasks(t *testing.T) {
	sc := mustScenario(t, "ws-select")
	const interval = 4096 // < IdleGap 8192: every surviving line decays before the probe
	none := mustRun(t, sc, leakctl.TechNone, 0)
	drowsy := mustRun(t, sc, leakctl.TechDrowsy, interval)
	gated := mustRun(t, sc, leakctl.TechGated, interval)

	if none.LeakageBits() < 0.5 {
		t.Errorf("uncontrolled cache leaks %.3f bits; prime+probe should see the working set", none.LeakageBits())
	}
	if drowsy.LeakageBits() < 0.5 {
		t.Errorf("drowsy leaks only %.3f bits; slow hits should keep evictions visible", drowsy.LeakageBits())
	}
	if gap := drowsy.LeakageBits() - gated.LeakageBits(); gap < 0.25 {
		t.Errorf("drowsy %.3f bits vs gated %.3f bits (gap %.3f): gated decay should mask the channel",
			drowsy.LeakageBits(), gated.LeakageBits(), gap)
	}
	if drowsy.SlowHits == 0 {
		t.Error("drowsy run saw no slow hits; decay never engaged inside the idle gap")
	}
	if gated.SlowHits != 0 {
		t.Errorf("gated run classified %d slow hits; gated standby must read as a miss", gated.SlowHits)
	}
}

// A gated interval longer than every idle period never decays a primed
// line, so gated degenerates to the uncontrolled channel — decay only masks
// when it actually fires.
func TestLongGatedIntervalStillLeaks(t *testing.T) {
	sc := mustScenario(t, "smoke")
	none := mustRun(t, sc, leakctl.TechNone, 0)
	lazy := mustRun(t, sc, leakctl.TechGated, 1<<20)
	if d := none.LeakageBits() - lazy.LeakageBits(); d > 1e-9 || d < -1e-9 {
		t.Errorf("gated@2^20 leaks %.6f bits, uncontrolled %.6f: a never-firing interval must match",
			lazy.LeakageBits(), none.LeakageBits())
	}
}

func TestScenarioRegistry(t *testing.T) {
	if len(Scenarios()) < 2 {
		t.Fatalf("want at least 2 registered scenarios, have %d", len(Scenarios()))
	}
	for _, sc := range Scenarios() {
		if err := sc.Validate(); err != nil {
			t.Errorf("registered scenario invalid: %v", err)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown scenario")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	base := mustScenario(t, "smoke")
	bad := []func(*Scenario){
		func(s *Scenario) { s.Name = "" },
		func(s *Scenario) { s.Secrets = 1 },
		func(s *Scenario) { s.TargetSets = 0 },
		func(s *Scenario) { s.SecretSets = 0 },
		func(s *Scenario) { s.SecretSets = s.TargetSets + 1 },
		func(s *Scenario) { s.VictimRing.Lines = 0 },
		func(s *Scenario) { s.VictimRing.P = 0 },
		func(s *Scenario) { s.VictimRing.P = 1.5 },
		func(s *Scenario) { s.VictimAccesses = 0 },
		func(s *Scenario) { s.IdleGap = 0 },
		func(s *Scenario) { s.Trials = 0 },
	}
	for i, mut := range bad {
		sc := base
		mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("mutation %d: bad scenario validated", i)
		}
	}
	sc := base
	sc.SetBase = 1 << 20
	if _, err := Run(testMachine(), sc, leakctl.DefaultParams(leakctl.TechNone, 0)); err == nil {
		t.Error("Run accepted a target window beyond the last L1 set")
	}
}

// Golden fixture: one scenario's full metric output pinned bit-for-bit
// (shortest-form float JSON round-trips exactly). Refresh with
// `go test ./internal/attack -run Golden -update-golden`.
func TestGoldenSmokeMetrics(t *testing.T) {
	sc := mustScenario(t, "smoke")
	res := mustRun(t, sc, leakctl.TechDrowsy, 2048)
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", "smoke-drowsy-2048.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("golden drift in %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// The InstrSource adapter feeds the same reference stream through the
// out-of-order core: a dependence-chained load stream the core can run for
// any instruction budget, hitting the controlled D-cache.
func TestSourceDrivesCore(t *testing.T) {
	m := testMachine()
	sc := mustScenario(t, "smoke")
	src, err := NewSource(sc, m.L1D)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() == 0 {
		t.Fatal("empty source")
	}
	mem := cache.NewMemory(m.Tech, m.MemLatency)
	l2, err := cache.New(m.Tech, m.L2, mem)
	if err != nil {
		t.Fatal(err)
	}
	dl1, err := leakctl.New(m.Tech, m.L1D, leakctl.DefaultParams(leakctl.TechDrowsy, 2048), l2)
	if err != nil {
		t.Fatal(err)
	}
	il1cfg := cache.Config{Name: "il1", SizeBytes: 64 * 1024, LineBytes: 64, Assoc: 2, HitLatency: 1}
	il1, err := cache.New(m.Tech, il1cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.New(cpu.DefaultConfig(), src, bpred.New(bpred.DefaultConfig()), il1, dl1)
	stats := core.Run(20_000)
	if stats.Instructions != 20_000 {
		t.Fatalf("core committed %d/20000 instructions", stats.Instructions)
	}
	if stats.Loads == 0 {
		t.Error("core committed no loads from the attack stream")
	}
	if dl1.Stats.Accesses == 0 {
		t.Error("attack stream never reached the controlled D-cache")
	}
}

// Sources are deterministic too: two adapters over the same scenario emit
// identical streams.
func TestSourceDeterministic(t *testing.T) {
	m := testMachine()
	sc := mustScenario(t, "ws-select")
	a, err := NewSource(sc, m.L1D)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSource(sc, m.L1D)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.refs {
		if a.refs[i] != b.refs[i] {
			t.Fatalf("ref %d differs: %#x vs %#x", i, a.refs[i], b.refs[i])
		}
	}
}
