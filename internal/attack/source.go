package attack

import (
	"fmt"

	"hotleakage/internal/cache"
	"hotleakage/internal/workload"
)

// gapOps is the length of the dependent ALU chain a Source emits in place
// of the scenario's idle gap. The serialized port-level runner (Run) jumps
// the clock by the exact IdleGap and is the metric path; the Source is
// stream-compatibility glue for the cores, where a literal multi-thousand-
// cycle idle would just be a very long dependence chain anyway.
const gapOps = 64

// Source adapts a scenario's reference stream into the instruction form the
// out-of-order cores consume (cpu.InstrSource): every memory reference
// becomes a load chained onto the previous instruction (Src1 = 1, the
// pointer-chasing idiom that serializes an attacker's probes), and idle
// gaps become dependent ALU chains. The stream is cyclic — one full pass
// over the scenario's trials, then again — so a core can run any
// instruction budget without the source running dry.
type Source struct {
	refs []uint64 // one full pass; 0 is the idle-gap marker
	pos  int
	gap  int // remaining gap ops to emit
	pc   uint64
}

var _ interface{ Next(*workload.Instr) } = (*Source)(nil)

// NewSource generates the scenario's full reference pass up front (the
// stream never depends on observed latency, so it is precomputable) for the
// given L1 geometry.
func NewSource(sc Scenario, l1d cache.Config) (*Source, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	g, err := geometryOf(l1d)
	if err != nil {
		return nil, err
	}
	if sc.SetBase+sc.TargetSets > g.sets {
		return nil, fmt.Errorf("attack: %s: target window exceeds %d L1 sets", sc.Name, g.sets)
	}
	tr := newTracer(sc, g)
	perTrial := sc.TargetSets*g.assoc*2 + sc.VictimAccesses + 1
	refs := make([]uint64, 0, sc.Trials*sc.Secrets*perTrial)
	victim := make([]uint64, 0, sc.VictimAccesses)
	for trial := 0; trial < sc.Trials; trial++ {
		for secret := 0; secret < sc.Secrets; secret++ {
			for t := 0; t < sc.TargetSets; t++ {
				for w := 0; w < g.assoc; w++ {
					refs = append(refs, g.attackerAddr(sc.SetBase+t, w))
				}
			}
			refs = append(refs, tr.victimRefs(secret, victim[:0])...)
			refs = append(refs, 0) // idle gap
			for t := 0; t < sc.TargetSets; t++ {
				for w := 0; w < g.assoc; w++ {
					refs = append(refs, g.attackerAddr(sc.SetBase+t, w))
				}
			}
		}
	}
	return &Source{refs: refs, pc: 0x1000}, nil
}

// Len returns the number of references in one full pass (idle-gap markers
// included).
func (s *Source) Len() int { return len(s.refs) }

// Next implements cpu.InstrSource.
func (s *Source) Next(ins *workload.Instr) {
	*ins = workload.Instr{PC: s.pc, Src1: 1}
	s.pc += 4
	if s.gap > 0 {
		s.gap--
		ins.Op = workload.OpIntALU
		return
	}
	addr := s.refs[s.pos]
	s.pos = (s.pos + 1) % len(s.refs)
	if addr == 0 {
		s.gap = gapOps - 1
		ins.Op = workload.OpIntALU
		return
	}
	ins.Op = workload.OpLoad
	ins.Addr = addr
}
