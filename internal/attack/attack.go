// Package attack implements the deterministic adversarial workload family
// behind the energy-vs-security frontier: a victim whose memory references
// depend on a secret, interleaved with a prime+probe attacker sweeping a
// window of cache sets in the leakage-controlled L1 D-cache.
//
// The attacker primes every way of each target set, lets the victim run a
// burst of secret-dependent accesses (drawn round-robin from per-set line
// rings, the same controlled-gap reuse machinery the workload generators
// use), idles across the decay window, then probes the primed lines one at
// a time and classifies each probe's latency:
//
//   - fast hit: the line stayed active — nothing happened to it;
//   - slow hit: state-preserving control (drowsy/RBB) decayed the line but
//     kept its contents — distinguishable from an eviction, so decay adds
//     no noise to the channel;
//   - miss: the line is gone. Under gated-Vss a decayed line and a
//     victim-evicted line both land here at identical latency, which is the
//     paper's non-state-preserving distinction recast as information flow:
//     decay noise masks the victim's evictions.
//
// One trial's per-set class counts canonicalize into an observation symbol;
// package channel turns the empirical (secret, observation) distribution
// into guessing entropy, min-entropy leakage and a capacity estimate.
//
// Probes are serialized — each access's latency advances the clock before
// the next issues — modelling the pointer-chasing measurement loops real
// prime+probe attackers use to make per-access latency architecturally
// observable; the out-of-order core would overlap the misses and blur the
// channel. NewSource adapts the same reference stream into the
// dependence-chained instruction form the cores consume.
//
// Everything is deterministic for a given scenario: the victim's choices
// come from a seeded stats.RNG and the hardware is cycle-accurate, so a
// Result is bit-reproducible across hosts (the content-addressed store
// relies on this).
package attack

import (
	"fmt"
	"sort"

	"hotleakage/internal/cache"
	"hotleakage/internal/channel"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/stats"
	"hotleakage/internal/tech"
	"hotleakage/internal/workload"
)

// Address-space layout. The attacker and victim own disjoint tag regions:
// victim lines live in the same dataBase region the workload generators
// allocate from; attacker lines live above it, so a victim line can evict
// an attacker line (that is the channel) but never tag-match one.
const (
	lineBytes  = 64
	victimBase = 0x4000_0000 // workload.dataBase
	attackBase = 0x8000_0000
)

// Scenario parameterizes one adversarial workload. All fields are part of
// the content-address identity of a result, so adding or changing a field
// can never alias previously stored results.
type Scenario struct {
	Name string `json:"name"`
	// Secrets is the size of the secret space; the harness runs Trials
	// trials for each secret value in round-robin order.
	Secrets int `json:"secrets"`
	// TargetSets consecutive cache sets starting at SetBase are primed and
	// probed each trial.
	TargetSets int `json:"target_sets"`
	SetBase    int `json:"set_base"`
	// SecretSets is how many target sets the victim's secret selects
	// (secret s touches sets {(s*SecretSets+j) mod TargetSets}). Ignored
	// when Occupancy is set, where the secret is instead the *number* of
	// target sets the victim occupies: floor(s*TargetSets/(Secrets-1)).
	SecretSets int  `json:"secret_sets"`
	Occupancy  bool `json:"occupancy,omitempty"`
	// VictimRing shapes the victim's reference stream over its selected
	// sets: each target set owns a ring of Lines cache lines visited
	// round-robin (the workload generators' controlled-gap reuse tier), and
	// each victim access goes to a secret-selected set with probability P —
	// the remainder is noise into a uniformly random target set.
	VictimRing workload.Ring `json:"victim_ring"`
	// VictimAccesses is the victim's burst length per trial.
	VictimAccesses int `json:"victim_accesses"`
	// IdleGap is the idle window in cycles between the victim burst and the
	// probe sweep — the window the decay machinery acts in.
	IdleGap uint64 `json:"idle_gap"`
	// Trials is the number of measurement rounds per secret value.
	Trials int `json:"trials"`
	Seed   uint64 `json:"seed"`
}

// Validate rejects degenerate scenarios with descriptive errors.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("attack: scenario has no name")
	}
	if sc.Secrets < 2 {
		return fmt.Errorf("attack: %s: need at least 2 secrets, have %d", sc.Name, sc.Secrets)
	}
	if sc.TargetSets < 1 || sc.SetBase < 0 {
		return fmt.Errorf("attack: %s: bad target window (%d sets at base %d)", sc.Name, sc.TargetSets, sc.SetBase)
	}
	if !sc.Occupancy && (sc.SecretSets < 1 || sc.SecretSets > sc.TargetSets) {
		return fmt.Errorf("attack: %s: secret_sets %d outside [1, %d]", sc.Name, sc.SecretSets, sc.TargetSets)
	}
	if sc.VictimRing.Lines < 1 || sc.VictimRing.P <= 0 || sc.VictimRing.P > 1 {
		return fmt.Errorf("attack: %s: bad victim ring {%d lines, p=%g}", sc.Name, sc.VictimRing.Lines, sc.VictimRing.P)
	}
	if sc.VictimAccesses < 1 {
		return fmt.Errorf("attack: %s: victim burst must be positive", sc.Name)
	}
	if sc.IdleGap == 0 {
		return fmt.Errorf("attack: %s: idle gap must be positive", sc.Name)
	}
	if sc.Trials < 1 {
		return fmt.Errorf("attack: %s: trials must be positive", sc.Name)
	}
	return nil
}

// scenarios is the registry, in presentation order.
var scenarios = []Scenario{
	{
		// Which part of the window does the victim work in? Secret selects
		// a 2-set slice of a 16-set window — the classic working-set
		// location channel.
		Name: "ws-select", Secrets: 8, TargetSets: 16, SetBase: 64,
		SecretSets: 2, VictimRing: workload.Ring{Lines: 2, P: 0.85},
		VictimAccesses: 24, IdleGap: 8192, Trials: 40, Seed: 0x5ec1,
	},
	{
		// How much of the window does the victim occupy? Secret is the
		// victim's footprint size — an occupancy channel.
		Name: "occupancy", Secrets: 4, TargetSets: 16, SetBase: 128,
		Occupancy: true, SecretSets: 1, VictimRing: workload.Ring{Lines: 1, P: 0.9},
		VictimAccesses: 24, IdleGap: 8192, Trials: 40, Seed: 0x0cc1,
	},
	{
		// Tiny variant of ws-select for smoke tests and golden fixtures.
		Name: "smoke", Secrets: 4, TargetSets: 8, SetBase: 32,
		SecretSets: 2, VictimRing: workload.Ring{Lines: 1, P: 0.9},
		VictimAccesses: 12, IdleGap: 4096, Trials: 12, Seed: 0x0051,
	},
}

// Scenarios returns the registered scenarios in presentation order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// ByName looks a registered scenario up by name.
func ByName(name string) (Scenario, bool) {
	for _, sc := range scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, len(scenarios))
	for i, sc := range scenarios {
		out[i] = sc.Name
	}
	sort.Strings(out)
	return out
}

// Machine is the hardware view an attack runs against: the controlled L1
// D-cache backed by the L2 and memory, exactly as the cores wire them. The
// package deliberately does not import sim — sim glues its MachineConfig
// down to this view.
type Machine struct {
	Tech       *tech.Params
	L1D        cache.Config
	L2         cache.Config
	MemLatency int
}

// Result is one attack run's outcome: raw probe-class counts plus the
// channel metrics. Every field is deterministic for a (Machine, Scenario,
// Params) triple; JSON round-trips bit-identically (shortest-form float
// encoding), so a stored Result replays exactly.
type Result struct {
	Scenario  string `json:"scenario"`
	Technique string `json:"technique"`
	Interval  uint64 `json:"interval"`
	Secrets   int    `json:"secrets"`
	Trials    int    `json:"trials"` // per secret
	Probes    uint64 `json:"probes"`
	FastHits  uint64 `json:"fast_hits"`
	SlowHits  uint64 `json:"slow_hits"`
	Misses    uint64 `json:"misses"`
	// Observations is the number of distinct observation symbols seen.
	Observations int `json:"observations"`
	channel.Metrics
}

// LeakageBits is the headline leakage number figures plot: Smith's
// min-entropy leakage in bits.
func (r Result) LeakageBits() float64 { return r.MinEntropyLeakageBits }

// geometry is the L1 set arithmetic an attack needs.
type geometry struct {
	sets  int
	assoc int
}

func geometryOf(cfg cache.Config) (geometry, error) {
	if cfg.LineBytes != lineBytes {
		return geometry{}, fmt.Errorf("attack: L1 line size %dB unsupported (need %d)", cfg.LineBytes, lineBytes)
	}
	return geometry{sets: cfg.Sets(), assoc: cfg.Assoc}, nil
}

// attackerAddr returns the attacker's priming address for (set, way):
// distinct tags per way, all mapping to the target set.
func (g geometry) attackerAddr(set, way int) uint64 {
	return attackBase + uint64(way*g.sets+set)*lineBytes
}

// victimAddr returns victim ring line k of the given set.
func (g geometry) victimAddr(set, k int) uint64 {
	return victimBase + uint64(k*g.sets+set)*lineBytes
}

// tracer generates the scenario's reference stream. The victim's choices
// depend only on the RNG and the ring cursors — never on observed latency —
// so the same stream drives both the serialized port-level runner (Run) and
// the instruction-stream adapter (NewSource).
type tracer struct {
	sc   Scenario
	g    geometry
	rng  *stats.RNG
	cur  []int // per-target-set victim ring cursor (round-robin)
}

func newTracer(sc Scenario, g geometry) *tracer {
	return &tracer{sc: sc, g: g, rng: stats.NewRNG(sc.Seed ^ 0xa77acc), cur: make([]int, sc.TargetSets)}
}

// secretSets returns the target-set indexes (relative to SetBase) the
// victim's secret selects.
func (tr *tracer) secretSets(secret int) []int {
	sc := tr.sc
	if sc.Occupancy {
		n := secret * sc.TargetSets / (sc.Secrets - 1)
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, sc.SecretSets)
	for j := range out {
		out[j] = (secret*sc.SecretSets + j) % sc.TargetSets
	}
	return out
}

// victimRefs appends one trial's victim burst for the given secret: each
// access goes to a secret-selected set with probability VictimRing.P
// (round-robin across the selection) or to a uniformly random target set
// (noise), and within the set takes the ring's next line.
func (tr *tracer) victimRefs(secret int, refs []uint64) []uint64 {
	sel := tr.secretSets(secret)
	next := 0
	for i := 0; i < tr.sc.VictimAccesses; i++ {
		var t int
		if len(sel) > 0 && tr.rng.Bool(tr.sc.VictimRing.P) {
			t = sel[next%len(sel)]
			next++
		} else {
			t = tr.rng.Intn(tr.sc.TargetSets)
		}
		k := tr.cur[t]
		tr.cur[t] = (k + 1) % tr.sc.VictimRing.Lines
		refs = append(refs, tr.g.victimAddr(tr.sc.SetBase+t, k))
	}
	return refs
}

// classify maps one probe's latency to its class. The boundaries are exact:
// a fast hit costs exactly HitLatency; a state-preserving slow hit costs
// exactly HitLatency+WakeLatency; everything else went to the next level
// (HitLatency + optional tag-wake stall + L2, strictly larger than both).
func classify(lat int, cfg cache.Config, p leakctl.Params) channel.Class {
	switch {
	case lat == cfg.HitLatency:
		return channel.ClassFastHit
	case p.Technique.StatePreserving() && p.WakeLatency > 0 && lat == cfg.HitLatency+p.WakeLatency:
		return channel.ClassSlowHit
	default:
		return channel.ClassMiss
	}
}

// Run executes the scenario against the given machine and control
// parameters and returns the channel metrics. The probe loop is serialized
// at the D-cache port: each access's latency advances the clock before the
// next access issues (see the package comment for why).
func Run(m Machine, sc Scenario, params leakctl.Params) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	g, err := geometryOf(m.L1D)
	if err != nil {
		return Result{}, err
	}
	if sc.SetBase+sc.TargetSets > g.sets {
		return Result{}, fmt.Errorf("attack: %s: target window [%d,%d) exceeds %d L1 sets",
			sc.Name, sc.SetBase, sc.SetBase+sc.TargetSets, g.sets)
	}
	mem := cache.NewMemory(m.Tech, m.MemLatency)
	l2, err := cache.New(m.Tech, m.L2, mem)
	if err != nil {
		return Result{}, err
	}
	dl1, err := leakctl.New(m.Tech, m.L1D, params, l2)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Scenario:  sc.Name,
		Technique: params.Technique.String(),
		Interval:  params.Interval,
		Secrets:   sc.Secrets,
		Trials:    sc.Trials,
	}
	tr := newTracer(sc, g)
	joint := channel.NewJoint(sc.Secrets)
	obsSym := make([]byte, sc.TargetSets)
	victim := make([]uint64, 0, sc.VictimAccesses)
	cycle := uint64(1)

	access := func(addr uint64) int {
		lat := dl1.Access(addr, false, cycle)
		cycle += uint64(lat)
		return lat
	}

	for trial := 0; trial < sc.Trials; trial++ {
		for secret := 0; secret < sc.Secrets; secret++ {
			// Prime: fill every way of every target set with attacker lines.
			for t := 0; t < sc.TargetSets; t++ {
				for w := 0; w < g.assoc; w++ {
					access(g.attackerAddr(sc.SetBase+t, w))
				}
			}
			// Victim: a secret-dependent burst over the ring pools.
			victim = tr.victimRefs(secret, victim[:0])
			for _, addr := range victim {
				access(addr)
			}
			// Idle: the decay window. The decay machine self-advances past
			// the skipped rollovers on the next access.
			cycle += sc.IdleGap
			// Probe: re-touch the primed lines in prime order, serialized,
			// and canonicalize each set's class counts into one symbol.
			for t := 0; t < sc.TargetSets; t++ {
				misses, slow := 0, 0
				for w := 0; w < g.assoc; w++ {
					lat := access(g.attackerAddr(sc.SetBase+t, w))
					res.Probes++
					switch classify(lat, m.L1D, params) {
					case channel.ClassFastHit:
						res.FastHits++
					case channel.ClassSlowHit:
						res.SlowHits++
						slow++
					default:
						res.Misses++
						misses++
					}
				}
				obsSym[t] = 'A' + byte(misses*(g.assoc+1)+slow)
			}
			joint.Observe(secret, string(obsSym))
			obsChannelObserved.Add(1)
		}
	}
	dl1.Finish(cycle)

	res.Observations = joint.Observations()
	res.Metrics = joint.Metrics()
	obsAttackRuns.Add(1)
	obsAttackTrials.Add(uint64(sc.Trials * sc.Secrets))
	obsAttackProbes.Add(res.Probes)
	obsChannelEstimates.Add(1)
	return res, nil
}
