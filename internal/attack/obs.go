package attack

import "hotleakage/internal/obs"

// Counters are registered eagerly at package init so they appear on the
// Prometheus endpoint (value 0) even before the first attack runs — the obs
// audit test asserts this. The channel_* counters live here rather than in
// package channel to keep that package free of non-stdlib imports.
var (
	obsAttackRuns       = obs.Default.Counter(obs.MetricAttackRuns)
	obsAttackTrials     = obs.Default.Counter(obs.MetricAttackTrials)
	obsAttackProbes     = obs.Default.Counter(obs.MetricAttackProbes)
	obsChannelObserved  = obs.Default.Counter(obs.MetricChannelObserved)
	obsChannelEstimates = obs.Default.Counter(obs.MetricChannelEstimates)
)
