package decay

import "testing"

// TestPromoteAtSelectorSaturation pins the selector ceiling: Promote at
// sel=3 is a no-op for both the selector and the Promotions stat.
func TestPromoteAtSelectorSaturation(t *testing.T) {
	m := NewPerLine(2, 1024)
	for k := 0; k < 3; k++ {
		m.Promote(0)
	}
	if m.Sel(0) != selMax || m.Promotions != 3 {
		t.Fatalf("sel=%d promotions=%d after 3 promotes, want 3/3", m.Sel(0), m.Promotions)
	}
	m.Promote(0)
	if m.Sel(0) != selMax || m.Promotions != 3 {
		t.Fatalf("saturated promote moved state: sel=%d promotions=%d", m.Sel(0), m.Promotions)
	}
	// Floor side: Demote at sel=0 is equally inert.
	m.Demote(1)
	if m.Sel(1) != 0 || m.Demotions != 0 {
		t.Fatalf("floor demote moved state: sel=%d demotions=%d", m.Sel(1), m.Demotions)
	}
}

// TestLineThresholdAtSaturation pins the longest per-line interval: at
// sel=3 the threshold is 4<<6 = 256 rollovers, so an idle line expires at
// exactly the 257th rollover and not one earlier.
func TestLineThresholdAtSaturation(t *testing.T) {
	m := NewPerLine(1, 1024)
	for k := 0; k < 3; k++ {
		m.Promote(0)
	}
	if th := m.lineThreshold(0); th != 256 {
		t.Fatalf("lineThreshold at sel=3 = %d, want 256", th)
	}
	q := uint64(256) // 1024/4
	fired := 0
	m.Advance(256*q, func(int) { fired++ })
	if fired != 0 {
		t.Fatalf("line expired after %d rollovers, before the 257-rollover threshold", 256)
	}
	m.Advance(257*q, func(int) { fired++ })
	if fired != 1 {
		t.Fatalf("fired=%d at the 257th rollover, want 1", fired)
	}
}

// TestRolloverExactlyAtNextRoll pins the boundary comparison: a cycle one
// short of NextRollover does nothing; the exact cycle rolls.
func TestRolloverExactlyAtNextRoll(t *testing.T) {
	m := New(1, 4096, PolicyNoAccess)
	nr := m.NextRollover()
	m.Advance(nr-1, func(int) {})
	if m.Rollovers != 0 {
		t.Fatalf("rolled %d at cycle nextRoll-1", m.Rollovers)
	}
	m.Advance(nr, func(int) {})
	if m.Rollovers != 1 {
		t.Fatalf("Rollovers=%d at cycle nextRoll, want 1", m.Rollovers)
	}
	if m.NextRollover() != nr+1024 {
		t.Fatalf("NextRollover=%d after roll, want %d", m.NextRollover(), nr+1024)
	}
}

// TestSetIntervalPreservesCounters pins the mid-run re-set contract the
// adaptive schemes rely on: local counters keep their materialized values,
// only the rollover schedule is rebuilt from the current cycle.
func TestSetIntervalPreservesCounters(t *testing.T) {
	m := New(2, 4096, PolicyNoAccess)
	m.Advance(2*1024, func(int) {}) // two rollovers: counters at 2
	m.Touch(1)                      // line 1 back to 0
	if m.Counter(0) != 2 || m.Counter(1) != 0 {
		t.Fatalf("pre-set counters = %d,%d, want 2,0", m.Counter(0), m.Counter(1))
	}
	m.SetInterval(1024, 2048)
	if m.Counter(0) != 2 || m.Counter(1) != 0 {
		t.Fatalf("SetInterval changed counters: %d,%d", m.Counter(0), m.Counter(1))
	}
	if m.NextRollover() != 2048+256 {
		t.Fatalf("NextRollover=%d, want rescheduled 2304", m.NextRollover())
	}
	// Line 0 needs one bump to saturate (2->3) then one rollover to fire:
	// under the new quarter of 256 that is cycle 2048+2*256.
	var fired []int
	m.Advance(2048+2*256, func(i int) { fired = append(fired, i) })
	if len(fired) != 1 || fired[0] != 0 {
		t.Fatalf("fired=%v after shrink, want [0]", fired)
	}
}

// TestDemotePullsExpiryEarlier exercises the one wheel path where an entry
// must move to an earlier bucket: a demotion shrinking the threshold below
// the line's accumulated count fires on the very next rollover.
func TestDemotePullsExpiryEarlier(t *testing.T) {
	m := NewPerLine(1, 1024)
	m.Promote(0) // sel=1, threshold 16
	q := uint64(256)
	m.Advance(8*q, func(int) { t.Fatal("premature expiry") }) // count = 8 of 16
	m.Demote(0)                                               // threshold back to 4; 8 >= 4
	fired := 0
	m.Advance(9*q, func(int) { fired++ })
	if fired != 1 {
		t.Fatalf("fired=%d on the rollover after a saturating demote, want 1", fired)
	}
}
