package decay

import (
	"math/rand"
	"testing"
)

// eagerMachine is the pre-lazy decay implementation, kept verbatim as the
// equivalence oracle: a literal O(lines) sweep per rollover. Its expire
// callback re-fires every rollover for a saturated line; firstFires filters
// that stream down to transition events (tracked from the oracle's own
// concrete counters, not the lazy machine's logic) so the two
// implementations' callback streams are comparable.
type eagerMachine struct {
	interval uint64
	quarter  uint64
	nextRoll uint64
	rolls    uint64
	policy   Policy
	counters []uint8

	perLine    bool
	sel        []uint8
	rollCounts []uint16

	rollovers   uint64
	localBumps  uint64
	localResets uint64
	expiries    uint64
	promotions  uint64
	demotions   uint64

	fired []bool // per line: expire reported and not reset below threshold since
}

func newEager(lines int, interval uint64, policy Policy) *eagerMachine {
	m := &eagerMachine{policy: policy, counters: make([]uint8, lines), fired: make([]bool, lines)}
	m.setInterval(interval, 0)
	return m
}

func newEagerPerLine(lines int, base uint64) *eagerMachine {
	m := newEager(lines, base, PolicyNoAccess)
	m.perLine = true
	m.sel = make([]uint8, lines)
	m.rollCounts = make([]uint16, lines)
	return m
}

func (m *eagerMachine) lineThreshold(i int) uint16 { return uint16(4) << (2 * m.sel[i]) }

func (m *eagerMachine) promote(i int) {
	if !m.perLine || m.sel[i] >= selMax {
		return
	}
	m.sel[i]++
	m.promotions++
	if m.fired[i] && m.rollCounts[i] < m.lineThreshold(i) {
		m.fired[i] = false // back below threshold: next saturation is a new transition
	}
}

func (m *eagerMachine) demote(i int) {
	if !m.perLine || m.sel[i] == 0 {
		return
	}
	m.sel[i]--
	m.demotions++
}

func (m *eagerMachine) setInterval(interval, cycle uint64) {
	m.interval = interval
	if interval == 0 {
		m.quarter = 0
		m.nextRoll = ^uint64(0)
		return
	}
	q := interval / 4
	if q == 0 {
		q = 1
	}
	m.quarter = q
	m.nextRoll = cycle + q
	m.rolls = 0
}

func (m *eagerMachine) touch(i int) {
	if m.interval == 0 || m.policy == PolicySimple {
		return
	}
	if m.perLine {
		if m.rollCounts[i] != 0 {
			m.rollCounts[i] = 0
			m.localResets++
		}
		m.fired[i] = false
		return
	}
	if m.counters[i] != 0 {
		m.counters[i] = 0
		m.localResets++
	}
	m.fired[i] = false
}

// advance is the eager sweep; it returns every callback invocation in order
// and, separately, just the transition (first-fire) events.
func (m *eagerMachine) advance(cycle uint64) (all, first []int) {
	if m.interval == 0 {
		return nil, nil
	}
	expire := func(i int) {
		all = append(all, i)
		if !m.fired[i] {
			m.fired[i] = true
			first = append(first, i)
		}
	}
	for cycle >= m.nextRoll {
		m.rollovers++
		m.rolls++
		switch {
		case m.perLine:
			for i := range m.rollCounts {
				if th := m.lineThreshold(i); m.rollCounts[i] >= th {
					m.expiries++
					expire(i)
					continue
				}
				m.rollCounts[i]++
				m.localBumps++
			}
		case m.policy == PolicyNoAccess:
			for i := range m.counters {
				if m.counters[i] >= localMax {
					m.expiries++
					expire(i)
					continue
				}
				m.counters[i]++
				m.localBumps++
			}
		case m.policy == PolicySimple:
			if m.rolls%4 == 0 {
				for i := range m.counters {
					m.expiries++
					expire(i)
				}
			}
		}
		m.nextRoll += m.quarter
	}
	return all, first
}

func (m *eagerMachine) counter(i int) uint8 {
	if m.perLine || m.policy == PolicySimple {
		return 0
	}
	return m.counters[i]
}

// checkState compares every observable the lazy machine exposes against the
// oracle after each operation.
func checkState(t *testing.T, step int, lazy *Machine, ref *eagerMachine, lines int) {
	t.Helper()
	if lazy.Rollovers != ref.rollovers || lazy.LocalBumps != ref.localBumps ||
		lazy.LocalResets != ref.localResets || lazy.Expiries != ref.expiries ||
		lazy.Promotions != ref.promotions || lazy.Demotions != ref.demotions {
		t.Fatalf("step %d: stats diverged\nlazy:  roll=%d bump=%d reset=%d exp=%d prom=%d dem=%d\neager: roll=%d bump=%d reset=%d exp=%d prom=%d dem=%d",
			step,
			lazy.Rollovers, lazy.LocalBumps, lazy.LocalResets, lazy.Expiries, lazy.Promotions, lazy.Demotions,
			ref.rollovers, ref.localBumps, ref.localResets, ref.expiries, ref.promotions, ref.demotions)
	}
	if lazy.NextRollover() != ref.nextRoll {
		t.Fatalf("step %d: NextRollover lazy=%d eager=%d", step, lazy.NextRollover(), ref.nextRoll)
	}
	for i := 0; i < lines; i++ {
		if lazy.Counter(i) != ref.counter(i) {
			t.Fatalf("step %d: Counter(%d) lazy=%d eager=%d", step, i, lazy.Counter(i), ref.counter(i))
		}
		if ref.perLine && lazy.Sel(i) != ref.sel[i] {
			t.Fatalf("step %d: Sel(%d) lazy=%d eager=%d", step, i, lazy.Sel(i), ref.sel[i])
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLazyEagerEquivalence drives the lazy machine and the eager oracle
// through identical randomized operation sequences — advances (including
// multi-rollover jumps and exact-boundary landings), touches, promotions,
// demotions and mid-run interval re-sets — across all three modes, and
// requires identical counters, stats, rollover schedules and expiry streams
// (transition events, in the same ascending order) at every step.
func TestLazyEagerEquivalence(t *testing.T) {
	type mode int
	const (
		modeNoAccess mode = iota
		modeSimple
		modePerLine
	)
	intervals := []uint64{4, 6, 64, 1024, 4096}
	for _, md := range []mode{modeNoAccess, modeSimple, modePerLine} {
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed*997 + int64(md)))
			lines := 1 + rng.Intn(33)
			iv := intervals[rng.Intn(len(intervals))]
			var lazy *Machine
			var ref *eagerMachine
			switch md {
			case modeNoAccess:
				lazy, ref = New(lines, iv, PolicyNoAccess), newEager(lines, iv, PolicyNoAccess)
			case modeSimple:
				lazy, ref = New(lines, iv, PolicySimple), newEager(lines, iv, PolicySimple)
			case modePerLine:
				lazy, ref = NewPerLine(lines, iv), newEagerPerLine(lines, iv)
			}
			cycle := uint64(0)
			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // advance, sometimes exactly onto the boundary
					if rng.Intn(3) == 0 && lazy.NextRollover() != ^uint64(0) {
						cycle = lazy.NextRollover()
					} else {
						q := lazy.Interval() / 4
						if q == 0 {
							q = 64
						}
						cycle += rng.Uint64() % (3*q + 2)
					}
					var lazyFires []int
					lazy.Advance(cycle, func(i int) { lazyFires = append(lazyFires, i) })
					allFires, firstFires := ref.advance(cycle)
					want := firstFires
					if md == modeSimple {
						want = allFires // blanket policy: identical raw streams
					}
					if !sameInts(lazyFires, want) {
						t.Fatalf("mode %d seed %d step %d: fire stream diverged at cycle %d\nlazy:  %v\neager: %v",
							md, seed, step, cycle, lazyFires, want)
					}
				case op < 7:
					i := rng.Intn(lines)
					lazy.Touch(i)
					ref.touch(i)
				case op < 8 && md == modePerLine:
					i := rng.Intn(lines)
					lazy.Promote(i)
					ref.promote(i)
				case op < 9 && md == modePerLine:
					i := rng.Intn(lines)
					lazy.Demote(i)
					ref.demote(i)
				case op >= 9:
					niv := intervals[rng.Intn(len(intervals))]
					lazy.SetInterval(niv, cycle)
					ref.setInterval(niv, cycle)
				}
				checkState(t, step, lazy, ref, lines)
			}
		}
	}
}
