package decay

import "testing"

func TestPerLineStartsAtBaseInterval(t *testing.T) {
	m := NewPerLine(2, 1024)
	if !m.PerLine() {
		t.Fatal("PerLine() false")
	}
	expired := map[int]bool{}
	// Base interval 1024: untouched lines expire after 4 quarter-rolls
	// plus one reporting roll.
	m.Advance(5*256+1, func(i int) { expired[i] = true })
	if !expired[0] || !expired[1] {
		t.Fatalf("lines did not expire at base interval: %v", expired)
	}
}

func TestPromoteLengthensInterval(t *testing.T) {
	m := NewPerLine(1, 1024)
	m.Promote(0) // 4x base
	if m.Sel(0) != 1 {
		t.Fatalf("sel = %d", m.Sel(0))
	}
	expired := false
	// One base interval: must NOT expire (line now needs 4x base idle).
	m.Advance(6*256, func(int) { expired = true })
	if expired {
		t.Fatal("promoted line expired at base interval")
	}
	// 4x base + slack: must expire.
	m.Advance(18*256, func(int) { expired = true })
	if !expired {
		t.Fatal("promoted line never expired at 4x base")
	}
}

func TestDemoteShortensInterval(t *testing.T) {
	m := NewPerLine(1, 1024)
	m.Promote(0)
	m.Demote(0)
	if m.Sel(0) != 0 {
		t.Fatalf("sel after promote+demote = %d", m.Sel(0))
	}
	if m.Promotions != 1 || m.Demotions != 1 {
		t.Fatalf("stats: %d/%d", m.Promotions, m.Demotions)
	}
}

func TestSelectorSaturates(t *testing.T) {
	m := NewPerLine(1, 1024)
	for i := 0; i < 10; i++ {
		m.Promote(0)
	}
	if m.Sel(0) != 3 {
		t.Fatalf("sel = %d, want saturation at 3", m.Sel(0))
	}
	for i := 0; i < 10; i++ {
		m.Demote(0)
	}
	if m.Sel(0) != 0 {
		t.Fatalf("sel = %d, want floor at 0", m.Sel(0))
	}
	if m.Promotions != 3 || m.Demotions != 3 {
		t.Fatalf("saturated moves counted: %d/%d", m.Promotions, m.Demotions)
	}
}

func TestPerLineTouchResets(t *testing.T) {
	m := NewPerLine(1, 1024)
	expired := false
	for cycle := uint64(0); cycle < 20*1024; cycle += 128 {
		m.Advance(cycle, func(int) { expired = true })
		m.Touch(0)
	}
	if expired {
		t.Fatal("touched line expired in per-line mode")
	}
}

func TestPromoteDemoteNoopInGlobalMode(t *testing.T) {
	m := New(2, 1024, PolicyNoAccess)
	m.Promote(0)
	m.Demote(1)
	if m.Promotions != 0 || m.Demotions != 0 {
		t.Fatal("global-mode machine accepted promote/demote")
	}
	if m.Sel(0) != 0 {
		t.Fatal("Sel in global mode")
	}
}

func TestPerLineIndependentLines(t *testing.T) {
	m := NewPerLine(2, 1024)
	m.Promote(0) // line 0: 4x base; line 1: base
	expired := map[int]int{}
	m.Advance(6*256, func(i int) { expired[i]++ })
	if expired[0] != 0 {
		t.Fatal("promoted line expired early")
	}
	if expired[1] == 0 {
		t.Fatal("base line did not expire")
	}
}
