// Package decay implements the cache-decay counter machinery shared by both
// leakage-control techniques (Section 2.3 of the paper): a single global
// counter that counts from zero up to one quarter of the decay interval and
// then starts over, plus a local two-bit counter per cache line. When the
// global counter rolls over, every local counter is incremented; when a
// local counter is incremented past its maximum the line has been idle for
// the full decay interval and is deactivated. Local counters reset to zero
// on every access (the drowsy paper's "noaccess" policy).
//
// The "simple" policy (also from the drowsy paper) ignores access history
// and blankets the whole cache into standby every interval.
//
// # Lazy bookkeeping
//
// The hardware model above is an eager sweep: every rollover walks every
// line. This implementation computes the same counter values, the same
// expiry epochs and the same Stats without the sweep. Each line stores a
// snapshot (snapEpoch, snapCnt) taken at its last state change; its current
// counter is the pure function
//
//	cnt(E) = snapCnt                          if snapCnt >= threshold
//	         min(snapCnt + (E - snapEpoch), threshold)  otherwise
//
// where E is the number of rollovers processed so far (Stats.Rollovers).
// The rollover at which a line first crosses its threshold is therefore
// known the moment the snapshot is taken, and every line files one entry in
// a calendar wheel keyed by that epoch. A rollover pops one wheel bucket:
// entries whose line was touched since filing are re-filed at the line's
// current expiry epoch (a touch can only push expiry later), the rest fire.
// Stats stay exact in aggregate: the machine tracks how many lines are in
// the expired state, so Expiries advances by that count per rollover and
// LocalBumps by lines minus that count — the numbers the sweep would have
// produced.
//
// One behavioral contract is sharpened rather than preserved: the eager
// sweep invoked the expire callback for a saturated line on every rollover,
// relying on the documented idempotence of the callback; the lazy machine
// invokes it exactly once per transition into the expired state (a line
// that is touched or promoted back below threshold and saturates again
// fires again). Within one rollover, callbacks fire in ascending line
// order, exactly like the sweep. The eager implementation is retained in
// the tests as a reference and the equivalence suite drives both across
// policies, per-line adaptive mode and interval boundaries.
package decay

import "sort"

// Policy selects how lines are chosen for deactivation.
type Policy int

// Policies.
const (
	// PolicyNoAccess deactivates a line only after it has been idle for
	// the full decay interval (per-line 2-bit counters).
	PolicyNoAccess Policy = iota
	// PolicySimple deactivates every line each time a full interval
	// elapses, with no per-line history.
	PolicySimple
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == PolicySimple {
		return "simple"
	}
	return "noaccess"
}

// localMax is the saturation value of the per-line 2-bit counter.
const localMax = 3

// selMax is the saturation value of the per-line interval selector in
// per-line adaptive mode (Kaxiras-style: 2 bits choose among four
// exponentially spaced intervals, base << 2*sel).
const selMax = 3

// wheelBuckets sizes the expiry calendar wheel. An entry is filed at most
// threshold+1 epochs ahead (max threshold is 4<<(2*selMax) = 256), so 512
// buckets guarantee a bucket never holds entries for two distinct epochs.
const wheelBuckets = 512

// Machine is the decay-counter state for one cache's lines.
type Machine struct {
	interval uint64
	quarter  uint64
	nextRoll uint64
	rolls    uint64 // rollovers since the interval was last set
	policy   Policy
	lines    int

	// Per-line adaptive mode (Kaxiras et al.): each line owns a 2-bit
	// selector choosing its decay interval from {base, 4*base, 16*base,
	// 64*base}.
	perLine bool
	sel     []uint8

	// Lazy per-line state (unused under PolicySimple, which has no
	// per-line history). snapEpoch/snapCnt are the counter snapshot,
	// expired marks lines whose expire callback has fired and that have
	// not been reset below threshold since, numExpired counts them.
	snapEpoch []uint64
	snapCnt   []uint16
	expired   []bool
	// Calendar wheel of pending expiry epochs: wheelHead[e % wheelBuckets]
	// heads an intrusive singly linked list through wheelNext (-1 ends a
	// chain); filedAt[i] is the epoch line i's entry is filed under. Every
	// non-expired line has exactly one entry, filed no later than its
	// true expiry epoch; expired lines have none.
	wheelHead  []int32
	wheelNext  []int32
	filedAt    []uint64
	fireBuf    []int
	numExpired uint64

	// Stats.
	Rollovers   uint64
	LocalBumps  uint64
	LocalResets uint64
	Expiries    uint64
	Promotions  uint64
	Demotions   uint64
}

// New builds a decay machine for lines cache lines with the given interval
// in cycles. interval == 0 disables decay entirely.
func New(lines int, interval uint64, policy Policy) *Machine {
	m := &Machine{policy: policy, lines: lines}
	m.initLazy()
	m.setInterval(interval, 0)
	return m
}

// NewPerLine builds a per-line adaptive decay machine: every line starts at
// the base interval and is promoted toward longer intervals each time decay
// proves premature (an induced miss / slow hit) and demoted when a decayed
// line dies for real. Only the noaccess policy makes sense here.
func NewPerLine(lines int, baseInterval uint64) *Machine {
	m := &Machine{policy: PolicyNoAccess, lines: lines, perLine: true}
	m.sel = make([]uint8, lines)
	m.initLazy()
	m.setInterval(baseInterval, 0)
	return m
}

// initLazy allocates the lazy per-line state and files every line's initial
// expiry entry. PolicySimple keeps no per-line state.
func (m *Machine) initLazy() {
	if m.policy == PolicySimple {
		return
	}
	n := m.lines
	m.snapEpoch = make([]uint64, n)
	m.snapCnt = make([]uint16, n)
	m.expired = make([]bool, n)
	m.wheelHead = make([]int32, wheelBuckets)
	m.wheelNext = make([]int32, n)
	m.filedAt = make([]uint64, n)
	for b := range m.wheelHead {
		m.wheelHead[b] = -1
	}
	for i := 0; i < n; i++ {
		m.wheelNext[i] = -1
	}
	for i := 0; i < n; i++ {
		m.file(i, m.fireEpoch(i))
	}
}

// PerLine reports whether the machine is in per-line adaptive mode.
func (m *Machine) PerLine() bool { return m.perLine }

// lineThreshold returns how many base/4 rollovers of idleness decay line i.
func (m *Machine) lineThreshold(i int) uint16 {
	return uint16(4) << (2 * m.sel[i])
}

// limit is line i's saturation threshold under the current mode.
func (m *Machine) limit(i int) uint16 {
	if m.perLine {
		return m.lineThreshold(i)
	}
	return localMax
}

// counterOf materializes line i's current local counter value from its
// snapshot — the value the eager sweep would hold after Rollovers bumps.
func (m *Machine) counterOf(i int) uint16 {
	l := m.limit(i)
	c := m.snapCnt[i]
	if c >= l {
		return c
	}
	if d := m.Rollovers - m.snapEpoch[i]; d < uint64(l-c) {
		return c + uint16(d)
	}
	return l
}

// fireEpoch is the rollover at which line i's expire callback is due given
// its current snapshot: the first rollover whose pre-bump counter is at or
// past the threshold.
func (m *Machine) fireEpoch(i int) uint64 {
	l := m.limit(i)
	c := m.snapCnt[i]
	if c >= l {
		return m.snapEpoch[i] + 1
	}
	return m.snapEpoch[i] + uint64(l-c) + 1
}

// file inserts line i's wheel entry for epoch fe.
func (m *Machine) file(i int, fe uint64) {
	b := fe & (wheelBuckets - 1)
	m.wheelNext[i] = m.wheelHead[b]
	m.wheelHead[b] = int32(i)
	m.filedAt[i] = fe
}

// unlink removes line i's wheel entry (only needed when an expiry moves
// earlier than the filed epoch — a demotion — so it may walk a chain).
func (m *Machine) unlink(i int) {
	b := m.filedAt[i] & (wheelBuckets - 1)
	p := &m.wheelHead[b]
	for *p >= 0 {
		if int(*p) == i {
			*p = m.wheelNext[i]
			m.wheelNext[i] = -1
			return
		}
		p = &m.wheelNext[*p]
	}
}

// Promote moves line i to the next longer decay interval (its decay was
// premature). No-op outside per-line mode or at saturation.
func (m *Machine) Promote(i int) {
	if !m.perLine || m.sel[i] >= selMax {
		return
	}
	// Materialize under the old threshold, then grow it. The counter value
	// carries over exactly as the eager machine's frozen rollCounts would.
	c := m.counterOf(i)
	m.snapCnt[i] = c
	m.snapEpoch[i] = m.Rollovers
	m.sel[i]++
	m.Promotions++
	if m.expired[i] && c < m.limit(i) {
		// Back below threshold: the line resumes counting and a future
		// saturation is a fresh transition.
		m.expired[i] = false
		m.numExpired--
		m.file(i, m.fireEpoch(i))
	}
	// A non-expired line's expiry only moves later; its stale wheel entry
	// re-files when its old bucket pops.
}

// Demote moves line i to the next shorter decay interval (its decayed
// contents were never missed). No-op outside per-line mode or at zero.
func (m *Machine) Demote(i int) {
	if !m.perLine || m.sel[i] == 0 {
		return
	}
	c := m.counterOf(i)
	m.snapCnt[i] = c
	m.snapEpoch[i] = m.Rollovers
	m.sel[i]--
	m.Demotions++
	if !m.expired[i] {
		// Shrinking the threshold can pull the expiry earlier than the
		// filed entry; the wheel only tolerates late entries, so move it.
		if fe := m.fireEpoch(i); fe < m.filedAt[i] {
			m.unlink(i)
			m.file(i, fe)
		}
	}
	// An expired line's materialized counter is at least the old threshold,
	// which exceeds the new one: it stays expired.
}

// Sel exposes line i's interval selector (tests).
func (m *Machine) Sel(i int) uint8 {
	if !m.perLine {
		return 0
	}
	return m.sel[i]
}

// Interval returns the current decay interval in cycles (0 = disabled).
func (m *Machine) Interval() uint64 { return m.interval }

// Policy returns the machine's deactivation policy.
func (m *Machine) Policy() Policy { return m.policy }

func (m *Machine) setInterval(interval, cycle uint64) {
	m.interval = interval
	if interval == 0 {
		m.quarter = 0
		m.nextRoll = ^uint64(0)
		return
	}
	q := interval / 4
	if q == 0 {
		q = 1
	}
	m.quarter = q
	m.nextRoll = cycle + q
	m.rolls = 0
}

// SetInterval changes the decay interval at runtime (used by the adaptive
// schemes of Section 5.4). Local counters keep their values; the next
// rollover is rescheduled from the current cycle. The rollover epoch
// counter (Stats.Rollovers) stays monotonic across re-sets, so snapshots
// and filed expiry entries remain valid as-is.
func (m *Machine) SetInterval(interval, cycle uint64) {
	m.setInterval(interval, cycle)
}

// Touch resets line i's local counter on an access.
func (m *Machine) Touch(i int) {
	if m.interval == 0 || m.policy == PolicySimple {
		return
	}
	if m.counterOf(i) == 0 {
		return
	}
	m.LocalResets++
	m.snapCnt[i] = 0
	m.snapEpoch[i] = m.Rollovers
	if m.expired[i] {
		m.expired[i] = false
		m.numExpired--
		m.file(i, m.fireEpoch(i))
	}
	// A live line's stale entry re-files lazily when its bucket pops.
}

// Advance processes any global-counter rollovers that occurred up to and
// including cycle. expire is called with each line index whose idle time
// has crossed the decay interval (PolicyNoAccess) or with every line on an
// interval boundary (PolicySimple). Under PolicyNoAccess the callback fires
// exactly once per transition into the expired state; PolicySimple
// re-blankets every interval, so its callback must stay idempotent for
// already-standby lines.
func (m *Machine) Advance(cycle uint64, expire func(line int)) {
	if m.interval == 0 {
		return
	}
	for cycle >= m.nextRoll {
		m.Rollovers++
		m.rolls++
		if m.policy == PolicySimple {
			// Blanket deactivation every full interval (every fourth
			// quarter-rollover).
			if m.rolls%4 == 0 {
				for i := 0; i < m.lines; i++ {
					m.Expiries++
					expire(i)
				}
			}
		} else {
			m.roll(expire)
		}
		m.nextRoll += m.quarter
	}
}

// roll processes one PolicyNoAccess rollover: pop the wheel bucket for the
// new epoch, re-file entries whose line was reset since filing, fire the
// rest in ascending line order, and advance the aggregate stats by what the
// eager sweep would have counted.
func (m *Machine) roll(expire func(line int)) {
	e := m.Rollovers
	b := e & (wheelBuckets - 1)
	j := m.wheelHead[b]
	m.wheelHead[b] = -1
	m.fireBuf = m.fireBuf[:0]
	for j >= 0 {
		i := int(j)
		j = m.wheelNext[i]
		m.wheelNext[i] = -1
		if fe := m.fireEpoch(i); fe > e {
			m.file(i, fe) // touched since filing: expiry moved later
		} else {
			m.fireBuf = append(m.fireBuf, i)
		}
	}
	if len(m.fireBuf) > 0 {
		// Chain order is filing order; the eager sweep fired in ascending
		// line order and downstream effects (decay writebacks into the next
		// level) are order-sensitive, so sort before firing.
		sort.Ints(m.fireBuf)
		for _, i := range m.fireBuf {
			if l := m.limit(i); m.snapCnt[i] < l {
				m.snapCnt[i] = l
			}
			m.snapEpoch[i] = e
			m.expired[i] = true
			m.numExpired++
			expire(i)
		}
	}
	// Aggregate bookkeeping: the sweep counted an expiry per at-threshold
	// line and a bump for every other line, each rollover.
	m.Expiries += m.numExpired
	m.LocalBumps += uint64(m.lines) - m.numExpired
}

// Counter exposes line i's local counter value (tests, adaptive probes).
// Per-line adaptive machines keep their counts in rollover units instead;
// as before, Counter reports 0 for them.
func (m *Machine) Counter(i int) uint8 {
	if m.perLine || m.policy == PolicySimple {
		return 0
	}
	return uint8(m.counterOf(i))
}

// NextRollover returns the cycle of the next global-counter rollover —
// the only cycle at which Advance does any work. With decay disabled it
// returns the "never" sentinel (^uint64(0)). The event-driven core uses
// this to skip Advance calls (and whole idle regions) between rollovers
// without perturbing expire ordering: calling Advance exactly at the
// returned cycle is indistinguishable from calling it every cycle.
func (m *Machine) NextRollover() uint64 { return m.nextRoll }
