// Package decay implements the cache-decay counter machinery shared by both
// leakage-control techniques (Section 2.3 of the paper): a single global
// counter that counts from zero up to one quarter of the decay interval and
// then starts over, plus a local two-bit counter per cache line. When the
// global counter rolls over, every local counter is incremented; when a
// local counter is incremented past its maximum the line has been idle for
// the full decay interval and is deactivated. Local counters reset to zero
// on every access (the drowsy paper's "noaccess" policy).
//
// The "simple" policy (also from the drowsy paper) ignores access history
// and blankets the whole cache into standby every interval.
package decay

// Policy selects how lines are chosen for deactivation.
type Policy int

// Policies.
const (
	// PolicyNoAccess deactivates a line only after it has been idle for
	// the full decay interval (per-line 2-bit counters).
	PolicyNoAccess Policy = iota
	// PolicySimple deactivates every line each time a full interval
	// elapses, with no per-line history.
	PolicySimple
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == PolicySimple {
		return "simple"
	}
	return "noaccess"
}

// localMax is the saturation value of the per-line 2-bit counter.
const localMax = 3

// selMax is the saturation value of the per-line interval selector in
// per-line adaptive mode (Kaxiras-style: 2 bits choose among four
// exponentially spaced intervals, base << 2*sel).
const selMax = 3

// Machine is the decay-counter state for one cache's lines.
type Machine struct {
	interval uint64
	quarter  uint64
	nextRoll uint64
	rolls    uint64 // rollovers since the interval was last set
	policy   Policy
	counters []uint8

	// Per-line adaptive mode (Kaxiras et al.): each line owns a 2-bit
	// selector choosing its decay interval from {base, 4*base, 16*base,
	// 64*base}; rollCounts counts base/4 rollovers since the last touch.
	perLine    bool
	sel        []uint8
	rollCounts []uint16

	// Stats.
	Rollovers   uint64
	LocalBumps  uint64
	LocalResets uint64
	Expiries    uint64
	Promotions  uint64
	Demotions   uint64
}

// New builds a decay machine for lines cache lines with the given interval
// in cycles. interval == 0 disables decay entirely.
func New(lines int, interval uint64, policy Policy) *Machine {
	m := &Machine{
		policy:   policy,
		counters: make([]uint8, lines),
	}
	m.setInterval(interval, 0)
	return m
}

// NewPerLine builds a per-line adaptive decay machine: every line starts at
// the base interval and is promoted toward longer intervals each time decay
// proves premature (an induced miss / slow hit) and demoted when a decayed
// line dies for real. Only the noaccess policy makes sense here.
func NewPerLine(lines int, baseInterval uint64) *Machine {
	m := New(lines, baseInterval, PolicyNoAccess)
	m.perLine = true
	m.sel = make([]uint8, lines)
	m.rollCounts = make([]uint16, lines)
	return m
}

// PerLine reports whether the machine is in per-line adaptive mode.
func (m *Machine) PerLine() bool { return m.perLine }

// lineThreshold returns how many base/4 rollovers of idleness decay line i.
func (m *Machine) lineThreshold(i int) uint16 {
	return uint16(4) << (2 * m.sel[i])
}

// Promote moves line i to the next longer decay interval (its decay was
// premature). No-op outside per-line mode or at saturation.
func (m *Machine) Promote(i int) {
	if !m.perLine || m.sel[i] >= selMax {
		return
	}
	m.sel[i]++
	m.Promotions++
}

// Demote moves line i to the next shorter decay interval (its decayed
// contents were never missed). No-op outside per-line mode or at zero.
func (m *Machine) Demote(i int) {
	if !m.perLine || m.sel[i] == 0 {
		return
	}
	m.sel[i]--
	m.Demotions++
}

// Sel exposes line i's interval selector (tests).
func (m *Machine) Sel(i int) uint8 {
	if !m.perLine {
		return 0
	}
	return m.sel[i]
}

// Interval returns the current decay interval in cycles (0 = disabled).
func (m *Machine) Interval() uint64 { return m.interval }

// Policy returns the machine's deactivation policy.
func (m *Machine) Policy() Policy { return m.policy }

func (m *Machine) setInterval(interval, cycle uint64) {
	m.interval = interval
	if interval == 0 {
		m.quarter = 0
		m.nextRoll = ^uint64(0)
		return
	}
	q := interval / 4
	if q == 0 {
		q = 1
	}
	m.quarter = q
	m.nextRoll = cycle + q
	m.rolls = 0
}

// SetInterval changes the decay interval at runtime (used by the adaptive
// schemes of Section 5.4). Local counters keep their values; the next
// rollover is rescheduled from the current cycle.
func (m *Machine) SetInterval(interval, cycle uint64) {
	m.setInterval(interval, cycle)
}

// Touch resets line i's local counter on an access.
func (m *Machine) Touch(i int) {
	if m.interval == 0 || m.policy == PolicySimple {
		return
	}
	if m.perLine {
		if m.rollCounts[i] != 0 {
			m.rollCounts[i] = 0
			m.LocalResets++
		}
		return
	}
	if m.counters[i] != 0 {
		m.counters[i] = 0
		m.LocalResets++
	}
}

// Advance processes any global-counter rollovers that occurred up to and
// including cycle. expire is called with each line index whose idle time
// has crossed the decay interval (PolicyNoAccess) or with every line on an
// interval boundary (PolicySimple). The callback must be idempotent for
// already-standby lines.
func (m *Machine) Advance(cycle uint64, expire func(line int)) {
	if m.interval == 0 {
		return
	}
	for cycle >= m.nextRoll {
		m.Rollovers++
		m.rolls++
		switch {
		case m.perLine:
			for i := range m.rollCounts {
				if th := m.lineThreshold(i); m.rollCounts[i] >= th {
					m.Expiries++
					expire(i)
					continue
				}
				m.rollCounts[i]++
				m.LocalBumps++
			}
		case m.policy == PolicyNoAccess:
			for i := range m.counters {
				if m.counters[i] >= localMax {
					m.Expiries++
					expire(i)
					continue
				}
				m.counters[i]++
				m.LocalBumps++
			}
		case m.policy == PolicySimple:
			// Blanket deactivation every full interval (every
			// fourth quarter-rollover).
			if m.rolls%4 == 0 {
				for i := range m.counters {
					m.Expiries++
					expire(i)
				}
			}
		}
		m.nextRoll += m.quarter
	}
}

// Counter exposes line i's local counter value (tests, adaptive probes).
func (m *Machine) Counter(i int) uint8 { return m.counters[i] }

// NextRollover returns the cycle of the next global-counter rollover —
// the only cycle at which Advance does any work. With decay disabled it
// returns the "never" sentinel (^uint64(0)). The event-driven core uses
// this to skip Advance calls (and whole idle regions) between rollovers
// without perturbing expire ordering: calling Advance exactly at the
// returned cycle is indistinguishable from calling it every cycle.
func (m *Machine) NextRollover() uint64 { return m.nextRoll }
