package decay

import (
	"testing"
	"testing/quick"
)

// collectExpiries advances the machine to cycle and returns which lines
// expired.
func collectExpiries(m *Machine, cycle uint64) map[int]bool {
	out := map[int]bool{}
	m.Advance(cycle, func(i int) { out[i] = true })
	return out
}

func TestIdleLineDecaysAfterInterval(t *testing.T) {
	m := New(4, 4096, PolicyNoAccess)
	// After a full interval plus one quarter (counter saturates at 3,
	// expiry fires on the next rollover), every untouched line expires.
	exp := collectExpiries(m, 5*1024+1)
	for i := 0; i < 4; i++ {
		if !exp[i] {
			t.Fatalf("line %d did not decay", i)
		}
	}
}

func TestNoDecayBeforeInterval(t *testing.T) {
	m := New(4, 4096, PolicyNoAccess)
	exp := collectExpiries(m, 3*1024)
	if len(exp) != 0 {
		t.Fatalf("premature decay: %v", exp)
	}
}

func TestAccessResetsCounter(t *testing.T) {
	m := New(2, 4096, PolicyNoAccess)
	// Touch line 0 every ~3 quarters; it must never expire while line 1
	// does.
	expired := map[int]bool{}
	for cycle := uint64(1); cycle < 30000; cycle += 512 {
		m.Advance(cycle, func(i int) { expired[i] = true })
		if cycle%2048 == 1 {
			m.Touch(0)
		}
	}
	if expired[0] {
		t.Fatal("frequently touched line expired")
	}
	if !expired[1] {
		t.Fatal("idle line never expired")
	}
}

func TestRolloverCadence(t *testing.T) {
	m := New(1, 4096, PolicyNoAccess)
	m.Advance(4096, func(int) {})
	if m.Rollovers != 4 {
		t.Fatalf("rollovers after one interval = %d, want 4 (global counter period = interval/4)", m.Rollovers)
	}
}

func TestDisabled(t *testing.T) {
	m := New(4, 0, PolicyNoAccess)
	if exp := collectExpiries(m, 1<<20); len(exp) != 0 {
		t.Fatal("disabled machine expired lines")
	}
	m.Touch(0) // must not panic or count
	if m.LocalResets != 0 {
		t.Fatal("disabled machine counted resets")
	}
}

func TestSimplePolicyBlankets(t *testing.T) {
	m := New(8, 4096, PolicySimple)
	count := 0
	m.Advance(4096, func(int) { count++ })
	if count != 8 {
		t.Fatalf("simple policy expired %d lines at the interval boundary, want 8", count)
	}
	// Touch must be a no-op for the simple policy (no per-line history).
	m.Touch(3)
	count = 0
	m.Advance(8192, func(int) { count++ })
	if count != 8 {
		t.Fatalf("second blanket expired %d, want 8", count)
	}
}

func TestSetIntervalReschedules(t *testing.T) {
	m := New(2, 65536, PolicyNoAccess)
	m.Advance(1000, func(int) {})
	m.SetInterval(1024, 1000)
	exp := collectExpiries(m, 1000+5*256+1)
	if len(exp) != 2 {
		t.Fatalf("after shrink to 1K, expiries = %d, want 2", len(exp))
	}
	if m.Interval() != 1024 {
		t.Fatalf("Interval() = %d", m.Interval())
	}
}

func TestStatsCounts(t *testing.T) {
	m := New(4, 4096, PolicyNoAccess)
	m.Advance(1024, func(int) {})
	if m.LocalBumps != 4 {
		t.Fatalf("bumps = %d, want 4", m.LocalBumps)
	}
	m.Touch(0)
	if m.LocalResets != 1 {
		t.Fatalf("resets = %d", m.LocalResets)
	}
	m.Touch(0) // already zero: no additional reset energy
	if m.LocalResets != 1 {
		t.Fatalf("reset of zero counter counted: %d", m.LocalResets)
	}
}

func TestExpiryFiresOncePerTransition(t *testing.T) {
	// The lazy machine fires the expire callback exactly once per
	// transition into the expired state (the eager sweep re-fired every
	// rollover and relied on callback idempotence). The first-fire cycle
	// is unchanged, Stats.Expiries still counts the saturated line on
	// every subsequent rollover, and a touch re-arms the callback.
	m := New(1, 1024, PolicyNoAccess)
	fired := 0
	m.Advance(10*256, func(int) { fired++ })
	if fired != 1 {
		t.Fatalf("saturated line fired %d times over 10 rollovers, want exactly 1", fired)
	}
	// Rollovers 1-3 bump 0->3, rollovers 4-10 see a saturated counter.
	if m.Expiries != 7 {
		t.Fatalf("Expiries = %d, want 7 (one per rollover while saturated)", m.Expiries)
	}
	m.Touch(0)
	m.Advance(20*256, func(int) { fired++ })
	if fired != 2 {
		t.Fatalf("re-saturation after touch fired %d times total, want 2", fired)
	}
}

func TestFrequentlyTouchedNeverExpiresProperty(t *testing.T) {
	// Property: a line touched at least once per quarter interval never
	// expires, for any interval.
	f := func(ivRaw uint16) bool {
		iv := uint64(ivRaw%60+4) * 64 // 256..4096, multiple of 4
		m := New(1, iv, PolicyNoAccess)
		q := iv / 4
		expired := false
		for cycle := uint64(0); cycle < 20*iv; cycle += q / 2 {
			m.Advance(cycle, func(int) { expired = true })
			m.Touch(0)
		}
		return !expired
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyNoAccess.String() != "noaccess" || PolicySimple.String() != "simple" {
		t.Fatal("policy strings wrong")
	}
}
