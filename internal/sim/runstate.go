package sim

import (
	"fmt"

	"hotleakage/internal/bpred"
	"hotleakage/internal/cache"
	"hotleakage/internal/cpu"
	"hotleakage/internal/leakctl"
)

// machine is one assembled simulation stack: the memory hierarchy, the
// predictor and the core, wired exactly as RunOneFrom has always built
// them.
type machine struct {
	mem      *cache.Memory
	l2       *cache.Cache
	dl1      *leakctl.DCache
	il1Plain *cache.Cache
	il1Ctl   *leakctl.DCache
	pred     *bpred.Predictor
	core     *cpu.Core
}

// RunState is a worker-confined cache of simulation components reused
// across runs: the L2's megabyte of line bookkeeping, the predictor
// tables, the core's window arrays. Each component is reset to its
// just-constructed state between runs (see the Reset methods in cache,
// leakctl, bpred and cpu.Recycle), so a reused machine is bit-identical
// to a freshly built one — the reuse only removes the allocations, which
// at GOMAXPROCS-sized worker pools were the dominant GC pressure of a
// sweep.
//
// The zero value is ready to use. A RunState must not be shared between
// concurrently executing runs; the harness hands each worker its own (see
// harness.Config.WorkerState).
type RunState struct {
	mc    MachineConfig
	m     machine
	valid bool
}

// machineEqual reports whether two machine descriptions build identical
// hardware (every configuration struct is all-scalar, so value comparison
// is exact). Warmup/Instructions are excluded: they shape the run, not the
// components.
func machineEqual(a, b MachineConfig) bool {
	if a.Tech == nil || b.Tech == nil || *a.Tech != *b.Tech {
		return false
	}
	if a.CPU != b.CPU || a.Bpred != b.Bpred ||
		a.L1I != b.L1I || a.L1D != b.L1D || a.L2 != b.L2 ||
		a.MemLatency != b.MemLatency {
		return false
	}
	if (a.IL1Control == nil) != (b.IL1Control == nil) {
		return false
	}
	if a.IL1Control != nil && *a.IL1Control != *b.IL1Control {
		return false
	}
	return true
}

// assemble builds (or, via st, reuses) the simulation stack for one run.
// mc and params have already been validated by the caller.
func assemble(mc MachineConfig, src cpu.InstrSource, params leakctl.Params, adapter leakctl.Adapter, st *RunState) (machine, error) {
	if st != nil && st.valid && machineEqual(st.mc, mc) {
		if m, err := st.reuse(mc, src, params, adapter); err == nil {
			return m, nil
		}
		// A failed reset (e.g. params rejected mid-reset) leaves partially
		// reset components; invalidate and fall through to a fresh build.
		st.valid = false
	}
	m, err := buildMachine(mc, src, params, adapter)
	if err != nil {
		return machine{}, err
	}
	if st != nil {
		st.mc = mc
		st.m = m
		st.valid = true
	}
	return m, nil
}

// buildMachine constructs a fresh stack, preserving RunOneFrom's original
// construction order and error wrapping.
func buildMachine(mc MachineConfig, src cpu.InstrSource, params leakctl.Params, adapter leakctl.Adapter) (machine, error) {
	var m machine
	m.mem = cache.NewMemory(mc.Tech, mc.MemLatency)
	var err error
	m.l2, err = cache.New(mc.Tech, mc.L2, m.mem)
	if err != nil {
		return machine{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	m.dl1, err = leakctl.New(mc.Tech, mc.L1D, params, m.l2)
	if err != nil {
		return machine{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if adapter != nil {
		m.dl1.Adapter = adapter
	}

	// The I-cache is plain unless the extension study controls it too.
	var l1i cpu.FetchCache
	if mc.IL1Control != nil {
		m.il1Ctl, err = leakctl.New(mc.Tech, mc.L1I, *mc.IL1Control, m.l2)
		if err != nil {
			return machine{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		l1i = m.il1Ctl
	} else {
		m.il1Plain, err = cache.New(mc.Tech, mc.L1I, m.l2)
		if err != nil {
			return machine{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		l1i = m.il1Plain
	}

	m.pred = bpred.New(mc.Bpred)
	m.core = cpu.New(mc.CPU, src, m.pred, l1i, m.dl1)
	return m, nil
}

// reuse resets every cached component to its just-built state and rewires
// it for the new run.
func (st *RunState) reuse(mc MachineConfig, src cpu.InstrSource, params leakctl.Params, adapter leakctl.Adapter) (machine, error) {
	m := st.m
	m.mem.Reset()
	m.l2.Reset(m.mem)
	if err := m.dl1.Reset(mc.Tech, params, m.l2); err != nil {
		return machine{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if adapter != nil {
		m.dl1.Adapter = adapter
	}
	var l1i cpu.FetchCache
	if mc.IL1Control != nil {
		if err := m.il1Ctl.Reset(mc.Tech, *mc.IL1Control, m.l2); err != nil {
			return machine{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		l1i = m.il1Ctl
	} else {
		m.il1Plain.Reset(m.l2)
		l1i = m.il1Plain
	}
	m.pred.Reset()
	m.core = cpu.Recycle(m.core, mc.CPU, src, m.pred, l1i, m.dl1)
	st.m = m
	return m, nil
}
