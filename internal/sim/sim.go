// Package sim is the experiment harness: it assembles the Table 2 machine
// (core, predictor, caches, memory) around a workload profile, runs timing
// simulations, and evaluates the paper's metrics at arbitrary operating
// points. Timing and dynamic energy are temperature-independent in this
// model, so one timing run is reused across the temperature studies.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hotleakage/internal/bpred"
	"hotleakage/internal/cache"
	"hotleakage/internal/cpu"
	"hotleakage/internal/energy"
	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/obs"
	"hotleakage/internal/tech"
	"hotleakage/internal/workload"
)

// ErrInvalidConfig wraps configuration-validation failures. Retrying a run
// that failed with it is pointless; the supervisor fails such runs
// immediately.
var ErrInvalidConfig = errors.New("sim: invalid configuration")

// MachineConfig describes the simulated machine.
type MachineConfig struct {
	Tech       *tech.Params
	CPU        cpu.Config
	Bpred      bpred.Config
	L1I        cache.Config
	L1D        cache.Config
	L2         cache.Config
	MemLatency int
	// IL1Control, when non-nil, applies leakage control to the L1
	// instruction cache as well (extension study; the paper controls
	// only the D-cache).
	IL1Control *leakctl.Params
	// Warmup is the number of committed instructions simulated before
	// measurement begins (caches, predictor and decay state warm up;
	// statistics then reset) — the scaled-down analogue of the paper's
	// 2-billion-instruction skip.
	Warmup uint64
	// Instructions is the number of committed instructions measured.
	Instructions uint64
}

// DefaultMachine returns the paper's Table 2 configuration at 70 nm with
// the given L2 hit latency (the paper sweeps 5, 8, 11, 17). The technology
// parameters are a private copy, so a caller may override fields (e.g.
// ChipBackgroundW in the sensitivity ablation) without affecting other
// machines.
func DefaultMachine(l2Latency int) MachineConfig {
	t := *tech.MustByNode(tech.Node70)
	return MachineConfig{
		Tech:  &t,
		CPU:   cpu.DefaultConfig(),
		Bpred: bpred.DefaultConfig(),
		L1I: cache.Config{
			Name: "il1", SizeBytes: 64 * 1024, LineBytes: 64,
			Assoc: 2, HitLatency: 1,
		},
		L1D: cache.Config{
			Name: "dl1", SizeBytes: 64 * 1024, LineBytes: 64,
			Assoc: 2, HitLatency: 2,
		},
		L2: cache.Config{
			Name: "ul2", SizeBytes: 2 * 1024 * 1024, LineBytes: 64,
			Assoc: 2, HitLatency: l2Latency, Banks: 8,
		},
		MemLatency:   100,
		Warmup:       300_000,
		Instructions: 1_000_000,
	}
}

// Validate rejects impossible machine descriptions (zero sets/ways,
// non-positive latencies, degenerate cores, bad technology parameters)
// with descriptive errors before any simulation state is built.
func (mc MachineConfig) Validate() error {
	if mc.Tech == nil {
		return fmt.Errorf("machine has no technology parameters")
	}
	if err := mc.Tech.Validate(); err != nil {
		return err
	}
	if err := mc.CPU.Validate(); err != nil {
		return err
	}
	for _, c := range []cache.Config{mc.L1I, mc.L1D, mc.L2} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if mc.MemLatency < 1 {
		return fmt.Errorf("memory latency must be >= 1 cycle (got %d)", mc.MemLatency)
	}
	if mc.Instructions == 0 {
		return fmt.Errorf("measured instruction count must be non-zero")
	}
	if mc.IL1Control != nil {
		if err := mc.IL1Control.Validate(); err != nil {
			return fmt.Errorf("IL1 control: %w", err)
		}
	}
	return nil
}

// RunResult bundles everything one simulation produced.
type RunResult struct {
	Bench       string
	Params      leakctl.Params
	CPU         cpu.Stats
	DStats      leakctl.Stats
	L2Stats     cache.Stats
	ICStats     cache.Stats
	Bpred       bpred.Stats
	TurnoffRat  float64
	Measurement energy.RunMeasurement

	// IL1Meas / IL1Stats are filled in when the I-cache is also under
	// leakage control (MachineConfig.IL1Control): the measurement's
	// StandbyLineCycles then refer to the I-cache so the same
	// energy.Compare machinery scores it against the L1I geometry.
	IL1Meas    *energy.RunMeasurement
	IL1Stats   *leakctl.Stats
	IL1Turnoff float64
}

// RunOne simulates the machine over one benchmark with the given
// leakage-control parameters. adapter, if non-nil, is installed on the
// controlled cache (adaptive decay study). The context carries the per-run
// deadline and suite-wide cancellation; a nil context means Background.
func RunOne(ctx context.Context, mc MachineConfig, prof workload.Profile, params leakctl.Params, adapter leakctl.Adapter) (RunResult, error) {
	return RunOneFrom(ctx, mc, prof.Name, workload.NewGenerator(prof), params, adapter)
}

// runChunk is how many committed instructions are simulated between
// context checks: frequent enough that deadlines bite within milliseconds,
// coarse enough that the check is free. Chunking does not perturb results —
// core.Run accumulates, so N chunks equal one long run bit-for-bit.
const runChunk = 50_000

// runCommitted advances the core by n committed instructions, honouring
// cancellation between chunks, and returns the cumulative stats. flush, if
// non-nil, runs after every chunk — the observability layer's batched
// counter flush, deliberately off the simulate loop's hot path.
func runCommitted(ctx context.Context, core *cpu.Core, n uint64, flush func()) (cpu.Stats, error) {
	var cs cpu.Stats
	for done := uint64(0); done < n; {
		if err := ctx.Err(); err != nil {
			return cs, err
		}
		step := uint64(runChunk)
		if n-done < step {
			step = n - done
		}
		cs = core.Run(step)
		done += step
		if flush != nil {
			flush()
		}
	}
	return cs, nil
}

// RunOneFrom is RunOne over an arbitrary instruction source — a live
// generator or a recorded trace (package trace) replayed from disk.
func RunOneFrom(ctx context.Context, mc MachineConfig, name string, src cpu.InstrSource, params leakctl.Params, adapter leakctl.Adapter) (RunResult, error) {
	return runOneFromState(ctx, mc, name, src, params, adapter, nil)
}

// runOneFromState is RunOneFrom with optional component reuse: a non-nil
// st contributes its previously built (and reset) machine when the
// configuration matches, and caches this run's machine for the next one.
func runOneFromState(ctx context.Context, mc MachineConfig, name string, src cpu.InstrSource, params leakctl.Params, adapter leakctl.Adapter, st *RunState) (RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := mc.Validate(); err != nil {
		return RunResult{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if err := params.Validate(); err != nil {
		return RunResult{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	m, err := assemble(mc, src, params, adapter, st)
	if err != nil {
		return RunResult{}, err
	}
	mem, l2, dl1 := m.mem, m.l2, m.dl1
	il1Plain, il1Ctl := m.il1Plain, m.il1Ctl
	pred, core := m.pred, m.core

	// Observability: this run-goroutine's private counter shard, flushed
	// as batched deltas at chunk boundaries and merged on snapshot.
	sh := obs.Default.AcquireShard()
	defer sh.Release()
	flush := func() {
		core.ObsFlush(sh)
		dl1.ObsFlush(sh)
		l2.ObsFlush(sh)
		if il1Plain != nil {
			il1Plain.ObsFlush(sh)
		} else {
			il1Ctl.ObsFlush(sh)
		}
	}

	if mc.Warmup > 0 {
		if _, err := runCommitted(ctx, core, mc.Warmup, flush); err != nil {
			return RunResult{}, err
		}
		core.ResetStats()
		l2.ResetStats()
		mem.ResetStats()
		pred.ResetStats()
		dl1.ResetStats(core.Now())
		if il1Plain != nil {
			il1Plain.ResetStats()
		} else {
			il1Ctl.ResetStats(core.Now())
		}
	}
	cs, err := runCommitted(ctx, core, mc.Instructions, flush)
	if err != nil {
		return RunResult{}, err
	}
	dl1.Finish(core.Now())

	var icDynJ float64
	var icStats cache.Stats
	if il1Plain != nil {
		icDynJ = il1Plain.DynJ
		icStats = il1Plain.Stats
	} else {
		il1Ctl.Finish(core.Now())
		icDynJ = il1Ctl.Energy.Total()
		icStats = cache.Stats{
			Accesses: il1Ctl.Stats.Accesses,
			Hits:     il1Ctl.Stats.Hits + il1Ctl.Stats.SlowHits,
			Misses:   il1Ctl.Stats.Misses,
		}
	}

	meas := energy.RunMeasurement{
		Cycles:            cs.Cycles,
		Instructions:      cs.Instructions,
		StandbyLineCycles: dl1.StandbyLineCycles(),
		DCacheDynJ:        dl1.Energy.Total(),
		L2DynJ:            l2.DynJ,
		MemDynJ:           mem.DynJ,
		ICacheDynJ:        icDynJ,
		// Per-cycle background: D-cache periphery clock plus the
		// whole-chip background dynamic power (cost item #4 — what
		// makes extra runtime expensive).
		ClockJ: float64(cs.Cycles) * (dl1.AccessE.PerCycleClock +
			mc.Tech.ChipBackgroundW/mc.Tech.ClockHz),
		DStats: dl1.Stats,
	}
	res := RunResult{
		Bench:       name,
		Params:      params,
		CPU:         cs,
		DStats:      dl1.Stats,
		L2Stats:     l2.Stats,
		ICStats:     icStats,
		Bpred:       pred.Stats,
		TurnoffRat:  dl1.TurnoffRatio(),
		Measurement: meas,
	}
	if il1Ctl != nil {
		im := meas
		im.StandbyLineCycles = il1Ctl.StandbyLineCycles()
		im.DStats = il1Ctl.Stats
		res.IL1Meas = &im
		st := il1Ctl.Stats
		res.IL1Stats = &st
		res.IL1Turnoff = il1Ctl.TurnoffRatio()
	}
	return res, nil
}

// Point is one evaluated (benchmark, technique) cell of a figure.
type Point struct {
	Bench     string
	Technique leakctl.Technique
	Interval  uint64
	Cmp       energy.Comparison
	Run       RunResult
}

// Suite runs comparisons with baseline caching: the uncontrolled run for a
// (benchmark, L2 latency) pair is simulated once and reused. Baseline is
// safe for concurrent use and single-flight: concurrent callers that miss
// the cache elect one simulating leader per profile and the rest wait for
// its result instead of redundantly simulating the same baseline.
type Suite struct {
	MC MachineConfig
	// Traces, when non-nil, serves each baseline run from the shared
	// recorded instruction stream instead of a fresh generator pass
	// (bit-identical; see TraceCache). Set it before the first Baseline
	// call.
	Traces    *TraceCache
	mu        sync.Mutex
	baselines map[string]*baselineCell
}

// baselineCell is one profile's single-flight slot. done is closed when
// the leader finishes; r/err are immutable afterwards. A failed leader
// removes its cell before closing done, so later callers retry rather
// than inheriting a stale error (e.g. the leader's cancelled context).
type baselineCell struct {
	done chan struct{}
	r    RunResult
	err  error
}

// NewSuite builds a suite over the given machine.
func NewSuite(mc MachineConfig) *Suite {
	return &Suite{MC: mc, baselines: make(map[string]*baselineCell)}
}

// Baseline returns (simulating on first use) the uncontrolled run for a
// profile. Under concurrency each profile's baseline is simulated exactly
// once per success; waiters respect their own context.
func (s *Suite) Baseline(ctx context.Context, prof workload.Profile) (RunResult, error) {
	for {
		s.mu.Lock()
		c, ok := s.baselines[prof.Name]
		if !ok {
			c = &baselineCell{done: make(chan struct{})}
			s.baselines[prof.Name] = c
			s.mu.Unlock()
			c.r, c.err = runWithTrace(ctx, s.Traces, s.MC, prof, leakctl.DefaultParams(leakctl.TechNone, 0), nil, nil)
			if c.err != nil {
				s.mu.Lock()
				delete(s.baselines, prof.Name)
				s.mu.Unlock()
			}
			close(c.done)
			return c.r, c.err
		}
		s.mu.Unlock()
		select {
		case <-c.done:
			if c.err == nil {
				return c.r, nil
			}
			// The leader failed; its cell is already removed.
			// Retry under our own context (which may itself be
			// done, caught by the other select arm next lap).
			if ctx != nil && ctx.Err() != nil {
				return RunResult{}, ctx.Err()
			}
		case <-ctxDone(ctx):
			return RunResult{}, ctx.Err()
		}
	}
}

// ctxDone tolerates the nil contexts RunOne also accepts.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// SetBaseline seeds the baseline cache with an already-computed run — used
// when resuming from a checkpoint, so a restored baseline is not re-simulated.
func (s *Suite) SetBaseline(name string, r RunResult) {
	s.mu.Lock()
	if c, ok := s.baselines[name]; ok {
		// Overwrite an in-flight or completed cell only if it is done;
		// an in-flight leader's result would race with the seed.
		select {
		case <-c.done:
		default:
			s.mu.Unlock()
			return
		}
	}
	done := make(chan struct{})
	close(done)
	s.baselines[name] = &baselineCell{done: done, r: r}
	s.mu.Unlock()
}

// Evaluate runs one technique on one benchmark and scores it at the given
// temperature (Celsius). adapter, if non-nil, is installed on the
// controlled cache (adaptive-decay studies run through the suite path like
// any other configuration). The leakage model is re-environmented, so a
// Suite can score the same timing run at several temperatures cheaply via
// EvaluateRun.
func (s *Suite) Evaluate(ctx context.Context, prof workload.Profile, params leakctl.Params, tempC float64, m *leakage.Model, adapter leakctl.Adapter) (Point, error) {
	run, err := RunOne(ctx, s.MC, prof, params, adapter)
	if err != nil {
		return Point{}, err
	}
	return s.EvaluateRun(ctx, prof, run, tempC, m)
}

// EvaluateRun scores an existing technique run against the cached baseline
// at the given temperature.
func (s *Suite) EvaluateRun(ctx context.Context, prof workload.Profile, run RunResult, tempC float64, m *leakage.Model) (Point, error) {
	base, err := s.Baseline(ctx, prof)
	if err != nil {
		return Point{}, err
	}
	m.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(tempC), Vdd: s.MC.Tech.VddNominal})
	cmp, err := energy.Compare(m, s.MC.L1D, run.Params.Technique.Mode(),
		base.Measurement, run.Measurement, s.MC.Tech.ClockHz)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Bench:     prof.Name,
		Technique: run.Params.Technique,
		Interval:  run.Params.Interval,
		Cmp:       cmp,
		Run:       run,
	}, nil
}

// String summarises a point for debugging.
func (p Point) String() string {
	return fmt.Sprintf("%-7s %-9s iv=%-6d net=%6.1f%% perf=%5.2f%% off=%4.1f%%",
		p.Bench, p.Technique, p.Interval, p.Cmp.NetSavingsPct, p.Cmp.PerfLossPct,
		100*p.Cmp.TurnoffRatio)
}
