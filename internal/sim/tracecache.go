package sim

import (
	"context"
	"sync"

	"hotleakage/internal/leakctl"
	"hotleakage/internal/obs"
	"hotleakage/internal/trace"
	"hotleakage/internal/workload"
)

// Trace-cache outcome counters: all low-frequency (per run / per
// benchmark), recorded through the registry's shared base shard.
var (
	obsTraceHits   = obs.Default.Counter(obs.MetricTraceCacheHits)
	obsTraceMisses = obs.Default.Counter(obs.MetricTraceCacheMisses)
	obsTraceBytes  = obs.Default.Counter(obs.MetricTraceCacheBytes)
	obsTraceWraps  = obs.Default.Counter(obs.MetricTraceCacheWraps)
)

// traceSlack is how many instructions a recorded stream extends past
// warmup+measure. The core fetches ahead of commit by at most the RUU
// window plus the fetch buffer (~100 instructions with the Table 2
// machine); the slack is set far above that bound, and replays that
// nevertheless consume past the recording are detected by the cursor's
// lap counter and re-run live (see runWithTrace).
const traceSlack = 4096

// TraceCache shares recorded instruction streams across a sweep: per
// (benchmark, run length) the synthetic generator runs once, into a
// compact encoded trace.Buffer, and every simulation cell replays it
// through a private cursor. For the full figure sweep that collapses
// ~150+ generator passes into one per benchmark while every RunResult
// stays bit-identical (the recorded stream IS the generator's stream, and
// parity tests enforce it per profile and technique).
//
// Recording is single-flight: concurrent cells for the same benchmark
// elect one recording leader and the rest wait. With a non-empty SpillDir
// buffers live on disk instead of memory (see trace.RecordBuffer).
type TraceCache struct {
	// SpillDir, when non-empty, is the directory encoded traces are
	// written to instead of being held in memory. Set it before first use.
	SpillDir string

	mu      sync.Mutex
	buffers map[traceKey]*traceCell
}

type traceKey struct {
	bench string
	n     uint64
}

// traceCell is one buffer's single-flight slot; done is closed when the
// recording leader finishes, after which buf/err are immutable. A failed
// leader removes its cell before closing done so later callers retry.
type traceCell struct {
	done chan struct{}
	buf  *trace.Buffer
	err  error
}

// NewTraceCache builds an empty cache. spillDir may be "" (in-memory).
func NewTraceCache(spillDir string) *TraceCache {
	return &TraceCache{SpillDir: spillDir, buffers: make(map[traceKey]*traceCell)}
}

// buffer returns (recording on first use) the shared buffer for prof at n
// instructions.
func (tc *TraceCache) buffer(ctx context.Context, prof workload.Profile, n uint64) (*trace.Buffer, error) {
	key := traceKey{bench: prof.Name, n: n}
	for {
		tc.mu.Lock()
		if tc.buffers == nil {
			tc.buffers = make(map[traceKey]*traceCell)
		}
		c, ok := tc.buffers[key]
		if !ok {
			c = &traceCell{done: make(chan struct{})}
			tc.buffers[key] = c
			tc.mu.Unlock()
			c.buf, c.err = trace.RecordBuffer(prof.Name, workload.NewGenerator(prof), n, tc.SpillDir)
			if c.err != nil {
				tc.mu.Lock()
				delete(tc.buffers, key)
				tc.mu.Unlock()
			} else {
				obsTraceMisses.Add(1)
				obsTraceBytes.Add(uint64(c.buf.SizeBytes()))
			}
			close(c.done)
			return c.buf, c.err
		}
		tc.mu.Unlock()
		select {
		case <-c.done:
			if c.err == nil {
				obsTraceHits.Add(1)
				return c.buf, nil
			}
			// The leader failed and removed its cell; retry.
			if ctx != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
		case <-ctxDone(ctx):
			return nil, ctx.Err()
		}
	}
}

// has reports whether a recording for prof at n instructions exists or is
// in flight — i.e. whether a front fill through the trace path would hit
// (or ride the in-flight leader's recording) rather than record. It feeds
// the batch planner's auto front-fill decision and never starts a
// recording itself.
func (tc *TraceCache) has(prof workload.Profile, n uint64) bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	_, ok := tc.buffers[traceKey{bench: prof.Name, n: n}]
	return ok
}

// Close releases every buffer (removing spill files). The cache is
// reusable afterwards; buffers re-record on demand.
func (tc *TraceCache) Close() error {
	tc.mu.Lock()
	cells := make([]*traceCell, 0, len(tc.buffers))
	for _, c := range tc.buffers {
		cells = append(cells, c)
	}
	tc.buffers = make(map[traceKey]*traceCell)
	tc.mu.Unlock()
	var first error
	for _, c := range cells {
		<-c.done
		if c.buf != nil {
			if err := c.buf.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// runWithTrace runs one simulation cell, replaying the shared recorded
// stream when tc is non-nil and falling back to live generation whenever
// the trace path cannot guarantee bit-identity: a recording failure, or a
// replay that consumed past the recorded length (cursor wrapped — its
// second lap would diverge from a live generator, so the result is
// discarded and the run repeated live). st, when non-nil, supplies
// worker-confined reusable components on either path.
//
// adapterFor (may be nil) is invoked once per actual execution rather
// than once per call: a wrap-fallback re-run must not inherit interval
// state the adapter learned during the discarded replay.
func runWithTrace(ctx context.Context, tc *TraceCache, mc MachineConfig, prof workload.Profile, params leakctl.Params, adapterFor func() leakctl.Adapter, st *RunState) (RunResult, error) {
	newAdapter := func() leakctl.Adapter {
		if adapterFor == nil {
			return nil
		}
		return adapterFor()
	}
	if tc != nil {
		buf, err := tc.buffer(ctx, prof, mc.Warmup+mc.Instructions+traceSlack)
		if err == nil {
			cur, cerr := buf.Cursor()
			if cerr == nil {
				r, rerr := runOneFromState(ctx, mc, prof.Name, cur, params, newAdapter(), st)
				if rerr != nil {
					return RunResult{}, rerr
				}
				if cur.Laps() == 0 {
					return r, nil
				}
				obsTraceWraps.Add(1)
			}
		} else if ctx != nil && ctx.Err() != nil {
			return RunResult{}, err
		}
	}
	return runOneFromState(ctx, mc, prof.Name, workload.NewGenerator(prof), params, newAdapter(), st)
}
