package sim

import (
	"context"
	"strings"
	"testing"

	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// mustT unwraps a (value, error) pair inside a test; the configurations
// used by tests are known good, so an error is itself a test bug.
func mustT[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// fastMachine shrinks run length for test speed.
func fastMachine(l2 int) MachineConfig {
	mc := DefaultMachine(l2)
	mc.Warmup = 60_000
	mc.Instructions = 120_000
	return mc
}

func TestDefaultMachineIsTable2(t *testing.T) {
	mc := DefaultMachine(11)
	if mc.CPU.RUUSize != 80 || mc.CPU.LSQSize != 40 || mc.CPU.IssueWidth != 4 {
		t.Fatalf("core config not Table 2: %+v", mc.CPU)
	}
	if mc.L1D.SizeBytes != 64<<10 || mc.L1D.Assoc != 2 || mc.L1D.LineBytes != 64 || mc.L1D.HitLatency != 2 {
		t.Fatalf("L1D not Table 2: %+v", mc.L1D)
	}
	if mc.L1I.HitLatency != 1 {
		t.Fatalf("L1I latency: %+v", mc.L1I)
	}
	if mc.L2.SizeBytes != 2<<20 || mc.L2.HitLatency != 11 {
		t.Fatalf("L2 not Table 2: %+v", mc.L2)
	}
	if mc.MemLatency != 100 {
		t.Fatalf("memory latency %d", mc.MemLatency)
	}
	if mc.Tech.ClockHz != 5.6e9 {
		t.Fatal("not the 5600 MHz 70nm machine")
	}
}

func TestRunOneProducesMeasurement(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	r := mustT(RunOne(context.Background(), fastMachine(11), prof, leakctl.DefaultParams(leakctl.TechGated, 4096), nil))
	m := r.Measurement
	if m.Cycles == 0 || m.Instructions < 120_000 {
		t.Fatalf("degenerate run: %+v", m)
	}
	if m.StandbyLineCycles == 0 {
		t.Fatal("no standby time recorded for gated run")
	}
	if m.DCacheDynJ <= 0 || m.L2DynJ <= 0 || m.ClockJ <= 0 {
		t.Fatalf("energy meters empty: %+v", m)
	}
	if r.TurnoffRat <= 0 || r.TurnoffRat >= 1 {
		t.Fatalf("turnoff ratio %v", r.TurnoffRat)
	}
}

func TestBaselineCaching(t *testing.T) {
	s := NewSuite(fastMachine(11))
	prof, _ := workload.ByName("mcf")
	a := mustT(s.Baseline(context.Background(), prof))
	b := mustT(s.Baseline(context.Background(), prof))
	if a.Measurement != b.Measurement {
		t.Fatal("baseline not cached / not deterministic")
	}
}

func TestEvaluateProducesSaneComparison(t *testing.T) {
	mc := fastMachine(11)
	s := NewSuite(mc)
	m := leakage.New(mc.Tech)
	prof, _ := workload.ByName("gcc")
	p := mustT(s.Evaluate(context.Background(), prof, leakctl.DefaultParams(leakctl.TechDrowsy, 4096), 110, m, nil))
	if p.Cmp.NetSavingsPct < 10 || p.Cmp.NetSavingsPct > 95 {
		t.Fatalf("drowsy net savings %v implausible", p.Cmp.NetSavingsPct)
	}
	if p.Cmp.PerfLossPct < 0 || p.Cmp.PerfLossPct > 15 {
		t.Fatalf("perf loss %v implausible", p.Cmp.PerfLossPct)
	}
	if !strings.Contains(p.String(), "drowsy") {
		t.Fatalf("Point.String: %q", p.String())
	}
}

func TestFigureFormatting(t *testing.T) {
	f := Figure{
		ID: "Figure X", Title: "test", Metric: "net savings %",
		Bench:  []string{"gcc", "mcf"},
		Drowsy: []float64{50, 60},
		Gated:  []float64{55, 65},
	}
	out := f.String()
	for _, want := range []string{"Figure X", "gcc", "mcf", "AVG", "drowsy", "gated-vss"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	d, g := f.Avg()
	if d != 55 || g != 60 {
		t.Fatalf("Avg = %v/%v", d, g)
	}
}

func TestTable1ReflectsDefaults(t *testing.T) {
	out := Table1()
	if !strings.Contains(out, "3") || !strings.Contains(out, "30") {
		t.Fatalf("Table 1 missing settle values:\n%s", out)
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2(DefaultMachine(11))
	for _, want := range []string{"80-RUU", "40-LSQ", "64 KB", "2 MB", "100 cycles", "5600 MHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Curves(t *testing.T) {
	curves := Figure1(DefaultMachine(11).Tech)
	if len(curves) != 4 {
		t.Fatal("Figure 1 must have four panels")
	}
	// 1a: linear in W/L (monotone increasing).
	a := curves[0]
	for i := 1; i < len(a.Y); i++ {
		if a.Y[i] <= a.Y[i-1] {
			t.Fatalf("1a not increasing at %d", i)
		}
	}
	// 1c: temperature curve strictly increasing.
	c := curves[2]
	for i := 1; i < len(c.Y); i++ {
		if c.Y[i] <= c.Y[i-1] {
			t.Fatalf("1c not increasing at %d", i)
		}
	}
	// 1d: decreasing then flat (the GIDL-floor saturation the paper
	// shows in Figure 1d).
	d := curves[3]
	last := len(d.Y) - 1
	if d.Y[0] <= d.Y[last] {
		t.Fatal("1d not decreasing overall")
	}
	if d.Y[last] != d.Y[last-1] {
		t.Fatal("1d does not saturate beyond the GIDL threshold")
	}
	if !strings.Contains(d.String(), "Vth") {
		t.Fatal("curve formatting")
	}
}

func TestExperimentsRunCaching(t *testing.T) {
	e := NewExperiments()
	e.Instructions = 60_000
	e.Warmup = 30_000
	e.Profiles = e.Profiles[:2]
	prof := e.Profiles[0]
	a := mustT(e.run(prof, 11, leakctl.TechGated, 4096))
	b := mustT(e.run(prof, 11, leakctl.TechGated, 4096))
	if a.Measurement != b.Measurement {
		t.Fatal("run caching broken")
	}
}

func TestLatencyFigureSmoke(t *testing.T) {
	e := NewExperiments()
	e.Instructions = 60_000
	e.Warmup = 30_000
	e.Profiles = e.Profiles[:3]
	sav, perf := e.LatencyFigure("S", "P", 5, 110, 4096)
	if len(sav.Bench) != 3 || len(perf.Bench) != 3 {
		t.Fatalf("figure sizes: %d/%d", len(sav.Bench), len(perf.Bench))
	}
	for i := range sav.Bench {
		if sav.Drowsy[i] < -100 || sav.Drowsy[i] > 100 {
			t.Errorf("%s drowsy savings %v out of range", sav.Bench[i], sav.Drowsy[i])
		}
		if perf.Gated[i] < 0 {
			t.Errorf("%s negative perf loss %v", perf.Bench[i], perf.Gated[i])
		}
	}
}

func TestIntervalCurveOrdering(t *testing.T) {
	e := NewExperiments()
	e.Instructions = 60_000
	e.Warmup = 30_000
	pts := e.IntervalCurve("gcc", leakctl.TechGated, 11, 110)
	if len(pts) != len(SweepIntervals) {
		t.Fatalf("curve has %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Interval <= pts[i-1].Interval {
			t.Fatal("curve not sorted by interval")
		}
	}
	if pts := e.IntervalCurve("nonesuch", leakctl.TechGated, 11, 110); pts != nil {
		t.Fatal("unknown benchmark should yield nil")
	}
}

func TestAdaptiveRunHooksIn(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	ad := &countingAdapter{iv: 2048}
	mustT(RunOne(context.Background(), fastMachine(11), prof, leakctl.DefaultParams(leakctl.TechGated, 65536), ad))
	if ad.calls == 0 {
		t.Fatal("adapter never consulted")
	}
}

type countingAdapter struct {
	iv    uint64
	calls int
}

func (a *countingAdapter) Recommend(uint64, leakctl.Stats) uint64 {
	a.calls++
	return a.iv
}
func (a *countingAdapter) Every() uint64 { return 8192 }

func TestIL1ControlProducesIL1Measurement(t *testing.T) {
	mc := fastMachine(11)
	il1 := leakctl.DefaultParams(leakctl.TechDrowsy, 4096)
	mc.IL1Control = &il1
	prof, _ := workload.ByName("gcc")
	r := mustT(RunOne(context.Background(), mc, prof, leakctl.DefaultParams(leakctl.TechNone, 0), nil))
	if r.IL1Meas == nil || r.IL1Stats == nil {
		t.Fatal("I-cache control produced no I-cache measurement")
	}
	if r.IL1Meas.StandbyLineCycles == 0 {
		t.Fatal("controlled I-cache recorded no standby time")
	}
	if r.IL1Turnoff <= 0 || r.IL1Turnoff >= 1 {
		t.Fatalf("I-cache turnoff ratio %v", r.IL1Turnoff)
	}
	// Hot code means the I-cache sleeps less than a D-cache would.
	if r.IL1Stats.SlowHits == 0 {
		t.Fatal("drowsy I-cache never woke a line")
	}
}

func TestPlainRunHasNoIL1Measurement(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	r := mustT(RunOne(context.Background(), fastMachine(11), prof, leakctl.DefaultParams(leakctl.TechNone, 0), nil))
	if r.IL1Meas != nil || r.IL1Stats != nil {
		t.Fatal("uncontrolled I-cache produced control measurements")
	}
}
