package sim

import (
	"path/filepath"
	"reflect"
	"testing"

	"hotleakage/internal/attack"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/store"
	"hotleakage/internal/workload"
)

// pinnedEnergyCellHash is the content address of (gzip, L2=11, drowsy,
// 4096) on the default machine, computed before the kind discriminator
// existed. The omitempty Kind field must keep every energy-cell hash
// byte-identical, or a deployed store's whole energy corpus silently
// invalidates.
const pinnedEnergyCellHash = "d221f4bb3edc9b4d4329c4447765fcb7d123121e741b1c7c7e8d425e158c23a3"

// The kind discriminator: an attack cell and an energy cell with otherwise
// identical coordinates must have different content addresses, and energy
// addresses must not move.
func TestKindDiscriminatorPreventsAliasing(t *testing.T) {
	mc := DefaultMachine(11)
	eh, err := CellHash(mc, "gzip", leakctl.TechDrowsy, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if eh != pinnedEnergyCellHash {
		t.Fatalf("energy-cell hash moved: %s != pinned %s (store corpus invalidated)", eh, pinnedEnergyCellHash)
	}
	// An attack scenario named like a benchmark, same technique/interval:
	// the closest possible aliasing candidate.
	sc, ok := attack.ByName("smoke")
	if !ok {
		t.Fatal("smoke scenario missing")
	}
	sc.Name = "gzip"
	ah, err := AttackHash(mc, sc, leakctl.TechDrowsy, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if ah == eh {
		t.Fatal("attack cell aliases energy cell in the store")
	}
}

// Attack hashes ignore the process's energy instruction budget: an attack
// run's length is fixed by the scenario, so -n/-warmup must not fork the
// attack corpus (and local vs daemon hashes agree regardless of budgets).
func TestAttackHashIgnoresInstructionBudget(t *testing.T) {
	sc, _ := attack.ByName("smoke")
	a := DefaultMachine(11)
	b := DefaultMachine(11)
	b.Instructions = 77
	b.Warmup = 33
	ha, err := AttackHash(a, sc, leakctl.TechGated, 2048)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := AttackHash(b, sc, leakctl.TechGated, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("attack hash depends on energy budget: %s vs %s", ha, hb)
	}
	// But it must still track the actual hardware.
	c := DefaultMachine(17)
	hc, err := AttackHash(c, sc, leakctl.TechGated, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("attack hash ignores the machine's L2 latency")
	}
}

func attackExperiments() *Experiments {
	e := NewExperiments()
	e.Instructions = 60_000
	e.Warmup = 20_000
	e.Profiles = workload.Profiles()[:1]
	e.Parallel = false
	return e
}

// RunAttackCells resolves through the ladder and memoizes: results match a
// direct attack.Run bit-for-bit, unknown scenarios degrade to per-cell
// errors, and a repeated call re-executes nothing.
func TestRunAttackCellsMemoAndParity(t *testing.T) {
	e := attackExperiments()
	defer e.Close()
	specs := []AttackSpec{
		{Scenario: "smoke", L2: 11, Technique: leakctl.TechNone, Interval: 0},
		{Scenario: "smoke", L2: 11, Technique: leakctl.TechDrowsy, Interval: 2048},
		{Scenario: "nope", L2: 11, Technique: leakctl.TechDrowsy, Interval: 2048},
	}
	outs, err := e.RunAttackCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	if outs[2].Err == nil {
		t.Fatal("unknown scenario did not fail its cell")
	}
	if outs[0].Err != nil || outs[1].Err != nil {
		t.Fatalf("attack cells failed: %v / %v", outs[0].Err, outs[1].Err)
	}
	if outs[0].Hash == "" || outs[1].Hash == "" || outs[0].Hash == outs[1].Hash {
		t.Fatalf("bad content addresses: %q vs %q", outs[0].Hash, outs[1].Hash)
	}
	// Parity with a direct run on the same hardware view.
	sc, _ := attack.ByName("smoke")
	direct, err := attack.Run(attackMachine(DefaultMachine(11)), sc, leakctl.DefaultParams(leakctl.TechDrowsy, 2048))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs[1].Result, direct) {
		t.Fatalf("ladder result diverges from direct run:\n %+v\n %+v", outs[1].Result, direct)
	}
	executed := e.Executed()
	again, err := e.RunAttackCells(specs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again[1].Result, outs[1].Result) || e.Executed() != executed {
		t.Fatalf("memo miss: executed %d -> %d", executed, e.Executed())
	}
}

// The content-addressed store serves attack cells across processes: a
// second experiment set over the same store simulates nothing and returns
// bit-identical results; energy cells and attack cells coexist in one
// store.
func TestAttackStoreAcrossProcesses(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cells")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := []AttackSpec{
		{Scenario: "smoke", L2: 11, Technique: leakctl.TechDrowsy, Interval: 2048},
		{Scenario: "smoke", L2: 11, Technique: leakctl.TechGated, Interval: 2048},
	}

	e1 := attackExperiments()
	e1.Store = st
	defer e1.Close()
	cold, err := e1.RunAttackCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range cold {
		if o.Err != nil {
			t.Fatalf("cold attack cell %s failed: %v", o.Key, o.Err)
		}
	}
	if e1.Executed() != len(specs) || e1.StoreHits() != 0 {
		t.Fatalf("cold run: executed=%d storeHits=%d", e1.Executed(), e1.StoreHits())
	}
	if err := e1.Err(); err != nil {
		t.Fatalf("cold run store error: %v", err)
	}

	e2 := attackExperiments()
	e2.Store = st
	defer e2.Close()
	warm, err := e2.RunAttackCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Executed() != 0 || e2.StoreHits() != len(specs) {
		t.Fatalf("warm run: executed=%d storeHits=%d, want 0/%d",
			e2.Executed(), e2.StoreHits(), len(specs))
	}
	for i := range specs {
		if warm[i].Err != nil {
			t.Fatalf("warm attack cell failed: %v", warm[i].Err)
		}
		if !reflect.DeepEqual(warm[i].Result, cold[i].Result) {
			t.Fatalf("store round trip not bit-identical:\n %+v\n %+v", warm[i].Result, cold[i].Result)
		}
	}
}

// The frontier figure: an uncontrolled reference row plus both techniques
// per interval, with drowsy and gated-Vss measurably separated in leakage —
// the paper's state-preserving distinction as information flow.
func TestFrontierFigure(t *testing.T) {
	e := attackExperiments()
	defer e.Close()
	f, err := e.FrontierFigure("smoke", 11, 110, []uint64{2048})
	if err != nil {
		t.Fatal(err)
	}
	if f.Scenario != "smoke" || len(f.Points) != 3 {
		t.Fatalf("frontier shape: %+v", f)
	}
	byTech := map[string]FrontierPoint{}
	for _, p := range f.Points {
		if p.AttackErr || p.SavingsErr {
			t.Fatalf("frontier point errored: %+v", p)
		}
		byTech[p.Technique] = p
	}
	none, drowsy, gated := byTech["none"], byTech["drowsy"], byTech["gated-vss"]
	if none.NetSavingsPct != 0 {
		t.Errorf("reference row has nonzero savings: %v", none.NetSavingsPct)
	}
	if drowsy.LeakageBits <= gated.LeakageBits {
		t.Errorf("drowsy leakage %.4f not above gated %.4f: decay masking lost",
			drowsy.LeakageBits, gated.LeakageBits)
	}
	if f.CSV() == "" || f.String() == "" {
		t.Error("frontier renders empty")
	}
	if _, err := e.FrontierFigure("nope", 11, 110, []uint64{2048}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// Attack cells ride the checkpoint: a second experiment set resuming the
// same file restores the attack run instead of re-simulating it.
func TestAttackCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	spec := []AttackSpec{{Scenario: "smoke", L2: 11, Technique: leakctl.TechDrowsy, Interval: 2048}}

	e1 := attackExperiments()
	e1.CheckpointPath = path
	first, err := e1.RunAttackCells(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Err != nil {
		t.Fatal(first[0].Err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := attackExperiments()
	e2.CheckpointPath = path
	e2.Resume = true
	second, err := e2.RunAttackCells(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if second[0].Err != nil {
		t.Fatal(second[0].Err)
	}
	if e2.Executed() != 0 || e2.Resumed() != 1 {
		t.Fatalf("resume: executed=%d resumed=%d, want 0/1", e2.Executed(), e2.Resumed())
	}
	if !reflect.DeepEqual(second[0].Result, first[0].Result) {
		t.Fatalf("checkpoint round trip not bit-identical")
	}
}
