package sim

import (
	"bytes"
	"context"
	"testing"

	"hotleakage/internal/leakctl"
	"hotleakage/internal/trace"
	"hotleakage/internal/workload"
)

func TestReplayedTraceMatchesLiveRun(t *testing.T) {
	// Record exactly the instructions one run consumes, then replay the
	// trace through a fresh machine: every statistic must match
	// bit-for-bit — the trace abstraction is lossless.
	mc := fastMachine(11)
	prof, _ := workload.ByName("parser")
	params := leakctl.DefaultParams(leakctl.TechGated, 4096)

	live, err := RunOne(context.Background(), mc, prof, params, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, prof.Name, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Record generously: the core fetches more than it commits.
	if err := trace.Record(workload.NewGenerator(prof), w, 2*(mc.Warmup+mc.Instructions)+100_000); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := RunOneFrom(context.Background(), mc, r.Name(), r, params, nil)
	if err != nil {
		t.Fatal(err)
	}

	if live.CPU != replayed.CPU {
		t.Fatalf("CPU stats diverged:\nlive   %+v\nreplay %+v", live.CPU, replayed.CPU)
	}
	if live.Measurement != replayed.Measurement {
		t.Fatalf("measurements diverged")
	}
	if r.Laps != 0 {
		t.Fatalf("trace wrapped (%d laps); recording was too short for a faithful replay", r.Laps)
	}
}
