package sim

import (
	"context"
	"sync"
	"testing"

	"hotleakage/internal/leakctl"
	"hotleakage/internal/stats"
)

// These integration tests pin the paper's qualitative findings — the whole
// point of the reproduction. They simulate at reduced scale (a few hundred
// thousand instructions per run) and therefore assert orderings and bands,
// not absolute numbers. They are skipped under -short.

var (
	shapeOnce sync.Once
	shapeExp  *Experiments
)

// shapeExperiments runs at a scale big enough for stable orderings; the
// instance (and its run cache) is shared across all shape tests.
func shapeExperiments(t *testing.T) *Experiments {
	t.Helper()
	if testing.Short() {
		t.Skip("shape tests are long; skipped under -short")
	}
	if raceDetectorEnabled {
		// Full-length runs are ~10x slower under the race detector and
		// blow the package test timeout. These tests assert numeric
		// orderings, not concurrency; the parallel paths are raced by
		// supervised_test.go and internal/harness.
		t.Skip("shape tests exceed the race-mode package timeout")
	}
	shapeOnce.Do(func() {
		shapeExp = NewExperiments()
		shapeExp.Warmup = 250_000
		shapeExp.Instructions = 600_000
	})
	return shapeExp
}

func TestShapeFastL2FavoursGated(t *testing.T) {
	// Paper Section 5.1: "for 5-8 cycle L2 caches, gated-Vss is superior
	// to drowsy cache in terms of both energy savings and performance
	// loss. At 5 cycles, gated-Vss is almost uniformly superior."
	e := shapeExperiments(t)
	sav, perf := e.Figure3_4()
	sd, sg := sav.Avg()
	if sg <= sd {
		t.Errorf("L2=5: gated avg savings %.1f not above drowsy %.1f", sg, sd)
	}
	pd, pg := perf.Avg()
	if pg >= pd {
		t.Errorf("L2=5: gated avg perf loss %.2f not below drowsy %.2f", pg, pd)
	}
	// "Almost uniformly": gated wins savings on a clear majority of
	// benchmarks.
	wins := 0
	for i := range sav.Bench {
		if sav.Gated[i] > sav.Drowsy[i] {
			wins++
		}
	}
	if wins < (len(sav.Bench)+1)/2+1 {
		t.Errorf("L2=5: gated wins only %d/%d benchmarks", wins, len(sav.Bench))
	}
}

func TestShapeSlowL2FavoursDrowsy(t *testing.T) {
	// Paper: "at 17 cycles, drowsy cache becomes clearly superior."
	e := shapeExperiments(t)
	sav, _ := e.Figure10_11()
	sd, sg := sav.Avg()
	if sd <= sg+2 {
		t.Errorf("L2=17: drowsy %.1f not clearly above gated %.1f", sd, sg)
	}
}

func TestShapeMidL2Mixed(t *testing.T) {
	// Paper: "at 11 cycles, the picture is less clear ... drowsy and
	// gated-Vss are better for about an equal number of benchmarks."
	e := shapeExperiments(t)
	sav, _ := e.Figure8_9()
	sd, sg := sav.Avg()
	if d := sd - sg; d > 8 || d < -8 {
		t.Errorf("L2=11: averages should be close, got drowsy %.1f vs gated %.1f", sd, sg)
	}
	gatedWins := 0
	for i := range sav.Bench {
		if sav.Gated[i] > sav.Drowsy[i] {
			gatedWins++
		}
	}
	if gatedWins == 0 || gatedWins == len(sav.Bench) {
		t.Errorf("L2=11: expected a split decision, gated wins %d/%d", gatedWins, len(sav.Bench))
	}
}

func TestShapeGatedDegradesWithL2Latency(t *testing.T) {
	// The longer the L2 latency, the less gated-Vss saves; drowsy is
	// nearly flat (its standby penalty never touches L2).
	e := shapeExperiments(t)
	f5, _ := e.Figure3_4()
	f11, _ := e.Figure8_9()
	f17, _ := e.Figure10_11()
	_, g5 := f5.Avg()
	_, g11 := f11.Avg()
	_, g17 := f17.Avg()
	if !(g5 > g11 && g11 > g17) {
		t.Errorf("gated savings not declining with latency: %.1f %.1f %.1f", g5, g11, g17)
	}
	d5, _ := f5.Avg()
	d17, _ := f17.Avg()
	if d := d17 - d5; d > 3 || d < -3 {
		t.Errorf("drowsy savings should be latency-insensitive: %.1f at 5cy vs %.1f at 17cy", d5, d17)
	}
}

func TestShapeTemperatureRaisesSavings(t *testing.T) {
	// Paper Section 5.2 / Figures 7 vs 8: energy savings are much
	// higher at 110C than at 85C for both schemes.
	e := shapeExperiments(t)
	f85 := e.Figure7()
	f110, _ := e.Figure8_9()
	d85, g85 := f85.Avg()
	d110, g110 := f110.Avg()
	if d110 <= d85 || g110 <= g85 {
		t.Errorf("savings not higher at 110C: drowsy %.1f->%.1f gated %.1f->%.1f",
			d85, d110, g85, g110)
	}
}

func TestShapeAdaptivityHelpsGatedMost(t *testing.T) {
	// Paper Section 5.4: best per-benchmark intervals improve gated-Vss
	// savings substantially and cut its performance loss hard; drowsy
	// only improves a little.
	e := shapeExperiments(t)
	fixSav := e.Figure7() // 85C, default interval
	bestSav, bestPerf := e.Figure12_13()
	_, gFix := fixSav.Avg()
	dFix, _ := fixSav.Avg()
	dBest, gBest := bestSav.Avg()

	gGain := gBest - gFix
	dGain := dBest - dFix
	if gGain < 4 {
		t.Errorf("gated gains only %.1f points from adaptivity", gGain)
	}
	if dGain >= gGain {
		t.Errorf("adaptivity should primarily benefit gated: gated +%.1f, drowsy +%.1f", gGain, dGain)
	}

	// Perf loss at the best interval: gated well under 1%.
	_, gPerf := bestPerf.Avg()
	if gPerf > 1.0 {
		t.Errorf("gated best-interval perf loss %.2f%% not small", gPerf)
	}
}

func TestShapeTable3Spread(t *testing.T) {
	// Paper Table 3: "the best decay intervals vary so widely" for
	// gated-Vss; drowsy's cluster short. gzip and crafty demand the
	// longest gated intervals (their long-gap reuse is expensive to
	// kill); drowsy never needs more than a medium interval.
	e := shapeExperiments(t)
	dr, gt := e.SweepBest(11, 85)
	byName := func(rs []BestIntervalResult, n string) BestIntervalResult {
		for _, r := range rs {
			if r.Bench == n {
				return r
			}
		}
		t.Fatalf("missing %s", n)
		return BestIntervalResult{}
	}

	var gtIv, drIv []float64
	for i := range gt {
		gtIv = append(gtIv, float64(gt[i].Interval))
		drIv = append(drIv, float64(dr[i].Interval))
	}
	if stats.Max(gtIv)/stats.Min(gtIv) < 4 {
		t.Errorf("gated best intervals not spread widely: %v", gtIv)
	}
	if stats.Mean(gtIv) <= stats.Mean(drIv) {
		t.Errorf("gated best intervals (%v) not longer on average than drowsy (%v)",
			stats.Mean(gtIv), stats.Mean(drIv))
	}
	// The long-reuse benchmarks need patient gated decay.
	if g := byName(gt, "gzip"); g.Interval < 16384 {
		t.Errorf("gzip gated best interval %d, want >= 16K", g.Interval)
	}
	if c := byName(gt, "crafty"); c.Interval < 16384 {
		t.Errorf("crafty gated best interval %d, want >= 16K", c.Interval)
	}
}

func TestShapeGatedPerfGrowsWithLatency(t *testing.T) {
	e := shapeExperiments(t)
	_, p5 := e.Figure3_4()
	_, p17 := e.Figure10_11()
	_, g5 := p5.Avg()
	_, g17 := p17.Avg()
	if g17 <= g5 {
		t.Errorf("gated perf loss should grow with L2 latency: %.2f at 5cy vs %.2f at 17cy", g5, g17)
	}
}

func TestShapeResidualOrderingDrivesNetGap(t *testing.T) {
	// At equal turnoff the gap between the techniques' residual terms
	// must favour gated (reason #1 in the paper's list of five).
	e := shapeExperiments(t)
	sav, _ := e.Figure8_9()
	for i, bench := range sav.Bench {
		dr := mustT(e.run(e.Profiles[i], 11, leakctl.TechDrowsy, DefaultInterval))
		gt := mustT(e.run(e.Profiles[i], 11, leakctl.TechGated, DefaultInterval))
		m := e.model(11)
		s := e.suite(11)
		dp := mustT(s.EvaluateRun(context.Background(), e.Profiles[i], dr, 110, m))
		gp := mustT(s.EvaluateRun(context.Background(), e.Profiles[i], gt, 110, m))
		if gp.Cmp.ResidualPct >= dp.Cmp.ResidualPct {
			t.Errorf("%s: gated residual %.1f not below drowsy %.1f",
				bench, gp.Cmp.ResidualPct, dp.Cmp.ResidualPct)
		}
	}
}
