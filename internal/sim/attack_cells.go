package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"

	"hotleakage/internal/attack"
	"hotleakage/internal/harness"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/obs"
	"hotleakage/internal/store"
)

// AttackSpec names one timing-leakage cell by its public coordinates: the
// adversarial scenario, the machine's L2 hit latency, the leakage-control
// technique and the decay interval. It is the security counterpart of
// CellSpec and resolves through the same ladder — memo, remote daemon,
// content-addressed store, checkpoint, simulation.
type AttackSpec struct {
	Scenario  string
	L2        int
	Technique leakctl.Technique
	Interval  uint64
}

// Key returns the cell's run key. The "attack/" prefix keeps attack keys
// disjoint from energy run keys in the memo, the checkpoint file and the
// event stream.
func (as AttackSpec) Key() string {
	return fmt.Sprintf("attack/%s/%d/%d/%d", as.Scenario, as.L2, as.Technique, as.Interval)
}

// attackIdentity is the canonical identity document an attack cell is
// content-addressed by. Kind is always "attack" (never empty), so an attack
// cell can never alias an energy cell whose cellIdentity omits the field.
// The machine description zeroes the instruction budget: an attack run's
// length is fixed by the scenario (trials x secrets), not by -n/-warmup, so
// the same sweep hashes identically regardless of the energy budget the
// process happens to run with.
type attackIdentity struct {
	Kind              string          `json:"kind"`
	CheckpointVersion int             `json:"checkpoint_version"`
	Machine           MachineConfig   `json:"machine"`
	Scenario          string          `json:"scenario"`
	Config            attack.Scenario `json:"config"`
	Technique         string          `json:"technique"`
	Interval          uint64          `json:"interval"`
}

// attackIdentityFor builds the identity document for one attack cell on mc.
func attackIdentityFor(mc MachineConfig, sc attack.Scenario, t leakctl.Technique, interval uint64) attackIdentity {
	mc.Instructions = 0
	mc.Warmup = 0
	return attackIdentity{
		Kind:              "attack",
		CheckpointVersion: checkpointVersion,
		Machine:           mc,
		Scenario:          sc.Name,
		Config:            sc,
		Technique:         t.String(),
		Interval:          interval,
	}
}

// AttackHash returns the content address of one attack cell.
func AttackHash(mc MachineConfig, sc attack.Scenario, t leakctl.Technique, interval uint64) (string, error) {
	return store.CanonicalHash(attackIdentityFor(mc, sc, t, interval))
}

// AttackOutcome is the result of one RunAttackCells cell.
type AttackOutcome struct {
	Spec   AttackSpec
	Key    string
	Hash   string
	Result attack.Result
	Err    *harness.RunError
}

// RemoteAttackCell is one attack cell's outcome as reported by a remote
// daemon.
type RemoteAttackCell struct {
	Spec   AttackSpec
	Result attack.Result
	Err    string
}

// AttackRemoteRunner extends RemoteRunner with attack-cell delegation. The
// resolution ladder discovers it by type assertion on Experiments.Remote,
// so a RemoteRunner that predates the security subsystem keeps working —
// its attack cells simply resolve locally.
type AttackRemoteRunner interface {
	RunAttackCells(ctx context.Context, specs []AttackSpec) ([]RemoteAttackCell, error)
}

// checkAttack rejects corrupt attack results before they enter the memo,
// the checkpoint or the store (mirror of checkRun for energy cells).
func checkAttack(r attack.Result) error {
	if r.Scenario == "" || r.Probes == 0 {
		return fmt.Errorf("empty attack result")
	}
	for _, v := range []float64{
		r.GuessingEntropyPrior, r.GuessingEntropyPosterior,
		r.MinEntropyLeakageBits, r.CapacityBits,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite channel metric in attack result for %s", r.Scenario)
		}
	}
	return nil
}

// attackMachine narrows a machine config to the hardware view an attack
// runs against.
func attackMachine(mc MachineConfig) attack.Machine {
	return attack.Machine{Tech: mc.Tech, L1D: mc.L1D, L2: mc.L2, MemLatency: mc.MemLatency}
}

// attackRunSpec is one pending attack simulation (scenario resolved).
type attackRunSpec struct {
	sc       attack.Scenario
	l2       int
	tech     leakctl.Technique
	interval uint64
}

func (sp attackRunSpec) key() string {
	return AttackSpec{Scenario: sp.sc.Name, L2: sp.l2, Technique: sp.tech, Interval: sp.interval}.Key()
}

// attackSupervisor lazily builds the attack-cell supervisor. It shares the
// energy supervisor's checkpoint file (attack keys carry the "attack/"
// prefix, so the namespaces never collide) and the same worker sizing,
// retry, injection and event plumbing.
func (e *Experiments) attackSupervisor() (*harness.Supervisor[attack.Result], error) {
	// Materialize the checkpoint (and fail fast on an unusable one) through
	// the energy supervisor's builder.
	if _, err := e.supervisor(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.asup != nil {
		return e.asup, nil
	}
	workers := e.Workers
	if workers <= 0 {
		workers = 1
		if e.Parallel {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	e.asup = harness.New(harness.Config[attack.Result]{
		Workers:    workers,
		Timeout:    e.RunTimeout,
		MaxRetries: e.MaxRetries,
		Injector:   e.Injector,
		Checkpoint: e.ckpt,
		Check:      checkAttack,
		Events:     e.Events,
	})
	return e.asup, nil
}

// attackMemo lazily initializes the attack memo maps (callers hold e.mu).
func (e *Experiments) attackMemoLocked() {
	if e.attackRuns == nil {
		e.attackRuns = make(map[string]attack.Result)
		e.attackFailures = make(map[string]*harness.RunError)
	}
}

// RunAttackCells executes an explicit set of attack cells through the full
// resolution ladder: in-process memo, remote daemon (when Remote implements
// AttackRemoteRunner), content-addressed store, federated peer, harness
// checkpoint, and finally the attack simulator under a supervisor. The
// returned outcomes parallel specs; individual failures degrade to per-cell
// errors.
func (e *Experiments) RunAttackCells(specs []AttackSpec) ([]AttackOutcome, error) {
	outs := make([]AttackOutcome, len(specs))
	var rss []attackRunSpec
	for i, as := range specs {
		outs[i].Spec = as
		outs[i].Key = as.Key()
		sc, ok := attack.ByName(as.Scenario)
		if !ok {
			outs[i].Err = &harness.RunError{
				Key: outs[i].Key, Benchmark: as.Scenario, Technique: as.Technique.String(),
				Err: fmt.Sprintf("unknown attack scenario %q", as.Scenario),
			}
			continue
		}
		rss = append(rss, attackRunSpec{sc, as.L2, as.Technique, as.Interval})
	}
	if err := e.runAttackSpecs(rss); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.attackMemoLocked()
	for i := range outs {
		if outs[i].Err != nil {
			continue
		}
		if r, ok := e.attackRuns[outs[i].Key]; ok {
			outs[i].Result = r
			sc, _ := attack.ByName(outs[i].Spec.Scenario)
			mc := e.suiteLocked(outs[i].Spec.L2).MC
			if h, err := AttackHash(mc, sc, outs[i].Spec.Technique, outs[i].Spec.Interval); err == nil {
				outs[i].Hash = h
			}
			continue
		}
		if fe, failed := e.attackFailures[outs[i].Key]; failed {
			outs[i].Err = fe
			continue
		}
		outs[i].Err = &harness.RunError{
			Key: outs[i].Key, Benchmark: outs[i].Spec.Scenario,
			Technique: outs[i].Spec.Technique.String(),
			Err:       "attack cell produced no result",
		}
	}
	return outs, nil
}

// runAttackSpecs is the attack ladder (the security counterpart of
// runSpecs). Attack runs are cheap (tens of thousands of serialized cache
// accesses), so there is no lockstep batch phase; everything else — memo,
// remote delegation with fallback, store/peer resolution, checkpoint
// resume, supervised execution, store persistence — mirrors the energy
// path.
func (e *Experiments) runAttackSpecs(specs []attackRunSpec) error {
	e.mu.Lock()
	e.attackMemoLocked()
	var pending []attackRunSpec
	seen := make(map[string]bool)
	for _, sp := range specs {
		k := sp.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := e.attackRuns[k]; ok {
			continue
		}
		if _, failed := e.attackFailures[k]; failed {
			continue
		}
		pending = append(pending, sp)
	}
	e.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	obsCellsPlanned.Add(int64(len(pending)))

	if rr, ok := e.Remote.(AttackRemoteRunner); ok && rr != nil {
		err := e.runAttackSpecsRemote(rr, pending)
		if err == nil {
			return nil
		}
		if !e.RemoteFallback || e.ctx().Err() != nil {
			canceled := e.ctx().Err() != nil
			e.mu.Lock()
			for _, sp := range pending {
				e.attackFailures[sp.key()] = &harness.RunError{
					Key: sp.key(), Benchmark: sp.sc.Name, Technique: sp.tech.String(),
					Err: err.Error(), Canceled: canceled,
				}
			}
			e.mu.Unlock()
			return err
		}
		obsRemoteDegraded.Add(1)
		if e.Events != nil {
			e.Events.Write(obs.Record{Type: "remote_degraded", Error: err.Error(),
				Detail: fmt.Sprintf("%d attack cells fall back to local resolution", len(pending))})
		}
	}

	sup, err := e.attackSupervisor()
	if err != nil {
		return err
	}
	if e.Store != nil || e.Peer != nil {
		if pending = e.resolveAttackFromStore(pending); len(pending) == 0 {
			return nil
		}
	}

	jobs := make([]harness.Job[attack.Result], len(pending))
	for i, sp := range pending {
		sp := sp
		m := attackMachine(e.suite(sp.l2).MC)
		jobs[i] = harness.Job[attack.Result]{
			Key:       sp.key(),
			Benchmark: sp.sc.Name,
			Technique: sp.tech.String(),
			Run: func(ctx context.Context) (attack.Result, error) {
				return attack.Run(m, sp.sc, leakctl.DefaultParams(sp.tech, sp.interval))
			},
		}
	}
	results := sup.Run(e.ctx(), jobs)

	type done struct {
		sp attackRunSpec
		r  attack.Result
	}
	var completed []done
	e.mu.Lock()
	for i, res := range results {
		sp := pending[i]
		if res.Err != nil {
			e.attackFailures[res.Key] = res.Err
			continue
		}
		e.attackRuns[res.Key] = res.Value
		completed = append(completed, done{sp, res.Value})
		if res.FromCheckpoint {
			e.resumed++
		} else {
			e.executed++
		}
	}
	e.mu.Unlock()

	if e.Store != nil {
		for _, d := range completed {
			mc := e.suite(d.sp.l2).MC
			id := attackIdentityFor(mc, d.sp.sc, d.sp.tech, d.sp.interval)
			h, err := store.CanonicalHash(id)
			if err == nil {
				err = e.Store.Put(h, id, d.r)
			}
			if err != nil {
				e.mu.Lock()
				if e.storeErr == nil {
					e.storeErr = err
				}
				e.mu.Unlock()
				break
			}
		}
	}
	return nil
}

// runAttackSpecsRemote delegates pending attack cells to the daemon,
// mirroring runSpecsRemote's per-cell verdict semantics.
func (e *Experiments) runAttackSpecsRemote(rr AttackRemoteRunner, pending []attackRunSpec) error {
	specs := make([]AttackSpec, len(pending))
	for i, sp := range pending {
		specs[i] = AttackSpec{Scenario: sp.sc.Name, L2: sp.l2, Technique: sp.tech, Interval: sp.interval}
	}
	cells, err := rr.RunAttackCells(e.ctx(), specs)
	if err != nil {
		return fmt.Errorf("remote: %w", err)
	}
	byKey := make(map[string]RemoteAttackCell, len(cells))
	for _, c := range cells {
		byKey[c.Spec.Key()] = c
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, sp := range pending {
		k := sp.key()
		c, ok := byKey[k]
		switch {
		case !ok:
			e.attackFailures[k] = &harness.RunError{
				Key: k, Benchmark: sp.sc.Name, Technique: sp.tech.String(),
				Err: "remote daemon returned no result for this attack cell",
			}
		case c.Err != "":
			e.attackFailures[k] = &harness.RunError{
				Key: k, Benchmark: sp.sc.Name, Technique: sp.tech.String(),
				Err: c.Err,
			}
		default:
			e.attackRuns[k] = c.Result
			e.remoted++
		}
	}
	return nil
}

// resolveAttackFromStore serves pending attack cells from the
// content-addressed store (and the federated peer view on a local miss),
// returning the cells that still need simulation. Validation mirrors the
// energy path: a record that fails to decode or checkAttack is a miss.
func (e *Experiments) resolveAttackFromStore(pending []attackRunSpec) []attackRunSpec {
	type hit struct {
		sp        attackRunSpec
		r         attack.Result
		federated bool
	}
	var hits []hit
	remaining := pending[:0]
	for _, sp := range pending {
		mc := e.suite(sp.l2).MC
		h, err := AttackHash(mc, sp.sc, sp.tech, sp.interval)
		if err != nil {
			remaining = append(remaining, sp)
			continue
		}
		if e.Store != nil {
			rec, ok, gerr := e.Store.Get(h)
			if gerr != nil {
				e.mu.Lock()
				if e.storeErr == nil {
					e.storeErr = gerr
				}
				e.mu.Unlock()
			}
			if ok && gerr == nil {
				var r attack.Result
				if uerr := json.Unmarshal(rec.Value, &r); uerr == nil && checkAttack(r) == nil {
					hits = append(hits, hit{sp, r, false})
					continue
				}
			}
		}
		if e.Peer != nil {
			if raw, ok, perr := e.Peer.FetchCell(e.ctx(), h); perr == nil && ok {
				var r attack.Result
				if uerr := json.Unmarshal(raw, &r); uerr == nil && checkAttack(r) == nil {
					obsFederationHits.Add(1)
					if e.Store != nil {
						if perr := e.Store.Put(h, attackIdentityFor(mc, sp.sc, sp.tech, sp.interval), r); perr != nil {
							e.mu.Lock()
							if e.storeErr == nil {
								e.storeErr = perr
							}
							e.mu.Unlock()
						}
					}
					hits = append(hits, hit{sp, r, true})
					continue
				}
				obsFederationMisses.Add(1)
			} else {
				obsFederationMisses.Add(1)
			}
		}
		obsStoreMisses.Add(1)
		remaining = append(remaining, sp)
	}
	if len(hits) == 0 {
		return remaining
	}
	obsStoreHits.Add(uint64(len(hits)))
	e.mu.Lock()
	e.attackMemoLocked()
	for _, ht := range hits {
		e.attackRuns[ht.sp.key()] = ht.r
		e.storeHits++
	}
	e.mu.Unlock()
	if e.Events != nil {
		for _, ht := range hits {
			rec := obs.Record{Type: "store_hit", RunID: ht.sp.key()}
			if ht.federated {
				rec.Detail = "federated"
			}
			e.Events.Write(rec)
		}
	}
	return remaining
}

// attackResult returns the memoized result for one attack cell, running it
// if needed.
func (e *Experiments) attackResult(sc attack.Scenario, l2 int, t leakctl.Technique, interval uint64) (attack.Result, error) {
	sp := attackRunSpec{sc, l2, t, interval}
	if err := e.runAttackSpecs([]attackRunSpec{sp}); err != nil {
		return attack.Result{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.attackMemoLocked()
	if r, ok := e.attackRuns[sp.key()]; ok {
		return r, nil
	}
	if fe, failed := e.attackFailures[sp.key()]; failed {
		return attack.Result{}, fe
	}
	return attack.Result{}, fmt.Errorf("attack run %s produced no result", sp.key())
}

// FrontierPoint is one operating point on the energy-vs-security frontier:
// a technique at a decay interval, its leakage metrics from the attack
// scenario, and its mean net energy savings across the benchmark suite.
type FrontierPoint struct {
	Technique      string
	Interval       uint64
	LeakageBits    float64 // Smith min-entropy leakage
	GuessPosterior float64
	CapacityBits   float64
	SlowHits       uint64
	Misses         uint64
	// NetSavingsPct is the mean net leakage-energy savings across the
	// benchmark suite at this operating point (0 for the uncontrolled
	// reference row).
	NetSavingsPct float64
	// AttackErr / SavingsErr flag the halves that could not be produced.
	AttackErr  bool
	SavingsErr bool
}

// Frontier is the headline security figure: leakage vs energy savings per
// technique and decay interval for one adversarial scenario.
type Frontier struct {
	ID       string
	Title    string
	Scenario string
	Points   []FrontierPoint
}

// CSV renders the frontier as comma-separated rows for plotting tools.
func (f Frontier) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "technique,interval,leak_bits,guess_posterior,capacity_bits,net_savings_pct\n")
	for _, p := range f.Points {
		leak, guess, cap_ := "ERR", "ERR", "ERR"
		if !p.AttackErr {
			leak = fmt.Sprintf("%.6f", p.LeakageBits)
			guess = fmt.Sprintf("%.6f", p.GuessPosterior)
			cap_ = fmt.Sprintf("%.6f", p.CapacityBits)
		}
		sav := "ERR"
		if !p.SavingsErr {
			sav = fmt.Sprintf("%.4f", p.NetSavingsPct)
		}
		fmt.Fprintf(&b, "%s,%d,%s,%s,%s,%s\n", p.Technique, p.Interval, leak, guess, cap_, sav)
	}
	return b.String()
}

// String renders the frontier as an aligned text table.
func (f Frontier) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [scenario %s]\n", f.ID, f.Title, f.Scenario)
	fmt.Fprintf(&b, "%-10s %9s %11s %11s %11s %12s\n",
		"technique", "interval", "leak(bits)", "guess-post", "cap(bits)", "savings(%)")
	for _, p := range f.Points {
		leak, guess, cap_ := "ERR", "ERR", "ERR"
		if !p.AttackErr {
			leak = fmt.Sprintf("%.4f", p.LeakageBits)
			guess = fmt.Sprintf("%.4f", p.GuessPosterior)
			cap_ = fmt.Sprintf("%.4f", p.CapacityBits)
		}
		sav := "ERR"
		if !p.SavingsErr {
			sav = fmt.Sprintf("%.2f", p.NetSavingsPct)
		}
		fmt.Fprintf(&b, "%-10s %9d %11s %11s %11s %12s\n",
			p.Technique, p.Interval, leak, guess, cap_, sav)
	}
	return b.String()
}

// FrontierFigure builds the energy-vs-security frontier for one scenario:
// an uncontrolled reference row plus drowsy and gated-Vss at each decay
// interval, pairing each operating point's leakage (from the attack
// scenario) with its mean net energy savings across the benchmark suite.
// Failed halves degrade to ERR cells, never to a failed figure.
func (e *Experiments) FrontierFigure(scenario string, l2 int, tempC float64, intervals []uint64) (Frontier, error) {
	sc, ok := attack.ByName(scenario)
	if !ok {
		return Frontier{}, fmt.Errorf("sim: unknown attack scenario %q (have %s)",
			scenario, strings.Join(attack.Names(), ", "))
	}
	ivs := append([]uint64(nil), intervals...)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i] < ivs[j] })

	// Plan every attack cell in one batch so the ladder resolves them
	// together (one remote round trip, one store pass).
	techs := []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated}
	specs := []AttackSpec{{Scenario: scenario, L2: l2, Technique: leakctl.TechNone, Interval: 0}}
	for _, t := range techs {
		for _, iv := range ivs {
			specs = append(specs, AttackSpec{Scenario: scenario, L2: l2, Technique: t, Interval: iv})
		}
	}
	if _, err := e.RunAttackCells(specs); err != nil {
		return Frontier{}, err
	}
	// Energy side: the same operating points across the benchmark suite.
	e.prefetch(l2, techs, ivs)
	m := e.model(l2)
	s := e.suite(l2)

	f := Frontier{
		ID:       "Frontier",
		Title:    fmt.Sprintf("energy-vs-security frontier, L2=%d, %.0fC", l2, tempC),
		Scenario: scenario,
	}
	point := func(t leakctl.Technique, iv uint64) FrontierPoint {
		p := FrontierPoint{Technique: t.String(), Interval: iv}
		if r, err := e.attackResult(sc, l2, t, iv); err != nil {
			p.AttackErr = true
		} else {
			p.LeakageBits = r.MinEntropyLeakageBits
			p.GuessPosterior = r.GuessingEntropyPosterior
			p.CapacityBits = r.CapacityBits
			p.SlowHits = r.SlowHits
			p.Misses = r.Misses
		}
		if t == leakctl.TechNone {
			// The uncontrolled cache is the savings baseline by definition.
			return p
		}
		var sum float64
		n := 0
		for _, prof := range e.Profiles {
			if pt, ok := e.evalCell(s, m, prof, l2, t, iv, tempC); ok {
				sum += pt.Cmp.NetSavingsPct
				n++
			}
		}
		if n == 0 {
			p.SavingsErr = true
		} else {
			p.NetSavingsPct = sum / float64(n)
		}
		return p
	}
	f.Points = append(f.Points, point(leakctl.TechNone, 0))
	for _, t := range techs {
		for _, iv := range ivs {
			f.Points = append(f.Points, point(t, iv))
		}
	}
	return f, nil
}
