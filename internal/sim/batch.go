package sim

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"hotleakage/internal/bpred"
	"hotleakage/internal/cpu"
	"hotleakage/internal/energy"
	"hotleakage/internal/harness"
	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/obs"
	"hotleakage/internal/workload"
)

// FrontFillMode selects how a lockstep group's shared front is produced.
//
// The recorded-trace path (record once into a compact trace.Buffer, then
// decode it into the front) wins when the recording has more than one
// consumer: later groups of the same benchmark and scalar-path cells
// replay it for free. When the front is the recording's ONLY consumer,
// the record+decode round trip is pure overhead over generating the
// stream directly into the front — the two paths produce bit-identical
// fronts (the recorded stream IS the generator's stream, and the parity
// suite pins it), so the planner is free to pick whichever is cheaper.
type FrontFillMode int

const (
	// FrontFillAuto (the default) records when the benchmark's trace has
	// another consumer — it appears in more than one batch group, has
	// cells bound for the scalar path, or is already recorded — and
	// generates live otherwise.
	FrontFillAuto FrontFillMode = iota
	// FrontFillTrace always records and replays (the pre-adaptive
	// behaviour).
	FrontFillTrace
	// FrontFillLive always generates directly into the front.
	FrontFillLive
)

// ParseFrontFillMode parses a -front-fill flag value.
func ParseFrontFillMode(s string) (FrontFillMode, error) {
	switch s {
	case "", "auto":
		return FrontFillAuto, nil
	case "trace":
		return FrontFillTrace, nil
	case "live":
		return FrontFillLive, nil
	}
	return FrontFillAuto, fmt.Errorf("front-fill: unknown mode %q (want auto, trace or live)", s)
}

func (m FrontFillMode) String() string {
	switch m {
	case FrontFillTrace:
		return "trace"
	case FrontFillLive:
		return "live"
	}
	return "auto"
}

// Front-fill outcome counters: how each lockstep group's shared front was
// produced (see fillFront and Experiments.FrontFill).
var (
	obsFrontFillTrace = obs.Default.Counter("sim_front_fill_trace_total")
	obsFrontFillLive  = obs.Default.Counter("sim_front_fill_live_total")
)

// BatchState is one batch-executor goroutine's reusable scratch: the
// shared front buffer (tens of MB for a full-length group, recycled
// across groups), the front's predictor, and one RunState per lane so
// every lane's machine components are reused run-to-run exactly like the
// scalar workers' (cpu.Recycle / RunState.reuse reset them to pristine;
// the reuse parity tests cover the batch fields too).
//
// A BatchState must not be shared between concurrently executing groups.
type BatchState struct {
	front   cpu.Front
	pred    *bpred.Predictor
	predCfg bpred.Config
	lanes   []*RunState
}

// batchLane is one cell riding a lockstep group: its spec going in, and
// either a result or an error (any error sends the cell back to the
// scalar supervisor path, which owns retry/timeout/injection semantics)
// coming out.
type batchLane struct {
	sp  runSpec
	res RunResult
	dur time.Duration
	err error
	// injectPanic arms a mid-batch injected panic: the lane panics on its
	// first execution round, after its batch-mates have started running.
	injectPanic bool
}

// laneRun is the per-lane execution bookkeeping inside a group: the
// assembled machine, the chunk budget of the current phase, and the
// running stats.
type laneRun struct {
	ln     *batchLane
	m      machine
	params leakctl.Params
	flush  func()
	// left counts committed instructions remaining in the current phase;
	// inWarmup selects which phase that is.
	left     uint64
	inWarmup bool
	cs       cpu.Stats
	done     bool
}

// failLanes marks every lane failed with err (called before any lane has
// started executing).
func failLanes(lanes []*batchLane, err error) {
	for _, ln := range lanes {
		if ln.err == nil {
			ln.err = err
		}
	}
}

// fillFront precomputes the group's shared instruction stream, preferring
// the recorded trace (bit-identical to live generation; see TraceCache)
// and falling back to a live generator on recording trouble or the
// defensive wrap check. A panic during fill (corrupt trace payload) is
// returned as an error.
func fillFront(ctx context.Context, bs *BatchState, tc *TraceCache, mc MachineConfig, prof workload.Profile, n uint64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batch front fill: %v", r)
		}
	}()
	if bs.pred == nil || bs.predCfg != mc.Bpred {
		bs.pred = bpred.New(mc.Bpred)
		bs.predCfg = mc.Bpred
	} else {
		bs.pred.Reset()
	}
	if tc != nil {
		if buf, berr := tc.buffer(ctx, prof, n); berr == nil {
			if cur, cerr := buf.Cursor(); cerr == nil {
				bs.front.Fill(cur, bs.pred, n)
				if cur.Laps() == 0 {
					obsFrontFillTrace.Add(1)
					return nil
				}
				// Shorter recording than requested (cannot happen with the
				// cache's own keying, but cheap to guard): refill live.
				obsTraceWraps.Add(1)
				bs.pred.Reset()
			}
		} else if ctx.Err() != nil {
			return berr
		}
	}
	bs.front.Fill(workload.NewGenerator(prof), bs.pred, n)
	obsFrontFillLive.Add(1)
	return nil
}

// runBatchGroup executes a group of technique/interval variants of one
// (benchmark, machine config) in lockstep off one shared front. Each lane
// advances by exactly the scalar path's chunk sequence — warmup in
// runChunk steps, the runOneFromState warmup-boundary resets, then the
// measurement window in runChunk steps — so a lane's Run-call sequence is
// literally the one runCommitted would have issued and the results are
// bit-identical to scalar execution. Lanes that fail (panic, injected
// fault, cancellation) carry the error out; batch-mates are unaffected.
func runBatchGroup(ctx context.Context, mc MachineConfig, prof workload.Profile, lanes []*batchLane, tc *TraceCache, inj faultinject.Injector, bs *BatchState) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if err := mc.Validate(); err != nil {
		failLanes(lanes, fmt.Errorf("%w: %v", ErrInvalidConfig, err))
		return
	}
	n := mc.Warmup + mc.Instructions + traceSlack
	if err := fillFront(ctx, bs, tc, mc, prof, n); err != nil {
		failLanes(lanes, err)
		return
	}
	for len(bs.lanes) < len(lanes) {
		bs.lanes = append(bs.lanes, new(RunState))
	}

	// Per-goroutine obs shard, exactly like a scalar worker's run.
	sh := obs.Default.AcquireShard()
	defer sh.Release()

	runnable := make([]*laneRun, 0, len(lanes))
	for i, ln := range lanes {
		// Injection decisions are taken per lane up front (the batch lane
		// is one attempt, attempt 0). Panics are armed to fire mid-batch —
		// that is the failure mode worth proving isolation for; every other
		// fault kind is the scalar supervisor's business, so the lane is
		// bounced there without running.
		if inj != nil {
			switch d := inj.Decide(ln.sp.key(), 0); d {
			case faultinject.FaultNone:
			case faultinject.FaultPanic:
				ln.injectPanic = true
			default:
				ln.err = fmt.Errorf("faultinject: %s scheduled for %s, deferring to scalar execution", d, ln.sp.key())
				continue
			}
		}
		params := leakctl.DefaultParams(ln.sp.tech, ln.sp.interval)
		if err := params.Validate(); err != nil {
			ln.err = fmt.Errorf("%w: %v", ErrInvalidConfig, err)
			continue
		}
		// The core never touches its instruction source in replay mode, so
		// the lane machine assembles with a nil source.
		m, err := assemble(mc, nil, params, nil, bs.lanes[i])
		if err != nil {
			ln.err = err
			continue
		}
		m.core.AttachFront(&bs.front)
		lr := &laneRun{ln: ln, m: m, params: params, inWarmup: mc.Warmup > 0}
		if lr.inWarmup {
			lr.left = mc.Warmup
		} else {
			lr.left = mc.Instructions
		}
		lr.flush = func() {
			m.core.ObsFlush(sh)
			m.dl1.ObsFlush(sh)
			m.l2.ObsFlush(sh)
			m.il1Plain.ObsFlush(sh)
		}
		runnable = append(runnable, lr)
	}

	// Lockstep rounds: every live lane executes one chunk per round, so
	// the group marches through the shared front together and a fault in
	// one lane surfaces while its batch-mates are mid-flight.
	active := len(runnable)
	for active > 0 {
		for _, lr := range runnable {
			if lr.done {
				continue
			}
			stepLane(ctx, mc, prof, lr)
			if lr.done {
				active--
			}
		}
	}

	// Cost attribution for the EWMA model: the group's wall time (shared
	// front fill included) split evenly across the lanes that produced a
	// result — per-lane duration is what the model expects to see.
	wall := time.Since(start)
	ok := 0
	for _, ln := range lanes {
		if ln.err == nil {
			ok++
		}
	}
	if ok > 0 {
		per := wall / time.Duration(ok)
		for _, ln := range lanes {
			if ln.err == nil {
				ln.dur = per
			}
		}
	}
}

// stepLane advances one lane by one chunk (or phase boundary), recovering
// panics into the lane's error.
func stepLane(ctx context.Context, mc MachineConfig, prof workload.Profile, lr *laneRun) {
	defer func() {
		if r := recover(); r != nil {
			lr.ln.err = &harness.PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
			lr.done = true
		}
	}()
	if err := ctx.Err(); err != nil {
		lr.ln.err = err
		lr.done = true
		return
	}
	if lr.ln.injectPanic {
		lr.ln.injectPanic = false
		panic(fmt.Sprintf("faultinject: injected panic into %s (batch lane)", lr.ln.sp.key()))
	}
	step := uint64(runChunk)
	if lr.left < step {
		step = lr.left
	}
	lr.cs = lr.m.core.Run(step)
	lr.flush()
	lr.left -= step
	if lr.left > 0 {
		return
	}
	if lr.inWarmup {
		// The warmup boundary: the same reset set, in the same order, as
		// runOneFromState (the lane's private predictor is idle in replay
		// mode — the core's BP mirror is what ResetStats zeroes).
		m := lr.m
		m.core.ResetStats()
		m.l2.ResetStats()
		m.mem.ResetStats()
		m.pred.ResetStats()
		m.dl1.ResetStats(m.core.Now())
		m.il1Plain.ResetStats()
		lr.inWarmup = false
		lr.left = mc.Instructions
		return
	}
	finishLane(mc, prof, lr)
	lr.done = true
}

// finishLane assembles the lane's RunResult exactly as runOneFromState
// does, with the core's replay-accumulated BP standing in for the scalar
// path's predictor stats.
func finishLane(mc MachineConfig, prof workload.Profile, lr *laneRun) {
	m, cs := lr.m, lr.cs
	m.dl1.Finish(m.core.Now())
	meas := energy.RunMeasurement{
		Cycles:            cs.Cycles,
		Instructions:      cs.Instructions,
		StandbyLineCycles: m.dl1.StandbyLineCycles(),
		DCacheDynJ:        m.dl1.Energy.Total(),
		L2DynJ:            m.l2.DynJ,
		MemDynJ:           m.mem.DynJ,
		ICacheDynJ:        m.il1Plain.DynJ,
		ClockJ: float64(cs.Cycles) * (m.dl1.AccessE.PerCycleClock +
			mc.Tech.ChipBackgroundW/mc.Tech.ClockHz),
		DStats: m.dl1.Stats,
	}
	lr.ln.res = RunResult{
		Bench:       prof.Name,
		Params:      lr.params,
		CPU:         cs,
		DStats:      m.dl1.Stats,
		L2Stats:     m.l2.Stats,
		ICStats:     m.il1Plain.Stats,
		Bpred:       m.core.BP,
		TurnoffRat:  m.dl1.TurnoffRatio(),
		Measurement: meas,
	}
	if err := checkRun(lr.ln.res); err != nil {
		// Same acceptance bar as the supervisor's Check hook; a rejected
		// result re-runs on the scalar path where retry semantics apply.
		lr.ln.res = RunResult{}
		lr.ln.err = err
	}
}
