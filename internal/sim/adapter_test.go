package sim

// Regression tests for the hardwired-nil-adapter bug: Suite.Evaluate used
// to pass nil to RunOne regardless of caller intent, so the Section 5.4
// adaptive policies were unreachable through the suite path (and through
// Experiments, which runs everything via the suite's machines).

import (
	"context"
	"testing"

	"hotleakage/internal/adaptive"
	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// aggressiveFeedback is a controller tuned to reprogram the interval many
// times within a short test run: tiny window, near-zero tolerance.
func aggressiveFeedback(start uint64) *adaptive.Feedback {
	fb := adaptive.NewFeedback(start, 0.01)
	fb.Window = 2048
	return fb
}

func TestSuiteEvaluatePlumbsAdapter(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	s := NewSuite(fastMachine(11))
	m := leakage.New(s.MC.Tech)
	params := leakctl.DefaultParams(leakctl.TechDrowsy, 4096)

	fixed := mustT(s.Evaluate(context.Background(), prof, params, 110, m, nil))

	fb := aggressiveFeedback(4096)
	adapted := mustT(s.Evaluate(context.Background(), prof, params, 110, m, fb))

	if fb.Changes == 0 {
		t.Fatal("adapter never reprogrammed the interval through Suite.Evaluate — the suite path is dropping the adapter")
	}
	if adapted.Run.DStats == fixed.Run.DStats {
		t.Fatal("adaptive run has identical D-cache stats to the fixed-interval run; adapter had no effect on the simulation")
	}
}

func TestExperimentsAdapterForReachesRuns(t *testing.T) {
	fixed := tinyExperiments()
	fixed.Parallel = false
	prof := fixed.Profiles[0]
	base, err := fixed.run(prof, 5, leakctl.TechDrowsy, 4096)
	if err != nil {
		t.Fatal(err)
	}

	adapted := tinyExperiments()
	adapted.Parallel = false
	calls := 0
	adapted.AdapterFor = func(bench string, tq leakctl.Technique, iv uint64) leakctl.Adapter {
		calls++
		if tq == leakctl.TechNone {
			return nil // baselines stay uncontrolled
		}
		return aggressiveFeedback(iv)
	}
	r, err := adapted.run(prof, 5, leakctl.TechDrowsy, 4096)
	if err != nil {
		t.Fatal(err)
	}

	if calls == 0 {
		t.Fatal("AdapterFor never consulted by the supervised job")
	}
	if r.DStats == base.DStats {
		t.Fatal("AdapterFor-supplied adapter had no effect on the supervised run")
	}
}
