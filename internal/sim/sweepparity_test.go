package sim

import (
	"context"
	"reflect"
	"testing"

	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// parityMachine is small enough that the full profile × technique product
// stays fast, while still exercising warmup, the decay machinery and the
// memory hierarchy.
func parityMachine(l2 int) MachineConfig {
	mc := DefaultMachine(l2)
	mc.Warmup = 30_000
	mc.Instructions = 60_000
	return mc
}

// TestTraceReplayParityAllProfiles is the bit-identity contract behind the
// sweep's shared trace cache: for every benchmark and both control
// techniques, a run replayed from a recorded buffer must equal a live
// generator run in every field of the RunResult — stats, energies,
// turnoff ratios, everything.
func TestTraceReplayParityAllProfiles(t *testing.T) {
	mc := parityMachine(11)
	tc := NewTraceCache("")
	defer tc.Close()
	ctx := context.Background()
	for _, prof := range workload.Profiles() {
		for _, tech := range []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated} {
			params := leakctl.DefaultParams(tech, 4096)
			live, err := RunOne(ctx, mc, prof, params, nil)
			if err != nil {
				t.Fatalf("%s/%s live: %v", prof.Name, tech, err)
			}
			buf, err := tc.buffer(ctx, prof, mc.Warmup+mc.Instructions+traceSlack)
			if err != nil {
				t.Fatalf("%s record: %v", prof.Name, err)
			}
			cur, err := buf.Cursor()
			if err != nil {
				t.Fatalf("%s cursor: %v", prof.Name, err)
			}
			replay, err := RunOneFrom(ctx, mc, prof.Name, cur, params, nil)
			if err != nil {
				t.Fatalf("%s/%s replay: %v", prof.Name, tech, err)
			}
			if cur.Laps() != 0 {
				t.Fatalf("%s/%s: trace wrapped (%d laps); slack too small", prof.Name, tech, cur.Laps())
			}
			if !reflect.DeepEqual(live, replay) {
				t.Fatalf("%s/%s: replay diverged from live run\nlive   %+v\nreplay %+v",
					prof.Name, tech, live, replay)
			}
		}
	}
}

// TestRunStateReuseParity drives one RunState through a sequence of
// heterogeneous runs — technique changes, interval changes, benchmark
// changes, an I-cache-controlled machine, an L2 latency change — and
// checks each against a fresh-build run. Reused components must be
// indistinguishable from new ones even when consecutive runs differ in
// every dimension the reset paths touch.
func TestRunStateReuseParity(t *testing.T) {
	il1 := leakctl.DefaultParams(leakctl.TechDrowsy, 4096)
	mcIL1 := parityMachine(11)
	mcIL1.IL1Control = &il1
	cases := []struct {
		name string
		mc   MachineConfig
		prof string
		tech leakctl.Technique
		iv   uint64
	}{
		{"gated-gcc", parityMachine(11), "gcc", leakctl.TechGated, 4096},
		{"drowsy-gcc", parityMachine(11), "gcc", leakctl.TechDrowsy, 4096},
		{"drowsy-mcf-iv16k", parityMachine(11), "mcf", leakctl.TechDrowsy, 16384},
		{"baseline-gzip", parityMachine(11), "gzip", leakctl.TechNone, 0},
		{"il1-controlled", mcIL1, "gcc", leakctl.TechGated, 4096},
		{"l2-latency-5", parityMachine(5), "gcc", leakctl.TechGated, 4096},
	}
	ctx := context.Background()
	st := new(RunState)
	for _, c := range cases {
		prof, ok := workload.ByName(c.prof)
		if !ok {
			t.Fatalf("%s: unknown profile %q", c.name, c.prof)
		}
		params := leakctl.DefaultParams(c.tech, c.iv)
		fresh, err := RunOne(ctx, c.mc, prof, params, nil)
		if err != nil {
			t.Fatalf("%s fresh: %v", c.name, err)
		}
		reused, err := runOneFromState(ctx, c.mc, prof.Name, workload.NewGenerator(prof), params, nil, st)
		if err != nil {
			t.Fatalf("%s reused: %v", c.name, err)
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("%s: state reuse diverged\nfresh  %+v\nreused %+v", c.name, fresh, reused)
		}
	}
}

// TestRunWithTraceMatchesRunOne covers the production path end to end:
// trace cache, cursor replay and worker state together.
func TestRunWithTraceMatchesRunOne(t *testing.T) {
	mc := parityMachine(11)
	tc := NewTraceCache("")
	defer tc.Close()
	st := new(RunState)
	ctx := context.Background()
	prof, _ := workload.ByName("parser")
	for _, tech := range []leakctl.Technique{leakctl.TechNone, leakctl.TechDrowsy, leakctl.TechGated} {
		params := leakctl.DefaultParams(tech, 4096)
		want, err := RunOne(ctx, mc, prof, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := runWithTrace(ctx, tc, mc, prof, params, nil, st)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: runWithTrace diverged from RunOne", tech)
		}
	}
}

// TestExperimentsFiguresIdenticalWithTraceCacheOff reruns a figure with the
// trace cache disabled and expects the exact same numbers: the performance
// layer must be invisible in the output.
func TestExperimentsFiguresIdenticalWithTraceCacheOff(t *testing.T) {
	build := func(disable bool) (Figure, Figure) {
		e := NewExperiments()
		e.Instructions = 60_000
		e.Warmup = 30_000
		e.Profiles = e.Profiles[:3]
		e.DisableTraceCache = disable
		defer e.Close()
		return e.LatencyFigure("S", "P", 11, 110, 4096)
	}
	savOn, perfOn := build(false)
	savOff, perfOff := build(true)
	if !reflect.DeepEqual(savOn, savOff) || !reflect.DeepEqual(perfOn, perfOff) {
		t.Fatalf("figures differ with trace cache off:\non  %v\noff %v", savOn, savOff)
	}
}

// TestExperimentsFiguresIdenticalAcrossFrontFillModes pins the adaptive
// front-fill planner's bit-identity contract: forcing every lockstep group
// through record+replay, forcing every group to generate live, and letting
// auto mode choose per group must all yield the exact same figures.
func TestExperimentsFiguresIdenticalAcrossFrontFillModes(t *testing.T) {
	build := func(mode FrontFillMode) (Figure, Figure) {
		e := NewExperiments()
		e.Instructions = 60_000
		e.Warmup = 30_000
		e.Profiles = e.Profiles[:3]
		e.FrontFill = mode
		defer e.Close()
		return e.LatencyFigure("S", "P", 11, 110, 4096)
	}
	savAuto, perfAuto := build(FrontFillAuto)
	for _, mode := range []FrontFillMode{FrontFillTrace, FrontFillLive} {
		sav, perf := build(mode)
		if !reflect.DeepEqual(savAuto, sav) || !reflect.DeepEqual(perfAuto, perf) {
			t.Fatalf("figures differ between front-fill auto and %v:\nauto %v\n%v    %v",
				mode, savAuto, mode, sav)
		}
	}
}

// TestParseFrontFillMode covers the flag-value round trip.
func TestParseFrontFillMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want FrontFillMode
	}{{"auto", FrontFillAuto}, {"", FrontFillAuto}, {"trace", FrontFillTrace}, {"live", FrontFillLive}} {
		got, err := ParseFrontFillMode(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseFrontFillMode(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseFrontFillMode("bogus"); err == nil {
		t.Fatal("ParseFrontFillMode(bogus) accepted")
	}
}

// TestExperimentsWorkersOverride checks the worker-count resolution rules:
// an explicit Workers wins, Parallel=false defaults to 1.
func TestExperimentsWorkersOverride(t *testing.T) {
	for _, c := range []struct {
		parallel bool
		workers  int
		wantMin  int
		wantMax  int
	}{
		{false, 0, 1, 1},
		{true, 0, 1, 1 << 20}, // GOMAXPROCS: at least one
		{true, 3, 3, 3},
		{false, 5, 5, 5},
	} {
		e := NewExperiments()
		e.Parallel = c.parallel
		e.Workers = c.workers
		sup, err := e.supervisor()
		if err != nil {
			t.Fatal(err)
		}
		got := sup.Workers()
		if got < c.wantMin || got > c.wantMax {
			t.Fatalf("Parallel=%v Workers=%d resolved to %d workers", c.parallel, c.workers, got)
		}
	}
}
