package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// downRunner is a RemoteRunner for a daemon that is simply gone: every
// batch fails at the transport level.
type downRunner struct {
	calls atomic.Int64
}

var errDaemonDown = errors.New("dial tcp: connection refused")

func (d *downRunner) RunCells(_ context.Context, _, _ uint64, _ []CellSpec) ([]RemoteCell, error) {
	d.calls.Add(1)
	return nil, errDaemonDown
}

// flakyRunner fails its first batch, then serves the rest by simulating
// locally through a second Experiments (standing in for a healthy daemon).
type flakyRunner struct {
	inner *Experiments
	fails atomic.Int64
}

func (f *flakyRunner) RunCells(_ context.Context, _, _ uint64, specs []CellSpec) ([]RemoteCell, error) {
	if f.fails.Add(1) == 1 {
		return nil, errDaemonDown
	}
	outs, err := f.inner.RunCells(specs)
	if err != nil {
		return nil, err
	}
	cells := make([]RemoteCell, len(outs))
	for i, o := range outs {
		cells[i] = RemoteCell{Spec: o.Spec, Result: o.Result}
		if o.Err != nil {
			cells[i].Err = o.Err.Error()
		}
	}
	return cells, nil
}

// remoteExperiments builds a small remote-delegating experiment set.
func remoteExperiments(t *testing.T, r RemoteRunner) *Experiments {
	t.Helper()
	e := NewExperiments()
	e.Instructions = 60_000
	e.Warmup = 20_000
	e.Profiles = workload.Profiles()[:1]
	e.Parallel = false
	e.Remote = r
	return e
}

// TestRemoteFallbackDegradesToLocal: with RemoteFallback, a batch against
// a dead daemon is executed locally instead of failing, and the results
// match a never-remote run bit for bit.
func TestRemoteFallbackDegradesToLocal(t *testing.T) {
	cells := []CellSpec{
		{Bench: "gzip", L2: 11, Technique: leakctl.TechNone, Interval: 0},
		{Bench: "gzip", L2: 11, Technique: leakctl.TechDrowsy, Interval: 4096},
	}

	down := &downRunner{}
	e := remoteExperiments(t, down)
	e.RemoteFallback = true
	outs, err := e.RunCells(cells)
	if err != nil {
		t.Fatalf("fallback run failed outright: %v", err)
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("cell %s failed despite local fallback: %v", o.Key, o.Err)
		}
	}
	if down.calls.Load() == 0 {
		t.Fatal("remote was never attempted")
	}
	if e.Remoted() != 0 || e.Executed() != len(cells) {
		t.Errorf("remoted=%d executed=%d, want 0/%d (all local)", e.Remoted(), e.Executed(), len(cells))
	}

	// Bit-identical to a purely local run.
	local := remoteExperiments(t, nil)
	local.Remote = nil
	want, err := local.RunCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if fmt.Sprintf("%+v", outs[i].Result) != fmt.Sprintf("%+v", want[i].Result) {
			t.Errorf("cell %s: degraded result diverges from local run", outs[i].Key)
		}
	}
}

// TestRemoteNoFallbackFailsBatch pins the old contract when the knob is
// off: a transport failure is a batch error.
func TestRemoteNoFallbackFailsBatch(t *testing.T) {
	e := remoteExperiments(t, &downRunner{})
	if _, err := e.RunCells([]CellSpec{{Bench: "gzip", L2: 11, Technique: leakctl.TechNone}}); err == nil {
		t.Fatal("dead daemon without RemoteFallback reported success")
	} else if !errors.Is(err, errDaemonDown) {
		t.Errorf("batch error %v does not wrap the transport error", err)
	}
}

// TestRemoteFallbackRecovers: only the failed batch degrades; the next
// batch goes remote again once the daemon answers.
func TestRemoteFallbackRecovers(t *testing.T) {
	inner := remoteExperiments(t, nil)
	inner.Remote = nil
	fr := &flakyRunner{inner: inner}
	e := remoteExperiments(t, fr)
	e.RemoteFallback = true

	// Batch 1: remote fails once, degrades to local.
	if _, err := e.RunCells([]CellSpec{{Bench: "gzip", L2: 11, Technique: leakctl.TechNone}}); err != nil {
		t.Fatal(err)
	}
	if e.Executed() != 1 || e.Remoted() != 0 {
		t.Fatalf("batch 1: executed=%d remoted=%d, want 1/0", e.Executed(), e.Remoted())
	}
	// Batch 2: daemon recovered; the new cell is delegated.
	if _, err := e.RunCells([]CellSpec{{Bench: "gzip", L2: 11, Technique: leakctl.TechDrowsy, Interval: 4096}}); err != nil {
		t.Fatal(err)
	}
	if e.Remoted() != 1 {
		t.Errorf("batch 2: remoted=%d, want 1 (daemon recovered)", e.Remoted())
	}
}
