package sim

import (
	"path/filepath"
	"reflect"
	"testing"

	"hotleakage/internal/leakctl"
	"hotleakage/internal/store"
	"hotleakage/internal/workload"
)

// storeExperiments builds a small store-backed experiment set.
func storeExperiments(t *testing.T, st *store.Store) *Experiments {
	t.Helper()
	e := NewExperiments()
	e.Instructions = 60_000
	e.Warmup = 20_000
	e.Profiles = workload.Profiles()[:2]
	e.Parallel = false
	e.Store = st
	return e
}

// TestExperimentsStoreAcrossProcesses is the cross-process generalization
// of the sweep cache: a second experiment set over the same store serves
// every cell from disk with zero simulation, bit-identically; an
// overlapping set simulates only the delta.
func TestExperimentsStoreAcrossProcesses(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cells")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	cells := []CellSpec{
		{Bench: "gzip", L2: 11, Technique: leakctl.TechNone, Interval: 0},
		{Bench: "gzip", L2: 11, Technique: leakctl.TechDrowsy, Interval: 4096},
		{Bench: "gzip", L2: 11, Technique: leakctl.TechGated, Interval: 4096},
	}

	e1 := storeExperiments(t, st)
	cold, err := e1.RunCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range cold {
		if o.Err != nil {
			t.Fatalf("cold cell %s failed: %v", o.Key, o.Err)
		}
		if o.Hash == "" {
			t.Fatalf("cold cell %s has no content address", o.Key)
		}
	}
	if e1.Executed() != len(cells) || e1.StoreHits() != 0 {
		t.Fatalf("cold run: executed=%d storeHits=%d, want %d/0",
			e1.Executed(), e1.StoreHits(), len(cells))
	}
	if err := e1.Err(); err != nil {
		t.Fatalf("cold run store error: %v", err)
	}
	e1.Close()

	// The cost model must have been persisted for day-one LPT scheduling.
	var costs map[string]float64
	if ok, err := st.GetMeta("cost_model_ns_per_instr", &costs); err != nil || !ok {
		t.Fatalf("cost model not persisted: ok=%v err=%v", ok, err)
	}
	for k, v := range costs {
		if v <= 0 {
			t.Errorf("cost model entry %s = %v, want > 0", k, v)
		}
	}
	st.Close()

	// "Restart the daemon": fresh store handle, fresh experiment set.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2 := storeExperiments(t, st2)
	warm, err := e2.RunCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Executed() != 0 || e2.StoreHits() != len(cells) {
		t.Fatalf("warm run: executed=%d storeHits=%d, want 0/%d",
			e2.Executed(), e2.StoreHits(), len(cells))
	}
	for i := range cells {
		if warm[i].Hash != cold[i].Hash {
			t.Errorf("cell %s changed address across runs: %s vs %s",
				cells[i].Key(), cold[i].Hash, warm[i].Hash)
		}
		if !reflect.DeepEqual(warm[i].Result, cold[i].Result) {
			t.Errorf("cell %s not bit-identical across the store round-trip", cells[i].Key())
		}
	}
	e2.Close()

	// Overlapping sweep: one new cell simulates, the rest hit the store.
	e3 := storeExperiments(t, st2)
	overlap := append(append([]CellSpec(nil), cells...),
		CellSpec{Bench: "gzip", L2: 11, Technique: leakctl.TechDrowsy, Interval: 8192})
	outs, err := e3.RunCells(overlap)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("overlap cell %s failed: %v", o.Key, o.Err)
		}
	}
	if e3.Executed() != 1 || e3.StoreHits() != len(cells) {
		t.Errorf("overlap run: executed=%d storeHits=%d, want 1/%d",
			e3.Executed(), e3.StoreHits(), len(cells))
	}
	e3.Close()
}

// TestCellHashSensitivity: the content address must move when anything
// that defines the cell moves — and must not depend on the budget-free
// parts of two identical configurations being the same allocation.
func TestCellHashSensitivity(t *testing.T) {
	mc := DefaultMachine(11)
	mc.Instructions = 60_000
	mc.Warmup = 20_000
	base, err := CellHash(mc, "gzip", leakctl.TechDrowsy, 4096)
	if err != nil {
		t.Fatal(err)
	}
	same, err := CellHash(mc, "gzip", leakctl.TechDrowsy, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if base != same {
		t.Error("identical cells hash differently")
	}
	mc2 := DefaultMachine(11)
	mc2.Instructions = 60_000
	mc2.Warmup = 20_000
	if h, _ := CellHash(mc2, "gzip", leakctl.TechDrowsy, 4096); h != base {
		t.Error("separately built identical machine hashes differently")
	}

	for name, variant := range map[string]func() (string, error){
		"bench":     func() (string, error) { return CellHash(mc, "gcc", leakctl.TechDrowsy, 4096) },
		"technique": func() (string, error) { return CellHash(mc, "gzip", leakctl.TechGated, 4096) },
		"interval":  func() (string, error) { return CellHash(mc, "gzip", leakctl.TechDrowsy, 8192) },
		"l2": func() (string, error) {
			m := DefaultMachine(17)
			m.Instructions, m.Warmup = 60_000, 20_000
			return CellHash(m, "gzip", leakctl.TechDrowsy, 4096)
		},
		"budget": func() (string, error) {
			m := mc
			m.Instructions = 120_000
			return CellHash(m, "gzip", leakctl.TechDrowsy, 4096)
		},
	} {
		h, err := variant()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == base {
			t.Errorf("changing %s did not change the cell hash", name)
		}
	}
}
