package sim

import (
	"fmt"
	"strings"

	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/tech"
)

// Curve is one model-sweep series (Figure 1 of the paper: unit leakage
// versus W/L, V_dd, temperature and V_th).
type Curve struct {
	Name   string
	XLabel string
	X      []float64
	Y      []float64 // amps
}

// String renders the curve as two aligned columns.
func (c Curve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-10s %14s\n", c.Name, c.XLabel, "I_leak (A)")
	for i := range c.X {
		fmt.Fprintf(&b, "%-10.3f %14.4e\n", c.X[i], c.Y[i])
	}
	return b.String()
}

// Figure1 regenerates the four unit-leakage sweeps of the paper's Figure 1
// for the given node (70 nm in the paper): (a) W/L, (b) V_dd,
// (c) temperature, (d) V_th. The 1d sweep exhibits the model's documented
// saturation behaviour: beyond the GIDL regime the simple subthreshold +
// DIBL model stops tracking real devices.
func Figure1(p *tech.Params) [4]Curve {
	tK := tech.RoomTempK
	vdd := p.VddNominal
	vth := p.VthAt(p.N, tK)

	var a Curve
	a.Name, a.XLabel = "Figure 1a — leakage vs W/L", "W/L"
	for wl := 0.5; wl <= 4.01; wl += 0.25 {
		a.X = append(a.X, wl)
		a.Y = append(a.Y, leakage.UnitSubthreshold(p, p.N, wl, vdd, tK, vth))
	}

	var b Curve
	b.Name, b.XLabel = "Figure 1b — leakage vs Vdd", "Vdd (V)"
	for v := 0.2; v <= p.Vdd0+0.001; v += 0.05 {
		b.X = append(b.X, v)
		b.Y = append(b.Y, leakage.UnitSubthreshold(p, p.N, 1, v, tK, vth))
	}

	var c Curve
	c.Name, c.XLabel = "Figure 1c — leakage vs temperature", "T (K)"
	for t := 300.0; t <= 400.01; t += 10 {
		c.X = append(c.X, t)
		c.Y = append(c.Y, leakage.UnitSubthresholdNominal(p, p.N, 1, vdd, t))
	}

	var d Curve
	d.Name, d.XLabel = "Figure 1d — leakage vs Vth", "Vth (V)"
	for v := 0.10; v <= 0.60001; v += 0.025 {
		d.X = append(d.X, v)
		// Subthreshold floor analogous to the GIDL-limited regime the
		// paper describes for Figure 1d.
		i := leakage.UnitSubthreshold(p, p.N, 1, vdd, tK, v)
		if gidl := leakage.UnitSubthreshold(p, p.N, 1, vdd, tK, leakage.GIDLWarningVth); v > leakage.GIDLWarningVth {
			i = gidl
		}
		d.Y = append(d.Y, i)
	}
	return [4]Curve{a, b, c, d}
}

// Table1 renders the settling-time table (paper Table 1) from the
// technique parameter defaults, confirming the configuration actually used
// by the simulator.
func Table1() string {
	dr := leakctl.DefaultParams(leakctl.TechDrowsy, DefaultInterval)
	gt := leakctl.DefaultParams(leakctl.TechGated, DefaultInterval)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — settling time (cycles)\n")
	fmt.Fprintf(&b, "%-24s %8s %10s\n", "", "drowsy", "gated-vss")
	fmt.Fprintf(&b, "%-24s %8d %10d\n", "low leak mode to high", dr.SettleWake, gt.SettleWake)
	fmt.Fprintf(&b, "%-24s %8d %10d\n", "high leak to low", dr.SettleSleep, gt.SettleSleep)
	return b.String()
}

// Table2 renders the simulated-machine configuration (paper Table 2) from
// the live MachineConfig, so the table can never drift from the simulator.
func Table2(mc MachineConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — simulated processor configuration\n")
	fmt.Fprintf(&b, "Instruction window   %d-RUU, %d-LSQ\n", mc.CPU.RUUSize, mc.CPU.LSQSize)
	fmt.Fprintf(&b, "Issue width          %d instructions per cycle\n", mc.CPU.IssueWidth)
	fmt.Fprintf(&b, "Functional units     %d IntALU, %d IntMult/Div, %d FPALU, %d FPMult/Div, %d mem ports\n",
		mc.CPU.IntALUs, mc.CPU.IntMulDivs, mc.CPU.FPALUs, mc.CPU.FPMulDivs, mc.CPU.MemPorts)
	fmt.Fprintf(&b, "L1 D-cache           %d KB, %d-way LRU, %d B blocks, %d-cycle latency\n",
		mc.L1D.SizeBytes/1024, mc.L1D.Assoc, mc.L1D.LineBytes, mc.L1D.HitLatency)
	fmt.Fprintf(&b, "L1 I-cache           %d KB, %d-way LRU, %d B blocks, %d-cycle latency\n",
		mc.L1I.SizeBytes/1024, mc.L1I.Assoc, mc.L1I.LineBytes, mc.L1I.HitLatency)
	fmt.Fprintf(&b, "L2                   unified, %d MB, %d-way LRU, %d B blocks, %d-cycle latency\n",
		mc.L2.SizeBytes/(1024*1024), mc.L2.Assoc, mc.L2.LineBytes, mc.L2.HitLatency)
	fmt.Fprintf(&b, "Memory               %d cycles\n", mc.MemLatency)
	fmt.Fprintf(&b, "Branch predictor     hybrid: %dK bimod and %dK/%d-bit GAg, %dK chooser\n",
		mc.Bpred.BimodEntries/1024, mc.Bpred.GShareEntries/1024, mc.Bpred.HistoryBits, mc.Bpred.ChooserEntries/1024)
	fmt.Fprintf(&b, "BTB                  %dK-entry, %d-way\n", mc.Bpred.BTBEntries/1024, mc.Bpred.BTBAssoc)
	fmt.Fprintf(&b, "Technology           %s, %.2g V, %.0f MHz\n",
		mc.Tech.Node, mc.Tech.VddNominal, mc.Tech.ClockHz/1e6)
	return b.String()
}
