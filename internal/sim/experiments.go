package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/stats"
	"hotleakage/internal/workload"
)

// DefaultInterval is the fixed decay interval used for the non-adaptive
// figures. The paper chose "shorter decay intervals that — for our leakage
// model — we found to give better energy savings"; 4K cycles plays that
// role here.
const DefaultInterval = 4096

// SweepIntervals are the candidate decay intervals of the adaptivity study
// (Figures 12-13 and Table 3).
var SweepIntervals = []uint64{1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Experiments runs and caches every simulation the paper's figures need.
// Timing runs are cached by (benchmark, L2 latency, technique, interval),
// so the 85C and 110C variants of a figure reuse one run, and Table 3
// shares the sweep with Figures 12-13.
type Experiments struct {
	// Instructions / Warmup configure run length (committed instructions).
	Instructions uint64
	Warmup       uint64
	// Profiles are the benchmarks, in presentation order.
	Profiles []workload.Profile
	// Variation optionally enables the inter-die Monte Carlo.
	Variation leakage.VariationConfig
	// Parallel enables concurrent simulation across runs.
	Parallel bool

	mu     sync.Mutex
	suites map[int]*Suite // per L2 latency
	runs   map[string]RunResult
}

// NewExperiments returns the paper's experiment set at reduced scale
// (defaults: 1M measured instructions after a 300K warmup; the paper used
// 500M after 2B on full SPEC).
func NewExperiments() *Experiments {
	return &Experiments{
		Instructions: 1_000_000,
		Warmup:       300_000,
		Profiles:     workload.Profiles(),
		Parallel:     true,
		suites:       make(map[int]*Suite),
		runs:         make(map[string]RunResult),
	}
}

func (e *Experiments) suite(l2 int) *Suite {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.suites[l2]
	if !ok {
		mc := DefaultMachine(l2)
		mc.Instructions = e.Instructions
		mc.Warmup = e.Warmup
		s = NewSuite(mc)
		e.suites[l2] = s
	}
	return s
}

func runKey(bench string, l2 int, t leakctl.Technique, interval uint64) string {
	return fmt.Sprintf("%s/%d/%d/%d", bench, l2, t, interval)
}

// run returns the (cached) timing run for one configuration.
func (e *Experiments) run(prof workload.Profile, l2 int, t leakctl.Technique, interval uint64) RunResult {
	key := runKey(prof.Name, l2, t, interval)
	e.mu.Lock()
	if r, ok := e.runs[key]; ok {
		e.mu.Unlock()
		return r
	}
	e.mu.Unlock()

	s := e.suite(l2)
	var r RunResult
	if t == leakctl.TechNone {
		r = s.Baseline(prof)
	} else {
		r = RunOne(s.MC, prof, leakctl.DefaultParams(t, interval), nil)
	}
	e.mu.Lock()
	e.runs[key] = r
	e.mu.Unlock()
	return r
}

// prefetch simulates a set of configurations concurrently so later cached
// lookups are cheap. Baselines are simulated first (they are shared).
func (e *Experiments) prefetch(l2 int, techs []leakctl.Technique, intervals []uint64) {
	var wg sync.WaitGroup
	par := 1
	if e.Parallel {
		par = 8
	}
	sem := make(chan struct{}, par)
	for _, prof := range e.Profiles {
		prof := prof
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			e.run(prof, l2, leakctl.TechNone, 0)
		}()
	}
	wg.Wait()
	for _, prof := range e.Profiles {
		for _, t := range techs {
			for _, iv := range intervals {
				prof, t, iv := prof, t, iv
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					e.run(prof, l2, t, iv)
				}()
			}
		}
	}
	wg.Wait()
}

// model builds a fresh leakage model (with the configured variation).
func (e *Experiments) model(l2 int) *leakage.Model {
	return leakage.New(e.suite(l2).MC.Tech, leakage.WithVariation(e.Variation))
}

// Cell is one (benchmark, technique) result in a figure.
type Cell struct {
	Bench string
	Point Point
}

// Figure is one reproduced figure: per-benchmark series for drowsy and
// gated-Vss plus their averages, for one metric.
type Figure struct {
	ID     string
	Title  string
	Metric string // "net savings %" or "perf loss %"
	Bench  []string
	Drowsy []float64
	Gated  []float64
}

// Avg returns the arithmetic means of the two series.
func (f Figure) Avg() (drowsy, gated float64) {
	return stats.Mean(f.Drowsy), stats.Mean(f.Gated)
}

// CSV renders the figure as RFC-4180-ish comma-separated rows
// (benchmark,drowsy,gated) with a header, for plotting tools.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark,drowsy,gated-vss\n")
	for i, n := range f.Bench {
		fmt.Fprintf(&b, "%s,%.4f,%.4f\n", n, f.Drowsy[i], f.Gated[i])
	}
	ad, ag := f.Avg()
	fmt.Fprintf(&b, "AVG,%.4f,%.4f\n", ad, ag)
	return b.String()
}

// String renders the figure as an aligned text table, the harness's
// equivalent of the paper's bar charts.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%s]\n", f.ID, f.Title, f.Metric)
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "bench", "drowsy", "gated-vss")
	for i, n := range f.Bench {
		fmt.Fprintf(&b, "%-8s %10.2f %10.2f\n", n, f.Drowsy[i], f.Gated[i])
	}
	ad, ag := f.Avg()
	fmt.Fprintf(&b, "%-8s %10.2f %10.2f\n", "AVG", ad, ag)
	return b.String()
}

// LatencyFigure reproduces one (net savings, perf loss) figure pair at the
// given L2 latency, temperature and fixed decay interval.
func (e *Experiments) LatencyFigure(idSav, idPerf string, l2 int, tempC float64, interval uint64) (sav, perf Figure) {
	e.prefetch(l2, []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated}, []uint64{interval})
	m := e.model(l2)
	s := e.suite(l2)

	title := fmt.Sprintf("L2 latency %d cycles, %.0fC, interval %d", l2, tempC, interval)
	sav = Figure{ID: idSav, Title: title, Metric: "net leakage savings %"}
	perf = Figure{ID: idPerf, Title: title, Metric: "performance loss %"}
	for _, prof := range e.Profiles {
		dr := e.run(prof, l2, leakctl.TechDrowsy, interval)
		gt := e.run(prof, l2, leakctl.TechGated, interval)
		dp := s.EvaluateRun(prof, dr, tempC, m)
		gp := s.EvaluateRun(prof, gt, tempC, m)
		sav.Bench = append(sav.Bench, prof.Name)
		sav.Drowsy = append(sav.Drowsy, dp.Cmp.NetSavingsPct)
		sav.Gated = append(sav.Gated, gp.Cmp.NetSavingsPct)
		perf.Bench = append(perf.Bench, prof.Name)
		perf.Drowsy = append(perf.Drowsy, dp.Cmp.PerfLossPct)
		perf.Gated = append(perf.Gated, gp.Cmp.PerfLossPct)
	}
	return sav, perf
}

// Figure3_4 is the 5-cycle L2 pair at 110C.
func (e *Experiments) Figure3_4() (Figure, Figure) {
	return e.LatencyFigure("Figure 3", "Figure 4", 5, 110, DefaultInterval)
}

// Figure5_6 is the 8-cycle L2 pair at 110C.
func (e *Experiments) Figure5_6() (Figure, Figure) {
	return e.LatencyFigure("Figure 5", "Figure 6", 8, 110, DefaultInterval)
}

// Figure7 is net savings at 85C with an 11-cycle L2 (the timing runs are
// shared with Figure 8).
func (e *Experiments) Figure7() Figure {
	sav, _ := e.LatencyFigure("Figure 7", "-", 11, 85, DefaultInterval)
	return sav
}

// Figure8_9 is the 11-cycle L2 pair at 110C.
func (e *Experiments) Figure8_9() (Figure, Figure) {
	return e.LatencyFigure("Figure 8", "Figure 9", 11, 110, DefaultInterval)
}

// Figure10_11 is the 17-cycle L2 pair at 110C.
func (e *Experiments) Figure10_11() (Figure, Figure) {
	return e.LatencyFigure("Figure 10", "Figure 11", 17, 110, DefaultInterval)
}

// BestIntervalResult is one benchmark's best-decay-interval outcome for one
// technique (Figures 12-13, Table 3).
type BestIntervalResult struct {
	Bench    string
	Interval uint64
	Point    Point
}

// SweepBest finds, per benchmark and technique, the decay interval in
// SweepIntervals with the highest net savings at the given operating point.
// This is the oracle the paper uses for its adaptivity headroom study.
func (e *Experiments) SweepBest(l2 int, tempC float64) (drowsy, gated []BestIntervalResult) {
	techs := []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated}
	e.prefetch(l2, techs, SweepIntervals)
	m := e.model(l2)
	s := e.suite(l2)
	for _, prof := range e.Profiles {
		for _, t := range techs {
			best := BestIntervalResult{Bench: prof.Name}
			first := true
			for _, iv := range SweepIntervals {
				r := e.run(prof, l2, t, iv)
				p := s.EvaluateRun(prof, r, tempC, m)
				if first || p.Cmp.NetSavingsPct > best.Point.Cmp.NetSavingsPct {
					best.Interval = iv
					best.Point = p
					first = false
				}
			}
			if t == leakctl.TechDrowsy {
				drowsy = append(drowsy, best)
			} else {
				gated = append(gated, best)
			}
		}
	}
	return drowsy, gated
}

// Figure12_13 reproduces the best-per-benchmark-interval pair: net savings
// at 85C (Figure 12) and performance loss (Figure 13), both with an
// 11-cycle L2.
func (e *Experiments) Figure12_13() (Figure, Figure) {
	dr, gt := e.SweepBest(11, 85)
	sav := Figure{ID: "Figure 12", Title: "best per-benchmark decay interval, 85C, L2=11", Metric: "net leakage savings %"}
	perf := Figure{ID: "Figure 13", Title: "best per-benchmark decay interval, L2=11", Metric: "performance loss %"}
	for i := range dr {
		sav.Bench = append(sav.Bench, dr[i].Bench)
		sav.Drowsy = append(sav.Drowsy, dr[i].Point.Cmp.NetSavingsPct)
		sav.Gated = append(sav.Gated, gt[i].Point.Cmp.NetSavingsPct)
		perf.Bench = append(perf.Bench, dr[i].Bench)
		perf.Drowsy = append(perf.Drowsy, dr[i].Point.Cmp.PerfLossPct)
		perf.Gated = append(perf.Gated, gt[i].Point.Cmp.PerfLossPct)
	}
	return sav, perf
}

// Table3 returns the best decay intervals per benchmark (paper Table 3),
// from the same sweep as Figures 12-13.
func (e *Experiments) Table3() string {
	dr, gt := e.SweepBest(11, 85)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — best decay intervals (cycles)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "bench", "drowsy", "gated-vss")
	for i := range dr {
		fmt.Fprintf(&b, "%-8s %9dk %9dk\n", dr[i].Bench, dr[i].Interval/1024, gt[i].Interval/1024)
	}
	return b.String()
}

// IntervalCurve returns net savings and perf loss per interval for one
// benchmark and technique (used by ablation benches and the adaptive
// study).
func (e *Experiments) IntervalCurve(bench string, t leakctl.Technique, l2 int, tempC float64) []Point {
	prof, ok := workload.ByName(bench)
	if !ok {
		return nil
	}
	m := e.model(l2)
	s := e.suite(l2)
	var out []Point
	for _, iv := range SweepIntervals {
		r := e.run(prof, l2, t, iv)
		out = append(out, s.EvaluateRun(prof, r, tempC, m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Interval < out[j].Interval })
	return out
}
