package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hotleakage/internal/attack"
	"hotleakage/internal/harness"
	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/obs"
	"hotleakage/internal/store"
	"hotleakage/internal/workload"
)

// obsCellsPlanned tracks how many cells the suite has planned so far; the
// sampler pairs it with the harness outcome counters for progress/ETA.
var obsCellsPlanned = obs.Default.Gauge(obs.GaugeCellsPlanned)

// Result-store outcome counters: cells served from the content-addressed
// store vs. cells that had to be resolved further down the ladder.
var (
	obsStoreHits   = obs.Default.Counter(obs.MetricStoreHits)
	obsStoreMisses = obs.Default.Counter(obs.MetricStoreMisses)
)

// Federation outcome counters: cells resolved from the peer's store view
// after a local miss, and peer lookups that missed or errored.
var (
	obsFederationHits   = obs.Default.Counter(obs.MetricFederationHits)
	obsFederationMisses = obs.Default.Counter(obs.MetricFederationMisses)
)

// obsRemoteDegraded counts batches that fell back from a sick remote
// daemon to the local resolution ladder (RemoteFallback).
var obsRemoteDegraded = obs.Default.Counter(obs.MetricRemoteDegraded)

// Lockstep-batch outcome metrics: executed groups, the lanes they
// carried, lanes bounced back to the scalar supervisor, and the last
// sweep's mean occupancy (lanes per group, in hundredths). The
// run-completion and checkpoint-hit counters are shared with the harness
// (registration is idempotent by name), so progress/ETA math sees batch
// lanes and scalar runs through one pair of counters.
var (
	obsBatchGroups    = obs.Default.Counter(obs.MetricBatchGroups)
	obsBatchLanes     = obs.Default.Counter(obs.MetricBatchLanes)
	obsBatchFallback  = obs.Default.Counter(obs.MetricBatchScalarFallback)
	obsBatchOccupancy = obs.Default.Gauge(obs.GaugeBatchLaneOccupancy)
	obsBatchRunsDone  = obs.Default.Counter(obs.MetricRunsCompleted)
	obsBatchCkptHits  = obs.Default.Counter(obs.MetricCheckpointHits)
)

// DefaultInterval is the fixed decay interval used for the non-adaptive
// figures. The paper chose "shorter decay intervals that — for our leakage
// model — we found to give better energy savings"; 4K cycles plays that
// role here.
const DefaultInterval = 4096

// SweepIntervals are the candidate decay intervals of the adaptivity study
// (Figures 12-13 and Table 3).
var SweepIntervals = []uint64{1024, 2048, 4096, 8192, 16384, 32768, 65536}

// checkpointVersion is bumped whenever the simulator changes in a way that
// invalidates previously checkpointed RunResults.
const checkpointVersion = 1

// ckptHeader fingerprints the configuration a checkpoint was produced
// under. Resuming against a mismatched header is refused, so results from
// a different -n/-warmup are never silently reused, and a resumed sweep
// cannot mix faulted and clean cells: the fault-injection spec is part of
// the fingerprint (omitted when empty, so clean checkpoints keep their
// original header form).
type ckptHeader struct {
	Version      int    `json:"version"`
	Instructions uint64 `json:"instructions"`
	Warmup       uint64 `json:"warmup"`
	FaultInject  string `json:"faultinject,omitempty"`
}

// injectorSpec renders an injector for the checkpoint header. Only
// injectors that can describe themselves — notably the flag-built
// faultinject.Deterministic, whose String is the canonical spec — are
// fingerprinted; an anonymous test injector (faultinject.Func) has no
// stable description and stays outside the header contract. Failed runs
// are never checkpointed and NaN-corrupted ones are rejected by checkRun,
// so the values in a checkpoint are clean either way — the header guard's
// job is to keep a resumed *flag-driven* sweep from silently changing its
// injection config between passes.
func injectorSpec(inj faultinject.Injector) string {
	if s, ok := inj.(fmt.Stringer); ok {
		return s.String()
	}
	return ""
}

// Experiments runs and caches every simulation the paper's figures need.
// Timing runs are cached by (benchmark, L2 latency, technique, interval),
// so the 85C and 110C variants of a figure reuse one run, and Table 3
// shares the sweep with Figures 12-13.
//
// Every simulation is executed under the harness supervisor: panics are
// recovered into structured failures, per-run deadlines and suite-wide
// cancellation are enforced, transient failures retry with backoff, and
// completed runs are checkpointed. A failed run degrades to an ERR cell in
// the affected figures instead of aborting the suite; Failures and
// FailureSummary report what went wrong.
type Experiments struct {
	// Instructions / Warmup configure run length (committed instructions).
	Instructions uint64
	Warmup       uint64
	// Profiles are the benchmarks, in presentation order.
	Profiles []workload.Profile
	// Variation optionally enables the inter-die Monte Carlo.
	Variation leakage.VariationConfig
	// Parallel enables concurrent simulation across runs.
	Parallel bool
	// Workers sizes the supervisor's worker pool. 0 defaults to
	// runtime.GOMAXPROCS(0) when Parallel and 1 otherwise; an explicit
	// value wins either way, so Workers=1 is equivalent to serial.
	Workers int
	// DisableBatch turns off lockstep batch execution and runs every cell
	// through the scalar supervisor path (the pre-batch behaviour; results
	// are bit-identical either way — the parity suite enforces it — so
	// this is a debugging/benchmarking knob, not a correctness one).
	DisableBatch bool
	// DisableTraceCache turns off the shared instruction-trace cache and
	// runs every cell from a live generator (the pre-cache behaviour; the
	// results are bit-identical either way, so this is a
	// debugging/benchmarking knob, not a correctness one).
	DisableTraceCache bool
	// FrontFill selects how lockstep batch groups produce their shared
	// instruction front: record+replay through the trace cache, live
	// generation straight into the front, or (the zero value) an automatic
	// per-group choice that skips the record+decode round trip for
	// single-consumer traces — see FrontFillMode. Results are bit-identical
	// on every setting.
	FrontFill FrontFillMode
	// TraceSpillDir, when non-empty, keeps recorded traces in files under
	// this directory instead of memory — for memory-constrained hosts
	// running very long traces (each replay then re-reads its file).
	TraceSpillDir string
	// SharedTraces, when non-nil, is an externally owned instruction-trace
	// cache used instead of a per-Experiments one — the daemon shares one
	// cache across every sweep it serves. Close never closes it.
	SharedTraces *TraceCache

	// Store, when non-nil, is the content-addressed result store: before a
	// cell is executed (or even checkpoint-resolved) its hash is looked up,
	// and every completed cell is persisted, so identical cells are served
	// from disk across processes and daemon restarts. The EWMA cost model
	// is persisted in the store's meta segment, so a fresh process
	// schedules longest-first from its first batch.
	Store *store.Store

	// Peer, when non-nil, extends the resolution ladder with a federated
	// store view: a cell that misses the local Store is fetched from the
	// peer (normally the cluster coordinator) before being simulated, and
	// a peer hit is persisted into the local Store so the next miss is
	// local. Peer trouble (unreachable, garbage) degrades to simulation —
	// it never fails a cell. First-write-wins store semantics make a
	// double-computed cell (both sides simulated it) harmless.
	Peer CellFetcher

	// Remote, when non-nil, delegates execution of pending cells to a
	// leakd daemon (leakbench -remote): the local process keeps the memo,
	// evaluation and rendering layers and ships only simulation out.
	Remote RemoteRunner
	// RemoteFallback lets a batch whose remote delegation fails at the
	// transport level (daemon down, circuit open, sweep failed) degrade to
	// the local resolution ladder — store, checkpoint, simulation —
	// instead of failing the batch. Per-cell remote failures are still
	// per-cell verdicts, not a reason to re-run locally.
	RemoteFallback bool

	// Ctx, when non-nil, cancels the whole suite (SIGINT handling in the
	// commands). In-flight runs drain as Canceled failures; completed
	// results are kept.
	Ctx context.Context
	// RunTimeout is the per-run deadline (0 = none).
	RunTimeout time.Duration
	// MaxRetries is how many times a transiently failed run is re-executed
	// (capped exponential backoff between attempts).
	MaxRetries int
	// Injector, when non-nil, injects faults into runs (testing only).
	Injector faultinject.Injector
	// CheckpointPath, when non-empty, appends each completed run to a
	// JSON-lines file; Resume loads it first so only missing runs execute.
	CheckpointPath string
	Resume         bool
	// Events, when non-nil, receives the supervisor's structured trace
	// events (run start/retry/fault/done/error, checkpoint hits), keyed by
	// the run key so they join against checkpoint records.
	Events harness.EventSink
	// AdapterFor, when non-nil, supplies the leakage-control adapter for
	// each run (adaptive-decay studies through the supervised path). It is
	// invoked once per attempt so retried runs get fresh adapter state and
	// stay deterministic.
	AdapterFor func(bench string, t leakctl.Technique, interval uint64) leakctl.Adapter

	mu        sync.Mutex
	suites    map[int]*Suite // per L2 latency
	runs      map[string]RunResult
	failures  map[string]*harness.RunError
	sup       *harness.Supervisor[RunResult]
	ckpt      *harness.Checkpoint
	supErr    error
	// Attack-cell memo and supervisor (attack_cells.go). The maps are
	// lazily initialized so zero-value and literal-constructed Experiments
	// keep working; asup shares e.ckpt with the energy supervisor (the
	// "attack/" key prefix keeps the namespaces disjoint).
	attackRuns     map[string]attack.Result
	attackFailures map[string]*harness.RunError
	asup           *harness.Supervisor[attack.Result]
	executed  int // runs actually simulated this process
	resumed   int // runs restored from the checkpoint
	storeHits int // runs served from the content-addressed store
	remoted   int // runs delegated to a remote daemon
	storeErr  error

	// batchGroups / batchLanes count lockstep groups executed and the
	// cells they carried; batchStates is the pool of per-goroutine batch
	// scratch (front buffer, lane RunStates) reused across groups and
	// runSpecs calls.
	batchGroups int
	batchLanes  int
	batchStates []*BatchState

	// traces is the shared instruction-trace cache, attached to every
	// suite (nil when DisableTraceCache).
	traces *TraceCache
	// costs is the dispatch cost model: observed ns/instr EWMA keyed by
	// bench+"/"+technique, fed back from completed run durations so later
	// batches dispatch their slowest cells first.
	costs map[string]float64
}

// NewExperiments returns the paper's experiment set at reduced scale
// (defaults: 1M measured instructions after a 300K warmup; the paper used
// 500M after 2B on full SPEC).
func NewExperiments() *Experiments {
	return &Experiments{
		Instructions: 1_000_000,
		Warmup:       300_000,
		Profiles:     workload.Profiles(),
		Parallel:     true,
		suites:       make(map[int]*Suite),
		runs:         make(map[string]RunResult),
		failures:     make(map[string]*harness.RunError),
		costs:        make(map[string]float64),
	}
}

func (e *Experiments) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

func (e *Experiments) suite(l2 int) *Suite {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.suiteLocked(l2)
}

func (e *Experiments) suiteLocked(l2 int) *Suite {
	s, ok := e.suites[l2]
	if !ok {
		mc := DefaultMachine(l2)
		mc.Instructions = e.Instructions
		mc.Warmup = e.Warmup
		s = NewSuite(mc)
		if !e.DisableTraceCache {
			if e.SharedTraces != nil {
				s.Traces = e.SharedTraces
			} else {
				if e.traces == nil {
					e.traces = NewTraceCache(e.TraceSpillDir)
				}
				s.Traces = e.traces
			}
		}
		e.suites[l2] = s
	}
	return s
}

func runKey(bench string, l2 int, t leakctl.Technique, interval uint64) string {
	return fmt.Sprintf("%s/%d/%d/%d", bench, l2, t, interval)
}

// Init eagerly builds the supervisor (opening the checkpoint file if one
// is configured) so commands fail fast on an unusable checkpoint instead
// of discovering it after the first simulated run.
func (e *Experiments) Init() error {
	_, err := e.supervisor()
	return err
}

// supervisor lazily builds the shared supervisor and checkpoint.
func (e *Experiments) supervisor() (*harness.Supervisor[RunResult], error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sup != nil || e.supErr != nil {
		return e.sup, e.supErr
	}
	var ckpt *harness.Checkpoint
	if e.CheckpointPath != "" {
		var err error
		ckpt, err = harness.OpenCheckpoint(e.CheckpointPath,
			ckptHeader{
				Version:      checkpointVersion,
				Instructions: e.Instructions,
				Warmup:       e.Warmup,
				FaultInject:  injectorSpec(e.Injector),
			},
			e.Resume)
		if err != nil {
			e.supErr = err
			return nil, err
		}
		e.ckpt = ckpt
	}
	workers := e.Workers
	if workers <= 0 {
		workers = 1
		if e.Parallel {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	e.sup = harness.New(harness.Config[RunResult]{
		Workers:    workers,
		Timeout:    e.RunTimeout,
		MaxRetries: e.MaxRetries,
		Injector:   e.Injector,
		Checkpoint: ckpt,
		Check:      checkRun,
		Events:     e.Events,
		// Each worker goroutine carries one reusable simulation state;
		// the job closures retrieve it through harness.WorkerValue.
		WorkerState: func() any { return new(RunState) },
	})
	// Warm the dispatch cost model from the store's meta segment: a fresh
	// process then schedules longest-first from its very first batch
	// instead of re-learning ns/instr from zero.
	if e.Store != nil && len(e.costs) == 0 {
		var persisted map[string]float64
		if ok, err := e.Store.GetMeta(CostModelMetaKey, &persisted); err == nil && ok {
			for k, v := range persisted {
				if v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
					e.costs[k] = v
				}
			}
		}
	}
	return e.sup, nil
}

// CostModelMetaKey names the persisted EWMA cost model in the result
// store's meta segment. Values are observed ns per instruction keyed by
// bench+"/"+technique — host-dependent but self-correcting: the EWMA folds
// fresh observations in, so a model learned on another machine converges
// rather than poisons. Exported so the cluster coordinator can warm its
// shard scheduler from the same model and fold its own observations back.
const CostModelMetaKey = "cost_model_ns_per_instr"

// saveCostModel persists the current cost model to the store's meta
// segment. Failures are retained for Err, not fatal: a read-only store
// degrades scheduling, not results.
func (e *Experiments) saveCostModel() {
	e.mu.Lock()
	if e.Store == nil || len(e.costs) == 0 {
		e.mu.Unlock()
		return
	}
	snapshot := make(map[string]float64, len(e.costs))
	for k, v := range e.costs {
		snapshot[k] = v
	}
	st := e.Store
	e.mu.Unlock()
	if err := st.PutMeta(CostModelMetaKey, snapshot); err != nil {
		e.mu.Lock()
		if e.storeErr == nil {
			e.storeErr = err
		}
		e.mu.Unlock()
	}
}

// checkRun rejects results with non-finite energies before they are
// accepted (and before they would poison the JSON checkpoint); the
// supervisor treats the rejection as a retryable failure.
func checkRun(r RunResult) error {
	for _, v := range []float64{
		r.Measurement.DCacheDynJ, r.Measurement.L2DynJ, r.Measurement.MemDynJ,
		r.Measurement.ICacheDynJ, r.Measurement.ClockJ,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite energy in result for %s", r.Bench)
		}
	}
	if r.CPU.Cycles == 0 {
		return fmt.Errorf("zero-cycle result for %s", r.Bench)
	}
	return nil
}

// runSpec names one simulation the supervisor should produce.
type runSpec struct {
	prof     workload.Profile
	l2       int
	tech     leakctl.Technique
	interval uint64
}

func (sp runSpec) key() string { return runKey(sp.prof.Name, sp.l2, sp.tech, sp.interval) }

// costKey groups specs the cost model treats as equivalent: the same
// benchmark under the same technique costs about the same regardless of L2
// latency or decay interval.
func (sp runSpec) costKey() string { return sp.prof.Name + "/" + sp.tech.String() }

// costOf estimates a spec's wall-clock cost (arbitrary units, only the
// ordering matters) from the observed ns/instr of its cost group. Unseen
// groups use the mean of the seen ones — or a flat 1 when nothing has run
// yet, which leaves the initial batch in job order.
func (e *Experiments) costOf(sp runSpec) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	w, ok := e.costs[sp.costKey()]
	if !ok {
		w = 1
		if len(e.costs) > 0 {
			sum := 0.0
			for _, v := range e.costs {
				sum += v
			}
			w = sum / float64(len(e.costs))
		}
	}
	return w * float64(e.Instructions+e.Warmup)
}

// noteCostLocked folds one completed run's duration into the cost model
// (EWMA, so drifting hosts converge). Caller holds e.mu.
func (e *Experiments) noteCostLocked(sp runSpec, d time.Duration) {
	n := e.Instructions + e.Warmup
	if d <= 0 || n == 0 {
		return
	}
	obs := float64(d.Nanoseconds()) / float64(n)
	k := sp.costKey()
	if prev, ok := e.costs[k]; ok {
		obs = 0.6*prev + 0.4*obs
	}
	e.costs[k] = obs
}

// jobFor wraps a spec as a supervised job. The run honours the per-attempt
// context (deadline + suite cancellation); validation failures are marked
// Permanent so they are not retried. FaultNaN injection happens here — the
// generic supervisor cannot corrupt a RunResult, so the job corrupts its
// own energy figure and the Check hook catches it.
func (e *Experiments) jobFor(sp runSpec) harness.Job[RunResult] {
	key := sp.key()
	s := e.suite(sp.l2)
	return harness.Job[RunResult]{
		Key:       key,
		Benchmark: sp.prof.Name,
		Technique: sp.tech.String(),
		Run: func(ctx context.Context) (RunResult, error) {
			params := leakctl.DefaultParams(sp.tech, sp.interval)
			// Fresh adapter state per attempt (and per trace-fallback
			// re-execution): a retried run must not inherit a failed or
			// discarded attempt's learned intervals.
			var adapterFor func() leakctl.Adapter
			if e.AdapterFor != nil {
				adapterFor = func() leakctl.Adapter {
					return e.AdapterFor(sp.prof.Name, sp.tech, sp.interval)
				}
			}
			st, _ := harness.WorkerValue(ctx).(*RunState)
			r, err := runWithTrace(ctx, s.Traces, s.MC, sp.prof, params, adapterFor, st)
			if err != nil {
				if errors.Is(err, ErrInvalidConfig) {
					return RunResult{}, harness.Permanent(err)
				}
				return RunResult{}, err
			}
			if e.Injector != nil &&
				e.Injector.Decide(key, harness.Attempt(ctx)) == faultinject.FaultNaN {
				r.Measurement.DCacheDynJ = math.NaN()
			}
			return r, nil
		},
	}
}

// runSpecs executes the given configurations, recording results and
// failures. Specs already resolved (cached or failed) are skipped; failed
// keys are not retried again within this process — the memo is what makes
// `-resume` re-execute only missing runs. Cells resolve down a ladder:
// in-process memo, remote daemon (Remote), content-addressed store,
// harness checkpoint, and finally simulation under the supervisor.
func (e *Experiments) runSpecs(specs []runSpec) error {
	e.mu.Lock()
	var pending []runSpec
	seen := make(map[string]bool)
	for _, sp := range specs {
		k := sp.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := e.runs[k]; ok {
			continue
		}
		if _, failed := e.failures[k]; failed {
			continue
		}
		pending = append(pending, sp)
	}
	e.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	// Progress accounting for the sampler's ETA: every pending spec is one
	// planned cell; the harness outcome counters record completions.
	obsCellsPlanned.Add(int64(len(pending)))

	if e.Remote != nil {
		err := e.runSpecsRemote(pending)
		if err == nil {
			return nil
		}
		if !e.RemoteFallback || e.ctx().Err() != nil {
			// Terminal for this batch: memoize the batch error per cell so
			// figures render ERR and FailureSummary makes the command exit
			// non-zero — a silent 0 would misreport a dead daemon as success.
			canceled := e.ctx().Err() != nil
			e.mu.Lock()
			for _, sp := range pending {
				e.failures[sp.key()] = &harness.RunError{
					Key: sp.key(), Benchmark: sp.prof.Name, Technique: sp.tech.String(),
					Err: err.Error(), Canceled: canceled,
				}
			}
			e.mu.Unlock()
			return err
		}
		// The daemon is sick (or the breaker is open): degrade this batch
		// to the local ladder rather than stalling the whole figure run.
		obsRemoteDegraded.Add(1)
		if e.Events != nil {
			e.Events.Write(obs.Record{Type: "remote_degraded", Error: err.Error(),
				Detail: fmt.Sprintf("%d cells fall back to local resolution", len(pending))})
		}
	}

	sup, err := e.supervisor()
	if err != nil {
		return err
	}
	if e.Store != nil || e.Peer != nil {
		if pending = e.resolveFromStore(pending); len(pending) == 0 {
			return nil
		}
	}

	// Lockstep batch phase: compatible cells execute in groups off one
	// shared front. Cells the phase cannot (or could not) run — singleton
	// groups, divergent configs, failed lanes — remain pending for the
	// scalar supervisor path below, which owns retry/timeout semantics.
	pending, completed, executedNow := e.runBatchPhase(pending)

	if len(pending) > 0 {
		jobs := make([]harness.Job[RunResult], len(pending))
		for i, sp := range pending {
			jobs[i] = e.jobFor(sp)
			jobs[i].Cost = e.costOf(sp)
		}
		results := sup.Run(e.ctx(), jobs)

		type seed struct {
			l2   int
			name string
			r    RunResult
		}
		var seeds []seed
		e.mu.Lock()
		for i, res := range results {
			sp := pending[i]
			if res.Err != nil {
				e.failures[res.Key] = res.Err
				continue
			}
			e.runs[res.Key] = res.Value
			completed = append(completed, doneCell{sp, res.Value})
			if res.FromCheckpoint {
				e.resumed++
			} else {
				e.executed++
				executedNow++
				e.noteCostLocked(sp, res.Duration)
			}
			if sp.tech == leakctl.TechNone {
				seeds = append(seeds, seed{sp.l2, sp.prof.Name, res.Value})
			}
		}
		e.mu.Unlock()
		// Seed baselines outside the lock (suite() takes it too).
		for _, sd := range seeds {
			e.suite(sd.l2).SetBaseline(sd.name, sd.r)
		}
	}
	// Persist every completed cell (simulated or checkpoint-restored) to
	// the content-addressed store, then the refreshed cost model. Store
	// trouble degrades to Err, never to lost results.
	if e.Store != nil {
		for _, d := range completed {
			mc := e.suite(d.sp.l2).MC
			id := cellIdentityFor(mc, d.sp.prof.Name, d.sp.tech, d.sp.interval)
			h, err := store.CanonicalHash(id)
			if err == nil {
				err = e.Store.Put(h, id, d.r)
			}
			if err != nil {
				e.mu.Lock()
				if e.storeErr == nil {
					e.storeErr = err
				}
				e.mu.Unlock()
				break
			}
		}
		if executedNow > 0 {
			e.saveCostModel()
		}
	}
	return nil
}

// doneCell is one completed (spec, result) pair flowing to the
// content-addressed store's persistence stage.
type doneCell struct {
	sp runSpec
	r  RunResult
}

// runBatchPhase executes as much of pending as possible through the
// lockstep batch executor and returns what is left for the scalar path,
// plus the cells it completed (simulated or checkpoint-restored) and how
// many it actually simulated.
//
// The phase runs only when the batch machinery can reproduce the scalar
// semantics exactly: no per-run deadline (the scalar supervisor enforces
// RunTimeout per attempt, which has no lockstep equivalent), no adaptive
// adapters (adapter state is timing-coupled and per-attempt), and a live
// suite context. Per-group requirements — a shared machine config without
// IL1 control, and at least two lanes to amortize the front — demote
// individual cells, not the phase.
func (e *Experiments) runBatchPhase(pending []runSpec) (remaining []runSpec, completed []doneCell, executed int) {
	if e.DisableBatch || e.AdapterFor != nil || e.RunTimeout != 0 ||
		e.ctx().Err() != nil || len(pending) < 2 {
		return pending, nil, 0
	}

	// Checkpoint pre-resolution, mirroring the scalar supervisor's inline
	// lookup (a corrupt entry is a miss and re-executes).
	e.mu.Lock()
	ckpt := e.ckpt
	e.mu.Unlock()
	if ckpt != nil {
		var hits []doneCell
		rest := pending[:0]
		for _, sp := range pending {
			if raw, ok := ckpt.Lookup(sp.key()); ok {
				var r RunResult
				if json.Unmarshal(raw, &r) == nil {
					hits = append(hits, doneCell{sp, r})
					obsBatchCkptHits.Add(1)
					if e.Events != nil {
						e.Events.Write(obs.Record{Type: "checkpoint_hit", RunID: sp.key()})
					}
					continue
				}
			}
			rest = append(rest, sp)
		}
		pending = rest
		if len(hits) > 0 {
			e.mu.Lock()
			for _, h := range hits {
				e.runs[h.sp.key()] = h.r
				e.resumed++
			}
			e.mu.Unlock()
			for _, h := range hits {
				if h.sp.tech == leakctl.TechNone {
					e.suite(h.sp.l2).SetBaseline(h.sp.prof.Name, h.r)
				}
			}
			completed = append(completed, hits...)
		}
	}

	// Group by (benchmark, machine config) in first-seen order; demote
	// cells whose config the batch executor cannot lockstep.
	type batchGroup struct {
		prof     workload.Profile
		l2       int
		lanes    []*batchLane
		cost     float64
		useTrace bool
	}
	index := make(map[string]*batchGroup)
	var groups []*batchGroup
	for _, sp := range pending {
		if e.suite(sp.l2).MC.IL1Control != nil {
			remaining = append(remaining, sp)
			continue
		}
		k := fmt.Sprintf("%s/%d", sp.prof.Name, sp.l2)
		g := index[k]
		if g == nil {
			g = &batchGroup{prof: sp.prof, l2: sp.l2}
			index[k] = g
			groups = append(groups, g)
		}
		g.lanes = append(g.lanes, &batchLane{sp: sp})
		g.cost += e.costOf(sp)
	}
	kept := groups[:0]
	for _, g := range groups {
		if len(g.lanes) < 2 {
			// A singleton cannot amortize the shared front.
			for _, ln := range g.lanes {
				remaining = append(remaining, ln.sp)
			}
			continue
		}
		kept = append(kept, g)
	}
	groups = kept
	if len(groups) == 0 {
		return remaining, completed, 0
	}

	// Adaptive front fill: count each benchmark's trace consumers — its
	// lockstep groups plus cells already demoted to the scalar path (which
	// replay through runWithTrace). A single-consumer recording would be
	// recorded, decoded once into that group's front, and never touched
	// again, so the group generates its front live instead; multi-consumer
	// (or already-recorded) benchmarks keep the shared recording.
	consumers := make(map[string]int, len(groups))
	for _, g := range groups {
		consumers[g.prof.Name]++
	}
	for _, sp := range remaining {
		consumers[sp.prof.Name]++
	}
	for _, g := range groups {
		switch e.FrontFill {
		case FrontFillLive:
			// useTrace stays false.
		case FrontFillTrace:
			g.useTrace = true
		default:
			s := e.suite(g.l2)
			g.useTrace = consumers[g.prof.Name] > 1 ||
				(s.Traces != nil && s.Traces.has(g.prof, s.MC.Warmup+s.MC.Instructions+traceSlack))
		}
	}

	// LPT at group granularity: ordering whole groups (not cells) by
	// predicted cost keeps batchable cells together — interleaving cells
	// across workers would fragment the batches — while the heaviest
	// groups still start first. Stable, so equal costs keep plan order.
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].cost > groups[j].cost })

	workers := e.Workers
	if workers <= 0 {
		workers = 1
		if e.Parallel {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	ctx := e.ctx()
	queue := make(chan *batchGroup)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bs := e.acquireBatchState()
			defer e.releaseBatchState(bs)
			for g := range queue {
				s := e.suite(g.l2)
				if e.Events != nil {
					for _, ln := range g.lanes {
						e.Events.Write(obs.Record{Type: "run_start", RunID: ln.sp.key()})
					}
				}
				tc := s.Traces
				if !g.useTrace {
					tc = nil
				}
				runBatchGroup(ctx, s.MC, g.prof, g.lanes, tc, e.Injector, bs)
			}
		}()
	}
	for _, g := range groups {
		queue <- g
	}
	close(queue)
	wg.Wait()

	lanes := 0
	var okLanes []*batchLane
	e.mu.Lock()
	for _, g := range groups {
		e.batchGroups++
		e.batchLanes += len(g.lanes)
		lanes += len(g.lanes)
		for _, ln := range g.lanes {
			if ln.err != nil {
				remaining = append(remaining, ln.sp)
				obsBatchFallback.Add(1)
				continue
			}
			e.runs[ln.sp.key()] = ln.res
			e.executed++
			executed++
			e.noteCostLocked(ln.sp, ln.dur)
			okLanes = append(okLanes, ln)
		}
	}
	e.mu.Unlock()
	obsBatchGroups.Add(uint64(len(groups)))
	obsBatchLanes.Add(uint64(lanes))
	obsBatchOccupancy.Set(int64(lanes * 100 / len(groups)))

	for _, ln := range okLanes {
		completed = append(completed, doneCell{ln.sp, ln.res})
		if ckpt != nil {
			// Append errors are recorded on the checkpoint (the result is
			// still good); see Checkpoint.Err — same contract as the
			// supervisor's append.
			_ = ckpt.Append(ln.sp.key(), ln.res)
		}
		obsBatchRunsDone.Add(1)
		if e.Events != nil {
			e.Events.Write(obs.Record{Type: "run_done", RunID: ln.sp.key(), Attempt: 1})
		}
		if ln.sp.tech == leakctl.TechNone {
			e.suite(ln.sp.l2).SetBaseline(ln.sp.prof.Name, ln.res)
		}
	}
	return remaining, completed, executed
}

// acquireBatchState pops (or creates) one batch executor's reusable
// scratch; releaseBatchState returns it to the pool.
func (e *Experiments) acquireBatchState() *BatchState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.batchStates); n > 0 {
		bs := e.batchStates[n-1]
		e.batchStates = e.batchStates[:n-1]
		return bs
	}
	return new(BatchState)
}

func (e *Experiments) releaseBatchState(bs *BatchState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.batchStates = append(e.batchStates, bs)
}

// BatchGroups returns how many lockstep groups this process has executed;
// BatchLanes returns how many cells those groups carried. Their ratio is
// the sweep's lane occupancy.
func (e *Experiments) BatchGroups() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.batchGroups
}

// BatchLanes returns the number of cells executed as lockstep batch lanes.
func (e *Experiments) BatchLanes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.batchLanes
}

// resolveFromStore serves pending cells from the content-addressed store,
// returning the cells that still need execution. A stored value that fails
// to decode or validate is treated as a miss and re-executed (the store's
// first-write-wins semantics mean it is never overwritten, but the
// simulation result is still produced for the caller). Cells that miss the
// local store consult the federated Peer view when one is configured; a
// peer hit is validated identically, persisted locally, and served as a
// store hit.
func (e *Experiments) resolveFromStore(pending []runSpec) []runSpec {
	type hit struct {
		sp        runSpec
		r         RunResult
		federated bool
	}
	var hits []hit
	remaining := pending[:0]
	for _, sp := range pending {
		mc := e.suite(sp.l2).MC
		h, err := CellHash(mc, sp.prof.Name, sp.tech, sp.interval)
		if err != nil {
			remaining = append(remaining, sp)
			continue
		}
		if e.Store != nil {
			rec, ok, gerr := e.Store.Get(h)
			if gerr != nil {
				e.mu.Lock()
				if e.storeErr == nil {
					e.storeErr = gerr
				}
				e.mu.Unlock()
			}
			if ok && gerr == nil {
				var r RunResult
				if uerr := json.Unmarshal(rec.Value, &r); uerr == nil && checkRun(r) == nil {
					hits = append(hits, hit{sp, r, false})
					continue
				}
			}
		}
		if e.Peer != nil {
			if r, ok := e.fetchFromPeer(h, mc, sp); ok {
				hits = append(hits, hit{sp, r, true})
				continue
			}
		}
		obsStoreMisses.Add(1)
		remaining = append(remaining, sp)
	}
	if len(hits) == 0 {
		return remaining
	}
	obsStoreHits.Add(uint64(len(hits)))
	e.mu.Lock()
	for _, ht := range hits {
		e.runs[ht.sp.key()] = ht.r
		e.storeHits++
	}
	e.mu.Unlock()
	for _, ht := range hits {
		if e.Events != nil {
			rec := obs.Record{Type: "store_hit", RunID: ht.sp.key()}
			if ht.federated {
				rec.Detail = "federated"
			}
			e.Events.Write(rec)
		}
		if ht.sp.tech == leakctl.TechNone {
			e.suite(ht.sp.l2).SetBaseline(ht.sp.prof.Name, ht.r)
		}
	}
	return remaining
}

// fetchFromPeer resolves one cell from the federated store view. A hit is
// validated exactly like a local store record, persisted into the local
// store (first-write-wins makes a concurrent local compute harmless), and
// served without simulation. Any peer trouble — unreachable, a miss, or a
// record that fails validation — degrades to a local miss; federation
// never fails a cell.
func (e *Experiments) fetchFromPeer(h string, mc MachineConfig, sp runSpec) (RunResult, bool) {
	raw, ok, err := e.Peer.FetchCell(e.ctx(), h)
	if err != nil || !ok {
		obsFederationMisses.Add(1)
		return RunResult{}, false
	}
	var r RunResult
	if uerr := json.Unmarshal(raw, &r); uerr != nil || checkRun(r) != nil {
		obsFederationMisses.Add(1)
		return RunResult{}, false
	}
	obsFederationHits.Add(1)
	if e.Store != nil {
		if perr := e.Store.Put(h, cellIdentityFor(mc, sp.prof.Name, sp.tech, sp.interval), r); perr != nil {
			e.mu.Lock()
			if e.storeErr == nil {
				e.storeErr = perr
			}
			e.mu.Unlock()
		}
	}
	return r, true
}

// run returns the (cached) timing run for one configuration, executing it
// under the supervisor on first use. A previously failed run returns its
// memoized failure instead of re-executing.
func (e *Experiments) run(prof workload.Profile, l2 int, t leakctl.Technique, interval uint64) (RunResult, error) {
	key := runKey(prof.Name, l2, t, interval)
	e.mu.Lock()
	r, ok := e.runs[key]
	fe, failed := e.failures[key]
	e.mu.Unlock()
	if ok {
		return r, nil
	}
	if failed {
		return RunResult{}, fe
	}
	if err := e.runSpecs([]runSpec{{prof, l2, t, interval}}); err != nil {
		return RunResult{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.runs[key]; ok {
		return r, nil
	}
	if fe, failed := e.failures[key]; failed {
		return RunResult{}, fe
	}
	return RunResult{}, fmt.Errorf("run %s produced no result", key)
}

// prefetch simulates a set of configurations concurrently so later cached
// lookups are cheap. Each benchmark's baseline and technique variants are
// planned together in one call: they share a recorded trace and a machine
// config, so the batch phase locksteps the whole row — baseline included —
// as one group (planning baselines separately would strand them in
// singleton groups on the scalar path). Individual failures are memoized,
// not fatal.
func (e *Experiments) prefetch(l2 int, techs []leakctl.Technique, intervals []uint64) {
	specs := make([]runSpec, 0, len(e.Profiles)*(1+len(techs)*len(intervals)))
	for _, prof := range e.Profiles {
		specs = append(specs, runSpec{prof, l2, leakctl.TechNone, 0})
		for _, t := range techs {
			for _, iv := range intervals {
				specs = append(specs, runSpec{prof, l2, t, iv})
			}
		}
	}
	_ = e.runSpecs(specs)
}

// Failures returns the structured failure record of every run that could
// not be completed, sorted by key for stable reporting.
func (e *Experiments) Failures() []*harness.RunError {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*harness.RunError, 0, len(e.failures))
	for _, f := range e.failures {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// FailureSummary renders the failed runs as a human-readable block, or ""
// when every run completed. Commands print it and exit non-zero.
func (e *Experiments) FailureSummary() string {
	fails := e.Failures()
	if len(fails) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d run(s) failed:\n", len(fails))
	for _, f := range fails {
		fmt.Fprintf(&b, "  %s\n", f.Error())
		if f.Panic != "" {
			// First stack line is enough to locate the fault; the full
			// trace stays in the structured record.
			if i := strings.IndexByte(f.Stack, '\n'); i > 0 {
				fmt.Fprintf(&b, "    %s\n", f.Stack[:i])
			}
		}
	}
	return b.String()
}

// Executed returns how many runs were actually simulated by this process;
// Resumed returns how many were restored from the checkpoint instead.
func (e *Experiments) Executed() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.executed
}

// Resumed returns the number of runs served from the checkpoint file.
func (e *Experiments) Resumed() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.resumed
}

// StoreHits returns the number of runs served from the content-addressed
// result store.
func (e *Experiments) StoreHits() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.storeHits
}

// Remoted returns the number of runs delegated to a remote daemon.
func (e *Experiments) Remoted() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.remoted
}

// Err surfaces checkpoint or store trouble: a failed open (also returned
// by Init), any checkpoint append failure during the suite, or the first
// result-store read/write failure (results themselves are unaffected).
func (e *Experiments) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.supErr != nil {
		return e.supErr
	}
	if e.ckpt != nil {
		if err := e.ckpt.Err(); err != nil {
			return err
		}
	}
	return e.storeErr
}

// Close releases the checkpoint file (if one was opened) and the trace
// cache's recorded buffers. The suites stay usable: traces re-record on
// demand.
func (e *Experiments) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var terr error
	if e.traces != nil {
		terr = e.traces.Close()
	}
	if e.ckpt == nil {
		return terr
	}
	err := e.ckpt.Close()
	e.ckpt = nil
	if err != nil {
		return err
	}
	return terr
}

// model builds a fresh leakage model (with the configured variation).
func (e *Experiments) model(l2 int) *leakage.Model {
	return leakage.New(e.suite(l2).MC.Tech, leakage.WithVariation(e.Variation))
}

// Cell is one (benchmark, technique) result in a figure.
type Cell struct {
	Bench string
	Point Point
}

// Figure is one reproduced figure: per-benchmark series for drowsy and
// gated-Vss plus their averages, for one metric. A cell whose run failed
// is flagged in DrowsyErr/GatedErr: it renders as ERR and is excluded from
// the averages, so one lost run does not take the whole figure down.
type Figure struct {
	ID     string
	Title  string
	Metric string // "net savings %" or "perf loss %"
	Bench  []string
	Drowsy []float64
	Gated  []float64
	// DrowsyErr/GatedErr mark failed cells (nil when every run
	// completed; indexes parallel Bench).
	DrowsyErr []bool
	GatedErr  []bool
}

// errAt reports whether cell i of a (possibly nil) error slice failed.
func errAt(errs []bool, i int) bool { return i < len(errs) && errs[i] }

// meanSkipping averages vals, excluding cells flagged in errs.
func meanSkipping(vals []float64, errs []bool) float64 {
	var sum float64
	n := 0
	for i, v := range vals {
		if errAt(errs, i) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Avg returns the arithmetic means of the two series, skipping failed
// cells.
func (f Figure) Avg() (drowsy, gated float64) {
	return meanSkipping(f.Drowsy, f.DrowsyErr), meanSkipping(f.Gated, f.GatedErr)
}

// FailedCells counts cells flagged as failed across both series.
func (f Figure) FailedCells() int {
	n := 0
	for i := range f.Bench {
		if errAt(f.DrowsyErr, i) {
			n++
		}
		if errAt(f.GatedErr, i) {
			n++
		}
	}
	return n
}

// csvCell renders one CSV value, or ERR for a failed cell.
func csvCell(v float64, failed bool) string {
	if failed {
		return "ERR"
	}
	return fmt.Sprintf("%.4f", v)
}

// CSV renders the figure as RFC-4180-ish comma-separated rows
// (benchmark,drowsy,gated) with a header, for plotting tools.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark,drowsy,gated-vss\n")
	for i, n := range f.Bench {
		fmt.Fprintf(&b, "%s,%s,%s\n", n,
			csvCell(f.Drowsy[i], errAt(f.DrowsyErr, i)),
			csvCell(f.Gated[i], errAt(f.GatedErr, i)))
	}
	ad, ag := f.Avg()
	fmt.Fprintf(&b, "AVG,%.4f,%.4f\n", ad, ag)
	return b.String()
}

// tableCell renders one aligned table value, or ERR for a failed cell.
func tableCell(v float64, failed bool) string {
	if failed {
		return "ERR"
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the figure as an aligned text table, the harness's
// equivalent of the paper's bar charts.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%s]\n", f.ID, f.Title, f.Metric)
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "bench", "drowsy", "gated-vss")
	for i, n := range f.Bench {
		fmt.Fprintf(&b, "%-8s %10s %10s\n", n,
			tableCell(f.Drowsy[i], errAt(f.DrowsyErr, i)),
			tableCell(f.Gated[i], errAt(f.GatedErr, i)))
	}
	ad, ag := f.Avg()
	fmt.Fprintf(&b, "%-8s %10.2f %10.2f\n", "AVG", ad, ag)
	return b.String()
}

// evalCell evaluates one (benchmark, technique, interval) cell, reporting
// failure if the technique run or the shared baseline could not be
// produced.
func (e *Experiments) evalCell(s *Suite, m *leakage.Model, prof workload.Profile, l2 int, t leakctl.Technique, iv uint64, tempC float64) (Point, bool) {
	// A failed baseline fails every cell of the benchmark's row: there is
	// nothing to compare against.
	if _, err := e.run(prof, l2, leakctl.TechNone, 0); err != nil {
		return Point{}, false
	}
	r, err := e.run(prof, l2, t, iv)
	if err != nil {
		return Point{}, false
	}
	p, err := s.EvaluateRun(e.ctx(), prof, r, tempC, m)
	if err != nil {
		return Point{}, false
	}
	return p, true
}

// LatencyFigure reproduces one (net savings, perf loss) figure pair at the
// given L2 latency, temperature and fixed decay interval. Failed runs
// degrade to ERR cells.
func (e *Experiments) LatencyFigure(idSav, idPerf string, l2 int, tempC float64, interval uint64) (sav, perf Figure) {
	e.prefetch(l2, []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated}, []uint64{interval})
	m := e.model(l2)
	s := e.suite(l2)

	title := fmt.Sprintf("L2 latency %d cycles, %.0fC, interval %d", l2, tempC, interval)
	sav = Figure{ID: idSav, Title: title, Metric: "net leakage savings %"}
	perf = Figure{ID: idPerf, Title: title, Metric: "performance loss %"}
	for _, prof := range e.Profiles {
		dp, dok := e.evalCell(s, m, prof, l2, leakctl.TechDrowsy, interval, tempC)
		gp, gok := e.evalCell(s, m, prof, l2, leakctl.TechGated, interval, tempC)
		sav.Bench = append(sav.Bench, prof.Name)
		sav.Drowsy = append(sav.Drowsy, dp.Cmp.NetSavingsPct)
		sav.Gated = append(sav.Gated, gp.Cmp.NetSavingsPct)
		sav.DrowsyErr = append(sav.DrowsyErr, !dok)
		sav.GatedErr = append(sav.GatedErr, !gok)
		perf.Bench = append(perf.Bench, prof.Name)
		perf.Drowsy = append(perf.Drowsy, dp.Cmp.PerfLossPct)
		perf.Gated = append(perf.Gated, gp.Cmp.PerfLossPct)
		perf.DrowsyErr = append(perf.DrowsyErr, !dok)
		perf.GatedErr = append(perf.GatedErr, !gok)
	}
	return sav, perf
}

// Figure3_4 is the 5-cycle L2 pair at 110C.
func (e *Experiments) Figure3_4() (Figure, Figure) {
	return e.LatencyFigure("Figure 3", "Figure 4", 5, 110, DefaultInterval)
}

// Figure5_6 is the 8-cycle L2 pair at 110C.
func (e *Experiments) Figure5_6() (Figure, Figure) {
	return e.LatencyFigure("Figure 5", "Figure 6", 8, 110, DefaultInterval)
}

// Figure7 is net savings at 85C with an 11-cycle L2 (the timing runs are
// shared with Figure 8).
func (e *Experiments) Figure7() Figure {
	sav, _ := e.LatencyFigure("Figure 7", "-", 11, 85, DefaultInterval)
	return sav
}

// Figure8_9 is the 11-cycle L2 pair at 110C.
func (e *Experiments) Figure8_9() (Figure, Figure) {
	return e.LatencyFigure("Figure 8", "Figure 9", 11, 110, DefaultInterval)
}

// Figure10_11 is the 17-cycle L2 pair at 110C.
func (e *Experiments) Figure10_11() (Figure, Figure) {
	return e.LatencyFigure("Figure 10", "Figure 11", 17, 110, DefaultInterval)
}

// BestIntervalResult is one benchmark's best-decay-interval outcome for one
// technique (Figures 12-13, Table 3). Failed reports that no interval of
// the sweep produced a usable run for this benchmark/technique.
type BestIntervalResult struct {
	Bench    string
	Interval uint64
	Point    Point
	Failed   bool
}

// SweepBest finds, per benchmark and technique, the decay interval in
// SweepIntervals with the highest net savings at the given operating point.
// This is the oracle the paper uses for its adaptivity headroom study.
// Intervals whose run failed are skipped; a benchmark/technique with no
// surviving interval is marked Failed.
func (e *Experiments) SweepBest(l2 int, tempC float64) (drowsy, gated []BestIntervalResult) {
	techs := []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated}
	e.prefetch(l2, techs, SweepIntervals)
	m := e.model(l2)
	s := e.suite(l2)
	for _, prof := range e.Profiles {
		for _, t := range techs {
			best := BestIntervalResult{Bench: prof.Name, Failed: true}
			for _, iv := range SweepIntervals {
				p, ok := e.evalCell(s, m, prof, l2, t, iv, tempC)
				if !ok {
					continue
				}
				if best.Failed || p.Cmp.NetSavingsPct > best.Point.Cmp.NetSavingsPct {
					best.Interval = iv
					best.Point = p
					best.Failed = false
				}
			}
			if t == leakctl.TechDrowsy {
				drowsy = append(drowsy, best)
			} else {
				gated = append(gated, best)
			}
		}
	}
	return drowsy, gated
}

// Figure12_13 reproduces the best-per-benchmark-interval pair: net savings
// at 85C (Figure 12) and performance loss (Figure 13), both with an
// 11-cycle L2.
func (e *Experiments) Figure12_13() (Figure, Figure) {
	dr, gt := e.SweepBest(11, 85)
	sav := Figure{ID: "Figure 12", Title: "best per-benchmark decay interval, 85C, L2=11", Metric: "net leakage savings %"}
	perf := Figure{ID: "Figure 13", Title: "best per-benchmark decay interval, L2=11", Metric: "performance loss %"}
	for i := range dr {
		sav.Bench = append(sav.Bench, dr[i].Bench)
		sav.Drowsy = append(sav.Drowsy, dr[i].Point.Cmp.NetSavingsPct)
		sav.Gated = append(sav.Gated, gt[i].Point.Cmp.NetSavingsPct)
		sav.DrowsyErr = append(sav.DrowsyErr, dr[i].Failed)
		sav.GatedErr = append(sav.GatedErr, gt[i].Failed)
		perf.Bench = append(perf.Bench, dr[i].Bench)
		perf.Drowsy = append(perf.Drowsy, dr[i].Point.Cmp.PerfLossPct)
		perf.Gated = append(perf.Gated, gt[i].Point.Cmp.PerfLossPct)
		perf.DrowsyErr = append(perf.DrowsyErr, dr[i].Failed)
		perf.GatedErr = append(perf.GatedErr, gt[i].Failed)
	}
	return sav, perf
}

// Table3 returns the best decay intervals per benchmark (paper Table 3),
// from the same sweep as Figures 12-13.
func (e *Experiments) Table3() string {
	dr, gt := e.SweepBest(11, 85)
	iv := func(r BestIntervalResult) string {
		if r.Failed {
			return "ERR"
		}
		return fmt.Sprintf("%dk", r.Interval/1024)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — best decay intervals (cycles)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "bench", "drowsy", "gated-vss")
	for i := range dr {
		fmt.Fprintf(&b, "%-8s %10s %10s\n", dr[i].Bench, iv(dr[i]), iv(gt[i]))
	}
	return b.String()
}

// IntervalCurve returns net savings and perf loss per interval for one
// benchmark and technique (used by ablation benches and the adaptive
// study). Intervals whose run failed are omitted from the curve.
func (e *Experiments) IntervalCurve(bench string, t leakctl.Technique, l2 int, tempC float64) []Point {
	prof, ok := workload.ByName(bench)
	if !ok {
		return nil
	}
	m := e.model(l2)
	s := e.suite(l2)
	var out []Point
	for _, iv := range SweepIntervals {
		if p, ok := e.evalCell(s, m, prof, l2, t, iv, tempC); ok {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Interval < out[j].Interval })
	return out
}
