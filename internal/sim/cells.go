package sim

import (
	"context"
	"encoding/json"
	"fmt"

	"hotleakage/internal/harness"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/store"
	"hotleakage/internal/workload"
)

// CellSpec names one simulation cell by its public coordinates: the
// benchmark, the machine's L2 hit latency (the paper's design-space axis),
// the leakage-control technique and the decay interval. Together with the
// suite's instruction budget it identifies a cell for the daemon API, the
// remote client and the content-addressed result store.
type CellSpec struct {
	Bench     string
	L2        int
	Technique leakctl.Technique
	Interval  uint64
}

// Key returns the cell's run key (the harness job / checkpoint identity).
func (cs CellSpec) Key() string { return runKey(cs.Bench, cs.L2, cs.Technique, cs.Interval) }

// cellIdentity is the canonical serialization a cell is content-addressed
// by: the full machine description (which embeds the instruction budget),
// the benchmark, the technique, the decay interval — and the simulator's
// checkpointVersion, so results can never alias across a format or
// semantics change. The JSON field order is irrelevant: the store hashes
// the canonicalized (sorted-key) form.
type cellIdentity struct {
	// Kind discriminates cell kinds in the store. Energy cells leave it
	// empty — omitempty drops the field from the canonical JSON, so every
	// pre-existing energy-cell hash stays byte-identical — while other cell
	// kinds (attackIdentity's "attack") always set theirs, so two kinds can
	// never alias one content address. The aliasing regression test pins
	// both properties.
	Kind              string        `json:"kind,omitempty"`
	CheckpointVersion int           `json:"checkpoint_version"`
	Machine           MachineConfig `json:"machine"`
	Bench             string        `json:"bench"`
	Technique         string        `json:"technique"`
	Interval          uint64        `json:"interval"`
}

// cellIdentityFor builds the identity document for one cell on mc.
func cellIdentityFor(mc MachineConfig, bench string, t leakctl.Technique, interval uint64) cellIdentity {
	return cellIdentity{
		CheckpointVersion: checkpointVersion,
		Machine:           mc,
		Bench:             bench,
		Technique:         t.String(),
		Interval:          interval,
	}
}

// CellHash returns the content address of one cell: the hex SHA-256 of its
// canonical identity document. Identical configurations hash identically
// across processes, hosts and struct-field reorderings; any change to the
// machine, the budget or checkpointVersion changes the address.
func CellHash(mc MachineConfig, bench string, t leakctl.Technique, interval uint64) (string, error) {
	return store.CanonicalHash(cellIdentityFor(mc, bench, t, interval))
}

// CellOutcome is the result of one RunCells cell: the stored hash and
// value on success, or the structured failure.
type CellOutcome struct {
	Spec CellSpec
	// Key is the run key (harness job / checkpoint identity).
	Key string
	// Hash is the cell's content address (empty when the cell failed
	// before an identity could be computed).
	Hash   string
	Result RunResult
	// Err is non-nil when the cell failed; Result is then meaningless.
	Err *harness.RunError
}

// RunCells executes an explicit set of cells (the daemon's entry point:
// a sweep request is a list of CellSpecs). Cells resolve through the usual
// ladder — memo, content-addressed store, checkpoint, simulation — and
// individual failures degrade to per-cell errors, not a batch error. The
// returned outcomes parallel specs.
func (e *Experiments) RunCells(specs []CellSpec) ([]CellOutcome, error) {
	outs := make([]CellOutcome, len(specs))
	rss := make([]runSpec, 0, len(specs))
	for i, cs := range specs {
		outs[i].Spec = cs
		outs[i].Key = cs.Key()
		prof, ok := workload.ByName(cs.Bench)
		if !ok {
			outs[i].Err = &harness.RunError{
				Key:       outs[i].Key,
				Benchmark: cs.Bench,
				Technique: cs.Technique.String(),
				Err:       fmt.Sprintf("unknown benchmark %q", cs.Bench),
			}
			continue
		}
		rss = append(rss, runSpec{prof, cs.L2, cs.Technique, cs.Interval})
	}
	if err := e.runSpecs(rss); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range outs {
		if outs[i].Err != nil {
			continue
		}
		if r, ok := e.runs[outs[i].Key]; ok {
			outs[i].Result = r
			mc := e.suiteLocked(outs[i].Spec.L2).MC
			h, err := CellHash(mc, outs[i].Spec.Bench, outs[i].Spec.Technique, outs[i].Spec.Interval)
			if err == nil {
				outs[i].Hash = h
			}
			continue
		}
		if fe, failed := e.failures[outs[i].Key]; failed {
			outs[i].Err = fe
			continue
		}
		outs[i].Err = &harness.RunError{
			Key: outs[i].Key, Benchmark: outs[i].Spec.Bench,
			Technique: outs[i].Spec.Technique.String(),
			Err:       "cell produced no result",
		}
	}
	return outs, nil
}

// RemoteCell is one cell's outcome as reported by a remote daemon.
type RemoteCell struct {
	Spec   CellSpec
	Result RunResult
	// Err is non-empty when the cell failed remotely.
	Err string
}

// RemoteRunner executes cells on a remote leakd daemon. When
// Experiments.Remote is set, pending cells are delegated to it instead of
// the local supervisor — the CLI becomes a thin client and every figure
// and table renders from remotely simulated (or store-served) results.
// Implementations live outside this package (internal/server/api) to keep
// sim free of transport concerns.
type RemoteRunner interface {
	RunCells(ctx context.Context, instructions, warmup uint64, specs []CellSpec) ([]RemoteCell, error)
}

// CellFetcher reads one cell's stored result from a federated store view
// by content address: a clean miss is (nil, false, nil); an error means
// the peer was unreachable or answered garbage, and the caller decides
// whether to degrade (the resolution ladder treats it as a miss and
// simulates). internal/server/api.Client implements it over GET
// /v1/cells/{hash}; the cluster coordinator implements the serving side
// by consulting its own store and then every live worker.
type CellFetcher interface {
	FetchCell(ctx context.Context, hash string) (json.RawMessage, bool, error)
}

// runSpecsRemote resolves pending specs through the remote daemon,
// recording results and failures exactly as the local path would. A
// transport-level failure fails the whole batch (there is nothing partial
// to keep); per-cell failures degrade to memoized ERR cells.
func (e *Experiments) runSpecsRemote(pending []runSpec) error {
	specs := make([]CellSpec, len(pending))
	for i, sp := range pending {
		specs[i] = CellSpec{Bench: sp.prof.Name, L2: sp.l2, Technique: sp.tech, Interval: sp.interval}
	}
	cells, err := e.Remote.RunCells(e.ctx(), e.Instructions, e.Warmup, specs)
	if err != nil {
		return fmt.Errorf("remote: %w", err)
	}
	byKey := make(map[string]RemoteCell, len(cells))
	for _, c := range cells {
		byKey[c.Spec.Key()] = c
	}
	type seed struct {
		l2   int
		name string
		r    RunResult
	}
	var seeds []seed
	e.mu.Lock()
	for _, sp := range pending {
		k := sp.key()
		c, ok := byKey[k]
		switch {
		case !ok:
			e.failures[k] = &harness.RunError{
				Key: k, Benchmark: sp.prof.Name, Technique: sp.tech.String(),
				Err: "remote daemon returned no result for this cell",
			}
		case c.Err != "":
			e.failures[k] = &harness.RunError{
				Key: k, Benchmark: sp.prof.Name, Technique: sp.tech.String(),
				Err: c.Err,
			}
		default:
			e.runs[k] = c.Result
			e.remoted++
			if sp.tech == leakctl.TechNone {
				seeds = append(seeds, seed{sp.l2, sp.prof.Name, c.Result})
			}
		}
	}
	e.mu.Unlock()
	for _, sd := range seeds {
		e.suite(sd.l2).SetBaseline(sd.name, sd.r)
	}
	return nil
}
