package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// batchSpecs builds one group's lane specs: the baseline plus both
// techniques across a spread of decay intervals — the shape a real figure
// sweep hands the batch planner.
func batchSpecs(prof workload.Profile, l2 int, intervals []uint64) []runSpec {
	specs := []runSpec{{prof, l2, leakctl.TechNone, 0}}
	for _, tech := range []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated} {
		for _, iv := range intervals {
			specs = append(specs, runSpec{prof, l2, tech, iv})
		}
	}
	return specs
}

// TestBatchScalarParityAllProfiles is the bit-identity contract behind the
// lockstep batch executor: for every benchmark, a group carrying the
// baseline plus drowsy/gated-Vss across a spread of decay intervals must
// produce, lane for lane, exactly the RunResult the scalar path produces —
// stats, energies, predictor counters, turnoff ratios, everything. The
// BatchState is reused dirty across benchmarks, so cross-group recycling
// is under the same contract.
func TestBatchScalarParityAllProfiles(t *testing.T) {
	mc := parityMachine(11)
	tc := NewTraceCache("")
	defer tc.Close()
	ctx := context.Background()
	bs := new(BatchState)
	for _, prof := range workload.Profiles() {
		specs := batchSpecs(prof, 11, []uint64{1024, 4096, 65536})
		lanes := make([]*batchLane, len(specs))
		for i, sp := range specs {
			lanes[i] = &batchLane{sp: sp}
		}
		runBatchGroup(ctx, mc, prof, lanes, tc, nil, bs)
		for _, ln := range lanes {
			if ln.err != nil {
				t.Fatalf("%s lane %s: %v", prof.Name, ln.sp.key(), ln.err)
			}
			params := leakctl.DefaultParams(ln.sp.tech, ln.sp.interval)
			want, err := RunOne(ctx, mc, prof, params, nil)
			if err != nil {
				t.Fatalf("%s scalar %s: %v", prof.Name, ln.sp.key(), err)
			}
			if !reflect.DeepEqual(want, ln.res) {
				t.Fatalf("%s/%s iv=%d: batch lane diverged from scalar\nscalar %+v\nbatch  %+v",
					prof.Name, ln.sp.tech, ln.sp.interval, want, ln.res)
			}
		}
	}
}

// TestBatchParityLiveFront covers the no-trace-cache configuration: the
// shared front fills from a live generator and must still match scalar
// execution exactly.
func TestBatchParityLiveFront(t *testing.T) {
	mc := parityMachine(5)
	ctx := context.Background()
	prof, _ := workload.ByName("gcc")
	specs := batchSpecs(prof, 5, []uint64{4096})
	lanes := make([]*batchLane, len(specs))
	for i, sp := range specs {
		lanes[i] = &batchLane{sp: sp}
	}
	runBatchGroup(ctx, mc, prof, lanes, nil, nil, new(BatchState))
	for _, ln := range lanes {
		if ln.err != nil {
			t.Fatalf("lane %s: %v", ln.sp.key(), ln.err)
		}
		want, err := RunOne(ctx, mc, prof, leakctl.DefaultParams(ln.sp.tech, ln.sp.interval), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, ln.res) {
			t.Fatalf("%s: live-front batch lane diverged from scalar", ln.sp.key())
		}
	}
}

// TestBatchLaneScalarReuseParity is the PR's reset-path regression test: a
// RunState whose machine just ran as a replay lane (front attached, BP
// accumulated) must, when reused by the scalar path, produce results
// bit-identical to a fresh build — cpu.Recycle has to detach the front
// and reset the replay fields along with everything else.
func TestBatchLaneScalarReuseParity(t *testing.T) {
	mc := parityMachine(11)
	ctx := context.Background()
	prof, _ := workload.ByName("mcf")
	bs := new(BatchState)
	lanes := []*batchLane{
		{sp: runSpec{prof, 11, leakctl.TechDrowsy, 1024}},
		{sp: runSpec{prof, 11, leakctl.TechGated, 65536}},
	}
	runBatchGroup(ctx, mc, prof, lanes, nil, nil, bs)
	for _, ln := range lanes {
		if ln.err != nil {
			t.Fatalf("batch lane %s: %v", ln.sp.key(), ln.err)
		}
	}
	// Reuse the dirty lane states on the scalar path, against a different
	// benchmark and technique than the lane last ran.
	prof2, _ := workload.ByName("gzip")
	params := leakctl.DefaultParams(leakctl.TechGated, 4096)
	fresh, err := RunOne(ctx, mc, prof2, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range bs.lanes[:len(lanes)] {
		reused, err := runOneFromState(ctx, mc, prof2.Name, workload.NewGenerator(prof2), params, nil, st)
		if err != nil {
			t.Fatalf("lane %d reuse: %v", i, err)
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("lane %d: scalar run on a recycled replay lane diverged from fresh build", i)
		}
	}
}

// TestBatchStateReuseBitIdentity runs the same group on a BatchState
// dirtied by a different benchmark's group and on a fresh one; both must
// match scalar results exactly (the dirty path is also what
// TestBatchScalarParityAllProfiles exercises — this pins the fresh-vs-
// dirty equivalence directly).
func TestBatchStateReuseBitIdentity(t *testing.T) {
	mc := parityMachine(11)
	ctx := context.Background()
	profA, _ := workload.ByName("gcc")
	profB, _ := workload.ByName("parser")
	run := func(bs *BatchState, prof workload.Profile) []*batchLane {
		specs := batchSpecs(prof, 11, []uint64{2048, 8192})
		lanes := make([]*batchLane, len(specs))
		for i, sp := range specs {
			lanes[i] = &batchLane{sp: sp}
		}
		runBatchGroup(ctx, mc, prof, lanes, nil, nil, bs)
		return lanes
	}
	dirty := new(BatchState)
	run(dirty, profA) // dirty the front, predictor and lane states
	got := run(dirty, profB)
	want := run(new(BatchState), profB)
	for i := range want {
		if want[i].err != nil || got[i].err != nil {
			t.Fatalf("lane %d errs: fresh=%v dirty=%v", i, want[i].err, got[i].err)
		}
		if !reflect.DeepEqual(want[i].res, got[i].res) {
			t.Fatalf("lane %s: dirty BatchState diverged from fresh", want[i].sp.key())
		}
	}
}

// TestExperimentsFiguresIdenticalWithBatchOff is the end-to-end knob
// check: a figure produced through the batch phase must equal the same
// figure produced entirely on the scalar path.
func TestExperimentsFiguresIdenticalWithBatchOff(t *testing.T) {
	build := func(disable bool) (Figure, Figure, int) {
		e := NewExperiments()
		e.Instructions = 60_000
		e.Warmup = 30_000
		e.Profiles = e.Profiles[:3]
		e.DisableBatch = disable
		defer e.Close()
		sav, perf := e.LatencyFigure("S", "P", 11, 110, 4096)
		return sav, perf, e.BatchLanes()
	}
	savOn, perfOn, lanesOn := build(false)
	savOff, perfOff, lanesOff := build(true)
	if !reflect.DeepEqual(savOn, savOff) || !reflect.DeepEqual(perfOn, perfOff) {
		t.Fatalf("figures differ with batch off:\non  %v\noff %v", savOn, savOff)
	}
	if lanesOn == 0 {
		t.Fatal("batch phase executed no lanes on the default path")
	}
	if lanesOff != 0 {
		t.Fatalf("DisableBatch still executed %d batch lanes", lanesOff)
	}
}

// TestBatchOccupancyMaximal pins the planner's grouping contract: a mixed
// figure sweep (baseline + two techniques per benchmark, planned in one
// prefetch) must form exactly one full group per benchmark — cost-ordered
// dispatch is at group granularity, so groups are never fragmented across
// workers — and every cell must ride a batch lane, none falling back to
// the scalar path.
func TestBatchOccupancyMaximal(t *testing.T) {
	e := NewExperiments()
	e.Instructions = 40_000
	e.Warmup = 10_000
	e.Profiles = e.Profiles[:3]
	e.Workers = 2 // force multi-worker dispatch over the ordered groups
	defer e.Close()
	if sav, _ := e.LatencyFigure("S", "P", 11, 110, 4096); sav.FailedCells() != 0 {
		t.Fatalf("clean sweep has failed cells:\n%s", sav.String())
	}
	wantLanes := len(e.Profiles) * 3 // none + drowsy + gated per benchmark
	if got := e.BatchLanes(); got != wantLanes {
		t.Fatalf("BatchLanes = %d, want %d (cells fell out of the batch phase)", got, wantLanes)
	}
	if got := e.BatchGroups(); got != len(e.Profiles) {
		t.Fatalf("BatchGroups = %d, want %d (groups fragmented)", got, len(e.Profiles))
	}
	if e.Executed() != wantLanes {
		t.Fatalf("Executed = %d, want %d", e.Executed(), wantLanes)
	}
}

// TestBatchFaultIsolation proves a mid-batch injected panic degrades one
// lane to an ERR cell without poisoning its batch-mates: the victim's
// group keeps running, the sibling cells match a fault-free scalar
// reference bit for bit, and the failure is recorded with the panic
// captured structurally.
func TestBatchFaultIsolation(t *testing.T) {
	reference := func() (Figure, Figure) {
		e := tinyExperiments()
		e.DisableBatch = true
		defer e.Close()
		return e.LatencyFigure("S", "P", 11, 110, 4096)
	}
	refSav, refPerf := reference()

	e := tinyExperiments()
	defer e.Close()
	victim := runKey(e.Profiles[0].Name, 11, leakctl.TechDrowsy, 4096)
	e.Injector = panicKey(victim)
	sav, perf := e.LatencyFigure("S", "P", 11, 110, 4096)

	if e.BatchGroups() == 0 {
		t.Fatal("sweep did not exercise the batch phase")
	}
	if !sav.DrowsyErr[0] || !perf.DrowsyErr[0] {
		t.Fatal("panicked lane not marked ERR")
	}
	if sav.GatedErr[0] || sav.DrowsyErr[1] || sav.GatedErr[1] {
		t.Fatalf("batch-mates poisoned: %+v %+v", sav.DrowsyErr, sav.GatedErr)
	}
	// Every surviving cell is bit-identical to the fault-free scalar
	// reference (the victim's cells are ERR in one figure only).
	for i := range sav.Bench {
		if !sav.DrowsyErr[i] && sav.Drowsy[i] != refSav.Drowsy[i] {
			t.Fatalf("drowsy[%d] diverged: %v vs %v", i, sav.Drowsy[i], refSav.Drowsy[i])
		}
		if sav.Gated[i] != refSav.Gated[i] {
			t.Fatalf("gated[%d] diverged: %v vs %v", i, sav.Gated[i], refSav.Gated[i])
		}
		if !perf.DrowsyErr[i] && perf.Drowsy[i] != refPerf.Drowsy[i] {
			t.Fatalf("perf drowsy[%d] diverged", i)
		}
		if perf.Gated[i] != refPerf.Gated[i] {
			t.Fatalf("perf gated[%d] diverged", i)
		}
	}
	fails := e.Failures()
	if len(fails) != 1 || fails[0].Key != victim {
		t.Fatalf("failures = %+v", fails)
	}
	if fails[0].Panic == "" || fails[0].Stack == "" {
		t.Fatalf("panic not captured structurally: %+v", fails[0])
	}
	if !strings.Contains(fails[0].Panic, "faultinject") {
		t.Fatalf("unexpected panic source: %q", fails[0].Panic)
	}
}

// TestBatchDeferredFaultKinds checks that non-panic injected faults on a
// batch lane defer to the scalar supervisor, where the full retry
// semantics apply: a NaN injected only on attempt 0 ends in a clean
// result after one retry.
func TestBatchDeferredFaultKinds(t *testing.T) {
	e := tinyExperiments()
	e.MaxRetries = 1
	defer e.Close()
	victim := runKey(e.Profiles[1].Name, 11, leakctl.TechGated, 4096)
	e.Injector = faultinject.Func(func(k string, attempt int) faultinject.Fault {
		if k == victim && attempt == 0 {
			return faultinject.FaultNaN
		}
		return faultinject.FaultNone
	})
	sav, _ := e.LatencyFigure("S", "P", 11, 110, 4096)
	if sav.FailedCells() != 0 {
		t.Fatalf("deferred NaN fault was not retried clean:\n%s", sav.String())
	}
	if e.BatchGroups() == 0 {
		t.Fatal("sweep did not exercise the batch phase")
	}
}
