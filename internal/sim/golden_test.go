package sim

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"hotleakage/internal/adaptive"
	"hotleakage/internal/decay"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// The golden-fingerprint suite pins the simulator's observable output —
// every CPU/cache/predictor counter and every energy meter — to fixtures
// recorded from the pre-optimization, strictly cycle-by-cycle core. Any
// timing-core change (the event-driven fast-forward in particular) must
// reproduce these bytes exactly: a wrong fast-forward would silently
// corrupt the paper's drowsy-vs-gated crossover long before any tier-1
// test noticed. Regenerate with:
//
//	go test ./internal/sim -run TestGoldenFingerprints -update-golden
//
// but only after independently establishing that a divergence is an
// intended model change, not a fast-forward bug.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden fingerprint fixtures")

const (
	goldenWarmup = 50_000
	goldenInstr  = 150_000
)

// goldenCase is one (machine, workload, control) cell of the fixture matrix.
// The matrix deliberately crosses the paths the fast-forward interacts
// with: all four techniques, both decay policies, per-line adaptive
// selectors, the feedback adapter (nextAdapt scheduling), controlled
// I-cache (a second decay machine on the fetch path), short and long L2
// latencies, and a decay interval small enough that rollovers land inside
// would-be idle regions.
type goldenCase struct {
	name  string
	bench string
	l2Lat int
	setup func() (Params leakctl.Params, mutate func(*MachineConfig), adapter leakctl.Adapter)
}

func goldenCases() []goldenCase {
	plain := func(t leakctl.Technique, interval uint64) func() (leakctl.Params, func(*MachineConfig), leakctl.Adapter) {
		return func() (leakctl.Params, func(*MachineConfig), leakctl.Adapter) {
			return leakctl.DefaultParams(t, interval), nil, nil
		}
	}
	return []goldenCase{
		{"baseline_gzip_l2-11", "gzip", 11, plain(leakctl.TechNone, 0)},
		{"drowsy_gcc_l2-11", "gcc", 11, plain(leakctl.TechDrowsy, DefaultInterval)},
		{"gated_gzip_l2-11", "gzip", 11, plain(leakctl.TechGated, DefaultInterval)},
		{"rbb_twolf_l2-11", "twolf", 11, plain(leakctl.TechRBB, DefaultInterval)},
		{"gated_gcc_l2-5", "gcc", 5, plain(leakctl.TechGated, DefaultInterval)},
		{"drowsy_gzip_l2-17", "gzip", 17, plain(leakctl.TechDrowsy, DefaultInterval)},
		// Short interval: global-counter rollovers every 128 cycles, so
		// fast-forward regions routinely contain rollovers.
		{"gated_crafty_iv512", "crafty", 11, plain(leakctl.TechGated, 512)},
		{"drowsy_simple_gzip", "gzip", 11, func() (leakctl.Params, func(*MachineConfig), leakctl.Adapter) {
			p := leakctl.DefaultParams(leakctl.TechDrowsy, DefaultInterval)
			p.Policy = decay.PolicySimple
			return p, nil, nil
		}},
		{"gated_perline_gcc", "gcc", 11, func() (leakctl.Params, func(*MachineConfig), leakctl.Adapter) {
			p := leakctl.DefaultParams(leakctl.TechGated, DefaultInterval)
			p.PerLineAdaptive = true
			return p, nil, nil
		}},
		{"gated_feedback_twolf", "twolf", 11, func() (leakctl.Params, func(*MachineConfig), leakctl.Adapter) {
			return leakctl.DefaultParams(leakctl.TechGated, DefaultInterval), nil, adaptive.NewFeedback(DefaultInterval, 8)
		}},
		{"il1_drowsy_gzip", "gzip", 11, func() (leakctl.Params, func(*MachineConfig), leakctl.Adapter) {
			ip := leakctl.DefaultParams(leakctl.TechDrowsy, DefaultInterval)
			return leakctl.DefaultParams(leakctl.TechDrowsy, DefaultInterval),
				func(mc *MachineConfig) { mc.IL1Control = &ip }, nil
		}},
		{"tags-awake_drowsy_gcc", "gcc", 11, func() (leakctl.Params, func(*MachineConfig), leakctl.Adapter) {
			p := leakctl.DefaultParams(leakctl.TechDrowsy, DefaultInterval)
			p.DecayTags = false
			p.WakeLatency = 1
			return p, nil, nil
		}},
	}
}

func goldenRun(t *testing.T, gc goldenCase) RunResult {
	t.Helper()
	mc := DefaultMachine(gc.l2Lat)
	mc.Warmup = goldenWarmup
	mc.Instructions = goldenInstr
	params, mutate, adapter := gc.setup()
	if mutate != nil {
		mutate(&mc)
	}
	prof, ok := workload.ByName(gc.bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", gc.bench)
	}
	res, err := RunOne(context.Background(), mc, prof, params, adapter)
	if err != nil {
		t.Fatalf("RunOne(%s): %v", gc.name, err)
	}
	return res
}

// fingerprint renders a RunResult as deterministic text, one counter per
// line. Floats are formatted as exact hexadecimal float64 literals, so the
// comparison is bit-identity, not approximate equality; reflection walks
// the structs so a newly added counter cannot silently escape the net.
func fingerprint(r RunResult) string {
	var b strings.Builder
	writeValue(&b, "", reflect.ValueOf(r))
	return b.String()
}

func writeValue(b *strings.Builder, prefix string, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue // unexported
			}
			name := t.Field(i).Name
			if prefix != "" {
				name = prefix + "." + name
			}
			writeValue(b, name, v.Field(i))
		}
	case reflect.Pointer:
		if v.IsNil() {
			fmt.Fprintf(b, "%s=nil\n", prefix)
			return
		}
		writeValue(b, prefix, v.Elem())
	case reflect.Float64, reflect.Float32:
		fmt.Fprintf(b, "%s=%s\n", prefix, strconv.FormatFloat(v.Float(), 'x', -1, 64))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(b, "%s=%d\n", prefix, v.Uint())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(b, "%s=%d\n", prefix, v.Int())
	case reflect.Bool:
		fmt.Fprintf(b, "%s=%t\n", prefix, v.Bool())
	case reflect.String:
		fmt.Fprintf(b, "%s=%q\n", prefix, v.String())
	default:
		panic(fmt.Sprintf("fingerprint: unhandled kind %s at %s", v.Kind(), prefix))
	}
}

func TestGoldenFingerprints(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			got := fingerprint(goldenRun(t, gc))
			path := filepath.Join("testdata", "golden", gc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (generate with -update-golden against a trusted core): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("fingerprint diverged from %s:\n%s", path, diffLines(string(want), got))
			}
		})
	}
}

// diffLines reports the first few differing counter lines, which names the
// corrupted statistic directly instead of dumping both fingerprints.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "  want %s\n  got  %s\n", w, g)
		if n++; n >= 8 {
			b.WriteString("  ... (further divergences elided)\n")
			break
		}
	}
	return b.String()
}
