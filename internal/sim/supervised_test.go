package sim

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hotleakage/internal/harness/faultinject"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// tinyExperiments is a two-benchmark experiment set at minimal scale for
// the supervision tests.
func tinyExperiments() *Experiments {
	e := NewExperiments()
	e.Instructions = 40_000
	e.Warmup = 10_000
	e.Profiles = e.Profiles[:2]
	return e
}

// panicKey injects a sticky panic into exactly one run key.
func panicKey(key string) faultinject.Injector {
	return faultinject.Func(func(k string, attempt int) faultinject.Fault {
		if k == key {
			return faultinject.FaultPanic
		}
		return faultinject.FaultNone
	})
}

func TestInjectedPanicKeepsSiblingCells(t *testing.T) {
	e := tinyExperiments()
	victim := runKey(e.Profiles[0].Name, 5, leakctl.TechDrowsy, 4096)
	e.Injector = panicKey(victim)

	sav, perf := e.LatencyFigure("S", "P", 5, 110, 4096)
	if len(sav.Bench) != 2 {
		t.Fatalf("figure lost rows: %v", sav.Bench)
	}
	if !sav.DrowsyErr[0] || !perf.DrowsyErr[0] {
		t.Fatal("panicked cell not marked ERR")
	}
	// Every sibling cell survives: gated on the same benchmark, and both
	// techniques on the other benchmark.
	if sav.GatedErr[0] || sav.DrowsyErr[1] || sav.GatedErr[1] {
		t.Fatalf("sibling cells lost: %+v %+v", sav.DrowsyErr, sav.GatedErr)
	}
	if sav.Gated[0] == 0 || sav.Drowsy[1] == 0 {
		t.Fatal("sibling cells have no values")
	}
	if !strings.Contains(sav.String(), "ERR") || !strings.Contains(sav.CSV(), "ERR") {
		t.Fatalf("ERR cell not rendered:\n%s", sav.String())
	}
	if sav.FailedCells() != 1 {
		t.Fatalf("FailedCells = %d, want 1", sav.FailedCells())
	}

	fails := e.Failures()
	if len(fails) != 1 || fails[0].Key != victim {
		t.Fatalf("failures = %+v", fails)
	}
	if fails[0].Panic == "" || fails[0].Stack == "" {
		t.Fatalf("panic not captured structurally: %+v", fails[0])
	}
	if s := e.FailureSummary(); !strings.Contains(s, victim) {
		t.Fatalf("summary does not name the failed run:\n%s", s)
	}

	// The failed cell is excluded from the average, not zero-counted.
	d, _ := sav.Avg()
	if d != sav.Drowsy[1] {
		t.Fatalf("Avg over failed cells wrong: %v (want %v)", d, sav.Drowsy[1])
	}
}

func TestParallelMatchesSerialFigure(t *testing.T) {
	par := tinyExperiments()
	par.Parallel = true
	ser := tinyExperiments()
	ser.Parallel = false

	ps, pp := par.LatencyFigure("S", "P", 5, 110, 4096)
	ss, sp := ser.LatencyFigure("S", "P", 5, 110, 4096)
	if ps.CSV() != ss.CSV() || pp.CSV() != sp.CSV() {
		t.Fatalf("parallel and serial figures diverge:\n%s\nvs\n%s", ps.CSV(), ss.CSV())
	}
}

func TestCheckpointResumeReproducesCleanFigure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")

	// Pass 1: one run panics; its cell degrades to ERR, the rest are
	// checkpointed.
	e1 := tinyExperiments()
	victim := runKey(e1.Profiles[0].Name, 5, leakctl.TechGated, 4096)
	e1.Injector = panicKey(victim)
	e1.CheckpointPath = path
	sav1, _ := e1.LatencyFigure("S", "P", 5, 110, 4096)
	if sav1.FailedCells() != 1 {
		t.Fatalf("pass 1: FailedCells = %d, want 1", sav1.FailedCells())
	}
	if e1.Executed() != 5 { // 2 baselines + 4 technique runs - 1 failure
		t.Fatalf("pass 1 executed %d runs, want 5", e1.Executed())
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Pass 2: resume without the injector. Only the failed run executes.
	e2 := tinyExperiments()
	e2.CheckpointPath = path
	e2.Resume = true
	sav2, perf2 := e2.LatencyFigure("S", "P", 5, 110, 4096)
	if sav2.FailedCells() != 0 || perf2.FailedCells() != 0 {
		t.Fatalf("pass 2 still failing:\n%s", e2.FailureSummary())
	}
	if e2.Executed() != 1 {
		t.Fatalf("resume executed %d runs, want only the failed one", e2.Executed())
	}
	if e2.Resumed() != 5 {
		t.Fatalf("resume restored %d runs, want 5", e2.Resumed())
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean run from scratch must agree bit-for-bit: resuming changes
	// where results come from, never what they are.
	clean := tinyExperiments()
	sav3, perf3 := clean.LatencyFigure("S", "P", 5, 110, 4096)
	if sav2.CSV() != sav3.CSV() || perf2.CSV() != perf3.CSV() {
		t.Fatalf("resumed figure differs from clean run:\n%s\nvs\n%s", sav2.CSV(), sav3.CSV())
	}
	if sav2.String() != sav3.String() {
		t.Fatal("rendered figures differ after resume")
	}
}

func TestCheckpointHeaderGuardsRunLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")
	e1 := tinyExperiments()
	e1.CheckpointPath = path
	if err := e1.Init(); err != nil {
		t.Fatal(err)
	}
	prof := e1.Profiles[0]
	if _, err := e1.run(prof, 5, leakctl.TechNone, 0); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := tinyExperiments()
	e2.Instructions = e1.Instructions * 2 // different settings
	e2.CheckpointPath = path
	e2.Resume = true
	if err := e2.Init(); err == nil {
		t.Fatal("resume with mismatched run length was not refused")
	}
}

func TestSuiteCancellationDegradesNotAborts(t *testing.T) {
	e := tinyExperiments()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before anything runs
	e.Ctx = ctx
	sav, _ := e.LatencyFigure("S", "P", 5, 110, 4096)
	if sav.FailedCells() != 4 {
		t.Fatalf("cancelled suite produced %d failed cells, want all 4", sav.FailedCells())
	}
	for _, f := range e.Failures() {
		if !f.Canceled {
			t.Fatalf("failure not marked Canceled: %+v", f)
		}
	}
}

func TestRunTimeoutMarksCellTimedOut(t *testing.T) {
	e := tinyExperiments()
	e.Instructions = 5_000_000 // long enough that 1ms cannot finish
	e.Warmup = 0
	e.RunTimeout = time.Millisecond
	prof := e.Profiles[0]
	_, err := e.run(prof, 11, leakctl.TechGated, 4096)
	if err == nil {
		t.Fatal("run under 1ms deadline should fail")
	}
	fails := e.Failures()
	if len(fails) != 1 || !fails[0].Timeout {
		t.Fatalf("failure not marked Timeout: %+v", fails)
	}
}

func TestInvalidConfigFailsPermanently(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	mc := fastMachine(11)
	mc.L1D.Assoc = 0
	if _, err := RunOne(context.Background(), mc, prof, leakctl.DefaultParams(leakctl.TechGated, 4096), nil); err == nil {
		t.Fatal("invalid machine accepted")
	}
	mc = fastMachine(11)
	bad := leakctl.DefaultParams(leakctl.TechGated, 4096)
	bad.Interval = 2 // non-zero but below the decay counter resolution
	if _, err := RunOne(context.Background(), mc, prof, bad, nil); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestNaNInjectionIsRetried(t *testing.T) {
	e := tinyExperiments()
	e.MaxRetries = 1
	// NaN on attempt 0 only: the retry must produce a clean result.
	victim := runKey(e.Profiles[0].Name, 11, leakctl.TechGated, 4096)
	e.Injector = faultinject.Func(func(k string, attempt int) faultinject.Fault {
		if k == victim && attempt == 0 {
			return faultinject.FaultNaN
		}
		return faultinject.FaultNone
	})
	r, err := e.run(e.Profiles[0], 11, leakctl.TechGated, 4096)
	if err != nil {
		t.Fatalf("NaN injection not recovered by retry: %v", err)
	}
	if r.Measurement.DCacheDynJ != r.Measurement.DCacheDynJ { // NaN check
		t.Fatal("accepted result carries NaN energy")
	}
	if len(e.Failures()) != 0 {
		t.Fatalf("unexpected failures: %+v", e.Failures())
	}
}

// ckptWith opens (and immediately closes) a checkpoint at path under the
// given injector, leaving only the header on disk.
func ckptWith(t *testing.T, path string, inj faultinject.Injector) {
	t.Helper()
	e := tinyExperiments()
	e.CheckpointPath = path
	e.Injector = inj
	if err := e.Init(); err != nil {
		t.Fatalf("writing checkpoint header: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestResumeRefusedOnFaultConfigMismatch(t *testing.T) {
	// The fault-injection spec is part of the checkpoint fingerprint: a
	// resumed flag-driven sweep must not silently change what it injects
	// between passes.
	inj := func() *faultinject.Deterministic {
		// Fires on ~1 in 2^40 keys: a realistic nonempty spec that will
		// never actually trigger here.
		return &faultinject.Deterministic{Fault: faultinject.FaultError, N: 1 << 40, Seed: 7}
	}

	resume := func(path string, in faultinject.Injector) error {
		e := tinyExperiments()
		e.CheckpointPath = path
		e.Resume = true
		e.Injector = in
		err := e.Init()
		if cerr := e.Close(); err == nil {
			err = cerr
		}
		return err
	}

	faulted := filepath.Join(t.TempDir(), "faulted.json")
	ckptWith(t, faulted, inj())

	// Dropping the injector on resume is refused...
	if err := resume(faulted, nil); err == nil || !strings.Contains(err.Error(), "different settings") {
		t.Fatalf("resume without the injector: err = %v, want settings mismatch", err)
	}
	// ...as is changing its spec...
	weaker := inj()
	weaker.N = 1 << 20
	if err := resume(faulted, weaker); err == nil || !strings.Contains(err.Error(), "different settings") {
		t.Fatalf("resume with a different spec: err = %v, want settings mismatch", err)
	}
	// ...but an identical spec (a fresh value with the same fields, as
	// flag re-parsing produces) resumes fine.
	if err := resume(faulted, inj()); err != nil {
		t.Fatalf("resume with the matching spec refused: %v", err)
	}

	// The other direction: a clean checkpoint refuses a -faultinject resume.
	clean := filepath.Join(t.TempDir(), "clean.json")
	ckptWith(t, clean, nil)
	if err := resume(clean, inj()); err == nil || !strings.Contains(err.Error(), "different settings") {
		t.Fatalf("clean checkpoint accepted a faulted resume: err = %v", err)
	}
	// A disabled Deterministic renders as the empty spec — no injection
	// is no injection, however it is spelled.
	if err := resume(clean, &faultinject.Deterministic{}); err != nil {
		t.Fatalf("clean checkpoint refused a disabled injector: %v", err)
	}
	// Anonymous test injectors (faultinject.Func) are outside the header
	// contract and do not perturb the fingerprint.
	if err := resume(clean, panicKey("nope")); err != nil {
		t.Fatalf("clean checkpoint refused an anonymous injector: %v", err)
	}
}
