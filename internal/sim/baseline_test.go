package sim

// White-box tests for the Suite.Baseline single-flight protocol: leader
// election, waiter retry after a failed leader, SetBaseline seeding, and
// cancellation while waiting. Run these under -race (make verify does).

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hotleakage/internal/obs"
	"hotleakage/internal/workload"
)

// inflightCell plants an unfinished leader cell for name, as if another
// goroutine were mid-simulation, and returns it.
func inflightCell(s *Suite, name string) *baselineCell {
	c := &baselineCell{done: make(chan struct{})}
	s.mu.Lock()
	s.baselines[name] = c
	s.mu.Unlock()
	return c
}

func TestBaselineWaitersShareTheLeaderResult(t *testing.T) {
	s := NewSuite(fastMachine(5))
	prof, _ := workload.ByName("gcc")
	c := inflightCell(s, prof.Name)

	const waiters = 8
	results := make(chan RunResult, waiters)
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			r, err := s.Baseline(context.Background(), prof)
			results <- r
			errs <- err
		}()
	}

	// Complete the planted leader with a sentinel result no simulation
	// could produce. If any waiter simulated on its own it would return
	// a real run instead.
	c.r = RunResult{Bench: "sentinel"}
	close(c.done)
	for i := 0; i < waiters; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("waiter error: %v", err)
		}
		if r := <-results; r.Bench != "sentinel" {
			t.Fatalf("waiter simulated its own baseline (got bench %q)", r.Bench)
		}
	}
}

func TestBaselineWaiterRetriesAfterLeaderFailure(t *testing.T) {
	s := NewSuite(fastMachine(5))
	prof, _ := workload.ByName("gcc")
	c := inflightCell(s, prof.Name)

	type out struct {
		r   RunResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		r, err := s.Baseline(context.Background(), prof)
		done <- out{r, err}
	}()

	// Fail the leader the way Baseline does: remove the cell first, then
	// publish the error. The waiter must not inherit it.
	s.mu.Lock()
	delete(s.baselines, prof.Name)
	s.mu.Unlock()
	c.err = errors.New("leader context cancelled")
	close(c.done)

	o := <-done
	if o.err != nil {
		t.Fatalf("waiter inherited the failed leader's error: %v", o.err)
	}
	if o.r.Bench != prof.Name || o.r.CPU.Cycles == 0 {
		t.Fatalf("retrying waiter produced no real run: %+v", o.r.Bench)
	}
	// The retry's result must now be cached for everyone else.
	again := mustT(s.Baseline(context.Background(), prof))
	if again != o.r {
		t.Fatal("retried baseline not cached")
	}
}

func TestBaselineWaiterCancellation(t *testing.T) {
	s := NewSuite(fastMachine(5))
	prof, _ := workload.ByName("gcc")
	inflightCell(s, prof.Name) // never completed

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Baseline(ctx, prof)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked on a stuck leader")
	}
}

func TestSetBaselineDoesNotClobberInflightLeader(t *testing.T) {
	s := NewSuite(fastMachine(5))
	prof, _ := workload.ByName("gcc")
	c := inflightCell(s, prof.Name)

	// Seeding while the leader is mid-flight must be a no-op: the seed
	// would race with the leader's own write into the cell.
	s.SetBaseline(prof.Name, RunResult{Bench: "seed"})
	s.mu.Lock()
	cur := s.baselines[prof.Name]
	s.mu.Unlock()
	if cur != c {
		t.Fatal("SetBaseline replaced an in-flight cell")
	}

	// Once the leader is done the seed may replace it.
	c.r = RunResult{Bench: "leader"}
	close(c.done)
	s.SetBaseline(prof.Name, RunResult{Bench: "seed"})
	if r := mustT(s.Baseline(context.Background(), prof)); r.Bench != "seed" {
		t.Fatalf("post-completion seed ignored, Baseline returned %q", r.Bench)
	}
}

func TestBaselineSingleFlightUnderContention(t *testing.T) {
	// Black-box: many concurrent callers, one simulation. The obs
	// instruction counter is the witness — a second redundant run would
	// double the delta.
	mc := fastMachine(5)
	s := NewSuite(mc)
	prof, _ := workload.ByName("gcc")
	before := obs.Default.Snapshot().Counters[obs.MetricInstructions]

	const callers = 8
	var wg sync.WaitGroup
	results := make([]RunResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = mustT(s.Baseline(context.Background(), prof))
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different baseline", i)
		}
	}

	after := obs.Default.Snapshot().Counters[obs.MetricInstructions]
	perRun := mc.Warmup + mc.Instructions
	if delta := after - before; delta >= 2*perRun {
		t.Fatalf("instruction delta %d implies %d simulations for one baseline (want 1)",
			delta, delta/perRun)
	}
}
