// Package leakctl implements the paper's generic abstraction for leakage
// control "based on putting individual lines into standby mode" (Section
// 2.3), and the concrete techniques compared in the paper: gated-Vss
// (non-state-preserving) and drowsy cache (state-preserving), plus reverse
// body bias (state-preserving) as the extension technique.
//
// The controlled L1 data cache lives here. Both techniques share identical
// decay hardware (package decay, noaccess policy by default) and identical
// threshold voltages, per the paper's fairness methodology. They differ in:
//
//   - residual standby leakage (computed by package leakage, not asserted),
//   - what an access to a standby line costs: drowsy pays a short wake-up
//     ("slow hit", >= 3 cycles with decayed tags); gated-Vss lost the data
//     and pays a full L2 fetch ("induced miss"),
//   - true-miss behaviour: drowsy must wake decayed tags before it can
//     detect the miss; gated-Vss skips standby ways entirely and is as fast
//     as an uncontrolled cache,
//   - decay-time work: gated-Vss must write back dirty lines before
//     discarding them.
package leakctl

import (
	"fmt"
	"strings"
	"time"

	"hotleakage/internal/cache"
	"hotleakage/internal/decay"
	"hotleakage/internal/leakage"
	"hotleakage/internal/power"
	"hotleakage/internal/tech"
)

// Technique identifies a leakage-control technique.
type Technique int

// Techniques. TechNone is the uncontrolled baseline (same code path, no
// decay), which keeps baseline-vs-technique comparisons apples-to-apples.
const (
	TechNone Technique = iota
	TechDrowsy
	TechGated
	TechRBB
)

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case TechNone:
		return "none"
	case TechDrowsy:
		return "drowsy"
	case TechGated:
		return "gated-vss"
	case TechRBB:
		return "rbb"
	}
	return fmt.Sprintf("technique(%d)", int(t))
}

// ParseTechnique maps a technique's String form (plus forgiving aliases
// for the daemon's JSON API) back to the Technique value.
func ParseTechnique(s string) (Technique, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none", "baseline", "":
		return TechNone, nil
	case "drowsy":
		return TechDrowsy, nil
	case "gated-vss", "gated", "gatedvss", "gated_vss":
		return TechGated, nil
	case "rbb":
		return TechRBB, nil
	}
	return TechNone, fmt.Errorf("leakctl: unknown technique %q (have none, drowsy, gated-vss, rbb)", s)
}

// StatePreserving reports whether standby lines keep their contents.
func (t Technique) StatePreserving() bool { return t == TechDrowsy || t == TechRBB }

// Mode maps the technique to its standby leakage mode.
func (t Technique) Mode() leakage.Mode {
	switch t {
	case TechDrowsy:
		return leakage.ModeDrowsy
	case TechGated:
		return leakage.ModeGated
	case TechRBB:
		return leakage.ModeRBB
	}
	return leakage.ModeActive
}

// Params configures a controlled cache.
type Params struct {
	Technique Technique
	// Interval is the decay interval in cycles (0 disables decay).
	Interval uint64
	Policy   decay.Policy
	// DecayTags: tags are put in standby along with the data (the
	// paper's default for both techniques; "drowsy tags").
	DecayTags bool
	// SettleSleep / SettleWake are the mode-transition settling times in
	// cycles (paper Table 1: drowsy 3/3, gated 30/3).
	SettleSleep, SettleWake int
	// WakeLatency is the pipeline-visible penalty for touching a standby
	// line in a state-preserving cache. With decayed tags this is "at
	// least three cycles"; without, 1-2.
	WakeLatency int
	// PerLineAdaptive selects the Kaxiras-style per-line adaptive decay
	// (2-bit selectors choosing among exponentially spaced intervals,
	// starting from Interval). Premature decays promote a line to a
	// longer interval; decays never missed demote it.
	PerLineAdaptive bool
}

// Validate rejects impossible control parameters with descriptive errors.
// The decay machinery divides the interval by four for its global counter,
// so a non-zero interval below four cycles would never roll over; negative
// settling or wake latencies are meaningless.
func (p Params) Validate() error {
	switch p.Technique {
	case TechNone, TechDrowsy, TechGated, TechRBB:
	default:
		return fmt.Errorf("leakctl: unknown technique %d", int(p.Technique))
	}
	switch p.Policy {
	case decay.PolicyNoAccess, decay.PolicySimple:
	default:
		return fmt.Errorf("leakctl: unknown decay policy %d", int(p.Policy))
	}
	if p.Interval != 0 && p.Interval < 4 {
		return fmt.Errorf("leakctl: decay interval %d too short (need 0 or >= 4 cycles)", p.Interval)
	}
	if p.SettleSleep < 0 || p.SettleWake < 0 {
		return fmt.Errorf("leakctl: negative settling times (sleep %d, wake %d)", p.SettleSleep, p.SettleWake)
	}
	if p.WakeLatency < 0 {
		return fmt.Errorf("leakctl: negative wake latency %d", p.WakeLatency)
	}
	if p.PerLineAdaptive && p.Interval == 0 {
		return fmt.Errorf("leakctl: per-line adaptive decay needs a non-zero base interval")
	}
	return nil
}

// DefaultParams returns the paper's configuration for a technique at the
// given decay interval.
func DefaultParams(t Technique, interval uint64) Params {
	p := Params{
		Technique: t,
		Interval:  interval,
		Policy:    decay.PolicyNoAccess,
		DecayTags: true,
	}
	switch t {
	case TechDrowsy:
		p.SettleSleep, p.SettleWake = 3, 3
		p.WakeLatency = 3
	case TechGated:
		p.SettleSleep, p.SettleWake = 30, 3
		p.WakeLatency = 0 // standby access is a miss; L2 covers it
	case TechRBB:
		// Body-bias settling is slower than a drowsy rail switch; we
		// model 9-cycle transitions (our choice; the paper does not
		// evaluate RBB directly, citing GIDL limits).
		p.SettleSleep, p.SettleWake = 9, 9
		p.WakeLatency = 9
	case TechNone:
		p.Interval = 0
	}
	if !p.DecayTags && t == TechDrowsy {
		p.WakeLatency = 1
	}
	return p
}

// Stats accumulates the controlled cache's event counts.
type Stats struct {
	Accesses uint64
	Hits     uint64 // fast hits on active lines
	SlowHits uint64 // state-preserving: hits on standby lines (wake first)
	Misses   uint64 // all accesses that went to L2

	InducedMisses uint64 // gated: data was live at decay; L2 fetch forced
	TrueMisses    uint64 // data genuinely absent

	TagWakeStalls uint64 // state-preserving: true misses delayed by tag wake

	SleepTransitions uint64
	WakeTransitions  uint64
	DecayWritebacks  uint64 // gated: dirty line written back at decay time
	EvictWritebacks  uint64
	Fills            uint64
}

// HitRate returns (fast+slow hits)/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits+s.SlowHits) / float64(s.Accesses)
}

// Energy is the controlled cache's dynamic-energy breakdown in joules.
// Extra L2 energy from induced misses and decay writebacks accumulates in
// the next level's own meter.
type Energy struct {
	AccessJ     float64 // reads, writes, probes, fills
	CounterJ    float64 // decay-counter activity (filled in by Finish)
	TransitionJ float64 // sleep/wake rail switching, tag wakes
	WritebackJ  float64 // decay-writeback line read-out
}

// Total returns the sum of all categories.
func (e Energy) Total() float64 {
	return e.AccessJ + e.CounterJ + e.TransitionJ + e.WritebackJ
}

// Per-line state bits in DCache.flags.
const (
	lineValid   uint8 = 1 << iota
	lineDirty
	lineStandby
	lineHadLive // gated: standby and contents were live when decayed
)

// DCache is the leakage-controlled L1 data cache.
type DCache struct {
	Cfg    cache.Config
	P      Params
	Next   cache.Level
	Stats  Stats
	Energy Energy

	// Adapter, when non-nil, adjusts the decay interval at runtime
	// (Section 5.4). AdaptChanges counts reprogrammings.
	Adapter      Adapter
	AdaptChanges uint64
	nextAdapt    uint64

	AccessE power.CacheEnergy
	TechE   power.TechniqueEnergy
	Machine *decay.Machine

	// Line state, struct-of-arrays: the way-probe loop on every access
	// reads only flags and tags, so splitting the old per-line struct
	// keeps the probed footprint to nine bytes per way instead of a
	// 32-byte struct; lastUse is touched only on hits and fills.
	tags      []uint64
	lastUse   []uint64
	flags     []uint8
	assoc     int
	setMask   uint64
	lineShift uint
	tagShift  uint
	useStamp  uint64

	curCycle        uint64
	standbyCount    int
	lastOccCycle    uint64
	standbyIntegral uint64
	settleDebt      uint64 // standby cycles forfeited to sleep settling
	finished        bool
	finalCycles     uint64
	statsStart      uint64        // cycle at which measurement began
	machineBase     decay.Machine // counter-stat snapshot at measurement start

	// Sampled next-level latency attribution: wall-clock ns spent inside
	// Next.Access on the 1-in-16 sampled misses (see l2SampleMask), plus
	// the sampled-miss count to normalize by.
	l2NS      uint64
	l2Sampled uint64

	// Observability flush state (see obs.go): counter IDs resolved once,
	// plus the Stats/AdaptChanges values at the last flush.
	obsIDs        *dcacheObsIDs
	obsPrev       Stats
	obsPrevAdapt  uint64
	obsPrevL2NS   uint64
	obsPrevL2Samp uint64
}

// l2SampleMask selects which misses get wall-clock timing of the
// next-level access: miss counts with the masked bits zero, i.e. 1 in 16.
const l2SampleMask = 15

// New builds a controlled L1 D-cache over next. Technique TechNone with
// Interval 0 is the baseline. Invalid cache or control configurations are
// reported as errors before any state is built.
func New(p *tech.Params, cfg cache.Config, params Params, next cache.Level) (*DCache, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	nlines := sets * cfg.Assoc
	machine := decay.New(nlines, params.Interval, params.Policy)
	if params.PerLineAdaptive && params.Interval != 0 {
		machine = decay.NewPerLine(nlines, params.Interval)
	}
	d := &DCache{
		Cfg:     cfg,
		P:       params,
		Next:    next,
		AccessE: power.NewCacheEnergy(p, cfg.Geometry()),
		TechE:   power.NewTechniqueEnergy(p, cfg.LineBytes, params.Technique == TechGated),
		Machine: machine,
		tags:    make([]uint64, nlines),
		lastUse: make([]uint64, nlines),
		flags:   make([]uint8, nlines),
		assoc:   cfg.Assoc,
		setMask: uint64(sets - 1),
	}
	ls := 0
	for 1<<ls < cfg.LineBytes {
		ls++
	}
	ss := 0
	for 1<<ss < sets {
		ss++
	}
	d.lineShift = uint(ls)
	d.tagShift = uint(ss)
	return d, nil
}

// Reset returns the cache to the state New(p, d.Cfg, params, next) leaves
// it in, reusing the line array (run-to-run reuse). The geometry (Cfg) is
// fixed at construction; technique parameters and the technology point may
// change between runs, so the energy models and the decay machine are
// rebuilt. The Adapter, set externally after New, is cleared the same way.
func (d *DCache) Reset(p *tech.Params, params Params, next cache.Level) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := params.Validate(); err != nil {
		return err
	}
	nlines := len(d.flags)
	machine := decay.New(nlines, params.Interval, params.Policy)
	if params.PerLineAdaptive && params.Interval != 0 {
		machine = decay.NewPerLine(nlines, params.Interval)
	}
	d.P = params
	d.Next = next
	d.Stats = Stats{}
	d.Energy = Energy{}
	d.Adapter = nil
	d.AdaptChanges = 0
	d.nextAdapt = 0
	d.AccessE = power.NewCacheEnergy(p, d.Cfg.Geometry())
	d.TechE = power.NewTechniqueEnergy(p, d.Cfg.LineBytes, params.Technique == TechGated)
	d.Machine = machine
	clear(d.tags)
	clear(d.lastUse)
	clear(d.flags)
	d.useStamp = 0
	d.curCycle = 0
	d.standbyCount = 0
	d.lastOccCycle = 0
	d.standbyIntegral = 0
	d.settleDebt = 0
	d.finished = false
	d.finalCycles = 0
	d.statsStart = 0
	d.machineBase = decay.Machine{}
	d.l2NS = 0
	d.l2Sampled = 0
	d.obsPrev = Stats{}
	d.obsPrevAdapt = 0
	d.obsPrevL2NS = 0
	d.obsPrevL2Samp = 0
	return nil
}

// MustNew is New for static configuration known to be valid (tests,
// examples); it panics on error.
func MustNew(p *tech.Params, cfg cache.Config, params Params, next cache.Level) *DCache {
	d, err := New(p, cfg, params, next)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements cache.Level.
func (d *DCache) Name() string { return d.Cfg.Name }

// HitLat returns the hit latency in cycles (cpu.FetchCache).
func (d *DCache) HitLat() int { return d.Cfg.HitLatency }

// Lines returns the number of cache lines under control.
func (d *DCache) Lines() int { return len(d.flags) }

// index splits a byte address into set and tag.
func (d *DCache) index(addr uint64) (set, tag uint64) {
	la := addr >> d.lineShift
	return la & d.setMask, la >> d.tagShift
}

// occSync folds elapsed standby line-cycles into the integral.
func (d *DCache) occSync(cycle uint64) {
	if cycle > d.lastOccCycle {
		d.standbyIntegral += uint64(d.standbyCount) * (cycle - d.lastOccCycle)
		d.lastOccCycle = cycle
	}
}

// expire is the decay callback: move line i to standby.
func (d *DCache) expire(i int) {
	f := d.flags[i]
	if f&lineValid == 0 || f&lineStandby != 0 {
		return
	}
	d.occSync(d.curCycle)
	d.Stats.SleepTransitions++
	d.Energy.TransitionJ += d.TechE.SleepTransition
	d.settleDebt += uint64(d.P.SettleSleep)

	if d.P.Technique == TechGated {
		if f&lineDirty != 0 {
			// The discarded line's contents must survive: write
			// back before disconnecting (cache-decay behaviour).
			d.Stats.DecayWritebacks++
			d.Energy.WritebackJ += d.AccessE.LineRead
			d.writebackToNext(i)
			f &^= lineDirty
		}
		f |= lineHadLive
	}
	d.flags[i] = f | lineStandby
	d.standbyCount++
}

// writebackToNext pushes line i's contents to the next level.
func (d *DCache) writebackToNext(i int) {
	set := uint64(i / d.assoc)
	addr := ((d.tags[i] << d.tagShift) | set) << d.lineShift
	if d.Next != nil {
		d.Next.Access(addr, true, d.curCycle)
	}
}

// wake returns line i to the active state.
func (d *DCache) wake(i int) {
	if d.flags[i]&lineStandby == 0 {
		return
	}
	d.occSync(d.curCycle)
	d.flags[i] &^= lineStandby | lineHadLive
	d.standbyCount--
	d.Stats.WakeTransitions++
	d.Energy.TransitionJ += d.TechE.WakeTransition
	d.Machine.Touch(i)
}

// Tick advances the decay machinery to cycle. The CPU calls it at every
// scheduled tick event (see NextTickEvent); calling it every cycle is
// equally correct, just slower — it is O(1) between global-counter
// rollovers.
func (d *DCache) Tick(cycle uint64) {
	d.curCycle = cycle
	d.Machine.Advance(cycle, d.expire)
	if d.Adapter != nil {
		d.adaptTick(cycle)
	}
}

// NextTickEvent returns the next cycle at which Tick does observable work:
// the decay machine's next global-counter rollover or the adapter's next
// consultation, whichever is sooner (cpu.TickEventer). Between those
// cycles Tick only re-stamps curCycle, which every state-changing path
// re-stamps anyway, so the core may skip the calls without changing any
// counter, energy meter or expire ordering.
func (d *DCache) NextTickEvent() uint64 {
	n := d.Machine.NextRollover()
	if d.Adapter != nil && d.nextAdapt < n {
		n = d.nextAdapt
	}
	return n
}

// Access implements cache.Level with the technique-specific standby
// semantics described in the package comment.
func (d *DCache) Access(addr uint64, write bool, cycle uint64) int {
	d.curCycle = cycle
	// Advance does observable work only at rollovers (its loop condition
	// is this same compare), so the call is skipped between them.
	if cycle >= d.Machine.NextRollover() {
		d.Machine.Advance(cycle, d.expire)
	}
	d.Stats.Accesses++
	d.useStamp++
	set, tag := d.index(addr)
	base := int(set) * d.assoc

	hitWay := -1
	standbyMatch := -1
	anyStandby := false
	flags, tags := d.flags, d.tags
	for w := 0; w < d.assoc; w++ {
		i := base + w
		f := flags[i]
		if f&lineValid == 0 {
			continue
		}
		if f&lineStandby != 0 {
			anyStandby = true
			if tags[i] == tag {
				standbyMatch = i
			}
			continue
		}
		if tags[i] == tag {
			hitWay = i
		}
	}

	preserving := d.P.Technique.StatePreserving() || d.P.Technique == TechNone

	// Fast hit on an active line: identical for every technique.
	if hitWay >= 0 {
		return d.finishHit(hitWay, write, false)
	}

	// Standby line holds the data and the technique preserves state:
	// "slow hit" — wake it, pay the wake latency, no L2 access. The
	// first probe found the line asleep; after wake-up the tags and
	// data are probed again, so a slow hit costs one extra array access
	// on top of the wake transition.
	if preserving && standbyMatch >= 0 {
		d.Stats.SlowHits++
		d.Energy.AccessJ += d.AccessE.ReadHit
		// Per-line adaptive: this decay was premature.
		d.Machine.Promote(standbyMatch)
		d.wake(standbyMatch)
		return d.finishHit(standbyMatch, write, true)
	}

	// Miss path.
	d.Stats.Misses++
	extra := 0
	if preserving && d.P.DecayTags && anyStandby {
		// Drowsy/RBB must wake the standby ways' tags before the
		// miss can be confirmed ("gated-Vss is actually faster" on
		// these true misses).
		extra = d.P.WakeLatency
		d.Stats.TagWakeStalls++
		d.Energy.AccessJ += d.AccessE.TagProbe
		d.Energy.TransitionJ += tagFraction * d.TechE.WakeTransition
	}
	if d.P.Technique == TechGated && standbyMatch >= 0 && d.flags[standbyMatch]&lineHadLive != 0 {
		// The data was live when the line was disconnected: this L2
		// access exists only because of the leakage control.
		d.Stats.InducedMisses++
		d.Machine.Promote(standbyMatch)
	} else {
		d.Stats.TrueMisses++
	}
	d.Energy.AccessJ += d.AccessE.TagProbe

	lat := d.Cfg.HitLatency + extra
	if d.Next != nil {
		if d.Stats.Misses&l2SampleMask == 0 {
			// 1-in-16 sampled wall-clock attribution of next-level time
			// (deterministic in the miss count, so which simulated
			// accesses are sampled never varies across runs).
			t := time.Now()
			lat += d.Next.Access(addr, false, cycle)
			d.l2NS += uint64(time.Since(t))
			d.l2Sampled++
		} else {
			lat += d.Next.Access(addr, false, cycle)
		}
	}
	d.fill(set, tag, standbyMatch, write)
	return lat
}

// tagFraction approximates the share of a line's cells that belong to its
// tag (the paper: "tags account for 5-10% of the leakage energy").
const tagFraction = 0.07

// finishHit applies LRU/dirty/energy bookkeeping for a hit on way index i
// and returns its latency.
func (d *DCache) finishHit(i int, write, slow bool) int {
	d.lastUse[i] = d.useStamp
	d.Machine.Touch(i)
	if write {
		d.flags[i] |= lineDirty
		d.Energy.AccessJ += d.AccessE.WriteHit
	} else {
		d.Energy.AccessJ += d.AccessE.ReadHit
	}
	d.Stats.Hits += b2u(!slow)
	lat := d.Cfg.HitLatency
	if slow {
		lat += d.P.WakeLatency
	}
	return lat
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// fill installs (set, tag) after a miss. standbyMatch, if >= 0, is a
// standby way already holding this tag (gated induced/true miss target):
// it is refilled in place.
func (d *DCache) fill(set, tag uint64, standbyMatch int, write bool) {
	base := int(set) * d.assoc
	flags, lastUse := d.flags, d.lastUse
	victim := -1
	if standbyMatch >= 0 {
		victim = standbyMatch
	} else {
		// Invalid way first.
		for w := 0; w < d.assoc; w++ {
			if flags[base+w]&lineValid == 0 {
				victim = base + w
				break
			}
		}
		// Then LRU among standby ways (gated: their data is already
		// dead; drowsy: prefer evicting sleepers, they are the
		// stalest by construction).
		if victim < 0 {
			for w := 0; w < d.assoc; w++ {
				if flags[base+w]&lineStandby != 0 && (victim < 0 || lastUse[base+w] < lastUse[victim]) {
					victim = base + w
				}
			}
		}
		// Finally LRU among active ways.
		if victim < 0 {
			victim = base
			for w := 1; w < d.assoc; w++ {
				if lastUse[base+w] < lastUse[victim] {
					victim = base + w
				}
			}
		}
	}

	vf := flags[victim]
	if vf&(lineValid|lineDirty) == lineValid|lineDirty {
		// A drowsy dirty victim must be woken to read its contents
		// out (energy only; off the critical path).
		if vf&lineStandby != 0 {
			d.Energy.TransitionJ += d.TechE.WakeTransition
		}
		d.Stats.EvictWritebacks++
		d.Energy.WritebackJ += d.AccessE.LineRead
		d.writebackToNext(victim)
	}
	if vf&lineStandby != 0 {
		d.occSync(d.curCycle)
		d.standbyCount--
		if victim != standbyMatch {
			// The decayed line is dying without ever having been
			// missed: its decay was correct — per-line adaptive
			// moves it toward a shorter interval.
			d.Machine.Demote(victim)
		}
	}
	d.tags[victim] = tag
	lastUse[victim] = d.useStamp
	nf := lineValid
	if write {
		nf |= lineDirty
	}
	flags[victim] = nf
	d.Machine.Touch(victim)
	d.Stats.Fills++
	d.Energy.AccessJ += d.AccessE.LineFill
}

// ResetStats zeroes counts, energy meters and occupancy accounting at the
// end of a warmup phase, keeping cache and decay state intact. cycle is the
// current simulation cycle.
func (d *DCache) ResetStats(cycle uint64) {
	d.curCycle = cycle
	d.occSync(cycle)
	d.Stats = Stats{}
	d.Energy = Energy{}
	d.standbyIntegral = 0
	d.settleDebt = 0
	d.statsStart = cycle
	d.machineBase = *d.Machine
	d.obsPrev = Stats{}
}

// Finish closes the occupancy accounting at the end-of-run cycle and fills
// in the counter energy. It must be called exactly once, after the last
// access.
func (d *DCache) Finish(cycle uint64) {
	if d.finished {
		return
	}
	d.finished = true
	d.finalCycles = cycle
	d.curCycle = cycle
	d.occSync(cycle)
	if d.P.Interval != 0 {
		bumps := d.Machine.LocalBumps - d.machineBase.LocalBumps
		resets := d.Machine.LocalResets - d.machineBase.LocalResets
		d.Energy.CounterJ = float64(cycle-d.statsStart)*d.TechE.GlobalTick +
			float64(bumps)*d.TechE.LocalBump +
			float64(resets)*d.TechE.LocalReset
	}
}

// StandbyLineCycles returns the effective line-cycles spent in standby
// during the measurement phase, net of the settling debt (a line entering
// standby leaks at the active rate for SettleSleep cycles before the rail
// actually drops — 30 cycles for gated-Vss, which is what makes it "more
// sensitive to the smaller decay interval").
func (d *DCache) StandbyLineCycles() uint64 {
	if d.settleDebt >= d.standbyIntegral {
		return 0
	}
	return d.standbyIntegral - d.settleDebt
}

// MeasuredCycles returns the number of cycles in the measurement phase
// (after Finish).
func (d *DCache) MeasuredCycles() uint64 { return d.finalCycles - d.statsStart }

// TurnoffRatio returns the average fraction of lines in standby over the
// measurement phase (must be called after Finish).
func (d *DCache) TurnoffRatio() float64 {
	mc := d.MeasuredCycles()
	if mc == 0 {
		return 0
	}
	return float64(d.StandbyLineCycles()) / (float64(len(d.flags)) * float64(mc))
}

// StandbyNow returns the number of lines currently in standby (tests).
func (d *DCache) StandbyNow() int { return d.standbyCount }

// Contains reports whether addr's line is present with live contents (for
// tests; does not touch LRU, counters or stats).
func (d *DCache) Contains(addr uint64) bool {
	set, tag := d.index(addr)
	base := int(set) * d.assoc
	for w := 0; w < d.assoc; w++ {
		f := d.flags[base+w]
		if f&lineValid == 0 || d.tags[base+w] != tag {
			continue
		}
		if f&lineStandby != 0 && d.P.Technique == TechGated {
			return false // contents destroyed
		}
		return true
	}
	return false
}
