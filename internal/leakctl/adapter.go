package leakctl

// Adapter is the hook for runtime-adaptive decay intervals (the paper's
// Section 5.4: adaptive schemes "require the tags to stay awake" and use a
// small state machine to periodically update the decay-interval register).
// Recommend is consulted every AdaptEvery cycles with the cache's
// cumulative statistics; returning a different interval reprograms the
// decay machine in place.
type Adapter interface {
	// Recommend returns the decay interval to use from this point on.
	Recommend(cycle uint64, s Stats) uint64
	// Every returns the consultation period in cycles.
	Every() uint64
}

// installAdapterHooks is called from Tick; kept separate so the fast path
// stays small.
func (d *DCache) adaptTick(cycle uint64) {
	if cycle < d.nextAdapt {
		return
	}
	d.nextAdapt = cycle + d.Adapter.Every()
	iv := d.Adapter.Recommend(cycle, d.Stats)
	if iv != 0 && iv != d.Machine.Interval() {
		d.Machine.SetInterval(iv, cycle)
		d.AdaptChanges++
	}
}
