package leakctl

import (
	"fmt"

	"hotleakage/internal/obs"
)

// dcacheObsIDs caches per-instance counter IDs (leakctl_dl1_*,
// leakctl_il1_* when the I-cache is controlled) so the per-chunk flush
// never takes the registry lock.
type dcacheObsIDs struct {
	accesses, hits, slowHits, misses     obs.CounterID
	inducedMisses, trueMisses            obs.CounterID
	tagWakeStalls                        obs.CounterID
	sleepTransitions, wakeTransitions    obs.CounterID
	decayWritebacks, evictWritebacks     obs.CounterID
	fills, wakePenaltyCycles, adaptTunes obs.CounterID
	l2NS, l2Sampled                      obs.CounterID
}

func newDCacheObsIDs(name string) *dcacheObsIDs {
	c := func(kind string) obs.CounterID {
		return obs.Default.Counter(fmt.Sprintf("leakctl_%s_%s_total", name, kind)).ID()
	}
	return &dcacheObsIDs{
		accesses:          c("accesses"),
		hits:              c("hits"),
		slowHits:          c("slow_hits"),
		misses:            c("misses"),
		inducedMisses:     c("induced_misses"),
		trueMisses:        c("true_misses"),
		tagWakeStalls:     c("tag_wake_stalls"),
		sleepTransitions:  c("sleep_transitions"),
		wakeTransitions:   c("wake_transitions"),
		decayWritebacks:   c("decay_writebacks"),
		evictWritebacks:   c("evict_writebacks"),
		fills:             c("fills"),
		wakePenaltyCycles: c("wake_penalty_cycles"),
		adaptTunes:        c("adapter_retunes"),
		l2NS:              c("l2_ns"),
		l2Sampled:         c("l2_sampled_misses"),
	}
}

// ObsFlush adds the Stats delta since the previous flush to sh. The
// wake-penalty-cycles counter is derived: every slow hit and every
// tag-wake-stalled miss costs the pipeline WakeLatency extra cycles
// (Access/finishHit), so the counter is their sum scaled by the latency.
func (d *DCache) ObsFlush(sh *obs.Shard) {
	if d.obsIDs == nil {
		d.obsIDs = newDCacheObsIDs(d.Cfg.Name)
	}
	cur, prev := d.Stats, d.obsPrev
	ids := d.obsIDs
	sh.Add(ids.accesses, obs.Delta(cur.Accesses, prev.Accesses))
	sh.Add(ids.hits, obs.Delta(cur.Hits, prev.Hits))
	sh.Add(ids.slowHits, obs.Delta(cur.SlowHits, prev.SlowHits))
	sh.Add(ids.misses, obs.Delta(cur.Misses, prev.Misses))
	sh.Add(ids.inducedMisses, obs.Delta(cur.InducedMisses, prev.InducedMisses))
	sh.Add(ids.trueMisses, obs.Delta(cur.TrueMisses, prev.TrueMisses))
	sh.Add(ids.tagWakeStalls, obs.Delta(cur.TagWakeStalls, prev.TagWakeStalls))
	sh.Add(ids.sleepTransitions, obs.Delta(cur.SleepTransitions, prev.SleepTransitions))
	sh.Add(ids.wakeTransitions, obs.Delta(cur.WakeTransitions, prev.WakeTransitions))
	sh.Add(ids.decayWritebacks, obs.Delta(cur.DecayWritebacks, prev.DecayWritebacks))
	sh.Add(ids.evictWritebacks, obs.Delta(cur.EvictWritebacks, prev.EvictWritebacks))
	sh.Add(ids.fills, obs.Delta(cur.Fills, prev.Fills))
	stalled := obs.Delta(cur.SlowHits, prev.SlowHits) + obs.Delta(cur.TagWakeStalls, prev.TagWakeStalls)
	sh.Add(ids.wakePenaltyCycles, stalled*uint64(d.P.WakeLatency))
	sh.Add(ids.adaptTunes, obs.Delta(d.AdaptChanges, d.obsPrevAdapt))
	sh.Add(ids.l2NS, obs.Delta(d.l2NS, d.obsPrevL2NS))
	sh.Add(ids.l2Sampled, obs.Delta(d.l2Sampled, d.obsPrevL2Samp))
	d.obsPrev = cur
	d.obsPrevAdapt = d.AdaptChanges
	d.obsPrevL2NS = d.l2NS
	d.obsPrevL2Samp = d.l2Sampled
}
