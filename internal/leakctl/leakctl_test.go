package leakctl

import (
	"testing"

	"hotleakage/internal/cache"
	"hotleakage/internal/decay"
	"hotleakage/internal/tech"
)

func p70() *tech.Params { return tech.MustByNode(tech.Node70) }

// smallCfg: 16 sets x 2 ways x 64B = 2 KB, hit latency 2.
func smallCfg() cache.Config {
	return cache.Config{Name: "dl1", SizeBytes: 2048, LineBytes: 64, Assoc: 2, HitLatency: 2}
}

// build makes a controlled cache over an 11-cycle L2 stub backed by memory.
func build(t Technique, interval uint64) (*DCache, *cache.Cache) {
	mem := cache.NewMemory(p70(), 100)
	l2 := cache.MustNew(p70(), cache.Config{Name: "l2", SizeBytes: 64 * 1024, LineBytes: 64, Assoc: 2, HitLatency: 11}, mem)
	d := MustNew(p70(), smallCfg(), DefaultParams(t, interval), l2)
	return d, l2
}

// addr returns an address in set `set` with tag index `tag`.
func addr(set, tag uint64) uint64 { return (tag*16 + set) * 64 }

// idle advances the decay machinery far enough to decay all idle lines.
func idle(d *DCache, from, interval uint64) uint64 {
	end := from + interval + interval/4 + 1
	d.Tick(end)
	return end
}

func TestBaselineNeverDecays(t *testing.T) {
	d, _ := build(TechNone, 0)
	d.Access(addr(0, 1), false, 1)
	idle(d, 1, 1<<20)
	if d.StandbyNow() != 0 {
		t.Fatal("baseline put lines in standby")
	}
	if lat := d.Access(addr(0, 1), false, 1<<21); lat != 2 {
		t.Fatalf("baseline hit latency = %d", lat)
	}
}

func TestDrowsySlowHit(t *testing.T) {
	d, _ := build(TechDrowsy, 4096)
	d.Access(addr(0, 1), false, 1)
	cyc := idle(d, 1, 4096)
	if d.StandbyNow() == 0 {
		t.Fatal("line did not decay")
	}
	lat := d.Access(addr(0, 1), false, cyc+1)
	if lat != 2+3 {
		t.Fatalf("slow hit latency = %d, want 5 (hit + 3-cycle tag/data wake)", lat)
	}
	if d.Stats.SlowHits != 1 || d.Stats.Misses != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
	// Data was preserved: no L2 traffic for the slow hit.
	if d.Stats.InducedMisses != 0 {
		t.Fatal("drowsy recorded an induced miss")
	}
}

func TestDrowsyPreservesContents(t *testing.T) {
	d, _ := build(TechDrowsy, 4096)
	d.Access(addr(0, 1), false, 1)
	idle(d, 1, 4096)
	if !d.Contains(addr(0, 1)) {
		t.Fatal("drowsy line lost its contents")
	}
}

func TestGatedDestroysContents(t *testing.T) {
	d, _ := build(TechGated, 4096)
	d.Access(addr(0, 1), false, 1)
	idle(d, 1, 4096)
	if d.Contains(addr(0, 1)) {
		t.Fatal("gated line kept its contents")
	}
}

func TestGatedInducedMiss(t *testing.T) {
	d, l2 := build(TechGated, 4096)
	d.Access(addr(0, 1), false, 1)
	l2acc := l2.Stats.Accesses
	cyc := idle(d, 1, 4096)
	lat := d.Access(addr(0, 1), false, cyc+1)
	if lat != 2+11 {
		t.Fatalf("induced miss latency = %d, want 13 (L1 + L2 hit)", lat)
	}
	if d.Stats.InducedMisses != 1 {
		t.Fatalf("induced misses = %d", d.Stats.InducedMisses)
	}
	if l2.Stats.Accesses != l2acc+1 {
		t.Fatal("induced miss did not reach L2")
	}
}

func TestDrowsyTrueMissPaysTagWake(t *testing.T) {
	d, _ := build(TechDrowsy, 4096)
	d.Access(addr(0, 1), false, 1)
	cyc := idle(d, 1, 4096) // line 1 now drowsy in set 0
	// Miss to a different tag in the same set: tags must be woken first.
	lat := d.Access(addr(0, 2), false, cyc+1)
	if lat != 2+3+11+100 {
		t.Fatalf("drowsy true miss latency = %d, want 116 (tag wake + L2 + mem)", lat)
	}
	if d.Stats.TagWakeStalls != 1 {
		t.Fatalf("tag wake stalls = %d", d.Stats.TagWakeStalls)
	}
}

func TestGatedTrueMissFasterThanDrowsy(t *testing.T) {
	// The paper's point: with decayed tags, gated-Vss is FASTER than
	// drowsy on true misses because standby ways need not be checked.
	dg, _ := build(TechGated, 4096)
	dg.Access(addr(0, 1), false, 1)
	cyc := idle(dg, 1, 4096)
	glat := dg.Access(addr(0, 2), false, cyc+1)

	dd, _ := build(TechDrowsy, 4096)
	dd.Access(addr(0, 1), false, 1)
	cyc = idle(dd, 1, 4096)
	dlat := dd.Access(addr(0, 2), false, cyc+1)

	if glat >= dlat {
		t.Fatalf("gated true miss (%d) not faster than drowsy (%d)", glat, dlat)
	}
	if glat != 2+11+100 {
		t.Fatalf("gated true miss = %d, want baseline-equal 113", glat)
	}
}

func TestGatedDecayWritebackOfDirtyLine(t *testing.T) {
	d, l2 := build(TechGated, 4096)
	d.Access(addr(0, 1), true, 1) // dirty
	l2w := l2.Stats.Accesses
	idle(d, 1, 4096)
	if d.Stats.DecayWritebacks != 1 {
		t.Fatalf("decay writebacks = %d, want 1", d.Stats.DecayWritebacks)
	}
	if l2.Stats.Accesses != l2w+1 {
		t.Fatal("decay writeback did not reach L2")
	}
	// The line must now be clean: a later eviction writes nothing.
	if d.Energy.WritebackJ <= 0 {
		t.Fatal("writeback energy not charged")
	}
}

func TestDrowsyNoDecayWriteback(t *testing.T) {
	d, l2 := build(TechDrowsy, 4096)
	d.Access(addr(0, 1), true, 1)
	l2acc := l2.Stats.Accesses
	idle(d, 1, 4096)
	if d.Stats.DecayWritebacks != 0 || l2.Stats.Accesses != l2acc {
		t.Fatal("drowsy wrote back at decay (state is preserved; it must not)")
	}
}

func TestStandbyOccupancyAccounting(t *testing.T) {
	d, _ := build(TechGated, 4096)
	d.Access(addr(0, 1), false, 1)
	end := idle(d, 1, 4096)
	// Let it sit in standby for a while.
	end += 10000
	d.Tick(end)
	d.Finish(end)
	if d.StandbyLineCycles() == 0 {
		t.Fatal("no standby line-cycles recorded")
	}
	ratio := d.TurnoffRatio()
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("turnoff ratio = %v", ratio)
	}
}

func TestSettleDebtReducesStandby(t *testing.T) {
	// Gated's 30-cycle sleep settling forfeits standby time vs drowsy's 3.
	mk := func(tech Technique) uint64 {
		d, _ := build(tech, 1024)
		d.Access(addr(0, 1), false, 1)
		end := idle(d, 1, 1024) + 500
		d.Tick(end)
		d.Finish(end)
		return d.StandbyLineCycles()
	}
	if g, dr := mk(TechGated), mk(TechDrowsy); g >= dr {
		t.Fatalf("gated standby cycles (%d) not below drowsy (%d) under settle debt", g, dr)
	}
}

func TestVictimPrefersStandbyWay(t *testing.T) {
	d, _ := build(TechGated, 4096)
	d.Access(addr(0, 1), false, 1)
	d.Access(addr(0, 2), false, 2)
	cyc := idle(d, 2, 4096) // both decay
	// Re-access tag 2's line -> induced refill in place.
	d.Access(addr(0, 2), false, cyc+1)
	// A new tag should evict the remaining standby way, not the
	// freshly refilled one.
	d.Access(addr(0, 3), false, cyc+2)
	if !d.Contains(addr(0, 2)) || !d.Contains(addr(0, 3)) {
		t.Fatal("fill did not prefer the standby victim")
	}
}

func TestResetStatsKeepsState(t *testing.T) {
	d, _ := build(TechDrowsy, 4096)
	d.Access(addr(0, 1), false, 1)
	cyc := idle(d, 1, 4096)
	d.ResetStats(cyc)
	if d.Stats.Accesses != 0 || d.Energy.Total() != 0 {
		t.Fatal("ResetStats incomplete")
	}
	if !d.Contains(addr(0, 1)) {
		t.Fatal("ResetStats dropped contents")
	}
	// The line is still in standby; occupancy accrues from zero.
	d.Tick(cyc + 1000)
	d.Finish(cyc + 1000)
	if d.StandbyLineCycles() == 0 {
		t.Fatal("standby occupancy lost after reset")
	}
}

func TestTechniqueStringAndMode(t *testing.T) {
	if TechGated.String() != "gated-vss" || TechDrowsy.String() != "drowsy" {
		t.Fatal("technique strings")
	}
	if TechGated.StatePreserving() || !TechDrowsy.StatePreserving() || !TechRBB.StatePreserving() {
		t.Fatal("state-preserving flags")
	}
}

func TestDefaultParamsTable1(t *testing.T) {
	dr := DefaultParams(TechDrowsy, 4096)
	gt := DefaultParams(TechGated, 4096)
	// Paper Table 1: drowsy 3/3, gated 30/3.
	if dr.SettleSleep != 3 || dr.SettleWake != 3 {
		t.Fatalf("drowsy settle = %d/%d", dr.SettleSleep, dr.SettleWake)
	}
	if gt.SettleSleep != 30 || gt.SettleWake != 3 {
		t.Fatalf("gated settle = %d/%d", gt.SettleSleep, gt.SettleWake)
	}
	if !dr.DecayTags || !gt.DecayTags {
		t.Fatal("tags must decay by default for both techniques")
	}
	if dr.Policy != decay.PolicyNoAccess {
		t.Fatal("default policy must be noaccess")
	}
}

func TestRBBBehavesStatePreserving(t *testing.T) {
	d, _ := build(TechRBB, 4096)
	d.Access(addr(0, 1), false, 1)
	cyc := idle(d, 1, 4096)
	if !d.Contains(addr(0, 1)) {
		t.Fatal("RBB lost state")
	}
	lat := d.Access(addr(0, 1), false, cyc+1)
	if lat != 2+9 {
		t.Fatalf("RBB slow hit latency = %d, want 11", lat)
	}
}

func TestHitRateAndCounts(t *testing.T) {
	d, _ := build(TechGated, 0) // decay disabled
	d.Access(addr(0, 1), false, 1)
	d.Access(addr(0, 1), false, 2)
	d.Access(addr(1, 1), false, 3)
	if got := d.Stats.HitRate(); got < 0.32 || got > 0.34 {
		t.Fatalf("hit rate = %v, want 1/3", got)
	}
	if d.Lines() != 32 {
		t.Fatalf("Lines() = %d", d.Lines())
	}
}

type fixedAdapter struct{ iv uint64 }

func (a fixedAdapter) Recommend(uint64, Stats) uint64 { return a.iv }
func (a fixedAdapter) Every() uint64                  { return 1000 }

func TestAdapterReprogramsInterval(t *testing.T) {
	d, _ := build(TechGated, 4096)
	d.Adapter = fixedAdapter{iv: 1024}
	d.Tick(1)
	d.Tick(1001)
	if d.Machine.Interval() != 1024 {
		t.Fatalf("interval = %d after adapter, want 1024", d.Machine.Interval())
	}
	if d.AdaptChanges != 1 {
		t.Fatalf("AdaptChanges = %d", d.AdaptChanges)
	}
}

func TestSimplePolicyCache(t *testing.T) {
	mem := cache.NewMemory(p70(), 100)
	l2 := cache.MustNew(p70(), cache.Config{Name: "l2", SizeBytes: 64 * 1024, LineBytes: 64, Assoc: 2, HitLatency: 11}, mem)
	params := DefaultParams(TechDrowsy, 4096)
	params.Policy = decay.PolicySimple
	d := MustNew(p70(), smallCfg(), params, l2)
	// Keep touching one line every 100 cycles; the simple policy blankets
	// it anyway at each interval.
	for c := uint64(1); c < 10000; c += 100 {
		d.Access(addr(0, 1), false, c)
		d.Tick(c)
	}
	if d.Stats.SlowHits == 0 {
		t.Fatal("simple policy never put the hot line to sleep")
	}
}

func TestDrowsyTagsAwakeSkipsWakeStall(t *testing.T) {
	p := DefaultParams(TechDrowsy, 4096)
	p.DecayTags = false
	p.WakeLatency = 1
	d := buildParams(p)
	d.Access(addr(0, 1), false, 1)
	cyc := idle(d, 1, 4096)
	// Slow hit costs only the data wake.
	if lat := d.Access(addr(0, 1), false, cyc+1); lat != 2+1 {
		t.Fatalf("tags-awake slow hit latency = %d, want 3", lat)
	}
	cyc = idle(d, cyc+1, 4096)
	// True miss: tags are live, no wake stall.
	if lat := d.Access(addr(0, 2), false, cyc+1); lat != 2+11+100 {
		t.Fatalf("tags-awake true miss latency = %d, want 113", lat)
	}
	if d.Stats.TagWakeStalls != 0 {
		t.Fatal("tags-awake cache recorded tag-wake stalls")
	}
}

func TestInducedMissSemantics(t *testing.T) {
	// Every re-access of a decayed line is induced (only valid lines
	// decay, so the disconnected contents were live by construction) —
	// including after a refill-decay-reaccess cycle. An access to a tag
	// that was evicted outright is a true miss.
	d, _ := build(TechGated, 4096)
	d.Access(addr(0, 1), false, 1)
	cyc := idle(d, 1, 4096)
	d.Access(addr(0, 1), false, cyc+1) // induced #1 (refills in place)
	cyc = idle(d, cyc+1, 4096)
	d.Access(addr(0, 1), false, cyc+1) // induced #2 after refill+decay
	if d.Stats.InducedMisses != 2 {
		t.Fatalf("induced misses = %d, want 2", d.Stats.InducedMisses)
	}
	// Evict tag 1 with two fresh tags, then probe it: a true miss.
	d.Access(addr(0, 2), false, cyc+2)
	d.Access(addr(0, 3), false, cyc+3)
	before := d.Stats.InducedMisses
	d.Access(addr(0, 1), false, cyc+4)
	if d.Stats.InducedMisses != before {
		t.Fatal("evicted-tag re-access miscounted as induced")
	}
}

func TestWritesDirtyStandbyDrowsyVictimWritesBack(t *testing.T) {
	// A dirty drowsy line evicted from standby must be woken and written
	// back (energy) even though decay itself never writes back.
	d, l2 := build(TechDrowsy, 4096)
	d.Access(addr(0, 1), true, 1) // dirty
	cyc := idle(d, 1, 4096)
	l2w := l2.Stats.Accesses
	d.Access(addr(0, 2), false, cyc+1)
	d.Access(addr(0, 3), false, cyc+2) // evicts the dirty drowsy line
	if d.Stats.EvictWritebacks != 1 {
		t.Fatalf("evict writebacks = %d", d.Stats.EvictWritebacks)
	}
	if l2.Stats.Accesses <= l2w {
		t.Fatal("dirty drowsy victim never reached L2")
	}
}

func TestParamsValidate(t *testing.T) {
	for _, tq := range []Technique{TechNone, TechDrowsy, TechGated, TechRBB} {
		if err := DefaultParams(tq, 4096).Validate(); err != nil {
			t.Fatalf("default %s params invalid: %v", tq, err)
		}
	}
	cases := []Params{
		{Technique: Technique(99)},
		{Technique: TechDrowsy, Policy: decay.Policy(7)},
		{Technique: TechDrowsy, Interval: 2},
		{Technique: TechDrowsy, Interval: 4096, SettleSleep: -1},
		{Technique: TechDrowsy, Interval: 4096, WakeLatency: -3},
		{Technique: TechGated, PerLineAdaptive: true},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v) validated", i, p)
		}
	}
	if _, err := New(p70(), smallCfg(), Params{Technique: Technique(99)}, nil); err == nil {
		t.Fatal("New accepted invalid params")
	}
}
