package leakctl

import "testing"

// buildParams constructs a controlled cache with explicit params over the
// standard test hierarchy (11-cycle L2 + memory).
func buildParams(p Params) *DCache {
	plain, _ := build(p.Technique, p.Interval)
	return MustNew(p70(), plain.Cfg, p, plain.Next)
}

func TestPerLineAdaptivePromotesOnInducedMiss(t *testing.T) {
	p := DefaultParams(TechGated, 1024)
	p.PerLineAdaptive = true
	d := buildParams(p)
	if !d.Machine.PerLine() {
		t.Fatal("machine not in per-line mode")
	}
	a := addr(0, 1)
	cyc := uint64(1)
	// Access, decay, re-access (induced miss) a few times: the line's
	// selector must climb.
	for round := uint(0); round < 3; round++ {
		d.Access(a, false, cyc)
		cyc = idle(d, cyc, 1024<<(2*round))
		d.Access(a, false, cyc)
		cyc += 10
	}
	if d.Stats.InducedMisses == 0 {
		t.Fatal("no induced misses in the training phase")
	}
	if d.Machine.Promotions == 0 {
		t.Fatal("induced misses did not promote the line")
	}
	// Idle one base interval: the promoted line must survive and the
	// next access must be a plain hit.
	before := d.Stats.InducedMisses
	d.Tick(cyc + 1024 + 257)
	if !d.Contains(a) {
		t.Fatal("promoted line decayed at the base interval")
	}
	d.Access(a, false, cyc+1024+512)
	if d.Stats.InducedMisses != before {
		t.Fatal("access after base-interval idle was still an induced miss")
	}
}

func TestPerLineAdaptiveDemotesDeadLines(t *testing.T) {
	p := DefaultParams(TechGated, 1024)
	p.PerLineAdaptive = true
	d := buildParams(p)
	// Promote a line via an induced miss, then let it decay and die for
	// real: eviction by a different tag demotes it.
	d.Access(addr(0, 1), false, 1)
	cyc := idle(d, 1, 1024)
	d.Access(addr(0, 1), false, cyc) // induced -> promoted
	cyc = idle(d, cyc, 1024<<2)      // decays at its longer interval
	d.Access(addr(0, 2), false, cyc+1)
	d.Access(addr(0, 3), false, cyc+2) // set now full of fresh tags
	if d.Machine.Demotions == 0 {
		t.Fatal("dead decayed line eviction did not demote")
	}
}

func TestPerLineAdaptiveDrowsySlowHitPromotes(t *testing.T) {
	p := DefaultParams(TechDrowsy, 1024)
	p.PerLineAdaptive = true
	d := buildParams(p)
	d.Access(addr(0, 1), false, 1)
	cyc := idle(d, 1, 1024)
	d.Access(addr(0, 1), false, cyc)
	if d.Stats.SlowHits != 1 {
		t.Fatalf("slow hits = %d", d.Stats.SlowHits)
	}
	if d.Machine.Promotions != 1 {
		t.Fatalf("slow hit did not promote: %d", d.Machine.Promotions)
	}
}

func TestPerLineAdaptiveReducesInducedMisses(t *testing.T) {
	// Head-to-head on a periodic reuse pattern whose gap exceeds the
	// base interval: fixed decay keeps inducing misses; per-line learns.
	run := func(perLine bool) uint64 {
		p := DefaultParams(TechGated, 1024)
		p.PerLineAdaptive = perLine
		d := buildParams(p)
		cyc := uint64(1)
		for i := 0; i < 25; i++ {
			d.Access(addr(0, 1), false, cyc)
			cyc += 2500 // beyond the base interval
			d.Tick(cyc)
		}
		return d.Stats.InducedMisses
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive >= fixed {
		t.Fatalf("per-line adaptive (%d induced) not below fixed (%d)", adaptive, fixed)
	}
}
