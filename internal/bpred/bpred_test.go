package bpred

import "testing"

func train(p *Predictor, pc uint64, outcomes []bool, target uint64) (mispredicts int) {
	for _, taken := range outcomes {
		pr := p.Lookup(pc)
		misp, _ := p.Update(pc, pr, taken, target)
		if misp {
			mispredicts++
		}
	}
	return
}

func TestBiasedBranchLearned(t *testing.T) {
	p := New(DefaultConfig())
	outcomes := make([]bool, 200)
	for i := range outcomes {
		outcomes[i] = true
	}
	m := train(p, 0x1000, outcomes, 0x2000)
	if m > 3 {
		t.Fatalf("always-taken branch mispredicted %d/200 times", m)
	}
}

func TestAlternatingBranchLearnedByGAg(t *testing.T) {
	p := New(DefaultConfig())
	outcomes := make([]bool, 400)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	m := train(p, 0x1000, outcomes, 0x2000)
	// Bimodal alone would mispredict ~50%; the GAg component must learn
	// the period-2 pattern.
	if m > 40 {
		t.Fatalf("alternating branch mispredicted %d/400 times", m)
	}
}

func TestChooserPrefersBetterComponent(t *testing.T) {
	p := New(DefaultConfig())
	// A pattern the GAg learns and the bimodal can't: period 3.
	outcomes := make([]bool, 600)
	for i := range outcomes {
		outcomes[i] = i%3 == 0
	}
	m := train(p, 0x1000, outcomes, 0x2000)
	if m > 120 { // bimodal alone would sit near 33% = 200
		t.Fatalf("period-3 branch mispredicted %d/600", m)
	}
}

func TestBTBLearnsTarget(t *testing.T) {
	p := New(DefaultConfig())
	pr := p.Lookup(0x1000)
	if pr.BTBHit {
		t.Fatal("cold BTB hit")
	}
	p.Update(0x1000, pr, true, 0x4242)
	pr = p.Lookup(0x1000)
	if !pr.BTBHit || pr.Target != 0x4242 {
		t.Fatalf("BTB did not learn: %+v", pr)
	}
}

func TestBTBBubbleNotMispredict(t *testing.T) {
	p := New(DefaultConfig())
	// Train direction taken first at a different PC so the shared
	// counters predict taken, then probe a fresh PC: right direction,
	// missing target -> bubble, not flush.
	for i := 0; i < 8; i++ {
		pr := p.Lookup(0x1000)
		p.Update(0x1000, pr, true, 0x2000)
	}
	pr := p.Lookup(0x1000 + 4096*4) // aliases the trained bimod entry
	if !pr.Taken {
		t.Skip("aliasing assumption did not hold")
	}
	misp, bubble := p.Update(0x1000+4096*4, pr, true, 0x9999)
	if misp {
		t.Fatal("target-only miss flagged as direction mispredict")
	}
	if !bubble {
		t.Fatal("BTB miss did not report a bubble")
	}
}

func TestRAS(t *testing.T) {
	p := New(DefaultConfig())
	p.PushRAS(0x100)
	p.PushRAS(0x200)
	if v := p.PopRAS(); v != 0x200 {
		t.Fatalf("RAS pop = %#x", v)
	}
	if v := p.PopRAS(); v != 0x100 {
		t.Fatalf("RAS pop = %#x", v)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	for i := 0; i < cfg.RASEntries+2; i++ {
		p.PushRAS(uint64(i))
	}
	// The deepest entries were overwritten; the newest survive.
	if v := p.PopRAS(); v != uint64(cfg.RASEntries+1) {
		t.Fatalf("top of RAS = %d", v)
	}
}

func TestStatsCounting(t *testing.T) {
	p := New(DefaultConfig())
	pr := p.Lookup(0x1000)
	p.Update(0x1000, pr, true, 0x2000)
	if p.Stats.Branches != 1 {
		t.Fatalf("branches = %d", p.Stats.Branches)
	}
	p.ResetStats()
	if p.Stats.Branches != 0 {
		t.Fatal("ResetStats failed")
	}
	var s Stats
	if s.MispredictRate() != 0 {
		t.Fatal("idle mispredict rate")
	}
}

func TestBTBConflictEviction(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	sets := cfg.BTBEntries / cfg.BTBAssoc
	// Three branches mapping to one BTB set: 2-way keeps the two most
	// recently inserted.
	pcs := []uint64{0x1000, 0x1000 + uint64(sets)*4, 0x1000 + 2*uint64(sets)*4}
	for _, pc := range pcs {
		pr := p.Lookup(pc)
		p.Update(pc, pr, true, pc+0x40)
	}
	if pr := p.Lookup(pcs[0]); pr.BTBHit {
		t.Fatal("LRU BTB entry not evicted")
	}
	if pr := p.Lookup(pcs[2]); !pr.BTBHit {
		t.Fatal("fresh BTB entry missing")
	}
}

func TestCounterStateBoundedProperty(t *testing.T) {
	// Property: after arbitrary outcome streams, every 2-bit counter
	// stays in [0, 3] and lookups never panic.
	p := New(DefaultConfig())
	seed := uint64(12345)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	for i := 0; i < 100_000; i++ {
		pc := next() % (1 << 20)
		taken := next()&1 == 0
		pr := p.Lookup(pc)
		p.Update(pc, pr, taken, pc+64)
	}
	for i, c := range p.bimod {
		if c > 3 {
			t.Fatalf("bimod[%d] = %d", i, c)
		}
	}
	for i, c := range p.gag {
		if c > 3 {
			t.Fatalf("gag[%d] = %d", i, c)
		}
	}
	for i, c := range p.chooser {
		if c > 3 {
			t.Fatalf("chooser[%d] = %d", i, c)
		}
	}
	if p.history > p.histMask {
		t.Fatal("history exceeded mask")
	}
}
