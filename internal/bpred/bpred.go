// Package bpred implements the simulated machine's branch prediction:
// the paper's hybrid predictor (4K-entry bimodal, 4K-entry GAg with a
// 12-bit global history, and a 4K-entry bimodal-style chooser), a 1K-entry
// 2-way branch target buffer, and a return-address stack. This mirrors the
// Table 2 configuration (the 21264-style hybrid plus an explicit BTB).
package bpred

// Config sizes the predictor tables.
type Config struct {
	BimodEntries   int // direction: per-PC 2-bit counters
	GShareEntries  int // direction: global-history-indexed 2-bit counters
	HistoryBits    int // global history length (GAg)
	ChooserEntries int // meta predictor choosing bimod vs GAg
	BTBEntries     int
	BTBAssoc       int
	RASEntries     int
}

// DefaultConfig is the paper's Table 2 predictor.
func DefaultConfig() Config {
	return Config{
		BimodEntries:   4096,
		GShareEntries:  4096,
		HistoryBits:    12,
		ChooserEntries: 4096,
		BTBEntries:     1024,
		BTBAssoc:       2,
		RASEntries:     8,
	}
}

// Stats counts prediction outcomes.
type Stats struct {
	Branches      uint64
	DirMispredict uint64
	BTBMiss       uint64
}

// MispredictRate returns direction mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.DirMispredict) / float64(s.Branches)
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
	lru    uint64
}

// Predictor is the hybrid direction predictor plus BTB and RAS.
type Predictor struct {
	Cfg   Config
	Stats Stats

	bimod    []uint8
	gag      []uint8
	chooser  []uint8
	history  uint64
	histMask uint64

	btb      []btbEntry
	btbSets  int
	btbStamp uint64

	ras    []uint64
	rasTop int
}

// New builds a predictor; table sizes must be powers of two.
func New(cfg Config) *Predictor {
	p := &Predictor{
		Cfg:     cfg,
		bimod:   make([]uint8, cfg.BimodEntries),
		gag:     make([]uint8, cfg.GShareEntries),
		chooser: make([]uint8, cfg.ChooserEntries),
		btb:     make([]btbEntry, cfg.BTBEntries),
		ras:     make([]uint64, cfg.RASEntries),
	}
	p.histMask = (1 << cfg.HistoryBits) - 1
	p.btbSets = cfg.BTBEntries / cfg.BTBAssoc
	// Weakly-taken initialization matches sim-outorder.
	for i := range p.bimod {
		p.bimod[i] = 2
	}
	for i := range p.gag {
		p.gag[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	return p
}

// ResetStats zeroes the outcome counters, keeping trained state (warmup
// support).
func (p *Predictor) ResetStats() { p.Stats = Stats{} }

// Reset returns the predictor to the state New leaves it in — weakly-taken
// counters, empty BTB/RAS, clean history — reusing the table allocations
// (run-to-run reuse).
func (p *Predictor) Reset() {
	p.Stats = Stats{}
	for i := range p.bimod {
		p.bimod[i] = 2
	}
	for i := range p.gag {
		p.gag[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	p.history = 0
	clear(p.btb)
	p.btbStamp = 0
	clear(p.ras)
	p.rasTop = 0
}

// Prediction is the outcome of a lookup, passed back to Update.
type Prediction struct {
	Taken     bool
	Target    uint64
	BTBHit    bool
	usedGAg   bool
	bimodSaid bool
	gagSaid   bool
	bIdx      int
	gIdx      int
	cIdx      int
}

// Lookup predicts the direction and target of the branch at pc.
func (p *Predictor) Lookup(pc uint64) Prediction {
	var pr Prediction
	pr.bIdx = int((pc >> 2) & uint64(len(p.bimod)-1))
	pr.gIdx = int(p.history & uint64(len(p.gag)-1))
	pr.cIdx = int((pc >> 2) & uint64(len(p.chooser)-1))

	pr.bimodSaid = p.bimod[pr.bIdx] >= 2
	pr.gagSaid = p.gag[pr.gIdx] >= 2
	pr.usedGAg = p.chooser[pr.cIdx] >= 2
	if pr.usedGAg {
		pr.Taken = pr.gagSaid
	} else {
		pr.Taken = pr.bimodSaid
	}

	set := int((pc >> 2) % uint64(p.btbSets))
	tag := (pc >> 2) / uint64(p.btbSets)
	base := set * p.Cfg.BTBAssoc
	for w := 0; w < p.Cfg.BTBAssoc; w++ {
		e := &p.btb[base+w]
		if e.valid && e.tag == tag {
			pr.BTBHit = true
			pr.Target = e.target
			break
		}
	}
	return pr
}

// Update trains the predictor with the actual outcome and reports the
// front-end consequence: mispredict means the fetch stream went down the
// wrong path (direction error — flush on resolve); btbBubble means the
// direction was right but the target had to come from decode (a short
// fixed bubble for direct branches, not a flush).
func (p *Predictor) Update(pc uint64, pr Prediction, taken bool, target uint64) (mispredict, btbBubble bool) {
	p.Stats.Branches++

	// Direction counters.
	bump(&p.bimod[pr.bIdx], taken)
	bump(&p.gag[pr.gIdx], taken)
	// Chooser trains toward whichever component was right (when they
	// disagree).
	if pr.bimodSaid != pr.gagSaid {
		bump(&p.chooser[pr.cIdx], pr.gagSaid == taken)
	}
	p.history = ((p.history << 1) | b2u(taken)) & p.histMask

	mispredict = pr.Taken != taken
	if taken {
		if !pr.BTBHit || pr.Target != target {
			p.Stats.BTBMiss++
			if !mispredict {
				btbBubble = true
			}
		}
		p.btbInsert(pc, target)
	}
	if mispredict {
		p.Stats.DirMispredict++
	}
	return mispredict, btbBubble
}

// btbInsert installs or refreshes a BTB entry.
func (p *Predictor) btbInsert(pc, target uint64) {
	p.btbStamp++
	set := int((pc >> 2) % uint64(p.btbSets))
	tag := (pc >> 2) / uint64(p.btbSets)
	base := set * p.Cfg.BTBAssoc
	victim := base
	for w := 0; w < p.Cfg.BTBAssoc; w++ {
		e := &p.btb[base+w]
		if e.valid && e.tag == tag {
			e.target = target
			e.lru = p.btbStamp
			return
		}
		if !e.valid {
			victim = base + w
		} else if p.btb[victim].valid && e.lru < p.btb[victim].lru {
			victim = base + w
		}
	}
	p.btb[victim] = btbEntry{tag: tag, target: target, valid: true, lru: p.btbStamp}
}

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(ret uint64) {
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	p.ras[p.rasTop] = ret
}

// PopRAS predicts a return target.
func (p *Predictor) PopRAS() uint64 {
	v := p.ras[p.rasTop]
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	return v
}

func bump(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
