// Package store is the daemon's content-addressed result store. Each
// simulation cell — machine config, technique, decay interval, benchmark,
// instruction budget and checkpoint version — is canonically serialized
// and hashed; the hash addresses the cell's result forever, so a repeated
// or overlapping sweep is served from disk instead of re-simulated. This
// generalizes the sweep-level trace cache and the harness checkpoint from
// "within one process" to "across every request the daemon ever served".
//
// # On-disk layout
//
//	<dir>/seg-000001.jsonl   result segments: {"h":..,"k":..,"v":..} lines
//	<dir>/seg-000002.jsonl   (appended; rotated at SegmentMaxBytes)
//	<dir>/meta.jsonl         meta segment: {"m":..,"v":..} lines, last wins
//
// Segments are append-only JSON lines, synced per record like the harness
// checkpoint, so a crash loses at most the record being written. Open
// rebuilds the in-memory index by scanning the segments; a torn tail on
// the last segment is truncated away, and a corrupt region inside an older
// segment skips the remainder of that segment only (the index keeps every
// record before the damage, and later segments are unaffected).
//
// Values are not held in memory: the index maps hash -> (segment, offset,
// length) and Get reads the record back with one pread, so the store's
// resident size is bounded by the index, not the corpus.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CanonicalHash hashes v's canonical JSON form: the value is marshalled,
// decoded into generic maps and re-encoded (Go sorts map keys), so two
// representations that differ only in field order — a reordered struct
// declaration, a hand-written request document — hash identically. The
// hash is hex SHA-256.
func CanonicalHash(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: marshal for hash: %w", err)
	}
	canon, err := Canonicalize(b)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// Canonicalize re-encodes a JSON document with object keys sorted at every
// level, the byte form CanonicalHash digests.
func Canonicalize(doc []byte) ([]byte, error) {
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		return nil, fmt.Errorf("store: canonicalize: %w", err)
	}
	canon, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: canonicalize: %w", err)
	}
	return canon, nil
}

// segRecord is the on-disk framing of one result line.
type segRecord struct {
	Hash  string          `json:"h"`
	Key   json.RawMessage `json:"k,omitempty"`
	Value json.RawMessage `json:"v"`
}

// metaRecord is the on-disk framing of one meta-segment line.
type metaRecord struct {
	Name  string          `json:"m"`
	Value json.RawMessage `json:"v"`
}

// Record is one stored result: the cell's canonical key document and its
// value, both raw JSON exactly as first persisted (content addressing
// means the bytes for a hash never change).
type Record struct {
	Hash  string          `json:"hash"`
	Key   json.RawMessage `json:"key,omitempty"`
	Value json.RawMessage `json:"value"`
}

// loc addresses one record inside a segment file.
type loc struct {
	seg    int // index into Store.segs
	offset int64
	length int64
}

// segment is one open result file.
type segment struct {
	path string
	f    *os.File
	size int64
}

// Store is the content-addressed result store. Safe for concurrent use.
type Store struct {
	dir string

	// SegmentMaxBytes rotates the append segment once it grows past this
	// size (default 64 MiB). Mutate only before concurrent use.
	SegmentMaxBytes int64

	mu      sync.Mutex
	segs    []*segment
	index   map[string]loc
	meta    map[string]json.RawMessage
	metaF   *os.File
	skipped int // records lost to corruption at open time
	closed  bool
}

// DefaultSegmentMaxBytes is the rotation threshold for result segments.
const DefaultSegmentMaxBytes = 64 << 20

// Open opens (creating if necessary) the store rooted at dir and rebuilds
// the index from its segments.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:             dir,
		SegmentMaxBytes: DefaultSegmentMaxBytes,
		index:           make(map[string]loc),
		meta:            make(map[string]json.RawMessage),
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names) // zero-padded sequence numbers sort chronologically
	for i, name := range names {
		if err := s.openSegment(name, i == len(names)-1); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	if len(s.segs) == 0 {
		if err := s.rotateLocked(); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	if err := s.loadMeta(); err != nil {
		s.closeAll()
		return nil, err
	}
	return s, nil
}

// openSegment scans one segment into the index. last marks the final
// (append) segment: a torn tail there is truncated so later appends start
// on a clean line boundary; corruption in an older, sealed segment only
// skips that segment's remainder.
func (s *Store) openSegment(path string, last bool) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	segIdx := len(s.segs)
	var good int64 // offset just past the last well-formed record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		var rec segRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Hash == "" || rec.Value == nil {
			// Unparseable or incomplete record: everything from here to
			// the end of this segment is untrusted.
			break
		}
		if _, dup := s.index[rec.Hash]; !dup {
			s.index[rec.Hash] = loc{seg: segIdx, offset: good, length: int64(len(line))}
		}
		good += int64(len(line)) + 1 // newline
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		f.Close()
		return fmt.Errorf("store: scan %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	if good < size {
		s.skipped++
		size = good
		if last {
			// Drop the torn tail so the next append starts a valid line.
			if err := f.Truncate(good); err != nil {
				f.Close()
				return fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
			}
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, &segment{path: path, f: f, size: size})
	return nil
}

// loadMeta replays the meta segment (last record per name wins; a torn
// tail is dropped) and leaves the file open for appends.
func (s *Store) loadMeta() error {
	path := filepath.Join(s.dir, "meta.jsonl")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var offset, good int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		var rec metaRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Name == "" {
			break
		}
		s.meta[rec.Name] = append(json.RawMessage(nil), rec.Value...)
		offset += int64(len(line)) + 1
		good = offset
	}
	if st, err := f.Stat(); err == nil && good < st.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate meta tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.metaF = f
	return nil
}

// rotateLocked opens a fresh append segment. Caller holds s.mu (or has
// exclusive access during Open).
func (s *Store) rotateLocked() error {
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", len(s.segs)+1))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, &segment{path: path, f: f})
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed cells.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Skipped returns how many records were lost to corruption at open time.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Has reports whether hash is stored.
func (s *Store) Has(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[hash]
	return ok
}

// Get returns the stored record for hash.
func (s *Store) Get(hash string) (Record, bool, error) {
	s.mu.Lock()
	l, ok := s.index[hash]
	if !ok || s.closed {
		s.mu.Unlock()
		return Record{}, false, nil
	}
	f := s.segs[l.seg].f
	s.mu.Unlock()

	buf := make([]byte, l.length)
	if _, err := f.ReadAt(buf, l.offset); err != nil {
		return Record{}, false, fmt.Errorf("store: read %s: %w", hash, err)
	}
	var rec segRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		return Record{}, false, fmt.Errorf("store: decode %s: %w", hash, err)
	}
	return Record{Hash: rec.Hash, Key: rec.Key, Value: rec.Value}, true, nil
}

// Put persists a record under hash. key (may be nil) is the canonical
// cell-identity document, stored alongside the value for auditability. A
// hash already present is left untouched — content addressing makes the
// first write authoritative — and Put reports nil.
func (s *Store) Put(hash string, key, value any) error {
	if hash == "" {
		return fmt.Errorf("store: empty hash")
	}
	var kb json.RawMessage
	if key != nil {
		b, err := json.Marshal(key)
		if err != nil {
			return fmt.Errorf("store: marshal key for %s: %w", hash, err)
		}
		kb = b
	}
	vb, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("store: marshal value for %s: %w", hash, err)
	}
	line, err := json.Marshal(segRecord{Hash: hash, Key: kb, Value: vb})
	if err != nil {
		return fmt.Errorf("store: frame %s: %w", hash, err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, dup := s.index[hash]; dup {
		return nil
	}
	seg := s.segs[len(s.segs)-1]
	if seg.size > 0 && seg.size+int64(len(line)) > s.SegmentMaxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		seg = s.segs[len(s.segs)-1]
	}
	if _, err := seg.f.Write(line); err != nil {
		return fmt.Errorf("store: append %s: %w", hash, err)
	}
	if err := seg.f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", hash, err)
	}
	s.index[hash] = loc{seg: len(s.segs) - 1, offset: seg.size, length: int64(len(line)) - 1}
	seg.size += int64(len(line))
	return nil
}

// PutMeta stores a named non-cell document (e.g. the harness cost model)
// in the meta segment. Later writes under the same name win on reload.
func (s *Store) PutMeta(name string, v any) error {
	if name == "" || strings.ContainsRune(name, '\n') {
		return fmt.Errorf("store: bad meta name %q", name)
	}
	vb, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: marshal meta %s: %w", name, err)
	}
	line, err := json.Marshal(metaRecord{Name: name, Value: vb})
	if err != nil {
		return fmt.Errorf("store: frame meta %s: %w", name, err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, err := s.metaF.Write(line); err != nil {
		return fmt.Errorf("store: append meta %s: %w", name, err)
	}
	if err := s.metaF.Sync(); err != nil {
		return fmt.Errorf("store: sync meta %s: %w", name, err)
	}
	s.meta[name] = vb
	return nil
}

// GetMeta decodes the named meta document into v, reporting whether it
// exists.
func (s *Store) GetMeta(name string, v any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.meta[name]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("store: decode meta %s: %w", name, err)
	}
	return true, nil
}

// closeAll closes every open file without locking (Open-failure path).
func (s *Store) closeAll() {
	for _, seg := range s.segs {
		if seg.f != nil {
			seg.f.Close()
		}
	}
	if s.metaF != nil {
		s.metaF.Close()
	}
}

// Close closes the backing files. Further reads and writes fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.metaF != nil {
		if err := s.metaF.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
