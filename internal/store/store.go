// Package store is the daemon's content-addressed result store. Each
// simulation cell — machine config, technique, decay interval, benchmark,
// instruction budget and checkpoint version — is canonically serialized
// and hashed; the hash addresses the cell's result forever, so a repeated
// or overlapping sweep is served from disk instead of re-simulated. This
// generalizes the sweep-level trace cache and the harness checkpoint from
// "within one process" to "across every request the daemon ever served".
//
// # On-disk layout
//
//	<dir>/seg-000001.jsonl   result segments: {"h":..,"k":..,"v":..,"t":..}
//	<dir>/seg-000002.jsonl   lines (appended; rotated at SegmentMaxBytes)
//	<dir>/meta.jsonl         meta segment: {"m":..,"v":..} lines, last wins
//
// Segments are append-only JSON lines, synced per record like the harness
// checkpoint, so a crash loses at most the record being written. Open
// rebuilds the in-memory index by scanning the segments. Damage is
// handled per record, not per segment: a complete line that fails to
// parse is quarantined — counted, logged, and skipped, with every valid
// record before and after it kept — while an incomplete final line is a
// torn write of a never-acknowledged record and is truncated from the
// append segment so new writes start on a clean boundary.
//
// Values are not held in memory: the index maps hash -> (segment, offset,
// length) and Get reads the record back with one pread, so the store's
// resident size is bounded by the index, not the corpus.
//
// Growth is bounded by GC (see gc.go): records carry a write timestamp,
// and crash-safe compaction rewrites live records into a fresh segment
// before atomically renaming it into place.
//
// All file I/O is routed through the FS interface (see fs.go) so the
// chaos suite can inject disk faults at every operation.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"hotleakage/internal/obs"
)

// CanonicalHash hashes v's canonical JSON form: the value is marshalled,
// decoded into generic maps and re-encoded (Go sorts map keys), so two
// representations that differ only in field order — a reordered struct
// declaration, a hand-written request document — hash identically. The
// hash is hex SHA-256.
func CanonicalHash(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: marshal for hash: %w", err)
	}
	canon, err := Canonicalize(b)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// Canonicalize re-encodes a JSON document with object keys sorted at every
// level, the byte form CanonicalHash digests.
func Canonicalize(doc []byte) ([]byte, error) {
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		return nil, fmt.Errorf("store: canonicalize: %w", err)
	}
	canon, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: canonicalize: %w", err)
	}
	return canon, nil
}

// segRecord is the on-disk framing of one result line. T is the write
// time (unix seconds), the input to TTL GC; records from before it
// existed decode as T=0 and so are the first to expire.
type segRecord struct {
	Hash  string          `json:"h"`
	Key   json.RawMessage `json:"k,omitempty"`
	Value json.RawMessage `json:"v"`
	T     int64           `json:"t,omitempty"`
}

// metaRecord is the on-disk framing of one meta-segment line.
type metaRecord struct {
	Name  string          `json:"m"`
	Value json.RawMessage `json:"v"`
}

// Record is one stored result: the cell's canonical key document and its
// value, both raw JSON exactly as first persisted (content addressing
// means the bytes for a hash never change).
type Record struct {
	Hash  string          `json:"hash"`
	Key   json.RawMessage `json:"key,omitempty"`
	Value json.RawMessage `json:"value"`
}

// loc addresses one record inside a segment file.
type loc struct {
	seg    int // index into Store.segs
	offset int64
	length int64
	t      int64 // write time, unix seconds
}

// segment is one open result file. poisoned marks an append segment whose
// post-failure repair failed: its on-disk tail no longer lines up with
// size, so no further appends may land in it (see repairAppendLocked).
type segment struct {
	path     string
	f        File
	size     int64
	poisoned bool
}

// Options configures OpenOptions beyond the defaults Open uses.
type Options struct {
	// FS routes the store's file I/O; nil means OSFS.
	FS FS
	// SegmentMaxBytes rotates the append segment once it grows past this
	// size; 0 means DefaultSegmentMaxBytes.
	SegmentMaxBytes int64
	// Now supplies write timestamps (and the GC clock); nil means
	// time.Now. Tests inject a fake clock to exercise TTL expiry.
	Now func() time.Time
	// Logf receives quarantine and GC log lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

// Store is the content-addressed result store. Safe for concurrent use.
type Store struct {
	dir string

	// SegmentMaxBytes rotates the append segment once it grows past this
	// size (default 64 MiB). Mutate only before concurrent use.
	SegmentMaxBytes int64

	fs   FS
	now  func() time.Time
	logf func(format string, args ...any)

	mu          sync.Mutex
	segs        []*segment
	index       map[string]loc
	meta        map[string]json.RawMessage
	metaF       File
	nextSeq     int // sequence number for the next rotated segment
	torn        int // incomplete final lines found at open time
	quarantined int // corrupt complete lines skipped at open time
	closed      bool
}

// DefaultSegmentMaxBytes is the rotation threshold for result segments.
const DefaultSegmentMaxBytes = 64 << 20

var obsQuarantined = obs.Default.Counter(obs.MetricStoreQuarantined)

// Open opens (creating if necessary) the store rooted at dir and rebuilds
// the index from its segments.
func Open(dir string) (*Store, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with explicit wiring — a fault-injecting FS, a test
// clock, a capture logger.
func OpenOptions(dir string, o Options) (*Store, error) {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if err := o.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:             dir,
		SegmentMaxBytes: o.SegmentMaxBytes,
		fs:              o.FS,
		now:             o.Now,
		logf:            o.Logf,
		index:           make(map[string]loc),
		meta:            make(map[string]json.RawMessage),
		nextSeq:         1,
	}
	names, err := s.fs.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names) // zero-padded sequence numbers sort chronologically
	for i, name := range names {
		if seq, ok := segSeq(name); ok && seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
		if err := s.openSegment(name, i == len(names)-1); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	if len(s.segs) == 0 {
		if err := s.rotateLocked(); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	if err := s.loadMeta(); err != nil {
		s.closeAll()
		return nil, err
	}
	return s, nil
}

// segSeq extracts the sequence number from a segment path.
func segSeq(path string) (int, bool) {
	base := filepath.Base(path)
	base = strings.TrimPrefix(base, "seg-")
	base = strings.TrimSuffix(base, ".jsonl")
	n, err := strconv.Atoi(base)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// openSegment scans one segment into the index, quarantining per record:
// a complete line that fails to parse is counted and skipped, and the
// scan continues — records after the damage survive. An incomplete final
// line is a torn write of a record nobody was ever promised (Put syncs
// before acknowledging); on the append segment (last) it is truncated
// away so the next append starts a valid line.
func (s *Store) openSegment(path string, last bool) error {
	f, err := s.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	segIdx := len(s.segs)
	br := bufio.NewReaderSize(f, 1<<20)
	var pos int64 // offset just past the last complete line
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				// Torn final line: no trailing newline, so the write that
				// produced it never completed (and was never acked).
				s.torn++
				s.logf("store: dropping torn tail of %s (%d bytes at offset %d)",
					filepath.Base(path), len(line), pos)
				if last {
					if terr := f.Truncate(pos); terr != nil {
						f.Close()
						return fmt.Errorf("store: truncate torn tail of %s: %w", path, terr)
					}
				}
			}
			break
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("store: scan %s: %w", path, err)
		}
		body := bytes.TrimSuffix(line, []byte("\n"))
		var rec segRecord
		// Records are json.Marshal output, which is always valid UTF-8;
		// an invalid byte is bit rot the (lenient) JSON decoder would
		// otherwise let through silently.
		if jerr := json.Unmarshal(body, &rec); jerr != nil || rec.Hash == "" || rec.Value == nil ||
			!utf8.Valid(body) {
			// Complete but unparseable: quarantine this record only.
			s.quarantined++
			obsQuarantined.Add(1)
			s.logf("store: quarantined corrupt record in %s at offset %d (%d bytes)",
				filepath.Base(path), pos, len(body))
			pos += int64(len(line))
			continue
		}
		if _, dup := s.index[rec.Hash]; !dup {
			s.index[rec.Hash] = loc{seg: segIdx, offset: pos, length: int64(len(body)), t: rec.T}
		}
		pos += int64(len(line))
	}
	size := pos
	if !last {
		// A sealed segment keeps its torn bytes on disk (compaction will
		// shed them); account its true size for GC arithmetic.
		if st, err := f.Stat(); err == nil {
			size = st.Size()
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, &segment{path: path, f: f, size: size})
	return nil
}

// loadMeta replays the meta segment (last record per name wins; a torn
// tail is dropped) and leaves the file open for appends.
func (s *Store) loadMeta() error {
	path := filepath.Join(s.dir, "meta.jsonl")
	f, err := s.fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var offset, good int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		var rec metaRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Name == "" {
			break
		}
		s.meta[rec.Name] = append(json.RawMessage(nil), rec.Value...)
		offset += int64(len(line)) + 1
		good = offset
	}
	if st, err := f.Stat(); err == nil && good < st.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate meta tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.metaF = f
	return nil
}

// rotateLocked opens a fresh append segment under the next monotonic
// sequence number (sequence numbers are never reused, even after GC
// removes old segments). Caller holds s.mu (or has exclusive access
// during Open).
func (s *Store) rotateLocked() error {
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", s.nextSeq))
	f, err := s.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.nextSeq++
	s.segs = append(s.segs, &segment{path: path, f: f})
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed cells.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the total size of the result segments on disk.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesLocked()
}

func (s *Store) bytesLocked() int64 {
	var total int64
	for _, seg := range s.segs {
		total += seg.size
	}
	return total
}

// Skipped returns how many records were lost to corruption at open time:
// torn tails plus quarantined records.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.torn + s.quarantined
}

// Quarantined returns how many complete-but-corrupt records open-time
// recovery skipped (a subset of Skipped; the rest were torn tails).
func (s *Store) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Has reports whether hash is stored.
func (s *Store) Has(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[hash]
	return ok
}

// Get returns the stored record for hash. The read happens outside the
// lock; if a concurrent GC compacted the segment out from under it (the
// file handle reads as closed), one retry against the rebuilt index
// resolves the record at its new location.
func (s *Store) Get(hash string) (Record, bool, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		s.mu.Lock()
		l, ok := s.index[hash]
		if !ok || s.closed {
			s.mu.Unlock()
			return Record{}, false, nil
		}
		f := s.segs[l.seg].f
		s.mu.Unlock()

		buf := make([]byte, l.length)
		if _, err := f.ReadAt(buf, l.offset); err != nil {
			lastErr = fmt.Errorf("store: read %s: %w", hash, err)
			continue
		}
		var rec segRecord
		if err := json.Unmarshal(buf, &rec); err != nil {
			lastErr = fmt.Errorf("store: decode %s: %w", hash, err)
			continue
		}
		if rec.Hash != hash {
			// A content-addressed store must never pass off a record that
			// parses but isn't the one asked for — this is index/file
			// misalignment or bit rot, and an error, not a result.
			lastErr = fmt.Errorf("store: get %s: read record %s (index/file misalignment)", hash, rec.Hash)
			continue
		}
		return Record{Hash: rec.Hash, Key: rec.Key, Value: rec.Value}, true, nil
	}
	return Record{}, false, lastErr
}

// Put persists a record under hash. key (may be nil) is the canonical
// cell-identity document, stored alongside the value for auditability. A
// hash already present is left untouched — content addressing makes the
// first write authoritative — and Put reports nil.
func (s *Store) Put(hash string, key, value any) error {
	if hash == "" {
		return fmt.Errorf("store: empty hash")
	}
	var kb json.RawMessage
	if key != nil {
		b, err := json.Marshal(key)
		if err != nil {
			return fmt.Errorf("store: marshal key for %s: %w", hash, err)
		}
		kb = b
	}
	vb, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("store: marshal value for %s: %w", hash, err)
	}
	t := s.now().Unix()
	line, err := json.Marshal(segRecord{Hash: hash, Key: kb, Value: vb, T: t})
	if err != nil {
		return fmt.Errorf("store: frame %s: %w", hash, err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, dup := s.index[hash]; dup {
		return nil
	}
	seg := s.segs[len(s.segs)-1]
	if seg.poisoned || (seg.size > 0 && seg.size+int64(len(line)) > s.SegmentMaxBytes) {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		seg = s.segs[len(s.segs)-1]
	}
	if _, err := seg.f.Write(line); err != nil {
		s.repairAppendLocked(seg)
		return fmt.Errorf("store: append %s: %w", hash, err)
	}
	if err := seg.f.Sync(); err != nil {
		s.repairAppendLocked(seg)
		return fmt.Errorf("store: sync %s: %w", hash, err)
	}
	s.index[hash] = loc{seg: len(s.segs) - 1, offset: seg.size, length: int64(len(line)) - 1, t: t}
	seg.size += int64(len(line))
	return nil
}

// repairAppendLocked puts the append segment back on a record boundary
// after a failed append. The failed record was never acknowledged, so
// losing it is fine — but its orphaned or torn bytes sit past seg.size
// with the file offset advanced beyond them, so without repair the next
// successful Put would land after the debris while being indexed at
// seg.size: Get would serve wrong bytes for an acknowledged record, and
// the debris could merge with the new line into one unparseable record
// that reopen quarantines. Truncating to seg.size and seeking back
// restores the offset invariant the index depends on. If the repair
// itself fails the segment is poisoned instead: its indexed records stay
// readable (ReadAt is offset-addressed), but the next Put rotates to a
// fresh segment rather than append past the damage.
func (s *Store) repairAppendLocked(seg *segment) {
	err := seg.f.Truncate(seg.size)
	if err == nil {
		_, err = seg.f.Seek(seg.size, io.SeekStart)
	}
	if err == nil {
		return
	}
	seg.poisoned = true
	s.logf("store: poisoning append segment %s (repair after failed append: %v); will rotate",
		filepath.Base(seg.path), err)
}

// PutMeta stores a named non-cell document (e.g. the harness cost model)
// in the meta segment. Later writes under the same name win on reload.
func (s *Store) PutMeta(name string, v any) error {
	if name == "" || strings.ContainsRune(name, '\n') {
		return fmt.Errorf("store: bad meta name %q", name)
	}
	vb, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: marshal meta %s: %w", name, err)
	}
	line, err := json.Marshal(metaRecord{Name: name, Value: vb})
	if err != nil {
		return fmt.Errorf("store: frame meta %s: %w", name, err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, err := s.metaF.Write(line); err != nil {
		return fmt.Errorf("store: append meta %s: %w", name, err)
	}
	if err := s.metaF.Sync(); err != nil {
		return fmt.Errorf("store: sync meta %s: %w", name, err)
	}
	s.meta[name] = vb
	return nil
}

// GetMeta decodes the named meta document into v, reporting whether it
// exists.
func (s *Store) GetMeta(name string, v any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.meta[name]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("store: decode meta %s: %w", name, err)
	}
	return true, nil
}

// closeAll closes every open file without locking (Open-failure path).
func (s *Store) closeAll() {
	for _, seg := range s.segs {
		if seg.f != nil {
			seg.f.Close()
		}
	}
	if s.metaF != nil {
		s.metaF.Close()
	}
}

// Close closes the backing files. Further reads and writes fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.metaF != nil {
		if err := s.metaF.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
