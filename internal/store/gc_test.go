package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hotleakage/internal/harness/faultinject"
)

// fakeClock is an injectable, advanceable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// quiet swallows store log lines so chaos tests don't spam the output.
func quiet(string, ...any) {}

// TestQuarantineKeepsLaterRecords corrupts one complete line in the
// middle of a segment and requires every other record — before AND after
// the damage — to survive, with the loss counted.
func TestQuarantineKeepsLaterRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for i := 0; i < 10; i++ {
		hashes = append(hashes, mustPut(t, s, i))
	}
	s.Close()

	seg := filepath.Join(dir, "seg-000001.jsonl")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	// Replace line 4 with same-length garbage (keeps later offsets honest).
	lines[4] = append(bytes.Repeat([]byte("x"), len(lines[4])-1), '\n')
	if err := os.WriteFile(seg, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenOptions(dir, Options{Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 9 {
		t.Fatalf("recovered %d records, want 9", got)
	}
	if got := s2.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d, want 1", got)
	}
	if got := s2.Skipped(); got != 1 {
		t.Errorf("Skipped() = %d, want 1", got)
	}
	for i, h := range hashes {
		rec, ok, err := s2.Get(h)
		if i == 4 {
			if ok {
				t.Error("corrupted record still served")
			}
			continue
		}
		if err != nil || !ok {
			t.Fatalf("record %d (%s): %v, %v", i, h, ok, err)
		}
		var v cellVal
		if err := json.Unmarshal(rec.Value, &v); err != nil || v.N != i {
			t.Errorf("record %d round-tripped as %+v (%v)", i, v, err)
		}
	}
}

// TestGCTTLExpiry: records older than the TTL are dropped, younger ones
// survive compaction bit-identically, and the result persists a reload.
func TestGCTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	s, err := OpenOptions(dir, Options{Now: clock.Now, Logf: quiet, SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var old, young []string
	for i := 0; i < 6; i++ {
		old = append(old, mustPut(t, s, i))
	}
	clock.Advance(48 * time.Hour)
	for i := 100; i < 106; i++ {
		young = append(young, mustPut(t, s, i))
	}
	wantValues := map[string]json.RawMessage{}
	for _, h := range young {
		rec, ok, err := s.Get(h)
		if !ok || err != nil {
			t.Fatal(ok, err)
		}
		wantValues[h] = rec.Value
	}

	before := s.Bytes()
	stats, err := s.GC(GCPolicy{TTL: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 6 || stats.Live != 6 || !stats.Compacted {
		t.Errorf("stats = %+v, want 6 dropped / 6 live / compacted", stats)
	}
	if stats.ReclaimedBytes <= 0 || s.Bytes() >= before {
		t.Errorf("no space reclaimed: before=%d after=%d stats=%+v", before, s.Bytes(), stats)
	}
	for _, h := range old {
		if s.Has(h) {
			t.Errorf("expired record %s still indexed", h)
		}
	}
	for _, h := range young {
		rec, ok, err := s.Get(h)
		if !ok || err != nil {
			t.Fatalf("live record %s lost: %v, %v", h, ok, err)
		}
		if !bytes.Equal(rec.Value, wantValues[h]) {
			t.Errorf("live record %s not bit-identical after compaction", h)
		}
	}

	// Idempotent second pass and durable across reload.
	stats, err = s.GC(GCPolicy{TTL: 24 * time.Hour})
	if err != nil || stats.Dropped != 0 {
		t.Errorf("second pass: %+v, %v", stats, err)
	}
	if err := s.Put("fresh", nil, cellVal{N: 1}); err != nil {
		t.Fatalf("post-GC append: %v", err)
	}
	s.Close()
	s2, err := OpenOptions(dir, Options{Now: clock.Now, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 7 {
		t.Errorf("reloaded %d records, want 7", got)
	}
	if s2.Skipped() != 0 {
		t.Errorf("Skipped() = %d after GC+reload, want 0", s2.Skipped())
	}
	for _, h := range young {
		rec, ok, err := s2.Get(h)
		if !ok || err != nil || !bytes.Equal(rec.Value, wantValues[h]) {
			t.Errorf("record %s damaged across GC+reload: %v, %v", h, ok, err)
		}
	}
}

// TestGCMaxBytes: with no TTL, the size budget expires oldest-first until
// the live corpus fits.
func TestGCMaxBytes(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	s, err := OpenOptions(dir, Options{Now: clock.Now, Logf: quiet, SegmentMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var hashes []string
	for i := 0; i < 20; i++ {
		hashes = append(hashes, mustPut(t, s, i))
		clock.Advance(time.Minute) // distinct ages for oldest-first order
	}
	budget := s.Bytes() / 2
	stats, err := s.GC(GCPolicy{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 || stats.Dropped == 20 {
		t.Fatalf("dropped %d of 20, want some-but-not-all", stats.Dropped)
	}
	// Survivors must be the youngest records (a contiguous suffix).
	for i, h := range hashes {
		if got, want := s.Has(h), i >= stats.Dropped; got != want {
			t.Errorf("record %d: Has = %v, want %v (dropped=%d)", i, got, want, stats.Dropped)
		}
	}
	if s.Bytes() > budget+512 { // + append-segment slack
		t.Errorf("store still %d bytes after GC to %d", s.Bytes(), budget)
	}
}

// TestGCCrashWindows walks the compaction protocol's crash points: a
// leftover .tmp is invisible, and a crash between rename and removal
// (simulated with an injected Remove fault) leaves a store that opens
// clean, serves every live record, and sheds the stragglers next pass.
func TestGCCrashWindows(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	open := func(fs FS) *Store {
		s, err := OpenOptions(dir, Options{Now: clock.Now, Logf: quiet, SegmentMaxBytes: 256, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := open(nil)
	var old, young []string
	for i := 0; i < 6; i++ {
		old = append(old, mustPut(t, s, i))
	}
	clock.Advance(48 * time.Hour)
	for i := 100; i < 104; i++ {
		young = append(young, mustPut(t, s, i))
	}
	s.Close()

	// Crash window A: compaction died before its rename; the .tmp must be
	// ignored by the glob and the store unharmed.
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.jsonl.tmp"),
		[]byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s = open(nil)
	if s.Len() != 10 || s.Skipped() != 0 {
		t.Fatalf("leftover .tmp perturbed recovery: len=%d skipped=%d", s.Len(), s.Skipped())
	}

	// Crash window B: every Remove fails (as if the process died right
	// after the rename commit point). GC must report the fault but leave
	// a consistent store.
	s.Close()
	plane := faultinject.NewPlane().Rule(faultinject.SiteStoreRemove, faultinject.OpErr, 1, 0, 0)
	s = open(&FaultFS{Plane: plane})
	if _, err := s.GC(GCPolicy{TTL: 24 * time.Hour}); err == nil {
		t.Fatal("GC with failing removes reported success")
	}
	for _, h := range young {
		if _, ok, err := s.Get(h); !ok || err != nil {
			t.Fatalf("live record %s unreadable after faulted GC: %v, %v", h, ok, err)
		}
	}
	s.Close()

	// Reopen without faults: stale segments hold duplicates (ignored) and
	// expired records (resurrected — GC is at-least-once); a second pass
	// sheds them for good.
	s = open(nil)
	for _, h := range young {
		if !s.Has(h) {
			t.Fatalf("live record %s lost across crash-window reopen", h)
		}
	}
	if _, err := s.GC(GCPolicy{TTL: 24 * time.Hour}); err != nil {
		t.Fatal(err)
	}
	for _, h := range old {
		if s.Has(h) {
			t.Errorf("expired record %s survived the follow-up pass", h)
		}
	}
	s.Close()

	s = open(nil)
	defer s.Close()
	if got := s.Len(); got != len(young) {
		t.Errorf("final store has %d records, want %d", got, len(young))
	}
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	for _, n := range names {
		if strings.Contains(n, ".tmp") {
			t.Errorf("glob picked up temp file %s", n)
		}
	}
}

// TestFaultedPutRecovery: injected write/sync faults fail Put loudly, and
// whatever half-written bytes they leave behind are recovered away on the
// next open — acknowledged records only, bit-identical.
func TestFaultedPutRecovery(t *testing.T) {
	dir := t.TempDir()

	// Torn writes: every write persists only a prefix, then errors.
	plane := faultinject.NewPlane().Rule(faultinject.SiteStoreWrite, faultinject.OpShort, 1, 0, 0)
	s, err := OpenOptions(dir, Options{Logf: quiet, FS: &FaultFS{Plane: plane}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("deadbeef", nil, cellVal{N: 1}); err == nil {
		t.Fatal("torn write acknowledged")
	}
	s.Close()

	s, err = OpenOptions(dir, Options{Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("unacknowledged record surfaced: len=%d", s.Len())
	}
	h := mustPut(t, s, 7)

	// Fsync failures: the write may land but must not be acknowledged.
	s.Close()
	plane = faultinject.NewPlane().Rule(faultinject.SiteStoreSync, faultinject.OpErr, 1, 0, 0)
	s, err = OpenOptions(dir, Options{Logf: quiet, FS: &FaultFS{Plane: plane}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("cafebabe", nil, cellVal{N: 2}); err == nil {
		t.Fatal("unsynced write acknowledged")
	}
	s.Close()

	s, err = OpenOptions(dir, Options{Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok, err := s.Get(h); !ok || err != nil {
		t.Errorf("acknowledged record lost under fault injection: %v, %v", ok, err)
	}
}

// TestFailedAppendRepairKeepsStoreConsistent: after a failed append (torn
// write, plain write error, or fsync failure) the store keeps serving and
// writing — the exact state the degraded-complete server mode runs in —
// so the failed record's debris must not shift later appends off their
// indexed offsets: every later acknowledged record must Get back its own
// bytes from the same open store AND survive reopen with nothing
// quarantined.
func TestFailedAppendRepairKeepsStoreConsistent(t *testing.T) {
	for _, tc := range []struct {
		name  string
		site  string
		fault faultinject.OpFault
	}{
		{"torn_write", faultinject.SiteStoreWrite, faultinject.OpShort},
		{"write_error", faultinject.SiteStoreWrite, faultinject.OpErr},
		{"sync_error", faultinject.SiteStoreSync, faultinject.OpErr},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			plane := faultinject.NewPlane()
			s, err := OpenOptions(dir, Options{Logf: quiet, FS: &FaultFS{Plane: plane}})
			if err != nil {
				t.Fatal(err)
			}
			before := mustPut(t, s, 1)

			plane.Rule(tc.site, tc.fault, 1, 0, 0) // every op at site faults
			if err := s.Put("deadbeef", nil, cellVal{N: 2}); err == nil {
				t.Fatal("faulted append acknowledged")
			}
			plane.Rule(tc.site, faultinject.OpNone, 1, 0, 0) // fault heals

			var acked []string
			acked = append(acked, before)
			for i := 10; i < 14; i++ {
				acked = append(acked, mustPut(t, s, i))
			}
			for _, h := range acked {
				rec, ok, err := s.Get(h)
				if err != nil || !ok {
					t.Fatalf("Get(%s) = %v, %v from the still-open store", h, ok, err)
				}
				if rec.Hash != h {
					t.Fatalf("Get(%s) served record %s: failed append shifted later offsets", h, rec.Hash)
				}
			}
			s.Close()

			s2, err := OpenOptions(dir, Options{Logf: quiet})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got := s2.Skipped(); got != 0 {
				t.Errorf("reopen skipped %d records; repair should leave clean boundaries", got)
			}
			for _, h := range acked {
				var v cellVal
				rec, ok, err := s2.Get(h)
				if err != nil || !ok {
					t.Errorf("acknowledged record %s lost at reopen: %v, %v", h, ok, err)
					continue
				}
				if err := json.Unmarshal(rec.Value, &v); err != nil {
					t.Errorf("acknowledged record %s corrupted at reopen: %v", h, err)
				}
			}
			if s2.Has("deadbeef") {
				t.Error("never-acknowledged record resurrected at reopen")
			}
		})
	}
}

// TestFailedAppendRepairFailurePoisonsSegment: if the post-failure repair
// itself fails (truncate also errors), the append segment must be
// abandoned rather than appended past the damage — the next Put rotates
// to a fresh segment and earlier records stay readable.
func TestFailedAppendRepairFailurePoisonsSegment(t *testing.T) {
	dir := t.TempDir()
	plane := faultinject.NewPlane()
	s, err := OpenOptions(dir, Options{Logf: quiet, FS: &FaultFS{Plane: plane}})
	if err != nil {
		t.Fatal(err)
	}
	before := mustPut(t, s, 1)

	plane.Rule(faultinject.SiteStoreWrite, faultinject.OpShort, 1, 0, 0)
	plane.Rule(faultinject.SiteStoreTruncate, faultinject.OpErr, 1, 0, 0)
	if err := s.Put("deadbeef", nil, cellVal{N: 2}); err == nil {
		t.Fatal("faulted append acknowledged")
	}
	plane.Rule(faultinject.SiteStoreWrite, faultinject.OpNone, 1, 0, 0)
	plane.Rule(faultinject.SiteStoreTruncate, faultinject.OpNone, 1, 0, 0)

	after := mustPut(t, s, 3)
	for _, h := range []string{before, after} {
		if rec, ok, err := s.Get(h); err != nil || !ok || rec.Hash != h {
			t.Fatalf("Get(%s) = %v, %v from poisoned-segment store", h, ok, err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) < 2 {
		t.Errorf("unrepairable append segment was not rotated away: %v", segs)
	}
	s.Close()

	s2, err := OpenOptions(dir, Options{Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, h := range []string{before, after} {
		if _, ok, err := s2.Get(h); err != nil || !ok {
			t.Errorf("acknowledged record %s lost at reopen: %v, %v", h, ok, err)
		}
	}
}

// TestGetDuringGC hammers reads while GC compacts underneath them; the
// retry path must keep every live record readable throughout.
func TestGetDuringGC(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	s, err := OpenOptions(dir, Options{Now: clock.Now, Logf: quiet, SegmentMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var old, young []string
	for i := 0; i < 20; i++ {
		old = append(old, mustPut(t, s, i))
	}
	clock.Advance(48 * time.Hour)
	for i := 100; i < 120; i++ {
		young = append(young, mustPut(t, s, i))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h := young[i%len(young)]
				if _, ok, err := s.Get(h); !ok || err != nil {
					t.Errorf("Get(%s) during GC: %v, %v", h, ok, err)
					return
				}
			}
		}()
	}
	for pass := 0; pass < 10; pass++ {
		if _, err := s.GC(GCPolicy{TTL: 24 * time.Hour}); err != nil {
			t.Errorf("GC pass %d: %v", pass, err)
		}
		// Churn more writes so later passes have work.
		for i := 0; i < 5; i++ {
			mustPut(t, s, 1000+pass*10+i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestGCPolicyEnabled pins the zero-value-means-disabled contract leakd's
// GC loop relies on.
func TestGCPolicyEnabled(t *testing.T) {
	if (GCPolicy{}).Enabled() {
		t.Error("zero policy reports enabled")
	}
	if !(GCPolicy{TTL: time.Hour}).Enabled() || !(GCPolicy{MaxBytes: 1}).Enabled() {
		t.Error("non-zero policy reports disabled")
	}
}

// TestSegSeq pins segment-name parsing (monotonic numbering survives GC
// removing low-numbered segments).
func TestSegSeq(t *testing.T) {
	for _, tc := range []struct {
		path string
		seq  int
		ok   bool
	}{
		{"seg-000001.jsonl", 1, true},
		{"/x/y/seg-000042.jsonl", 42, true},
		{"meta.jsonl", 0, false},
		{"seg-.jsonl", 0, false},
	} {
		seq, ok := segSeq(tc.path)
		if seq != tc.seq || ok != tc.ok {
			t.Errorf("segSeq(%q) = %d, %v; want %d, %v", tc.path, seq, ok, tc.seq, tc.ok)
		}
	}
}

// TestMonotonicSegmentNumbering: after GC removes old segments, new
// rotations must not reuse their numbers (stale files from a crash could
// otherwise collide with fresh ones).
func TestMonotonicSegmentNumbering(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	s, err := OpenOptions(dir, Options{Now: clock.Now, Logf: quiet, SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		mustPut(t, s, i)
	}
	clock.Advance(48 * time.Hour)
	if _, err := s.GC(GCPolicy{TTL: 24 * time.Hour}); err != nil {
		t.Fatal(err)
	}
	// Force several rotations post-GC and make sure nothing collides.
	for i := 100; i < 120; i++ {
		mustPut(t, s, i)
	}
	s.Close()
	s2, err := OpenOptions(dir, Options{Now: clock.Now, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 20 {
		t.Errorf("reloaded %d records, want 20", got)
	}
	if s2.Skipped() != 0 {
		t.Errorf("Skipped() = %d, want 0", s2.Skipped())
	}
}
