package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCanonicalHashFieldOrder: the hash must not depend on the order
// fields appear in — a reordered struct declaration or a hand-written JSON
// document with the same content addresses the same cell.
func TestCanonicalHashFieldOrder(t *testing.T) {
	type fwd struct {
		Bench    string `json:"bench"`
		Interval uint64 `json:"interval"`
		Nested   struct {
			A int `json:"a"`
			B int `json:"b"`
		} `json:"nested"`
	}
	type rev struct {
		Nested struct {
			B int `json:"b"`
			A int `json:"a"`
		} `json:"nested"`
		Interval uint64 `json:"interval"`
		Bench    string `json:"bench"`
	}
	var a fwd
	a.Bench, a.Interval, a.Nested.A, a.Nested.B = "gzip", 4096, 1, 2
	var b rev
	b.Bench, b.Interval, b.Nested.A, b.Nested.B = "gzip", 4096, 1, 2

	ha, err := CanonicalHash(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := CanonicalHash(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("field order changed the hash: %s vs %s", ha, hb)
	}

	// Raw JSON with shuffled keys must agree too.
	doc1 := []byte(`{"bench":"gzip","interval":4096,"nested":{"a":1,"b":2}}`)
	doc2 := []byte(`{"nested":{"b":2,"a":1},"interval":4096,"bench":"gzip"}`)
	var v1, v2 any
	if err := json.Unmarshal(doc1, &v1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(doc2, &v2); err != nil {
		t.Fatal(err)
	}
	h1, _ := CanonicalHash(v1)
	h2, _ := CanonicalHash(v2)
	if h1 != h2 {
		t.Errorf("raw JSON key order changed the hash: %s vs %s", h1, h2)
	}
	if h1 != ha {
		t.Errorf("struct and raw JSON forms hash differently: %s vs %s", ha, h1)
	}

	// A genuinely different document must not collide.
	a.Interval = 8192
	hc, _ := CanonicalHash(a)
	if hc == ha {
		t.Error("different content produced the same hash")
	}
}

type cellVal struct {
	N int     `json:"n"`
	F float64 `json:"f"`
	S string  `json:"s"`
}

func mustPut(t *testing.T, s *Store, i int) string {
	t.Helper()
	key := map[string]any{"cell": i}
	h, err := CanonicalHash(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(h, key, cellVal{N: i, F: float64(i) * 1.5, S: fmt.Sprintf("v%d", i)}); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestGetDetectsIndexMisalignment: when the index points Get at bytes
// that parse but hold a different record (offset desync, bit rot), a
// content-addressed store must return an error, never the wrong record
// as a success.
func TestGetDetectsIndexMisalignment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := mustPut(t, s, 1)
	b := mustPut(t, s, 2)

	s.mu.Lock()
	s.index[a] = s.index[b] // simulate index/file desync
	s.mu.Unlock()
	if rec, ok, err := s.Get(a); err == nil {
		t.Fatalf("misaligned Get(%s) = (%s, %v, nil), want error", a, rec.Hash, ok)
	}
	// The record actually at those bytes is still served under its own hash.
	if rec, ok, err := s.Get(b); err != nil || !ok || rec.Hash != b {
		t.Fatalf("Get(%s) = %v, %v, %v", b, rec.Hash, ok, err)
	}
}

func TestStoreRoundTripAndReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for i := 0; i < 20; i++ {
		hashes = append(hashes, mustPut(t, s, i))
	}
	// Duplicate put is a no-op, not an error.
	if err := s.Put(hashes[0], nil, cellVal{N: 999}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeta("cost_model", map[string]float64{"gzip/drowsy": 123.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("reloaded %d cells, want 20", s2.Len())
	}
	for i, h := range hashes {
		rec, ok, err := s2.Get(h)
		if err != nil || !ok {
			t.Fatalf("Get(%s) = %v, %v", h, ok, err)
		}
		var v cellVal
		if err := json.Unmarshal(rec.Value, &v); err != nil {
			t.Fatal(err)
		}
		if v.N != i || v.S != fmt.Sprintf("v%d", i) {
			t.Errorf("cell %d round-tripped as %+v", i, v)
		}
	}
	var costs map[string]float64
	ok, err := s2.GetMeta("cost_model", &costs)
	if err != nil || !ok {
		t.Fatalf("GetMeta = %v, %v", ok, err)
	}
	if costs["gzip/drowsy"] != 123.5 {
		t.Errorf("meta round-tripped as %v", costs)
	}
}

// TestStoreCorruptTailRecovery truncates the append segment mid-record and
// verifies the index rebuild keeps everything before the tear, drops the
// tail, and the store accepts (and persists) new writes afterwards.
func TestStoreCorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for i := 0; i < 10; i++ {
		hashes = append(hashes, mustPut(t, s, i))
	}
	s.Close()

	seg := filepath.Join(dir, "seg-000001.jsonl")
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the final record.
	if err := os.Truncate(seg, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 9 {
		t.Fatalf("recovered %d cells, want 9 (torn tail dropped)", s2.Len())
	}
	if s2.Skipped() == 0 {
		t.Error("Skipped() = 0, want > 0 after a torn tail")
	}
	if s2.Has(hashes[9]) {
		t.Error("torn record still indexed")
	}
	for _, h := range hashes[:9] {
		if !s2.Has(h) {
			t.Errorf("intact record %s lost in recovery", h)
		}
	}
	// The truncated store must keep working: new appends land on a clean
	// line boundary and survive another reload.
	h := mustPut(t, s2, 100)
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Skipped() != 0 {
		t.Errorf("Skipped() = %d after re-append, want 0 (tail was truncated away)", s3.Skipped())
	}
	if got := s3.Len(); got != 10 {
		t.Errorf("post-recovery store has %d cells, want 10", got)
	}
	if _, ok, err := s3.Get(h); !ok || err != nil {
		t.Errorf("post-recovery append lost: %v, %v", ok, err)
	}
}

// TestStoreCorruptMiddleOfSealedSegment corrupts a byte in the middle of a
// non-final segment: records before the damage survive, the remainder of
// that segment is skipped, and later segments are unaffected.
func TestStoreCorruptMiddleOfSealedSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SegmentMaxBytes = 256 // force rotation every few records
	var hashes []string
	for i := 0; i < 12; i++ {
		hashes = append(hashes, mustPut(t, s, i))
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	// Smash a byte mid-way through the first (sealed) segment.
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] = 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Skipped() == 0 {
		t.Error("Skipped() = 0, want > 0 after mid-segment corruption")
	}
	if s2.Len() >= 12 || s2.Len() == 0 {
		t.Errorf("recovered %d cells, want some-but-not-all of 12", s2.Len())
	}
	// Every indexed record must still read back cleanly.
	for _, h := range hashes {
		if !s2.Has(h) {
			continue
		}
		rec, ok, err := s2.Get(h)
		if err != nil || !ok {
			t.Fatalf("Get(%s) after recovery: %v, %v", h, ok, err)
		}
		var v cellVal
		if err := json.Unmarshal(rec.Value, &v); err != nil {
			t.Errorf("recovered record %s does not parse: %v", h, err)
		}
	}
	// Records in segments after the corrupted one must have survived.
	last := hashes[len(hashes)-1]
	if !s2.Has(last) {
		t.Error("record in a later segment lost to earlier segment's corruption")
	}
}

// TestStoreConcurrent exercises concurrent writers and readers; run under
// -race (the verify tier does).
func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SegmentMaxBytes = 1024 // rotate under load too

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := map[string]any{"w": w, "i": i}
				h, err := CanonicalHash(key)
				if err != nil {
					t.Error(err)
					return
				}
				if err := s.Put(h, key, cellVal{N: w*1000 + i}); err != nil {
					t.Error(err)
					return
				}
				// Read own write plus a sibling's (if present).
				if _, ok, err := s.Get(h); !ok || err != nil {
					t.Errorf("read-own-write %s: %v, %v", h, ok, err)
					return
				}
				other, _ := CanonicalHash(map[string]any{"w": (w + 1) % writers, "i": i})
				if _, _, err := s.Get(other); err != nil {
					t.Error(err)
					return
				}
				if err := s.PutMeta(fmt.Sprintf("m%d", w), i); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*perWriter {
		t.Errorf("store has %d cells, want %d", got, writers*perWriter)
	}
}
