package store

// The store's file I/O goes through the FS interface so chaos tests can
// interpose a fault plane between the store and the kernel. OSFS is the
// real thing; FaultFS wraps any FS and consults a faultinject.Plane before
// every operation, which is how the suite proves the recovery paths (torn
// tails, failed fsyncs, EIO mid-compaction) actually work instead of
// trusting that they would.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"hotleakage/internal/harness/faultinject"
)

// File is the slice of *os.File the store needs.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Stat() (os.FileInfo, error)
	Sync() error
	Truncate(size int64) error
}

// FS is the slice of the filesystem the store needs. Implementations must
// be safe for concurrent use.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Glob(pattern string) ([]string, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, persisting renames and removals within
	// it — the step that makes compaction's atomic rename durable.
	SyncDir(dir string) error
}

// OSFS is the production FS, backed by the os package.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Glob implements FS.
func (OSFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// FaultFS wraps an FS with a fault plane. Operations consult the plane's
// store.* sites; a firing rule fails the operation (OpErr), persists only
// a prefix before failing (OpShort, writes only), delays it (OpSlow), or
// panics (OpPanic). A nil Plane passes everything through.
type FaultFS struct {
	Plane *faultinject.Plane
	Base  FS
}

func (f *FaultFS) base() FS {
	if f.Base == nil {
		return OSFS{}
	}
	return f.Base
}

// decide consults the plane at site and renders the verdict: a non-nil
// error to return, or a delay/panic applied in place.
func decide(p *faultinject.Plane, site string) error {
	d := p.Decide(site)
	switch d.Fault {
	case faultinject.OpSlow:
		time.Sleep(d.Delay)
	case faultinject.OpPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	}
	return d.Err(site)
}

// MkdirAll implements FS (no fault site: store setup, not data path).
func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error {
	return f.base().MkdirAll(dir, perm)
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := decide(f.Plane, faultinject.SiteStoreOpen); err != nil {
		return nil, err
	}
	file, err := f.base().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, plane: f.Plane}, nil
}

// Glob implements FS (no fault site: a failed glob is not a recoverable
// data fault, it is an unopenable store).
func (f *FaultFS) Glob(pattern string) ([]string, error) { return f.base().Glob(pattern) }

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := decide(f.Plane, faultinject.SiteStoreRename); err != nil {
		return err
	}
	return f.base().Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := decide(f.Plane, faultinject.SiteStoreRemove); err != nil {
		return err
	}
	return f.base().Remove(name)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if err := decide(f.Plane, faultinject.SiteStoreSync); err != nil {
		return err
	}
	return f.base().SyncDir(dir)
}

// faultFile interposes the plane on a File's data operations.
type faultFile struct {
	File
	plane *faultinject.Plane
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := decide(f.plane, faultinject.SiteStoreRead); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := decide(f.plane, faultinject.SiteStoreRead); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	d := f.plane.Decide(faultinject.SiteStoreWrite)
	switch d.Fault {
	case faultinject.OpShort:
		// Torn write: a prefix reaches the file, then the write fails —
		// the case the open-time tail truncation must recover from.
		n, _ := f.File.Write(p[:len(p)/2])
		return n, d.Err(faultinject.SiteStoreWrite)
	case faultinject.OpErr, faultinject.OpReset:
		return 0, d.Err(faultinject.SiteStoreWrite)
	case faultinject.OpSlow:
		time.Sleep(d.Delay)
	case faultinject.OpPanic:
		panic("faultinject: injected panic at " + faultinject.SiteStoreWrite)
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := decide(f.plane, faultinject.SiteStoreSync); err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := decide(f.plane, faultinject.SiteStoreTruncate); err != nil {
		return err
	}
	return f.File.Truncate(size)
}
