package store

// Garbage collection for the result store. The store is append-only and
// content-addressed, so "delete" can only mean "rewrite without": GC
// selects expired records (by TTL and/or a total-size budget), then
// compacts every sealed segment into one fresh file holding only live
// records, byte-identical to their first write.
//
// # Crash-safety protocol
//
// Compaction never modifies a segment in place:
//
//  1. write live records to <first-sealed>.tmp (invisible to Open's
//     seg-*.jsonl glob), fsync it;
//  2. atomically rename it over the first sealed segment, fsync the dir;
//  3. remove the remaining sealed segments, fsync the dir.
//
// A crash before (2) leaves the store exactly as it was. A crash between
// (2) and the end of (3) leaves the compacted segment first in scan
// order plus some stale segments: their live records are duplicates the
// first-occurrence-wins index ignores, and their expired records
// resurrect until the next GC pass. GC is therefore at-least-once —
// expiry may need a second pass after a crash — while acknowledged live
// records are never lost at any crash point.

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"hotleakage/internal/obs"
)

// GCPolicy selects which records expire.
type GCPolicy struct {
	// TTL expires records older than this (0 = no age limit). Records
	// written before timestamps existed count as infinitely old.
	TTL time.Duration
	// MaxBytes caps the live corpus; when the store exceeds it, the
	// oldest records expire until it fits (0 = no size limit).
	MaxBytes int64
}

// Enabled reports whether the policy can ever expire anything.
func (p GCPolicy) Enabled() bool { return p.TTL > 0 || p.MaxBytes > 0 }

// GCStats reports one GC pass.
type GCStats struct {
	Dropped        int   // records expired
	Live           int   // records surviving
	ReclaimedBytes int64 // disk bytes freed by compaction
	Compacted      bool  // whether segments were rewritten
}

var (
	obsGCRuns      = obs.Default.Counter(obs.MetricStoreGCRuns)
	obsGCDropped   = obs.Default.Counter(obs.MetricStoreGCDropped)
	obsGCReclaimed = obs.Default.Counter(obs.MetricStoreGCReclaimedB)
)

// GC runs one collection pass under policy. It blocks writers and readers
// for the duration (compaction is a scan + sequential rewrite of live
// bytes; the corpus is index-bounded, not memory-loaded).
func (s *Store) GC(policy GCPolicy) (GCStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obsGCRuns.Add(1)
	if s.closed {
		return GCStats{}, fmt.Errorf("store: closed")
	}

	drop := s.selectExpiredLocked(policy)
	stats := GCStats{Dropped: len(drop), Live: len(s.index) - len(drop)}
	if len(drop) == 0 {
		return stats, nil
	}

	// Expired records in the append segment can only be shed by sealing
	// it first; compaction below only touches sealed segments.
	appendIdx := len(s.segs) - 1
	for h := range drop {
		if s.index[h].seg == appendIdx {
			if err := s.rotateLocked(); err != nil {
				return stats, err
			}
			break
		}
	}

	before := s.bytesLocked()
	if err := s.compactSealedLocked(drop); err != nil {
		return stats, err
	}
	stats.Compacted = true
	stats.ReclaimedBytes = before - s.bytesLocked()
	obsGCDropped.Add(uint64(stats.Dropped))
	if stats.ReclaimedBytes > 0 {
		obsGCReclaimed.Add(uint64(stats.ReclaimedBytes))
	}
	s.logf("store: gc dropped %d records, reclaimed %d bytes (%d live)",
		stats.Dropped, stats.ReclaimedBytes, stats.Live)
	return stats, nil
}

// selectExpiredLocked returns the set of hashes the policy expires: first
// everything past TTL, then — if the survivors still exceed MaxBytes —
// the oldest survivors until the corpus fits.
func (s *Store) selectExpiredLocked(policy GCPolicy) map[string]bool {
	drop := make(map[string]bool)
	var cutoff int64
	if policy.TTL > 0 {
		cutoff = s.now().Add(-policy.TTL).Unix()
	}
	type aged struct {
		hash  string
		t     int64
		bytes int64
	}
	var liveBytes int64
	var live []aged
	for h, l := range s.index {
		if policy.TTL > 0 && l.t < cutoff {
			drop[h] = true
			continue
		}
		liveBytes += l.length + 1
		live = append(live, aged{hash: h, t: l.t, bytes: l.length + 1})
	}
	if policy.MaxBytes > 0 && liveBytes > policy.MaxBytes {
		sort.Slice(live, func(i, j int) bool { return live[i].t < live[j].t })
		for _, a := range live {
			if liveBytes <= policy.MaxBytes {
				break
			}
			drop[a.hash] = true
			liveBytes -= a.bytes
		}
	}
	return drop
}

// compactSealedLocked rewrites every sealed segment into one new file
// holding the surviving records (original bytes, preserved verbatim),
// following the crash-safety protocol in the package comment, then
// rebuilds the in-memory index and segment table.
func (s *Store) compactSealedLocked(drop map[string]bool) error {
	appendIdx := len(s.segs) - 1
	sealed := s.segs[:appendIdx]
	if len(sealed) == 0 {
		// Nothing sealed: the rotation above didn't happen because no
		// append-segment record expired, so there is nothing to rewrite.
		return nil
	}

	// Survivors from sealed segments, in stable (segment, offset) order.
	type move struct {
		hash string
		old  loc
	}
	var moves []move
	for h, l := range s.index {
		if l.seg < appendIdx && !drop[h] {
			moves = append(moves, move{hash: h, old: l})
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].old.seg != moves[j].old.seg {
			return moves[i].old.seg < moves[j].old.seg
		}
		return moves[i].old.offset < moves[j].old.offset
	})

	dstPath := sealed[0].path
	newLocs := make(map[string]loc, len(moves))
	var newSize int64
	if len(moves) > 0 {
		tmpPath := dstPath + ".tmp"
		tmp, err := s.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("store: gc: %w", err)
		}
		for _, m := range moves {
			buf := make([]byte, m.old.length+1)
			if _, err := sealed[m.old.seg].f.ReadAt(buf, m.old.offset); err != nil {
				tmp.Close()
				s.fs.Remove(tmpPath)
				return fmt.Errorf("store: gc: read %s: %w", m.hash, err)
			}
			if _, err := tmp.Write(buf); err != nil {
				tmp.Close()
				s.fs.Remove(tmpPath)
				return fmt.Errorf("store: gc: write %s: %w", m.hash, err)
			}
			newLocs[m.hash] = loc{seg: 0, offset: newSize, length: m.old.length, t: m.old.t}
			newSize += m.old.length + 1
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			s.fs.Remove(tmpPath)
			return fmt.Errorf("store: gc: sync: %w", err)
		}
		if err := tmp.Close(); err != nil {
			s.fs.Remove(tmpPath)
			return fmt.Errorf("store: gc: close: %w", err)
		}
		// The commit point: after this rename the compacted segment is
		// first in scan order and every survivor is durable in it.
		if err := s.fs.Rename(tmpPath, dstPath); err != nil {
			s.fs.Remove(tmpPath)
			return fmt.Errorf("store: gc: rename: %w", err)
		}
		if err := s.fs.SyncDir(s.dir); err != nil {
			return fmt.Errorf("store: gc: sync dir: %w", err)
		}
	}

	// Rebuild in-memory state before removing stale files, so a removal
	// fault leaves a consistent store (stale segments are dup/expired
	// data the next Open ignores or the next GC sheds).
	var newSegs []*segment
	var removeErr error
	if len(moves) > 0 {
		dst, err := s.fs.OpenFile(dstPath, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: gc: reopen %s: %w", dstPath, err)
		}
		if _, err := dst.Seek(0, io.SeekEnd); err != nil {
			dst.Close()
			return fmt.Errorf("store: gc: %w", err)
		}
		newSegs = append(newSegs, &segment{path: dstPath, f: dst, size: newSize})
	}
	appendSeg := s.segs[appendIdx]
	newAppendIdx := len(newSegs)
	newSegs = append(newSegs, appendSeg)

	for h, l := range s.index {
		switch {
		case drop[h]:
			delete(s.index, h)
		case l.seg == appendIdx:
			l.seg = newAppendIdx
			s.index[h] = l
		default:
			s.index[h] = newLocs[h]
		}
	}

	for i, seg := range sealed {
		seg.f.Close()
		if i == 0 && len(moves) > 0 {
			continue // its path now holds the compacted file
		}
		if err := s.fs.Remove(seg.path); err != nil && removeErr == nil {
			removeErr = fmt.Errorf("store: gc: remove %s: %w", seg.path, err)
		}
	}
	s.segs = newSegs
	if err := s.fs.SyncDir(s.dir); err != nil && removeErr == nil {
		removeErr = fmt.Errorf("store: gc: sync dir: %w", err)
	}
	return removeErr
}
