// Lockstep batch front end: the per-instruction work that does not depend
// on a variant's timing or leakage state — trace decode, branch
// prediction, I-cache line grouping — computed once per (benchmark,
// machine config) group and replayed into N variant cores.
//
// The split rests on an invariant of this trace-driven model: the fetch
// STREAM is identical for every variant of one benchmark. Fetch order is
// stream order regardless of stalls (stalls change WHEN an instruction is
// fetched, never WHICH instruction comes next), so everything derived
// purely from the stream prefix — predictor lookups/updates and their
// outcomes, the fetch-line dedup that decides which instructions access
// the I-cache, dependence distances — is variant-independent and can be
// precomputed. Everything cycle-dependent (cache hit/miss LATENCIES, the
// wheel, the done array, leakctl decay state) stays per-variant: a replay
// core still performs its own I-cache/D-cache accesses against its own
// hierarchy, it just no longer decodes or predicts.
package cpu

import (
	"fmt"

	"hotleakage/internal/bpred"
	"hotleakage/internal/workload"
)

// FrontRec flag bits: the per-instruction front-end outcomes a replaying
// lane consumes instead of recomputing.
const (
	// FrontICAccess marks the first instruction of a new 64-byte fetch
	// line — the instructions for which the scalar fetch path performs an
	// I-cache access.
	FrontICAccess uint8 = 1 << iota
	// FrontMisp marks a mispredicted CTI (wrong-path flush: fetch stalls
	// until the branch resolves).
	FrontMisp
	// FrontBubble marks a correctly-directed CTI whose target had to come
	// from decode (fixed 2-cycle front-end bubble).
	FrontBubble
	// FrontBPUpdate marks a CTI that ran Predictor.Update (OpBranch,
	// OpCall): bpred.Stats.Branches advances by one.
	FrontBPUpdate
	// FrontBPDirMisp / FrontBPBTBMiss carry the Update call's Stats deltas.
	FrontBPDirMisp
	FrontBPBTBMiss
)

// FrontRec is one precomputed instruction: the decoded fields plus the
// variant-independent front-end outcome flags.
type FrontRec struct {
	Ins   workload.Instr
	Flags uint8
}

// Front is a fully materialized precomputed stream. It is filled once per
// batch group and then read concurrently — Fill must complete before any
// lane consumes it, and the records are immutable afterwards.
type Front struct {
	Recs []FrontRec
}

// Fill precomputes n instructions from src through pred, reusing the
// record storage across groups. pred must be freshly built or Reset: it
// plays the role every lane's private predictor plays on the scalar path,
// and its table state after Fill is exactly the scalar predictor's state
// after the same stream (the parity tests pin this).
func (f *Front) Fill(src InstrSource, pred *bpred.Predictor, n uint64) {
	if uint64(cap(f.Recs)) >= n {
		f.Recs = f.Recs[:n]
	} else {
		f.Recs = make([]FrontRec, n)
	}
	genFast, _ := src.(*workload.Generator)
	lastLine := ^uint64(0)
	for i := range f.Recs {
		r := &f.Recs[i]
		ins := &r.Ins
		if genFast != nil {
			genFast.Next(ins)
		} else {
			src.Next(ins)
		}
		flags := uint8(0)
		if line := ins.PC >> 6; line != lastLine {
			lastLine = line
			flags = FrontICAccess
		}
		if ins.Op.IsCTI() {
			before := pred.Stats
			misp, bubble := predictCTI(pred, ins)
			if misp {
				flags |= FrontMisp
			}
			if bubble {
				flags |= FrontBubble
			}
			if pred.Stats.Branches != before.Branches {
				flags |= FrontBPUpdate
			}
			if pred.Stats.DirMispredict != before.DirMispredict {
				flags |= FrontBPDirMisp
			}
			if pred.Stats.BTBMiss != before.BTBMiss {
				flags |= FrontBPBTBMiss
			}
		}
		r.Flags = flags
	}
}

// Len returns the number of precomputed instructions.
func (f *Front) Len() int { return len(f.Recs) }

// AttachFront switches the core into replay mode: fetch consumes the
// precomputed records (from the beginning) instead of generating and
// predicting live. The core's own Gen and Pred are not touched in this
// mode; per-run predictor statistics accumulate in Core.BP from the
// recorded deltas. Recycle detaches any front (the rebuilt core starts in
// live mode), so a reused lane must re-attach per run.
func (c *Core) AttachFront(f *Front) {
	c.front = f
	c.frontPos = 0
}

// FrontPos returns how many precomputed instructions the core has
// consumed — the lane's fetch position in the shared stream.
func (c *Core) FrontPos() int { return c.frontPos }

// fetchReplay is fetch for a front-attached core: structurally identical
// to Core.fetch, but the instruction comes from the precomputed record and
// the predictor outcome from its flags. The I-cache access (latency
// depends on this lane's L2 state) and all stall bookkeeping remain
// per-lane, so the timing behaviour is bit-identical to the live path.
func (c *Core) fetchReplay(cycle uint64) bool {
	if c.pendingBranch != 0 {
		if c.pendingBranch < c.tail {
			if d := c.done[c.pendingBranch&c.ringMask]; d != notIssued {
				c.fetchStall = d>>1 + uint64(c.Cfg.MispredictPen)
				c.pendingBranch = 0
			}
		}
		if c.pendingBranch != 0 {
			c.Stats.FetchStallCy++
			return false
		}
	}
	if cycle < c.fetchStall {
		c.Stats.FetchStallCy++
		return false
	}
	if c.nextSeq-c.tail >= uint64(2*c.Cfg.FetchWidth) {
		return false
	}
	recs := c.front.Recs
	mask := c.ringMask
	for w := 0; w < c.Cfg.FetchWidth; w++ {
		if c.frontPos >= len(recs) {
			// The front was sized to the recorded trace length
			// (warmup+measure+slack), which bounds every lane's fetch-ahead;
			// running past it means the run was asked for more instructions
			// than the front holds. The batch executor recovers the panic
			// into a per-lane failure and re-runs the cell on the scalar
			// path.
			panic(fmt.Sprintf("cpu: front exhausted at %d records", len(recs)))
		}
		rec := &recs[c.frontPos]
		c.frontPos++
		seq := c.nextSeq
		c.nextSeq = seq + 1
		s := seq & mask
		if d := uint64(uint32(rec.Ins.Src1)); d != 0 && seq > d {
			c.src1[s] = seq - d
		} else {
			c.src1[s] = 0
		}
		if d := uint64(uint32(rec.Ins.Src2)); d != 0 && seq > d {
			c.src2[s] = seq - d
		} else {
			c.src2[s] = 0
		}
		c.addr[s] = rec.Ins.Addr
		c.ops[s] = rec.Ins.Op

		stop := false
		flags := rec.Flags

		if flags&FrontICAccess != 0 {
			if lat := c.ICache.Access(rec.Ins.PC, false, cycle); lat > c.ICache.HitLat() {
				c.Stats.ICacheStalls++
				c.fetchStall = cycle + uint64(lat)
				stop = true
			}
		}

		if rec.Ins.Op.IsCTI() {
			c.Stats.Branches++
			if flags&FrontBPUpdate != 0 {
				c.BP.Branches++
			}
			if flags&FrontBPDirMisp != 0 {
				c.BP.DirMispredict++
			}
			if flags&FrontBPBTBMiss != 0 {
				c.BP.BTBMiss++
			}
			if flags&FrontMisp != 0 {
				c.Stats.Mispredicts++
				c.pendingBranch = seq
				return true
			}
			if flags&FrontBubble != 0 {
				c.fetchStall = cycle + 2
				return true
			}
			if rec.Ins.Taken {
				return true
			}
		}
		if stop {
			return true
		}
	}
	return true
}
