package cpu

import "hotleakage/internal/obs"

// Core-level counters in the process-wide registry. Flushed as batched
// deltas from Stats at sim's chunk boundaries — never from the cycle loop.
var (
	obsCycles     = obs.Default.Counter("sim_cycles_total")
	obsInstr      = obs.Default.Counter(obs.MetricInstructions)
	obsLoads      = obs.Default.Counter("sim_loads_total")
	obsStores     = obs.Default.Counter("sim_stores_total")
	obsBranches   = obs.Default.Counter("sim_branches_total")
	obsMispred    = obs.Default.Counter("sim_mispredicts_total")
	obsFetchStall = obs.Default.Counter("sim_fetch_stall_cycles_total")

	// Sampled per-stage wall-clock attribution (see stageSampleMask in
	// cpu.go): ns spent in each pipeline stage on the 1-in-1024 sampled
	// cycles, plus the sampled-cycle count to normalize by. ns-per-sampled-
	// cycle per stage is the backend's live self-profile — the same
	// breakdown a pprof run gives, but always on and essentially free.
	obsStageNS = [numStage]obs.Counter{
		stageTick:     obs.Default.Counter("sim_stage_tick_ns_total"),
		stageCommit:   obs.Default.Counter("sim_stage_commit_ns_total"),
		stageIssue:    obs.Default.Counter("sim_stage_issue_ns_total"),
		stageDispatch: obs.Default.Counter("sim_stage_dispatch_ns_total"),
		stageFetch:    obs.Default.Counter("sim_stage_fetch_ns_total"),
	}
	obsStageSampled = obs.Default.Counter("sim_stage_sampled_cycles_total")
)

// ObsFlush adds the Stats delta since the previous flush to sh. The caller
// (sim.RunOneFrom) invokes it between simulation chunks, so the core's hot
// paths never see an atomic.
func (c *Core) ObsFlush(sh *obs.Shard) {
	cur, prev := c.Stats, c.obsPrev
	sh.Add(obsCycles.ID(), obs.Delta(cur.Cycles, prev.Cycles))
	sh.Add(obsInstr.ID(), obs.Delta(cur.Instructions, prev.Instructions))
	sh.Add(obsLoads.ID(), obs.Delta(cur.Loads, prev.Loads))
	sh.Add(obsStores.ID(), obs.Delta(cur.Stores, prev.Stores))
	sh.Add(obsBranches.ID(), obs.Delta(cur.Branches, prev.Branches))
	sh.Add(obsMispred.ID(), obs.Delta(cur.Mispredicts, prev.Mispredicts))
	sh.Add(obsFetchStall.ID(), obs.Delta(cur.FetchStallCy, prev.FetchStallCy))
	c.obsPrev = cur
	for i := range c.stageNS {
		sh.Add(obsStageNS[i].ID(), obs.Delta(c.stageNS[i], c.obsPrevStage[i]))
		c.obsPrevStage[i] = c.stageNS[i]
	}
	sh.Add(obsStageSampled.ID(), obs.Delta(c.stageSampled, c.obsPrevSamp))
	c.obsPrevSamp = c.stageSampled
}
