// Package cpu is the execution-timing substrate: a simplified 4-wide
// out-of-order machine in the sim-outorder tradition, configured per the
// paper's Table 2 (80-entry RUU, 40-entry LSQ, the 21264-like FU mix,
// hybrid branch predictor with a 1K-entry 2-way BTB, 64 KB 2-way L1s, a
// unified 2 MB L2 and 100-cycle memory).
//
// The model exists to reproduce the first-order effect the paper's argument
// rests on: an aggressive out-of-order window overlaps independent work
// with outstanding misses, so "modest L2 access latencies for induced
// misses can be tolerated". Instructions come from a workload generator;
// wrong-path execution is approximated by stalling fetch from a
// mispredicted branch until it resolves (standard trace-driven treatment).
//
// The cycle loop is event-driven: cycles on which the machine provably
// cannot change state (everything in flight is waiting on a miss, a decay
// rollover, or a fetch stall) are skipped in one jump rather than executed
// one by one. The fast-forward is bit-identical to strict cycle-by-cycle
// execution — see Core.fastForward for the invariant and
// Core.DisableFastForward for the reference path tests compare against.
//
// The RUU is stored struct-of-arrays: each per-entry field (producer seqs,
// address, ready time, scheduler links, waiter chains, op class) lives in
// its own dense parallel array rather than one 64-byte struct per entry.
// Every stage walk touches only the fields it needs — dispatch reads the
// producer arrays, issue the op/address arrays, the wheel the link array —
// so the per-slot hot footprint shrinks and N lockstep lanes stepping the
// same chunk stop dragging each other's unrelated fields through the cache.
// Fetched instructions are decoded straight into their ring slot (the
// seq->slot mapping is fixed at fetch time and the ring is sized so a
// pending slot can never alias an in-flight one), which removes the old
// intermediate fetch buffer and its per-instruction struct copies entirely:
// the fetch->dispatch queue is just the seq interval [tail, nextSeq).
package cpu

import (
	"fmt"
	"math/bits"
	"time"

	"hotleakage/internal/bpred"
	"hotleakage/internal/cache"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// Config sizes the core.
type Config struct {
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int
	RUUSize     int
	LSQSize     int
	IntALUs     int
	IntMulDivs  int
	FPALUs      int
	FPMulDivs   int
	MemPorts    int
	// MSHRs bounds the number of outstanding L1 D-cache misses; a load
	// that needs a miss slot when all are busy waits (0 = unlimited).
	MSHRs int
	// MispredictPen is the front-end refill penalty added after a
	// mispredicted branch resolves.
	MispredictPen int
	// ScanLimit caps how many un-issued RUU entries the scheduler
	// examines per cycle (a real scheduler's select logic is similarly
	// bounded).
	ScanLimit int
}

// DefaultConfig is the paper's Table 2 machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    4,
		DecodeWidth:   4,
		IssueWidth:    4,
		CommitWidth:   4,
		RUUSize:       80,
		LSQSize:       40,
		IntALUs:       4,
		IntMulDivs:    1,
		FPALUs:        2,
		FPMulDivs:     1,
		MemPorts:      2,
		MSHRs:         8,
		MispredictPen: 3,
		ScanLimit:     32,
	}
}

// Validate rejects degenerate core configurations (zero-wide pipelines,
// empty windows) that would deadlock or never commit an instruction.
func (c Config) Validate() error {
	if c.FetchWidth < 1 || c.DecodeWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1 {
		return fmt.Errorf("cpu: pipeline widths must be >= 1 (fetch %d, decode %d, issue %d, commit %d)",
			c.FetchWidth, c.DecodeWidth, c.IssueWidth, c.CommitWidth)
	}
	if c.RUUSize < 1 || c.LSQSize < 1 {
		return fmt.Errorf("cpu: window sizes must be >= 1 (RUU %d, LSQ %d)", c.RUUSize, c.LSQSize)
	}
	if c.IntALUs < 1 || c.MemPorts < 1 {
		return fmt.Errorf("cpu: need at least one integer ALU and one memory port (ALUs %d, ports %d)", c.IntALUs, c.MemPorts)
	}
	if c.MSHRs < 0 || c.MispredictPen < 0 || c.ScanLimit < 0 {
		return fmt.Errorf("cpu: negative MSHRs/penalty/scan limit")
	}
	return nil
}

// opLatency returns the execution latency of a non-memory op.
func opLatency(op workload.OpClass) uint64 {
	switch op {
	case workload.OpIntMul:
		return 4
	case workload.OpFPALU:
		return 2
	case workload.OpFPMul:
		return 4
	default:
		return 1
	}
}

// Functional-unit pools. The issue loop selects an op's pool and latency by
// table lookup — the op mix is random, so a multiway branch on the class
// mispredicted constantly.
const (
	fuIntALU = iota
	fuIntMul
	fuFPALU
	fuFPMul
	fuMem
	numFU
)

// fuClassTab and latTab are indexed by OpClass (masked to table size; CTIs
// and anything unknown execute on an integer ALU with latency 1, matching
// opLatency's default).
var fuClassTab = [16]uint8{
	workload.OpIntALU: fuIntALU,
	workload.OpIntMul: fuIntMul,
	workload.OpFPALU:  fuFPALU,
	workload.OpFPMul:  fuFPMul,
	workload.OpLoad:   fuMem,
	workload.OpStore:  fuMem,
}

var latTab = [16]uint64{
	workload.OpIntMul: 4,
	workload.OpFPALU:  2,
	workload.OpFPMul:  4,
}

func init() {
	// Everything else — ALU ops, CTIs, memory ops (whose latency the cache
	// supplies), padding slots — takes opLatency's default of 1.
	for i, v := range latTab {
		if v == 0 {
			latTab[i] = 1
		}
	}
}

// Stats is the core's run summary.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	FetchStallCy uint64
	ICacheStalls uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// InstrSource supplies the instruction stream: a live workload.Generator or
// a recorded trace (package trace) replayed from disk.
type InstrSource interface {
	Next(*workload.Instr)
}

// FetchCache is the instruction-cache contract: a plain cache.Cache or a
// leakage-controlled leakctl.DCache both satisfy it, which is how the
// I-cache leakage-control extension plugs in.
type FetchCache interface {
	Access(addr uint64, write bool, cycle uint64) int
	HitLat() int
	Tick(cycle uint64)
}

// TickEventer is a FetchCache whose Tick does real work only on scheduled
// cycles (decay rollovers, adapter consultations). NextTickEvent returns
// the next cycle at which Tick must observe time; the core skips the Tick
// call on every other cycle. A FetchCache that implements neither this nor
// a no-op Tick (plain cache.Cache) is ticked every cycle and disables
// fast-forwarding, since the core cannot know when its Tick matters.
type TickEventer interface {
	NextTickEvent() uint64
}

// never is the "no scheduled event" sentinel cycle.
const never = ^uint64(0)

// notIssued marks a done-array slot whose occupant has not issued yet.
const notIssued = ^uint64(0)

// Pipeline-stage indices for the sampled ns attribution (see Run).
const (
	stageTick = iota
	stageCommit
	stageIssue
	stageDispatch
	stageFetch
	numStage
)

// stageSampleMask selects which cycles get per-stage wall-clock timing:
// cycle numbers with the masked bits zero, i.e. 1 in 1024. Sampling keys
// off the deterministic cycle counter, so which simulated cycles are
// sampled is identical across variants and runs, and the per-cycle cost on
// unsampled cycles is one AND and one predictable branch.
const stageSampleMask = 1023

// Core wires the generator, predictor and memory hierarchy together.
type Core struct {
	Cfg    Config
	Gen    InstrSource
	Pred   *bpred.Predictor
	ICache FetchCache
	DCache *leakctl.DCache
	Stats  Stats

	// obsPrev is the Stats value at the last ObsFlush; deltas against it
	// are what the observability shard receives. Rebased by ResetStats so
	// warmup work is not double-counted.
	obsPrev Stats

	// DisableFastForward forces strict cycle-by-cycle execution — the
	// reference behaviour the event-driven loop must match bit for bit.
	// Tests flip it to prove identity; production runs leave it false.
	DisableFastForward bool

	// The RUU ring, struct-of-arrays. All arrays share one length: the
	// next power of two >= RUUSize + 3*FetchWidth, so slot lookup is a
	// mask and a fetched-but-undispatched slot (the [tail, nextSeq)
	// interval, at most 3*FetchWidth-1 long) can never alias an in-flight
	// one ([head, tail), at most RUUSize long).
	//
	// src1/src2 hold producer seqs (0 = none; seqs start at 1), addr the
	// memory address, ops the op class — all written at fetch time, when
	// the instruction is decoded straight into its slot. readyAt is the
	// cycle both producers' values are available (0 = not yet computable
	// because a producer is still un-issued); a producer's completion time
	// is immutable once it issues, so the value is final when first
	// derived. link chains a slot through whichever scheduler structure it
	// currently waits in: a producer's waiter chain (readyAt unknown) or a
	// wake-wheel slot (readyAt known and in the future) — the states are
	// mutually exclusive, so one array serves both. waiters heads the
	// chain of dispatched entries whose ready time becomes computable when
	// this slot's occupant issues.
	src1     []uint64
	src2     []uint64
	addr     []uint64
	readyAt  []uint64
	link     []uint64
	waiters  []uint64
	ops      []workload.OpClass
	ringMask uint64
	head     uint64 // oldest in-flight seq
	tail     uint64 // one past the youngest dispatched seq
	// The scheduler is event-driven: instead of rescanning the window
	// every cycle, each dispatched entry's ready time is derived once —
	// at dispatch if both producers have issued, otherwise when the
	// producer it waits on issues (waiter chains) — and the entry is
	// filed in a calendar wheel keyed by that cycle. The per-cycle work
	// is then one wheel-slot pop plus a walk of the (small) ready list,
	// rather than a ScanLimit-bounded scan over mostly unready entries.
	//
	// rdy holds the seqs of un-issued entries whose operands are
	// available, sorted oldest-first — exactly the entries the reference
	// scan would find ready. The backing array is fixed at the ring
	// size and never reassigned (rdyLen tracks occupancy) so the hot
	// paths store plain words, not slice headers with write barriers.
	rdy    []uint64
	rdyLen int
	// wheel[t & wheelMask] heads a chain (through link) of entries whose
	// readyAt is t modulo the wheel size; entries from a later lap are
	// re-filed on pop. Wakes can never land inside a fast-forwarded
	// region: a future readyAt always equals the doneAt of an in-flight
	// producer, which bounds the fast-forward jump. A fixed-size array
	// (the size is a compile-time constant) lets masked indexing skip
	// the bounds check.
	wheel [wheelSize]uint64
	// nextRdy is the fast lane for the dominant wake distance: entries
	// whose readyAt is exactly the next cycle (single-cycle producers
	// issue and wake dependents for cycle+1 constantly). They skip the
	// wheel's chain-link stores and reloads; the slice is drained
	// unconditionally at the next cycle's pop. The next cycle can never
	// be fast-forwarded over: readyAt == now+1 implies a producer with
	// doneAt >= now+1 is still in flight, which bounds the jump. Fixed
	// backing array, like rdy.
	nextRdy    []uint64
	nextRdyLen int
	// wheelCount tracks entries currently filed in the wheel so the
	// per-cycle slot probe is skipped while the wheel is empty — the
	// usual state now that next-cycle wakes bypass it.
	wheelCount int
	// unb is a bitmap over ring slots marking un-issued entries, and
	// unissued its total. A popcount over the ring-order interval from
	// head's slot gives each ready entry's rank among all un-issued
	// entries — the reference scan's "scanned" position — so the
	// ScanLimit cutoff applies to exactly the same entries without
	// walking the window.
	unb      []uint64
	unissued int
	// done packs each slot's completion state into one word:
	// notIssued while the occupant has not issued, else doneAt<<1 with
	// bit 0 flagging a memory op (for commit's LSQ release). A dense
	// word per slot keeps the done-yet walks — commit, readyTime,
	// fastForward — at eight slots per cache line.
	done []uint64
	// wakeBuf is scratch for wakeWaiters to reverse a waiter chain
	// (capacity: ring size, the most entries that can ever wait).
	wakeBuf []uint64

	lsqUsed int
	// mshrBusy holds the completion times of outstanding D-cache misses
	// in a fixed MSHRs-long array (mshrLen tracks occupancy), so the
	// issue path never allocates or stores a slice header.
	mshrBusy []uint64
	mshrLen  int

	fetchStall    uint64 // first cycle fetch may run again
	pendingBranch uint64 // seq of an unresolved mispredicted branch (0 = none)
	lastFetchLine uint64

	nextSeq uint64
	now     uint64 // global cycle counter, persists across Run calls

	// scratch receives live-generated instructions; a long-lived buffer
	// (rather than a loop local) keeps the interface-path Gen.Next call
	// from forcing a per-instruction heap allocation.
	scratch workload.Instr

	// genFast caches Gen's concrete type when it is the live workload
	// generator, turning the per-instruction interface dispatch in fetch
	// into a direct call.
	genFast *workload.Generator

	// Tick scheduling: dcNext/icNext cache the caches' next scheduled
	// tick event so the per-cycle loop is two compares instead of two
	// interface calls. icTick selects the I-cache's tick regime.
	dcNext uint64
	icNext uint64
	icTick icTickMode
	// fuBlocked records that a ready instruction was denied a functional
	// unit this cycle: the machine is stalled on structural hazards that
	// clear by themselves next cycle, so the cycle is not skippable.
	fuBlocked bool

	// Sampled per-stage attribution: on cycles selected by
	// stageSampleMask, each pipeline stage's wall-clock ns accumulate in
	// stageNS and stageSampled counts the sampled cycles. Plain counters,
	// flushed (with deltas, never atomics) by ObsFlush.
	stageNS      [numStage]uint64
	stageSampled uint64
	obsPrevStage [numStage]uint64
	obsPrevSamp  uint64

	// front, when non-nil, switches fetch into batch-replay mode: the
	// instruction stream and predictor outcomes come from the shared
	// precomputed records (see front.go) instead of Gen/Pred, and the
	// recorded predictor-stat deltas accumulate in BP. frontPos is this
	// lane's read position. Both are zeroed by build(), so Recycle always
	// returns a live-mode core.
	front    *Front
	frontPos int

	// BP mirrors bpred.Stats for a replaying core. On the live path the
	// predictor itself counts; in replay mode the shared predictor ran once
	// during Fill, so each lane reconstructs its own per-run stats from the
	// recorded delta bits. ResetStats zeroes it alongside Stats, matching
	// the scalar path's pred.ResetStats() at the warmup boundary.
	BP bpred.Stats
}

// wheelSize is the wake wheel's span in cycles (power of two). Latencies
// longer than a lap are handled by re-filing on pop, so the size only
// trades memory against the rare-lap cost.
const wheelSize = 1024

// icTickMode classifies the I-cache's Tick behaviour.
type icTickMode uint8

const (
	icTickNone  icTickMode = iota // plain cache.Cache: Tick is a no-op, never call
	icTickEvent                   // TickEventer: call only at scheduled events
	icTickEvery                   // unknown implementation: call every cycle
)

// New builds a core over the given workload and hierarchy.
func New(cfg Config, gen InstrSource, pred *bpred.Predictor, ic FetchCache, dc *leakctl.DCache) *Core {
	return build(cfg, gen, pred, ic, dc, nil)
}

// Recycle rebuilds old into exactly the state New(cfg, ...) would return,
// reusing its backing arrays (ring arrays, ready lists, bitmaps) when the
// configuration matches. It lets a sweep worker amortize the core's
// allocations across many runs; a nil or mismatched old simply falls back
// to a fresh core.
func Recycle(old *Core, cfg Config, gen InstrSource, pred *bpred.Predictor, ic FetchCache, dc *leakctl.DCache) *Core {
	if old == nil || old.Cfg != cfg {
		old = nil
	}
	return build(cfg, gen, pred, ic, dc, old)
}

// build is the shared constructor behind New and Recycle. With a non-nil
// old (same Config, so identical array geometry) the backing arrays are
// cleared and reused; clear() reproduces make()'s zero state, and the
// struct literal assignment below resets every scalar field (including the
// fixed-size wake wheel) the same way, so both paths leave the core
// bit-identical.
func build(cfg Config, gen InstrSource, pred *bpred.Predictor, ic FetchCache, dc *leakctl.DCache, old *Core) *Core {
	// Ring capacity: the in-flight window (RUUSize) plus the maximum
	// fetched-but-undispatched backlog (fetch adds up to FetchWidth while
	// the backlog is below 2*FetchWidth), rounded up to a power of two.
	ringLen := 1
	for ringLen < cfg.RUUSize+3*cfg.FetchWidth {
		ringLen <<= 1
	}
	c := old
	if c == nil {
		c = &Core{
			src1:    make([]uint64, ringLen),
			src2:    make([]uint64, ringLen),
			addr:    make([]uint64, ringLen),
			readyAt: make([]uint64, ringLen),
			link:    make([]uint64, ringLen),
			waiters: make([]uint64, ringLen),
			ops:     make([]workload.OpClass, ringLen),
			rdy:     make([]uint64, ringLen),
			nextRdy: make([]uint64, ringLen),
			unb:     make([]uint64, (ringLen+63)/64),
			done:    make([]uint64, ringLen),
			wakeBuf: make([]uint64, ringLen),
		}
		if cfg.MSHRs > 0 {
			c.mshrBusy = make([]uint64, cfg.MSHRs)
		}
	} else {
		clear(c.src1)
		clear(c.src2)
		clear(c.addr)
		clear(c.readyAt)
		clear(c.link)
		clear(c.waiters)
		clear(c.ops)
		clear(c.rdy)
		clear(c.nextRdy)
		clear(c.unb)
		clear(c.done)
		clear(c.wakeBuf)
		clear(c.mshrBusy)
	}
	src1, src2, addr, readyAt, link, waiters, ops :=
		c.src1, c.src2, c.addr, c.readyAt, c.link, c.waiters, c.ops
	rdy, nextRdy, unb, done, wakeBuf, mshr :=
		c.rdy, c.nextRdy, c.unb, c.done, c.wakeBuf, c.mshrBusy
	*c = Core{
		Cfg:           cfg,
		Gen:           gen,
		Pred:          pred,
		ICache:        ic,
		DCache:        dc,
		src1:          src1,
		src2:          src2,
		addr:          addr,
		readyAt:       readyAt,
		link:          link,
		waiters:       waiters,
		ops:           ops,
		ringMask:      uint64(ringLen - 1),
		rdy:           rdy,
		nextRdy:       nextRdy,
		unb:           unb,
		done:          done,
		wakeBuf:       wakeBuf,
		mshrBusy:      mshr,
		nextSeq:       1,
		head:          1,
		tail:          1,
		lastFetchLine: ^uint64(0),
	}
	switch ic.(type) {
	case *cache.Cache:
		c.icTick = icTickNone // documented no-op Tick: skip the dispatch
	case TickEventer:
		c.icTick = icTickEvent
	default:
		c.icTick = icTickEvery
	}
	c.genFast, _ = gen.(*workload.Generator)
	return c
}

// readyTime returns the earliest cycle at which producer seq's value is
// available, and whether that time is known yet (false while the producer
// sits in the window un-issued). For a known producer the result never
// changes afterwards: the completion time is fixed at issue, and a
// producer that later commits was by definition done at commit time.
// Producers are always strictly older than their consumer, so no caller
// can pass one at or past the tail.
func readyTime(done []uint64, mask, head, producer uint64) (uint64, bool) {
	if producer == 0 || producer < head {
		return 0, true // no dependence, or already committed
	}
	d := done[producer&mask]
	if d == notIssued {
		return 0, false
	}
	return d >> 1, true
}

// popRange counts un-issued entries in ring slots [a, b), a <= b.
func (c *Core) popRange(a, b uint64) int {
	unb := c.unb
	wa, wb := a>>6, b>>6
	_ = unb[wb] // hoist the bounds check off the loop below (wb is the largest index)
	loMask := ^(uint64(1)<<(a&63) - 1)
	hiMask := uint64(1)<<(b&63) - 1
	if wa == wb {
		return bits.OnesCount64(unb[wa] & loMask & hiMask)
	}
	t := bits.OnesCount64(unb[wa] & loMask)
	for w := wa + 1; w < wb; w++ {
		t += bits.OnesCount64(unb[w])
	}
	return t + bits.OnesCount64(unb[wb]&hiMask)
}

// rank counts un-issued entries older than seq — the zero-based position
// the reference scan would examine seq at. The window never wraps more
// than once around the ring, so age order is ring order starting at head's
// slot.
func (c *Core) rank(seq uint64) int {
	hs := c.head & c.ringMask
	ss := seq & c.ringMask
	if ss >= hs {
		return c.popRange(hs, ss)
	}
	return c.unissued - c.popRange(ss, hs)
}

// rdyInsert files seq into the ready list, keeping it sorted oldest-first.
// The list is small (bounded by issue throughput), so an insertion shift
// beats any heap.
func (c *Core) rdyInsert(seq uint64) {
	r := c.rdy
	i := c.rdyLen
	c.rdyLen = i + 1
	for i > 0 && r[i-1] > seq {
		r[i] = r[i-1]
		i--
	}
	r[i] = seq
}

// wheelInsert files seq to wake at cycle at.
func (c *Core) wheelInsert(seq, at uint64) {
	i := at & (wheelSize - 1)
	c.link[seq&c.ringMask] = c.wheel[i]
	c.wheel[i] = seq
	c.wheelCount++
}

// popWheel drains the fast lane and the current cycle's wheel slot into the
// ready list, re-filing wheel entries whose readyAt is a whole lap (or
// more) away.
func (c *Core) popWheel() {
	if nl := c.nextRdyLen; nl > 0 {
		// Everything in the fast lane was filed last cycle for exactly
		// this one; no readyAt check needed.
		for _, s := range c.nextRdy[:nl] {
			c.rdyInsert(s)
		}
		c.nextRdyLen = 0
	}
	if c.wheelCount == 0 {
		return
	}
	wi := c.now & (wheelSize - 1)
	s := c.wheel[wi]
	if s == 0 {
		return
	}
	c.wheel[wi] = 0
	link := c.link
	readyAt := c.readyAt
	mask := c.ringMask
	for s != 0 {
		i := s & mask
		nxt := link[i]
		link[i] = 0
		if readyAt[i] == c.now {
			c.rdyInsert(s)
			c.wheelCount--
		} else {
			// A later lap: keep it in the same slot (readyAt is
			// congruent to this cycle modulo the wheel size).
			link[i] = c.wheel[wi]
			c.wheel[wi] = s
		}
		s = nxt
	}
}

// Scheduling — deriving an entry's ready time if both producers have
// issued and filing it into the ready list / fast lane / wheel, or parking
// it on the first still-unknown producer's waiter chain — is inlined at
// its two call sites (dispatch and wakeWaiters) to reuse their loop
// locals; an already-ready entry goes straight to the ready list, becoming
// examinable next cycle, exactly when the reference scan would first see
// it ready.

// wakeWaiters re-schedules every entry that was waiting on the producer in
// slot ps, which has just issued at cycle. Each either files into the wheel
// (its ready time, at least the producer's completion, is now known and
// strictly in the future) or moves to its other, still-unknown producer's
// chain.
//
// Dispatch parks LIFO, so the chain runs youngest-first; the chain is
// buffered and processed in reverse so wakes happen oldest-first. Only
// the cost changes: every woken entry reaches the sorted ready list
// eventually, and an ascending wake order means the eventual insertions
// are appends instead of shifts. Park order on a further producer's chain
// changes too, but that again only permutes a future wake batch.
func (c *Core) wakeWaiters(ps uint64, cycle uint64) {
	link := c.link
	mask := c.ringMask
	buf := c.wakeBuf
	n := 0
	for s := c.waiters[ps]; s != 0; {
		i := s & mask
		buf[n] = s
		n++
		nxt := link[i]
		link[i] = 0
		s = nxt
	}
	c.waiters[ps] = 0
	done := c.done
	head := c.head
	src1, src2 := c.src1, c.src2
	for i := n - 1; i >= 0; i-- {
		// schedule(buf[i], cycle), inlined to reuse the loop's locals —
		// the call per woken entry was a measurable share of the wake
		// path (see the matching inline in dispatch).
		seq := buf[i]
		s := seq & mask
		if t1, known := readyTime(done, mask, head, src1[s]); !known {
			p := src1[s] & mask
			link[s] = c.waiters[p]
			c.waiters[p] = seq
		} else if t2, known := readyTime(done, mask, head, src2[s]); !known {
			p := src2[s] & mask
			link[s] = c.waiters[p]
			c.waiters[p] = seq
		} else {
			if t2 > t1 {
				t1 = t2
			}
			if t1 == 0 {
				t1 = 1 // ready since dispatch; cycles start at 1
			}
			c.readyAt[s] = t1
			switch {
			case t1 <= cycle:
				c.rdyInsert(seq)
			case t1 == cycle+1:
				c.nextRdy[c.nextRdyLen] = seq
				c.nextRdyLen++
			default:
				c.wheelInsert(seq, t1)
			}
		}
	}
}

// Run simulates until n further instructions commit (beyond whatever has
// already committed) and returns the cumulative statistics. Machine state —
// caches, predictor, in-flight window — persists across calls, which is how
// the harness implements warmup: Run(warmup), ResetStats, Run(measure).
//
// The loop body exists twice: the plain path, and a sampled path (1 cycle
// in 1024, selected deterministically by the cycle counter) that wraps
// each stage in wall-clock timing for the per-stage ns attribution in
// /metrics. The two bodies perform the identical sequence of stage calls —
// keep them in sync — so sampling cannot perturb simulation results; the
// golden-fixture tests cover both paths, since cycle counts in the
// thousands always cross sampled cycles.
func (c *Core) Run(n uint64) Stats {
	target := c.Stats.Instructions + n
	start := c.now
	// Re-derive the cached tick schedules on entry: an adapter may have
	// been installed or an interval reprogrammed since the last call.
	// Forcing a Tick on the first cycle is harmless — the reference loop
	// ticks every cycle anyway.
	c.dcNext = 0
	c.icNext = 0
	for c.Stats.Instructions < target {
		c.now++
		if c.now&stageSampleMask == 0 {
			c.stepTimed()
			continue
		}
		if c.now >= c.dcNext {
			c.DCache.Tick(c.now)
			c.dcNext = c.DCache.NextTickEvent()
		}
		switch c.icTick {
		case icTickEvent:
			if c.now >= c.icNext {
				c.ICache.Tick(c.now)
				c.icNext = c.ICache.(TickEventer).NextTickEvent()
			}
		case icTickEvery:
			c.ICache.Tick(c.now)
		}
		c.fuBlocked = false
		// The pop/issue/dispatch calls are guarded by their cheapest
		// emptiness conditions so quiet stages cost a compare, not a
		// call. A skipped stage contributes no activity, exactly as its
		// empty-handed call would.
		if c.wheelCount != 0 || c.nextRdyLen != 0 {
			c.popWheel()
		}
		active := c.commit(c.now)
		if c.rdyLen != 0 && c.issue(c.now) {
			active = true
		}
		if c.tail != c.nextSeq && c.dispatch(c.now) {
			active = true
		}
		if c.fetch(c.now) {
			active = true
		}
		if !active && !c.fuBlocked && !c.DisableFastForward && c.icTick != icTickEvery {
			c.fastForward()
		}
	}
	c.Stats.Cycles += c.now - start
	return c.Stats
}

// stepTimed is one sampled cycle of Run's loop: the same stage sequence,
// with each stage's wall-clock duration accumulated into stageNS.
func (c *Core) stepTimed() {
	c.stageSampled++
	t := time.Now()
	if c.now >= c.dcNext {
		c.DCache.Tick(c.now)
		c.dcNext = c.DCache.NextTickEvent()
	}
	switch c.icTick {
	case icTickEvent:
		if c.now >= c.icNext {
			c.ICache.Tick(c.now)
			c.icNext = c.ICache.(TickEventer).NextTickEvent()
		}
	case icTickEvery:
		c.ICache.Tick(c.now)
	}
	c.stageNS[stageTick] += uint64(time.Since(t))
	c.fuBlocked = false
	t = time.Now()
	if c.wheelCount != 0 || c.nextRdyLen != 0 {
		c.popWheel()
	}
	active := c.commit(c.now)
	c.stageNS[stageCommit] += uint64(time.Since(t))
	t = time.Now()
	if c.rdyLen != 0 && c.issue(c.now) {
		active = true
	}
	c.stageNS[stageIssue] += uint64(time.Since(t))
	t = time.Now()
	if c.tail != c.nextSeq && c.dispatch(c.now) {
		active = true
	}
	c.stageNS[stageDispatch] += uint64(time.Since(t))
	t = time.Now()
	if c.fetch(c.now) {
		active = true
	}
	c.stageNS[stageFetch] += uint64(time.Since(t))
	if !active && !c.fuBlocked && !c.DisableFastForward && c.icTick != icTickEvery {
		c.fastForward()
	}
}

// fastForward runs at the end of a provably idle cycle: nothing committed,
// issued, dispatched or fetched, and no ready instruction was denied a
// functional unit. Until the earliest scheduled event — an in-flight
// instruction completing, the fetch stall ending, an MSHR freeing, a decay
// rollover or an adapter consultation — every following cycle repeats the
// idle cycle exactly, so the core jumps to the cycle before that event and
// books the skipped fetch-stall cycles in bulk.
//
// The invariant that makes the jump bit-identical: instruction readiness,
// commit eligibility and MSHR occupancy change only at recorded doneAt
// times; fetch blockage changes only at fetchStall, at a branch issuing
// (an active cycle), or at dispatch draining the backlog (idle ⇒ none);
// and the decay machines do nothing between their scheduled rollovers and
// adapter consultations, which both caches expose via NextTickEvent.
func (c *Core) fastForward() {
	next := c.dcNext
	if c.icTick == icTickEvent && c.icNext < next {
		next = c.icNext
	}
	if c.fetchStall > c.now && c.fetchStall < next {
		next = c.fetchStall
	}
	done := c.done
	mask := c.ringMask
	for seq := c.head; seq < c.tail; seq++ {
		d := done[seq&mask]
		if d == notIssued {
			continue
		}
		if t := d >> 1; t > c.now && t < next {
			next = t
		}
	}
	for _, done := range c.mshrBusy[:c.mshrLen] {
		if done > c.now && done < next {
			next = done
		}
	}
	if next == never || next <= c.now+1 {
		return // nothing scheduled, or the event is next cycle anyway
	}
	skipped := next - c.now - 1
	// Each skipped cycle would have run fetch and found it stalled under
	// the same condition as this cycle (the stall cause cannot clear
	// inside the region: next <= fetchStall whenever fetchStall is the
	// binding cause, and a pending branch resolves only on active
	// cycles). A full fetch backlog does not count as a stall, matching
	// the reference loop.
	if c.pendingBranch != 0 || c.now < c.fetchStall {
		c.Stats.FetchStallCy += skipped
	}
	c.now = next - 1
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// ResetStats zeroes the core's counters (not its architectural state) so a
// measurement phase can follow a warmup phase.
func (c *Core) ResetStats() { c.Stats, c.obsPrev, c.BP = Stats{}, Stats{}, bpred.Stats{} }

// commit retires up to CommitWidth oldest completed entries in order and
// reports whether anything retired.
func (c *Core) commit(cycle uint64) bool {
	done := c.done
	mask := c.ringMask
	head := c.head
	lim := uint64(c.Cfg.CommitWidth)
	if left := c.tail - head; left < lim {
		lim = left
	}
	n := uint64(0)
	lsq := 0
	for n < lim {
		d := done[head&mask]
		if d == notIssued || d>>1 > cycle {
			break
		}
		lsq += int(d & 1)
		head++
		n++
	}
	c.lsqUsed -= lsq
	if n == 0 {
		return false
	}
	c.head = head
	c.Stats.Instructions += n
	return true
}

// issue selects ready un-issued entries oldest-first, bounded by issue
// width, FU availability and the scan limit, and reports whether anything
// issued. The walk covers the ready list — exactly the entries the
// reference scan finds ready, in the same age order — and the ScanLimit
// cutoff is applied through each entry's rank among all un-issued
// entries, which is the position the reference scan would examine it at.
// Ready entries denied a unit set fuBlocked, which vetoes fast-forwarding
// (the structural hazard clears on its own next cycle).
func (c *Core) issue(cycle uint64) bool {
	rdy := c.rdy
	n := c.rdyLen
	if n == 0 {
		return false
	}
	fuCnt := [numFU]int{c.Cfg.IntALUs, c.Cfg.IntMulDivs, c.Cfg.FPALUs, c.Cfg.FPMulDivs, c.Cfg.MemPorts}
	issued := 0
	mask := c.ringMask
	ops := c.ops
	addr := c.addr
	width, scanLim := c.Cfg.IssueWidth, c.Cfg.ScanLimit
	mshrCap := c.Cfg.MSHRs
	hitLat := uint64(c.DCache.Cfg.HitLatency)
	// Ranks only need checking when the un-issued population can exceed
	// the scan limit at all. Entries issued during this walk are removed
	// from the bitmap, deflating later ranks by exactly the issued
	// count k (they are all older), so k is added back: the reference
	// scan's positions are fixed at the start of its cycle.
	checkRank := c.unissued > scanLim
	i, k := 0, 0
	head := c.head
	for ; i < n && issued < width; i++ {
		seq := rdy[i]
		// rank(seq)+k counts un-issued entries older than seq as of the
		// cycle start, which is at most seq-head: the subtract rules out
		// a cutoff without touching the bitmap for the common near-head
		// entries.
		if checkRank && seq-head >= uint64(scanLim) && c.rank(seq)+k >= scanLim {
			// Beyond the scan horizon; so is everything younger.
			break
		}
		s := seq & mask
		ok := false
		var lat uint64
		op := ops[s] & 15
		cls := fuClassTab[op]
		switch {
		case fuCnt[cls] == 0:
			c.fuBlocked = true
		case cls != fuMem:
			fuCnt[cls]--
			lat = latTab[op]
			ok = true
		case op == workload.OpLoad:
			if mshrCap > 0 && !c.mshrAvailable(cycle) {
				// All miss slots busy; their release times are
				// events, so no fuBlocked veto.
			} else {
				fuCnt[fuMem]--
				c.Stats.Loads++
				lat = uint64(c.DCache.Access(addr[s], false, cycle))
				if lat > hitLat && mshrCap > 0 {
					c.mshrBusy[c.mshrLen] = cycle + lat
					c.mshrLen++
				}
				ok = true
			}
		default: // store
			fuCnt[fuMem]--
			c.Stats.Stores++
			// Store data is buffered; dependents don't wait on
			// the array write. The access happens now for cache
			// state and energy.
			c.DCache.Access(addr[s], true, cycle)
			lat = 1
			ok = true
		}
		if !ok {
			// Denied a unit or a miss slot: stays ready, retried next
			// cycle. Shift down past the entries issued so far.
			if k > 0 {
				rdy[i-k] = seq
			}
			continue
		}
		d := (cycle + lat) << 1
		if cls == fuMem {
			d |= 1
		}
		c.done[s] = d
		c.unb[s>>6] &^= 1 << (s & 63)
		c.unissued--
		issued++
		k++
		if c.waiters[s] != 0 {
			c.wakeWaiters(s, cycle)
		}
	}
	if k > 0 {
		copy(rdy[i-k:], rdy[i:n])
		c.rdyLen = n - k
	}
	return issued > 0
}

// mshrAvailable reports whether a miss slot is free, reaping completed
// slots only when the list is at capacity. Deferring the reap cannot change
// the verdict — a list below capacity has a free slot regardless — and the
// stale completion times it leaves behind are skipped by both the reap and
// the fast-forward scan (done <= now).
func (c *Core) mshrAvailable(cycle uint64) bool {
	if c.mshrLen < c.Cfg.MSHRs {
		return true
	}
	busy := c.mshrBusy[:c.mshrLen]
	n := 0
	for _, done := range busy {
		if done > cycle {
			busy[n] = done
			n++
		}
	}
	c.mshrLen = n
	return n < c.Cfg.MSHRs
}

// dispatch moves fetched instructions — already decoded into their ring
// slots by fetch — into the RUU/LSQ window, registers each with the
// event-driven scheduler, and reports whether anything moved. The pending
// backlog is the seq interval [tail, nextSeq).
func (c *Core) dispatch(cycle uint64) bool {
	moved := false
	head, ruuSize := c.head, uint64(c.Cfg.RUUSize)
	lsqSize := c.Cfg.LSQSize
	done := c.done
	mask := c.ringMask
	src1, src2 := c.src1, c.src2
	tail, end := c.tail, c.nextSeq
	for w := 0; w < c.Cfg.DecodeWidth && tail < end; w++ {
		if tail-head >= ruuSize {
			break
		}
		seq := tail
		s := seq & mask
		isMem := c.ops[s].IsMem()
		if isMem && c.lsqUsed >= lsqSize {
			break
		}
		if isMem {
			c.lsqUsed++
		}
		tail = seq + 1
		done[s] = notIssued
		c.unb[s>>6] |= 1 << (s & 63)
		c.unissued++
		// schedule(seq, cycle), inlined to reuse the loop's locals —
		// the per-instruction call was a measurable share of dispatch.
		// readyAt/link are always written before their next read (at
		// scheduling and wheel/waiter filing respectively), and waiters
		// is invariantly zero on a recycled slot — the previous
		// occupant's chain was drained when it issued.
		if t1, known := readyTime(done, mask, head, src1[s]); !known {
			ps := src1[s] & mask
			c.link[s] = c.waiters[ps]
			c.waiters[ps] = seq
		} else if t2, known := readyTime(done, mask, head, src2[s]); !known {
			ps := src2[s] & mask
			c.link[s] = c.waiters[ps]
			c.waiters[ps] = seq
		} else {
			if t2 > t1 {
				t1 = t2
			}
			if t1 == 0 {
				t1 = 1 // ready since dispatch; cycles start at 1
			}
			c.readyAt[s] = t1
			switch {
			case t1 <= cycle:
				c.rdyInsert(seq)
			case t1 == cycle+1:
				c.nextRdy[c.nextRdyLen] = seq
				c.nextRdyLen++
			default:
				c.wheelInsert(seq, t1)
			}
		}
		moved = true
	}
	c.tail = tail
	return moved
}

// fetch brings up to FetchWidth instructions into the pending backlog,
// decoding each straight into its ring slot (producer distances converted
// to absolute seqs here, since the slot and seq are fixed at fetch time),
// modelling I-cache misses and branch-predictor redirects, and reports
// whether any instruction was fetched. Stall bookkeeping alone does not
// count as activity — the fast-forward replays it in bulk.
func (c *Core) fetch(cycle uint64) bool {
	if c.front != nil {
		return c.fetchReplay(cycle)
	}
	if c.pendingBranch != 0 {
		// Waiting on a mispredicted branch. Once it has issued, its
		// resolution time is known and fetch can be scheduled.
		if c.pendingBranch < c.tail {
			if d := c.done[c.pendingBranch&c.ringMask]; d != notIssued {
				c.fetchStall = d>>1 + uint64(c.Cfg.MispredictPen)
				c.pendingBranch = 0
			}
		}
		if c.pendingBranch != 0 {
			c.Stats.FetchStallCy++
			return false
		}
	}
	if cycle < c.fetchStall {
		c.Stats.FetchStallCy++
		return false
	}
	if c.nextSeq-c.tail >= uint64(2*c.Cfg.FetchWidth) {
		return false
	}
	mask := c.ringMask
	ins := &c.scratch
	for w := 0; w < c.Cfg.FetchWidth; w++ {
		// Generate into the long-lived scratch slot: Gen.Next overwrites
		// every Instr field on all paths, so no stale state leaks through.
		if g := c.genFast; g != nil {
			g.Next(ins)
		} else {
			c.Gen.Next(ins)
		}
		seq := c.nextSeq
		c.nextSeq = seq + 1
		s := seq & mask
		if d := uint64(uint32(ins.Src1)); d != 0 && seq > d {
			c.src1[s] = seq - d
		} else {
			c.src1[s] = 0
		}
		if d := uint64(uint32(ins.Src2)); d != 0 && seq > d {
			c.src2[s] = seq - d
		} else {
			c.src2[s] = 0
		}
		c.addr[s] = ins.Addr
		c.ops[s] = ins.Op

		stop := false

		// I-cache: one access per new line in the fetch stream.
		if line := ins.PC >> 6; line != c.lastFetchLine {
			c.lastFetchLine = line
			if lat := c.ICache.Access(ins.PC, false, cycle); lat > c.ICache.HitLat() {
				c.Stats.ICacheStalls++
				c.fetchStall = cycle + uint64(lat)
				stop = true
			}
		}

		if ins.Op.IsCTI() {
			c.Stats.Branches++
			misp, bubble := predictCTI(c.Pred, ins)
			if misp {
				c.Stats.Mispredicts++
				c.pendingBranch = seq
				return true
			}
			if bubble {
				// Right direction, target from decode: short
				// front-end bubble.
				c.fetchStall = cycle + 2
				return true
			}
			if ins.Taken {
				// Correct taken prediction: redirected fetch
				// continues next cycle.
				return true
			}
		}
		if stop {
			return true
		}
	}
	return true
}

// predictCTI runs the predictor for a control transfer. mispredict means a
// wrong-path flush; bubble means a decode-supplied target (short stall).
// Package-level so the batch front end (front.go) drives the identical
// logic through the group's shared predictor.
func predictCTI(p *bpred.Predictor, ins *workload.Instr) (mispredict, bubble bool) {
	switch ins.Op {
	case workload.OpBranch:
		pr := p.Lookup(ins.PC)
		return p.Update(ins.PC, pr, ins.Taken, ins.Target)
	case workload.OpCall:
		// Direct call: target known at decode; train the BTB and RAS.
		p.PushRAS(ins.PC + 4)
		pr := p.Lookup(ins.PC)
		p.Update(ins.PC, pr, true, ins.Target)
		return false, !pr.BTBHit
	case workload.OpReturn:
		// Return: mispredicted iff the RAS is wrong.
		return p.PopRAS() != ins.Target, false
	default: // OpJump: direct, decoded target
		return false, true
	}
}
