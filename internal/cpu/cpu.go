// Package cpu is the execution-timing substrate: a simplified 4-wide
// out-of-order machine in the sim-outorder tradition, configured per the
// paper's Table 2 (80-entry RUU, 40-entry LSQ, the 21264-like FU mix,
// hybrid branch predictor with a 1K-entry 2-way BTB, 64 KB 2-way L1s, a
// unified 2 MB L2 and 100-cycle memory).
//
// The model exists to reproduce the first-order effect the paper's argument
// rests on: an aggressive out-of-order window overlaps independent work
// with outstanding misses, so "modest L2 access latencies for induced
// misses can be tolerated". Instructions come from a workload generator;
// wrong-path execution is approximated by stalling fetch from a
// mispredicted branch until it resolves (standard trace-driven treatment).
package cpu

import (
	"fmt"

	"hotleakage/internal/bpred"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// Config sizes the core.
type Config struct {
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int
	RUUSize     int
	LSQSize     int
	IntALUs     int
	IntMulDivs  int
	FPALUs      int
	FPMulDivs   int
	MemPorts    int
	// MSHRs bounds the number of outstanding L1 D-cache misses; a load
	// that needs a miss slot when all are busy waits (0 = unlimited).
	MSHRs int
	// MispredictPen is the front-end refill penalty added after a
	// mispredicted branch resolves.
	MispredictPen int
	// ScanLimit caps how many un-issued RUU entries the scheduler
	// examines per cycle (a real scheduler's select logic is similarly
	// bounded).
	ScanLimit int
}

// DefaultConfig is the paper's Table 2 machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    4,
		DecodeWidth:   4,
		IssueWidth:    4,
		CommitWidth:   4,
		RUUSize:       80,
		LSQSize:       40,
		IntALUs:       4,
		IntMulDivs:    1,
		FPALUs:        2,
		FPMulDivs:     1,
		MemPorts:      2,
		MSHRs:         8,
		MispredictPen: 3,
		ScanLimit:     32,
	}
}

// Validate rejects degenerate core configurations (zero-wide pipelines,
// empty windows) that would deadlock or never commit an instruction.
func (c Config) Validate() error {
	if c.FetchWidth < 1 || c.DecodeWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1 {
		return fmt.Errorf("cpu: pipeline widths must be >= 1 (fetch %d, decode %d, issue %d, commit %d)",
			c.FetchWidth, c.DecodeWidth, c.IssueWidth, c.CommitWidth)
	}
	if c.RUUSize < 1 || c.LSQSize < 1 {
		return fmt.Errorf("cpu: window sizes must be >= 1 (RUU %d, LSQ %d)", c.RUUSize, c.LSQSize)
	}
	if c.IntALUs < 1 || c.MemPorts < 1 {
		return fmt.Errorf("cpu: need at least one integer ALU and one memory port (ALUs %d, ports %d)", c.IntALUs, c.MemPorts)
	}
	if c.MSHRs < 0 || c.MispredictPen < 0 || c.ScanLimit < 0 {
		return fmt.Errorf("cpu: negative MSHRs/penalty/scan limit")
	}
	return nil
}

// opLatency returns the execution latency of a non-memory op.
func opLatency(op workload.OpClass) uint64 {
	switch op {
	case workload.OpIntMul:
		return 4
	case workload.OpFPALU:
		return 2
	case workload.OpFPMul:
		return 4
	default:
		return 1
	}
}

// Stats is the core's run summary.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	FetchStallCy uint64
	ICacheStalls uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

type entry struct {
	op     workload.OpClass
	src1   uint64 // producer seq (0 = none; seqs start at 1)
	src2   uint64
	addr   uint64
	issued bool
	doneAt uint64
}

type fetched struct {
	ins workload.Instr
	seq uint64
}

// InstrSource supplies the instruction stream: a live workload.Generator or
// a recorded trace (package trace) replayed from disk.
type InstrSource interface {
	Next(*workload.Instr)
}

// FetchCache is the instruction-cache contract: a plain cache.Cache or a
// leakage-controlled leakctl.DCache both satisfy it, which is how the
// I-cache leakage-control extension plugs in.
type FetchCache interface {
	Access(addr uint64, write bool, cycle uint64) int
	HitLat() int
	Tick(cycle uint64)
}

// Core wires the generator, predictor and memory hierarchy together.
type Core struct {
	Cfg    Config
	Gen    InstrSource
	Pred   *bpred.Predictor
	ICache FetchCache
	DCache *leakctl.DCache
	Stats  Stats

	ring    []entry
	head    uint64 // oldest in-flight seq
	tail    uint64 // one past the youngest dispatched seq
	lsqUsed int
	// mshrFree holds the completion times of outstanding D-cache misses.
	mshrBusy []uint64

	fetchBuf      []fetched
	fetchStall    uint64 // first cycle fetch may run again
	pendingBranch uint64 // seq of an unresolved mispredicted branch (0 = none)
	lastFetchLine uint64

	nextSeq uint64
	now     uint64 // global cycle counter, persists across Run calls
}

// New builds a core over the given workload and hierarchy.
func New(cfg Config, gen InstrSource, pred *bpred.Predictor, ic FetchCache, dc *leakctl.DCache) *Core {
	return &Core{
		Cfg:           cfg,
		Gen:           gen,
		Pred:          pred,
		ICache:        ic,
		DCache:        dc,
		ring:          make([]entry, cfg.RUUSize),
		nextSeq:       1,
		head:          1,
		tail:          1,
		lastFetchLine: ^uint64(0),
	}
}

// slot maps a sequence number to its ring entry.
func (c *Core) slot(seq uint64) *entry {
	return &c.ring[seq%uint64(len(c.ring))]
}

// ready reports whether producer seq's value is available at cycle.
func (c *Core) ready(producer, cycle uint64) bool {
	if producer == 0 || producer < c.head {
		return true // no dependence, or producer already committed
	}
	if producer >= c.tail {
		return true // dependence ran off the generated window (free)
	}
	e := c.slot(producer)
	return e.issued && e.doneAt <= cycle
}

// Run simulates until n further instructions commit (beyond whatever has
// already committed) and returns the cumulative statistics. Machine state —
// caches, predictor, in-flight window — persists across calls, which is how
// the harness implements warmup: Run(warmup), ResetStats, Run(measure).
func (c *Core) Run(n uint64) Stats {
	target := c.Stats.Instructions + n
	start := c.now
	for c.Stats.Instructions < target {
		c.now++
		c.DCache.Tick(c.now)
		c.ICache.Tick(c.now)
		c.commit(c.now)
		c.issue(c.now)
		c.dispatch(c.now)
		c.fetch(c.now)
	}
	c.Stats.Cycles += c.now - start
	return c.Stats
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// ResetStats zeroes the core's counters (not its architectural state) so a
// measurement phase can follow a warmup phase.
func (c *Core) ResetStats() { c.Stats = Stats{} }

// commit retires up to CommitWidth oldest completed entries in order.
func (c *Core) commit(cycle uint64) {
	for w := 0; w < c.Cfg.CommitWidth && c.head < c.tail; w++ {
		e := c.slot(c.head)
		if !e.issued || e.doneAt > cycle {
			return
		}
		if e.op.IsMem() {
			c.lsqUsed--
		}
		c.head++
		c.Stats.Instructions++
	}
}

// issue selects ready un-issued entries oldest-first, bounded by issue
// width, FU availability and the scan limit.
func (c *Core) issue(cycle uint64) {
	ialu, imul, fpalu, fpmul, mem := c.Cfg.IntALUs, c.Cfg.IntMulDivs, c.Cfg.FPALUs, c.Cfg.FPMulDivs, c.Cfg.MemPorts
	issued, scanned := 0, 0
	for seq := c.head; seq < c.tail && issued < c.Cfg.IssueWidth && scanned < c.Cfg.ScanLimit; seq++ {
		e := c.slot(seq)
		if e.issued {
			continue
		}
		scanned++
		if !c.ready(e.src1, cycle) || !c.ready(e.src2, cycle) {
			continue
		}
		var lat uint64
		switch e.op {
		case workload.OpLoad:
			if mem == 0 {
				continue
			}
			if c.Cfg.MSHRs > 0 && !c.mshrAvailable(cycle) {
				continue // all miss slots busy; retry next cycle
			}
			mem--
			c.Stats.Loads++
			lat = uint64(c.DCache.Access(e.addr, false, cycle))
			if lat > uint64(c.DCache.Cfg.HitLatency) && c.Cfg.MSHRs > 0 {
				c.mshrBusy = append(c.mshrBusy, cycle+lat)
			}
		case workload.OpStore:
			if mem == 0 {
				continue
			}
			mem--
			c.Stats.Stores++
			// Store data is buffered; dependents don't wait on
			// the array write. The access happens now for cache
			// state and energy.
			c.DCache.Access(e.addr, true, cycle)
			lat = 1
		case workload.OpIntMul:
			if imul == 0 {
				continue
			}
			imul--
			lat = opLatency(e.op)
		case workload.OpFPALU:
			if fpalu == 0 {
				continue
			}
			fpalu--
			lat = opLatency(e.op)
		case workload.OpFPMul:
			if fpmul == 0 {
				continue
			}
			fpmul--
			lat = opLatency(e.op)
		default:
			if ialu == 0 {
				continue
			}
			ialu--
			lat = opLatency(e.op)
		}
		e.issued = true
		e.doneAt = cycle + lat
		issued++
	}
}

// mshrAvailable reaps completed miss slots and reports whether one is free.
func (c *Core) mshrAvailable(cycle uint64) bool {
	live := c.mshrBusy[:0]
	for _, done := range c.mshrBusy {
		if done > cycle {
			live = append(live, done)
		}
	}
	c.mshrBusy = live
	return len(c.mshrBusy) < c.Cfg.MSHRs
}

// dispatch moves fetched instructions into the RUU/LSQ.
func (c *Core) dispatch(cycle uint64) {
	for w := 0; w < c.Cfg.DecodeWidth && len(c.fetchBuf) > 0; w++ {
		if c.tail-c.head >= uint64(c.Cfg.RUUSize) {
			return
		}
		f := c.fetchBuf[0]
		if f.ins.Op.IsMem() && c.lsqUsed >= c.Cfg.LSQSize {
			return
		}
		c.fetchBuf = c.fetchBuf[1:]
		e := c.slot(f.seq)
		*e = entry{op: f.ins.Op, addr: f.ins.Addr}
		if d := uint64(uint32(f.ins.Src1)); d != 0 && f.seq > d {
			e.src1 = f.seq - d
		}
		if d := uint64(uint32(f.ins.Src2)); d != 0 && f.seq > d {
			e.src2 = f.seq - d
		}
		if f.ins.Op.IsMem() {
			c.lsqUsed++
		}
		c.tail = f.seq + 1
	}
}

// fetch brings up to FetchWidth instructions into the fetch buffer,
// modelling I-cache misses and branch-predictor redirects.
func (c *Core) fetch(cycle uint64) {
	if c.pendingBranch != 0 {
		// Waiting on a mispredicted branch. Once it has issued, its
		// resolution time is known and fetch can be scheduled.
		if c.pendingBranch < c.tail {
			if e := c.slot(c.pendingBranch); e.issued {
				c.fetchStall = e.doneAt + uint64(c.Cfg.MispredictPen)
				c.pendingBranch = 0
			}
		}
		if c.pendingBranch != 0 {
			c.Stats.FetchStallCy++
			return
		}
	}
	if cycle < c.fetchStall {
		c.Stats.FetchStallCy++
		return
	}
	if len(c.fetchBuf) >= 2*c.Cfg.FetchWidth {
		return
	}
	for w := 0; w < c.Cfg.FetchWidth; w++ {
		var ins workload.Instr
		c.Gen.Next(&ins)
		seq := c.nextSeq
		c.nextSeq++
		c.fetchBuf = append(c.fetchBuf, fetched{ins, seq})

		stop := false

		// I-cache: one access per new line in the fetch stream.
		if line := ins.PC >> 6; line != c.lastFetchLine {
			c.lastFetchLine = line
			if lat := c.ICache.Access(ins.PC, false, cycle); lat > c.ICache.HitLat() {
				c.Stats.ICacheStalls++
				c.fetchStall = cycle + uint64(lat)
				stop = true
			}
		}

		if ins.Op.IsCTI() {
			c.Stats.Branches++
			misp, bubble := c.predictCTI(&ins)
			if misp {
				c.Stats.Mispredicts++
				c.pendingBranch = seq
				return
			}
			if bubble {
				// Right direction, target from decode: short
				// front-end bubble.
				c.fetchStall = cycle + 2
				return
			}
			if ins.Taken {
				// Correct taken prediction: redirected fetch
				// continues next cycle.
				return
			}
		}
		if stop {
			return
		}
	}
}

// predictCTI runs the predictor for a control transfer. mispredict means a
// wrong-path flush; bubble means a decode-supplied target (short stall).
func (c *Core) predictCTI(ins *workload.Instr) (mispredict, bubble bool) {
	switch ins.Op {
	case workload.OpBranch:
		pr := c.Pred.Lookup(ins.PC)
		return c.Pred.Update(ins.PC, pr, ins.Taken, ins.Target)
	case workload.OpCall:
		// Direct call: target known at decode; train the BTB and RAS.
		c.Pred.PushRAS(ins.PC + 4)
		pr := c.Pred.Lookup(ins.PC)
		c.Pred.Update(ins.PC, pr, true, ins.Target)
		return false, !pr.BTBHit
	case workload.OpReturn:
		// Return: mispredicted iff the RAS is wrong.
		return c.Pred.PopRAS() != ins.Target, false
	default: // OpJump: direct, decoded target
		return false, true
	}
}
