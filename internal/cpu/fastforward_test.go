package cpu

import (
	"testing"

	"hotleakage/internal/bpred"
	"hotleakage/internal/cache"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/workload"
)

// buildWith assembles a core with a custom core config and D-cache leakage
// parameters, so the fast-forward tests can force tiny windows, single
// MSHRs and short decay intervals.
func buildWith(prof workload.Profile, cfg Config, params leakctl.Params) *Core {
	mem := cache.NewMemory(p70(), 100)
	l2 := cache.MustNew(p70(), cache.Config{Name: "l2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 2, HitLatency: 11, Banks: 8}, mem)
	l1i := cache.MustNew(p70(), cache.Config{Name: "il1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 1}, l2)
	dl1 := leakctl.MustNew(p70(), cache.Config{Name: "dl1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 2}, params, l2)
	return New(cfg, workload.NewGenerator(prof), bpred.New(bpred.DefaultConfig()), l1i, dl1)
}

// missHeavy returns a load-heavy profile with a large far pool so the
// D-cache misses constantly and long stalls (fast-forward opportunities)
// are plentiful.
func missHeavy() workload.Profile {
	prof := alu(0.2, 0.6)
	prof.LoadFrac = 0.35
	prof.StoreFrac = 0.1
	prof.PHot = 0.3
	prof.FarLines = 8192
	prof.FarZipf = 0.1
	prof.PFar = 0.7
	return prof
}

// assertIdentical runs the same configuration with the event-driven loop
// and with the strict cycle-by-cycle reference and requires every
// architectural statistic — core counters, cycle count, D-cache stats and
// energy tallies — to match bit for bit.
func assertIdentical(t *testing.T, prof workload.Profile, cfg Config, params leakctl.Params, warmup, n uint64) {
	t.Helper()
	run := func(disable bool) (*Core, Stats) {
		c := buildWith(prof, cfg, params)
		c.DisableFastForward = disable
		if warmup > 0 {
			c.Run(warmup)
			c.ResetStats()
		}
		s := c.Run(n)
		return c, s
	}
	cFast, sFast := run(false)
	cRef, sRef := run(true)
	if sFast != sRef {
		t.Fatalf("core stats diverged:\nfast %+v\nref  %+v", sFast, sRef)
	}
	if cFast.Now() != cRef.Now() {
		t.Fatalf("cycle counters diverged: fast %d, ref %d", cFast.Now(), cRef.Now())
	}
	if cFast.DCache.Stats != cRef.DCache.Stats {
		t.Fatalf("D-cache stats diverged:\nfast %+v\nref  %+v", cFast.DCache.Stats, cRef.DCache.Stats)
	}
	if cFast.DCache.Energy != cRef.DCache.Energy {
		t.Fatalf("D-cache energy diverged:\nfast %+v\nref  %+v", cFast.DCache.Energy, cRef.DCache.Energy)
	}
}

// TestFastForwardIdentityDefault covers the plain configuration: no
// leakage control, default window sizes.
func TestFastForwardIdentityDefault(t *testing.T) {
	assertIdentical(t, missHeavy(), DefaultConfig(),
		leakctl.DefaultParams(leakctl.TechNone, 0), 0, 30_000)
}

// TestFastForwardIdentityWindowFull forces a tiny RUU and LSQ so dispatch
// stalls on a full window while long-latency misses drain — the stall
// cycles must be replayed exactly.
func TestFastForwardIdentityWindowFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RUUSize = 8
	cfg.LSQSize = 4
	assertIdentical(t, missHeavy(), cfg,
		leakctl.DefaultParams(leakctl.TechNone, 0), 0, 20_000)
}

// TestFastForwardIdentityMSHRExhaustion pins a single MSHR under a
// miss-heavy stream: loads repeatedly find every miss slot busy, and the
// slot-release events must bound each fast-forward jump.
func TestFastForwardIdentityMSHRExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 1
	assertIdentical(t, missHeavy(), cfg,
		leakctl.DefaultParams(leakctl.TechNone, 0), 0, 20_000)
}

// TestFastForwardIdentityDecayRollover runs a gated D-cache with a decay
// interval short enough that rollovers land inside would-be idle regions;
// the jump must stop at each rollover so expiries happen on the exact
// reference cycle.
func TestFastForwardIdentityDecayRollover(t *testing.T) {
	assertIdentical(t, missHeavy(), DefaultConfig(),
		leakctl.DefaultParams(leakctl.TechGated, 2048), 0, 30_000)
}

// TestFastForwardIdentityDrowsyRollover repeats the rollover test for the
// state-preserving technique, whose wake latencies perturb timing
// differently.
func TestFastForwardIdentityDrowsyRollover(t *testing.T) {
	assertIdentical(t, missHeavy(), DefaultConfig(),
		leakctl.DefaultParams(leakctl.TechDrowsy, 2048), 0, 30_000)
}

// TestFastForwardIdentityWarmupReset exercises the warmup -> ResetStats ->
// measure boundary: the reset lands mid-simulation, possibly adjacent to a
// skipped region, and the measured phase must still match the reference.
func TestFastForwardIdentityWarmupReset(t *testing.T) {
	assertIdentical(t, missHeavy(), DefaultConfig(),
		leakctl.DefaultParams(leakctl.TechGated, 2048), 10_000, 20_000)
}

// TestChunkedRunBitIdentity runs one core to 200k instructions in 50k
// chunks and another in a single call: the chunk boundaries (each Run
// entry re-derives the cached tick schedules) must not perturb any
// statistic.
func TestChunkedRunBitIdentity(t *testing.T) {
	prof := missHeavy()
	params := leakctl.DefaultParams(leakctl.TechGated, 2048)
	chunked := buildWith(prof, DefaultConfig(), params)
	var sChunk Stats
	for i := 0; i < 4; i++ {
		sChunk = chunked.Run(50_000)
	}
	whole := buildWith(prof, DefaultConfig(), params)
	sWhole := whole.Run(200_000)
	// Commit can overshoot a chunk target by up to CommitWidth-1, so the
	// chunked run may retire a handful more instructions; its final chunk
	// still ends on the same cycle only when the totals agree. Compare
	// against a whole run of the chunked run's actual total.
	if sChunk.Instructions != sWhole.Instructions {
		whole = buildWith(prof, DefaultConfig(), params)
		sWhole = whole.Run(sChunk.Instructions)
	}
	if sChunk != sWhole {
		t.Fatalf("chunked run diverged:\nchunked %+v\nwhole   %+v", sChunk, sWhole)
	}
	if chunked.Now() != whole.Now() {
		t.Fatalf("cycle counters diverged: chunked %d, whole %d", chunked.Now(), whole.Now())
	}
	if chunked.DCache.Stats != whole.DCache.Stats {
		t.Fatalf("D-cache stats diverged:\nchunked %+v\nwhole   %+v", chunked.DCache.Stats, whole.DCache.Stats)
	}
}

// TestFetchRingWrap shrinks the fetch buffer (FetchWidth 1 gives the
// smallest power-of-two ring) and runs long enough for the head index to
// lap the buffer many times.
func TestFetchRingWrap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchWidth = 1
	cfg.DecodeWidth = 1
	assertIdentical(t, alu(0.3, 0.4), cfg,
		leakctl.DefaultParams(leakctl.TechNone, 0), 0, 10_000)
}
