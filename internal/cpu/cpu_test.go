package cpu

import (
	"testing"

	"hotleakage/internal/bpred"
	"hotleakage/internal/cache"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/tech"
	"hotleakage/internal/workload"
)

func p70() *tech.Params { return tech.MustByNode(tech.Node70) }

// machine assembles a core over the standard small hierarchy for a profile.
func machine(prof workload.Profile) *Core {
	mem := cache.NewMemory(p70(), 100)
	l2 := cache.MustNew(p70(), cache.Config{Name: "l2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 2, HitLatency: 11, Banks: 8}, mem)
	l1i := cache.MustNew(p70(), cache.Config{Name: "il1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 1}, l2)
	dl1 := leakctl.MustNew(p70(), cache.Config{Name: "dl1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 2}, leakctl.DefaultParams(leakctl.TechNone, 0), l2)
	return New(DefaultConfig(), workload.NewGenerator(prof), bpred.New(bpred.DefaultConfig()), l1i, dl1)
}

// alu returns a pure-ALU profile with given dependence tightness.
func alu(depP, depNone float64) workload.Profile {
	return workload.Profile{
		Name: "alu", DepP: depP, DepNoneFrac: depNone,
		HotLines: 16, HotZipf: 0.5, PHot: 1,
		CodeBlocks: 48, BlockLen: 6, RegionBlocks: 12,
		TripMean: 20, MajorityProb: 0.99, CodeZipf: 0.8,
		Seed: 7,
	}
}

func TestIPCBounded(t *testing.T) {
	c := machine(alu(0.3, 0.4))
	s := c.Run(50_000)
	if ipc := s.IPC(); ipc <= 0 || ipc > 4 {
		t.Fatalf("IPC = %v, must be in (0, 4]", ipc)
	}
}

func TestIndependentCodeFasterThanChained(t *testing.T) {
	// Loose dependences must yield clearly higher IPC than a tight
	// serial chain: this is the ILP the paper relies on to hide induced
	// misses.
	loose := machine(alu(0.2, 0.7)).Run(50_000).IPC()
	tight := machine(alu(0.95, 0.0)).Run(50_000).IPC()
	if loose < 1.5*tight {
		t.Fatalf("ILP not expressed: loose IPC %v vs tight %v", loose, tight)
	}
	if tight > 1.35 {
		t.Fatalf("fully serial chain IPC %v too high", tight)
	}
}

func TestMemoryLatencyHurts(t *testing.T) {
	prof := alu(0.4, 0.3)
	prof.LoadFrac = 0.3
	prof.PHot = 0.5
	prof.FarLines = 8192
	prof.FarZipf = 0.1
	prof.PFar = 0.5 // miss-heavy
	slow := machine(prof).Run(50_000).IPC()
	prof.PFar = 0
	prof.PHot = 1
	fast := machine(prof).Run(50_000).IPC()
	if fast <= slow {
		t.Fatalf("cache misses did not reduce IPC: %v vs %v", fast, slow)
	}
}

func TestMispredictsReduceIPC(t *testing.T) {
	good := alu(0.3, 0.4)
	good.LoadFrac = 0.1
	bad := good
	bad.FlakyFrac = 0.6
	bad.MajorityProb = 0.6
	gi := machine(good).Run(50_000)
	bi := machine(bad).Run(50_000)
	if bi.Mispredicts <= gi.Mispredicts {
		t.Fatalf("flaky profile mispredicted less: %d vs %d", bi.Mispredicts, gi.Mispredicts)
	}
	if bi.IPC() >= gi.IPC() {
		t.Fatalf("mispredicts did not reduce IPC: %v vs %v", bi.IPC(), gi.IPC())
	}
}

func TestStatsConsistency(t *testing.T) {
	c := machine(alu(0.3, 0.4))
	s := c.Run(30_000)
	if s.Instructions < 30_000 {
		t.Fatalf("committed %d < requested", s.Instructions)
	}
	if s.Cycles == 0 || s.Branches == 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if s.Mispredicts > s.Branches {
		t.Fatal("more mispredicts than branches")
	}
}

func TestWarmupResetContinues(t *testing.T) {
	c := machine(alu(0.3, 0.4))
	c.Run(10_000)
	mid := c.Now()
	c.ResetStats()
	s := c.Run(10_000)
	// Commit retires up to CommitWidth per cycle, so the target may be
	// overshot by at most width-1.
	if s.Instructions < 10_000 || s.Instructions > 10_003 {
		t.Fatalf("post-reset instructions = %d", s.Instructions)
	}
	if c.Now() <= mid {
		t.Fatal("cycle counter restarted")
	}
	if s.Cycles >= c.Now() {
		t.Fatal("post-reset cycles include warmup")
	}
}

func TestLoadsAndStoresCounted(t *testing.T) {
	prof := alu(0.3, 0.4)
	prof.LoadFrac = 0.2
	prof.StoreFrac = 0.1
	s := machine(prof).Run(30_000)
	if s.Loads == 0 || s.Stores == 0 {
		t.Fatalf("mem ops not counted: %+v", s)
	}
	ratio := float64(s.Loads) / float64(s.Stores)
	if ratio < 1.2 || ratio > 3.5 {
		t.Fatalf("load/store ratio %v far from 2", ratio)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := machine(alu(0.3, 0.4)).Run(20_000)
	b := machine(alu(0.3, 0.4)).Run(20_000)
	if a != b {
		t.Fatalf("identical machines diverged:\n%+v\n%+v", a, b)
	}
}

func TestDCacheSeesAccesses(t *testing.T) {
	prof := alu(0.3, 0.4)
	prof.LoadFrac = 0.25
	prof.StoreFrac = 0.1
	c := machine(prof)
	c.Run(30_000)
	if c.DCache.Stats.Accesses == 0 {
		t.Fatal("no D-cache traffic")
	}
	got := float64(c.DCache.Stats.Accesses) / float64(c.Stats.Instructions)
	if got < 0.2 || got > 0.45 {
		t.Fatalf("mem refs per instruction = %v, want ~0.3", got)
	}
}

func TestMSHRLimitThrottlesMisses(t *testing.T) {
	// A miss-heavy stream with a single MSHR must run slower than with
	// the default eight (misses serialize).
	prof := alu(0.2, 0.6)
	prof.LoadFrac = 0.35
	prof.PHot = 0.3
	prof.FarLines = 8192
	prof.FarZipf = 0.1
	prof.PFar = 0.7

	run := func(mshrs int) float64 {
		mem := cache.NewMemory(p70(), 100)
		l2 := cache.MustNew(p70(), cache.Config{Name: "l2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 2, HitLatency: 11, Banks: 8}, mem)
		l1i := cache.MustNew(p70(), cache.Config{Name: "il1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 1}, l2)
		dl1 := leakctl.MustNew(p70(), cache.Config{Name: "dl1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 2}, leakctl.DefaultParams(leakctl.TechNone, 0), l2)
		cfg := DefaultConfig()
		cfg.MSHRs = mshrs
		c := New(cfg, workload.NewGenerator(prof), bpred.New(bpred.DefaultConfig()), l1i, dl1)
		return c.Run(30_000).IPC()
	}
	one := run(1)
	eight := run(8)
	if eight <= one {
		t.Fatalf("more MSHRs did not help a miss-heavy stream: 1->%.3f, 8->%.3f", one, eight)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero issue width validated")
	}
	bad = DefaultConfig()
	bad.RUUSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero RUU validated")
	}
	bad = DefaultConfig()
	bad.MSHRs = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative MSHRs validated")
	}
}
