package leakage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNAND2KDesignHandComputed(t *testing.T) {
	// Paper's worked example (Figure 2): four input combinations; three
	// turn off the series NMOS pull-down, one turns off the parallel
	// PMOS pull-up. With stack factor s:
	//   k_n = (s + 1 + 1) / (4*2), k_p = 2 / (4*2).
	s := 0.12
	kd := DeriveKDesign(NAND2(), s)
	wantKn := (s + 1 + 1) / 8
	wantKp := 2.0 / 8
	if math.Abs(kd.Kn-wantKn) > 1e-12 {
		t.Errorf("NAND2 k_n = %v, want %v", kd.Kn, wantKn)
	}
	if math.Abs(kd.Kp-wantKp) > 1e-12 {
		t.Errorf("NAND2 k_p = %v, want %v", kd.Kp, wantKp)
	}
}

func TestNOR2IsNAND2Dual(t *testing.T) {
	s := 0.12
	nand := DeriveKDesign(NAND2(), s)
	nor := DeriveKDesign(NOR2(), s)
	if math.Abs(nand.Kn-nor.Kp) > 1e-12 || math.Abs(nand.Kp-nor.Kn) > 1e-12 {
		t.Fatalf("NOR2 not the dual of NAND2: nand=%+v nor=%+v", nand, nor)
	}
}

func TestInverterKDesign(t *testing.T) {
	// Inverter: one combination turns off the N device (input low), one
	// the P device. k_n = 1/(2*1) = 0.5 = k_p.
	kd := DeriveKDesign(Inverter(), 0.12)
	if kd.Kn != 0.5 || kd.Kp != 0.5 {
		t.Fatalf("inverter k = %+v, want 0.5/0.5", kd)
	}
}

func TestNAND3StackLowersKn(t *testing.T) {
	s := 0.12
	k2 := DeriveKDesign(NAND2(), s)
	k3 := DeriveKDesign(NAND3(), s)
	if k3.Kn >= k2.Kn {
		t.Fatalf("deeper stack should lower k_n: nand3=%v nand2=%v", k3.Kn, k2.Kn)
	}
}

func TestStackFactorMonotonic(t *testing.T) {
	// A weaker stack effect (larger factor) can only increase k_n.
	prev := -1.0
	for _, s := range []float64{0.05, 0.12, 0.3, 0.6, 1.0} {
		k := DeriveKDesign(NAND2(), s).Kn
		if k <= prev {
			t.Fatalf("k_n not increasing with stack factor at %v", s)
		}
		prev = k
	}
}

func TestComplementaryGateConduction(t *testing.T) {
	// Property: for the library gates exactly one of pull-up/pull-down
	// conducts for every input combination.
	for _, g := range []Gate{Inverter(), NAND2(), NAND3(), NOR2()} {
		total := 1 << g.Inputs
		in := make([]bool, g.Inputs)
		for combo := 0; combo < total; combo++ {
			for b := 0; b < g.Inputs; b++ {
				in[b] = combo&(1<<b) != 0
			}
			pd := g.PullDown.Conducting(in)
			pu := g.PullUp.Conducting(in)
			if pd == pu {
				t.Fatalf("%s: inputs %v: pd=%v pu=%v (not complementary)", g.Name, in, pd, pu)
			}
		}
	}
}

func TestKDesignBoundsProperty(t *testing.T) {
	// Property: 0 < k <= 1 for complementary gates with stack factor in
	// (0, 1].
	f := func(sRaw uint8) bool {
		s := (float64(sRaw%100) + 1) / 100
		for _, g := range []Gate{Inverter(), NAND2(), NAND3(), NOR2()} {
			kd := DeriveKDesign(g, s)
			if kd.Kn <= 0 || kd.Kn > 1 || kd.Kp <= 0 || kd.Kp > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkCounts(t *testing.T) {
	g := NAND3()
	if g.PullDown.count() != 3 || g.PullUp.count() != 3 {
		t.Fatalf("NAND3 counts: %d/%d", g.PullDown.count(), g.PullUp.count())
	}
}

func TestParallelOffLeakSums(t *testing.T) {
	// Two off FETs in parallel leak twice one FET.
	p := Parallel{FET{Index: 0, ActiveHigh: true}, FET{Index: 1, ActiveHigh: true}}
	in := []bool{false, false}
	if l := p.offLeak(in, 0.12); l != 2 {
		t.Fatalf("parallel off leak = %v, want 2", l)
	}
}

func TestSeriesStackAttenuates(t *testing.T) {
	s := Series{FET{Index: 0, ActiveHigh: true}, FET{Index: 1, ActiveHigh: true}}
	// Both off: one unit attenuated once.
	if l := s.offLeak([]bool{false, false}, 0.1); math.Abs(l-0.1) > 1e-12 {
		t.Fatalf("series both-off leak = %v, want 0.1", l)
	}
	// One off: full unit leak through the conducting partner.
	if l := s.offLeak([]bool{true, false}, 0.1); l != 1 {
		t.Fatalf("series one-off leak = %v, want 1", l)
	}
}

func TestSRAMKDesignDerivation(t *testing.T) {
	kd := DeriveSRAMKDesign()
	if kd.Kn != 0.5 || kd.Kp != 0.5 {
		t.Fatalf("SRAM k = %+v, want 0.5/0.5 (half the devices leak per state)", kd)
	}
	// The pre-fit table values must sit within the physically sensible
	// band around the derivation (below it: fitted stack/short-channel
	// corrections only reduce the ideal factor).
	p := p70()
	kn := p.KnSRAM.Eval(300, p.VddNominal, p.Vdd0)
	kp := p.KpSRAM.Eval(300, p.VddNominal, p.Vdd0)
	if kn < 0.15 || kn > kd.Kn+0.1 || kp < 0.15 || kp > kd.Kp+0.1 {
		t.Fatalf("tech-table SRAM fits (%v/%v) outside derivation band", kn, kp)
	}
}
