package leakage

import (
	"math"
	"testing"

	"hotleakage/internal/tech"
)

func hotModel() *Model {
	m := New(p70())
	m.SetEnv(Env{TempK: CelsiusToKelvin(110), Vdd: 0.9})
	return m
}

func TestCelsiusToKelvin(t *testing.T) {
	if k := CelsiusToKelvin(110); math.Abs(k-383.15) > 1e-9 {
		t.Fatalf("110C = %vK", k)
	}
}

func TestModeOrdering(t *testing.T) {
	// Gated-Vss "almost entirely eliminates leakage"; RBB is in between;
	// drowsy "still exhibits a non-trivial amount"; active leaks most.
	m := hotModel()
	active := m.CellPower(SRAM6T, ModeActive)
	drowsy := m.CellPower(SRAM6T, ModeDrowsy)
	rbb := m.CellPower(SRAM6T, ModeRBB)
	gated := m.CellPower(SRAM6T, ModeGated)
	if !(gated < rbb && rbb < drowsy && drowsy < active) {
		t.Fatalf("mode ordering violated: gated=%v rbb=%v drowsy=%v active=%v",
			gated, rbb, drowsy, active)
	}
}

func TestResidualFractionBands(t *testing.T) {
	// Literature bands: drowsy standby 8-25% of active cell power,
	// gated-Vss under 2%, RBB 2-10%.
	m := hotModel()
	dr := m.StandbyFraction(SRAM6T, ModeDrowsy)
	gt := m.StandbyFraction(SRAM6T, ModeGated)
	rb := m.StandbyFraction(SRAM6T, ModeRBB)
	if dr < 0.08 || dr > 0.25 {
		t.Errorf("drowsy residual %v outside [0.08, 0.25]", dr)
	}
	if gt > 0.02 {
		t.Errorf("gated residual %v above 0.02", gt)
	}
	if rb < 0.02 || rb > 0.10 {
		t.Errorf("rbb residual %v outside [0.02, 0.10]", rb)
	}
	if !(gt < rb && rb < dr) {
		t.Errorf("residual ordering violated: %v %v %v", gt, rb, dr)
	}
}

func TestSetEnvRecalculates(t *testing.T) {
	m := New(p70())
	m.SetEnv(Env{TempK: 300, Vdd: 0.9})
	cold := m.CellPower(SRAM6T, ModeActive)
	m.SetEnv(Env{TempK: 383, Vdd: 0.9})
	hot := m.CellPower(SRAM6T, ModeActive)
	if hot <= cold {
		t.Fatalf("SetEnv did not pick up temperature: %v vs %v", cold, hot)
	}
	m.SetEnv(Env{TempK: 383, Vdd: 0.5})
	dvs := m.CellPower(SRAM6T, ModeActive)
	if dvs >= hot {
		t.Fatalf("SetEnv did not pick up DVS: %v vs %v", dvs, hot)
	}
	if got := m.Env(); got.TempK != 383 || got.Vdd != 0.5 {
		t.Fatalf("Env() = %+v", got)
	}
}

func TestStructurePowerLinearInCount(t *testing.T) {
	m := hotModel()
	p1 := m.StructurePower(SRAM6T, 1000, ModeActive)
	p2 := m.StructurePower(SRAM6T, 2000, ModeActive)
	if math.Abs(p2/p1-2) > 1e-9 {
		t.Fatalf("structure power not linear: %v %v", p1, p2)
	}
}

func Test64KBArrayPowerBand(t *testing.T) {
	// A 64 KB data array at 110C should land in the hundreds-of-mW band
	// the ITRS-2001 projections predicted for hot 70 nm caches.
	m := hotModel()
	w := m.StructurePower(SRAM6T, 64*1024*8, ModeActive)
	if w < 0.05 || w > 0.6 {
		t.Fatalf("64KB array at 110C = %v W, outside [0.05, 0.6]", w)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeActive: "active", ModeDrowsy: "drowsy",
		ModeGated: "gated-vss", ModeRBB: "rbb",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestTemperatureMonotonicAllModes(t *testing.T) {
	m := New(p70())
	for _, mode := range []Mode{ModeActive, ModeDrowsy, ModeGated, ModeRBB} {
		prev := 0.0
		for _, tc := range []float64{25, 55, 85, 110} {
			m.SetEnv(Env{TempK: CelsiusToKelvin(tc), Vdd: 0.9})
			pw := m.CellPower(SRAM6T, mode)
			if pw <= prev {
				t.Errorf("%v power not increasing at %vC", mode, tc)
			}
			prev = pw
		}
	}
}

func TestGateLeakageIncludedInActive(t *testing.T) {
	// A cell with gate-leakage contributors must leak more than the same
	// cell with them zeroed.
	m := hotModel()
	with := m.CellCurrent(SRAM6T, ModeActive)
	noGate := SRAM6T
	noGate.GateN, noGate.GateP = 0, 0
	without := m.CellCurrent(noGate, ModeActive)
	if with <= without {
		t.Fatalf("gate leakage not contributing: %v vs %v", with, without)
	}
}

func TestAllNodesConstructible(t *testing.T) {
	for _, n := range []tech.Node{tech.Node180, tech.Node130, tech.Node100, tech.Node70} {
		m := New(tech.MustByNode(n))
		if p := m.CellPower(SRAM6T, ModeActive); p <= 0 {
			t.Errorf("%v: non-positive cell power %v", n, p)
		}
	}
}
