package leakage

import (
	"testing"
)

func TestVariationDisabled(t *testing.T) {
	res := RunVariation(p70(), VariationConfig{}, 300, 0.9)
	if res.SubN != 1 || res.SubP != 1 || res.Gate != 1 {
		t.Fatalf("disabled variation not unity: %+v", res)
	}
}

func TestVariationSkewsUp(t *testing.T) {
	// Gaussian parameter spread under an exponential response yields a
	// lognormal-like skew: the mean leakage exceeds the nominal leakage.
	res := RunVariation(p70(), DefaultVariation70nm(), 300, 0.9)
	if res.SubN <= 1 {
		t.Errorf("SubN multiplier %v not above 1", res.SubN)
	}
	if res.SubP <= 1 {
		t.Errorf("SubP multiplier %v not above 1", res.SubP)
	}
	if res.Gate <= 1 {
		t.Errorf("Gate multiplier %v not above 1", res.Gate)
	}
	// ... but not absurdly (the 3-sigma clamps bound the tails).
	if res.SubN > 3 || res.Gate > 5 {
		t.Errorf("variation multipliers implausibly large: %+v", res)
	}
}

func TestVariationDeterministicPerSeed(t *testing.T) {
	cfg := DefaultVariation70nm()
	a := RunVariation(p70(), cfg, 300, 0.9)
	b := RunVariation(p70(), cfg, 300, 0.9)
	if a != b {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
	cfg.Seed++
	c := RunVariation(p70(), cfg, 300, 0.9)
	if a == c {
		t.Fatal("different seed produced identical results")
	}
}

func TestVariationPaperSigmas(t *testing.T) {
	cfg := DefaultVariation70nm()
	if cfg.ThreeSigmaL != 0.47 || cfg.ThreeSigmaTox != 0.16 ||
		cfg.ThreeSigmaVdd != 0.10 || cfg.ThreeSigmaVth != 0.13 {
		t.Fatalf("default 3-sigma values diverge from the paper: %+v", cfg)
	}
}

func TestVariationAppliedToModel(t *testing.T) {
	plain := New(p70())
	varied := New(p70(), WithVariation(DefaultVariation70nm()))
	env := Env{TempK: 383, Vdd: 0.9}
	plain.SetEnv(env)
	varied.SetEnv(env)
	if varied.CellPower(SRAM6T, ModeActive) <= plain.CellPower(SRAM6T, ModeActive) {
		t.Fatal("variation-enabled model does not leak more than nominal")
	}
}

func TestVariationSampleCountStability(t *testing.T) {
	cfg := DefaultVariation70nm()
	cfg.Samples = 20000
	big := RunVariation(p70(), cfg, 300, 0.9)
	cfg.Samples = 10000
	cfg.Seed ^= 0x55
	small := RunVariation(p70(), cfg, 300, 0.9)
	if d := big.SubN/small.SubN - 1; d > 0.2 || d < -0.2 {
		t.Fatalf("Monte Carlo unstable across sample counts: %v vs %v", big.SubN, small.SubN)
	}
}

func TestIntraDieVariationAddsSkew(t *testing.T) {
	inter := DefaultVariation70nm()
	both := inter
	both.IncludeIntraDie = true
	both.IntraSigmaVthFrac = 0.05
	a := RunVariation(p70(), inter, 300, 0.9)
	b := RunVariation(p70(), both, 300, 0.9)
	if b.SubN <= a.SubN {
		t.Fatalf("intra-die mismatch did not raise the mean multiplier: %v vs %v", b.SubN, a.SubN)
	}
}

func TestRegFileLeaksMoreThanSRAMPerBit(t *testing.T) {
	m := New(p70())
	m.SetEnv(Env{TempK: CelsiusToKelvin(85), Vdd: 0.9})
	rf := m.CellPower(RegFileCell, ModeActive)
	sram := m.CellPower(SRAM6T, ModeActive)
	if rf <= 1.5*sram {
		t.Fatalf("ported regfile bit (%v) should leak well above an SRAM bit (%v)", rf, sram)
	}
	if p := RegFilePower(m, 80, 64, ModeActive); p <= 0 {
		t.Fatalf("regfile power %v", p)
	}
}
