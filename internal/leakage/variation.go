package leakage

import (
	"math"

	"hotleakage/internal/stats"
	"hotleakage/internal/tech"
)

// VariationConfig describes inter-die parameter variation (Section 3.3).
// The four parameters the paper samples are channel length L, oxide
// thickness t_ox, supply voltage V_dd and threshold voltage V_th. Each
// ThreeSigma* field is the fractional 3-sigma spread of the corresponding
// parameter (the paper's 70 nm values, from Nassif: 47%, 16%, 10%, 13%).
// In the initialization phase Samples Gaussian draws are taken, the leakage
// current of each sample is computed, and the mean of those currents is
// used for the rest of the simulation.
type VariationConfig struct {
	Enabled       bool
	ThreeSigmaL   float64
	ThreeSigmaTox float64
	ThreeSigmaVdd float64
	ThreeSigmaVth float64
	Samples       int
	Seed          uint64

	// IncludeIntraDie adds within-die (mismatch) variation, the
	// extension the paper defers ("in this version our model only
	// includes the inter-die variation"). Each device's threshold gets
	// an additional independent Gaussian perturbation of
	// IntraSigmaVthFrac * Vth (1-sigma); over the millions of devices
	// in a cache the leakage converges to the mean of the lognormal-like
	// per-device distribution, which is what the multiplier captures.
	IncludeIntraDie   bool
	IntraSigmaVthFrac float64
}

// DefaultVariation70nm returns the paper's 70 nm inter-die variation
// configuration.
func DefaultVariation70nm() VariationConfig {
	return VariationConfig{
		Enabled:       true,
		ThreeSigmaL:   0.47,
		ThreeSigmaTox: 0.16,
		ThreeSigmaVdd: 0.10,
		ThreeSigmaVth: 0.13,
		Samples:       1000,
		Seed:          0x70a0,
	}
}

// VariationResult holds the leakage multipliers produced by the Monte-Carlo
// pass: the ratio of mean sampled current to nominal current for the
// subthreshold currents of each polarity and for gate leakage. A multiplier
// above 1 reflects the lognormal skew of leakage under Gaussian parameter
// spread.
type VariationResult struct {
	SubN, SubP, Gate float64
}

// vthPerFracL is the threshold shift (volts) per unit fractional channel
// length change, modelling Vth roll-off: shorter channels have lower Vth
// and exponentially higher leakage. The modest value keeps the inter-die
// multiplier in the 1.05-1.5x range observed for 70 nm projections.
const vthPerFracL = 0.04

// RunVariation performs the initialization-phase Monte Carlo described in
// Section 3.3 at the given environment and returns the leakage multipliers.
// With cfg.Enabled false it returns unit multipliers.
func RunVariation(p *tech.Params, cfg VariationConfig, tK, vdd float64) VariationResult {
	if !cfg.Enabled || cfg.Samples <= 0 {
		return VariationResult{SubN: 1, SubP: 1, Gate: 1}
	}
	rng := stats.NewRNG(cfg.Seed)
	sigL := cfg.ThreeSigmaL / 3
	sigTox := cfg.ThreeSigmaTox / 3
	sigVdd := cfg.ThreeSigmaVdd / 3
	sigVth := cfg.ThreeSigmaVth / 3

	nomN := UnitSubthresholdNominal(p, p.N, 1, vdd, tK)
	nomP := UnitSubthresholdNominal(p, p.P, 1, vdd, tK)
	nomG := UnitGate(p, 1, vdd, tK)

	var sumN, sumP, sumG float64
	for i := 0; i < cfg.Samples; i++ {
		dL := rng.Gaussian(0, sigL)
		dTox := rng.Gaussian(0, sigTox)
		dVddFrac := rng.Gaussian(0, sigVdd)
		dVthFrac := rng.Gaussian(0, sigVth)

		// Clamp physically absurd tails (a die with negative channel
		// length does not yield).
		dL = clamp(dL, -0.6, 0.6)
		dTox = clamp(dTox, -0.5, 0.5)

		vddS := vdd * (1 + dVddFrac)
		// Channel-length variation: W/L scales inversely; Vth shifts
		// via roll-off.
		wl := 1 / (1 + dL)
		dVthL := vthPerFracL * dL

		vthN := p.VthAt(p.N, tK)*(1+dVthFrac) + dVthL
		vthP := p.VthAt(p.P, tK)*(1+dVthFrac) + dVthL

		if cfg.IncludeIntraDie && cfg.IntraSigmaVthFrac > 0 {
			// Mismatch: independent per-device threshold spread on
			// top of the die's shift.
			vthN += rng.Gaussian(0, cfg.IntraSigmaVthFrac*p.VthAt(p.N, tK))
			vthP += rng.Gaussian(0, cfg.IntraSigmaVthFrac*p.VthAt(p.P, tK))
		}

		sumN += UnitSubthreshold(p, p.N, wl, vddS, tK, vthN)
		sumP += UnitSubthreshold(p, p.P, wl, vddS, tK, vthP)

		// Gate leakage: exponential in t_ox, power-law in Vdd.
		g := UnitGate(p, 1, vddS, tK)
		g *= math.Exp(-p.Gate.ToxSens * dTox)
		sumG += g
	}
	n := float64(cfg.Samples)
	res := VariationResult{SubN: 1, SubP: 1, Gate: 1}
	if nomN > 0 {
		res.SubN = (sumN / n) / nomN
	}
	if nomP > 0 {
		res.SubP = (sumP / n) / nomP
	}
	if nomG > 0 {
		res.Gate = (sumG / n) / nomG
	}
	return res
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
