package leakage

// This file implements the k_design derivation procedure of Section 3.1.2:
// enumerate the input combinations of a static CMOS gate, split them into
// the set that turns off the pull-down (NMOS) network and the set that turns
// off the pull-up (PMOS) network, estimate each combination's leakage with a
// stack-effect model, and form
//
//	k_n = (I_1n + I_2n + ...) / (N * n_n * I_n)        (Equation 5)
//	k_p = (I_1p + I_2p + ...) / (N * n_p * I_p)        (Equation 6)
//
// The derivation is used to validate the pre-fit k_design tables in package
// tech and to let users derive factors for their own cells, mirroring the
// paper's "adding models for other structures is very simple" claim.

// Network is a pull-up or pull-down transistor network described
// structurally, so that conduction and stacked-off leakage can be evaluated
// per input combination.
type Network interface {
	// Conducting reports whether the network conducts for the given
	// input vector (true input = logic high).
	Conducting(inputs []bool) bool
	// offLeak returns the network's leakage in units of a single off
	// device's current, assuming the network as a whole is off.
	// stackFactor is the per-extra-series-off-device attenuation.
	offLeak(inputs []bool, stackFactor float64) float64
	// count returns the number of transistors in the network.
	count() int
}

// FET is a single transistor controlled by input Index. For an NMOS device
// ActiveHigh is true (conducts when the input is high); for a PMOS device it
// is false.
type FET struct {
	Index      int
	ActiveHigh bool
}

// Conducting implements Network.
func (f FET) Conducting(in []bool) bool { return in[f.Index] == f.ActiveHigh }

func (f FET) offLeak(in []bool, _ float64) float64 {
	if f.Conducting(in) {
		// A conducting device in an otherwise-off path contributes
		// no series resistance; callers handle this at the Series
		// level. A lone conducting FET cannot be "off".
		return 0
	}
	return 1
}

func (f FET) count() int { return 1 }

// Series is a series (stacked) connection of sub-networks.
type Series []Network

// Conducting implements Network: a series chain conducts iff every element
// conducts.
func (s Series) Conducting(in []bool) bool {
	for _, n := range s {
		if !n.Conducting(in) {
			return false
		}
	}
	return true
}

func (s Series) offLeak(in []bool, stack float64) float64 {
	// Leakage through a series chain is limited by its most resistive
	// off element, further attenuated by the stack effect for each
	// additional off element (intermediate nodes float up, giving the
	// lower devices negative Vgs).
	minLeak := 0.0
	offCount := 0
	first := true
	for _, n := range s {
		if n.Conducting(in) {
			continue
		}
		offCount++
		l := n.offLeak(in, stack)
		if first || l < minLeak {
			minLeak = l
			first = false
		}
	}
	if offCount == 0 {
		return 0 // chain conducts; not a leakage path
	}
	l := minLeak
	for i := 1; i < offCount; i++ {
		l *= stack
	}
	return l
}

func (s Series) count() int {
	c := 0
	for _, n := range s {
		c += n.count()
	}
	return c
}

// Parallel is a parallel connection of sub-networks.
type Parallel []Network

// Conducting implements Network: a parallel group conducts iff any branch
// conducts.
func (p Parallel) Conducting(in []bool) bool {
	for _, n := range p {
		if n.Conducting(in) {
			return true
		}
	}
	return false
}

func (p Parallel) offLeak(in []bool, stack float64) float64 {
	sum := 0.0
	for _, n := range p {
		sum += n.offLeak(in, stack)
	}
	return sum
}

func (p Parallel) count() int {
	c := 0
	for _, n := range p {
		c += n.count()
	}
	return c
}

// Gate is a static CMOS gate: complementary pull-down (NMOS) and pull-up
// (PMOS) networks over the same inputs.
type Gate struct {
	Name     string
	Inputs   int
	PullDown Network // NMOS network to ground
	PullUp   Network // PMOS network to Vdd
}

// DefaultStackFactor is the per-extra-off-device series attenuation used in
// k_design derivation; transistor-level simulation of stacked off devices
// shows roughly an order of magnitude reduction per extra device, and the
// paper's sleep transistors exploit exactly this effect.
const DefaultStackFactor = 0.12

// KDesign holds derived k_n and k_p factors for a gate.
type KDesign struct {
	Kn, Kp float64
}

// DeriveKDesign enumerates all 2^Inputs input combinations of g and applies
// Equations 5-8 of the paper with the given stack factor (pass
// DefaultStackFactor unless calibrating). The returned factors are in units
// of a single off device's current, i.e. directly comparable with the
// KDesignFit tables in package tech.
func DeriveKDesign(g Gate, stackFactor float64) KDesign {
	nn := g.PullDown.count()
	np := g.PullUp.count()
	total := 1 << g.Inputs
	in := make([]bool, g.Inputs)
	var sumN, sumP float64
	for combo := 0; combo < total; combo++ {
		for b := 0; b < g.Inputs; b++ {
			in[b] = combo&(1<<b) != 0
		}
		pdOn := g.PullDown.Conducting(in)
		puOn := g.PullUp.Conducting(in)
		// For a complementary gate exactly one network is off per
		// combination; non-complementary (e.g. tristate) gates can
		// have both off.
		if !pdOn {
			sumN += g.PullDown.offLeak(in, stackFactor)
		}
		if !puOn {
			sumP += g.PullUp.offLeak(in, stackFactor)
		}
	}
	return KDesign{
		Kn: sumN / (float64(total) * float64(nn)),
		Kp: sumP / (float64(total) * float64(np)),
	}
}

// NAND2 is the two-input NAND of the paper's worked example (Figure 2):
// series NMOS pull-down, parallel PMOS pull-up.
func NAND2() Gate {
	return Gate{
		Name:   "nand2",
		Inputs: 2,
		PullDown: Series{
			FET{Index: 0, ActiveHigh: true},
			FET{Index: 1, ActiveHigh: true},
		},
		PullUp: Parallel{
			FET{Index: 0, ActiveHigh: false},
			FET{Index: 1, ActiveHigh: false},
		},
	}
}

// NOR2 is a two-input NOR: parallel pull-down, series pull-up.
func NOR2() Gate {
	return Gate{
		Name:   "nor2",
		Inputs: 2,
		PullDown: Parallel{
			FET{Index: 0, ActiveHigh: true},
			FET{Index: 1, ActiveHigh: true},
		},
		PullUp: Series{
			FET{Index: 0, ActiveHigh: false},
			FET{Index: 1, ActiveHigh: false},
		},
	}
}

// Inverter is a single-input inverter.
func Inverter() Gate {
	return Gate{
		Name:     "inv",
		Inputs:   1,
		PullDown: FET{Index: 0, ActiveHigh: true},
		PullUp:   FET{Index: 0, ActiveHigh: false},
	}
}

// DeriveSRAMKDesign derives k_n / k_p for the quiescent 6T SRAM cell by
// enumerating its two stable states (the cell-level analogue of the gate
// input enumeration). In each state, with the wordline low and bitlines
// precharged high, exactly two NMOS devices leak (one inverter pull-down
// holding a '1' node, and the access device on the '0' side) and one PMOS
// leaks (the pull-up facing the '0' node); no stacks are involved. With
// Equations 5-6 over the two states this gives k_n = (2+2)/(2*4) = 0.5 and
// k_p = (1+1)/(2*2) = 0.5 in unit-device terms — exactly "half the devices
// of each polarity leak". The pre-fit tables in package tech sit below
// these because they also fold in the fitted stack/short-channel
// corrections and their temperature/supply drift.
func DeriveSRAMKDesign() KDesign {
	const states = 2
	// Per state: leaking N devices and P devices, in unit-current terms.
	nPerState := 2.0 // inverter pull-down at the '1' node + one access FET
	pPerState := 1.0 // pull-up facing the '0' node
	return KDesign{
		Kn: states * nPerState / (states * float64(SRAM6T.NN)),
		Kp: states * pPerState / (states * float64(SRAM6T.NP)),
	}
}

// NAND3 is a three-input NAND (the decoder cell shape).
func NAND3() Gate {
	return Gate{
		Name:   "nand3",
		Inputs: 3,
		PullDown: Series{
			FET{Index: 0, ActiveHigh: true},
			FET{Index: 1, ActiveHigh: true},
			FET{Index: 2, ActiveHigh: true},
		},
		PullUp: Parallel{
			FET{Index: 0, ActiveHigh: false},
			FET{Index: 1, ActiveHigh: false},
			FET{Index: 2, ActiveHigh: false},
		},
	}
}
