// Package leakage implements the HotLeakage architectural leakage model from
// the paper: BSIM3-based subthreshold leakage with explicit temperature,
// supply-voltage and threshold-voltage dependence (Section 3.1), a
// double-k_design per-cell model (Section 3.1.2), curve-fit gate leakage
// (Section 3.2), and inter-die parameter variation (Section 3.3).
//
// All currents are in amperes and all powers in watts. The model is
// deliberately cheap to evaluate so that leakage can be recalculated
// dynamically whenever temperature or supply voltage changes at runtime
// (DVS, thermal drift), which is the feature that distinguishes HotLeakage
// from the static Butts-Sohi formulation.
package leakage

import (
	"math"

	"hotleakage/internal/tech"
)

// ThermalVoltage returns v_t = kT/q at the given temperature in kelvin.
func ThermalVoltage(tK float64) float64 { return tech.BoltzmannOverQ * tK }

// UnitSubthreshold evaluates the BSIM3 v3.2 subthreshold leakage of a single
// transistor (Equation 2 of the paper):
//
//	I = mu(T) * Cox * (W/L) * e^{b(Vdd-Vdd0)} * v_t^2 * (1 - e^{-Vdd/v_t}) * e^{(-|Vth|-Voff)/(n*v_t)}
//
// with the two assumptions stated in the paper: Vgs = 0 (device off) and
// Vds = Vdd (single device; stacking is folded into k_design). vth is the
// threshold-voltage magnitude to use; pass p.VthAt(d, tK) for the nominal
// temperature-derated threshold, or an overridden value for techniques such
// as RBB that manipulate Vth.
func UnitSubthreshold(p *tech.Params, d tech.DeviceParams, wl, vdd, tK, vth float64) float64 {
	if vdd <= 0 || tK <= 0 || wl <= 0 {
		return 0
	}
	vt := ThermalVoltage(tK)
	mu := d.Mu0 * math.Pow(tK/tech.RoomTempK, -p.MobTempExp)
	cox := p.CoxFperM2()
	dibl := math.Exp(d.DIBLb * (vdd - p.Vdd0))
	body := vt * vt * (1 - math.Exp(-vdd/vt))
	gate := math.Exp((-math.Abs(vth) - d.Voff) / (d.Swing * vt))
	return mu * cox * wl * dibl * body * gate
}

// UnitSubthresholdNominal is UnitSubthreshold with the node's
// temperature-derated nominal threshold voltage.
func UnitSubthresholdNominal(p *tech.Params, d tech.DeviceParams, wl, vdd, tK float64) float64 {
	return UnitSubthreshold(p, d, wl, vdd, tK, p.VthAt(d, tK))
}

// UnitGate evaluates the curve-fit direct-tunneling gate leakage of a single
// transistor with a conducting channel (Section 3.2). Gate leakage is
// strongly dependent on oxide thickness and supply voltage and only weakly
// on temperature; the fit is anchored at the node's reference point (for
// 70 nm: 40 nA/um at t_ox = 1.2 nm, 0.9 V, 300 K).
func UnitGate(p *tech.Params, wl, vdd, tK float64) float64 {
	g := p.Gate
	if vdd <= 0 || wl <= 0 {
		return 0
	}
	v := math.Pow(vdd/g.VRef, g.VddExp)
	tox := math.Exp(-g.ToxSens * (p.ToxM - g.ToxRef) / g.ToxRef)
	temp := 1 + g.TCoef*(tK-tech.RoomTempK)
	if temp < 0 {
		temp = 0
	}
	return g.IRef * wl * v * tox * temp
}

// GIDLWarningVth is the threshold-magnitude beyond which the simple
// subthreshold + DIBL model stops tracking transistor-level simulation
// because gate-induced drain leakage (GIDL) floors the current (paper
// Figure 1d and Section 3.2). RBBLimited reports whether a proposed RBB
// threshold shift has run into this regime.
const GIDLWarningVth = 0.45

// RBBLimited reports whether raising the threshold voltage to vth at the
// given node is beyond the point where GIDL limits further leakage
// reduction, i.e. where the model's predicted savings would be optimistic.
func RBBLimited(vth float64) bool { return vth > GIDLWarningVth }
