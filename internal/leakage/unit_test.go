package leakage

import (
	"math"
	"testing"
	"testing/quick"

	"hotleakage/internal/tech"
)

// The tests in this file verify the Figure 1 sensitivities of the paper:
// unit leakage linear in W/L (1a), increasing in Vdd via DIBL (1b),
// exponential in temperature (1c), and exponentially decreasing in Vth (1d).

func p70() *tech.Params { return tech.MustByNode(tech.Node70) }

func TestUnitLeakageLinearInWL(t *testing.T) {
	p := p70()
	i1 := UnitSubthresholdNominal(p, p.N, 1, 0.9, 300)
	i2 := UnitSubthresholdNominal(p, p.N, 2, 0.9, 300)
	i4 := UnitSubthresholdNominal(p, p.N, 4, 0.9, 300)
	if math.Abs(i2/i1-2) > 1e-9 || math.Abs(i4/i1-4) > 1e-9 {
		t.Fatalf("W/L scaling not linear: %v %v %v", i1, i2, i4)
	}
}

func TestUnitLeakageIncreasesWithVdd(t *testing.T) {
	p := p70()
	prev := 0.0
	for v := 0.2; v <= 1.0; v += 0.1 {
		i := UnitSubthresholdNominal(p, p.N, 1, v, 300)
		if i <= prev {
			t.Fatalf("leakage not increasing at Vdd=%v: %v <= %v", v, i, prev)
		}
		prev = i
	}
}

func TestUnitLeakageExponentialInTemperature(t *testing.T) {
	p := p70()
	i300 := UnitSubthresholdNominal(p, p.N, 1, 0.9, 300)
	i358 := UnitSubthresholdNominal(p, p.N, 1, 0.9, 358)
	i383 := UnitSubthresholdNominal(p, p.N, 1, 0.9, 383)
	if !(i300 < i358 && i358 < i383) {
		t.Fatalf("leakage not increasing in T: %v %v %v", i300, i358, i383)
	}
	// Room temperature to 110C should be several-fold (the paper's
	// motivation for modelling temperature explicitly).
	if ratio := i383 / i300; ratio < 3 || ratio > 30 {
		t.Fatalf("300K->383K leakage ratio %v outside [3,30]", ratio)
	}
}

func TestUnitLeakageDecreasesWithVth(t *testing.T) {
	p := p70()
	prev := math.Inf(1)
	for vth := 0.1; vth <= 0.5; vth += 0.05 {
		i := UnitSubthreshold(p, p.N, 1, 0.9, 300, vth)
		if i >= prev {
			t.Fatalf("leakage not decreasing at Vth=%v", vth)
		}
		prev = i
	}
}

func TestUnitLeakageZeroOnDegenerateInputs(t *testing.T) {
	p := p70()
	if UnitSubthreshold(p, p.N, 0, 0.9, 300, 0.2) != 0 {
		t.Error("W/L=0 should leak nothing")
	}
	if UnitSubthreshold(p, p.N, 1, 0, 300, 0.2) != 0 {
		t.Error("Vdd=0 should leak nothing")
	}
	if UnitGate(p, 0, 0.9, 300) != 0 || UnitGate(p, 1, 0, 300) != 0 {
		t.Error("degenerate gate leakage not zero")
	}
}

func TestUnitLeakageMagnitude70nm(t *testing.T) {
	// Tens of nA per unit device at room temperature for hot 70 nm
	// projections (ITRS-2001 band the paper works in).
	p := p70()
	i := UnitSubthresholdNominal(p, p.N, 1, 0.9, 300)
	if i < 5e-9 || i > 5e-7 {
		t.Fatalf("unit subthreshold leakage %v A outside plausible 70nm band", i)
	}
}

func TestGateLeakageAnchor(t *testing.T) {
	// The paper targets 40 nA/um at 70 nm, 1.2 nm t_ox, 0.9 V, 300 K.
	// With W = L = 70 nm that is 2.8 nA per unit device.
	p := p70()
	i := UnitGate(p, 1, 0.9, 300)
	if math.Abs(i-2.8e-9) > 0.3e-9 {
		t.Fatalf("gate leakage anchor = %v A, want ~2.8e-9", i)
	}
}

func TestGateLeakageSupplySensitivity(t *testing.T) {
	p := p70()
	hi := UnitGate(p, 1, 0.9, 300)
	lo := UnitGate(p, 1, 0.3, 300)
	if lo >= hi/5 {
		t.Fatalf("gate leakage should collapse at low Vdd: %v vs %v", lo, hi)
	}
}

func TestGateLeakageWeakTemperatureDependence(t *testing.T) {
	p := p70()
	i300 := UnitGate(p, 1, 0.9, 300)
	i383 := UnitGate(p, 1, 0.9, 383)
	if r := i383 / i300; r < 1.0 || r > 1.2 {
		t.Fatalf("gate leakage T sensitivity %v should be weak (1.0-1.2)", r)
	}
}

func TestThermalVoltage(t *testing.T) {
	if v := ThermalVoltage(300); math.Abs(v-0.02585) > 1e-4 {
		t.Fatalf("v_t(300K) = %v, want ~0.02585", v)
	}
}

func TestRBBLimited(t *testing.T) {
	if RBBLimited(0.3) {
		t.Error("0.3 V should not be GIDL-limited")
	}
	if !RBBLimited(0.5) {
		t.Error("0.5 V should be GIDL-limited")
	}
}

func TestSubthresholdPositiveProperty(t *testing.T) {
	// Property: leakage is positive and finite over the whole sane
	// operating envelope.
	p := p70()
	f := func(wlRaw, vddRaw, tRaw, vthRaw uint16) bool {
		wl := 0.5 + float64(wlRaw%80)/10     // 0.5 - 8.4
		vdd := 0.1 + float64(vddRaw%100)/100 // 0.1 - 1.09
		tK := 250 + float64(tRaw%200)        // 250 - 449 K
		vth := 0.05 + float64(vthRaw%60)/100 // 0.05 - 0.64
		i := UnitSubthreshold(p, p.N, wl, vdd, tK, vth)
		return i > 0 && !math.IsInf(i, 0) && !math.IsNaN(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeakageOrderAcrossNodes(t *testing.T) {
	// Subthreshold leakage per device grows as technology scales down
	// (lower Vth), the trend that motivates the whole paper.
	var prev float64
	for _, n := range []tech.Node{tech.Node180, tech.Node130, tech.Node100, tech.Node70} {
		p := tech.MustByNode(n)
		i := UnitSubthresholdNominal(p, p.N, 1, p.VddNominal, 300)
		if i <= prev {
			t.Fatalf("leakage at %v (%v) not above previous node (%v)", n, i, prev)
		}
		prev = i
	}
}
