package leakage

import (
	"fmt"

	"hotleakage/internal/tech"
)

// Mode identifies the leakage state of a cell or group of cells.
type Mode int

// Leakage modes. ModeActive is normal operation; the three standby modes
// correspond to the techniques of Section 2: drowsy (state-preserving, low
// standby Vdd), gated-Vss (non-state-preserving, high-Vt footer
// disconnect), and reverse body bias (state-preserving, raised Vth).
const (
	ModeActive Mode = iota
	ModeDrowsy
	ModeGated
	ModeRBB
	numModes
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeActive:
		return "active"
	case ModeDrowsy:
		return "drowsy"
	case ModeGated:
		return "gated-vss"
	case ModeRBB:
		return "rbb"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Env is the dynamic operating point: temperature in kelvin and supply
// voltage in volts. HotLeakage recalculates all cached currents whenever
// the environment changes (SetEnv), which is what makes it usable under
// dynamically varying temperature or DVS.
type Env struct {
	TempK float64
	Vdd   float64
}

// CelsiusToKelvin converts an operating temperature given in Celsius (the
// paper quotes 85C and 110C) to kelvin.
func CelsiusToKelvin(c float64) float64 { return c + 273.15 }

// Model is the HotLeakage model instance: a technology node, an optional
// inter-die variation multiplier, and a cache of per-polarity unit currents
// at the current environment. It is cheap to query and cheap to
// re-environment.
type Model struct {
	P   *tech.Params
	Var VariationConfig

	env Env
	// Cached unit currents at env, per mode. Indexed by mode.
	unitN    [numModes]float64
	unitP    [numModes]float64
	unitGate [numModes]float64
	// Effective supply seen by a cell in each mode (sets the V in P=V*I).
	veff [numModes]float64
	// Variation multipliers, computed once at construction (inter-die
	// variation is a per-chip constant).
	varRes VariationResult
}

// Option configures a Model.
type Option func(*Model)

// WithVariation enables inter-die parameter variation with the given
// configuration.
func WithVariation(cfg VariationConfig) Option {
	return func(m *Model) { m.Var = cfg }
}

// New constructs a Model for the given node parameters at the node's
// nominal supply and 300 K. Call SetEnv to move to the operating point of
// interest.
func New(p *tech.Params, opts ...Option) *Model {
	m := &Model{P: p}
	for _, o := range opts {
		o(m)
	}
	m.varRes = RunVariation(p, m.Var, tech.RoomTempK, p.VddNominal)
	m.SetEnv(Env{TempK: tech.RoomTempK, Vdd: p.VddNominal})
	return m
}

// Env returns the current operating point.
func (m *Model) Env() Env { return m.env }

// SetEnv moves the model to a new operating point and recalculates every
// cached current. This is the dynamic-recalculation entry point the paper
// describes in Section 3.4 ("these need to be called whenever any of the
// parameters ... that affect leakage is changed").
func (m *Model) SetEnv(env Env) {
	m.env = env
	p := m.P
	tK := env.TempK

	vthN := p.VthAt(p.N, tK)
	vthP := p.VthAt(p.P, tK)

	// Active: nominal supply, nominal thresholds.
	m.veff[ModeActive] = env.Vdd
	m.unitN[ModeActive] = UnitSubthreshold(p, p.N, 1, env.Vdd, tK, vthN) * m.varRes.SubN
	m.unitP[ModeActive] = UnitSubthreshold(p, p.P, 1, env.Vdd, tK, vthP) * m.varRes.SubP
	m.unitGate[ModeActive] = UnitGate(p, 1, env.Vdd, tK) * m.varRes.Gate

	// Drowsy: cell supply collapses to ~1.5*Vth. Both the DIBL term and
	// the V in P = V*I drop; state is preserved.
	vdr := p.DrowsyVdd()
	if vdr > env.Vdd {
		vdr = env.Vdd
	}
	m.veff[ModeDrowsy] = vdr
	m.unitN[ModeDrowsy] = UnitSubthreshold(p, p.N, 1, vdr, tK, vthN) * m.varRes.SubN
	m.unitP[ModeDrowsy] = UnitSubthreshold(p, p.P, 1, vdr, tK, vthP) * m.varRes.SubP
	m.unitGate[ModeDrowsy] = UnitGate(p, 1, vdr, tK) * m.varRes.Gate

	// Gated-Vss: the row is disconnected from ground by an off high-Vt
	// footer; residual current is the footer's subthreshold leakage
	// further attenuated by the stack effect of the (also off) cell
	// devices in series. Gate tunneling collapses with the internal
	// rail. State is lost.
	footer := UnitSubthreshold(p, p.N, 1, env.Vdd, tK, p.VthAt(tech.DeviceParams{Vth0: p.SleepVth, Mu0: p.N.Mu0, DIBLb: p.N.DIBLb, Swing: p.N.Swing, Voff: p.N.Voff}, tK))
	m.veff[ModeGated] = env.Vdd
	m.unitN[ModeGated] = footer * p.SleepStackFactor * m.varRes.SubN
	m.unitP[ModeGated] = footer * p.SleepStackFactor * m.varRes.SubP
	m.unitGate[ModeGated] = 0

	// RBB: body bias raises Vth in standby; supply (and therefore gate
	// leakage and DIBL) unchanged; state preserved. GIDL limits how far
	// Vth can usefully be raised (Section 3.2).
	vthNr := vthN + p.RBBVthShift
	vthPr := vthP + p.RBBVthShift
	m.veff[ModeRBB] = env.Vdd
	m.unitN[ModeRBB] = UnitSubthreshold(p, p.N, 1, env.Vdd, tK, vthNr) * m.varRes.SubN
	m.unitP[ModeRBB] = UnitSubthreshold(p, p.P, 1, env.Vdd, tK, vthPr) * m.varRes.SubP
	m.unitGate[ModeRBB] = m.unitGate[ModeActive]
}

// Variation returns the inter-die variation multipliers in effect.
func (m *Model) Variation() VariationResult { return m.varRes }

// kFor returns the (k_n, k_p) design factors for a cell class at the current
// environment.
func (m *Model) kFor(class CellClass) (kn, kp float64) {
	p := m.P
	switch class {
	case ClassSRAM:
		return p.KnSRAM.Eval(m.env.TempK, m.env.Vdd, p.Vdd0),
			p.KpSRAM.Eval(m.env.TempK, m.env.Vdd, p.Vdd0)
	default:
		return p.KnLogic.Eval(m.env.TempK, m.env.Vdd, p.Vdd0),
			p.KpLogic.Eval(m.env.TempK, m.env.Vdd, p.Vdd0)
	}
}

// CellCurrent returns the total quiescent current of one cell in the given
// mode (Equation 3 plus gate leakage), in amperes.
func (m *Model) CellCurrent(c Cell, mode Mode) float64 {
	kn, kp := m.kFor(c.Class)
	sub := float64(c.NN)*kn*m.unitN[mode]*c.WLn + float64(c.NP)*kp*m.unitP[mode]*c.WLp
	gate := (float64(c.GateN)*c.WLn + float64(c.GateP)*c.WLp) * m.unitGate[mode]
	return sub + gate
}

// CellPower returns the static power of one cell in the given mode
// (Equation 4 per cell: V_effective * I_cell), in watts.
func (m *Model) CellPower(c Cell, mode Mode) float64 {
	return m.veff[mode] * m.CellCurrent(c, mode)
}

// StructurePower returns the static power of count identical cells in the
// given mode: P = V * N_cells * I_cell (Equation 4).
func (m *Model) StructurePower(c Cell, count int, mode Mode) float64 {
	return float64(count) * m.CellPower(c, mode)
}

// StandbyFraction returns the ratio of standby-mode cell power to
// active-mode cell power for the given technique mode — the residual
// leakage fraction. Gated-Vss is expected to be well under drowsy
// ("gated-Vss is able to almost entirely eliminate leakage, whereas
// state-preserving techniques ... still exhibit a non-trivial amount").
func (m *Model) StandbyFraction(c Cell, mode Mode) float64 {
	a := m.CellPower(c, ModeActive)
	if a == 0 {
		return 0
	}
	return m.CellPower(c, mode) / a
}
