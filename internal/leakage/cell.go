package leakage

// Cell describes a repeated circuit cell (an SRAM bit, a decoder gate, a
// sense amplifier) in the terms of the paper's double-k_design model
// (Section 3.1.2):
//
//	I_cell = n_n * k_n * I_n  +  n_p * k_p * I_p            (Equation 3)
//
// where I_n and I_p are unit subthreshold leakages of the two polarities and
// k_n / k_p fold in transistor stacking and aspect ratios. Gate leakage adds
// the tunneling current of the transistors whose channel is inverted.
type Cell struct {
	// Name identifies the cell in reports.
	Name string
	// NN and NP are the NMOS and PMOS transistor counts.
	NN, NP int
	// WLn / WLp scale the unit leakage by the cell's actual aspect
	// ratios (unit leakage is defined at W/L = 1).
	WLn, WLp float64
	// GateN / GateP are the number of N/P devices with an inverted
	// channel in the quiescent state (gate-leakage contributors).
	GateN, GateP int
	// Class selects which k_design fit applies.
	Class CellClass
}

// CellClass selects the k_design fit family for a cell.
type CellClass int

// Cell classes with pre-derived k_design fits in the technology tables.
const (
	ClassSRAM CellClass = iota
	ClassLogic
)

// SRAM6T is the standard six-transistor SRAM cell: cross-coupled inverters
// (2N + 2P) plus two NMOS access transistors. In the quiescent state one
// inverter NMOS and one inverter PMOS conduct, so two devices contribute
// gate leakage; the two access devices are off (wordline low).
var SRAM6T = Cell{
	Name:  "sram6t",
	NN:    4,
	NP:    2,
	WLn:   1.0, // folded into the k_design fit; unit W/L here
	WLp:   1.0,
	GateN: 1,
	GateP: 1,
	Class: ClassSRAM,
}

// DecoderNAND is a representative 3-input NAND used in row decoders.
var DecoderNAND = Cell{
	Name:  "decoder-nand3",
	NN:    3,
	NP:    3,
	WLn:   2.0,
	WLp:   2.8,
	GateN: 1,
	GateP: 2,
	Class: ClassLogic,
}

// SenseAmp is a coarse latch-style sense amplifier cell.
var SenseAmp = Cell{
	Name:  "senseamp",
	NN:    5,
	NP:    4,
	WLn:   4.0,
	WLp:   5.6,
	GateN: 2,
	GateP: 2,
	Class: ClassLogic,
}

// InverterDriver is a wordline/output driver pair.
var InverterDriver = Cell{
	Name:  "driver",
	NN:    2,
	NP:    2,
	WLn:   6.0,
	WLp:   8.4,
	GateN: 1,
	GateP: 1,
	Class: ClassLogic,
}

// RegFileCell is a heavily multi-ported register-file bit (the second
// structure HotLeakage ships models for, besides caches): a storage pair
// plus read-port stacks and write-port access devices for a 21264-class
// 4-read/2-write integer file. More transistors and wider devices than an
// SRAM bit mean a register file leaks several times more per bit.
var RegFileCell = Cell{
	Name:  "regfile-4r2w",
	NN:    12, // 2 storage + 4x2 read-port stacks + 2 write access
	NP:    2,
	WLn:   1.8,
	WLp:   1.2,
	GateN: 1,
	GateP: 1,
	Class: ClassSRAM,
}

// RegFilePower returns the static power of an entries x bits register file
// in the given mode at the model's current environment.
func RegFilePower(m *Model, entries, bits int, mode Mode) float64 {
	return m.StructurePower(RegFileCell, entries*bits, mode)
}
