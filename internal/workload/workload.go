// Package workload synthesizes the instruction and memory-reference streams
// the simulator consumes. SPEC CPU2000 reference binaries and inputs are
// proprietary, so each of the paper's 11 integer benchmarks is replaced by a
// parameterized generator that reproduces the statistics the experiments
// actually depend on (see DESIGN.md):
//
//   - the cache-line generational pattern, modelled with four reference
//     tiers: a HOT pool reused at short gaps, a MID pool of L1-resident
//     lines reused at gaps spread across 1K-100K cycles (this is the
//     population the decay interval fights over: too short an interval
//     turns these reuses into induced misses / slow hits), a FAR pool that
//     overflows the L1 and sets its miss rate, and a STREAM of fresh lines
//     that die immediately (ideal decay targets), with periodic pool churn
//     creating dead generations;
//   - instruction-level parallelism, via dependence-distance distributions;
//   - branch behaviour, via a synthetic control-flow graph with biased,
//     patterned, flaky, call and return branches that the simulated hybrid
//     predictor must actually learn, plus periodic phase jumps;
//   - instruction-footprint size, which drives I-cache behaviour.
//
// Generators are deterministic for a given profile and seed.
package workload

import "hotleakage/internal/stats"

// OpClass classifies a synthetic instruction.
type OpClass uint8

// Operation classes; latencies and FU bindings live in the cpu package.
const (
	OpIntALU OpClass = iota
	OpIntMul
	OpFPALU
	OpFPMul
	OpLoad
	OpStore
	OpBranch // conditional
	OpCall
	OpReturn
	OpJump
)

// String implements fmt.Stringer.
func (o OpClass) String() string {
	switch o {
	case OpIntALU:
		return "ialu"
	case OpIntMul:
		return "imul"
	case OpFPALU:
		return "fpalu"
	case OpFPMul:
		return "fpmul"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpCall:
		return "call"
	case OpReturn:
		return "return"
	case OpJump:
		return "jump"
	}
	return "op?"
}

// IsMem reports whether the op accesses the data cache.
func (o OpClass) IsMem() bool { return o == OpLoad || o == OpStore }

// IsCTI reports whether the op is a control-transfer instruction.
func (o OpClass) IsCTI() bool {
	return o == OpBranch || o == OpCall || o == OpReturn || o == OpJump
}

// Instr is one synthetic instruction.
type Instr struct {
	Op     OpClass
	PC     uint64
	Src1   int32 // dependence distance in instructions (0 = none)
	Src2   int32
	Addr   uint64 // memory ops: byte address
	Taken  bool   // CTIs: actual direction
	Target uint64 // CTIs: actual target PC when taken
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string

	// Instruction mix (fractions of non-CTI slots; CTI density comes
	// from BlockLen).
	LoadFrac   float64
	StoreFrac  float64
	IntMulFrac float64
	FPFrac     float64

	// Dependence structure: each source operand depends on the result of
	// an instruction Geometric(DepP)+1 slots back; DepNoneFrac of
	// operands are free. Larger DepP means tighter chains and less ILP
	// to hide induced-miss latency with.
	DepP        float64
	DepNoneFrac float64

	// Data-reference tiers. Probabilities are per memory access; the
	// remainder (1 - PHot - sum(Ring.P) - PFar) streams through fresh
	// lines.
	HotLines int     // tier-0: short-gap resident set, in cache lines
	HotZipf  float64 // zipf exponent over the hot pool
	PHot     float64

	// Rings are tier-1: L1-resident line sets visited round-robin, so
	// every line in ring i is reused at a controlled gap of
	// Lines/P memory accesses. The rings define the benchmark's
	// medium/long reuse-gap spectrum — the population a decay interval
	// kills or spares.
	Rings []Ring

	FarLines int // tier-2: L1-overflowing (L2-resident) set -> L1 misses
	FarZipf  float64
	PFar     float64

	// SpatialRun is the mean number of consecutive accesses that walk
	// sequentially from a fresh reference (spatial locality bursts).
	SpatialRun float64

	// ChurnPeriod is the number of memory accesses between generational
	// pool-rotation events; ChurnFrac of the hot and mid pools is
	// replaced by fresh lines, leaving the old generation to die in the
	// cache.
	ChurnPeriod int
	ChurnFrac   float64

	// Control flow. Code is organized as regions (loop bodies /
	// functions) of RegionBlocks consecutive basic blocks. A region is
	// iterated with a geometric trip count (mean TripMean); its last
	// block carries the back-edge. Inner blocks end in forward branches
	// (biased / flaky / patterned) or calls into zipf-selected regions,
	// matched by returns through a stack. This structured walk makes the
	// dynamic branch mix and instruction footprint stationary instead of
	// hostage to a random graph's absorbing cycles.
	CodeBlocks   int     // total basic blocks (footprint ~ blocks*BlockLen*4 bytes)
	BlockLen     int     // mean instructions per block (incl. the CTI)
	RegionBlocks int     // blocks per region (default 12)
	CodeZipf     float64 // zipf exponent for region selection (code hotness)

	FlakyFrac   float64 // fraction of inner branches that are hard to predict
	PatternFrac float64 // fraction with a short deterministic pattern
	CallFrac    float64 // fraction of inner blocks ending in a call
	TripMean    int     // mean region trip count (geometric)
	// MajorityProb is the probability an ordinary biased branch goes its
	// majority direction (its predictability once the bimodal counters
	// train).
	MajorityProb float64
	// PhaseJumpEvery redirects control flow to a fresh region every N
	// instructions (program phase changes). 0 disables.
	PhaseJumpEvery int

	Seed uint64
}

// Ring is one controlled-gap reuse tier: Lines cache lines visited
// round-robin, selected with probability P per memory access, so each line
// recurs every Lines/P accesses on average.
type Ring struct {
	Lines int
	P     float64
}

// GapAccesses returns the ring's per-line reuse gap in memory accesses.
func (r Ring) GapAccesses() float64 {
	if r.P == 0 {
		return 0
	}
	return float64(r.Lines) / r.P
}

type branchKind uint8

const (
	brBiased branchKind = iota
	brFlaky
	brPattern
	brCall
)

type block struct {
	startPC  uint64
	len      int // instructions including the trailing CTI
	kind     branchKind
	minority float64 // P(non-majority direction) for biased/flaky
	pattern  uint8   // for brPattern: period in [2,8]
	patCount uint32
}

// frame is one level of the region walk: which region, the next block index
// within it, and the remaining trip count.
type frame struct {
	region int
	idx    int
	trips  int
}

// Generator produces the instruction stream for one profile.
type Generator struct {
	P   Profile
	rng *stats.RNG

	blocks     []block
	numRegions int
	regionLen  int
	codeZ      *stats.Zipf
	f          frame   // current walk frame
	stack      []frame // call stack
	pos        int     // position within current block

	hotPool []uint64
	farPool []uint64
	hotZ    *stats.Zipf
	farZ    *stats.Zipf

	rings   [][]uint64 // ring line pools
	ringPos []int      // round-robin cursors
	ringCum []float64  // cumulative selection probabilities

	nextLine uint64
	memCount int

	// spatial-run state
	runLeft int
	runAddr uint64

	// depGeom/runGeom are fixed-p fast geometric samplers (bit-identical
	// to rng.Geometric at the same p) for the two per-instruction draws.
	depGeom *stats.Geom
	runGeom *stats.Geom

	// Cached per-draw thresholds. The profile is immutable after
	// construction, so the cumulative op-class splits and the address
	// pool boundaries are precomputed rather than re-summed (and the
	// Profile struct re-copied) for every instruction.
	cumLoad, cumStore, cumMul, cumFP float64
	ringTop                          float64
	// churnLeft counts mem references down to the next pool churn,
	// replacing the per-reference modulo on memCount.
	churnLeft int

	instrCount uint64
	nextPhase  uint64
}

const (
	codeBase = 0x0000_1000
	dataBase = 0x4000_0000
	lineSize = 64
)

// NewGenerator builds a deterministic generator for p.
func NewGenerator(p Profile) *Generator {
	g := &Generator{P: p, rng: stats.NewRNG(p.Seed ^ 0x5eed)}
	g.buildCode()
	g.buildData()
	if p.DepP > 0 && p.DepP < 1 {
		g.depGeom = stats.NewGeom(g.rng, p.DepP)
	}
	if p.SpatialRun > 1 {
		g.runGeom = stats.NewGeom(g.rng, 1/p.SpatialRun)
	}
	if p.PhaseJumpEvery > 0 {
		g.nextPhase = uint64(p.PhaseJumpEvery)
	}
	g.cumLoad = p.LoadFrac
	g.cumStore = g.cumLoad + p.StoreFrac
	g.cumMul = g.cumStore + p.IntMulFrac
	g.cumFP = g.cumMul + p.FPFrac
	g.ringTop = p.PHot
	if n := len(g.ringCum); n > 0 {
		g.ringTop = g.ringCum[n-1]
	}
	g.churnLeft = p.ChurnPeriod
	return g
}

func (g *Generator) buildCode() {
	rl := g.P.RegionBlocks
	if rl < 3 {
		rl = 12
	}
	g.regionLen = rl
	g.numRegions = max(g.P.CodeBlocks/rl, 2)
	n := g.numRegions * rl
	g.blocks = make([]block, n)
	pc := uint64(codeBase)
	for i := range g.blocks {
		// Block length: BlockLen +/- a small spread, minimum 2.
		l := g.P.BlockLen + g.rng.Intn(3) - 1
		if l < 2 {
			l = 2
		}
		b := block{startPC: pc, len: l}
		r := g.rng.Float64()
		switch {
		case r < g.P.CallFrac:
			b.kind = brCall
		case r < g.P.CallFrac+g.P.FlakyFrac:
			b.kind = brFlaky
			b.minority = 0.3 + 0.2*g.rng.Float64() // 0.3-0.5
		case r < g.P.CallFrac+g.P.FlakyFrac+g.P.PatternFrac:
			b.kind = brPattern
			b.pattern = uint8(2 + g.rng.Intn(3)) // periods 2-4: GAg-learnable
		default:
			b.kind = brBiased
			m := 1 - g.P.MajorityProb
			b.minority = m * (0.6 + 0.8*g.rng.Float64())
			if b.minority > 0.49 {
				b.minority = 0.49
			}
		}
		g.blocks[i] = b
		pc += uint64(l * 4)
	}
	zs := g.P.CodeZipf
	if zs == 0 {
		zs = 0.7
	}
	g.codeZ = stats.NewZipf(g.rng, g.numRegions, zs)
	g.f = g.newVisit(g.codeZ.Next())
}

// newVisit starts a fresh visit of a region with a sampled trip count.
// Top-level visits iterate with mean TripMean; callee visits are a single
// pass, which keeps the call tree subcritical and keeps callee back-edges
// predictable (a short random trip count would make every call site an
// unpredictable loop exit).
func (g *Generator) newVisit(region int) frame {
	trips := 1
	if len(g.stack) == 0 {
		trips = 1 + g.rng.Geometric(1/float64(max(g.P.TripMean, 2)))
	}
	return frame{region: region, idx: 0, trips: trips}
}

// blockAt returns the block at index idx of the current frame's region.
func (g *Generator) blockAt(f frame) *block {
	return &g.blocks[f.region*g.regionLen+f.idx]
}

func (g *Generator) buildData() {
	p := g.P
	g.hotPool = make([]uint64, max(p.HotLines, 1))
	for i := range g.hotPool {
		g.hotPool[i] = g.allocLine()
	}
	g.farPool = make([]uint64, max(p.FarLines, 1))
	for i := range g.farPool {
		g.farPool[i] = g.allocLine()
	}
	g.hotZ = stats.NewZipf(g.rng, len(g.hotPool), p.HotZipf)
	g.farZ = stats.NewZipf(g.rng, len(g.farPool), p.FarZipf)

	cum := p.PHot
	for _, r := range p.Rings {
		pool := make([]uint64, max(r.Lines, 1))
		for i := range pool {
			pool[i] = g.allocLine()
		}
		g.rings = append(g.rings, pool)
		g.ringPos = append(g.ringPos, 0)
		cum += r.P
		g.ringCum = append(g.ringCum, cum)
	}
}

func (g *Generator) allocLine() uint64 {
	g.nextLine++
	return dataBase/lineSize + g.nextLine
}

// nextAddr produces the next data address.
func (g *Generator) nextAddr() uint64 {
	if g.runLeft > 0 {
		g.runLeft--
		g.runAddr += 8
		return g.runAddr
	}
	g.memCount++
	if g.P.ChurnPeriod > 0 {
		if g.churnLeft--; g.churnLeft == 0 {
			g.churn()
			g.churnLeft = g.P.ChurnPeriod
		}
	}
	var line uint64
	spatial := false
	r := g.rng.Float64()
	switch {
	case r < g.P.PHot:
		line = g.hotPool[g.hotZ.Next()]
	case r < g.ringTop:
		ri := 0
		for g.ringCum[ri] <= r {
			ri++
		}
		pool := g.rings[ri]
		line = pool[g.ringPos[ri]]
		g.ringPos[ri] = (g.ringPos[ri] + 1) % len(pool)
	case r < g.ringTop+g.P.PFar:
		// Far accesses are single touches; letting spatial runs walk
		// into neighbouring far lines would re-touch pool lines at
		// uncontrolled long gaps and blur the reuse-gap spectrum the
		// rings define.
		line = g.farPool[g.farZ.Next()]
	default:
		line = g.allocLine()
		spatial = true
	}
	addr := line*lineSize + uint64(g.rng.Intn(8))*8
	if spatial && g.P.SpatialRun > 1 {
		g.runLeft = g.runGeom.Next()
		g.runAddr = addr
	}
	return addr
}

// churn rotates a fraction of the hot pool and rings to fresh lines,
// creating a dead generation of the old ones.
func (g *Generator) churn() {
	f := g.P.ChurnFrac
	for i, n := 0, int(f*float64(len(g.hotPool))); i < n; i++ {
		g.hotPool[g.rng.Intn(len(g.hotPool))] = g.allocLine()
	}
	for ri := range g.rings {
		pool := g.rings[ri]
		for i, n := 0, int(f*float64(len(pool))); i < n; i++ {
			pool[g.rng.Intn(len(pool))] = g.allocLine()
		}
	}
}

// dep samples one source-dependence distance.
func (g *Generator) dep() int32 {
	if g.P.DepP <= 0 || g.rng.Bool(g.P.DepNoneFrac) {
		return 0
	}
	if g.depGeom != nil {
		return int32(1 + g.depGeom.Next())
	}
	return 1 // DepP >= 1: the chain distance degenerates to the minimum
}

// Next fills in the next instruction. The stream is unbounded.
func (g *Generator) Next(ins *Instr) {
	g.instrCount++
	if g.nextPhase != 0 && g.instrCount >= g.nextPhase {
		// Phase change: abandon the current loop nest for a fresh
		// region.
		g.nextPhase = g.instrCount + uint64(g.P.PhaseJumpEvery)
		g.stack = g.stack[:0]
		g.f = g.newVisit(g.codeZ.Next())
		g.pos = 0
	}
	b := g.blockAt(g.f)
	pc := b.startPC + uint64(g.pos*4)

	if g.pos == b.len-1 {
		// Trailing control transfer.
		g.emitCTI(ins, b, pc)
		return
	}
	g.pos++

	ins.PC = pc
	ins.Src1 = g.dep()
	ins.Src2 = g.dep()
	ins.Taken = false
	ins.Target = 0

	r := g.rng.Float64()
	switch {
	case r < g.cumLoad:
		ins.Op = OpLoad
		ins.Addr = g.nextAddr()
	case r < g.cumStore:
		ins.Op = OpStore
		ins.Addr = g.nextAddr()
	case r < g.cumMul:
		ins.Op = OpIntMul
		ins.Addr = 0
	case r < g.cumFP:
		if g.rng.Bool(0.3) {
			ins.Op = OpFPMul
		} else {
			ins.Op = OpFPALU
		}
		ins.Addr = 0
	default:
		ins.Op = OpIntALU
		ins.Addr = 0
	}
}

// emitCTI produces the block-ending control transfer and advances the
// region walk.
func (g *Generator) emitCTI(ins *Instr, b *block, pc uint64) {
	ins.PC = pc
	ins.Addr = 0
	ins.Src1 = g.dep()
	ins.Src2 = 0
	ins.Taken = false

	fallThru := b.startPC + uint64(b.len*4)

	if g.f.idx == g.regionLen-1 {
		// Region-ending back-edge (or exit).
		g.f.trips--
		if g.f.trips > 0 {
			// Loop back to the region head: mostly-taken,
			// predictable; the exit mispredicts.
			ins.Op = OpBranch
			ins.Taken = true
			g.f.idx = 0
			ins.Target = g.blockAt(g.f).startPC
		} else if n := len(g.stack); n > 0 {
			// Region done inside a call: return to the caller.
			ins.Op = OpReturn
			ins.Taken = true
			g.f = g.stack[n-1]
			g.stack = g.stack[:n-1]
			ins.Target = g.blockAt(g.f).startPC
		} else {
			// Top-level region done: move to the next region
			// (direct jump; target known at decode).
			ins.Op = OpJump
			ins.Taken = true
			g.f = g.newVisit(g.codeZ.Next())
			ins.Target = g.blockAt(g.f).startPC
		}
		g.pos = 0
		return
	}

	// Inner block.
	switch b.kind {
	case brCall:
		// Call probability halves per nesting level so the call tree
		// stays subcritical (a callee's blocks would otherwise spawn
		// more calls than they retire).
		if len(g.stack) < 12 && g.rng.Float64() < callDamp[min(len(g.stack), len(callDamp)-1)] {
			ins.Op = OpCall
			ins.Taken = true
			// Resume at the next block of this region on return.
			g.stack = append(g.stack, frame{region: g.f.region, idx: g.f.idx + 1, trips: g.f.trips})
			g.f = g.newVisit(g.codeZ.Next())
			ins.Target = g.blockAt(g.f).startPC
			g.pos = 0
			return
		}
		// Call depth capped: treat as a not-taken branch.
		ins.Op = OpBranch
	case brPattern:
		ins.Op = OpBranch
		b.patCount++
		ins.Taken = b.patCount%uint32(b.pattern) == 0
	default: // biased, flaky
		ins.Op = OpBranch
		ins.Taken = g.rng.Bool(b.minority)
	}

	if ins.Taken {
		// Forward skip of 1-3 blocks, clamped inside the region (the
		// region-ending block is a valid landing site).
		skip := 1 + g.rng.Intn(3)
		g.f.idx = min(g.f.idx+1+skip, g.regionLen-1)
		ins.Target = g.blockAt(g.f).startPC
	} else {
		g.f.idx++
		ins.Target = fallThru
	}
	g.pos = 0
}

// callDamp[d] is the probability a call block at stack depth d actually
// calls.
var callDamp = []float64{1, 0.5, 0.25, 0.12, 0.06, 0.03}

// Count returns the number of instructions generated so far.
func (g *Generator) Count() uint64 { return g.instrCount }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
