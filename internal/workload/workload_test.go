package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func gcc() Profile {
	p, ok := ByName("gcc")
	if !ok {
		panic("gcc profile missing")
	}
	return p
}

func TestDeterminismPerSeed(t *testing.T) {
	a := NewGenerator(gcc())
	b := NewGenerator(gcc())
	var ia, ib Instr
	for i := 0; i < 20000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	p := gcc()
	p.Seed++
	a, b := NewGenerator(gcc()), NewGenerator(p)
	var ia, ib Instr
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia == ib {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds nearly identical: %d/1000", same)
	}
}

func TestInstructionMix(t *testing.T) {
	p := gcc()
	g := NewGenerator(p)
	var ins Instr
	var mem, store, cti uint64
	const n = 200000
	for i := 0; i < n; i++ {
		g.Next(&ins)
		if ins.Op.IsMem() {
			mem++
			if ins.Op == OpStore {
				store++
			}
		}
		if ins.Op.IsCTI() {
			cti++
		}
	}
	memFrac := float64(mem) / n
	// Non-CTI slots carry the load/store fractions; CTI density ~1/BlockLen.
	if memFrac < 0.2 || memFrac > 0.45 {
		t.Errorf("mem fraction = %v", memFrac)
	}
	ctiFrac := float64(cti) / n
	if ctiFrac < 0.1 || ctiFrac > 0.3 {
		t.Errorf("CTI fraction = %v", ctiFrac)
	}
	if store == 0 || store > mem {
		t.Errorf("stores = %d of %d mem ops", store, mem)
	}
}

func TestAddressesAligned(t *testing.T) {
	g := NewGenerator(gcc())
	var ins Instr
	for i := 0; i < 50000; i++ {
		g.Next(&ins)
		if ins.Op.IsMem() {
			if ins.Addr%8 != 0 {
				t.Fatalf("unaligned address %#x", ins.Addr)
			}
			if ins.Addr < dataBase {
				t.Fatalf("data address %#x below data base", ins.Addr)
			}
		} else if ins.Addr != 0 {
			t.Fatalf("non-mem op carries address: %+v", ins)
		}
	}
}

func TestPCsAreSequentialWithinBlocks(t *testing.T) {
	g := NewGenerator(gcc())
	var prev Instr
	g.Next(&prev)
	var ins Instr
	for i := 0; i < 20000; i++ {
		g.Next(&ins)
		if !prev.Op.IsCTI() && ins.PC != prev.PC+4 {
			// Non-CTI must fall through (phase jumps land only
			// after CTIs in a well-formed stream; they may break
			// this rarely).
			if ins.PC != prev.PC+4 {
				// Allow phase jumps: count them.
				break
			}
		}
		prev = ins
	}
}

func TestCTITargetsMatchNextPC(t *testing.T) {
	// Property: after a CTI, the next instruction's PC equals the CTI's
	// taken target (or fall-through), except across phase jumps.
	p := gcc()
	p.PhaseJumpEvery = 0 // disable to make the invariant exact
	g := NewGenerator(p)
	var prev, ins Instr
	g.Next(&prev)
	for i := 0; i < 50000; i++ {
		g.Next(&ins)
		if prev.Op.IsCTI() {
			want := prev.Target
			if !prev.Taken {
				want = prev.PC + 4
			}
			if ins.PC != want {
				t.Fatalf("CTI at %#x (taken=%v) target %#x, next PC %#x",
					prev.PC, prev.Taken, prev.Target, ins.PC)
			}
		}
		prev = ins
	}
}

func TestRingGapControl(t *testing.T) {
	// A profile that only touches one ring: each line must recur at
	// a gap close to Lines/P accesses.
	p := Profile{
		Name: "ring", LoadFrac: 1,
		Rings:      []Ring{{Lines: 32, P: 1.0}},
		CodeBlocks: 24, BlockLen: 8, RegionBlocks: 12, TripMean: 10,
		MajorityProb: 0.99, Seed: 3,
	}
	g := NewGenerator(p)
	var ins Instr
	last := map[uint64]int{}
	var gaps []float64
	acc := 0
	for i := 0; i < 60000; i++ {
		g.Next(&ins)
		if !ins.Op.IsMem() {
			continue
		}
		line := ins.Addr / 64
		if prev, ok := last[line]; ok {
			gaps = append(gaps, float64(acc-prev))
		}
		last[line] = acc
		acc++
	}
	if len(gaps) == 0 {
		t.Fatal("no reuses observed")
	}
	mean := 0.0
	for _, gp := range gaps {
		mean += gp
	}
	mean /= float64(len(gaps))
	if math.Abs(mean-32) > 1 {
		t.Fatalf("ring reuse gap = %v accesses, want ~32", mean)
	}
}

func TestRingGapAccessors(t *testing.T) {
	r := Ring{Lines: 100, P: 0.05}
	if r.GapAccesses() != 2000 {
		t.Fatalf("GapAccesses = %v", r.GapAccesses())
	}
	if (Ring{Lines: 10}).GapAccesses() != 0 {
		t.Fatal("zero-P gap not 0")
	}
}

func TestChurnRetiresLines(t *testing.T) {
	p := Profile{
		Name: "churn", LoadFrac: 1,
		HotLines: 64, HotZipf: 0.2, PHot: 1,
		ChurnPeriod: 1000, ChurnFrac: 0.5,
		CodeBlocks: 24, BlockLen: 8, RegionBlocks: 12, TripMean: 10,
		MajorityProb: 0.99, Seed: 4,
	}
	g := NewGenerator(p)
	var ins Instr
	lines := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		g.Next(&ins)
		if ins.Op.IsMem() {
			lines[ins.Addr/64] = true
		}
	}
	// With churn, the touched-line universe far exceeds the pool size.
	if len(lines) < 3*64 {
		t.Fatalf("churn produced only %d distinct lines", len(lines))
	}
}

func TestProfilesWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Profiles() {
		if names[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		total := p.PHot + p.PFar
		for _, r := range p.Rings {
			total += r.P
			if r.Lines <= 0 || r.P <= 0 {
				t.Errorf("%s: degenerate ring %+v", p.Name, r)
			}
		}
		if total > 1 {
			t.Errorf("%s: tier probabilities sum to %v > 1", p.Name, total)
		}
		if total < 0.9 {
			t.Errorf("%s: stream fraction %v implausibly large", p.Name, 1-total)
		}
		if p.LoadFrac+p.StoreFrac+p.IntMulFrac+p.FPFrac > 1 {
			t.Errorf("%s: instruction mix exceeds 1", p.Name)
		}
		if p.Seed == 0 {
			t.Errorf("%s: zero seed", p.Name)
		}
	}
}

func TestTable3Order(t *testing.T) {
	want := []string{"gcc", "gzip", "parser", "vortex", "gap", "perl", "twolf", "bzip2", "vpr", "mcf", "crafty"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("have %d benchmarks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("benchmark order[%d] = %s, want %s (paper Table 3 order)", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("ByName(nonesuch) = ok")
	}
	p, ok := ByName("mcf")
	if !ok || p.Name != "mcf" {
		t.Fatal("ByName(mcf) failed")
	}
}

func TestOpClassPredicates(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpIntALU.IsMem() {
		t.Fatal("IsMem wrong")
	}
	for _, o := range []OpClass{OpBranch, OpCall, OpReturn, OpJump} {
		if !o.IsCTI() {
			t.Errorf("%v not CTI", o)
		}
	}
	if OpLoad.IsCTI() {
		t.Fatal("load is not a CTI")
	}
}

func TestGeneratorNeverPanicsProperty(t *testing.T) {
	// Property: arbitrary (sane) profiles generate without panicking and
	// with well-formed instructions.
	f := func(seed uint64, hot uint8, blocks uint16) bool {
		p := Profile{
			Name: "q", LoadFrac: 0.3, StoreFrac: 0.1,
			DepP: 0.4, DepNoneFrac: 0.3,
			HotLines: int(hot%100) + 1, HotZipf: 0.5, PHot: 0.9,
			FarLines: 100, FarZipf: 0.3, PFar: 0.05,
			CodeBlocks: int(blocks%2000) + 4, BlockLen: 5,
			RegionBlocks: 8, TripMean: 6, MajorityProb: 0.9,
			CallFrac: 0.1, FlakyFrac: 0.1, PatternFrac: 0.05,
			SpatialRun: 3, ChurnPeriod: 500, ChurnFrac: 0.2,
			PhaseJumpEvery: 3000, Seed: seed,
		}
		g := NewGenerator(p)
		var ins Instr
		for i := 0; i < 2000; i++ {
			g.Next(&ins)
			if ins.PC < codeBase {
				return false
			}
		}
		return g.Count() == 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGzipHasLongGapReuseTail(t *testing.T) {
	// gzip's ring placement must produce a visible reuse tail beyond 8K
	// accesses (the population that makes its best gated interval long),
	// while gcc's tail out there must be much thinner.
	tail := func(name string) float64 {
		p, _ := ByName(name)
		g := NewGenerator(p)
		var ins Instr
		last := map[uint64]uint64{}
		var acc, far uint64
		for i := 0; i < 600_000; i++ {
			g.Next(&ins)
			if !ins.Op.IsMem() {
				continue
			}
			line := ins.Addr / 64
			if prev, ok := last[line]; ok && acc-prev >= 8192 {
				far++
			}
			last[line] = acc
			acc++
		}
		return float64(far) / float64(acc)
	}
	gz, gc := tail("gzip"), tail("gcc")
	if gz < 0.008 {
		t.Fatalf("gzip long-gap tail %v too thin", gz)
	}
	if gz < 1.5*gc {
		t.Fatalf("gzip tail (%v) not clearly above gcc's (%v)", gz, gc)
	}
}

func TestDeterminismAcrossProcessBoundary(t *testing.T) {
	// The generators must not depend on map iteration order or other
	// process-varying state: two generators built in different orders
	// from the same profile agree.
	p1, _ := ByName("twolf")
	other, _ := ByName("mcf")
	_ = NewGenerator(other) // interleave construction
	g1 := NewGenerator(p1)
	g2 := NewGenerator(p1)
	var a, b Instr
	for i := 0; i < 5000; i++ {
		g1.Next(&a)
		g2.Next(&b)
		if a != b {
			t.Fatalf("divergence at %d", i)
		}
	}
}
